#!/usr/bin/env bash
# Runs govulncheck over the module and fails on any finding whose OSV id is
# not listed in .github/vuln-allowlist.txt. The allowlist is the only way to
# accept a finding, and every entry there must carry a written justification
# — silent suppression defeats the point of the scan.
set -euo pipefail

allowlist=".github/vuln-allowlist.txt"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

# govulncheck exits 3 when it finds vulnerabilities; capture instead of
# aborting so the allowlist can be applied.
status=0
govulncheck ./... >"$out" 2>&1 || status=$?
if [ "$status" -ne 0 ] && [ "$status" -ne 3 ]; then
  cat "$out" >&2
  echo "govulncheck failed (exit $status)" >&2
  exit "$status"
fi

# Extract the OSV ids of the findings (GO-YYYY-NNNN...).
found="$(grep -oE 'GO-[0-9]{4}-[0-9]+' "$out" | sort -u || true)"
if [ -z "$found" ]; then
  echo "govulncheck: no findings"
  exit 0
fi

allowed="$(grep -oE '^GO-[0-9]{4}-[0-9]+' "$allowlist" 2>/dev/null | sort -u || true)"
blocked="$(comm -23 <(echo "$found") <(echo "$allowed"))"
if [ -n "$blocked" ]; then
  cat "$out" >&2
  echo "govulncheck: findings not in $allowlist:" >&2
  echo "$blocked" >&2
  exit 1
fi

echo "govulncheck: all findings allowlisted in $allowlist:"
echo "$found"
