package tributarydelta

// The generic session: every query opened with Open — scalar or structured,
// standalone or a QuerySet member — runs collection rounds through the same
// Session[R], parameterized only by its answer type. The old per-aggregate
// session types survive as thin deprecated shims over this one.

import (
	"context"
	"sync"
	"sync/atomic"
)

// Result is one collection round's outcome for a query answering R.
type Result[R any] struct {
	// Epoch is the round number.
	Epoch int
	// Answer is the base station's result.
	Answer R
	// TrueContrib is the exact number of sensors represented in Answer.
	TrueContrib int
	// EstContrib is the base station's own (approximate) contribution count.
	EstContrib float64
	// DeltaSize is the current size of the multi-path delta region.
	DeltaSize int
}

// SessionStats is a point-in-time snapshot of a session's cumulative
// communication accounting, all measured from real encoded frames.
type SessionStats struct {
	// TotalWords is the 32-bit payload words transmitted so far.
	TotalWords int64
	// TotalBytes is the encoded payload bytes underneath TotalWords.
	TotalBytes int64
	// Losses counts delivery attempts that did not reach their receiver.
	Losses int64
	// InboxDrops counts frames that survived the medium but overflowed a
	// bounded node inbox (concurrent runtime only; a subset of Losses).
	InboxDrops int64
	// RxFrames counts frames processed by receiver runtimes (populated by
	// the concurrent runtime; the synchronous simulator hands frames over
	// without a receive loop).
	RxFrames int64
	// Duplicates counts duplicated frames discarded by receiver runtimes
	// before processing (UDP runtime only — the in-process backends cannot
	// duplicate; never part of RxFrames). Frame-denominated: a replayed
	// batch datagram counts one duplicate per frame it carried.
	Duplicates int64
}

// engine erases the runner's generic parameters behind the session.
type engine[R any] interface {
	runEpoch(epoch int) Result[R]
	exact(epoch int) R
	sensors() int
	deltaSize() int
	stats() SessionStats
	setWorkers(n int)
	// close releases engine-owned resources (the wave engine's helper
	// goroutines); called once by Session.Close after in-flight rounds
	// drain.
	close()
}

// Session runs collection rounds of one query over a deployment and reports
// per-epoch answers, contribution counts and energy statistics.
//
// A session is single-threaded: calls that advance it (RunEpoch, Run,
// RunInto, Stream) must not overlap, and while a Stream is live the stream
// goroutine owns the session. Close is the one exception — it may be called
// from any goroutine at any time, including mid-run.
//
// Close contract: Close marks the session closed, waits for live streams
// and in-flight rounds to wind down (it never interrupts an epoch mid-
// flight), then releases the concurrent runtime (when the session owns
// one). A closed session stops cleanly rather than failing: Run/RunInto
// return the rounds completed so far, Stream's channel closes, and RunEpoch
// returns a zero Result carrying only the epoch number. Close is idempotent.
type Session[R any] struct {
	eng  engine[R]
	name string
	deps *Deployment
	stop func()
	// trErr reports the delivery backend's sticky error, when the backend
	// has one (the UDP runtime); nil otherwise. health is the matching
	// supervision snapshot hook.
	trErr  func() error
	health func() FleetHealth

	closed atomic.Bool
	mu     sync.Mutex // guards the Close / run-registration handshake
	done   chan struct{}
	// active counts live streams and in-flight rounds; Close waits it out
	// before releasing the runtime, so no epoch ever runs over a closed
	// transport.
	active sync.WaitGroup
}

// beginRun registers an advancing call (a round or a stream); it reports
// false — and registers nothing — once the session is closed.
func (s *Session[R]) beginRun() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.active.Add(1)
	return true
}

// RunEpoch executes one collection round. On a closed session it is a no-op
// returning a zero Result with only Epoch set.
func (s *Session[R]) RunEpoch(epoch int) Result[R] {
	if !s.beginRun() {
		return Result[R]{Epoch: epoch}
	}
	defer s.active.Done()
	return s.eng.runEpoch(epoch)
}

// Run executes rounds collection rounds starting at startEpoch, stopping
// early (with the rounds completed so far) if the session is closed mid-run.
// Run allocates a fresh result slice per call; RunInto is the reusable-
// buffer form.
func (s *Session[R]) Run(startEpoch, rounds int) []Result[R] {
	return s.RunInto(make([]Result[R], 0, rounds), startEpoch, rounds)
}

// RunInto is Run appending into dst — allocation-free when dst has capacity
// for rounds more results. Like Run it stops early once the session is
// closed, returning the results accumulated so far.
func (s *Session[R]) RunInto(dst []Result[R], startEpoch, rounds int) []Result[R] {
	if !s.beginRun() {
		return dst
	}
	defer s.active.Done()
	for e := 0; e < rounds; e++ {
		if s.closed.Load() {
			break
		}
		dst = append(dst, s.eng.runEpoch(startEpoch+e))
	}
	return dst
}

// Stream runs rounds collection rounds starting at startEpoch on a new
// goroutine, delivering each result on the returned channel. The channel is
// unbuffered — the producer paces to the consumer — and closes when the
// rounds are done, the context is cancelled, or the session is closed. The
// stream goroutine owns the session until the channel closes; Close blocks
// until the stream notices and stops (it never interrupts an epoch mid-
// flight).
func (s *Session[R]) Stream(ctx context.Context, startEpoch, rounds int) <-chan Result[R] {
	out := make(chan Result[R])
	if !s.beginRun() {
		close(out)
		return out
	}
	go func() {
		defer s.active.Done()
		defer close(out)
		for e := 0; e < rounds; e++ {
			if s.closed.Load() || ctx.Err() != nil {
				return
			}
			res := s.eng.runEpoch(startEpoch + e)
			select {
			case out <- res:
			case <-ctx.Done():
				return
			case <-s.done:
				return
			}
		}
	}()
	return out
}

// Close releases resources owned by the session — the concurrent runtime's
// node goroutines when the session owns one (QuerySet members share their
// set's runtime, released by QuerySet.Close). It waits for live Stream
// goroutines and in-flight rounds to stop, is safe to call from any
// goroutine and is idempotent. See the Session type docs for the full
// contract.
func (s *Session[R]) Close() {
	s.mu.Lock()
	if s.closed.Swap(true) {
		s.mu.Unlock()
		return
	}
	close(s.done)
	s.mu.Unlock()
	s.active.Wait()
	s.eng.close()
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

// ExactAnswer computes the ground-truth answer for an epoch.
func (s *Session[R]) ExactAnswer(epoch int) R { return s.eng.exact(epoch) }

// Sensors returns the number of participating sensors.
func (s *Session[R]) Sensors() int { return s.eng.sensors() }

// DeltaSize returns the current delta region size.
func (s *Session[R]) DeltaSize() int { return s.eng.deltaSize() }

// QueryName returns the descriptor name of the query the session runs
// ("Count", "Quantiles", …).
func (s *Session[R]) QueryName() string { return s.name }

// SetWorkers re-bounds the session's wave-engine worker pool (see
// WithWorkers): n <= 0 selects GOMAXPROCS, 1 the sequential engine.
// Answers never depend on the bound. Like the advancing calls it must not
// overlap a running round or stream — a Pool applies its budget between
// rounds.
func (s *Session[R]) SetWorkers(n int) { s.eng.setWorkers(n) }

// Stats returns a snapshot of the session's cumulative communication
// accounting.
func (s *Session[R]) Stats() SessionStats { return s.eng.stats() }

// TransportErr reports the session's delivery-backend sticky error. Under
// the supervised UDP runtime only permanent failures stick: an oversized
// frame, a socket failure, or a shard whose respawn budget is exhausted. A
// non-nil error means some deliveries were force-counted as losses while
// answers kept being produced. Recovered shard deaths do NOT surface here —
// see TransportHealth. In-process backends never fail; for them (and for
// the simulator) TransportErr is always nil.
func (s *Session[R]) TransportErr() error {
	if s.trErr == nil {
		return nil
	}
	return s.trErr()
}

// TransportHealth reports the UDP runtime's supervision snapshot: per-shard
// state (healthy/respawning/failed), restart counts and the epochs each
// shard spent degraded. For the in-process backends and the simulator it
// returns a zero snapshot, whose Healthy() is true.
func (s *Session[R]) TransportHealth() FleetHealth {
	if s.health == nil {
		return FleetHealth{}
	}
	return s.health()
}

// TotalWords returns the total 32-bit payload words transmitted so far. It
// is the Stats().TotalWords shorthand kept for the original facade surface.
func (s *Session[R]) TotalWords() int64 { return s.eng.stats().TotalWords }

// TotalBytes returns the total encoded payload bytes transmitted so far. It
// is the Stats().TotalBytes shorthand kept for the original facade surface.
func (s *Session[R]) TotalBytes() int64 { return s.eng.stats().TotalBytes }

// boxedEpoch advances the session one round for its QuerySet, boxing the
// typed result (nil when the member was individually closed).
func (s *Session[R]) boxedEpoch(epoch int) any {
	if !s.beginRun() {
		return nil
	}
	defer s.active.Done()
	return s.eng.runEpoch(epoch)
}

// queryName implements setMember.
func (s *Session[R]) queryName() string { return s.name }

// closeMember implements setMember.
func (s *Session[R]) closeMember() { s.Close() }

// setMemberWorkers implements setMember.
func (s *Session[R]) setMemberWorkers(n int) { s.SetWorkers(n) }

// memberStats implements setMember.
func (s *Session[R]) memberStats() SessionStats { return s.eng.stats() }
