package tributarydelta

// Deprecated facade shims for the remaining §5 aggregates: Min, Max,
// Average, statistical Moments and the duplicate-insensitive Uniform
// sample. Each delegates to Open with the corresponding Query descriptor;
// answers are unchanged from the original constructor-per-aggregate
// surface (the golden parity test pins this).

import (
	"fmt"

	"tributarydelta/internal/sample"
)

// NewMinSession builds a session tracking the minimum reading. Min is
// idempotent, so multi-path aggregation introduces no approximation error
// (§5) — the answer is exact whenever the reading's node contributes.
//
// Deprecated: use Open with Min.
func NewMinSession(d *Deployment, scheme Scheme, seed uint64, value func(epoch, node int) float64) (*Session[float64], error) {
	return Open(d, Min(value), WithScheme(scheme), WithSeed(seed))
}

// NewMaxSession builds a session tracking the maximum reading; see
// NewMinSession.
//
// Deprecated: use Open with Max.
func NewMaxSession(d *Deployment, scheme Scheme, seed uint64, value func(epoch, node int) float64) (*Session[float64], error) {
	return Open(d, Max(value), WithScheme(scheme), WithSeed(seed))
}

// NewAverageSession builds a session computing the mean reading as
// Sum/Count (both exact in the tributaries, sketched in the delta).
//
// Deprecated: use Open with Average.
func NewAverageSession(d *Deployment, scheme Scheme, seed uint64, value func(epoch, node int) float64) (*Session[float64], error) {
	return Open(d, Average(value), WithScheme(scheme), WithSeed(seed))
}

// MomentsResult is one collection round's outcome for the Moments session.
type MomentsResult struct {
	// Epoch is the round number.
	Epoch int
	// Value holds the estimated mean, variance and skewness.
	Value MomentsValue
	// TrueContrib is the exact number of sensors represented in Value.
	TrueContrib int
	// DeltaSize is the current size of the multi-path delta region.
	DeltaSize int
}

// MomentsSession computes mean, variance and skewness (§5's statistical
// moments, via duplicate-insensitive power sums).
//
// Deprecated: use Open with Moments, which exposes the same rounds through
// the generic Session API.
type MomentsSession struct {
	s *Session[MomentsValue]
}

// NewMomentsSession builds a Moments session over non-negative readings.
//
// Deprecated: use Open with Moments.
func NewMomentsSession(d *Deployment, scheme Scheme, seed uint64, value func(epoch, node int) float64) (*MomentsSession, error) {
	s, err := Open(d, Moments(value), WithScheme(scheme), WithSeed(seed))
	if err != nil {
		return nil, err
	}
	return &MomentsSession{s: s}, nil
}

// RunEpoch executes one collection round.
func (s *MomentsSession) RunEpoch(epoch int) MomentsResult {
	res := s.s.RunEpoch(epoch)
	return MomentsResult{
		Epoch:       epoch,
		Value:       res.Answer,
		TrueContrib: res.TrueContrib,
		DeltaSize:   res.DeltaSize,
	}
}

// ExactValue computes the ground-truth moments for an epoch.
func (s *MomentsSession) ExactValue(epoch int) MomentsValue {
	return s.s.ExactAnswer(epoch)
}

// Close releases the session's concurrent runtime, if enabled; see
// Session.Close.
func (s *MomentsSession) Close() { s.s.Close() }

// SampleResult is one collection round's outcome for the sampling session.
type SampleResult struct {
	// Epoch is the round number.
	Epoch int
	// Sample is the collected bottom-k uniform sample.
	Sample *sample.Sample
	// TrueContrib is the exact number of sensors represented in Sample.
	TrueContrib int
}

// SampleSession maintains a duplicate-insensitive uniform sample of k
// readings (§5), usable for quantiles and other order statistics.
//
// Deprecated: use Open with Sample, which exposes the same rounds through
// the generic Session API (or Quantiles for rank queries with tree-side
// precision).
type SampleSession struct {
	s *Session[*sample.Sample]
}

// NewSampleSession builds a bottom-k sampling session.
//
// Deprecated: use Open with Sample.
func NewSampleSession(d *Deployment, scheme Scheme, seed uint64, k int, value func(epoch, node int) float64) (*SampleSession, error) {
	if k <= 0 {
		return nil, fmt.Errorf("tributarydelta: sample capacity must be positive, got %d", k)
	}
	s, err := Open(d, Sample(k, value), WithScheme(scheme), WithSeed(seed))
	if err != nil {
		return nil, err
	}
	return &SampleSession{s: s}, nil
}

// RunEpoch executes one collection round.
func (s *SampleSession) RunEpoch(epoch int) SampleResult {
	res := s.s.RunEpoch(epoch)
	return SampleResult{Epoch: epoch, Sample: res.Answer, TrueContrib: res.TrueContrib}
}

// Close releases the session's concurrent runtime, if enabled; see
// Session.Close.
func (s *SampleSession) Close() { s.s.Close() }
