package tributarydelta

// Facade sessions for the remaining §5 aggregates: Min, Max, Average,
// statistical Moments and the duplicate-insensitive Uniform sample. Each
// wires the corresponding internal aggregate into the collection-round
// runner exactly like NewCountSession/NewSumSession.

import (
	"fmt"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/sample"
	"tributarydelta/internal/topo"
)

// NewMinSession builds a session tracking the minimum reading. Min is
// idempotent, so multi-path aggregation introduces no approximation error
// (§5) — the answer is exact whenever the reading's node contributes.
func NewMinSession(d *Deployment, scheme Scheme, seed uint64, value func(epoch, node int) float64) (*Session, error) {
	net := network.New(d.scenario.Graph, d.model, seed)
	tr, stop := d.newTransport(net)
	r, err := runner.New(runner.Config[float64, float64, float64, float64]{
		Graph: d.scenario.Graph, Rings: d.scenario.Rings, Tree: d.treeFor(scheme),
		Net:       net,
		Agg:       aggregate.Min{},
		Value:     value,
		Mode:      scheme,
		Seed:      seed,
		Transport: tr,
	})
	if err != nil {
		return nil, closeOnErr(stop, err)
	}
	return &Session{run: scalarAdapter[float64, float64, float64]{r}, deps: d, stop: stop}, nil
}

// NewMaxSession builds a session tracking the maximum reading; see
// NewMinSession.
func NewMaxSession(d *Deployment, scheme Scheme, seed uint64, value func(epoch, node int) float64) (*Session, error) {
	net := network.New(d.scenario.Graph, d.model, seed)
	tr, stop := d.newTransport(net)
	r, err := runner.New(runner.Config[float64, float64, float64, float64]{
		Graph: d.scenario.Graph, Rings: d.scenario.Rings, Tree: d.treeFor(scheme),
		Net:       net,
		Agg:       aggregate.Max{},
		Value:     value,
		Mode:      scheme,
		Seed:      seed,
		Transport: tr,
	})
	if err != nil {
		return nil, closeOnErr(stop, err)
	}
	return &Session{run: scalarAdapter[float64, float64, float64]{r}, deps: d, stop: stop}, nil
}

// NewAverageSession builds a session computing the mean reading as
// Sum/Count (both exact in the tributaries, sketched in the delta).
func NewAverageSession(d *Deployment, scheme Scheme, seed uint64, value func(epoch, node int) float64) (*Session, error) {
	net := network.New(d.scenario.Graph, d.model, seed)
	tr, stop := d.newTransport(net)
	r, err := runner.New(runner.Config[float64, aggregate.AvgPartial, aggregate.AvgSynopsis, float64]{
		Graph: d.scenario.Graph, Rings: d.scenario.Rings, Tree: d.treeFor(scheme),
		Net:       net,
		Agg:       aggregate.NewAverage(seed),
		Value:     value,
		Mode:      scheme,
		Seed:      seed,
		Transport: tr,
	})
	if err != nil {
		return nil, closeOnErr(stop, err)
	}
	return &Session{run: scalarAdapter[float64, aggregate.AvgPartial, aggregate.AvgSynopsis]{r}, deps: d, stop: stop}, nil
}

// MomentsResult is one collection round's outcome for the Moments session.
type MomentsResult struct {
	// Epoch is the round number.
	Epoch int
	// Value holds the estimated mean, variance and skewness.
	Value aggregate.MomentsValue
	// TrueContrib is the exact number of sensors represented in Value.
	TrueContrib int
	// DeltaSize is the current size of the multi-path delta region.
	DeltaSize int
}

// MomentsSession computes mean, variance and skewness (§5's statistical
// moments, via duplicate-insensitive power sums).
type MomentsSession struct {
	r    *runner.Runner[float64, aggregate.MomentsPartial, aggregate.MomentsSynopsis, aggregate.MomentsValue]
	stop func()
}

// NewMomentsSession builds a Moments session over non-negative readings.
func NewMomentsSession(d *Deployment, scheme Scheme, seed uint64, value func(epoch, node int) float64) (*MomentsSession, error) {
	net := network.New(d.scenario.Graph, d.model, seed)
	tr, stop := d.newTransport(net)
	r, err := runner.New(runner.Config[float64, aggregate.MomentsPartial, aggregate.MomentsSynopsis, aggregate.MomentsValue]{
		Graph: d.scenario.Graph, Rings: d.scenario.Rings, Tree: d.treeFor(scheme),
		Net:       net,
		Agg:       aggregate.NewMoments(seed),
		Value:     value,
		Mode:      scheme,
		Seed:      seed,
		Transport: tr,
	})
	if err != nil {
		return nil, closeOnErr(stop, err)
	}
	return &MomentsSession{r: r, stop: stop}, nil
}

// RunEpoch executes one collection round.
func (s *MomentsSession) RunEpoch(epoch int) MomentsResult {
	res := s.r.RunEpoch(epoch)
	return MomentsResult{
		Epoch:       epoch,
		Value:       res.Answer,
		TrueContrib: res.TrueContrib,
		DeltaSize:   res.DeltaSize,
	}
}

// ExactValue computes the ground-truth moments for an epoch.
func (s *MomentsSession) ExactValue(epoch int) aggregate.MomentsValue {
	return s.r.ExactAnswer(epoch)
}

// Close releases the session's concurrent runtime, if enabled; see
// Session.Close.
func (s *MomentsSession) Close() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

// SampleResult is one collection round's outcome for the sampling session.
type SampleResult struct {
	// Epoch is the round number.
	Epoch int
	// Sample is the collected bottom-k uniform sample.
	Sample *sample.Sample
	// TrueContrib is the exact number of sensors represented in Sample.
	TrueContrib int
}

// SampleSession maintains a duplicate-insensitive uniform sample of k
// readings (§5), usable for quantiles and other order statistics.
type SampleSession struct {
	r    *runner.Runner[float64, *sample.Sample, *sample.Sample, *sample.Sample]
	stop func()
}

// NewSampleSession builds a bottom-k sampling session.
func NewSampleSession(d *Deployment, scheme Scheme, seed uint64, k int, value func(epoch, node int) float64) (*SampleSession, error) {
	if k <= 0 {
		return nil, fmt.Errorf("tributarydelta: sample capacity must be positive, got %d", k)
	}
	net := network.New(d.scenario.Graph, d.model, seed)
	tr, stop := d.newTransport(net)
	r, err := runner.New(runner.Config[float64, *sample.Sample, *sample.Sample, *sample.Sample]{
		Graph: d.scenario.Graph, Rings: d.scenario.Rings, Tree: d.treeFor(scheme),
		Net:       net,
		Agg:       aggregate.NewUniformSample(seed, k),
		Value:     value,
		Mode:      scheme,
		Seed:      seed,
		Transport: tr,
	})
	if err != nil {
		return nil, closeOnErr(stop, err)
	}
	return &SampleSession{r: r, stop: stop}, nil
}

// RunEpoch executes one collection round.
func (s *SampleSession) RunEpoch(epoch int) SampleResult {
	res := s.r.RunEpoch(epoch)
	return SampleResult{Epoch: epoch, Sample: res.Answer, TrueContrib: res.TrueContrib}
}

// Close releases the session's concurrent runtime, if enabled; see
// Session.Close.
func (s *SampleSession) Close() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

// treeFor picks the aggregation tree for a scheme: the TAG construction for
// the pure-tree baseline, the restricted tree otherwise.
func (d *Deployment) treeFor(scheme Scheme) *topo.Tree {
	if scheme == SchemeTAG {
		return d.scenario.TAGTree
	}
	return d.scenario.Tree
}
