package tributarydelta

// The Pool is the multi-deployment host: where a Session is one
// deployment's collection loop, a Pool runs many independent deployments
// concurrently under a shared worker budget — the "many concurrent users"
// direction of the roadmap. Each deployment's epochs stay strictly ordered
// (sessions are not concurrent-safe), but distinct deployments advance in
// parallel, so aggregate epoch throughput scales with cores up to the
// budget. A hosted deployment is either one scalar session (Add) or a
// whole QuerySet (AddSet) — multi-query deployments advance all their
// queries per round. cmd/tdserve exposes a Pool over HTTP.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// hosted is what a pool entry advances: one scalar session or a query set,
// both reporting rounds in the uniform SetRound shape.
type hosted interface {
	runEpoch(epoch int) SetRound
	sensors() int
	queries() []string
	poolStats() SessionStats
	transportErr() error
	transportHealth() FleetHealth
	setWorkers(n int)
	close()
}

// hostedSession adapts a scalar session to the hosted contract.
type hostedSession struct{ s *Session[float64] }

func (h hostedSession) runEpoch(epoch int) SetRound {
	return SetRound{Epoch: epoch, Results: []any{h.s.RunEpoch(epoch)}}
}
func (h hostedSession) sensors() int            { return h.s.Sensors() }
func (h hostedSession) queries() []string       { return []string{h.s.QueryName()} }
func (h hostedSession) poolStats() SessionStats { return h.s.Stats() }
func (h hostedSession) transportErr() error     { return h.s.TransportErr() }
func (h hostedSession) transportHealth() FleetHealth {
	return h.s.TransportHealth()
}
func (h hostedSession) setWorkers(n int) { h.s.SetWorkers(n) }
func (h hostedSession) close()           { h.s.Close() }

// hostedSet adapts a query set to the hosted contract.
type hostedSet struct{ qs *QuerySet }

func (h hostedSet) runEpoch(epoch int) SetRound { return h.qs.RunEpoch(epoch) }
func (h hostedSet) sensors() int                { return h.qs.d.Sensors() }
func (h hostedSet) queries() []string           { return h.qs.Names() }
func (h hostedSet) poolStats() SessionStats {
	var total SessionStats
	for _, st := range h.qs.MemberStats() {
		total.TotalWords += st.TotalWords
		total.TotalBytes += st.TotalBytes
		total.Losses += st.Losses
		total.InboxDrops += st.InboxDrops
		total.RxFrames += st.RxFrames
		total.Duplicates += st.Duplicates
	}
	return total
}
func (h hostedSet) transportErr() error          { return h.qs.TransportErr() }
func (h hostedSet) transportHealth() FleetHealth { return h.qs.TransportHealth() }
func (h hostedSet) setWorkers(n int)             { h.qs.SetWorkers(n) }
func (h hostedSet) close()                       { h.qs.Close() }

// Pool hosts many independent deployments — scalar sessions or query sets —
// and advances them concurrently under a shared worker budget. All methods
// are safe for concurrent use. The pool owns the sessions and sets added to
// it: Remove (and Close) closes them.
//
// The budget governs two levels of parallelism: at most Workers deployments
// advance at once, and each hosted deployment's intra-epoch wave engine
// (see WithWorkers) is re-bounded to max(1, Workers/deployments) — so one
// hosted deployment on an idle pool keeps full per-epoch parallelism,
// while a full pool degrades every deployment to the sequential engine
// instead of oversubscribing the machine. Rebalanced bounds apply at each
// deployment's next round; answers never depend on them.
type Pool struct {
	workers int
	sem     chan struct{}
	mu      sync.Mutex
	entries map[string]*poolEntry
	// pipelined switches RunEpochs from lock-step (return every
	// deployment's rounds together) to enqueue-and-return: each deployment
	// drains its queue independently under the shared budget and Barrier
	// collects finished rounds on demand. outstanding counts enqueued
	// rounds not yet finished; idle (on mu) signals it reaching zero.
	pipelined   bool
	outstanding int
	idle        sync.Cond
}

// poolEntry serializes access to one hosted deployment. closed marks it as
// released: a run goroutine that snapshotted the entry before a concurrent
// Remove must not touch the closed deployment.
type poolEntry struct {
	mu     sync.Mutex
	h      hosted
	next   int // next epoch number
	last   SetRound
	closed bool
	// workers is the pool-assigned wave-engine bound (the shared budget
	// divided across hosted deployments); runLocked applies a change at the
	// next round, so rebalancing never blocks on an in-flight run.
	workers        atomic.Int64
	appliedWorkers int
	// Pipelined-mode queue state, all guarded by Pool.mu: pending rounds
	// not yet run, finished rounds awaiting Barrier, and whether a drainer
	// goroutine is currently responsible for this entry.
	pending int
	queued  []SetRound
	running bool
}

// DeploymentStatus is a point-in-time snapshot of one hosted deployment.
type DeploymentStatus struct {
	// ID is the deployment's pool identifier.
	ID string
	// Epochs is the number of collection rounds completed so far.
	Epochs int
	// Sensors is the number of participating sensors.
	Sensors int
	// Queries names the hosted queries, in registration order.
	Queries []string
	// Last is the most recent round's results (zero until the first round).
	Last SetRound
	// Stats is the deployment's cumulative communication accounting, summed
	// over its queries.
	Stats SessionStats
	// TransportErr is the deployment's delivery-backend sticky error, if any
	// — an exhausted respawn budget, an oversized frame, a socket failure.
	// Nil for the in-process backends and for a healthy (or recovering)
	// fleet; see Health for transient shard trouble.
	TransportErr error
	// Health is the UDP runtime's supervision snapshot — per-shard state,
	// restart counts, degraded epochs. Zero (Healthy() true) for the
	// in-process backends.
	Health FleetHealth
}

// NewPool returns a pool that runs at most workers deployments at once;
// workers <= 0 means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		sem:     make(chan struct{}, workers),
		entries: make(map[string]*poolEntry),
	}
	p.idle.L = &p.mu
	return p
}

// Workers returns the pool's worker budget.
func (p *Pool) Workers() int { return p.workers }

// add registers a hosted deployment under id.
func (p *Pool) add(id string, h hosted) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.entries[id]; ok {
		return fmt.Errorf("tributarydelta: pool: deployment %q already exists", id)
	}
	p.entries[id] = &poolEntry{h: h}
	p.rebalanceLocked()
	return nil
}

// rebalanceLocked re-divides the worker budget across the hosted
// deployments. Caller holds p.mu; the new bounds are applied lazily by each
// entry's next round.
func (p *Pool) rebalanceLocked() {
	if len(p.entries) == 0 {
		return
	}
	per := p.workers / len(p.entries)
	if per < 1 {
		per = 1
	}
	for _, e := range p.entries {
		e.workers.Store(int64(per))
	}
}

// Add registers scalar session s under id. The pool takes ownership of the
// session; it is an error to keep running it directly.
func (p *Pool) Add(id string, s *Session[float64]) error {
	if s == nil {
		return fmt.Errorf("tributarydelta: pool: nil session")
	}
	return p.add(id, hostedSession{s: s})
}

// AddSet registers query set qs under id — a multi-query deployment whose
// rounds advance every member in lock-step. The pool takes ownership.
func (p *Pool) AddSet(id string, qs *QuerySet) error {
	if qs == nil {
		return fmt.Errorf("tributarydelta: pool: nil query set")
	}
	return p.add(id, hostedSet{qs: qs})
}

// Remove unregisters and closes the deployment; it reports whether id was
// present. It blocks until any in-flight rounds of that deployment finish.
func (p *Pool) Remove(id string) bool {
	p.mu.Lock()
	e, ok := p.entries[id]
	delete(p.entries, id)
	p.rebalanceLocked()
	p.mu.Unlock()
	if !ok {
		return false
	}
	e.mu.Lock() // wait out an in-flight run
	e.closed = true
	e.h.close()
	e.mu.Unlock()
	return true
}

// IDs returns the registered deployment ids, sorted.
func (p *Pool) IDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]string, 0, len(p.entries))
	for id := range p.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of hosted deployments.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Status reports a snapshot of one deployment.
func (p *Pool) Status(id string) (DeploymentStatus, bool) {
	p.mu.Lock()
	e, ok := p.entries[id]
	p.mu.Unlock()
	if !ok {
		return DeploymentStatus{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return DeploymentStatus{
		ID:           id,
		Epochs:       e.next,
		Sensors:      e.h.sensors(),
		Queries:      e.h.queries(),
		Last:         e.last,
		Stats:        e.h.poolStats(),
		TransportErr: e.h.transportErr(),
		Health:       e.h.transportHealth(),
	}, true
}

// runLocked advances one deployment by rounds epochs. Caller holds e.mu.
func (e *poolEntry) runLocked(rounds int) []SetRound {
	if w := int(e.workers.Load()); w > 0 && w != e.appliedWorkers {
		e.h.setWorkers(w)
		e.appliedWorkers = w
	}
	out := make([]SetRound, 0, rounds)
	for i := 0; i < rounds; i++ {
		res := e.h.runEpoch(e.next)
		e.next++
		e.last = res
		out = append(out, res)
	}
	return out
}

// RunDeployment advances one deployment by rounds epochs (continuing from
// its last round) under the worker budget and returns the per-round
// results: one result per round for a scalar deployment, one per member
// per round for a query set.
func (p *Pool) RunDeployment(id string, rounds int) ([]SetRound, error) {
	out, _, err := p.RunRounds(id, rounds)
	return out, err
}

// RunRounds is RunDeployment also returning the query names the round
// results are labeled with, read under the same entry lock — so a
// concurrent remove-and-recreate of the id cannot mislabel the results.
func (p *Pool) RunRounds(id string, rounds int) ([]SetRound, []string, error) {
	p.mu.Lock()
	e, ok := p.entries[id]
	p.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("tributarydelta: pool: no deployment %q", id)
	}
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, nil, fmt.Errorf("tributarydelta: pool: deployment %q was removed", id)
	}
	return e.runLocked(rounds), e.h.queries(), nil
}

// RunEpochs advances every hosted deployment by rounds epochs. In the
// default lock-step mode it runs deployments concurrently under the worker
// budget, waits for all of them, and returns the per-deployment results. In
// pipelined mode (SetPipelined) it only enqueues the rounds and returns nil
// immediately: each deployment drains its own queue independently — a slow
// deployment never holds up the rest — and Barrier collects the finished
// rounds. Either way each deployment's rounds execute in epoch order; only
// distinct deployments overlap, so per-deployment answer sequences are
// bit-identical across both modes.
func (p *Pool) RunEpochs(rounds int) map[string][]SetRound {
	p.mu.Lock()
	if p.pipelined {
		if rounds > 0 {
			for _, e := range p.entries {
				e.pending += rounds
				p.outstanding += rounds
				if !e.running {
					e.running = true
					go p.drain(e)
				}
			}
		}
		p.mu.Unlock()
		return nil
	}
	snapshot := make(map[string]*poolEntry, len(p.entries))
	for id, e := range p.entries {
		snapshot[id] = e
	}
	p.mu.Unlock()

	results := make(map[string][]SetRound, len(snapshot))
	var rmu sync.Mutex
	var wg sync.WaitGroup
	for id, e := range snapshot {
		wg.Add(1)
		go func(id string, e *poolEntry) {
			defer wg.Done()
			p.sem <- struct{}{}
			defer func() { <-p.sem }()
			e.mu.Lock()
			if e.closed { // removed after the snapshot
				e.mu.Unlock()
				return
			}
			out := e.runLocked(rounds)
			e.mu.Unlock()
			rmu.Lock()
			results[id] = out
			rmu.Unlock()
		}(id, e)
	}
	wg.Wait()
	return results
}

// drain is a pipelined deployment's worker loop: take one queued round at a
// time under the shared budget, run it, and bank the result for Barrier.
// Exactly one drainer runs per entry (per-deployment epochs stay strictly
// ordered); it retires when the queue empties or the deployment is removed.
func (p *Pool) drain(e *poolEntry) {
	for {
		p.mu.Lock()
		if e.pending == 0 {
			e.running = false
			p.mu.Unlock()
			return
		}
		e.pending--
		p.mu.Unlock()

		p.sem <- struct{}{}
		e.mu.Lock()
		if e.closed { // removed mid-queue: drop this and all remaining rounds
			e.mu.Unlock()
			<-p.sem
			p.mu.Lock()
			dropped := e.pending + 1
			e.pending = 0
			e.running = false
			p.outstanding -= dropped
			if p.outstanding == 0 {
				p.idle.Broadcast()
			}
			p.mu.Unlock()
			return
		}
		out := e.runLocked(1)
		e.mu.Unlock()
		<-p.sem

		p.mu.Lock()
		e.queued = append(e.queued, out...)
		p.outstanding--
		if p.outstanding == 0 {
			p.idle.Broadcast()
		}
		p.mu.Unlock()
	}
}

// collectLocked hands over every entry's banked pipelined rounds. Caller
// holds p.mu. Rounds banked by a deployment removed before collection are
// gone with it.
func (p *Pool) collectLocked() map[string][]SetRound {
	results := make(map[string][]SetRound, len(p.entries))
	for id, e := range p.entries {
		if len(e.queued) > 0 {
			results[id] = e.queued
			e.queued = nil
		}
	}
	return results
}

// Barrier waits until every round enqueued in pipelined mode has finished
// and returns the per-deployment results banked since the last collection
// (Barrier or SetPipelined(false)) — the on-demand lock-step snapshot: after
// it returns, every deployment sits at a quiescent epoch boundary. In
// lock-step mode with nothing outstanding it returns an empty map.
func (p *Pool) Barrier() map[string][]SetRound {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.outstanding > 0 {
		p.idle.Wait()
	}
	return p.collectLocked()
}

// SetPipelined switches RunEpochs between lock-step (off, the default) and
// pipelined enqueue-and-return (on). Turning pipelining off first drains the
// queues and returns the banked rounds, exactly like a final Barrier —
// toggling is safe mid-run. Turning it on returns nil.
func (p *Pool) SetPipelined(on bool) map[string][]SetRound {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pipelined = on
	if on {
		return nil
	}
	for p.outstanding > 0 {
		p.idle.Wait()
	}
	return p.collectLocked()
}

// Close removes and closes every hosted deployment.
func (p *Pool) Close() {
	for _, id := range p.IDs() {
		p.Remove(id)
	}
}
