package tributarydelta

// The Pool is the multi-deployment host: where a Session is one
// deployment's collection loop, a Pool runs many independent deployments
// concurrently under a shared worker budget — the "many concurrent users"
// direction of the roadmap. Each deployment's epochs stay strictly ordered
// (sessions are not concurrent-safe), but distinct deployments advance in
// parallel, so aggregate epoch throughput scales with cores up to the
// budget. cmd/tdserve exposes a Pool over HTTP.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Pool hosts many independent scalar sessions — one per deployment — and
// advances them concurrently under a shared worker budget. All methods are
// safe for concurrent use. The pool owns the sessions added to it: Remove
// (and removing via RunEpochs' callers) closes them.
type Pool struct {
	workers int
	sem     chan struct{}
	mu      sync.Mutex
	entries map[string]*poolEntry
}

// poolEntry serializes access to one hosted session. closed marks the
// session as released: a run goroutine that snapshotted the entry before a
// concurrent Remove must not touch the closed session.
type poolEntry struct {
	mu     sync.Mutex
	s      *Session
	next   int // next epoch number
	last   Result
	closed bool
}

// DeploymentStatus is a point-in-time snapshot of one hosted deployment.
type DeploymentStatus struct {
	// ID is the deployment's pool identifier.
	ID string
	// Epochs is the number of collection rounds completed so far.
	Epochs int
	// Sensors is the number of participating sensors.
	Sensors int
	// Last is the most recent round's result (zero until the first round).
	Last Result
	// TotalBytes and TotalWords are the deployment's cumulative encoded
	// transmission cost.
	TotalBytes int64
	// TotalWords is the 32-bit-word denomination of TotalBytes.
	TotalWords int64
}

// NewPool returns a pool that runs at most workers deployments at once;
// workers <= 0 means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		workers: workers,
		sem:     make(chan struct{}, workers),
		entries: make(map[string]*poolEntry),
	}
}

// Workers returns the pool's worker budget.
func (p *Pool) Workers() int { return p.workers }

// Add registers session s under id. The pool takes ownership of the
// session; it is an error to keep running it directly.
func (p *Pool) Add(id string, s *Session) error {
	if s == nil {
		return fmt.Errorf("tributarydelta: pool: nil session")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.entries[id]; ok {
		return fmt.Errorf("tributarydelta: pool: deployment %q already exists", id)
	}
	p.entries[id] = &poolEntry{s: s}
	return nil
}

// Remove unregisters and closes the deployment; it reports whether id was
// present. It blocks until any in-flight rounds of that deployment finish.
func (p *Pool) Remove(id string) bool {
	p.mu.Lock()
	e, ok := p.entries[id]
	delete(p.entries, id)
	p.mu.Unlock()
	if !ok {
		return false
	}
	e.mu.Lock() // wait out an in-flight run
	e.closed = true
	e.s.Close()
	e.mu.Unlock()
	return true
}

// IDs returns the registered deployment ids, sorted.
func (p *Pool) IDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]string, 0, len(p.entries))
	for id := range p.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of hosted deployments.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Status reports a snapshot of one deployment.
func (p *Pool) Status(id string) (DeploymentStatus, bool) {
	p.mu.Lock()
	e, ok := p.entries[id]
	p.mu.Unlock()
	if !ok {
		return DeploymentStatus{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return DeploymentStatus{
		ID:         id,
		Epochs:     e.next,
		Sensors:    e.s.Sensors(),
		Last:       e.last,
		TotalBytes: e.s.TotalBytes(),
		TotalWords: e.s.TotalWords(),
	}, true
}

// runLocked advances one deployment by rounds epochs. Caller holds e.mu.
func (e *poolEntry) runLocked(rounds int) []Result {
	out := make([]Result, 0, rounds)
	for i := 0; i < rounds; i++ {
		res := e.s.RunEpoch(e.next)
		e.next++
		e.last = res
		out = append(out, res)
	}
	return out
}

// RunDeployment advances one deployment by rounds epochs (continuing from
// its last round) under the worker budget and returns the results.
func (p *Pool) RunDeployment(id string, rounds int) ([]Result, error) {
	p.mu.Lock()
	e, ok := p.entries[id]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tributarydelta: pool: no deployment %q", id)
	}
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("tributarydelta: pool: deployment %q was removed", id)
	}
	return e.runLocked(rounds), nil
}

// RunEpochs advances every hosted deployment by rounds epochs, running
// deployments concurrently under the worker budget, and returns the
// per-deployment results. Each deployment's rounds execute in epoch order;
// only distinct deployments overlap.
func (p *Pool) RunEpochs(rounds int) map[string][]Result {
	p.mu.Lock()
	snapshot := make(map[string]*poolEntry, len(p.entries))
	for id, e := range p.entries {
		snapshot[id] = e
	}
	p.mu.Unlock()

	results := make(map[string][]Result, len(snapshot))
	var rmu sync.Mutex
	var wg sync.WaitGroup
	for id, e := range snapshot {
		wg.Add(1)
		go func(id string, e *poolEntry) {
			defer wg.Done()
			p.sem <- struct{}{}
			defer func() { <-p.sem }()
			e.mu.Lock()
			if e.closed { // removed after the snapshot
				e.mu.Unlock()
				return
			}
			out := e.runLocked(rounds)
			e.mu.Unlock()
			rmu.Lock()
			results[id] = out
			rmu.Unlock()
		}(id, e)
	}
	wg.Wait()
	return results
}

// Close removes and closes every hosted deployment.
func (p *Pool) Close() {
	for _, id := range p.IDs() {
		p.Remove(id)
	}
}
