package tributarydelta

// Facade coverage for scripted node churn: a fixed WithChurn schedule —
// deaths, rejoins and a mid-run re-parent riding the §4.2 adaptation — must
// produce bit-identical answers across worker counts and the sim/chan
// transports, must actually depress ground-truth contributions while nodes
// are down, and infeasible schedules must be rejected at Open.

import (
	"strings"
	"testing"
)

// findTDReparent derives a feasible TD-mode reparent from the deployment's
// topology: a reachable node with a second radio neighbour one ring closer
// than itself (§4.1 requires tree links to be rings links).
func findTDReparent(d *Deployment) (node, parent int, ok bool) {
	sc := d.scenario
	for v := 1; v < sc.Graph.N(); v++ {
		if !sc.Rings.Reachable(v) || sc.Tree.Parent[v] == -1 {
			continue
		}
		cur := sc.Tree.Parent[v]
		for _, u := range sc.Graph.Adj[v] {
			if u != cur && sc.Tree.InTree(u) && sc.Rings.Level[u] == sc.Rings.Level[v]-1 {
				return v, u, true
			}
		}
	}
	return 0, 0, false
}

// churnFixture builds the test's fixed schedule against a fresh deployment:
// two nodes die, the tree re-parents mid-outage, and both nodes rejoin.
func churnFixture(t *testing.T) (mk func() *Deployment, sched []ChurnEvent, downs []int) {
	t.Helper()
	mk = func() *Deployment {
		d := NewSyntheticDeployment(11, 200)
		d.SetGlobalLoss(0.2)
		return d
	}
	d := mk()
	node, parent, ok := findTDReparent(d)
	if !ok {
		t.Fatal("no feasible TD reparent in the fixture deployment")
	}
	for v := 1; v < d.scenario.Graph.N() && len(downs) < 2; v++ {
		if v != node && v != parent && d.scenario.Rings.Reachable(v) {
			downs = append(downs, v)
		}
	}
	if len(downs) != 2 {
		t.Fatal("fixture deployment has too few reachable sensors")
	}
	sched = []ChurnEvent{
		{Epoch: 3, Kind: ChurnDown, Node: downs[0]},
		{Epoch: 4, Kind: ChurnDown, Node: downs[1]},
		{Epoch: 7, Kind: ChurnReparent, Node: node, NewParent: parent},
		{Epoch: 9, Kind: ChurnUp, Node: downs[0]},
		{Epoch: 12, Kind: ChurnUp, Node: downs[1]},
	}
	return mk, sched, downs
}

// TestChurnGoldenMatrix pins the determinism contract under churn: the fixed
// schedule's 24 epochs — spanning two §4.2 adaptation periods — answer
// bit-identically across Workers 1/3/8 and the sim and concurrent-channel
// transports, and the outage window demonstrably removes contributions
// relative to the same run without churn.
func TestChurnGoldenMatrix(t *testing.T) {
	mk, sched, _ := churnFixture(t)
	run := func(workers int, concurrent bool, churn []ChurnEvent) []Result[float64] {
		s, err := Open(mk(), Count(), WithSeed(11), WithWorkers(workers),
			WithConcurrentRuntime(concurrent), WithChurn(churn...))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if h := s.TransportHealth(); !h.Healthy() || len(h.Shards) != 0 {
			t.Fatalf("in-process backend reported fleet health %+v", h)
		}
		return s.Run(0, 24)
	}

	ref := run(1, false, sched)
	for _, workers := range []int{3, 8} {
		for _, concurrent := range []bool{false, true} {
			got := run(workers, concurrent, sched)
			for e := range ref {
				if got[e].Answer != ref[e].Answer || got[e].TrueContrib != ref[e].TrueContrib ||
					got[e].EstContrib != ref[e].EstContrib || got[e].DeltaSize != ref[e].DeltaSize {
					t.Fatalf("workers=%d concurrent=%v epoch %d: %+v diverged from reference %+v",
						workers, concurrent, e, got[e], ref[e])
				}
			}
		}
	}

	// The schedule must have teeth: over the outage window the churned run's
	// ground-truth contributions drop below the undisturbed run's (same seed,
	// same loss realization — the only difference is the dead nodes).
	base := run(1, false, nil)
	churned, quiet := 0, 0
	for e := 4; e < 9; e++ {
		churned += ref[e].TrueContrib
		quiet += base[e].TrueContrib
	}
	if churned >= quiet {
		t.Fatalf("outage window did not depress contributions: churned %d, undisturbed %d", churned, quiet)
	}
	// After every node rejoined, churn and no-churn runs need not agree
	// (the reparent persists) but both must keep producing contributions.
	if ref[23].TrueContrib == 0 || base[23].TrueContrib == 0 {
		t.Fatalf("post-churn epochs stopped contributing: churned %d, undisturbed %d",
			ref[23].TrueContrib, base[23].TrueContrib)
	}
}

// TestChurnValidation pins Open's up-front schedule validation: every
// infeasible event class is rejected with a diagnostic naming the event.
func TestChurnValidation(t *testing.T) {
	mk, _, downs := churnFixture(t)
	n := mk().scenario.Graph.N()
	cases := []struct {
		name string
		ev   []ChurnEvent
		want string
	}{
		{"base station", []ChurnEvent{{Epoch: 1, Kind: ChurnDown, Node: 0}}, "base station"},
		{"out of range", []ChurnEvent{{Epoch: 1, Kind: ChurnDown, Node: n + 5}}, "out of range"},
		{"negative epoch", []ChurnEvent{{Epoch: -1, Kind: ChurnDown, Node: downs[0]}}, "negative epoch"},
		{"double down", []ChurnEvent{
			{Epoch: 1, Kind: ChurnDown, Node: downs[0]},
			{Epoch: 2, Kind: ChurnDown, Node: downs[0]},
		}, "already down"},
		{"up without down", []ChurnEvent{{Epoch: 1, Kind: ChurnUp, Node: downs[0]}}, "not down"},
		{"self parent", []ChurnEvent{
			{Epoch: 1, Kind: ChurnReparent, Node: downs[0], NewParent: downs[0]},
		}, "invalid new parent"},
		{"unknown kind", []ChurnEvent{{Epoch: 1, Kind: ChurnKind(99), Node: downs[0]}}, "unknown kind"},
	}
	for _, tc := range cases {
		_, err := Open(mk(), Count(), WithChurn(tc.ev...))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: Open error = %v, want %q", tc.name, err, tc.want)
		}
	}
}
