package tributarydelta_test

// One benchmark per table and figure of the paper's evaluation (§7), each
// regenerating its artifact through the experiments harness in Quick mode
// (reduced node counts and epochs — the full-scale versions are run with
// cmd/tdbench; see DESIGN.md). Micro-benchmarks cover the hot substrate
// operations.

import (
	"fmt"
	"testing"

	td "tributarydelta"

	"tributarydelta/internal/experiments"
	"tributarydelta/internal/freq"
	"tributarydelta/internal/network"
	"tributarydelta/internal/quantile"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/xrand"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, experiments.Options{Seed: uint64(i + 1), Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkFig2(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFig4(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5a(b *testing.B)   { benchExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)   { benchExperiment(b, "fig5b") }
func BenchmarkFig6(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7a(b *testing.B)   { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)   { benchExperiment(b, "fig7b") }
func BenchmarkFig8(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9a(b *testing.B)   { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)   { benchExperiment(b, "fig9b") }
func BenchmarkLabData(b *testing.B) { benchExperiment(b, "labdata") }

// BenchmarkEpochCount measures one full 600-node Count collection round per
// scheme — the simulator's core loop.
func BenchmarkEpochCount(b *testing.B) {
	for _, scheme := range []td.Scheme{td.SchemeTAG, td.SchemeSD, td.SchemeTD} {
		b.Run(scheme.String(), func(b *testing.B) {
			dep := td.NewSyntheticDeployment(1, 600)
			dep.SetGlobalLoss(0.2)
			s, err := td.NewCountSession(dep, scheme, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunEpoch(i)
			}
		})
	}
}

// BenchmarkEpochCountWorkers measures the 600-node Count round across
// wave-engine worker bounds — the scaling series recorded in BENCH_4.json
// and smoke-checked by CI (workers=4 must never regress past workers=1 by
// more than 10%; see TestParallelOverheadGuard).
func BenchmarkEpochCountWorkers(b *testing.B) {
	for _, scheme := range []td.Scheme{td.SchemeTAG, td.SchemeSD, td.SchemeTD} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers-%d", scheme, workers), func(b *testing.B) {
				dep := td.NewSyntheticDeployment(1, 600)
				dep.SetGlobalLoss(0.2)
				s, err := td.Open(dep, td.Count(), td.WithScheme(scheme), td.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.RunEpoch(i)
				}
			})
		}
	}
}

// BenchmarkSketchInsert measures FM sketch insertion throughput.
func BenchmarkSketchInsert(b *testing.B) {
	s := sketch.New(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InsertHash(xrand.Mix64(uint64(i)))
	}
}

// BenchmarkSketchAddCountLarge measures the Considine-style simulated
// insertion of a large count.
func BenchmarkSketchAddCountLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sketch.New(40)
		s.AddCount(1, uint64(i), 1_000_000)
	}
}

// BenchmarkFreqTreeRun measures one in-tree Min Total-load frequent items
// pass over the lab deployment.
func BenchmarkFreqTreeRun(b *testing.B) {
	g := topo.NewLabField()
	r := topo.BuildRings(g)
	tr := topo.BuildRestrictedTree(g, r, 1)
	topo.OpportunisticImprove(g, r, tr, 1, 8)
	src := xrand.NewSource(9)
	z := xrand.NewZipf(src, 1000, 1.1)
	perNode := make(map[int][]freq.Item)
	for v := 1; v < g.N(); v++ {
		items := make([]freq.Item, 500)
		for i := range items {
			items[i] = freq.Item(z.Draw())
		}
		perNode[v] = items
	}
	d := topo.TreeDominationFactor(tr, 0.05)
	grad := freq.MinTotalLoad{Epsilon: 0.001, D: d}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		freq.RunTree(tr, func(v int) []freq.Item { return perNode[v] }, grad)
	}
}

// BenchmarkQuantileMergePrune measures the mergeable summary's core cycle.
func BenchmarkQuantileMergePrune(b *testing.B) {
	src := xrand.NewSource(3)
	mk := func() *quantile.Summary {
		vals := make([]float64, 500)
		for i := range vals {
			vals[i] = src.Float64() * 1000
		}
		return quantile.FromUnsorted(vals)
	}
	a, c := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := quantile.Merge(a, c)
		m.Prune(100)
	}
}

// BenchmarkAdaptationDecision measures one TD controller decision over a
// 600-node labeled graph.
func BenchmarkAdaptationDecision(b *testing.B) {
	dep := td.NewSyntheticDeployment(1, 600)
	dep.SetGlobalLoss(0.3)
	s, err := td.NewCountSession(dep, td.SchemeTD, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunEpoch(i) // includes a decision every AdaptEvery epochs
	}
}

// BenchmarkRingsConstruction measures topology building.
func BenchmarkRingsConstruction(b *testing.B) {
	g := topo.NewRandomField(1, 600, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := topo.BuildRings(g)
		tr := topo.BuildRestrictedTree(g, r, uint64(i))
		topo.OpportunisticImprove(g, r, tr, uint64(i), 8)
	}
}

// BenchmarkDelivery measures the per-link loss decision.
func BenchmarkDelivery(b *testing.B) {
	g := topo.NewRandomField(1, 100, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
	n := network.New(g, network.Global{P: 0.3}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Delivered(i, 0, 1, 2)
	}
}
