package tributarydelta_test

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	td "tributarydelta"
)

// measureEpochNS times one steady-state 600-node Count epoch for the given
// scheme and wave-engine worker bound.
func measureEpochNS(b testing.TB, scheme td.Scheme, workers int, extra ...td.Option) float64 {
	dep := td.NewSyntheticDeployment(1, 600)
	dep.SetGlobalLoss(0.2)
	opts := append([]td.Option{td.WithScheme(scheme), td.WithWorkers(workers)}, extra...)
	s, err := td.Open(dep, td.Count(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	epoch := 0
	for ; epoch < 20; epoch++ { // warm pools, buffers and the phase gate
		s.RunEpoch(epoch)
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.RunEpoch(epoch)
			epoch++
		}
	})
	return float64(res.NsPerOp())
}

// TestParallelOverheadGuard is the CI smoke check that parallelism never
// silently rots: the wave engine at Workers=4 must stay within 10% of the
// sequential engine even on a starved host (CI runners may have one usable
// core, where workers cost wake-ups and buy nothing — the adaptive phase
// gate is what keeps that affordable). On multi-core hosts the same bound
// holds trivially, since workers then win outright. Opt-in via
// TD_BENCH_SMOKE=1 (it costs seconds); skips when timing is too noisy to
// judge, like the other perf guards.
func TestParallelOverheadGuard(t *testing.T) {
	if os.Getenv("TD_BENCH_SMOKE") == "" {
		t.Skip("set TD_BENCH_SMOKE=1 to run the benchmark smoke guard")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	for _, scheme := range []td.Scheme{td.SchemeTAG, td.SchemeSD, td.SchemeTD} {
		// Interleave two samples of each configuration and judge on the
		// minima — both sides get the same protection against a one-off GC
		// pause or scheduler hiccup inflating a sample.
		seq1 := measureEpochNS(t, scheme, 1)
		par1 := measureEpochNS(t, scheme, 4)
		seq2 := measureEpochNS(t, scheme, 1)
		par2 := measureEpochNS(t, scheme, 4)
		if hi, lo := math.Max(seq1, seq2), math.Min(seq1, seq2); hi > lo*1.3 {
			t.Logf("%v: timing too noisy to judge (%.0f vs %.0f ns/op sequential), skipping", scheme, seq1, seq2)
			continue
		}
		base := math.Min(seq1, seq2)
		par := math.Min(par1, par2)
		t.Logf("%v: sequential %.0f ns/op, workers=4 %.0f ns/op (ratio %.3f)", scheme, base, par, par/base)
		if par > base*1.10 {
			t.Errorf("%v: workers=4 epoch %.0f ns/op exceeds sequential %.0f ns/op by more than 10%%",
				scheme, par, base)
		}
	}
}

// TestSDMemoGuard is the CI smoke check that the epoch-over-epoch synopsis
// memoization never becomes a pessimization: the SD epoch with the caches
// engaged must stay within 10% of the cache-free engine on the lossy bench
// workload (where clean-path hits are rare and the guard is pure overhead
// accounting), and must actually win under zero loss (where every node goes
// clean). Opt-in via TD_BENCH_SMOKE=1 like the other perf guards.
func TestSDMemoGuard(t *testing.T) {
	if os.Getenv("TD_BENCH_SMOKE") == "" {
		t.Skip("set TD_BENCH_SMOKE=1 to run the benchmark smoke guard")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	memo1 := measureEpochNS(t, td.SchemeSD, 1)
	base1 := measureEpochNS(t, td.SchemeSD, 1, td.WithSynopsisMemo(false))
	memo2 := measureEpochNS(t, td.SchemeSD, 1)
	base2 := measureEpochNS(t, td.SchemeSD, 1, td.WithSynopsisMemo(false))
	if hi, lo := math.Max(base1, base2), math.Min(base1, base2); hi > lo*1.3 {
		t.Logf("timing too noisy to judge (%.0f vs %.0f ns/op unmemoized), skipping", base1, base2)
		return
	}
	base := math.Min(base1, base2)
	memo := math.Min(memo1, memo2)
	t.Logf("SD: unmemoized %.0f ns/op, memoized %.0f ns/op (ratio %.3f)", base, memo, memo/base)
	if memo > base*1.10 {
		t.Errorf("SD memoized epoch %.0f ns/op exceeds unmemoized %.0f ns/op by more than 10%%", memo, base)
	}
}

// TestSDFusedUnionGuard is the CI smoke check that the fused multi-sketch
// unions never become a pessimization: the SD epoch with one-pass inbox
// folds must stay within 10% of the per-sender union loop. (On the bench
// workload the fused path should win outright — the bound is deliberately
// loose so scheduler noise can't flake the guard.) Opt-in via
// TD_BENCH_SMOKE=1 like the other perf guards.
func TestSDFusedUnionGuard(t *testing.T) {
	if os.Getenv("TD_BENCH_SMOKE") == "" {
		t.Skip("set TD_BENCH_SMOKE=1 to run the benchmark smoke guard")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	fused1 := measureEpochNS(t, td.SchemeSD, 1)
	loop1 := measureEpochNS(t, td.SchemeSD, 1, td.WithFusedUnions(false))
	fused2 := measureEpochNS(t, td.SchemeSD, 1)
	loop2 := measureEpochNS(t, td.SchemeSD, 1, td.WithFusedUnions(false))
	if hi, lo := math.Max(loop1, loop2), math.Min(loop1, loop2); hi > lo*1.3 {
		t.Logf("timing too noisy to judge (%.0f vs %.0f ns/op looped), skipping", loop1, loop2)
		return
	}
	loop := math.Min(loop1, loop2)
	fused := math.Min(fused1, fused2)
	t.Logf("SD: looped %.0f ns/op, fused %.0f ns/op (ratio %.3f)", loop, fused, fused/loop)
	if fused > loop*1.10 {
		t.Errorf("SD fused-union epoch %.0f ns/op exceeds looped %.0f ns/op by more than 10%%", fused, loop)
	}
}

// TestUDPBatchGuard is the CI smoke check that datagram coalescing never
// becomes a pessimization: the UDP epoch with batching on must stay within
// 5% of the one-frame-per-datagram data plane. (It should win outright — a
// batched epoch costs a handful of sendmmsg calls against hundreds of
// sendto — so the bound mostly guards against the coalescing bookkeeping
// rotting.) Opt-in via TD_BENCH_SMOKE=1; self-skips when the loopback
// timing is too noisy to judge, like the other perf guards.
func TestUDPBatchGuard(t *testing.T) {
	if os.Getenv("TD_BENCH_SMOKE") == "" {
		t.Skip("set TD_BENCH_SMOKE=1 to run the benchmark smoke guard")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	udp := []td.Option{td.WithUDPTransport(4)}
	batch1 := measureEpochNS(t, td.SchemeTD, 1, udp...)
	single1 := measureEpochNS(t, td.SchemeTD, 1, append(udp, td.WithDatagramBatching(false))...)
	batch2 := measureEpochNS(t, td.SchemeTD, 1, udp...)
	single2 := measureEpochNS(t, td.SchemeTD, 1, append(udp, td.WithDatagramBatching(false))...)
	if hi, lo := math.Max(single1, single2), math.Min(single1, single2); hi > lo*1.3 {
		t.Logf("timing too noisy to judge (%.0f vs %.0f ns/op unbatched), skipping", single1, single2)
		return
	}
	single := math.Min(single1, single2)
	batch := math.Min(batch1, batch2)
	t.Logf("UDP: unbatched %.0f ns/op, batched %.0f ns/op (ratio %.3f)", single, batch, batch/single)
	if batch > single*1.05 {
		t.Errorf("batched UDP epoch %.0f ns/op exceeds unbatched %.0f ns/op by more than 5%%", batch, single)
	}
}

// TestPipelinedPoolGuard is the CI smoke check that pipelined pool
// scheduling actually buys throughput where it should: with 4 deployments
// on a multi-core host, enqueue-and-drain must not fall behind lock-step
// rounds (it should win, since a slow deployment no longer gates the rest).
// A single-core host serializes both modes, so there is nothing to guard —
// skip. Opt-in via TD_BENCH_SMOKE=1 like the other perf guards.
func TestPipelinedPoolGuard(t *testing.T) {
	if os.Getenv("TD_BENCH_SMOKE") == "" {
		t.Skip("set TD_BENCH_SMOKE=1 to run the benchmark smoke guard")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("single core: lock-step and pipelined scheduling serialize identically")
	}
	const deployments = 4
	measure := func(pipelined bool) float64 {
		p := td.NewPool(0)
		defer p.Close()
		for i := 0; i < deployments; i++ {
			dep := td.NewSyntheticDeployment(uint64(i+1), 300)
			dep.SetGlobalLoss(0.2)
			s, err := td.NewCountSession(dep, td.SchemeTD, uint64(i+1))
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Add(fmt.Sprintf("d%d", i), s); err != nil {
				t.Fatal(err)
			}
		}
		p.RunEpochs(10) // warm every session
		p.SetPipelined(pipelined)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.RunEpochs(2)
			}
			p.Barrier()
		})
		return float64(res.NsPerOp())
	}
	lock1, pipe1 := measure(false), measure(true)
	lock2, pipe2 := measure(false), measure(true)
	if hi, lo := math.Max(lock1, lock2), math.Min(lock1, lock2); hi > lo*1.3 {
		t.Logf("timing too noisy to judge (%.0f vs %.0f ns/op lock-step), skipping", lock1, lock2)
		return
	}
	lock := math.Min(lock1, lock2)
	pipe := math.Min(pipe1, pipe2)
	t.Logf("pool x%d: lock-step %.0f ns/op, pipelined %.0f ns/op (ratio %.3f)", deployments, lock, pipe, pipe/lock)
	if pipe > lock*1.10 {
		t.Errorf("pipelined pool rounds %.0f ns/op exceed lock-step %.0f ns/op by more than 10%%", pipe, lock)
	}
}
