// Package tributarydelta is a Go implementation of the Tributary-Delta
// framework of Manjhi, Nath and Gibbons, "Tributaries and Deltas: Efficient
// and Robust Aggregation in Sensor Network Streams" (SIGMOD 2005).
//
// Tributary-Delta combines the two classical in-network aggregation
// approaches for wireless sensor networks: exact, compact tree aggregation
// (TAG-style) in low-loss regions — the tributaries — and duplicate-
// insensitive multi-path aggregation (synopsis diffusion over rings) around
// the base station — the delta. The boundary between the two adapts at
// runtime to the observed fraction of contributing nodes.
//
// The package is a facade over the internal implementation:
//
//   - Deployment assembles a sensor field, its rings decomposition, the
//     restricted aggregation tree and a failure model.
//   - Session runs collection rounds for a chosen aggregate and scheme
//     (TAG, SD, TD-Coarse or TD) and reports per-epoch answers, the
//     contributing-node counts and energy statistics.
//   - Pool hosts many independent deployments and advances them
//     concurrently under a shared worker budget (cmd/tdserve exposes a
//     Pool over HTTP).
//   - Frequent items and quantiles expose the §6 algorithms directly for
//     in-tree computation with precision gradients.
//
// Deployment.UseConcurrentRuntime swaps the synchronous in-process
// simulator for the goroutine-per-node concurrent transport
// (internal/transport) in its deterministic mode — answers stay
// bit-identical; see DESIGN.md §5 for the concurrency model.
//
// A minimal session:
//
//	dep := tributarydelta.NewSyntheticDeployment(1, 600)
//	dep.SetGlobalLoss(0.2)
//	s, err := tributarydelta.NewCountSession(dep, tributarydelta.SchemeTD, 1)
//	if err != nil { ... }
//	res := s.RunEpoch(0)
//	fmt.Println(res.Answer, res.TrueContrib)
//
// Messages travel as real bytes: every partial result and synopsis is
// serialized by the internal/wire codec layer, and all energy accounting
// (TotalWords, TotalBytes) is measured from encoded frame lengths.
//
// The cmd/tdbench tool regenerates every table and figure of the paper's
// evaluation; DESIGN.md covers the architecture, the wire format and the
// experiment harness.
package tributarydelta

import (
	"fmt"
	"math"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/freq"
	"tributarydelta/internal/network"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/transport"
	"tributarydelta/internal/workload"
)

// Scheme selects the aggregation approach of a Session.
type Scheme = runner.Mode

// Aggregation schemes.
const (
	// SchemeTAG runs pure tree aggregation (the TAG baseline).
	SchemeTAG = runner.ModeTree
	// SchemeSD runs pure multi-path synopsis diffusion over rings.
	SchemeSD = runner.ModeMultipath
	// SchemeTDCoarse adapts the delta region a whole level at a time.
	SchemeTDCoarse = runner.ModeTDCoarse
	// SchemeTD adapts the delta region subtree by subtree.
	SchemeTD = runner.ModeTD
)

// Deployment is an assembled sensor field: positions, radio connectivity,
// the rings decomposition, the restricted aggregation tree (links ⊆ rings,
// §4.1) and a TAG tree for the pure-tree baseline.
type Deployment struct {
	scenario   *workload.Scenario
	model      network.Model
	concurrent bool
}

// NewSyntheticDeployment places n sensors uniformly in the paper's 20×20
// field with the base station at (10,10).
func NewSyntheticDeployment(seed uint64, n int) *Deployment {
	return &Deployment{
		scenario: workload.NewSynthetic(seed, n),
		model:    network.Global{P: 0},
	}
}

// NewLabDeployment builds the 54-sensor LabData-style deployment with its
// distance-derived loss model.
func NewLabDeployment(seed uint64) *Deployment {
	sc := workload.NewLab(seed)
	return &Deployment{scenario: sc, model: sc.LabLossModel()}
}

// SetGlobalLoss installs the Global(p) failure model.
func (d *Deployment) SetGlobalLoss(p float64) {
	d.model = network.Global{P: p}
}

// SetRegionalLoss installs the Regional(p1,p2) failure model: senders in the
// rectangle {(x0,y0),(x1,y1)} lose messages at p1, everyone else at p2.
func (d *Deployment) SetRegionalLoss(x0, y0, x1, y1, p1, p2 float64) {
	d.model = network.Regional{
		Region: network.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1},
		P1:     p1, P2: p2, Pos: d.scenario.Graph.Pos,
	}
}

// Sensors returns the number of sensor nodes (excluding the base station).
func (d *Deployment) Sensors() int { return d.scenario.Graph.Sensors() }

// Rings returns each node's ring level (hop count from the base station).
func (d *Deployment) Rings() []int {
	return append([]int(nil), d.scenario.Rings.Level...)
}

// DominationFactor returns the aggregation tree's domination factor at the
// paper's 0.05 granularity (§6.1.2).
func (d *Deployment) DominationFactor() float64 {
	return topo.TreeDominationFactor(d.scenario.Tree, 0.05)
}

// UseConcurrentRuntime selects the frame-delivery backend for sessions
// subsequently built from this deployment. When enabled, every session runs
// the goroutine-per-node concurrent runtime (one worker per sensor draining
// a bounded inbox of frames, with an epoch barrier between rounds) in its
// deterministic mode, so answers are bit-identical to the in-process
// simulator. Sessions built with the concurrent runtime own node goroutines
// and should be released with Close when done.
func (d *Deployment) UseConcurrentRuntime(on bool) { d.concurrent = on }

// newTransport returns the delivery backend for a session over net: nil
// (the synchronous in-process simulator) unless the concurrent runtime is
// enabled, plus the release hook Session.Close runs.
func (d *Deployment) newTransport(net *network.Net) (runner.Transport, func()) {
	if !d.concurrent {
		return nil, nil
	}
	ch := transport.New(net, transport.Options{Deterministic: true})
	return ch, ch.Close
}

// Scenario exposes the underlying workload scenario for advanced use
// together with the internal packages.
func (d *Deployment) Scenario() *workload.Scenario { return d.scenario }

// Model exposes the current failure model.
func (d *Deployment) Model() network.Model { return d.model }

// Result is one collection round's outcome for scalar aggregates.
type Result struct {
	// Epoch is the round number.
	Epoch int
	// Answer is the base station's result.
	Answer float64
	// TrueContrib is the exact number of sensors represented in Answer.
	TrueContrib int
	// EstContrib is the base station's own (approximate) contribution count.
	EstContrib float64
	// DeltaSize is the current size of the multi-path delta region.
	DeltaSize int
}

// Session runs collection rounds of a scalar aggregate over a deployment.
// Sessions are not safe for concurrent use; Pool coordinates many of them.
type Session struct {
	run  scalarRunner
	deps *Deployment
	stop func()
}

// scalarRunner erases the runner's generic parameters for the facade.
type scalarRunner interface {
	epoch(e int) Result
	exact(e int) float64
	sensors() int
	deltaSize() int
	totalWords() int64
	totalBytes() int64
}

type scalarAdapter[V, P, S any] struct {
	r *runner.Runner[V, P, S, float64]
}

func (a scalarAdapter[V, P, S]) epoch(e int) Result {
	res := a.r.RunEpoch(e)
	return Result{
		Epoch:       res.Epoch,
		Answer:      res.Answer,
		TrueContrib: res.TrueContrib,
		EstContrib:  res.EstContrib,
		DeltaSize:   res.DeltaSize,
	}
}

func (a scalarAdapter[V, P, S]) exact(e int) float64 { return a.r.ExactAnswer(e) }
func (a scalarAdapter[V, P, S]) sensors() int        { return a.r.Sensors() }
func (a scalarAdapter[V, P, S]) deltaSize() int      { return a.r.State().DeltaSize() }
func (a scalarAdapter[V, P, S]) totalWords() int64   { return a.r.Stats.TotalWords() }
func (a scalarAdapter[V, P, S]) totalBytes() int64   { return a.r.Stats.TotalBytes() }

// NewCountSession builds a session counting the contributing sensors — the
// paper's running example aggregate.
func NewCountSession(d *Deployment, scheme Scheme, seed uint64) (*Session, error) {
	net := network.New(d.scenario.Graph, d.model, seed)
	tr, stop := d.newTransport(net)
	r, err := runner.New(runner.Config[struct{}, int64, *sketch.Sketch, float64]{
		Graph: d.scenario.Graph, Rings: d.scenario.Rings, Tree: d.treeFor(scheme),
		Net:       net,
		Agg:       aggregate.NewCount(seed),
		Value:     func(int, int) struct{} { return struct{}{} },
		Mode:      scheme,
		Seed:      seed,
		Transport: tr,
	})
	if err != nil {
		return nil, closeOnErr(stop, err)
	}
	return &Session{run: scalarAdapter[struct{}, int64, *sketch.Sketch]{r}, deps: d, stop: stop}, nil
}

// NewSumSession builds a session summing per-node readings supplied by
// value(epoch, node). Readings must be non-negative.
func NewSumSession(d *Deployment, scheme Scheme, seed uint64, value func(epoch, node int) float64) (*Session, error) {
	net := network.New(d.scenario.Graph, d.model, seed)
	tr, stop := d.newTransport(net)
	r, err := runner.New(runner.Config[float64, float64, *sketch.Sketch, float64]{
		Graph: d.scenario.Graph, Rings: d.scenario.Rings, Tree: d.treeFor(scheme),
		Net:       net,
		Agg:       aggregate.NewSum(seed),
		Value:     value,
		Mode:      scheme,
		Seed:      seed,
		Transport: tr,
	})
	if err != nil {
		return nil, closeOnErr(stop, err)
	}
	return &Session{run: scalarAdapter[float64, float64, *sketch.Sketch]{r}, deps: d, stop: stop}, nil
}

// closeOnErr releases a just-built transport when session construction
// fails, and wraps the error with the facade prefix.
func closeOnErr(stop func(), err error) error {
	if stop != nil {
		stop()
	}
	return fmt.Errorf("tributarydelta: %w", err)
}

// RunEpoch executes one collection round.
func (s *Session) RunEpoch(epoch int) Result { return s.run.epoch(epoch) }

// Close releases resources owned by the session — the concurrent runtime's
// node goroutines when the deployment enabled it. It is a no-op for
// simulator-backed sessions and safe to call more than once.
func (s *Session) Close() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

// Run executes rounds collection rounds starting at startEpoch.
func (s *Session) Run(startEpoch, rounds int) []Result {
	out := make([]Result, 0, rounds)
	for e := 0; e < rounds; e++ {
		out = append(out, s.run.epoch(startEpoch+e))
	}
	return out
}

// ExactAnswer computes the ground-truth answer for an epoch.
func (s *Session) ExactAnswer(epoch int) float64 { return s.run.exact(epoch) }

// Sensors returns the number of participating sensors.
func (s *Session) Sensors() int { return s.run.sensors() }

// DeltaSize returns the current delta region size.
func (s *Session) DeltaSize() int { return s.run.deltaSize() }

// TotalWords returns the total 32-bit payload words transmitted so far,
// derived from the encoded frame lengths.
func (s *Session) TotalWords() int64 { return s.run.totalWords() }

// TotalBytes returns the total encoded payload bytes transmitted so far —
// the byte-exact energy measure underneath TotalWords.
func (s *Session) TotalBytes() int64 { return s.run.totalBytes() }

// FrequentItemsResult is the outcome of one frequent items round.
type FrequentItemsResult struct {
	Epoch int
	// Frequent lists the reported items (estimate > (s−ε)·N̂).
	Frequent []freq.Item
	// Estimates holds the per-item frequency estimates.
	Estimates map[freq.Item]float64
	// NEst is the estimated total number of item occurrences.
	NEst float64
	// TrueContrib is the exact number of sensors represented.
	TrueContrib int
}

// FrequentItemsSession runs the §6 Tributary-Delta frequent items algorithm.
type FrequentItemsSession struct {
	r       *runner.Runner[[]freq.Item, *freq.Summary, *freq.Synopsis, freq.Result]
	support float64
	epsilon float64
	stop    func()
}

// NewFrequentItemsSession builds a frequent items session: items(epoch,
// node) supplies each node's item collection, epsilon is the total error
// tolerance and support the reporting threshold (s ≫ ε). expectedN is an
// upper bound on the total item occurrences per epoch (nodes are assumed to
// know log N, §6.2).
func NewFrequentItemsSession(d *Deployment, scheme Scheme, seed uint64,
	items func(epoch, node int) []freq.Item, epsilon, support float64, expectedN float64) (*FrequentItemsSession, error) {
	if epsilon <= 0 || support <= epsilon {
		return nil, fmt.Errorf("tributarydelta: need 0 < epsilon < support, got eps=%v s=%v", epsilon, support)
	}
	tree := d.treeFor(scheme)
	dfac := topo.TreeDominationFactor(tree, 0.05)
	if dfac < 1.2 {
		dfac = 1.2
	}
	logN := log2(expectedN) + 1
	agg := freq.NewAgg(tree,
		freq.MinTotalLoad{Epsilon: epsilon / 2, D: dfac},
		epsilon/2,
		freq.DefaultParams(seed, epsilon/2, logN))
	net := network.New(d.scenario.Graph, d.model, seed)
	tr, stop := d.newTransport(net)
	r, err := runner.New(runner.Config[[]freq.Item, *freq.Summary, *freq.Synopsis, freq.Result]{
		Graph: d.scenario.Graph, Rings: d.scenario.Rings, Tree: tree,
		Net:       net,
		Agg:       agg,
		Value:     items,
		Mode:      scheme,
		Seed:      seed,
		Transport: tr,
	})
	if err != nil {
		return nil, closeOnErr(stop, err)
	}
	return &FrequentItemsSession{r: r, support: support, epsilon: epsilon, stop: stop}, nil
}

// RunEpoch executes one frequent items round.
func (s *FrequentItemsSession) RunEpoch(epoch int) FrequentItemsResult {
	res := s.r.RunEpoch(epoch)
	return FrequentItemsResult{
		Epoch:       epoch,
		Frequent:    res.Answer.Frequent(s.support, s.epsilon),
		Estimates:   res.Answer.Estimates,
		NEst:        res.Answer.NEst,
		TrueContrib: res.TrueContrib,
	}
}

// Close releases the session's concurrent runtime, if enabled; see
// Session.Close.
func (s *FrequentItemsSession) Close() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

func log2(x float64) float64 { return math.Log2(x) }
