// Package tributarydelta is a Go implementation of the Tributary-Delta
// framework of Manjhi, Nath and Gibbons, "Tributaries and Deltas: Efficient
// and Robust Aggregation in Sensor Network Streams" (SIGMOD 2005).
//
// Tributary-Delta combines the two classical in-network aggregation
// approaches for wireless sensor networks: exact, compact tree aggregation
// (TAG-style) in low-loss regions — the tributaries — and duplicate-
// insensitive multi-path aggregation (synopsis diffusion over rings) around
// the base station — the delta. The boundary between the two adapts at
// runtime to the observed fraction of contributing nodes.
//
// The package is a facade over the internal implementation, organized
// around one Query API:
//
//   - Deployment assembles a sensor field, its rings decomposition, the
//     restricted aggregation tree and a failure model.
//   - A Query[R] describes an aggregate — Count, Sum, Min, Max, Average,
//     Moments, Sample, FrequentItems or Quantiles — as inert data;
//     functional options (WithScheme, WithSeed, WithEpsilon, …) tune it.
//   - Open runs a query over a deployment as a generic Session[R]:
//     per-epoch answers, contributing-node counts and a Stats snapshot of
//     the energy accounting, with Run/Stream collection loops.
//   - QuerySet advances many queries over one deployment in lock-step
//     rounds sharing a single loss realization per epoch.
//   - Pool hosts many independent deployments and advances them
//     concurrently under a shared worker budget (cmd/tdserve exposes a
//     Pool over HTTP).
//
// A minimal session:
//
//	dep := tributarydelta.NewSyntheticDeployment(1, 600)
//	dep.SetGlobalLoss(0.2)
//	s, err := tributarydelta.Open(dep, tributarydelta.Count(),
//		tributarydelta.WithScheme(tributarydelta.SchemeTD))
//	if err != nil { ... }
//	defer s.Close()
//	res := s.RunEpoch(0)
//	fmt.Println(res.Answer, res.TrueContrib)
//
// Deployment.UseConcurrentRuntime swaps the synchronous in-process
// simulator for the goroutine-per-node concurrent transport
// (internal/transport) in its deterministic mode — answers stay
// bit-identical; see DESIGN.md §5 for the concurrency model and §6 for the
// query layer.
//
// Messages travel as real bytes: every partial result and synopsis is
// serialized by the internal/wire codec layer, and all energy accounting
// (SessionStats) is measured from encoded frame lengths.
//
// The original constructor-per-aggregate surface (NewCountSession,
// NewSumSession, …) survives as thin deprecated shims over Open with
// unchanged answers.
//
// The cmd/tdbench tool regenerates every table and figure of the paper's
// evaluation; DESIGN.md covers the architecture, the wire format and the
// experiment harness.
package tributarydelta

import (
	"fmt"
	"math"

	"tributarydelta/internal/freq"
	"tributarydelta/internal/network"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/transport"
	"tributarydelta/internal/workload"
)

// Scheme selects the aggregation approach of a session.
type Scheme = runner.Mode

// Aggregation schemes.
const (
	// SchemeTAG runs pure tree aggregation (the TAG baseline).
	SchemeTAG = runner.ModeTree
	// SchemeSD runs pure multi-path synopsis diffusion over rings.
	SchemeSD = runner.ModeMultipath
	// SchemeTDCoarse adapts the delta region a whole level at a time.
	SchemeTDCoarse = runner.ModeTDCoarse
	// SchemeTD adapts the delta region subtree by subtree.
	SchemeTD = runner.ModeTD
)

// FleetHealth is a point-in-time supervision snapshot of a session's UDP
// shard fleet: per-shard state, restart counts and degraded epochs. It
// aliases the transport type so the two never drift; see
// Session.TransportHealth.
type FleetHealth = transport.HealthSnapshot

// ShardHealth describes one shard in a FleetHealth snapshot.
type ShardHealth = transport.ShardHealth

// ChurnEvent is one scripted topology change of a WithChurn schedule: a
// node dying, rejoining or re-parenting at a fixed epoch. It aliases the
// runner type so the two never drift.
type ChurnEvent = runner.ChurnEvent

// ChurnKind selects a ChurnEvent's effect.
type ChurnKind = runner.ChurnKind

// Churn event kinds.
const (
	// ChurnDown silences a node: it stops transmitting and everything sent
	// to it is lost, while it stays in the contributing-% denominator —
	// the non-contributing pressure the §4.2 adaptation absorbs.
	ChurnDown = runner.ChurnDown
	// ChurnUp revives a previously downed node in place.
	ChurnUp = runner.ChurnUp
	// ChurnReparent moves a node's tree link to a new parent (a radio
	// neighbour; under the TD schemes also one ring closer to the base).
	ChurnReparent = runner.ChurnReparent
)

// Deployment is an assembled sensor field: positions, radio connectivity,
// the rings decomposition, the restricted aggregation tree (links ⊆ rings,
// §4.1) and a TAG tree for the pure-tree baseline.
type Deployment struct {
	scenario   *workload.Scenario
	model      network.Model
	concurrent bool
	udpShards  int
	udpBinary  string
	udpNoBatch bool
}

// NewSyntheticDeployment places n sensors uniformly in the paper's 20×20
// field with the base station at (10,10).
func NewSyntheticDeployment(seed uint64, n int) *Deployment {
	return &Deployment{
		scenario: workload.NewSynthetic(seed, n),
		model:    network.Global{P: 0},
	}
}

// NewLabDeployment builds the 54-sensor LabData-style deployment with its
// distance-derived loss model.
func NewLabDeployment(seed uint64) *Deployment {
	sc := workload.NewLab(seed)
	return &Deployment{scenario: sc, model: sc.LabLossModel()}
}

// SetGlobalLoss installs the Global(p) failure model.
func (d *Deployment) SetGlobalLoss(p float64) {
	d.model = network.Global{P: p}
}

// SetRegionalLoss installs the Regional(p1,p2) failure model: senders in the
// rectangle {(x0,y0),(x1,y1)} lose messages at p1, everyone else at p2.
func (d *Deployment) SetRegionalLoss(x0, y0, x1, y1, p1, p2 float64) {
	d.model = network.Regional{
		Region: network.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1},
		P1:     p1, P2: p2, Pos: d.scenario.Graph.Pos,
	}
}

// Sensors returns the number of sensor nodes (excluding the base station).
func (d *Deployment) Sensors() int { return d.scenario.Graph.Sensors() }

// Rings returns each node's ring level (hop count from the base station).
func (d *Deployment) Rings() []int {
	return append([]int(nil), d.scenario.Rings.Level...)
}

// DominationFactor returns the aggregation tree's domination factor at the
// paper's 0.05 granularity (§6.1.2).
func (d *Deployment) DominationFactor() float64 {
	return topo.TreeDominationFactor(d.scenario.Tree, 0.05)
}

// UseConcurrentRuntime selects the frame-delivery backend for sessions
// subsequently built from this deployment. When enabled, every session runs
// the goroutine-per-node concurrent runtime (one worker per sensor draining
// a bounded inbox of frames, with an epoch barrier between rounds) in its
// deterministic mode, so answers are bit-identical to the in-process
// simulator. Sessions built with the concurrent runtime own node goroutines
// and should be released with Close when done. WithConcurrentRuntime
// overrides the choice per session.
func (d *Deployment) UseConcurrentRuntime(on bool) { d.concurrent = on }

// UseUDPRuntime selects the multi-process UDP transport for sessions
// subsequently built from this deployment: nodes are partitioned over shards
// shard runtimes (loopback processes, or in-process goroutines over real
// sockets by default — see SetUDPNodeBinary) and every frame travels as a
// real UDP datagram. The runtime runs in its deterministic mode, so answers
// stay bit-identical to the in-process backends. shards <= 0 reverts to the
// in-process runtimes. WithUDPTransport overrides the choice per session;
// UseUDPRuntime takes precedence over UseConcurrentRuntime when both are
// enabled.
func (d *Deployment) UseUDPRuntime(shards int) { d.udpShards = shards }

// SetDatagramBatching toggles the UDP runtime's datagram coalescing for
// sessions and query sets subsequently built from this deployment (default
// on): all frames a round sends to a shard pack into MTU-bounded batch
// datagrams, submitted in batched syscalls at the epoch barrier. Answers are
// bit-identical either way — turning it off restores the one-frame-per-
// datagram data plane as an A/B lever for benchmarking and parity tests, not
// a behavioral switch. WithDatagramBatching overrides the choice per session.
func (d *Deployment) SetDatagramBatching(on bool) { d.udpNoBatch = !on }

// SetUDPNodeBinary points the UDP runtime at a tdnode executable: each shard
// becomes `path -control <addr> -shard <i>`, a separate OS process. An empty
// path (the default) runs shards as goroutines in this process — identical
// protocol and sockets, no exec.
func (d *Deployment) SetUDPNodeBinary(path string) { d.udpBinary = path }

// udpSpawner resolves the shard spawner for the deployment's UDP runtime.
func (d *Deployment) udpSpawner() transport.Spawner {
	if d.udpBinary == "" {
		return nil
	}
	return transport.SpawnExec(d.udpBinary)
}

// Scenario exposes the underlying workload scenario for advanced use
// together with the internal packages.
func (d *Deployment) Scenario() *workload.Scenario { return d.scenario }

// Model exposes the current failure model.
func (d *Deployment) Model() network.Model { return d.model }

// treeFor picks the aggregation tree for a scheme: the TAG construction for
// the pure-tree baseline, the restricted tree otherwise.
func (d *Deployment) treeFor(scheme Scheme) *topo.Tree {
	if scheme == SchemeTAG {
		return d.scenario.TAGTree
	}
	return d.scenario.Tree
}

// closeOnErr releases a just-built transport when session construction
// fails, and wraps the error with the facade prefix.
func closeOnErr(stop func(), err error) error {
	if stop != nil {
		stop()
	}
	return fmt.Errorf("tributarydelta: %w", err)
}

// NewCountSession builds a session counting the contributing sensors — the
// paper's running example aggregate.
//
// Deprecated: use Open with Count.
func NewCountSession(d *Deployment, scheme Scheme, seed uint64) (*Session[float64], error) {
	return Open(d, Count(), WithScheme(scheme), WithSeed(seed))
}

// NewSumSession builds a session summing per-node readings supplied by
// value(epoch, node). Readings must be non-negative.
//
// Deprecated: use Open with Sum.
func NewSumSession(d *Deployment, scheme Scheme, seed uint64, value func(epoch, node int) float64) (*Session[float64], error) {
	return Open(d, Sum(value), WithScheme(scheme), WithSeed(seed))
}

// FrequentItemsResult is the outcome of one frequent items round.
type FrequentItemsResult struct {
	// Epoch is the round number.
	Epoch int
	// Frequent lists the reported items (estimate > (s−ε)·N̂).
	Frequent []freq.Item
	// Estimates holds the per-item frequency estimates.
	Estimates map[freq.Item]float64
	// NEst is the estimated total number of item occurrences.
	NEst float64
	// TrueContrib is the exact number of sensors represented.
	TrueContrib int
}

// FrequentItemsSession runs the §6 Tributary-Delta frequent items
// algorithm.
//
// Deprecated: use Open with FrequentItems, which exposes the same rounds
// through the generic Session API.
type FrequentItemsSession struct {
	s *Session[FrequentItemsAnswer]
}

// NewFrequentItemsSession builds a frequent items session: items(epoch,
// node) supplies each node's item collection, epsilon is the total error
// tolerance and support the reporting threshold (s ≫ ε). expectedN is an
// upper bound on the total item occurrences per epoch (nodes are assumed to
// know log N, §6.2).
//
// Deprecated: use Open with FrequentItems and WithEpsilon.
func NewFrequentItemsSession(d *Deployment, scheme Scheme, seed uint64,
	items func(epoch, node int) []freq.Item, epsilon, support float64, expectedN float64) (*FrequentItemsSession, error) {
	if epsilon <= 0 || support <= epsilon {
		return nil, fmt.Errorf("tributarydelta: need 0 < epsilon < support, got eps=%v s=%v", epsilon, support)
	}
	s, err := Open(d, FrequentItems(items, support, expectedN),
		WithScheme(scheme), WithSeed(seed), WithEpsilon(epsilon))
	if err != nil {
		return nil, err
	}
	return &FrequentItemsSession{s: s}, nil
}

// RunEpoch executes one frequent items round.
func (s *FrequentItemsSession) RunEpoch(epoch int) FrequentItemsResult {
	res := s.s.RunEpoch(epoch)
	return FrequentItemsResult{
		Epoch:       epoch,
		Frequent:    res.Answer.Frequent,
		Estimates:   res.Answer.Estimates,
		NEst:        res.Answer.NEst,
		TrueContrib: res.TrueContrib,
	}
}

// Close releases the session's concurrent runtime, if enabled; see
// Session.Close.
func (s *FrequentItemsSession) Close() { s.s.Close() }

func log2(x float64) float64 { return math.Log2(x) }
