package tributarydelta_test

import (
	"fmt"
	"sync"
	"testing"

	td "tributarydelta"
)

func poolCountSession(t testing.TB, seed uint64, n int, concurrent bool) *td.Session[float64] {
	t.Helper()
	dep := td.NewSyntheticDeployment(seed, n)
	dep.SetGlobalLoss(0.25)
	dep.UseConcurrentRuntime(concurrent)
	s, err := td.NewCountSession(dep, td.SchemeTD, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPoolRunEpochsMatchesSolo pins the pool's core contract: hosting a
// deployment changes nothing about its answers — epoch numbering continues
// across RunEpochs calls and every result equals a solo session's.
func TestPoolRunEpochsMatchesSolo(t *testing.T) {
	p := td.NewPool(4)
	defer p.Close()
	const deployments = 3
	for i := 0; i < deployments; i++ {
		if err := p.Add(fmt.Sprintf("d%d", i), poolCountSession(t, uint64(i+1), 150, false)); err != nil {
			t.Fatal(err)
		}
	}
	first := p.RunEpochs(4)
	second := p.RunEpochs(3)
	if len(first) != deployments || len(second) != deployments {
		t.Fatalf("result sets: %d then %d deployments, want %d", len(first), len(second), deployments)
	}
	for i := 0; i < deployments; i++ {
		id := fmt.Sprintf("d%d", i)
		solo := poolCountSession(t, uint64(i+1), 150, false)
		got := append(append([]td.SetRound(nil), first[id]...), second[id]...)
		for e, round := range got {
			want := solo.RunEpoch(e)
			if res := scalarOf(t, round); res != want {
				t.Fatalf("%s epoch %d: pooled %+v, solo %+v", id, e, res, want)
			}
		}
		st, ok := p.Status(id)
		if !ok || st.Epochs != 7 || scalarOf(t, st.Last) != scalarOf(t, got[6]) {
			t.Fatalf("%s status = %+v ok=%v, want 7 epochs ending %+v", id, st, ok, got[6])
		}
		if st.Stats.TotalBytes <= 0 || st.Sensors <= 0 {
			t.Fatalf("%s status missing accounting: %+v", id, st)
		}
		if len(st.Queries) != 1 || st.Queries[0] != "Count" {
			t.Fatalf("%s queries = %v", id, st.Queries)
		}
	}
}

// TestPoolConcurrentRuntimeSessions hosts sessions that themselves run the
// goroutine-per-node transport: nested concurrency must still reproduce the
// simulator answers.
func TestPoolConcurrentRuntimeSessions(t *testing.T) {
	p := td.NewPool(2)
	defer p.Close()
	if err := p.Add("conc", poolCountSession(t, 9, 150, true)); err != nil {
		t.Fatal(err)
	}
	got, err := p.RunDeployment("conc", 5)
	if err != nil {
		t.Fatal(err)
	}
	solo := poolCountSession(t, 9, 150, false)
	for e, round := range got {
		if res, want := scalarOf(t, round), solo.RunEpoch(e); res != want {
			t.Fatalf("epoch %d: concurrent-runtime %+v, simulator %+v", e, res, want)
		}
	}
}

// scalarOf extracts the single scalar result of a one-query round.
func scalarOf(t testing.TB, round td.SetRound) td.Result[float64] {
	t.Helper()
	if len(round.Results) != 1 {
		t.Fatalf("round has %d results, want 1: %+v", len(round.Results), round)
	}
	res, ok := round.Results[0].(td.Result[float64])
	if !ok {
		t.Fatalf("round result is %T, want Result[float64]", round.Results[0])
	}
	return res
}

// TestPoolLifecycle exercises Add/Remove/IDs error paths and concurrent use
// of the pool's public surface.
func TestPoolLifecycle(t *testing.T) {
	p := td.NewPool(0) // GOMAXPROCS default
	if p.Workers() < 1 {
		t.Fatalf("workers = %d", p.Workers())
	}
	s := poolCountSession(t, 1, 120, false)
	if err := p.Add("a", s); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("a", poolCountSession(t, 2, 120, false)); err == nil {
		t.Fatal("duplicate Add should fail")
	}
	if err := p.Add("nil", nil); err == nil {
		t.Fatal("nil session Add should fail")
	}
	if _, err := p.RunDeployment("ghost", 1); err == nil {
		t.Fatal("RunDeployment on unknown id should fail")
	}
	if _, ok := p.Status("ghost"); ok {
		t.Fatal("Status on unknown id should report absence")
	}
	if got := p.IDs(); len(got) != 1 || got[0] != "a" || p.Len() != 1 {
		t.Fatalf("ids = %v len = %d", got, p.Len())
	}

	// Hammer the pool from several goroutines: runs, status and removals
	// must interleave safely (-race is the real assertion here). The
	// concurrent-runtime sessions make a Remove racing a snapshotted
	// RunEpochs fatal if the pool ever runs a closed session — its inbox
	// channels are closed, so a late RunEpoch would panic.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("g%d", g)
			if err := p.Add(id, poolCountSession(t, uint64(10+g), 120, true)); err != nil {
				t.Error(err)
				return
			}
			if _, err := p.RunDeployment(id, 2); err != nil {
				t.Error(err)
			}
			p.RunEpochs(1)
			if _, ok := p.Status(id); !ok {
				t.Errorf("%s vanished", id)
			}
			p.Remove(id)
			if _, err := p.RunDeployment(id, 1); err == nil {
				t.Errorf("%s: run after remove should fail", id)
			}
		}(g)
	}
	wg.Wait()
	if !p.Remove("a") || p.Remove("a") {
		t.Fatal("Remove should succeed once then report absence")
	}
	if p.Len() != 0 {
		t.Fatalf("pool not empty: %v", p.IDs())
	}
}

// TestPoolPipelinedMatchesLockStep pins the pipelined mode's core contract:
// enqueue-and-return scheduling changes only when results arrive, never what
// they are — every deployment's answer sequence equals the lock-step (and
// hence solo) sequence, with epoch numbering continuous across enqueues and
// barriers.
func TestPoolPipelinedMatchesLockStep(t *testing.T) {
	p := td.NewPool(4)
	defer p.Close()
	const deployments = 3
	for i := 0; i < deployments; i++ {
		if err := p.Add(fmt.Sprintf("d%d", i), poolCountSession(t, uint64(i+1), 150, false)); err != nil {
			t.Fatal(err)
		}
	}
	if out := p.SetPipelined(true); out != nil {
		t.Fatalf("SetPipelined(true) = %v, want nil", out)
	}
	if out := p.RunEpochs(4); out != nil {
		t.Fatalf("pipelined RunEpochs returned %v, want nil", out)
	}
	p.RunEpochs(2)
	mid := p.Barrier()
	p.RunEpochs(3)
	rest := p.Barrier()
	if again := p.Barrier(); len(again) != 0 {
		t.Fatalf("second barrier rebanked rounds: %v", again)
	}
	for i := 0; i < deployments; i++ {
		id := fmt.Sprintf("d%d", i)
		got := append(append([]td.SetRound(nil), mid[id]...), rest[id]...)
		if len(got) != 9 {
			t.Fatalf("%s: %d rounds banked, want 9", id, len(got))
		}
		solo := poolCountSession(t, uint64(i+1), 150, false)
		for e, round := range got {
			if round.Epoch != e {
				t.Fatalf("%s: round %d labeled epoch %d", id, e, round.Epoch)
			}
			if res, want := scalarOf(t, round), solo.RunEpoch(e); res != want {
				t.Fatalf("%s epoch %d: pipelined %+v, solo %+v", id, e, res, want)
			}
		}
		if st, ok := p.Status(id); !ok || st.Epochs != 9 {
			t.Fatalf("%s status = %+v ok=%v, want 9 epochs", id, st, ok)
		}
	}
}

// TestPoolPipelinedToggle flips pipelining mid-run: the switch-off drains
// and returns the banked rounds like a final barrier, and the subsequent
// lock-step rounds continue the same epoch sequence.
func TestPoolPipelinedToggle(t *testing.T) {
	p := td.NewPool(2)
	defer p.Close()
	if err := p.Add("a", poolCountSession(t, 5, 150, false)); err != nil {
		t.Fatal(err)
	}
	p.SetPipelined(true)
	p.RunEpochs(3)
	drained := p.SetPipelined(false)
	if len(drained["a"]) != 3 {
		t.Fatalf("SetPipelined(false) drained %d rounds, want 3", len(drained["a"]))
	}
	lock := p.RunEpochs(2)
	got := append(append([]td.SetRound(nil), drained["a"]...), lock["a"]...)
	solo := poolCountSession(t, 5, 150, false)
	for e, round := range got {
		if round.Epoch != e {
			t.Fatalf("round %d labeled epoch %d", e, round.Epoch)
		}
		if res, want := scalarOf(t, round), solo.RunEpoch(e); res != want {
			t.Fatalf("epoch %d: %+v, solo %+v", e, res, want)
		}
	}
}

// TestPoolPipelinedHammer drives a 16-deployment pipelined pool from several
// goroutines — enqueues, barriers, status probes, removals and mode toggles
// interleaving (-race is the real assertion). Removed deployments may drop
// queued rounds; the invariant checked is that barriers return and the pool
// ends quiescent and empty.
func TestPoolPipelinedHammer(t *testing.T) {
	p := td.NewPool(4)
	defer p.Close()
	const deployments = 16
	for i := 0; i < deployments; i++ {
		if err := p.Add(fmt.Sprintf("h%d", i), poolCountSession(t, uint64(20+i), 100, false)); err != nil {
			t.Fatal(err)
		}
	}
	p.SetPipelined(true)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				p.RunEpochs(2)
				if g == 0 {
					p.Barrier()
				}
				p.Status(fmt.Sprintf("h%d", (g*5+it)%deployments))
				if g == 1 && it == 1 {
					p.Remove(fmt.Sprintf("h%d", deployments-1))
				}
				if g == 2 && it == 2 {
					p.SetPipelined(false)
					p.SetPipelined(true)
				}
			}
		}(g)
	}
	wg.Wait()
	p.Barrier()
	p.SetPipelined(false)
	if got := p.Len(); got != deployments-1 {
		t.Fatalf("pool has %d deployments after hammer, want %d", got, deployments-1)
	}
}
