package tributarydelta_test

import (
	"fmt"

	td "tributarydelta"
)

// The simplest possible use: count the sensors of a lossless field with
// pure tree aggregation. With no message loss the answer is exact.
func ExampleNewCountSession() {
	dep := td.NewSyntheticDeployment(1, 200)
	session, err := td.NewCountSession(dep, td.SchemeTAG, 1)
	if err != nil {
		panic(err)
	}
	res := session.RunEpoch(0)
	fmt.Println(int(res.Answer) == session.Sensors())
	// Output: true
}

// Min is exact even over multi-path routing — idempotent aggregates incur
// no approximation error (§5 of the paper).
func ExampleNewMinSession() {
	dep := td.NewSyntheticDeployment(2, 150)
	dep.SetGlobalLoss(0) // lossless: every reading is accounted for
	session, err := td.NewMinSession(dep, td.SchemeSD, 2,
		func(_, node int) float64 { return float64(100 + node) })
	if err != nil {
		panic(err)
	}
	res := session.RunEpoch(0)
	fmt.Println(res.Answer == session.ExactAnswer(0))
	// Output: true
}

// The goroutine-per-node concurrent runtime is a drop-in replacement for
// the synchronous simulator: same seeds, same losses, bit-identical
// answers — only the frames now travel through per-node workers with an
// epoch barrier.
func ExampleDeployment_UseConcurrentRuntime() {
	sim := td.NewSyntheticDeployment(5, 150)
	sim.SetGlobalLoss(0.25)
	simSession, err := td.NewCountSession(sim, td.SchemeTD, 5)
	if err != nil {
		panic(err)
	}

	conc := td.NewSyntheticDeployment(5, 150)
	conc.SetGlobalLoss(0.25)
	conc.UseConcurrentRuntime(true)
	concSession, err := td.NewCountSession(conc, td.SchemeTD, 5)
	if err != nil {
		panic(err)
	}
	defer concSession.Close()

	same := true
	for e := 0; e < 5; e++ {
		same = same && simSession.RunEpoch(e) == concSession.RunEpoch(e)
	}
	fmt.Println(same)
	// Output: true
}

// A Pool hosts many independent deployments and advances them concurrently
// under a shared worker budget — the multi-tenant shape cmd/tdserve exposes
// over HTTP.
func ExamplePool() {
	pool := td.NewPool(2)
	defer pool.Close()
	for i := 1; i <= 3; i++ {
		dep := td.NewSyntheticDeployment(uint64(i), 150)
		dep.SetGlobalLoss(0.2)
		s, err := td.NewCountSession(dep, td.SchemeTD, uint64(i))
		if err != nil {
			panic(err)
		}
		if err := pool.Add(fmt.Sprintf("site-%d", i), s); err != nil {
			panic(err)
		}
	}
	results := pool.RunEpochs(4) // 3 deployments × 4 epochs, concurrently
	for _, id := range pool.IDs() {
		status, _ := pool.Status(id)
		fmt.Println(id, status.Epochs, len(results[id]))
	}
	// Output:
	// site-1 4 4
	// site-2 4 4
	// site-3 4 4
}

// A lossless tree average of a constant signal is exact.
func ExampleNewAverageSession() {
	dep := td.NewSyntheticDeployment(4, 150)
	session, err := td.NewAverageSession(dep, td.SchemeTAG, 4,
		func(_, node int) float64 { return 21.5 })
	if err != nil {
		panic(err)
	}
	fmt.Println(session.RunEpoch(0).Answer)
	// Output: 21.5
}

// The bottom-k sample fills to its capacity whenever at least k readings
// contribute, and supports order statistics such as the median.
func ExampleNewSampleSession() {
	dep := td.NewSyntheticDeployment(6, 150)
	session, err := td.NewSampleSession(dep, td.SchemeTAG, 6, 25,
		func(_, node int) float64 { return float64(node) })
	if err != nil {
		panic(err)
	}
	res := session.RunEpoch(0)
	fmt.Println(res.Sample.Len() == 25)
	// Output: true
}

// Tributary-Delta adapts: under loss the delta region grows until the
// contributing fraction clears the 90% threshold.
func ExampleNewSumSession() {
	dep := td.NewSyntheticDeployment(3, 300)
	dep.SetGlobalLoss(0.3)
	session, err := td.NewSumSession(dep, td.SchemeTD, 3,
		func(_, node int) float64 { return 1 })
	if err != nil {
		panic(err)
	}
	small := session.RunEpoch(0).DeltaSize
	session.Run(1, 120) // let adaptation work
	grown := session.DeltaSize()
	fmt.Println(grown > small)
	// Output: true
}
