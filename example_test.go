package tributarydelta_test

import (
	"fmt"

	td "tributarydelta"
)

// The simplest possible use: count the sensors of a lossless field with
// pure tree aggregation. With no message loss the answer is exact.
func ExampleNewCountSession() {
	dep := td.NewSyntheticDeployment(1, 200)
	session, err := td.NewCountSession(dep, td.SchemeTAG, 1)
	if err != nil {
		panic(err)
	}
	res := session.RunEpoch(0)
	fmt.Println(int(res.Answer) == session.Sensors())
	// Output: true
}

// Min is exact even over multi-path routing — idempotent aggregates incur
// no approximation error (§5 of the paper).
func ExampleNewMinSession() {
	dep := td.NewSyntheticDeployment(2, 150)
	dep.SetGlobalLoss(0) // lossless: every reading is accounted for
	session, err := td.NewMinSession(dep, td.SchemeSD, 2,
		func(_, node int) float64 { return float64(100 + node) })
	if err != nil {
		panic(err)
	}
	res := session.RunEpoch(0)
	fmt.Println(res.Answer == session.ExactAnswer(0))
	// Output: true
}

// Tributary-Delta adapts: under loss the delta region grows until the
// contributing fraction clears the 90% threshold.
func ExampleNewSumSession() {
	dep := td.NewSyntheticDeployment(3, 300)
	dep.SetGlobalLoss(0.3)
	session, err := td.NewSumSession(dep, td.SchemeTD, 3,
		func(_, node int) float64 { return 1 })
	if err != nil {
		panic(err)
	}
	small := session.RunEpoch(0).DeltaSize
	session.Run(1, 120) // let adaptation work
	grown := session.DeltaSize()
	fmt.Println(grown > small)
	// Output: true
}
