package tributarydelta_test

import (
	"context"
	"fmt"

	td "tributarydelta"
)

// The simplest possible use of the Query API: open a Count query over a
// lossless field with pure tree aggregation. With no message loss the
// answer is exact.
func ExampleOpen() {
	dep := td.NewSyntheticDeployment(1, 200)
	session, err := td.Open(dep, td.Count(), td.WithScheme(td.SchemeTAG), td.WithSeed(1))
	if err != nil {
		panic(err)
	}
	defer session.Close()
	res := session.RunEpoch(0)
	fmt.Println(int(res.Answer) == session.Sensors())
	// Output: true
}

// A QuerySet advances several queries over one deployment in lock-step:
// every member sees the same loss realization each epoch, so their
// contributing sets coincide round by round.
func ExampleDeployment_NewQuerySet() {
	dep := td.NewSyntheticDeployment(2, 200)
	dep.SetGlobalLoss(0.25)
	set := dep.NewQuerySet(2)
	defer set.Close()
	if _, err := td.Open(dep, td.Count(), td.InSet(set)); err != nil {
		panic(err)
	}
	if _, err := td.Open(dep, td.Sum(func(_, node int) float64 { return 1 }), td.InSet(set)); err != nil {
		panic(err)
	}
	agree := true
	for _, round := range set.Run(0, 5) {
		cnt := round.Results[0].(td.Result[float64])
		sum := round.Results[1].(td.Result[float64])
		agree = agree && cnt.TrueContrib == sum.TrueContrib
	}
	fmt.Println(agree)
	// Output: true
}

// Stream delivers rounds over a channel with context cancellation: the
// consumer paces the producer, and closing the session ends the stream
// cleanly.
func ExampleSession_Stream() {
	dep := td.NewSyntheticDeployment(3, 150)
	session, err := td.Open(dep, td.Count(), td.WithScheme(td.SchemeTAG), td.WithSeed(3))
	if err != nil {
		panic(err)
	}
	defer session.Close()
	epochs := 0
	for res := range session.Stream(context.Background(), 0, 3) {
		if res.Epoch == epochs {
			epochs++
		}
	}
	fmt.Println(epochs)
	// Output: 3
}

// Quantiles answers rank queries: tributaries carry mergeable summaries
// under a precision gradient, the delta a duplicate-insensitive sample.
// Lossless and pure-tree, the summary covers every sensor exactly.
func ExampleQuantiles() {
	dep := td.NewSyntheticDeployment(4, 200)
	session, err := td.Open(dep, td.Quantiles(func(_, node int) float64 { return float64(node) }),
		td.WithScheme(td.SchemeTAG), td.WithSeed(4), td.WithEpsilon(0.05))
	if err != nil {
		panic(err)
	}
	defer session.Close()
	res := session.RunEpoch(0)
	fmt.Println(int(res.Answer.N) == session.Sensors())
	fmt.Println(res.Answer.Eps <= 0.05)
	// Output:
	// true
	// true
}

// The deprecated constructor surface still works and answers identically —
// it is a thin shim over Open.
func ExampleNewCountSession() {
	dep := td.NewSyntheticDeployment(1, 200)
	session, err := td.NewCountSession(dep, td.SchemeTAG, 1)
	if err != nil {
		panic(err)
	}
	res := session.RunEpoch(0)
	fmt.Println(int(res.Answer) == session.Sensors())
	// Output: true
}

// Min is exact even over multi-path routing — idempotent aggregates incur
// no approximation error (§5 of the paper).
func ExampleNewMinSession() {
	dep := td.NewSyntheticDeployment(2, 150)
	dep.SetGlobalLoss(0) // lossless: every reading is accounted for
	session, err := td.NewMinSession(dep, td.SchemeSD, 2,
		func(_, node int) float64 { return float64(100 + node) })
	if err != nil {
		panic(err)
	}
	res := session.RunEpoch(0)
	fmt.Println(res.Answer == session.ExactAnswer(0))
	// Output: true
}

// The goroutine-per-node concurrent runtime is a drop-in replacement for
// the synchronous simulator: same seeds, same losses, bit-identical
// answers — only the frames now travel through per-node workers with an
// epoch barrier.
func ExampleDeployment_UseConcurrentRuntime() {
	sim := td.NewSyntheticDeployment(5, 150)
	sim.SetGlobalLoss(0.25)
	simSession, err := td.NewCountSession(sim, td.SchemeTD, 5)
	if err != nil {
		panic(err)
	}

	conc := td.NewSyntheticDeployment(5, 150)
	conc.SetGlobalLoss(0.25)
	conc.UseConcurrentRuntime(true)
	concSession, err := td.NewCountSession(conc, td.SchemeTD, 5)
	if err != nil {
		panic(err)
	}
	defer concSession.Close()

	same := true
	for e := 0; e < 5; e++ {
		same = same && simSession.RunEpoch(e) == concSession.RunEpoch(e)
	}
	fmt.Println(same)
	// Output: true
}

// A Pool hosts many independent deployments and advances them concurrently
// under a shared worker budget — the multi-tenant shape cmd/tdserve exposes
// over HTTP.
func ExamplePool() {
	pool := td.NewPool(2)
	defer pool.Close()
	for i := 1; i <= 3; i++ {
		dep := td.NewSyntheticDeployment(uint64(i), 150)
		dep.SetGlobalLoss(0.2)
		s, err := td.NewCountSession(dep, td.SchemeTD, uint64(i))
		if err != nil {
			panic(err)
		}
		if err := pool.Add(fmt.Sprintf("site-%d", i), s); err != nil {
			panic(err)
		}
	}
	results := pool.RunEpochs(4) // 3 deployments × 4 epochs, concurrently
	for _, id := range pool.IDs() {
		status, _ := pool.Status(id)
		fmt.Println(id, status.Epochs, len(results[id]))
	}
	// Output:
	// site-1 4 4
	// site-2 4 4
	// site-3 4 4
}

// A lossless tree average of a constant signal is exact.
func ExampleNewAverageSession() {
	dep := td.NewSyntheticDeployment(4, 150)
	session, err := td.NewAverageSession(dep, td.SchemeTAG, 4,
		func(_, node int) float64 { return 21.5 })
	if err != nil {
		panic(err)
	}
	fmt.Println(session.RunEpoch(0).Answer)
	// Output: 21.5
}

// The bottom-k sample fills to its capacity whenever at least k readings
// contribute, and supports order statistics such as the median.
func ExampleNewSampleSession() {
	dep := td.NewSyntheticDeployment(6, 150)
	session, err := td.NewSampleSession(dep, td.SchemeTAG, 6, 25,
		func(_, node int) float64 { return float64(node) })
	if err != nil {
		panic(err)
	}
	res := session.RunEpoch(0)
	fmt.Println(res.Sample.Len() == 25)
	// Output: true
}

// Tributary-Delta adapts: under loss the delta region grows until the
// contributing fraction clears the 90% threshold.
func ExampleNewSumSession() {
	dep := td.NewSyntheticDeployment(3, 300)
	dep.SetGlobalLoss(0.3)
	session, err := td.NewSumSession(dep, td.SchemeTD, 3,
		func(_, node int) float64 { return 1 })
	if err != nil {
		panic(err)
	}
	small := session.RunEpoch(0).DeltaSize
	session.Run(1, 120) // let adaptation work
	grown := session.DeltaSize()
	fmt.Println(grown > small)
	// Output: true
}
