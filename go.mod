module tributarydelta

go 1.24
