package tributarydelta

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// sub-benchmark runs a small simulation and reports the quality metric the
// choice trades against (as ReportMetric units), so `go test -bench
// Ablation` doubles as a sensitivity study:
//
//   - radio range: rings density vs multi-path communication error
//   - adaptation threshold: contributing floor vs TD RMS error
//   - contributing-sketch size: piggyback bytes vs adaptation signal noise
//   - adaptation period: reaction speed vs control overhead
//   - per-item sketch size: frequent items message size vs error rates
//   - Count/Sum sketch size: message size vs approximation error

import (
	"math"
	"testing"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/freq"
	"tributarydelta/internal/network"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/stats"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/workload"
)

// BenchmarkAblationRadioRange measures the multi-path survival fraction at
// Global(0.3) across radio ranges: the one simulation parameter the paper
// leaves unstated (DESIGN.md §4 calibration note).
func BenchmarkAblationRadioRange(b *testing.B) {
	for _, radio := range []float64{2.5, 3.0, 3.5, 4.0} {
		b.Run(formatF("range", radio), func(b *testing.B) {
			var survival float64
			for i := 0; i < b.N; i++ {
				g := topo.NewRandomField(uint64(i+1), 400, 20, 20, topo.Point{X: 10, Y: 10}, radio)
				r := topo.BuildRings(g)
				tr := topo.BuildRestrictedTree(g, r, uint64(i+1))
				run, err := runner.New(runner.Config[struct{}, int64, *sketch.Sketch, float64]{
					Graph: g, Rings: r, Tree: tr,
					Net:   network.New(g, network.Global{P: 0.3}, uint64(i+1)),
					Agg:   aggregate.NewCount(uint64(i + 1)),
					Value: func(int, int) struct{} { return struct{}{} },
					Mode:  runner.ModeMultipath, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				var contrib int
				const epochs = 10
				for e := 0; e < epochs; e++ {
					contrib += run.RunEpoch(e).TrueContrib
				}
				survival += float64(contrib) / float64(epochs*run.Sensors())
			}
			b.ReportMetric(survival/float64(b.N), "survival")
		})
	}
}

// BenchmarkAblationThreshold measures TD RMS error at Global(0.15) across
// contributing thresholds — the knob behind DESIGN.md §4 deviation 1.
func BenchmarkAblationThreshold(b *testing.B) {
	sc := workload.NewSynthetic(1, 300)
	for _, threshold := range []float64{0.85, 0.90, 0.95} {
		b.Run(formatF("thr", threshold), func(b *testing.B) {
			var rms float64
			for i := 0; i < b.N; i++ {
				run, err := runner.New(runner.Config[struct{}, int64, *sketch.Sketch, float64]{
					Graph: sc.Graph, Rings: sc.Rings, Tree: sc.Tree,
					Net:       network.New(sc.Graph, network.Global{P: 0.15}, uint64(i+1)),
					Agg:       aggregate.NewCount(uint64(i + 1)),
					Value:     func(int, int) struct{} { return struct{}{} },
					Mode:      runner.ModeTD,
					Threshold: threshold,
					Seed:      uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				for e := 0; e < 100; e++ {
					run.RunEpoch(e) // warm-up
				}
				answers := make([]float64, 30)
				truth := make([]float64, 30)
				for e := 0; e < 30; e++ {
					answers[e] = run.RunEpoch(100 + e).Answer
					truth[e] = run.ExactAnswer(100 + e)
				}
				rms += stats.RelativeRMS(answers, truth)
			}
			b.ReportMetric(rms/float64(b.N), "rms")
		})
	}
}

// BenchmarkAblationContribK measures the adaptation signal's accuracy (mean
// relative error of the contributing estimate) across piggyback sketch
// sizes — why the default is the 40-bitmap bit vector of Figure 3.
func BenchmarkAblationContribK(b *testing.B) {
	sc := workload.NewSynthetic(2, 300)
	for _, k := range []int{8, 16, 40} {
		b.Run(formatI("k", k), func(b *testing.B) {
			var errSum float64
			var words int
			for i := 0; i < b.N; i++ {
				run, err := runner.New(runner.Config[struct{}, int64, *sketch.Sketch, float64]{
					Graph: sc.Graph, Rings: sc.Rings, Tree: sc.Tree,
					Net:      network.New(sc.Graph, network.Global{P: 0.2}, uint64(i+1)),
					Agg:      aggregate.NewCount(uint64(i + 1)),
					Value:    func(int, int) struct{} { return struct{}{} },
					Mode:     runner.ModeTD,
					ContribK: k,
					Seed:     uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				const epochs = 30
				for e := 0; e < epochs; e++ {
					res := run.RunEpoch(e)
					if res.TrueContrib > 0 {
						errSum += math.Abs(res.EstContrib-float64(res.TrueContrib)) /
							float64(res.TrueContrib) / epochs
					}
				}
				words = sketch.EncodedWords(k)
			}
			b.ReportMetric(errSum/float64(b.N), "est-err")
			b.ReportMetric(float64(words), "words")
		})
	}
}

// BenchmarkAblationAdaptPeriod measures how fast TD recovers contribution
// after a failure appears, across adaptation periods (§7.1 uses 10).
func BenchmarkAblationAdaptPeriod(b *testing.B) {
	sc := workload.NewSynthetic(3, 300)
	for _, period := range []int{5, 10, 20} {
		b.Run(formatI("every", period), func(b *testing.B) {
			var recovered float64
			for i := 0; i < b.N; i++ {
				model := network.Timeline{Phases: []network.Phase{
					{Until: 20, Model: network.Global{P: 0}},
					{Until: 120, Model: network.Global{P: 0.3}},
				}}
				run, err := runner.New(runner.Config[struct{}, int64, *sketch.Sketch, float64]{
					Graph: sc.Graph, Rings: sc.Rings, Tree: sc.Tree,
					Net:        network.New(sc.Graph, model, uint64(i+1)),
					Agg:        aggregate.NewCount(uint64(i + 1)),
					Value:      func(int, int) struct{} { return struct{}{} },
					Mode:       runner.ModeTD,
					AdaptEvery: period,
					Seed:       uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				for e := 0; e < 70; e++ {
					run.RunEpoch(e)
				}
				// Contribution over epochs 70–120: higher = faster recovery.
				var contrib int
				for e := 70; e < 120; e++ {
					contrib += run.RunEpoch(e).TrueContrib
				}
				recovered += float64(contrib) / float64(50*run.Sensors())
			}
			b.ReportMetric(recovered/float64(b.N), "contrib@50ep")
		})
	}
}

// BenchmarkAblationItemSketchK measures the frequent items guarantee-
// violation and false-negative rates across per-item ⊕ sketch sizes (the
// 1/εc² size/accuracy trade of §6.2).
func BenchmarkAblationItemSketchK(b *testing.B) {
	lab := workload.NewLab(4)
	const perEpoch = 200
	items := lab.ZipfItems(500, 1.1, perEpoch)
	n := float64(lab.Graph.Sensors() * perEpoch)
	for _, k := range []int{4, 8, 16} {
		b.Run(formatI("kitem", k), func(b *testing.B) {
			var fnSum float64
			for i := 0; i < b.N; i++ {
				params := freq.DefaultParams(uint64(i+1), 0.0005, math.Log2(n)+1)
				params.KItem = k
				agg := freq.NewAgg(lab.Tree,
					freq.MinTotalLoad{Epsilon: 0.0005, D: 2.0}, 0.0005, params)
				run, err := runner.New(runner.Config[[]freq.Item, *freq.Summary, *freq.Synopsis, freq.Result]{
					Graph: lab.Graph, Rings: lab.Rings, Tree: lab.Tree,
					Net:   network.New(lab.Graph, network.Global{P: 0.2}, uint64(i+1)),
					Agg:   agg,
					Value: items,
					Mode:  runner.ModeMultipath, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				const epochs = 4
				for e := 0; e < epochs; e++ {
					res := run.RunEpoch(e)
					var all [][]freq.Item
					for v := 1; v < lab.Graph.N(); v++ {
						if lab.Rings.Reachable(v) {
							all = append(all, items(e, v))
						}
					}
					truth := freq.TrueFrequent(all, 0.01)
					fn, _ := freq.FalseRates(res.Answer.Frequent(0.01, 0.001), truth)
					fnSum += fn / epochs
				}
			}
			b.ReportMetric(fnSum/float64(b.N), "fn-rate")
			b.ReportMetric(float64(sketch.EncodedWords(k)), "words/item")
		})
	}
}

// BenchmarkAblationSketchK measures Count approximation error versus
// synopsis size — why the paper's 40-bitmap configuration is the default.
func BenchmarkAblationSketchK(b *testing.B) {
	sc := workload.NewSynthetic(5, 400)
	for _, k := range []int{8, 16, 40, 64} {
		b.Run(formatI("k", k), func(b *testing.B) {
			var errSum float64
			for i := 0; i < b.N; i++ {
				agg := &aggregate.Count{Seed: uint64(i + 1), K: k}
				run, err := runner.New(runner.Config[struct{}, int64, *sketch.Sketch, float64]{
					Graph: sc.Graph, Rings: sc.Rings, Tree: sc.Tree,
					Net:   network.New(sc.Graph, network.Global{P: 0}, uint64(i+1)),
					Agg:   agg,
					Value: func(int, int) struct{} { return struct{}{} },
					Mode:  runner.ModeMultipath, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				const epochs = 10
				for e := 0; e < epochs; e++ {
					res := run.RunEpoch(e)
					errSum += math.Abs(res.Answer-float64(run.Sensors())) /
						float64(run.Sensors()) / epochs
				}
			}
			b.ReportMetric(errSum/float64(b.N), "approx-err")
			b.ReportMetric(float64(sketch.EncodedWords(k)), "words")
		})
	}
}

func formatF(name string, v float64) string {
	return name + "=" + trimF(v)
}

func formatI(name string, v int) string {
	return name + "=" + itoa(v)
}

func trimF(v float64) string {
	s := make([]byte, 0, 8)
	whole := int(v)
	s = append(s, []byte(itoa(whole))...)
	frac := int(math.Round((v - float64(whole)) * 100))
	if frac > 0 {
		s = append(s, '.')
		if frac < 10 {
			s = append(s, '0')
		}
		s = append(s, []byte(itoa(frac))...)
	}
	return string(s)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
