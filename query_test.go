package tributarydelta_test

import (
	"context"
	"maps"
	"testing"

	td "tributarydelta"
	"tributarydelta/internal/freq"
	"tributarydelta/internal/xrand"
)

var paritySchemes = []td.Scheme{td.SchemeTAG, td.SchemeSD, td.SchemeTDCoarse, td.SchemeTD}

const (
	parityEpochs  = 8
	paritySensors = 150
	parityLoss    = 0.25
)

func parityDep(t *testing.T, seed uint64) *td.Deployment {
	t.Helper()
	dep := td.NewSyntheticDeployment(seed, paritySensors)
	dep.SetGlobalLoss(parityLoss)
	return dep
}

// assertScalarParity drives a legacy scalar session and its Open-built
// counterpart in lock-step and requires bit-identical rounds and accounting.
func assertScalarParity(t *testing.T, name string, scheme td.Scheme, seed uint64,
	legacy, opened *td.Session[float64]) {
	t.Helper()
	for e := 0; e < parityEpochs; e++ {
		want, got := legacy.RunEpoch(e), opened.RunEpoch(e)
		if want != got {
			t.Fatalf("%s %v seed %d epoch %d: legacy %+v, query %+v", name, scheme, seed, e, want, got)
		}
	}
	if lw, gw := legacy.TotalWords(), opened.TotalWords(); lw != gw {
		t.Fatalf("%s %v seed %d: words %d vs %d", name, scheme, seed, lw, gw)
	}
	if ls, gs := legacy.Stats(), opened.Stats(); ls != gs {
		t.Fatalf("%s %v seed %d: stats %+v vs %+v", name, scheme, seed, ls, gs)
	}
}

// TestGoldenParityScalarQueries pins the tentpole's compatibility claim:
// every scalar dep.Open(Query…) session is bit-identical to its legacy
// NewXSession counterpart across all four schemes and seeds 1–3.
func TestGoldenParityScalarQueries(t *testing.T) {
	value := func(_, node int) float64 { return float64(node%30 + 1) }
	type scalarCase struct {
		name   string
		legacy func(d *td.Deployment, scheme td.Scheme, seed uint64) (*td.Session[float64], error)
		query  func() td.Query[float64]
	}
	cases := []scalarCase{
		{"Count",
			func(d *td.Deployment, scheme td.Scheme, seed uint64) (*td.Session[float64], error) {
				return td.NewCountSession(d, scheme, seed)
			},
			func() td.Query[float64] { return td.Count() }},
		{"Sum",
			func(d *td.Deployment, scheme td.Scheme, seed uint64) (*td.Session[float64], error) {
				return td.NewSumSession(d, scheme, seed, value)
			},
			func() td.Query[float64] { return td.Sum(value) }},
		{"Min",
			func(d *td.Deployment, scheme td.Scheme, seed uint64) (*td.Session[float64], error) {
				return td.NewMinSession(d, scheme, seed, value)
			},
			func() td.Query[float64] { return td.Min(value) }},
		{"Max",
			func(d *td.Deployment, scheme td.Scheme, seed uint64) (*td.Session[float64], error) {
				return td.NewMaxSession(d, scheme, seed, value)
			},
			func() td.Query[float64] { return td.Max(value) }},
		{"Average",
			func(d *td.Deployment, scheme td.Scheme, seed uint64) (*td.Session[float64], error) {
				return td.NewAverageSession(d, scheme, seed, value)
			},
			func() td.Query[float64] { return td.Average(value) }},
	}
	for _, tc := range cases {
		for _, scheme := range paritySchemes {
			for seed := uint64(1); seed <= 3; seed++ {
				dep := parityDep(t, seed)
				legacy, err := tc.legacy(dep, scheme, seed)
				if err != nil {
					t.Fatal(err)
				}
				opened, err := td.Open(dep, tc.query(), td.WithScheme(scheme), td.WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				assertScalarParity(t, tc.name, scheme, seed, legacy, opened)
			}
		}
	}
}

// TestGoldenParityMoments extends the parity pin to the Moments rounds.
func TestGoldenParityMoments(t *testing.T) {
	value := func(_, node int) float64 { return 10 + float64(node%7) }
	for _, scheme := range paritySchemes {
		for seed := uint64(1); seed <= 3; seed++ {
			dep := parityDep(t, seed)
			legacy, err := td.NewMomentsSession(dep, scheme, seed, value)
			if err != nil {
				t.Fatal(err)
			}
			opened, err := td.Open(dep, td.Moments(value), td.WithScheme(scheme), td.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < parityEpochs; e++ {
				want, got := legacy.RunEpoch(e), opened.RunEpoch(e)
				if want.Value != got.Answer || want.TrueContrib != got.TrueContrib ||
					want.DeltaSize != got.DeltaSize {
					t.Fatalf("Moments %v seed %d epoch %d: legacy %+v, query %+v", scheme, seed, e, want, got)
				}
			}
		}
	}
}

// TestGoldenParitySample extends the parity pin to the Sample rounds.
func TestGoldenParitySample(t *testing.T) {
	const k = 20
	value := func(_, node int) float64 { return float64(node) }
	for _, scheme := range paritySchemes {
		for seed := uint64(1); seed <= 3; seed++ {
			dep := parityDep(t, seed)
			legacy, err := td.NewSampleSession(dep, scheme, seed, k, value)
			if err != nil {
				t.Fatal(err)
			}
			opened, err := td.Open(dep, td.Sample(k, value), td.WithScheme(scheme), td.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < parityEpochs; e++ {
				want, got := legacy.RunEpoch(e), opened.RunEpoch(e)
				if want.TrueContrib != got.TrueContrib {
					t.Fatalf("Sample %v seed %d epoch %d: contrib %d vs %d", scheme, seed, e,
						want.TrueContrib, got.TrueContrib)
				}
				wi, gi := want.Sample.Items(), got.Answer.Items()
				if len(wi) != len(gi) {
					t.Fatalf("Sample %v seed %d epoch %d: %d vs %d items", scheme, seed, e, len(wi), len(gi))
				}
				for i := range wi {
					if wi[i] != gi[i] {
						t.Fatalf("Sample %v seed %d epoch %d item %d: %+v vs %+v", scheme, seed, e, i, wi[i], gi[i])
					}
				}
			}
		}
	}
}

// TestGoldenParityFrequentItems extends the parity pin to frequent items.
func TestGoldenParityFrequentItems(t *testing.T) {
	const perEpoch = 120
	items := func(epoch, node int) []freq.Item {
		src := xrand.NewSource(99, uint64(epoch), uint64(node))
		z := xrand.NewZipf(src, 200, 1.3)
		out := make([]freq.Item, perEpoch)
		for i := range out {
			out[i] = freq.Item(z.Draw())
		}
		return out
	}
	const epsilon, support = 0.002, 0.02
	expectedN := float64(paritySensors * perEpoch)
	for _, scheme := range paritySchemes {
		for seed := uint64(1); seed <= 3; seed++ {
			dep := parityDep(t, seed)
			legacy, err := td.NewFrequentItemsSession(dep, scheme, seed, items, epsilon, support, expectedN)
			if err != nil {
				t.Fatal(err)
			}
			opened, err := td.Open(dep, td.FrequentItems(items, support, expectedN),
				td.WithScheme(scheme), td.WithSeed(seed), td.WithEpsilon(epsilon))
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < 3; e++ {
				want, got := legacy.RunEpoch(e), opened.RunEpoch(e)
				if want.NEst != got.Answer.NEst || want.TrueContrib != got.TrueContrib {
					t.Fatalf("FrequentItems %v seed %d epoch %d: %+v vs %+v", scheme, seed, e, want, got)
				}
				if len(want.Frequent) != len(got.Answer.Frequent) {
					t.Fatalf("FrequentItems %v seed %d epoch %d: frequent %v vs %v",
						scheme, seed, e, want.Frequent, got.Answer.Frequent)
				}
				for i := range want.Frequent {
					if want.Frequent[i] != got.Answer.Frequent[i] {
						t.Fatalf("FrequentItems %v seed %d epoch %d: frequent %v vs %v",
							scheme, seed, e, want.Frequent, got.Answer.Frequent)
					}
				}
				if !maps.Equal(want.Estimates, got.Answer.Estimates) {
					t.Fatalf("FrequentItems %v seed %d epoch %d: estimates diverge", scheme, seed, e)
				}
			}
		}
	}
}

// TestQuantilesQuery exercises the new Quantiles facade end to end: under
// every scheme the answers stay within a loose rank tolerance of the truth,
// and the answer summary covers roughly the contributing population.
func TestQuantilesQuery(t *testing.T) {
	value := func(_, node int) float64 { return float64(node % 100) }
	for _, scheme := range paritySchemes {
		dep := parityDep(t, 1)
		s, err := td.Open(dep, td.Quantiles(value),
			td.WithScheme(scheme), td.WithSeed(1), td.WithEpsilon(0.05), td.WithSampleK(80))
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(0, 6)
		last := res[len(res)-1]
		if last.TrueContrib == 0 {
			t.Fatalf("%v: nothing contributed", scheme)
		}
		// The summary's population should be within FM-sketch error of the
		// number of contributing sensors (one reading each).
		n := float64(last.Answer.N)
		contrib := float64(last.TrueContrib)
		if n < 0.5*contrib || n > 1.7*contrib {
			t.Fatalf("%v: summary covers %v readings, %v contributed", scheme, n, contrib)
		}
		// Median of node%100 over ~uniform node ids sits near 50; allow wide
		// slack for sketch scaling under SD.
		if med := last.Answer.Quantile(0.5); med < 20 || med > 80 {
			t.Fatalf("%v: median %v wildly off", scheme, med)
		}
		if s.TotalBytes() <= 0 {
			t.Fatalf("%v: no accounting", scheme)
		}
	}
}

// TestQuantilesTAGExactness pins the lossless pure-tree case: with no loss
// every reading is covered and every quantile is within the eps budget of
// the true rank.
func TestQuantilesTAGExactness(t *testing.T) {
	dep := td.NewSyntheticDeployment(4, 200)
	value := func(_, node int) float64 { return float64(node) }
	const eps = 0.05
	s, err := td.Open(dep, td.Quantiles(value),
		td.WithScheme(td.SchemeTAG), td.WithSeed(4), td.WithEpsilon(eps))
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunEpoch(0)
	if int(res.Answer.N) != s.Sensors() {
		t.Fatalf("summary covers %d, want all %d sensors", res.Answer.N, s.Sensors())
	}
	if res.Answer.Eps > eps {
		t.Fatalf("accumulated eps %v exceeds budget %v", res.Answer.Eps, eps)
	}
}

// TestOpenValidation covers the query builder's error paths.
func TestOpenValidation(t *testing.T) {
	dep := parityDep(t, 1)
	if _, err := td.Open(dep, td.Query[float64]{}); err == nil {
		t.Fatal("zero query must be rejected")
	}
	if _, err := td.Open(dep, td.Sample(0, nil)); err == nil {
		t.Fatal("non-positive sample capacity must be rejected")
	}
	if _, err := td.Open(dep, td.Sum(nil)); err == nil {
		t.Fatal("nil value source must be rejected")
	}
	if _, err := td.Open(dep, td.FrequentItems(func(int, int) []freq.Item { return nil }, 0.01, 100),
		td.WithEpsilon(0.02)); err == nil {
		t.Fatal("epsilon above support must be rejected")
	}
	other := parityDep(t, 2)
	set := other.NewQuerySet(1)
	defer set.Close()
	if _, err := td.Open(dep, td.Count(), td.InSet(set)); err == nil {
		t.Fatal("InSet with a foreign deployment must be rejected")
	}
	own := dep.NewQuerySet(1)
	defer own.Close()
	if _, err := td.Open(dep, td.Count(), td.InSet(own), td.WithConcurrentRuntime(true)); err == nil {
		t.Fatal("WithConcurrentRuntime combined with InSet must be rejected")
	}
}

// TestSessionCloseMidRunConcurrent pins the hard half of the Close
// contract: Close racing a Run on another goroutine must wait out the
// in-flight epoch before releasing the concurrent runtime — never a send
// on the closed node inboxes.
func TestSessionCloseMidRunConcurrent(t *testing.T) {
	for i := 0; i < 5; i++ {
		dep := td.NewSyntheticDeployment(8, 150)
		dep.SetGlobalLoss(0.2)
		dep.UseConcurrentRuntime(true)
		s, err := td.Open(dep, td.Count(), td.WithSeed(8))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan []td.Result[float64], 1)
		go func() { done <- s.Run(0, 200) }()
		s.Close()
		out := <-done
		if len(out) > 200 {
			t.Fatalf("run returned %d rounds", len(out))
		}
		for e, r := range out {
			if r.Epoch != e || r.TrueContrib == 0 {
				t.Fatalf("round %d corrupted: %+v", e, r)
			}
		}
	}
}

// TestQuerySetCloseMidRunConcurrent is the set-level counterpart: Close
// racing set.Run over the shared transport.
func TestQuerySetCloseMidRunConcurrent(t *testing.T) {
	for i := 0; i < 5; i++ {
		dep := td.NewSyntheticDeployment(9, 150)
		dep.SetGlobalLoss(0.2)
		dep.UseConcurrentRuntime(true)
		set := dep.NewQuerySet(9)
		if _, err := td.Open(dep, td.Count(), td.InSet(set)); err != nil {
			t.Fatal(err)
		}
		if _, err := td.Open(dep, td.Sum(func(_, node int) float64 { return 1 }), td.InSet(set)); err != nil {
			t.Fatal(err)
		}
		done := make(chan []td.SetRound, 1)
		go func() { done <- set.Run(0, 200) }()
		set.Close()
		out := <-done
		for e, round := range out {
			if round.Epoch != e || len(round.Results) != 2 {
				t.Fatalf("round %d corrupted: %+v", e, round)
			}
		}
	}
}

// TestSessionCloseContract pins the documented Close semantics: a closed
// session stops Run early, returns zero results from RunEpoch, closes
// Stream channels, and Close is idempotent and callable mid-stream.
func TestSessionCloseContract(t *testing.T) {
	dep := parityDep(t, 5)
	s, err := td.Open(dep, td.Count(), td.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}

	// Stream two rounds, then close mid-stream from the consumer side.
	ch := s.Stream(context.Background(), 0, 1000)
	r1, ok1 := <-ch
	r2, ok2 := <-ch
	if !ok1 || !ok2 || r1.Epoch != 0 || r2.Epoch != 1 {
		t.Fatalf("stream rounds: %+v %v, %+v %v", r1, ok1, r2, ok2)
	}
	s.Close()
	if _, ok := <-ch; ok {
		// One round may already be in flight; after it the channel must
		// close.
		if _, ok := <-ch; ok {
			t.Fatal("stream channel still open after Close")
		}
	}

	// Closed-session behaviour.
	if got := s.RunEpoch(42); got != (td.Result[float64]{Epoch: 42}) {
		t.Fatalf("RunEpoch on closed session = %+v", got)
	}
	if got := s.Run(0, 5); len(got) != 0 {
		t.Fatalf("Run on closed session returned %d results", len(got))
	}
	s.Close() // idempotent

	// A fresh stream on a closed session closes immediately.
	if _, ok := <-s.Stream(context.Background(), 0, 3); ok {
		t.Fatal("stream on closed session must be empty")
	}
}

// TestSessionRunInto pins the allocation-free collection loop: with enough
// capacity the backing array is reused across calls.
func TestSessionRunInto(t *testing.T) {
	dep := parityDep(t, 6)
	s, err := td.Open(dep, td.Count(), td.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]td.Result[float64], 0, 8)
	out := s.RunInto(buf, 0, 4)
	if len(out) != 4 || cap(out) != cap(buf) || &out[0] != &buf[:1][0] {
		t.Fatalf("RunInto reallocated: len %d cap %d", len(out), cap(out))
	}
	out2 := s.RunInto(out, 4, 4)
	if len(out2) != 8 || &out2[0] != &out[0] {
		t.Fatal("RunInto second call reallocated")
	}
	for i, r := range out2 {
		if r.Epoch != i {
			t.Fatalf("epoch %d at index %d", r.Epoch, i)
		}
	}
}

// TestStreamContextCancel pins cancellation: the channel closes promptly
// once the context is done and the session stays usable.
func TestStreamContextCancel(t *testing.T) {
	dep := parityDep(t, 7)
	s, err := td.Open(dep, td.Count(), td.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	ch := s.Stream(ctx, 0, 1000)
	if _, ok := <-ch; !ok {
		t.Fatal("first stream round missing")
	}
	cancel()
	for range ch { // must terminate
	}
	if res := s.RunEpoch(5); res.TrueContrib == 0 {
		t.Fatal("session unusable after cancelled stream")
	}
}
