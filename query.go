package tributarydelta

// The Query API: aggregate constructors-as-data plus functional options,
// opened against a Deployment into the one generic Session. A Query[R] is
// inert — a named recipe for assembling the internal runner — so the same
// descriptor can be opened many times, on many deployments, alone or inside
// a QuerySet.

import (
	"fmt"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/freq"
	"tributarydelta/internal/network"
	"tributarydelta/internal/quantile"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/sample"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/transport"
)

// MomentsValue is the Moments query's answer: estimated mean, variance and
// skewness. It aliases the internal type so the two never drift.
type MomentsValue = aggregate.MomentsValue

// FrequentItemsAnswer is the FrequentItems query's answer.
type FrequentItemsAnswer struct {
	// Frequent lists the reported items (estimate > (s−ε)·N̂), ascending.
	Frequent []freq.Item
	// Estimates holds the per-item frequency estimates.
	Estimates map[freq.Item]float64
	// NEst is the estimated total number of item occurrences.
	NEst float64
}

// Query describes an aggregate query answering values of type R. Build one
// with a constructor (Count, Sum, Quantiles, …) and run it with Open.
type Query[R any] struct {
	name  string
	build func(env *openEnv) (engine[R], error)
}

// Name returns the query's descriptor name ("Count", "Quantiles", …).
func (q Query[R]) Name() string { return q.name }

// openConfig is the resolved option set of one Open call.
type openConfig struct {
	scheme        Scheme
	seed          uint64
	seedSet       bool
	concurrent    bool
	concurrentSet bool
	udpShards     int
	udpSet        bool
	udpNoBatch    bool
	udpBatchSet   bool
	epsilon       float64
	sampleK       int
	threshold     float64
	adaptEvery    int
	retransmits   int
	topK          int
	pipelined     bool
	workers       int
	noMemo        bool
	noBatchFuse   bool
	churn         []ChurnEvent
	set           *QuerySet
}

// Option adjusts how Open assembles a session; see the With* constructors.
type Option func(*openConfig)

// WithScheme selects the aggregation scheme (default SchemeTD).
func WithScheme(s Scheme) Option { return func(c *openConfig) { c.scheme = s } }

// WithSeed sets the seed driving all the session's randomness — losses,
// sketches, sample ranks (default 1; QuerySet members default to the set's
// seed).
func WithSeed(seed uint64) Option {
	return func(c *openConfig) { c.seed = seed; c.seedSet = true }
}

// WithConcurrentRuntime overrides the deployment's runtime selection for
// this session: true runs the goroutine-per-node concurrent transport in
// its deterministic mode, false the synchronous simulator. Without this
// option the session follows Deployment.UseConcurrentRuntime. It cannot be
// combined with InSet — a query set's runtime is pinned when the set is
// created — and Open rejects the combination.
func WithConcurrentRuntime(on bool) Option {
	return func(c *openConfig) { c.concurrent = on; c.concurrentSet = true }
}

// WithUDPTransport overrides the deployment's runtime selection for this
// session with the multi-process UDP transport: nodes partition over shards
// shard runtimes and every frame travels as a real loopback datagram, in the
// deterministic mode whose answers are bit-identical to the in-process
// backends (see Deployment.UseUDPRuntime). shards <= 0 selects the
// in-process runtimes instead. It cannot be combined with
// WithConcurrentRuntime or InSet; Open rejects both combinations.
func WithUDPTransport(shards int) Option {
	return func(c *openConfig) { c.udpShards = shards; c.udpSet = true }
}

// WithDatagramBatching toggles the UDP runtime's datagram coalescing for
// this session (default: the deployment's SetDatagramBatching choice, itself
// defaulting to on): frames pack into MTU-bounded batch datagrams submitted
// in batched syscalls at the epoch barrier. Answers are bit-identical either
// way — disabling it is an A/B lever for benchmarking and parity tests, not
// a behavioral switch. It only affects sessions that run the UDP transport.
func WithDatagramBatching(on bool) Option {
	return func(c *openConfig) { c.udpNoBatch = !on; c.udpBatchSet = true }
}

// WithEpsilon sets the approximation budget of queries that take one: the
// tree-side rank-error budget of Quantiles (default 0.02) and the total
// count-error tolerance ε of FrequentItems (default support/10). Scalar
// queries ignore it.
func WithEpsilon(eps float64) Option { return func(c *openConfig) { c.epsilon = eps } }

// WithSampleK sets the bottom-k capacity of the Quantiles delta sample
// (default 100). The Sample query takes its capacity as a constructor
// argument instead.
func WithSampleK(k int) Option { return func(c *openConfig) { c.sampleK = k } }

// WithThreshold sets the minimum contributing fraction the adaptive schemes
// defend (default 0.90, §7.1 of the paper).
func WithThreshold(frac float64) Option { return func(c *openConfig) { c.threshold = frac } }

// WithAdaptEvery sets the adaptation period in epochs (default 10).
func WithAdaptEvery(epochs int) Option { return func(c *openConfig) { c.adaptEvery = epochs } }

// WithTreeRetransmits sets the number of extra unicast attempts tree nodes
// make after a loss (default 0; 2 is the paper's Figure 9(b) setup).
func WithTreeRetransmits(n int) Option { return func(c *openConfig) { c.retransmits = n } }

// WithTopK enables the §4.2 top-k TD expansion heuristic with the given k
// (default 0: the max/2 rule).
func WithTopK(k int) Option { return func(c *openConfig) { c.topK = k } }

// WithPipelined runs the §2 pipelined collection: one result per level slot
// once the pipeline fills, mixing readings across a window of epochs.
func WithPipelined(on bool) Option { return func(c *openConfig) { c.pipelined = on } }

// WithWorkers bounds the session's level-parallel wave engine: each epoch
// level's independent nodes shard across up to n goroutines for envelope
// construction and frame decoding. n <= 0 (and the default) selects
// GOMAXPROCS; 1 selects the sequential engine. Answers are bit-identical
// across worker counts — parallelism is purely a throughput knob. Sessions
// hosted in a Pool have their bound re-divided by the pool's budget; see
// Pool.
func WithWorkers(n int) Option { return func(c *openConfig) { c.workers = n } }

// WithSynopsisMemo toggles the epoch-over-epoch synopsis memoization of the
// sketch-backed aggregates (default on): base synopses, boundary conversions
// and whole broadcast frames are reused across epochs while their inputs
// hold still. Answers are bit-identical either way — disabling it is an A/B
// lever for benchmarking, not a behavioral switch.
func WithSynopsisMemo(on bool) Option { return func(c *openConfig) { c.noMemo = !on } }

// WithFusedUnions toggles the fused multi-sketch unions in the epoch engine
// (default on): a node's whole inbox of synopses and contributing-Count
// sketches folds in one word-major pass instead of one union per sender.
// Every batched operation is a pure bitwise OR, so answers are bit-identical
// either way — disabling it is an A/B lever for benchmarking, not a
// behavioral switch.
func WithFusedUnions(on bool) Option { return func(c *openConfig) { c.noBatchFuse = !on } }

// WithChurn installs a scripted node-churn schedule: nodes dying (ChurnDown),
// rejoining (ChurnUp) and re-parenting (ChurnReparent) at fixed epochs,
// applied before the epoch's first transmission. Open validates the whole
// schedule up front and rejects infeasible events (unknown nodes, downing a
// down node, reparent cycles, non-neighbour or ring-violating parents). The
// schedule is part of the run's identity: under a fixed schedule answers
// stay bit-identical across worker counts and transports. Downed nodes stay
// in the contributing-% denominator, so a schedule that silences subtrees
// is exactly the stress the §4.2 adaptation strategies respond to.
func WithChurn(events ...ChurnEvent) Option {
	return func(c *openConfig) { c.churn = append(c.churn[:len(c.churn):len(c.churn)], events...) }
}

// InSet opens the session as a member of set: it shares the set's
// network — one loss realization per epoch across every member — and the
// runtime selection (simulator or shared concurrent node runtime) the set
// pinned at creation. Member sessions are advanced by the set's lock-step
// rounds and released by QuerySet.Close.
func InSet(set *QuerySet) Option { return func(c *openConfig) { c.set = set } }

// openEnv carries the resolved assembly context to a query's build hook.
type openEnv struct {
	d     *Deployment
	cfg   *openConfig
	net   *network.Net
	tr    runner.Transport
	stats *network.Stats
}

// Open assembles q into a running session over d. Options default to
// SchemeTD, seed 1 and the deployment's runtime selection; the failure
// model is the deployment's current one, pinned at Open time.
func Open[R any](d *Deployment, q Query[R], opts ...Option) (*Session[R], error) {
	if q.build == nil {
		return nil, fmt.Errorf("tributarydelta: Open of a zero Query")
	}
	cfg := openConfig{scheme: SchemeTD, seed: 1}
	for _, o := range opts {
		o(&cfg)
	}

	if cfg.udpSet && cfg.concurrentSet {
		return nil, fmt.Errorf("tributarydelta: WithUDPTransport and WithConcurrentRuntime are mutually exclusive")
	}
	stats := network.NewStats(d.scenario.Graph.N())
	var net *network.Net
	var tr runner.Transport
	var stop func()
	var trErr func() error
	var health func() FleetHealth
	if set := cfg.set; set != nil {
		if set.d != d {
			return nil, fmt.Errorf("tributarydelta: InSet with a query set of a different deployment")
		}
		if cfg.concurrentSet || cfg.udpSet {
			return nil, fmt.Errorf("tributarydelta: a session runtime option cannot override a query set's runtime (pinned at NewQuerySet)")
		}
		if !cfg.seedSet {
			cfg.seed = set.seed
		}
		net = set.net
		tr = set.port(stats)
		trErr = set.transportErr
		health = set.transportHealth
	} else {
		net = network.New(d.scenario.Graph, d.model, cfg.seed)
		// Explicit per-session options override the deployment's runtime;
		// among the deployment defaults, the UDP runtime takes precedence
		// over the concurrent one.
		udpShards := 0
		if cfg.udpSet {
			udpShards = cfg.udpShards
		} else if !cfg.concurrentSet && d.udpShards > 0 {
			udpShards = d.udpShards
		}
		concurrent := d.concurrent
		if cfg.concurrentSet {
			concurrent = cfg.concurrent
		}
		if udpShards > 0 {
			noBatch := d.udpNoBatch
			if cfg.udpBatchSet {
				noBatch = cfg.udpNoBatch
			}
			u, err := transport.NewUDP(net, transport.UDPOptions{
				Shards: udpShards, Deterministic: true, Stats: stats,
				Spawn: d.udpSpawner(), NoBatching: noBatch,
			})
			if err != nil {
				return nil, fmt.Errorf("tributarydelta: udp runtime: %w", err)
			}
			tr, stop, trErr, health = u, u.Close, u.Err, u.Health
		} else if concurrent {
			ch := transport.New(net, transport.Options{Deterministic: true, Stats: stats})
			tr, stop = ch, ch.Close
		}
	}

	eng, err := q.build(&openEnv{d: d, cfg: &cfg, net: net, tr: tr, stats: stats})
	if err != nil {
		return nil, closeOnErr(stop, err)
	}
	s := &Session[R]{eng: eng, name: q.name, deps: d, stop: stop, trErr: trErr, health: health, done: make(chan struct{})}
	if cfg.set != nil {
		if err := cfg.set.register(s); err != nil {
			return nil, closeOnErr(stop, err)
		}
	}
	return s, nil
}

// runnerEngine adapts one assembled runner (answering A) to the session's
// engine contract (answering R) through a pure conversion.
type runnerEngine[V, P, S, A, R any] struct {
	r    *runner.Runner[V, P, S, A]
	conv func(A) R
}

func (e runnerEngine[V, P, S, A, R]) runEpoch(epoch int) Result[R] {
	res := e.r.RunEpoch(epoch)
	return Result[R]{
		Epoch:       res.Epoch,
		Answer:      e.conv(res.Answer),
		TrueContrib: res.TrueContrib,
		EstContrib:  res.EstContrib,
		DeltaSize:   res.DeltaSize,
	}
}

func (e runnerEngine[V, P, S, A, R]) exact(epoch int) R { return e.conv(e.r.ExactAnswer(epoch)) }
func (e runnerEngine[V, P, S, A, R]) sensors() int      { return e.r.Sensors() }
func (e runnerEngine[V, P, S, A, R]) deltaSize() int    { return e.r.State().DeltaSize() }
func (e runnerEngine[V, P, S, A, R]) setWorkers(n int)  { e.r.SetWorkers(n) }
func (e runnerEngine[V, P, S, A, R]) close()            { e.r.Close() }
func (e runnerEngine[V, P, S, A, R]) stats() SessionStats {
	// Snapshot is the race-free view: transmit-side totals as published at
	// the last epoch boundary, receive side live — safe to call while a
	// stream is producing.
	snap := e.r.Stats.Snapshot()
	return SessionStats{
		TotalWords: snap.Words,
		TotalBytes: snap.Bytes,
		Losses:     snap.Losses,
		InboxDrops: snap.InboxDrops,
		RxFrames:   snap.RxFrames,
		Duplicates: snap.Duplicates,
	}
}

// ident is the identity conversion of engines whose runner already answers
// the session's type.
func ident[R any](r R) R { return r }

// buildEngine assembles the runner for one query over the resolved Open
// context.
func buildEngine[V, P, S, A, R any](env *openEnv, agg aggregate.Aggregate[V, P, S, A],
	value func(epoch, node int) V, conv func(A) R) (engine[R], error) {
	r, err := runner.New(runner.Config[V, P, S, A]{
		Graph: env.d.scenario.Graph, Rings: env.d.scenario.Rings, Tree: env.d.treeFor(env.cfg.scheme),
		Net:             env.net,
		Agg:             agg,
		Value:           value,
		Mode:            env.cfg.scheme,
		Threshold:       env.cfg.threshold,
		AdaptEvery:      env.cfg.adaptEvery,
		TreeRetransmits: env.cfg.retransmits,
		TopK:            env.cfg.topK,
		Pipelined:       env.cfg.pipelined,
		Seed:            env.cfg.seed,
		Transport:       env.tr,
		Stats:           env.stats,
		Workers:         env.cfg.workers,
		NoMemo:          env.cfg.noMemo,
		NoBatchFuse:     env.cfg.noBatchFuse,
		Churn:           env.cfg.churn,
	})
	if err != nil {
		return nil, err
	}
	return runnerEngine[V, P, S, A, R]{r: r, conv: conv}, nil
}

// Count returns the query counting contributing sensors — the paper's
// running example aggregate.
func Count() Query[float64] {
	return Query[float64]{name: "Count", build: func(env *openEnv) (engine[float64], error) {
		return buildEngine(env, aggregate.NewCount(env.cfg.seed),
			func(int, int) struct{} { return struct{}{} }, ident[float64])
	}}
}

// Sum returns the query summing per-node readings supplied by value(epoch,
// node). Readings must be non-negative.
func Sum(value func(epoch, node int) float64) Query[float64] {
	return Query[float64]{name: "Sum", build: func(env *openEnv) (engine[float64], error) {
		return buildEngine(env, aggregate.NewSum(env.cfg.seed), value, ident[float64])
	}}
}

// Min returns the query tracking the minimum reading. Min is idempotent, so
// multi-path aggregation introduces no approximation error (§5).
func Min(value func(epoch, node int) float64) Query[float64] {
	return Query[float64]{name: "Min", build: func(env *openEnv) (engine[float64], error) {
		return buildEngine(env, aggregate.Min{}, value, ident[float64])
	}}
}

// Max returns the query tracking the maximum reading; see Min.
func Max(value func(epoch, node int) float64) Query[float64] {
	return Query[float64]{name: "Max", build: func(env *openEnv) (engine[float64], error) {
		return buildEngine(env, aggregate.Max{}, value, ident[float64])
	}}
}

// Average returns the query computing the mean reading as Sum/Count (both
// exact in the tributaries, sketched in the delta).
func Average(value func(epoch, node int) float64) Query[float64] {
	return Query[float64]{name: "Average", build: func(env *openEnv) (engine[float64], error) {
		return buildEngine(env, aggregate.NewAverage(env.cfg.seed), value, ident[float64])
	}}
}

// Moments returns the query computing mean, variance and skewness (§5's
// statistical moments, via duplicate-insensitive power sums) over
// non-negative readings.
func Moments(value func(epoch, node int) float64) Query[MomentsValue] {
	return Query[MomentsValue]{name: "Moments", build: func(env *openEnv) (engine[MomentsValue], error) {
		return buildEngine(env, aggregate.NewMoments(env.cfg.seed), value, ident[MomentsValue])
	}}
}

// Sample returns the query maintaining a duplicate-insensitive bottom-k
// uniform sample of the readings (§5), usable for order statistics.
func Sample(k int, value func(epoch, node int) float64) Query[*sample.Sample] {
	return Query[*sample.Sample]{name: "Sample", build: func(env *openEnv) (engine[*sample.Sample], error) {
		if k <= 0 {
			return nil, fmt.Errorf("sample capacity must be positive, got %d", k)
		}
		return buildEngine(env, aggregate.NewUniformSample(env.cfg.seed, k), value, ident[*sample.Sample])
	}}
}

// FrequentItems returns the §6 Tributary-Delta frequent items query:
// items(epoch, node) supplies each node's item collection, support the
// reporting threshold, and expectedN an upper bound on the total item
// occurrences per epoch (nodes are assumed to know log N, §6.2). The total
// error tolerance ε comes from WithEpsilon (default support/10) and must
// stay below support.
func FrequentItems(items func(epoch, node int) []freq.Item, support, expectedN float64) Query[FrequentItemsAnswer] {
	return Query[FrequentItemsAnswer]{name: "FrequentItems", build: func(env *openEnv) (engine[FrequentItemsAnswer], error) {
		epsilon := env.cfg.epsilon
		if epsilon == 0 {
			epsilon = support / 10
		}
		if epsilon <= 0 || support <= epsilon {
			return nil, fmt.Errorf("need 0 < epsilon < support, got eps=%v s=%v", epsilon, support)
		}
		tree := env.d.treeFor(env.cfg.scheme)
		dfac := topo.TreeDominationFactor(tree, 0.05)
		if dfac < 1.2 {
			dfac = 1.2
		}
		logN := log2(expectedN) + 1
		agg := freq.NewAgg(tree,
			freq.MinTotalLoad{Epsilon: epsilon / 2, D: dfac},
			epsilon/2,
			freq.DefaultParams(env.cfg.seed, epsilon/2, logN))
		conv := func(res freq.Result) FrequentItemsAnswer {
			return FrequentItemsAnswer{
				Frequent:  res.Frequent(support, epsilon),
				Estimates: res.Estimates,
				NEst:      res.NEst,
			}
		}
		return buildEngine(env, agg, items, conv)
	}}
}

// quantilesCountK is the FM bitmap count of the Quantiles delta population
// sketch — the standard Count bit vector of Figure 3.
const quantilesCountK = 40

// Quantiles returns the query answering rank queries over per-node readings
// — the paper's §6.1.4 extension. Tributaries fold mergeable Greenwald–
// Khanna-style summaries with a uniform precision gradient whose total
// rank-error budget is WithEpsilon (default 0.02); the delta runs the §5
// duplicate-insensitive bottom-k sample (capacity WithSampleK, default 100)
// plus an FM sketch of the delta population, grafted onto the exact tree
// summary at the base station. The answer is a rank summary: call
// Quantile(q), Query(rank) or RankBounds on it.
func Quantiles(value func(epoch, node int) float64) Query[*quantile.Summary] {
	return Query[*quantile.Summary]{name: "Quantiles", build: func(env *openEnv) (engine[*quantile.Summary], error) {
		eps := env.cfg.epsilon
		if eps == 0 {
			eps = 0.02
		}
		if eps < 0 {
			return nil, fmt.Errorf("quantiles epsilon must be positive, got %v", eps)
		}
		k := env.cfg.sampleK
		if k == 0 {
			k = 100
		}
		if k < 0 {
			return nil, fmt.Errorf("quantiles sample capacity must be positive, got %d", k)
		}
		tree := env.d.treeFor(env.cfg.scheme)
		h := tree.Heights()[topo.Base]
		if h < 1 {
			h = 1
		}
		agg := quantile.NewAgg(tree, env.cfg.seed, k, quantilesCountK, quantile.Uniform(eps, h))
		return buildEngine(env, agg, value, ident[*quantile.Summary])
	}}
}

// Compile-time check that the quantiles aggregate satisfies the runner
// contract with the facade's type parameters.
var _ aggregate.Aggregate[float64, *quantile.Partial, *quantile.Synopsis, *quantile.Summary] = (*quantile.Agg)(nil)
