package tributarydelta_test

import (
	"testing"

	td "tributarydelta"
)

// TestQuerySetParallelWorkers drives a 4-query set over the level-parallel
// wave engine with an oversized worker pool for 50 epochs — the facade-level
// race workout of the engine (run under -race in CI) — and pins that the
// answers match a Workers=1 set run over the same deployment and seed.
func TestQuerySetParallelWorkers(t *testing.T) {
	run := func(workers int) []td.SetRound {
		dep := td.NewSyntheticDeployment(1, 250)
		dep.SetGlobalLoss(0.2)
		qs := dep.NewQuerySet(7)
		defer qs.Close()
		val := func(_, node int) float64 { return float64(node % 50) }
		if _, err := td.Open(dep, td.Count(), td.InSet(qs), td.WithWorkers(workers)); err != nil {
			t.Fatal(err)
		}
		if _, err := td.Open(dep, td.Sum(val), td.InSet(qs), td.WithWorkers(workers)); err != nil {
			t.Fatal(err)
		}
		if _, err := td.Open(dep, td.Average(val), td.InSet(qs), td.WithWorkers(workers)); err != nil {
			t.Fatal(err)
		}
		if _, err := td.Open(dep, td.Min(val), td.InSet(qs), td.WithWorkers(workers)); err != nil {
			t.Fatal(err)
		}
		return qs.Run(0, 50)
	}
	seq := run(1)
	par := run(8)
	if len(par) != 50 || len(seq) != 50 {
		t.Fatalf("rounds: %d parallel, %d sequential", len(par), len(seq))
	}
	for e := range par {
		for m := range par[e].Results {
			ps := par[e].Results[m].(td.Result[float64])
			ss := seq[e].Results[m].(td.Result[float64])
			if ps.Answer != ss.Answer || ps.TrueContrib != ss.TrueContrib {
				t.Fatalf("epoch %d member %d: Workers=8 diverged from Workers=1 (%v vs %v)",
					e, m, ps.Answer, ss.Answer)
			}
		}
	}
}

// TestPoolDividesWorkerBudget pins the pool/wave-engine interaction: a
// hosted deployment's intra-epoch parallelism is re-bounded to the pool
// budget divided by the number of deployments, applied at its next round —
// and the rebounds never move answers.
func TestPoolDividesWorkerBudget(t *testing.T) {
	mkSession := func(seed uint64) *td.Session[float64] {
		dep := td.NewSyntheticDeployment(seed, 150)
		dep.SetGlobalLoss(0.1)
		s, err := td.Open(dep, td.Count(), td.WithScheme(td.SchemeTD), td.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Reference: the same deployment run standalone.
	ref := mkSession(3)
	want := ref.Run(0, 8)
	ref.Close()

	p := td.NewPool(4)
	defer p.Close()
	if err := p.Add("a", mkSession(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunDeployment("a", 4); err != nil { // sole deployment: full budget
		t.Fatal(err)
	}
	for _, id := range []string{"b", "c", "d"} {
		if err := p.Add(id, mkSession(uint64(len(id))+10)); err != nil {
			t.Fatal(err)
		}
	}
	rounds, err := p.RunDeployment("a", 4) // budget now divided 4 ways
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rounds {
		got := r.Results[0].(td.Result[float64])
		if got.Answer != want[4+i].Answer {
			t.Fatalf("epoch %d: answer moved after budget rebalance (%v vs %v)",
				4+i, got.Answer, want[4+i].Answer)
		}
	}
}
