package tributarydelta

import (
	"math"
	"testing"

	"tributarydelta/internal/freq"
	"tributarydelta/internal/xrand"
)

func TestCountSessionLossFreeTree(t *testing.T) {
	dep := NewSyntheticDeployment(1, 200)
	s, err := NewCountSession(dep, SchemeTAG, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunEpoch(0)
	if res.Answer != float64(s.Sensors()) {
		t.Fatalf("loss-free TAG Count = %v, want %d", res.Answer, s.Sensors())
	}
	if res.TrueContrib != s.Sensors() {
		t.Fatal("all sensors should contribute without loss")
	}
}

func TestSumSessionSchemes(t *testing.T) {
	dep := NewSyntheticDeployment(2, 200)
	dep.SetGlobalLoss(0.2)
	value := func(_, node int) float64 { return float64(node % 30) }
	for _, scheme := range []Scheme{SchemeTAG, SchemeSD, SchemeTDCoarse, SchemeTD} {
		s, err := NewSumSession(dep, scheme, 2, value)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		res := s.Run(0, 20)
		if len(res) != 20 {
			t.Fatal("wrong result count")
		}
		truth := s.ExactAnswer(0)
		if truth <= 0 {
			t.Fatal("exact answer should be positive")
		}
		last := res[len(res)-1]
		if last.Answer < 0 || last.Answer > 3*truth {
			t.Fatalf("%v: answer %v wildly off truth %v", scheme, last.Answer, truth)
		}
		if s.TotalWords() <= 0 {
			t.Fatalf("%v: no energy accounted", scheme)
		}
		if s.TotalBytes() <= 0 || s.TotalBytes() > 4*s.TotalWords() {
			t.Fatalf("%v: byte accounting inconsistent: %d bytes, %d words",
				scheme, s.TotalBytes(), s.TotalWords())
		}
	}
}

func TestRegionalLossSetting(t *testing.T) {
	dep := NewSyntheticDeployment(3, 200)
	dep.SetRegionalLoss(0, 0, 10, 10, 0.9, 0)
	s, err := NewCountSession(dep, SchemeSD, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunEpoch(0)
	// Some nodes in the failure quadrant must be lost, the rest fine.
	if res.TrueContrib == s.Sensors() || res.TrueContrib < s.Sensors()/2 {
		t.Fatalf("regional loss gave contribution %d of %d", res.TrueContrib, s.Sensors())
	}
}

func TestLabDeployment(t *testing.T) {
	dep := NewLabDeployment(4)
	if dep.Sensors() != 54 {
		t.Fatalf("lab deployment has %d sensors, want 54", dep.Sensors())
	}
	if d := dep.DominationFactor(); d < 1.5 {
		t.Fatalf("lab domination factor %v too low", d)
	}
	s, err := NewSumSession(dep, SchemeTD, 4, dep.Scenario().Light)
	if err != nil {
		t.Fatal(err)
	}
	var errSum float64
	const rounds = 30
	for e := 0; e < rounds; e++ {
		res := s.RunEpoch(e)
		truth := s.ExactAnswer(e)
		errSum += math.Abs(res.Answer-truth) / truth
	}
	if mean := errSum / rounds; mean > 0.6 {
		t.Fatalf("lab TD mean relative error %v too high", mean)
	}
}

func TestFrequentItemsSession(t *testing.T) {
	dep := NewSyntheticDeployment(5, 150)
	const perEpoch = 200
	items := func(epoch, node int) []freq.Item {
		src := xrand.NewSource(5, uint64(epoch), uint64(node))
		z := xrand.NewZipf(src, 300, 1.3)
		out := make([]freq.Item, perEpoch)
		for i := range out {
			out[i] = freq.Item(z.Draw())
		}
		return out
	}
	s, err := NewFrequentItemsSession(dep, SchemeTD, 5, items, 0.001, 0.01,
		float64(dep.Sensors()*perEpoch))
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunEpoch(0)
	if len(res.Frequent) == 0 {
		t.Fatal("skewed stream must yield frequent items")
	}
	// Rank-0 is by construction the most frequent item and must be found.
	found := false
	for _, u := range res.Frequent {
		if u == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("the dominant item was not reported")
	}
	if res.NEst <= 0 {
		t.Fatal("N estimate missing")
	}
}

func TestFrequentItemsSessionValidation(t *testing.T) {
	dep := NewSyntheticDeployment(6, 100)
	items := func(int, int) []freq.Item { return nil }
	if _, err := NewFrequentItemsSession(dep, SchemeTD, 6, items, 0, 0.01, 100); err == nil {
		t.Fatal("epsilon 0 must be rejected")
	}
	if _, err := NewFrequentItemsSession(dep, SchemeTD, 6, items, 0.02, 0.01, 100); err == nil {
		t.Fatal("support <= epsilon must be rejected")
	}
}

func TestDeploymentAccessors(t *testing.T) {
	dep := NewSyntheticDeployment(7, 120)
	rings := dep.Rings()
	if len(rings) != 121 {
		t.Fatalf("rings length %d, want 121", len(rings))
	}
	if rings[0] != 0 {
		t.Fatal("base station must be ring 0")
	}
	if dep.Model() == nil || dep.Scenario() == nil {
		t.Fatal("accessors returned nil")
	}
}
