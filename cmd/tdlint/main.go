// Command tdlint is the repo's multichecker: it runs the internal/analysis
// suite — determinism, wiresafe, statswriter, hotpath and doccomment (the
// doclint port) — over the module and exits non-zero on any finding. CI
// runs it beside gofmt and go vet; run it locally with
//
//	go run ./cmd/tdlint ./...
//
// Arguments are go package patterns (default ./...). Findings print as
// file:line:col: [analyzer] message. A finding is waived at its site with a
// justified //lint:ignore <analyzer> <reason> comment on the same line or
// the line above; -list prints the suite and each analyzer's contract.
package main

import (
	"flag"
	"fmt"
	"os"

	"tributarydelta/internal/analysis"
	"tributarydelta/internal/analysis/framework"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their contracts, then exit")
	flag.Parse()
	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := framework.ModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdlint: %v\n", err)
		os.Exit(2)
	}
	loader := framework.NewLoader(root)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := framework.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tdlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
