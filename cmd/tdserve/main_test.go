package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	td "tributarydelta"
)

func doJSON(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestServeLifecycle(t *testing.T) {
	pool := td.NewPool(2)
	defer pool.Close()
	h := newServer(pool).routes()

	// Create two deployments, one on the concurrent runtime.
	w := doJSON(t, h, "POST", "/v1/deployments",
		`{"id":"a","sensors":150,"seed":1,"loss":0.25,"scheme":"TD","aggregate":"count"}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create a: %d %s", w.Code, w.Body)
	}
	w = doJSON(t, h, "POST", "/v1/deployments",
		`{"id":"b","sensors":150,"seed":2,"loss":0.1,"scheme":"SD","aggregate":"sum","concurrent":true}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create b: %d %s", w.Code, w.Body)
	}

	// Duplicate ids conflict; malformed specs are rejected.
	if w = doJSON(t, h, "POST", "/v1/deployments", `{"id":"a"}`); w.Code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", w.Code)
	}
	if w = doJSON(t, h, "POST", "/v1/deployments", `{"id":"x","scheme":"bogus"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad scheme: %d", w.Code)
	}
	if w = doJSON(t, h, "POST", "/v1/deployments", `{"sensors":10}`); w.Code != http.StatusBadRequest {
		t.Fatalf("missing id: %d", w.Code)
	}
	if w = doJSON(t, h, "POST", "/v1/deployments", `{"id":"x","aggregates":["count","bogus"]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad aggregate: %d", w.Code)
	}

	// Advance deployment a and check the results and status line up.
	w = doJSON(t, h, "POST", "/v1/deployments/a/run", `{"rounds":5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("run a: %d %s", w.Code, w.Body)
	}
	var results []roundResponse
	if err := json.Unmarshal(w.Body.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 || results[4].Epoch != 4 || len(results[4].Results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	if q := results[4].Results[0]; q.Query != "Count" || q.TrueContrib <= 0 {
		t.Fatalf("round = %+v", results[4])
	}
	w = doJSON(t, h, "GET", "/v1/deployments/a", "")
	if w.Code != http.StatusOK {
		t.Fatalf("get a: %d", w.Code)
	}
	var st statusResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epochs != 5 || st.Last == nil || st.Last.Epoch != 4 || st.Stats.TotalBytes <= 0 {
		t.Fatalf("status = %+v, want 5 epochs ending %+v", st, results[4])
	}

	// The concurrent-runtime deployment answers like the simulator would.
	w = doJSON(t, h, "POST", "/v1/deployments/b/run", "")
	if w.Code != http.StatusOK {
		t.Fatalf("run b: %d %s", w.Code, w.Body)
	}

	// List shows both; delete removes; 404s after.
	w = doJSON(t, h, "GET", "/v1/deployments", "")
	var all []statusResponse
	if err := json.Unmarshal(w.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].ID != "a" || all[1].ID != "b" {
		t.Fatalf("list = %+v", all)
	}
	if w = doJSON(t, h, "DELETE", "/v1/deployments/b", ""); w.Code != http.StatusNoContent {
		t.Fatalf("delete b: %d", w.Code)
	}
	if w = doJSON(t, h, "DELETE", "/v1/deployments/b", ""); w.Code != http.StatusNotFound {
		t.Fatalf("double delete: %d", w.Code)
	}
	if w = doJSON(t, h, "POST", "/v1/deployments/b/run", ""); w.Code != http.StatusNotFound {
		t.Fatalf("run deleted: %d", w.Code)
	}
	if w = doJSON(t, h, "GET", "/v1/deployments/b", ""); w.Code != http.StatusNotFound {
		t.Fatalf("get deleted: %d", w.Code)
	}
}

// TestServeUDPTransport creates a "udp" deployment — the queries run over a
// real loopback datagram fleet — alongside an identical "sim" one, and
// checks they answer identically round for round; unknown transport names
// are rejected up front.
func TestServeUDPTransport(t *testing.T) {
	pool := td.NewPool(2)
	defer pool.Close()
	h := newServer(pool).routes()

	w := doJSON(t, h, "POST", "/v1/deployments",
		`{"id":"u","sensors":120,"seed":5,"loss":0.25,"transport":"udp","udpShards":3,"aggregates":["count","sum"]}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create udp: %d %s", w.Code, w.Body)
	}
	w = doJSON(t, h, "POST", "/v1/deployments",
		`{"id":"s","sensors":120,"seed":5,"loss":0.25,"transport":"sim","aggregates":["count","sum"]}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create sim: %d %s", w.Code, w.Body)
	}
	if w = doJSON(t, h, "POST", "/v1/deployments", `{"id":"x","transport":"bogus"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad transport: %d %s", w.Code, w.Body)
	}

	var byID [2][]roundResponse
	for i, id := range []string{"u", "s"} {
		w = doJSON(t, h, "POST", "/v1/deployments/"+id+"/run", `{"rounds":6}`)
		if w.Code != http.StatusOK {
			t.Fatalf("run %s: %d %s", id, w.Code, w.Body)
		}
		if err := json.Unmarshal(w.Body.Bytes(), &byID[i]); err != nil {
			t.Fatal(err)
		}
	}
	if len(byID[0]) != 6 {
		t.Fatalf("udp deployment completed %d/6 rounds", len(byID[0]))
	}
	for e := range byID[0] {
		for m := range byID[0][e].Results {
			if byID[0][e].Results[m] != byID[1][e].Results[m] {
				t.Fatalf("epoch %d member %d: udp %+v, sim %+v",
					e, m, byID[0][e].Results[m], byID[1][e].Results[m])
			}
		}
		if byID[0][e].Results[0].TrueContrib <= 0 {
			t.Fatalf("epoch %d: no contributions over udp: %+v", e, byID[0][e])
		}
	}
	if w = doJSON(t, h, "DELETE", "/v1/deployments/u", ""); w.Code != http.StatusNoContent {
		t.Fatalf("delete udp: %d", w.Code)
	}
}

// TestServeStatsRoundTrip pins the /stats surface over a UDP deployment:
// the duplicate-frame accounting and the transport-health field must
// round-trip through the JSON API — populated receive counters, zero
// duplicates under the deterministic barrier, and no transport error on a
// healthy fleet — and the same fields must appear in the full status too.
func TestServeStatsRoundTrip(t *testing.T) {
	pool := td.NewPool(2)
	defer pool.Close()
	h := newServer(pool).routes()

	w := doJSON(t, h, "POST", "/v1/deployments",
		`{"id":"u","sensors":120,"seed":5,"loss":0.2,"transport":"udp","udpShards":3,"aggregates":["count","sum"]}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create udp: %d %s", w.Code, w.Body)
	}
	if w = doJSON(t, h, "POST", "/v1/deployments/u/run", `{"rounds":4}`); w.Code != http.StatusOK {
		t.Fatalf("run: %d %s", w.Code, w.Body)
	}

	w = doJSON(t, h, "GET", "/v1/deployments/u/stats", "")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", w.Code, w.Body)
	}
	var st statsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "u" || st.Epochs != 4 {
		t.Fatalf("stats = %+v, want id u at 4 epochs", st)
	}
	if st.Stats.RxFrames == 0 || st.Stats.TotalBytes == 0 {
		t.Fatalf("udp deployment reported empty accounting: %+v", st.Stats)
	}
	if st.Stats.Duplicates != 0 {
		t.Fatalf("deterministic barrier surfaced %d duplicates", st.Stats.Duplicates)
	}
	if st.TransportErr != "" {
		t.Fatalf("healthy fleet reported transport error %q", st.TransportErr)
	}
	if len(st.Health.Shards) != 3 {
		t.Fatalf("health snapshot covers %d shards, want 3: %+v", len(st.Health.Shards), st.Health)
	}
	if !st.Health.Healthy() || st.Health.Restarts != 0 || st.Health.Failed != 0 {
		t.Fatalf("undisturbed fleet reported supervision activity: %+v", st.Health)
	}
	for i, sh := range st.Health.Shards {
		if sh.Shard != i || sh.State != "healthy" {
			t.Fatalf("shard %d health = %+v, want healthy", i, sh)
		}
	}
	// The raw JSON must carry the Duplicates field explicitly (SessionStats
	// marshals untagged) so clients can rely on its presence, and the
	// supervision snapshot rides under "health".
	if !strings.Contains(w.Body.String(), `"Duplicates"`) {
		t.Fatalf("stats body lacks Duplicates field: %s", w.Body)
	}
	if !strings.Contains(w.Body.String(), `"health"`) {
		t.Fatalf("stats body lacks health field: %s", w.Body)
	}

	// The full status view carries the same accounting and health fields.
	w = doJSON(t, h, "GET", "/v1/deployments/u", "")
	var full statusResponse
	if err := json.Unmarshal(w.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if full.Stats.RxFrames != st.Stats.RxFrames || full.TransportErr != "" {
		t.Fatalf("status stats %+v (err %q) disagree with /stats %+v",
			full.Stats, full.TransportErr, st.Stats)
	}

	if w = doJSON(t, h, "GET", "/v1/deployments/nope/stats", ""); w.Code != http.StatusNotFound {
		t.Fatalf("stats of unknown id: %d", w.Code)
	}
}

// TestServeMultiQuery creates one deployment running three aggregates in
// lock-step and checks every round reports all of them, including the
// quantile percentile map.
func TestServeMultiQuery(t *testing.T) {
	pool := td.NewPool(2)
	defer pool.Close()
	h := newServer(pool).routes()

	w := doJSON(t, h, "POST", "/v1/deployments",
		`{"id":"m","sensors":150,"seed":3,"loss":0.2,"scheme":"TD","aggregates":["count","sum","quantiles"]}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	var st statusResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Queries) != 3 || st.Queries[0] != "Count" || st.Queries[2] != "Quantiles" {
		t.Fatalf("queries = %v", st.Queries)
	}

	w = doJSON(t, h, "POST", "/v1/deployments/m/run", `{"rounds":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("run: %d %s", w.Code, w.Body)
	}
	var results []roundResponse
	if err := json.Unmarshal(w.Body.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("rounds = %d", len(results))
	}
	for _, round := range results {
		if len(round.Results) != 3 {
			t.Fatalf("round %d has %d results", round.Epoch, len(round.Results))
		}
		// All members share one loss realization, so the contributing sets
		// coincide each round.
		for _, q := range round.Results[1:] {
			if q.TrueContrib != round.Results[0].TrueContrib {
				t.Fatalf("round %d: contributions diverge: %+v", round.Epoch, round.Results)
			}
		}
		qm, ok := round.Results[2].Answer.(map[string]any)
		if !ok {
			t.Fatalf("quantiles answer is %T", round.Results[2].Answer)
		}
		p50, ok := qm["p50"].(float64)
		if !ok || p50 < 0 || p50 >= 50 {
			t.Fatalf("p50 = %v (demo readings are node%%50)", qm["p50"])
		}
	}
}
