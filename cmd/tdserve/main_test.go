package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	td "tributarydelta"
)

func doJSON(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestServeLifecycle(t *testing.T) {
	pool := td.NewPool(2)
	defer pool.Close()
	h := newServer(pool).routes()

	// Create two deployments, one on the concurrent runtime.
	w := doJSON(t, h, "POST", "/v1/deployments",
		`{"id":"a","sensors":150,"seed":1,"loss":0.25,"scheme":"TD","aggregate":"count"}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create a: %d %s", w.Code, w.Body)
	}
	w = doJSON(t, h, "POST", "/v1/deployments",
		`{"id":"b","sensors":150,"seed":2,"loss":0.1,"scheme":"SD","aggregate":"sum","concurrent":true}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create b: %d %s", w.Code, w.Body)
	}

	// Duplicate ids conflict; malformed specs are rejected.
	if w = doJSON(t, h, "POST", "/v1/deployments", `{"id":"a"}`); w.Code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", w.Code)
	}
	if w = doJSON(t, h, "POST", "/v1/deployments", `{"id":"x","scheme":"bogus"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad scheme: %d", w.Code)
	}
	if w = doJSON(t, h, "POST", "/v1/deployments", `{"sensors":10}`); w.Code != http.StatusBadRequest {
		t.Fatalf("missing id: %d", w.Code)
	}

	// Advance deployment a and check the results and status line up.
	w = doJSON(t, h, "POST", "/v1/deployments/a/run", `{"rounds":5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("run a: %d %s", w.Code, w.Body)
	}
	var results []td.Result
	if err := json.Unmarshal(w.Body.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 || results[4].Epoch != 4 {
		t.Fatalf("results = %+v", results)
	}
	w = doJSON(t, h, "GET", "/v1/deployments/a", "")
	if w.Code != http.StatusOK {
		t.Fatalf("get a: %d", w.Code)
	}
	var st td.DeploymentStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epochs != 5 || st.Last != results[4] || st.TotalBytes <= 0 {
		t.Fatalf("status = %+v, want 5 epochs ending %+v", st, results[4])
	}

	// The concurrent-runtime deployment answers like the simulator would.
	w = doJSON(t, h, "POST", "/v1/deployments/b/run", "")
	if w.Code != http.StatusOK {
		t.Fatalf("run b: %d %s", w.Code, w.Body)
	}

	// List shows both; delete removes; 404s after.
	w = doJSON(t, h, "GET", "/v1/deployments", "")
	var all []td.DeploymentStatus
	if err := json.Unmarshal(w.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].ID != "a" || all[1].ID != "b" {
		t.Fatalf("list = %+v", all)
	}
	if w = doJSON(t, h, "DELETE", "/v1/deployments/b", ""); w.Code != http.StatusNoContent {
		t.Fatalf("delete b: %d", w.Code)
	}
	if w = doJSON(t, h, "DELETE", "/v1/deployments/b", ""); w.Code != http.StatusNotFound {
		t.Fatalf("double delete: %d", w.Code)
	}
	if w = doJSON(t, h, "POST", "/v1/deployments/b/run", ""); w.Code != http.StatusNotFound {
		t.Fatalf("run deleted: %d", w.Code)
	}
	if w = doJSON(t, h, "GET", "/v1/deployments/b", ""); w.Code != http.StatusNotFound {
		t.Fatalf("get deleted: %d", w.Code)
	}
}
