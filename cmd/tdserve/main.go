// Command tdserve hosts many independent Tributary-Delta deployments
// behind a small HTTP API — the multi-tenant direction of the roadmap:
// many concurrent collection sessions sharing one worker budget, not one
// big tree. Every deployment is a QuerySet: one or more aggregate queries
// advancing in lock-step over a shared loss realization. Deployments are
// started, advanced, queried and stopped over JSON:
//
//	POST   /v1/deployments            {"id":"a","sensors":300,"seed":1,"loss":0.25,"scheme":"TD","aggregates":["count","sum","quantiles"]}
//	GET    /v1/deployments            list all deployment statuses
//	GET    /v1/deployments/{id}       one deployment's status
//	GET    /v1/deployments/{id}/stats communication accounting + transport health
//	POST   /v1/deployments/{id}/run   {"rounds":10} → per-epoch, per-query results
//	DELETE /v1/deployments/{id}       stop and release the deployment
//
// The legacy single-aggregate form {"aggregate":"count"} still works and is
// equivalent to a one-member set. Supported aggregates: count, sum, min,
// max, average and quantiles (sum-family queries use the demo reading
// node%50 — tdserve is a host for synthetic deployments, not a data plane
// for real sensors; quantile answers report the 25/50/75/90/99th
// percentiles). The "transport" field selects a deployment's delivery
// backend: "sim" (the default synchronous simulator), "chan" (the
// goroutine-per-node chan transport) or "udp" — a multi-process fleet where
// nodes partition over "udpShards" shard runtimes (default 4) and every
// frame travels as a real loopback datagram; all of them run deterministic
// modes, so answers are identical across backends. The legacy
// "concurrent": true is equivalent to "transport": "chan". With -tdnode
// pointing at a built cmd/tdnode binary, UDP shards are spawned as separate
// OS processes; without it they run as in-process goroutines over the same
// sockets and protocol. The flags:
//
//	tdserve -addr :8473 -workers 0 -tdnode ./tdnode
//
// where -workers 0 means GOMAXPROCS concurrent deployments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	td "tributarydelta"
	"tributarydelta/internal/quantile"
)

// createRequest is the POST /v1/deployments body.
type createRequest struct {
	ID      string  `json:"id"`
	Sensors int     `json:"sensors"` // default 300
	Seed    uint64  `json:"seed"`    // default 1
	Loss    float64 `json:"loss"`    // Global(p) loss rate, default 0
	// Scheme is TAG, SD, TD-Coarse or TD (default TD).
	Scheme string `json:"scheme"`
	// Aggregate is the legacy single-query form (default count when
	// Aggregates is empty too).
	Aggregate string `json:"aggregate"`
	// Aggregates lists the queries of a multi-query deployment; they
	// advance in lock-step sharing one loss realization per epoch.
	Aggregates []string `json:"aggregates"`
	// Concurrent selects the goroutine-per-node chan transport (legacy
	// equivalent of Transport "chan").
	Concurrent bool `json:"concurrent"`
	// Transport selects the delivery backend: "sim" (default), "chan" or
	// "udp". All run deterministic modes, so answers are identical.
	Transport string `json:"transport"`
	// UDPShards is the shard-runtime count of a "udp" deployment (default
	// 4, clamped to the sensor count).
	UDPShards int `json:"udpShards"`
}

// runRequest is the POST /v1/deployments/{id}/run body.
type runRequest struct {
	Rounds int `json:"rounds"` // default 1
}

// queryResult is one member query's outcome in one round.
type queryResult struct {
	// Query is the member's descriptor name.
	Query string `json:"query"`
	// Answer is the query's answer: a number for the scalar aggregates, a
	// percentile map for quantiles.
	Answer any `json:"answer"`
	// TrueContrib is the exact number of sensors represented.
	TrueContrib int `json:"trueContrib"`
	// EstContrib is the base station's own contribution estimate.
	EstContrib float64 `json:"estContrib"`
	// DeltaSize is the delta region size after the round.
	DeltaSize int `json:"deltaSize"`
}

// roundResponse is one lock-step round of a deployment.
type roundResponse struct {
	Epoch   int           `json:"epoch"`
	Results []queryResult `json:"results"`
}

// statusResponse is a deployment status snapshot. Stats includes the
// duplicate-frame count the UDP barrier discovered; TransportErr surfaces
// the delivery backend's sticky error (dead shard, barrier timeout) so a
// client can tell degraded answers from healthy ones.
type statusResponse struct {
	ID           string          `json:"id"`
	Epochs       int             `json:"epochs"`
	Sensors      int             `json:"sensors"`
	Queries      []string        `json:"queries"`
	Last         *roundResponse  `json:"last,omitempty"`
	Stats        td.SessionStats `json:"stats"`
	TransportErr string          `json:"transportErr,omitempty"`
}

// statsResponse is the GET /v1/deployments/{id}/stats body: the cumulative
// communication accounting plus the UDP runtime's supervision snapshot
// (Health.shards is empty for in-process deployments), without the last
// round's results.
type statsResponse struct {
	ID           string          `json:"id"`
	Epochs       int             `json:"epochs"`
	Stats        td.SessionStats `json:"stats"`
	TransportErr string          `json:"transportErr,omitempty"`
	Health       td.FleetHealth  `json:"health"`
}

// server routes HTTP traffic onto a deployment pool.
type server struct {
	pool *td.Pool
	// tdnode is the optional shard-process binary for "udp" deployments
	// (empty: shards run as in-process goroutines).
	tdnode string
}

func newServer(pool *td.Pool) *server {
	return &server{pool: pool}
}

// routes returns the HTTP handler.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/deployments", s.create)
	mux.HandleFunc("GET /v1/deployments", s.list)
	mux.HandleFunc("GET /v1/deployments/{id}", s.get)
	mux.HandleFunc("GET /v1/deployments/{id}/stats", s.stats)
	mux.HandleFunc("POST /v1/deployments/{id}/run", s.run)
	mux.HandleFunc("DELETE /v1/deployments/{id}", s.remove)
	return mux
}

// parseScheme maps the wire names onto schemes.
func parseScheme(name string) (td.Scheme, error) {
	switch strings.ToUpper(name) {
	case "", "TD":
		return td.SchemeTD, nil
	case "TAG":
		return td.SchemeTAG, nil
	case "SD":
		return td.SchemeSD, nil
	case "TD-COARSE", "TDCOARSE":
		return td.SchemeTDCoarse, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want TAG, SD, TD-Coarse or TD)", name)
}

// demoReading is the synthetic per-node reading the sum-family and quantile
// demo queries aggregate.
func demoReading(_, node int) float64 { return float64(node % 50) }

// openQuery opens one named aggregate as a member of set.
func openQuery(dep *td.Deployment, set *td.QuerySet, name string, scheme td.Scheme) error {
	opts := []td.Option{td.WithScheme(scheme), td.InSet(set)}
	var err error
	switch strings.ToLower(name) {
	case "", "count":
		_, err = td.Open(dep, td.Count(), opts...)
	case "sum":
		_, err = td.Open(dep, td.Sum(demoReading), opts...)
	case "min":
		_, err = td.Open(dep, td.Min(demoReading), opts...)
	case "max":
		_, err = td.Open(dep, td.Max(demoReading), opts...)
	case "average", "avg":
		_, err = td.Open(dep, td.Average(demoReading), opts...)
	case "quantiles":
		_, err = td.Open(dep, td.Quantiles(demoReading), opts...)
	default:
		return fmt.Errorf("unknown aggregate %q (want count, sum, min, max, average or quantiles)", name)
	}
	return err
}

// buildSet assembles the deployment and query set a create request asks
// for.
func (s *server) buildSet(req createRequest) (*td.QuerySet, error) {
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		return nil, err
	}
	if req.Loss < 0 || req.Loss >= 1 {
		return nil, fmt.Errorf("loss %v out of [0,1)", req.Loss)
	}
	names := req.Aggregates
	if len(names) == 0 {
		names = []string{req.Aggregate}
	}
	dep := td.NewSyntheticDeployment(req.Seed, req.Sensors)
	dep.SetGlobalLoss(req.Loss)
	switch strings.ToLower(req.Transport) {
	case "":
		dep.UseConcurrentRuntime(req.Concurrent)
	case "sim":
		dep.UseConcurrentRuntime(false)
	case "chan":
		dep.UseConcurrentRuntime(true)
	case "udp":
		shards := req.UDPShards
		if shards <= 0 {
			shards = 4
		}
		if shards > req.Sensors {
			shards = req.Sensors
		}
		dep.UseUDPRuntime(shards)
		if s.tdnode != "" {
			dep.SetUDPNodeBinary(s.tdnode)
		}
	default:
		return nil, fmt.Errorf("unknown transport %q (want sim, chan or udp)", req.Transport)
	}
	set := dep.NewQuerySet(req.Seed)
	for _, name := range names {
		if err := openQuery(dep, set, name, scheme); err != nil {
			set.Close()
			return nil, err
		}
	}
	return set, nil
}

// quantilePercentiles are the ranks quantile answers report.
var quantilePercentiles = []float64{0.25, 0.5, 0.75, 0.9, 0.99}

// convertRound flattens one SetRound into the wire response shape.
func convertRound(names []string, round td.SetRound) roundResponse {
	out := roundResponse{Epoch: round.Epoch, Results: make([]queryResult, 0, len(round.Results))}
	for i, boxed := range round.Results {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		switch res := boxed.(type) {
		case td.Result[float64]:
			out.Results = append(out.Results, queryResult{
				Query: name, Answer: res.Answer,
				TrueContrib: res.TrueContrib, EstContrib: res.EstContrib, DeltaSize: res.DeltaSize,
			})
		case td.Result[*quantile.Summary]:
			qs := make(map[string]float64, len(quantilePercentiles))
			for _, q := range quantilePercentiles {
				qs[fmt.Sprintf("p%02.0f", q*100)] = res.Answer.Quantile(q)
			}
			out.Results = append(out.Results, queryResult{
				Query: name, Answer: qs,
				TrueContrib: res.TrueContrib, EstContrib: res.EstContrib, DeltaSize: res.DeltaSize,
			})
		}
	}
	return out
}

// convertStatus flattens a pool status into the wire response shape.
func convertStatus(st td.DeploymentStatus) statusResponse {
	out := statusResponse{
		ID:           st.ID,
		Epochs:       st.Epochs,
		Sensors:      st.Sensors,
		Queries:      st.Queries,
		Stats:        st.Stats,
		TransportErr: errString(st.TransportErr),
	}
	if st.Epochs > 0 {
		last := convertRound(st.Queries, st.Last)
		out.Last = &last
	}
	return out
}

// errString renders an optional error for the wire.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) create(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.ID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("id is required"))
		return
	}
	if req.Sensors == 0 {
		req.Sensors = 300
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	set, err := s.buildSet(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.pool.AddSet(req.ID, set); err != nil {
		set.Close()
		writeError(w, http.StatusConflict, err)
		return
	}
	st, _ := s.pool.Status(req.ID)
	writeJSON(w, http.StatusCreated, convertStatus(st))
}

func (s *server) list(w http.ResponseWriter, _ *http.Request) {
	ids := s.pool.IDs()
	out := make([]statusResponse, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.pool.Status(id); ok {
			out = append(out, convertStatus(st))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.pool.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no deployment %q", id))
		return
	}
	writeJSON(w, http.StatusOK, convertStatus(st))
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.pool.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no deployment %q", id))
		return
	}
	writeJSON(w, http.StatusOK, statsResponse{
		ID:           st.ID,
		Epochs:       st.Epochs,
		Stats:        st.Stats,
		TransportErr: errString(st.TransportErr),
		Health:       st.Health,
	})
}

func (s *server) run(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req runRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	if req.Rounds <= 0 {
		req.Rounds = 1
	}
	if req.Rounds > 100000 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("rounds %d too large", req.Rounds))
		return
	}
	rounds, names, err := s.pool.RunRounds(id, req.Rounds)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	out := make([]roundResponse, 0, len(rounds))
	for _, round := range rounds {
		out = append(out, convertRound(names, round))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) remove(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.pool.Remove(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no deployment %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func main() {
	addr := flag.String("addr", ":8473", "listen address")
	workers := flag.Int("workers", 0, "concurrent deployment budget (0 = GOMAXPROCS)")
	tdnode := flag.String("tdnode", "", "path to a built cmd/tdnode binary; udp shards spawn as processes when set")
	flag.Parse()
	srv := newServer(td.NewPool(*workers))
	srv.tdnode = *tdnode
	log.Printf("tdserve listening on %s (worker budget %d)", *addr, srv.pool.Workers())
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}
