// Command tdserve hosts many independent Tributary-Delta deployments
// behind a small HTTP API — the multi-tenant direction of the roadmap:
// many concurrent collection sessions sharing one worker budget, not one
// big tree. Deployments are started, advanced, queried and stopped over
// JSON:
//
//	POST   /v1/deployments            {"id":"a","sensors":300,"seed":1,"loss":0.25,"scheme":"TD","aggregate":"count"}
//	GET    /v1/deployments            list all deployment statuses
//	GET    /v1/deployments/{id}       one deployment's status
//	POST   /v1/deployments/{id}/run   {"rounds":10} → per-epoch results
//	DELETE /v1/deployments/{id}       stop and release the deployment
//
// Set "concurrent": true in the create request to run that deployment on
// the goroutine-per-node chan transport (deterministic mode — answers are
// identical to the simulator backend). The flags:
//
//	tdserve -addr :8473 -workers 0
//
// where -workers 0 means GOMAXPROCS concurrent deployments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	td "tributarydelta"
)

// createRequest is the POST /v1/deployments body.
type createRequest struct {
	ID      string  `json:"id"`
	Sensors int     `json:"sensors"` // default 300
	Seed    uint64  `json:"seed"`    // default 1
	Loss    float64 `json:"loss"`    // Global(p) loss rate, default 0
	// Scheme is TAG, SD, TD-Coarse or TD (default TD).
	Scheme string `json:"scheme"`
	// Aggregate is count or sum (default count). Sum uses the demo reading
	// node%50 — tdserve is a host for synthetic deployments, not a data
	// plane for real sensors.
	Aggregate string `json:"aggregate"`
	// Concurrent selects the goroutine-per-node chan transport.
	Concurrent bool `json:"concurrent"`
}

// runRequest is the POST /v1/deployments/{id}/run body.
type runRequest struct {
	Rounds int `json:"rounds"` // default 1
}

// server routes HTTP traffic onto a deployment pool.
type server struct {
	pool *td.Pool
}

func newServer(pool *td.Pool) *server {
	return &server{pool: pool}
}

// routes returns the HTTP handler.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/deployments", s.create)
	mux.HandleFunc("GET /v1/deployments", s.list)
	mux.HandleFunc("GET /v1/deployments/{id}", s.get)
	mux.HandleFunc("POST /v1/deployments/{id}/run", s.run)
	mux.HandleFunc("DELETE /v1/deployments/{id}", s.remove)
	return mux
}

// parseScheme maps the wire names onto schemes.
func parseScheme(name string) (td.Scheme, error) {
	switch strings.ToUpper(name) {
	case "", "TD":
		return td.SchemeTD, nil
	case "TAG":
		return td.SchemeTAG, nil
	case "SD":
		return td.SchemeSD, nil
	case "TD-COARSE", "TDCOARSE":
		return td.SchemeTDCoarse, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want TAG, SD, TD-Coarse or TD)", name)
}

// buildSession assembles the deployment and session a create request asks
// for.
func buildSession(req createRequest) (*td.Session, error) {
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		return nil, err
	}
	dep := td.NewSyntheticDeployment(req.Seed, req.Sensors)
	if req.Loss < 0 || req.Loss >= 1 {
		return nil, fmt.Errorf("loss %v out of [0,1)", req.Loss)
	}
	dep.SetGlobalLoss(req.Loss)
	dep.UseConcurrentRuntime(req.Concurrent)
	switch strings.ToLower(req.Aggregate) {
	case "", "count":
		return td.NewCountSession(dep, scheme, req.Seed)
	case "sum":
		return td.NewSumSession(dep, scheme, req.Seed,
			func(_, node int) float64 { return float64(node % 50) })
	}
	return nil, fmt.Errorf("unknown aggregate %q (want count or sum)", req.Aggregate)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) create(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.ID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("id is required"))
		return
	}
	if req.Sensors == 0 {
		req.Sensors = 300
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	sess, err := buildSession(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.pool.Add(req.ID, sess); err != nil {
		sess.Close()
		writeError(w, http.StatusConflict, err)
		return
	}
	st, _ := s.pool.Status(req.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (s *server) list(w http.ResponseWriter, _ *http.Request) {
	ids := s.pool.IDs()
	out := make([]td.DeploymentStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.pool.Status(id); ok {
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.pool.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no deployment %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) run(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req runRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	if req.Rounds <= 0 {
		req.Rounds = 1
	}
	if req.Rounds > 100000 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("rounds %d too large", req.Rounds))
		return
	}
	results, err := s.pool.RunDeployment(id, req.Rounds)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, results)
}

func (s *server) remove(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.pool.Remove(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no deployment %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func main() {
	addr := flag.String("addr", ":8473", "listen address")
	workers := flag.Int("workers", 0, "concurrent deployment budget (0 = GOMAXPROCS)")
	flag.Parse()
	srv := newServer(td.NewPool(*workers))
	log.Printf("tdserve listening on %s (worker budget %d)", *addr, srv.pool.Workers())
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}
