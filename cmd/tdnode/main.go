// Command tdnode hosts one shard of a multi-process Tributary-Delta
// deployment: the receive-side runtime of every node whose id is congruent
// to -shard modulo the fleet size. It is spawned by the parent process (a
// program using the UDP transport backend — tdserve with
// "transport":"udp", or any facade user via SetUDPNodeBinary), dials the
// parent's control address, and serves until told to stop:
//
//	tdnode -control 127.0.0.1:43210 -shard 3
//
// The control channel (TCP) carries the JSON join handshake, the binary
// per-epoch barrier and shutdown; aggregation frames arrive as UDP
// datagrams — MTU-bounded batches carrying every frame of a round bound
// for this shard, drained in recvmmsg bursts — on a port the shard picks
// and advertises at join. See DESIGN.md §5 ("UDP backend" and "The
// coalesced data plane") for the protocol.
package main

import (
	"flag"
	"log"

	"tributarydelta/internal/transport"
)

func main() {
	control := flag.String("control", "", "parent control address (host:port), required")
	shard := flag.Int("shard", 0, "shard index in [0, fleet size)")
	flag.Parse()
	if *control == "" {
		log.Fatal("tdnode: -control is required")
	}
	if *shard < 0 {
		log.Fatalf("tdnode: invalid shard index %d", *shard)
	}
	if err := transport.RunNode(*control, *shard); err != nil {
		log.Fatalf("tdnode: %v", err)
	}
}
