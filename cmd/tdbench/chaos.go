package main

import (
	"fmt"
	"time"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/chaos"
	"tributarydelta/internal/network"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/transport"
)

// Chaos mode: the supervised UDP fleet driven through a scripted fault
// schedule — a blackholed data plane, a stalled control channel and (when a
// tdnode binary is supplied, so SIGKILL is real) a kill -9 — while a
// same-seed simulator runs in lockstep as the oracle. The run reports the
// fault windows, the supervision ledger (restarts, degraded epochs) and the
// epoch at which answers returned bit-identical to the simulator, and fails
// if the fleet never fully recovers.

const (
	chaosSeed   = 1
	chaosNodes  = 300
	chaosShards = 4
	chaosLoss   = 0.15
	// chaosEpochs is the scripted window; after it the run polls until the
	// fleet heals or chaosMaxEpochs epochs pass.
	chaosEpochs    = 40
	chaosMaxEpochs = 400
)

// chaosRunner builds one TD Count runner over the given transport (nil for
// the in-process simulator); both sides share the topology but own their
// network instance, so loss verdicts agree without sharing state.
func chaosRunner(g *topo.Graph, rings *topo.Rings, tree *topo.Tree, tr runner.Transport, stats *network.Stats) (*runner.Runner[struct{}, int64, *sketch.Sketch, float64], error) {
	return runner.New(runner.Config[struct{}, int64, *sketch.Sketch, float64]{
		Graph: g, Rings: rings, Tree: tree,
		Net:       network.New(g, network.Global{P: chaosLoss}, chaosSeed),
		Agg:       aggregate.NewCount(chaosSeed),
		Value:     func(int, int) struct{} { return struct{}{} },
		Mode:      runner.ModeTD,
		Seed:      chaosSeed,
		Transport: tr,
		Stats:     stats,
	})
}

// runChaos executes the scripted scenario. tdnode is the optional shard
// binary: with it shards run as OS processes and the schedule includes a
// real kill -9; without it shards run in-process (where Kill is a no-op)
// and the schedule sticks to blackhole and control-stall faults.
func runChaos(tdnode string) error {
	sched := chaos.Schedule{
		Seed: chaosSeed * 1000,
		Faults: []chaos.Fault{
			{Epoch: 8, Kind: chaos.BlackholeShard, Shard: 1, Epochs: 2},
			{Epoch: 20, Kind: chaos.StallControl, Shard: 0, Epochs: 2},
		},
	}
	spawn := transport.Spawner(transport.SpawnInProcess)
	if tdnode != "" {
		spawn = transport.SpawnExec(tdnode)
		sched.Faults = append(sched.Faults, chaos.Fault{Epoch: 32, Kind: chaos.KillShard, Shard: 2})
	}
	drv, err := chaos.New(sched, chaosShards)
	if err != nil {
		return err
	}
	defer drv.Close()

	g := topo.NewRandomField(chaosSeed, chaosNodes, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
	rings := topo.BuildRings(g)
	tree := topo.BuildRestrictedTree(g, rings, chaosSeed)
	topo.OpportunisticImprove(g, rings, tree, chaosSeed, 8)

	stats := network.NewStats(g.N())
	u, err := transport.NewUDP(network.New(g, network.Global{P: chaosLoss}, chaosSeed), transport.UDPOptions{
		Shards:        chaosShards,
		Deterministic: true,
		Stats:         stats,
		Spawn:         drv.WrapSpawner(spawn),
		AddrRewrite:   drv.AddrRewrite,
		// Tight deadlines keep degraded epochs short so the scripted window
		// stays a few seconds even with a stalled control channel.
		BarrierTimeout: 500 * time.Millisecond,
		JoinTimeout:    500 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer u.Close()

	up, err := chaosRunner(g, rings, tree, u, stats)
	if err != nil {
		return err
	}
	sim, err := chaosRunner(g, rings, tree, nil, nil)
	if err != nil {
		return err
	}

	diverged, recoveredAt := 0, -1
	for epoch := 0; epoch < chaosMaxEpochs; epoch++ {
		drv.Advance(epoch)
		au := up.RunEpoch(epoch).Answer
		as := sim.RunEpoch(epoch).Answer
		if au != as {
			diverged++
			recoveredAt = -1
		} else if recoveredAt == -1 {
			recoveredAt = epoch
		}
		if epoch >= chaosEpochs && recoveredAt >= 0 && u.Health().Healthy() {
			break
		}
	}

	h := u.Health()
	c := drv.Counters()
	fmt.Printf("chaos: %d nodes over %d shards, loss %.2f, %d scripted faults\n",
		chaosNodes, chaosShards, chaosLoss, len(sched.Faults))
	fmt.Printf("chaos: noise frames dropped=%d dupped=%d blackholed=%d\n",
		c.Dropped, c.Dupped, c.Blackholed)
	for _, sh := range h.Shards {
		fmt.Printf("chaos: shard %d state=%s restarts=%d degradedEpochs=%d\n",
			sh.Shard, sh.State, sh.Restarts, sh.DegradedEpochs)
	}
	fmt.Printf("chaos: %d divergent epochs, bit-identical to the simulator again at epoch %d\n",
		diverged, recoveredAt)
	if err := u.Err(); err != nil {
		return fmt.Errorf("chaos: fleet never recovered: %w", err)
	}
	if recoveredAt < 0 || !h.Healthy() {
		return fmt.Errorf("chaos: fleet still degraded after %d epochs: %+v", chaosMaxEpochs, h)
	}
	if h.Restarts == 0 {
		return fmt.Errorf("chaos: schedule fired no restarts — faults did not bite")
	}
	return nil
}
