// Command tdbench regenerates the paper's tables and figures, and records
// the engine's performance trajectory.
//
// Usage:
//
//	tdbench -exp fig5a            # one experiment, full scale
//	tdbench -exp all -quick       # everything, reduced scale
//	tdbench -list                 # list experiment ids
//	tdbench -bench                # epoch-engine timings -> BENCH_6.json
//	tdbench -benchudp             # UDP data-plane timings -> BENCH_7.json
//	tdbench -chaos                # scripted fault schedule vs the UDP fleet
//
// Each experiment prints a table whose rows mirror the series of the
// corresponding paper artifact; DESIGN.md §4 records the calibration notes.
// The bench mode times the 600-node Count epoch (the BenchmarkEpochCount
// workload) for TAG/SD/TD across wave-engine worker bounds 1/2/4 and writes
// the medians to a JSON artifact, so the repo carries a committed perf
// datapoint per engine generation (DESIGN.md §7). The benchudp mode drives
// the same 600-node field over the real multi-process UDP runtime (k=4
// shards, loopback) with datagram coalescing on and off, in both barrier
// modes, recording epochs/sec, datagrams/epoch, bytes/datagram and socket
// syscalls/epoch (DESIGN.md §5).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tributarydelta/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	quick := flag.Bool("quick", false, "reduced workloads for a fast pass")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	bench := flag.Bool("bench", false, "run the epoch-engine benchmark and write -benchout")
	benchOut := flag.String("benchout", "BENCH_6.json", "bench mode: output artifact path")
	benchUDP := flag.Bool("benchudp", false, "run the UDP data-plane benchmark and write -benchudpout")
	benchUDPOut := flag.String("benchudpout", "BENCH_7.json", "benchudp mode: output artifact path")
	chaosMode := flag.Bool("chaos", false, "drive the supervised UDP fleet through a scripted fault schedule")
	chaosNode := flag.String("chaosnode", "", "chaos mode: tdnode binary for exec shards (enables the kill -9 fault; empty = in-process shards)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *bench {
		if err := runBench(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *benchUDP {
		if err := runUDPBench(*benchUDPOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *chaosMode {
		if err := runChaos(*chaosNode); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("chaos: fleet recovered; answers bit-identical to the simulator")
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
