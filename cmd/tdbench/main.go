// Command tdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	tdbench -exp fig5a            # one experiment, full scale
//	tdbench -exp all -quick       # everything, reduced scale
//	tdbench -list                 # list experiment ids
//
// Each experiment prints a table whose rows mirror the series of the
// corresponding paper artifact; DESIGN.md §4 records the calibration notes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tributarydelta/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	quick := flag.Bool("quick", false, "reduced workloads for a fast pass")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
