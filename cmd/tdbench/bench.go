package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	td "tributarydelta"
)

// Bench mode: the BenchmarkEpochCount workload (one 600-node Count
// collection round at Global(0.2) loss) timed for TAG/SD/TD across
// wave-engine worker bounds, written as a committed JSON artifact so the
// perf trajectory has dated datapoints that survive benchmark-log rot.

// benchNodes and benchLoss mirror BenchmarkEpochCount exactly.
const (
	benchNodes = 600
	benchLoss  = 0.2
	// benchWarmup epochs grow every pool and buffer, settle the adaptive
	// phase gate AND let the TD delta reach its oscillating equilibrium
	// (expansions before that relabel vertices and legitimately grow frame
	// buffers, which would read as steady-state allocation). 1000 epochs
	// puts TD firmly at equilibrium — its delta is larger there than in the
	// growth phase earlier artifacts sampled, so TD rows cost more ns/op
	// than BENCH_5's but describe the true steady state, and the allocs
	// column reads a clean 0.
	benchWarmup = 1000
	// benchSamples batches of benchBatch epochs each are timed; the median
	// batch is reported, making the artifact robust to scheduler noise.
	benchSamples = 9
	benchBatch   = 20
)

// BenchResult is one (scheme, workers) measurement.
type BenchResult struct {
	// Scheme is the aggregation scheme ("TAG", "SD", "TD").
	Scheme string `json:"scheme"`
	// Workers is the wave-engine worker bound.
	Workers int `json:"workers"`
	// NsPerOp is the median epoch latency in nanoseconds.
	NsPerOp int64 `json:"nsPerOp"`
	// AllocsPerOp is the steady-state heap allocations per epoch.
	AllocsPerOp float64 `json:"allocsPerOp"`
	// BytesPerEpoch is the mean radio bytes transmitted per epoch (from the
	// session's wire-derived accounting), so the artifact tracks energy cost
	// next to latency.
	BytesPerEpoch float64 `json:"bytesPerEpoch"`
}

// PoolBenchResult is one multi-deployment throughput measurement: d hosted
// TD Count deployments advanced through a Pool in the given scheduling mode.
type PoolBenchResult struct {
	// Deployments is the hosted deployment count.
	Deployments int `json:"deployments"`
	// Mode is the pool scheduling mode ("lockstep" or "pipelined").
	Mode string `json:"mode"`
	// EpochsPerSec is the aggregate epoch throughput across all deployments
	// (median batch).
	EpochsPerSec float64 `json:"epochsPerSec"`
}

// BenchArtifact is the BENCH_6.json document.
type BenchArtifact struct {
	// GeneratedBy records the producing command.
	GeneratedBy string `json:"generatedBy"`
	// Cores is the host's logical CPU count; scaling numbers only mean
	// something relative to it.
	Cores int `json:"cores"`
	// GoMaxProcs is the scheduler bound the run used.
	GoMaxProcs int `json:"gomaxprocs"`
	// GoVersion, GOOS and GOARCH identify the toolchain and platform.
	GoVersion string `json:"goVersion"`
	// GOOS is the target operating system.
	GOOS string `json:"goos"`
	// GOARCH is the target architecture.
	GOARCH string `json:"goarch"`
	// Nodes and Epochs describe the workload shape.
	Nodes int `json:"nodes"`
	// Epochs is the timed batch size behind each sample.
	Epochs int `json:"epochs"`
	// Results holds the measurement grid.
	Results []BenchResult `json:"results"`
	// Pool holds the multi-deployment throughput rows (pipelined vs
	// lock-step scheduling at 4 hosted deployments).
	Pool []PoolBenchResult `json:"pool"`
}

// benchOne measures one (scheme, workers) cell.
func benchOne(scheme td.Scheme, workers int) (BenchResult, error) {
	dep := td.NewSyntheticDeployment(1, benchNodes)
	dep.SetGlobalLoss(benchLoss)
	s, err := td.Open(dep, td.Count(), td.WithScheme(scheme), td.WithWorkers(workers))
	if err != nil {
		return BenchResult{}, err
	}
	defer s.Close()

	epoch := 0
	for ; epoch < benchWarmup; epoch++ {
		s.RunEpoch(epoch)
	}

	samples := make([]time.Duration, 0, benchSamples)
	var ms0, ms1 runtime.MemStats
	bytes0 := s.Stats().TotalBytes
	runtime.ReadMemStats(&ms0)
	for i := 0; i < benchSamples; i++ {
		start := time.Now()
		for j := 0; j < benchBatch; j++ {
			s.RunEpoch(epoch)
			epoch++
		}
		samples = append(samples, time.Since(start))
	}
	runtime.ReadMemStats(&ms1)
	bytes1 := s.Stats().TotalBytes
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	median := samples[len(samples)/2]
	measured := benchSamples * benchBatch
	return BenchResult{
		Scheme:        scheme.String(),
		Workers:       workers,
		NsPerOp:       median.Nanoseconds() / benchBatch,
		AllocsPerOp:   float64(ms1.Mallocs-ms0.Mallocs) / float64(measured),
		BytesPerEpoch: float64(bytes1-bytes0) / float64(measured),
	}, nil
}

// benchPool measures aggregate epoch throughput for deployments hosted TD
// Count sessions under both pool scheduling modes. The per-deployment field
// is smaller than benchNodes so the cell finishes in seconds; throughput
// ratios, not absolute epochs/s, are the signal.
func benchPool(deployments int, pipelined bool) (PoolBenchResult, error) {
	const poolNodes = 200
	p := td.NewPool(0)
	defer p.Close()
	for i := 0; i < deployments; i++ {
		dep := td.NewSyntheticDeployment(uint64(i+1), poolNodes)
		dep.SetGlobalLoss(benchLoss)
		s, err := td.NewCountSession(dep, td.SchemeTD, uint64(i+1))
		if err != nil {
			return PoolBenchResult{}, err
		}
		if err := p.Add(fmt.Sprintf("d%d", i), s); err != nil {
			return PoolBenchResult{}, err
		}
	}
	p.RunEpochs(50) // warm every hosted session
	p.SetPipelined(pipelined)
	samples := make([]time.Duration, 0, benchSamples)
	for i := 0; i < benchSamples; i++ {
		start := time.Now()
		for j := 0; j < benchBatch; j++ {
			p.RunEpochs(1)
		}
		p.Barrier()
		samples = append(samples, time.Since(start))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	median := samples[len(samples)/2]
	mode := "lockstep"
	if pipelined {
		mode = "pipelined"
	}
	return PoolBenchResult{
		Deployments:  deployments,
		Mode:         mode,
		EpochsPerSec: float64(benchBatch*deployments) / median.Seconds(),
	}, nil
}

// runBench produces the artifact at path and echoes it to stdout.
func runBench(path string) error {
	art := BenchArtifact{
		GeneratedBy: "cmd/tdbench -bench",
		Cores:       runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Nodes:       benchNodes,
		Epochs:      benchBatch,
	}
	for _, scheme := range []td.Scheme{td.SchemeTAG, td.SchemeSD, td.SchemeTD} {
		for _, workers := range []int{1, 2, 4} {
			res, err := benchOne(scheme, workers)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s workers=%d  %10d ns/op  %7.1f allocs/op  %9.0f bytes/epoch\n",
				res.Scheme, res.Workers, res.NsPerOp, res.AllocsPerOp, res.BytesPerEpoch)
			art.Results = append(art.Results, res)
		}
	}
	for _, pipelined := range []bool{false, true} {
		res, err := benchPool(4, pipelined)
		if err != nil {
			return err
		}
		fmt.Printf("pool x%d %-9s  %10.0f epochs/s\n", res.Deployments, res.Mode, res.EpochsPerSec)
		art.Pool = append(art.Pool, res)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cores)\n", path, art.Cores)
	return nil
}
