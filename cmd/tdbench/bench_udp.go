package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/transport"
)

// UDP bench mode: the 600-node TD Count epoch driven over the real
// multi-process data plane (loopback sockets, k=4 shards), measured with the
// datagram coalescing + sendmmsg fast path on and off, in both barrier
// modes. The rows quantify what the batch framing buys — datagrams, socket
// syscalls and wall-clock per epoch — and the committed BENCH_7.json is the
// dated datapoint the README's multi-process story cites.

const (
	udpBenchSeed   = 1
	udpBenchNodes  = 600
	udpBenchShards = 4
	udpBenchLoss   = 0.2
	// udpBenchWarmup epochs spawn the fleet, settle the join handshake and
	// warm every pool before timing starts.
	udpBenchWarmup = 30
	// udpBenchSamples batches of udpBenchBatch epochs are timed; the median
	// batch yields epochs/sec while the I/O counters aggregate over the whole
	// measured window (they are deterministic per epoch, timing is not).
	udpBenchSamples = 9
	udpBenchBatch   = 20
)

// UDPBenchResult is one (mode, batched) data-plane measurement.
type UDPBenchResult struct {
	// Mode is the barrier mode: "det" (exactly-once, seeded loss verdicts)
	// or "free" (optimistic sends, losses discovered at the barrier).
	Mode string `json:"mode"`
	// Batched reports whether datagram coalescing + batched socket I/O were
	// enabled (false = the one-frame-per-datagram PR 7 data plane).
	Batched bool `json:"batched"`
	// EpochsPerSec is the median-batch epoch throughput.
	EpochsPerSec float64 `json:"epochsPerSec"`
	// FramesPerEpoch is the mean count of frames the barrier delivered per
	// epoch — identical across rows of one mode, anchoring the ratios below.
	FramesPerEpoch float64 `json:"framesPerEpoch"`
	// DatagramsPerEpoch is the mean count of datagrams submitted to the
	// socket per epoch (coalescing shrinks this; retransmits grow it).
	DatagramsPerEpoch float64 `json:"datagramsPerEpoch"`
	// BytesPerDatagram is the mean payload size of those datagrams.
	BytesPerDatagram float64 `json:"bytesPerDatagram"`
	// SyscallsPerEpoch is the mean count of socket syscalls per epoch across
	// both ends of the data plane (parent sendmmsg/sendto + shard
	// recvmmsg/read), from the batchio counters.
	SyscallsPerEpoch float64 `json:"syscallsPerEpoch"`
}

// UDPBenchArtifact is the BENCH_7.json document.
type UDPBenchArtifact struct {
	// GeneratedBy records the producing command.
	GeneratedBy string `json:"generatedBy"`
	// Cores is the host's logical CPU count.
	Cores int `json:"cores"`
	// GoMaxProcs is the scheduler bound the run used.
	GoMaxProcs int `json:"gomaxprocs"`
	// GoVersion, GOOS and GOARCH identify the toolchain and platform.
	GoVersion string `json:"goVersion"`
	// GOOS is the target operating system.
	GOOS string `json:"goos"`
	// GOARCH is the target architecture.
	GOARCH string `json:"goarch"`
	// Nodes, Shards and Epochs describe the workload shape.
	Nodes int `json:"nodes"`
	// Shards is the shard-process count the fleet was partitioned over.
	Shards int `json:"shards"`
	// Epochs is the timed batch size behind each throughput sample.
	Epochs int `json:"epochs"`
	// Results holds the measurement grid.
	Results []UDPBenchResult `json:"results"`
}

// benchUDPOne measures one (mode, batched) cell over a fresh fleet.
func benchUDPOne(det, batched bool) (UDPBenchResult, error) {
	g := topo.NewRandomField(udpBenchSeed, udpBenchNodes, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
	rings := topo.BuildRings(g)
	tree := topo.BuildRestrictedTree(g, rings, udpBenchSeed)
	topo.OpportunisticImprove(g, rings, tree, udpBenchSeed, 8)
	nw := network.New(g, network.Global{P: udpBenchLoss}, udpBenchSeed)
	stats := network.NewStats(g.N())
	u, err := transport.NewUDP(nw, transport.UDPOptions{
		Shards:        udpBenchShards,
		Deterministic: det,
		Stats:         stats,
		NoBatching:    !batched,
	})
	if err != nil {
		return UDPBenchResult{}, err
	}
	defer u.Close()

	r, err := runner.New(runner.Config[struct{}, int64, *sketch.Sketch, float64]{
		Graph: g, Rings: rings, Tree: tree,
		Net:       nw,
		Agg:       aggregate.NewCount(udpBenchSeed),
		Value:     func(int, int) struct{} { return struct{}{} },
		Mode:      runner.ModeTD,
		Seed:      udpBenchSeed,
		Transport: u,
	})
	if err != nil {
		return UDPBenchResult{}, err
	}

	epoch := 0
	for ; epoch < udpBenchWarmup; epoch++ {
		r.RunEpoch(epoch)
	}

	frames0 := stats.TotalRxFrames()
	io0 := u.IOStats()
	samples := make([]time.Duration, 0, udpBenchSamples)
	for i := 0; i < udpBenchSamples; i++ {
		start := time.Now()
		for j := 0; j < udpBenchBatch; j++ {
			r.RunEpoch(epoch)
			epoch++
		}
		samples = append(samples, time.Since(start))
	}
	io := u.IOStats().Sub(io0)
	frames := stats.TotalRxFrames() - frames0
	if err := u.Err(); err != nil {
		return UDPBenchResult{}, fmt.Errorf("transport error after %d epochs: %w", epoch, err)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	median := samples[len(samples)/2]
	measured := float64(udpBenchSamples * udpBenchBatch)
	bytesPerDG := 0.0
	if io.SentDatagrams > 0 {
		bytesPerDG = float64(io.SentBytes) / float64(io.SentDatagrams)
	}
	mode := "free"
	if det {
		mode = "det"
	}
	return UDPBenchResult{
		Mode:              mode,
		Batched:           batched,
		EpochsPerSec:      float64(udpBenchBatch) / median.Seconds(),
		FramesPerEpoch:    float64(frames) / measured,
		DatagramsPerEpoch: float64(io.SentDatagrams) / measured,
		BytesPerDatagram:  bytesPerDG,
		SyscallsPerEpoch:  float64(io.SendCalls+io.RecvCalls) / measured,
	}, nil
}

// runUDPBench produces the artifact at path and echoes it to stdout.
func runUDPBench(path string) error {
	art := UDPBenchArtifact{
		GeneratedBy: "cmd/tdbench -benchudp",
		Cores:       runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Nodes:       udpBenchNodes,
		Shards:      udpBenchShards,
		Epochs:      udpBenchBatch,
	}
	for _, det := range []bool{true, false} {
		for _, batched := range []bool{true, false} {
			res, err := benchUDPOne(det, batched)
			if err != nil {
				return err
			}
			fmt.Printf("udp %-4s batched=%-5v  %7.1f epochs/s  %7.1f datagrams/epoch  %6.0f bytes/datagram  %7.1f syscalls/epoch\n",
				res.Mode, res.Batched, res.EpochsPerSec, res.DatagramsPerEpoch,
				res.BytesPerDatagram, res.SyscallsPerEpoch)
			art.Results = append(art.Results, res)
		}
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cores)\n", path, art.Cores)
	return nil
}
