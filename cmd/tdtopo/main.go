// Command tdtopo explores aggregation topologies: it builds a field, its
// rings and both tree constructions, reports height histograms and
// domination factors, and optionally renders the field as an ASCII map.
//
// Usage:
//
//	tdtopo -n 600 -width 20 -height 20 -range 3
//	tdtopo -lab -map
package main

import (
	"flag"
	"fmt"

	"tributarydelta/internal/topo"
)

func main() {
	n := flag.Int("n", 600, "number of sensors")
	width := flag.Float64("width", 20, "field width")
	height := flag.Float64("height", 20, "field height")
	radio := flag.Float64("range", 3, "radio range")
	seed := flag.Uint64("seed", 1, "seed")
	lab := flag.Bool("lab", false, "use the LabData layout instead of a random field")
	drawMap := flag.Bool("map", false, "render an ASCII ring map")
	flag.Parse()

	var g *topo.Graph
	if *lab {
		g = topo.NewLabField()
		*width, *height = 40, 12
	} else {
		g = topo.NewRandomField(*seed, *n, *width, *height,
			topo.Point{X: *width / 2, Y: *height / 2}, *radio)
	}
	r := topo.BuildRings(g)
	fmt.Printf("field: %d sensors, %d reachable, %d rings\n",
		g.Sensors(), r.CountReachable()-1, r.Max)

	ours := topo.BuildRestrictedTree(g, r, *seed)
	topo.OpportunisticImprove(g, r, ours, *seed, 8)
	tag := topo.BuildTAGTree(g, *seed)

	report := func(name string, t *topo.Tree) {
		hist := topo.HeightHist(t)
		fmt.Printf("%-16s h(i)=%v\n", name, hist)
		fmt.Printf("%-16s H(i)=", "")
		for _, f := range topo.HFractions(hist) {
			fmt.Printf("%.3f ", f)
		}
		fmt.Printf("\n%-16s domination factor %.2f (2-dominating: %v)\n",
			"", topo.TreeDominationFactor(t, 0.05), topo.IsDominating(hist, 2))
	}
	report("our tree:", ours)
	report("TAG tree:", tag)

	if *drawMap {
		fmt.Println("\nring map (digits = ring level mod 10, B = base):")
		const cells = 40
		grid := make([][]byte, cells/2)
		for i := range grid {
			grid[i] = make([]byte, cells)
			for j := range grid[i] {
				grid[i][j] = ' '
			}
		}
		for v := 0; v < g.N(); v++ {
			if !r.Reachable(v) {
				continue
			}
			x := int(g.Pos[v].X / *width * cells)
			y := int(g.Pos[v].Y / *height * float64(cells/2))
			x = clamp(x, 0, cells-1)
			y = clamp(y, 0, cells/2-1)
			if v == topo.Base {
				grid[y][x] = 'B'
			} else if grid[y][x] != 'B' {
				grid[y][x] = byte('0' + r.Level[v]%10)
			}
		}
		for i := len(grid) - 1; i >= 0; i-- {
			fmt.Println(string(grid[i]))
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
