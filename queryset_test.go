package tributarydelta_test

import (
	"context"
	"sync"
	"testing"

	td "tributarydelta"
	"tributarydelta/internal/quantile"
)

// openSetTrio opens {Count, Sum, Quantiles} as members of a fresh set over
// dep and returns the typed member sessions plus the set.
func openSetTrio(t testing.TB, dep *td.Deployment, seed uint64) (*td.QuerySet,
	*td.Session[float64], *td.Session[float64], *td.Session[*quantile.Summary]) {
	t.Helper()
	value := func(_, node int) float64 { return float64(node%40 + 1) }
	set := dep.NewQuerySet(seed)
	cnt, err := td.Open(dep, td.Count(), td.InSet(set))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := td.Open(dep, td.Sum(value), td.InSet(set))
	if err != nil {
		t.Fatal(err)
	}
	qnt, err := td.Open(dep, td.Quantiles(value), td.InSet(set))
	if err != nil {
		t.Fatal(err)
	}
	return set, cnt, sum, qnt
}

// TestQuerySetSharedLossRealization is the acceptance determinism test: a
// QuerySet running {Count, Sum, Quantiles} over one deployment uses a
// single shared loss realization per epoch — every member sees the same
// contributing set each round, members match standalone sessions opened on
// the same seed, and a different seed produces a different realization.
func TestQuerySetSharedLossRealization(t *testing.T) {
	const seed = 7
	dep := td.NewSyntheticDeployment(1, 250)
	dep.SetGlobalLoss(0.3)
	set, _, _, _ := openSetTrio(t, dep, seed)
	defer set.Close()
	if got := set.Names(); len(got) != 3 || got[0] != "Count" || got[1] != "Sum" || got[2] != "Quantiles" {
		t.Fatalf("names = %v", got)
	}

	// A standalone Count session on the set's seed samples the very same
	// loss realization.
	solo, err := td.Open(dep, td.Count(), td.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	// And one on another seed draws a different realization.
	other, err := td.Open(dep, td.Count(), td.WithSeed(seed+1))
	if err != nil {
		t.Fatal(err)
	}

	diverged := false
	for _, round := range set.Run(0, 20) {
		cnt := round.Results[0].(td.Result[float64])
		sum := round.Results[1].(td.Result[float64])
		qnt := round.Results[2].(td.Result[*quantile.Summary])
		if cnt.TrueContrib != sum.TrueContrib || cnt.TrueContrib != qnt.TrueContrib {
			t.Fatalf("epoch %d: contributing sets diverge across members: %d / %d / %d",
				round.Epoch, cnt.TrueContrib, sum.TrueContrib, qnt.TrueContrib)
		}
		if cnt.DeltaSize != sum.DeltaSize || cnt.DeltaSize != qnt.DeltaSize {
			t.Fatalf("epoch %d: adaptation diverges across members: %d / %d / %d",
				round.Epoch, cnt.DeltaSize, sum.DeltaSize, qnt.DeltaSize)
		}
		if want := solo.RunEpoch(round.Epoch); want != cnt {
			t.Fatalf("epoch %d: member Count %+v, standalone same-seed %+v", round.Epoch, cnt, want)
		}
		if other.RunEpoch(round.Epoch).TrueContrib != cnt.TrueContrib {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("a different seed never diverged — the shared-realization assertion is vacuous")
	}

	// Per-member stats stay separate: all accounted, and the quantile
	// member's messages are larger than the count member's.
	stats := set.MemberStats()
	if len(stats) != 3 {
		t.Fatalf("stats for %d members", len(stats))
	}
	for i, st := range stats {
		if st.TotalBytes <= 0 {
			t.Fatalf("member %d unaccounted: %+v", i, st)
		}
	}
	if stats[2].TotalBytes <= stats[0].TotalBytes {
		t.Fatalf("quantiles bytes %d should exceed count bytes %d",
			stats[2].TotalBytes, stats[0].TotalBytes)
	}
}

// TestQuerySetConcurrentRuntimeParity pins the shared concurrent runtime:
// a set on the goroutine-per-node transport produces bit-identical rounds
// to the same set on the synchronous simulator, and its per-member receive
// accounting is populated by the multiplexer.
func TestQuerySetConcurrentRuntimeParity(t *testing.T) {
	const seed = 3
	mkRounds := func(concurrent bool) ([]td.SetRound, []td.SessionStats) {
		dep := td.NewSyntheticDeployment(2, 200)
		dep.SetGlobalLoss(0.25)
		dep.UseConcurrentRuntime(concurrent)
		set, _, _, _ := openSetTrio(t, dep, seed)
		defer set.Close()
		return set.Run(0, 8), set.MemberStats()
	}
	simRounds, simStats := mkRounds(false)
	concRounds, concStats := mkRounds(true)
	for e := range simRounds {
		for m := 0; m < 2; m++ { // scalar members compare directly
			if simRounds[e].Results[m] != concRounds[e].Results[m] {
				t.Fatalf("epoch %d member %d: sim %+v, concurrent %+v",
					e, m, simRounds[e].Results[m], concRounds[e].Results[m])
			}
		}
		sq := simRounds[e].Results[2].(td.Result[*quantile.Summary])
		cq := concRounds[e].Results[2].(td.Result[*quantile.Summary])
		if sq.TrueContrib != cq.TrueContrib || sq.Answer.N != cq.Answer.N ||
			sq.Answer.Quantile(0.5) != cq.Answer.Quantile(0.5) {
			t.Fatalf("epoch %d: quantile member diverged: %+v vs %+v", e, sq, cq)
		}
	}
	for m := range simStats {
		if simStats[m].TotalBytes != concStats[m].TotalBytes {
			t.Fatalf("member %d: tx accounting diverged: %+v vs %+v", m, simStats[m], concStats[m])
		}
		if concStats[m].RxFrames <= 0 {
			t.Fatalf("member %d: concurrent runtime recorded no received frames: %+v", m, concStats[m])
		}
	}
	// The multiplexer attributes receive work per member: scalar members
	// see the same frame counts under a shared loss realization.
	if concStats[0].RxFrames != concStats[1].RxFrames {
		t.Fatalf("scalar members received %d vs %d frames",
			concStats[0].RxFrames, concStats[1].RxFrames)
	}
}

// TestQuerySetStreamRace drives QuerySet.Stream under the concurrent
// runtime while Close races the consumer — the -race exercise for the
// shared-transport multiplexer and the stream teardown path.
func TestQuerySetStreamRace(t *testing.T) {
	dep := td.NewSyntheticDeployment(5, 150)
	dep.SetGlobalLoss(0.2)
	dep.UseConcurrentRuntime(true)
	set, _, _, _ := openSetTrio(t, dep, 5)

	ctx := context.Background()
	ch := set.Stream(ctx, 0, 50)
	var rounds []td.SetRound
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := range ch {
			rounds = append(rounds, round)
			if len(rounds) == 5 {
				set.Close() // mid-stream teardown from the consumer side
			}
		}
	}()
	wg.Wait()
	if len(rounds) < 5 {
		t.Fatalf("only %d rounds before close", len(rounds))
	}
	for i, round := range rounds[:5] {
		if round.Epoch != i || len(round.Results) != 3 {
			t.Fatalf("round %d = %+v", i, round)
		}
	}
	set.Close() // idempotent

	// A closed set runs nothing and a new stream closes immediately.
	if round := set.RunEpoch(99); round.Results != nil {
		t.Fatalf("closed set round = %+v", round)
	}
	if _, ok := <-set.Stream(ctx, 0, 1); ok {
		t.Fatal("stream on closed set must be empty")
	}
}
