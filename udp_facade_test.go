package tributarydelta_test

// Facade coverage for the multi-process UDP runtime: WithUDPTransport and
// Deployment.UseUDPRuntime must yield sessions bit-identical to the
// simulator, the option conflicts must be rejected, a QuerySet must hammer
// the shared fleet through many lock-step rounds, and the query-set
// multiplexer's SetStats swap must keep per-member accounting exact across a
// mid-run SetWorkers rebound.

import (
	"testing"

	td "tributarydelta"
	"tributarydelta/internal/quantile"
)

// TestUDPSessionMatchesSimulator opens the same Count query on the
// synchronous simulator and on the UDP fleet (deterministic mode): every
// epoch's full Result must be identical, the fleet must stay error-free, and
// the receive-side accounting must be populated with zero duplicates.
func TestUDPSessionMatchesSimulator(t *testing.T) {
	mk := func(opts ...td.Option) *td.Session[float64] {
		dep := td.NewSyntheticDeployment(3, 200)
		dep.SetGlobalLoss(0.25)
		s, err := td.Open(dep, td.Count(), append([]td.Option{td.WithSeed(11)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	sim := mk()
	udp := mk(td.WithUDPTransport(4))
	unbatched := mk(td.WithUDPTransport(4), td.WithDatagramBatching(false))
	for e := 0; e < 15; e++ {
		want := sim.RunEpoch(e)
		if got := udp.RunEpoch(e); want != got {
			t.Fatalf("epoch %d: simulator %+v, udp runtime %+v", e, want, got)
		}
		if got := unbatched.RunEpoch(e); want != got {
			t.Fatalf("epoch %d: simulator %+v, unbatched udp runtime %+v", e, want, got)
		}
	}
	if err := unbatched.TransportErr(); err != nil {
		t.Fatalf("unbatched udp session transport error: %v", err)
	}
	if err := udp.TransportErr(); err != nil {
		t.Fatalf("udp session transport error: %v", err)
	}
	if err := sim.TransportErr(); err != nil {
		t.Fatalf("simulator session reported a transport error: %v", err)
	}
	st := udp.Stats()
	if st.RxFrames == 0 {
		t.Fatal("udp session recorded no received frames")
	}
	if st.Duplicates != 0 {
		t.Fatalf("deterministic udp session recorded %d duplicates", st.Duplicates)
	}
}

// TestUDPDeploymentDefault pins the Deployment.UseUDPRuntime default and its
// per-session overrides in both directions.
func TestUDPDeploymentDefault(t *testing.T) {
	dep := td.NewSyntheticDeployment(4, 120)
	dep.SetGlobalLoss(0.2)
	dep.UseUDPRuntime(3)
	s, err := td.Open(dep, td.Count())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.RunEpoch(0)
	if st := s.Stats(); st.RxFrames == 0 {
		t.Fatal("deployment-default udp session recorded no received frames")
	}
	// WithUDPTransport(0) opts this session back onto the in-process path.
	off, err := td.Open(dep, td.Count(), td.WithUDPTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if off.RunEpoch(0).Epoch != 0 {
		t.Fatal("opt-out session did not run")
	}
	// An explicit concurrent-runtime choice overrides the UDP default too.
	conc, err := td.Open(dep, td.Count(), td.WithConcurrentRuntime(true))
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Close()
	conc.RunEpoch(0)
}

// TestUDPOptionConflicts pins Open's rejection of contradictory runtime
// options.
func TestUDPOptionConflicts(t *testing.T) {
	dep := td.NewSyntheticDeployment(5, 80)
	if _, err := td.Open(dep, td.Count(), td.WithUDPTransport(2), td.WithConcurrentRuntime(true)); err == nil {
		t.Fatal("WithUDPTransport + WithConcurrentRuntime accepted")
	}
	set := dep.NewQuerySet(1)
	defer set.Close()
	if _, err := td.Open(dep, td.Count(), td.InSet(set), td.WithUDPTransport(2)); err == nil {
		t.Fatal("WithUDPTransport + InSet accepted")
	}
}

// TestQuerySetUDPHammer is the long-haul fleet exercise: four queries in one
// set over the shared UDP runtime, 50 lock-step rounds of real loopback
// datagrams and barriers, compared round-for-round against the identical set
// on the synchronous simulator.
func TestQuerySetUDPHammer(t *testing.T) {
	const seed, rounds = 7, 50
	value := func(_, node int) float64 { return float64(node%40 + 1) }
	run := func(udp bool) ([]td.SetRound, []td.SessionStats, *td.QuerySet) {
		dep := td.NewSyntheticDeployment(6, 150)
		dep.SetGlobalLoss(0.25)
		if udp {
			dep.UseUDPRuntime(4)
		}
		set, _, _, _ := openSetTrio(t, dep, seed)
		t.Cleanup(set.Close)
		if _, err := td.Open(dep, td.Average(value), td.InSet(set)); err != nil {
			t.Fatal(err)
		}
		return set.Run(0, rounds), set.MemberStats(), set
	}
	simRounds, _, simSet := run(false)
	udpRounds, udpStats, udpSet := run(true)
	if len(simRounds) != rounds || len(udpRounds) != rounds {
		t.Fatalf("completed %d/%d rounds", len(simRounds), len(udpRounds))
	}
	for e := range simRounds {
		for _, m := range []int{0, 1, 3} { // scalar members compare directly
			if simRounds[e].Results[m] != udpRounds[e].Results[m] {
				t.Fatalf("epoch %d member %d: sim %+v, udp %+v",
					e, m, simRounds[e].Results[m], udpRounds[e].Results[m])
			}
		}
		sq := simRounds[e].Results[2].(td.Result[*quantile.Summary])
		uq := udpRounds[e].Results[2].(td.Result[*quantile.Summary])
		if sq.TrueContrib != uq.TrueContrib || sq.Answer.N != uq.Answer.N ||
			sq.Answer.Quantile(0.5) != uq.Answer.Quantile(0.5) {
			t.Fatalf("epoch %d: quantile member diverged: %+v vs %+v", e, sq, uq)
		}
	}
	if err := udpSet.TransportErr(); err != nil {
		t.Fatalf("udp set transport error after %d rounds: %v", rounds, err)
	}
	if err := simSet.TransportErr(); err != nil {
		t.Fatalf("simulator set reported a transport error: %v", err)
	}
	for m, st := range udpStats {
		if st.RxFrames == 0 {
			t.Fatalf("member %d: udp runtime recorded no received frames: %+v", m, st)
		}
		if st.Duplicates != 0 {
			t.Fatalf("member %d: deterministic udp recorded %d duplicates", m, st.Duplicates)
		}
	}
}

// TestMuxSetStatsAcrossSetWorkers is the regression for the multiplexer's
// SetStats swap under a mid-run SetWorkers rebound: per-member receive
// accounting over the shared concurrent runtime must match standalone
// same-seed sessions exactly — before and after the worker-pool change, for
// every member, with nothing skewed onto a neighbour's stats.
func TestMuxSetStatsAcrossSetWorkers(t *testing.T) {
	const seed, half = 9, 10
	dep := td.NewSyntheticDeployment(8, 180)
	dep.SetGlobalLoss(0.3)
	dep.UseConcurrentRuntime(true)
	set, _, _, _ := openSetTrio(t, dep, seed)
	defer set.Close()
	set.Run(0, half)
	set.SetWorkers(3)
	set.Run(half, half)
	got := set.MemberStats()

	value := func(_, node int) float64 { return float64(node%40 + 1) }
	want := standaloneStats(t, dep, seed, value, 2*half)
	for m := range got {
		if got[m].RxFrames != want[m].RxFrames {
			t.Fatalf("member %d: set rx frames %d, standalone %d (SetStats swap skewed across SetWorkers)",
				m, got[m].RxFrames, want[m].RxFrames)
		}
		if got[m].TotalBytes != want[m].TotalBytes || got[m].Losses != want[m].Losses {
			t.Fatalf("member %d: set stats %+v, standalone %+v", m, got[m], want[m])
		}
	}
	// The set's receive accounting is per-member exact, so identical-traffic
	// scalar members must agree with each other too.
	if got[0].RxFrames != got[1].RxFrames {
		t.Fatalf("scalar members received %d vs %d frames", got[0].RxFrames, got[1].RxFrames)
	}
}

// standaloneStats runs each trio query standalone on the concurrent runtime
// with the set's seed for rounds epochs and returns their stats in trio
// order.
func standaloneStats(t *testing.T, dep *td.Deployment, seed uint64,
	value func(epoch, node int) float64, rounds int) []td.SessionStats {
	t.Helper()
	cnt, err := td.Open(dep, td.Count(), td.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer cnt.Close()
	sum, err := td.Open(dep, td.Sum(value), td.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer sum.Close()
	qnt, err := td.Open(dep, td.Quantiles(value), td.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer qnt.Close()
	cnt.Run(0, rounds)
	sum.Run(0, rounds)
	qnt.Run(0, rounds)
	return []td.SessionStats{cnt.Stats(), sum.Stats(), qnt.Stats()}
}
