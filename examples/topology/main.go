// Topology explorer: build deployments of increasing density through the
// facade, compare the paper's tree construction (restricted links +
// opportunistic parent switching, §6.1.3) against the standard TAG tree,
// and see how the domination factor (§6.1.2) governs the Min Total-load
// guarantee.
//
//	go run ./examples/topology
package main

import (
	"fmt"

	td "tributarydelta"
	"tributarydelta/internal/freq"
	"tributarydelta/internal/topo"
)

func main() {
	const seed = 3
	for _, density := range []float64{0.4, 0.8, 1.2, 1.6} {
		n := int(density * 400)
		dep := td.NewSyntheticDeployment(seed, n)
		sc := dep.Scenario()

		dOurs := dep.DominationFactor() // the restricted tree the TD schemes run on
		dTag := topo.TreeDominationFactor(sc.TAGTree, 0.05)

		// Lemma 3's total-communication bound improves with d.
		const eps = 0.001
		boundOurs := freq.MinTotalLoad{Epsilon: eps, D: dOurs}.TotalCommBound(n)
		boundTag := freq.MinTotalLoad{Epsilon: eps, D: maxf(dTag, 1.05)}.TotalCommBound(n)

		fmt.Printf("density %.1f (%3d nodes, %d rings): our tree d=%.2f (bound %.2gM words), TAG d=%.2f (bound %.2gM words)\n",
			density, n, sc.Rings.Max, dOurs, boundOurs/1e6, dTag, boundTag/1e6)
	}

	// The Table 2 example, straight from the paper.
	fmt.Println("\nTable 2 reproduction:")
	te := []int{37, 10, 6, 1}
	fmt.Printf("  Te: h(i)=%v H(i)=%.3f 2-dominating=%v factor=%.2f\n",
		te, topo.HFractions(te), topo.IsDominating(te, 2), topo.DominationFactor(te, 0.05))
	t2 := topo.RegularHist(2, 4)
	fmt.Printf("  T2: h(i)=%v H(i)=%.3f 2-dominating=%v factor=%.2f\n",
		t2, topo.HFractions(t2), topo.IsDominating(t2, 2), topo.DominationFactor(t2, 0.05))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
