// Quantiles: the §6.1.4 extension drives Greenwald–Khanna-style mergeable
// quantile summaries with the paper's precision gradients, bounding total
// in-tree communication while meeting a rank-error budget at the root.
//
//	go run ./examples/quantiles
package main

import (
	"fmt"
	"sort"

	td "tributarydelta"
	"tributarydelta/internal/quantile"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/xrand"
)

func main() {
	const seed = 5
	dep := td.NewSyntheticDeployment(seed, 400)
	sc := dep.Scenario()
	tree := sc.Tree
	heights := tree.Heights()
	h := heights[topo.Base]

	// Each node holds a window of temperature-like readings.
	perNode := make(map[int][]float64)
	var all []float64
	src := xrand.NewSource(seed, 0xE6)
	for v := 1; v < sc.Graph.N(); v++ {
		if !tree.InTree(v) {
			continue
		}
		vals := make([]float64, 50)
		for i := range vals {
			vals[i] = 20 + 5*src.NormFloat64() + float64(v%7)
		}
		perNode[v] = vals
		all = append(all, vals...)
	}

	const eps = 0.01
	res := quantile.RunTree(tree, func(v int) []float64 { return perNode[v] },
		quantile.Uniform(eps, h))

	sort.Float64s(all)
	fmt.Printf("population: %d readings across %d nodes; root summary: %d entries, ε=%.3f\n\n",
		len(all), len(perNode), res.Root.Size(), res.Root.Eps)
	fmt.Println("quantile   estimate   exact")
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.99} {
		exact := all[int(q*float64(len(all)-1))]
		fmt.Printf("  %5.2f    %7.2f   %7.2f\n", q, res.Root.Quantile(q), exact)
	}

	total := 0
	for _, w := range res.LoadWords {
		total += w
	}
	fmt.Printf("\ntotal communication: %d words (%.1f words per node)\n",
		total, float64(total)/float64(len(perNode)))
	fmt.Printf("every answer is within ε·N = %.0f ranks of the true rank\n",
		eps*float64(len(all)))
}
