// Quantiles: the Quantiles query drives Greenwald–Khanna-style mergeable
// summaries with the paper's §6.1.4 precision gradients in the tributaries
// and the duplicate-insensitive bottom-k sample in the delta, meeting a
// rank-error budget at the base station under real message loss.
//
//	go run ./examples/quantiles
package main

import (
	"fmt"
	"sort"

	td "tributarydelta"
	"tributarydelta/internal/xrand"
)

func main() {
	const seed = 5
	const eps = 0.02
	dep := td.NewSyntheticDeployment(seed, 400)
	dep.SetGlobalLoss(0.15)

	// Each node reports one temperature-like reading per epoch.
	reading := func(epoch, node int) float64 {
		src := xrand.NewSource(seed, 0xE6, uint64(epoch), uint64(node))
		return 20 + 5*src.NormFloat64() + float64(node%7)
	}

	s, err := td.Open(dep, td.Quantiles(reading),
		td.WithScheme(td.SchemeTD), td.WithSeed(seed),
		td.WithEpsilon(eps), td.WithSampleK(120))
	if err != nil {
		panic(err)
	}
	defer s.Close()

	// Let the delta adapt to the loss, then read one settled round.
	s.Run(0, 60)
	res := s.RunEpoch(60)

	// Ground truth over every participating sensor's reading.
	var all []float64
	for v := 1; v <= dep.Sensors(); v++ {
		all = append(all, reading(60, v))
	}
	sort.Float64s(all)

	fmt.Printf("%d sensors under 15%% loss; %d contributed; summary: %d entries over ~%d readings\n\n",
		s.Sensors(), res.TrueContrib, res.Answer.Size(), res.Answer.N)
	fmt.Println("quantile   estimate   exact")
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.99} {
		exact := all[int(q*float64(len(all)-1))]
		fmt.Printf("  %5.2f    %7.2f   %7.2f\n", q, res.Answer.Quantile(q), exact)
	}

	st := s.Stats()
	fmt.Printf("\ncommunication so far: %d words (%d bytes), %d losses absorbed\n",
		st.TotalWords, st.TotalBytes, st.Losses)
	fmt.Printf("tree-side budget: every tributary answer within ε·N = %.0f ranks\n",
		eps*float64(res.Answer.N))
}
