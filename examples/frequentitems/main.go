// Frequent items: biological/chemical sensing needs a consensus over
// unreliable individual readings (§5). Each node reports a window of
// discretised readings; the FrequentItems query (§6) finds the items above
// a 1% support threshold with ε-deficient counts.
//
//	go run ./examples/frequentitems
package main

import (
	"fmt"
	"sort"

	td "tributarydelta"
	"tributarydelta/internal/freq"
	"tributarydelta/internal/xrand"
)

func main() {
	const (
		seed     = 11
		nodes    = 300
		perEpoch = 300 // readings per node per collection window
		epsilon  = 0.001
		support  = 0.01
	)
	dep := td.NewSyntheticDeployment(seed, nodes)
	dep.SetGlobalLoss(0.2)

	// A skewed stream: a handful of "detections" dominate a noisy tail.
	items := func(epoch, node int) []freq.Item {
		src := xrand.NewSource(seed, uint64(epoch), uint64(node))
		z := xrand.NewZipf(src, 400, 1.2)
		out := make([]freq.Item, perEpoch)
		for i := range out {
			out[i] = freq.Item(z.Draw())
		}
		return out
	}

	session, err := td.Open(dep, td.FrequentItems(items, support, float64(nodes*perEpoch)),
		td.WithScheme(td.SchemeTD), td.WithSeed(seed), td.WithEpsilon(epsilon))
	if err != nil {
		panic(err)
	}
	defer session.Close()

	res := session.RunEpoch(0)
	fmt.Printf("estimated stream size N = %.0f (true %d)\n", res.Answer.NEst, nodes*perEpoch)
	fmt.Printf("%d sensors contributed; frequent items (>%.1f%% support):\n\n",
		res.TrueContrib, 100*support)

	type row struct {
		item freq.Item
		est  float64
	}
	rows := make([]row, 0, len(res.Answer.Frequent))
	for _, u := range res.Answer.Frequent {
		rows = append(rows, row{u, res.Answer.Estimates[u]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].est > rows[j].est })
	fmt.Println("item   est. count   est. share")
	for _, r := range rows {
		fmt.Printf("%4d   %10.0f   %9.2f%%\n", r.item, r.est, 100*r.est/res.Answer.NEst)
	}
	fmt.Println("\nGuarantee: no item above support is missed (up to message loss),")
	fmt.Println("and every report has frequency at least (s−ε)·N.")
}
