// Adaptive monitoring: a Sum query rides through changing network weather —
// lossless, a regional failure, a global failure, and recovery — while the
// TD strategy grows and shrinks the delta region (the Figure 6 scenario).
// Each phase streams its rounds through Session.Stream.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"math"
	"strings"

	td "tributarydelta"
)

func main() {
	const seed = 7
	dep := td.NewSyntheticDeployment(seed, 400)

	reading := func(epoch, node int) float64 { return 50 + float64(node%20) }

	// Open pins the failure model at session creation, so run four sessions
	// back to back — one per phase of the Figure 6 scenario — each consumed
	// as a stream of results.
	fmt.Println("epoch  phase                 rel.err  delta  contributing")
	epoch := 0
	for _, ph := range []struct {
		name  string
		set   func()
		until int
	}{
		{"lossless", func() { dep.SetGlobalLoss(0) }, 100},
		{"regional 30% failure", func() { dep.SetRegionalLoss(0, 0, 10, 10, 0.3, 0) }, 200},
		{"global 30% failure", func() { dep.SetGlobalLoss(0.3) }, 300},
		{"recovered", func() { dep.SetGlobalLoss(0) }, 400},
	} {
		ph.set()
		s, err := td.Open(dep, td.Sum(reading), td.WithScheme(td.SchemeTD), td.WithSeed(seed))
		if err != nil {
			panic(err)
		}
		for r := range s.Stream(context.Background(), epoch, ph.until-epoch) {
			if r.Epoch%20 == 0 {
				truth := s.ExactAnswer(r.Epoch)
				rel := math.Abs(r.Answer-truth) / truth
				bar := strings.Repeat("#", r.DeltaSize/10)
				fmt.Printf("%5d  %-20s  %6.3f  %5d  %5d/%d %s\n",
					r.Epoch, ph.name, rel, r.DeltaSize, r.TrueContrib, s.Sensors(), bar)
			}
		}
		epoch = ph.until
		s.Close()
	}
	fmt.Println("\nWatch the delta bar: it grows into failures and retreats afterwards.")
}
