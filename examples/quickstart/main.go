// Quickstart: count the sensors of a lossy 600-node field with all four
// aggregation schemes and watch Tributary-Delta combine tree exactness with
// multi-path robustness — using the Query API: a query descriptor, options
// and Open.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	td "tributarydelta"
)

func main() {
	const seed = 42
	dep := td.NewSyntheticDeployment(seed, 600)
	dep.SetGlobalLoss(0.15) // 15% message loss on every link

	fmt.Printf("deployment: %d sensors, domination factor %.2f\n\n",
		dep.Sensors(), dep.DominationFactor())
	fmt.Println("scheme      answer   contributing  delta size   (truth =", dep.Sensors(), "sensors)")

	for _, scheme := range []td.Scheme{td.SchemeTAG, td.SchemeSD, td.SchemeTDCoarse, td.SchemeTD} {
		s, err := td.Open(dep, td.Count(), td.WithScheme(scheme), td.WithSeed(seed))
		if err != nil {
			panic(err)
		}
		// Let adaptive schemes settle, then average a few rounds.
		s.Run(0, 250)
		var answer, contrib float64
		const rounds = 20
		for _, r := range s.Run(250, rounds) {
			answer += r.Answer
			contrib += float64(r.TrueContrib)
		}
		fmt.Printf("%-10s  %7.1f  %8.1f      %5d\n",
			scheme, answer/rounds, contrib/rounds, s.DeltaSize())
		s.Close()
	}

	fmt.Println("\nTAG undercounts badly (every lost message drops a subtree);")
	fmt.Println("SD accounts for nearly everything but carries ~12% sketch error;")
	fmt.Println("the TD schemes adapt the delta region to sit at the best of both.")
}
