package tributarydelta

import (
	"math"
	"testing"
)

func TestMinMaxSessions(t *testing.T) {
	dep := NewSyntheticDeployment(11, 150)
	value := func(_, node int) float64 { return float64(100 + node) }
	minS, err := NewMinSession(dep, SchemeSD, 11, value)
	if err != nil {
		t.Fatal(err)
	}
	maxS, err := NewMaxSession(dep, SchemeSD, 11, value)
	if err != nil {
		t.Fatal(err)
	}
	// Loss-free multi-path Min/Max are exact (§5: no approximation error).
	if got, want := minS.RunEpoch(0).Answer, minS.ExactAnswer(0); got != want {
		t.Fatalf("Min = %v, want %v", got, want)
	}
	if got, want := maxS.RunEpoch(0).Answer, maxS.ExactAnswer(0); got != want {
		t.Fatalf("Max = %v, want %v", got, want)
	}
}

func TestAverageSession(t *testing.T) {
	dep := NewSyntheticDeployment(12, 200)
	dep.SetGlobalLoss(0.1)
	s, err := NewAverageSession(dep, SchemeTD, 12, func(_, node int) float64 {
		return 40 + float64(node%21)
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const rounds = 15
	for e := 0; e < rounds; e++ {
		sum += s.RunEpoch(e).Answer
	}
	truth := s.ExactAnswer(0)
	if math.Abs(sum/rounds-truth)/truth > 0.3 {
		t.Fatalf("average %v too far from %v", sum/rounds, truth)
	}
}

func TestMomentsSession(t *testing.T) {
	dep := NewSyntheticDeployment(13, 150)
	s, err := NewMomentsSession(dep, SchemeTAG, 13, func(_, node int) float64 {
		return 10 + float64(node%7)
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunEpoch(0)
	want := s.ExactValue(0)
	if math.Abs(res.Value.Mean-want.Mean) > 1e-9 {
		t.Fatalf("loss-free tree moments mean %v, want exact %v", res.Value.Mean, want.Mean)
	}
	if math.Abs(res.Value.Variance-want.Variance) > 1e-6 {
		t.Fatalf("variance %v, want %v", res.Value.Variance, want.Variance)
	}
}

func TestSampleSession(t *testing.T) {
	dep := NewSyntheticDeployment(14, 150)
	dep.SetGlobalLoss(0.1)
	const k = 25
	s, err := NewSampleSession(dep, SchemeTD, 14, k, func(_, node int) float64 {
		return float64(node)
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunEpoch(0)
	if res.Sample.Len() != k {
		t.Fatalf("sample size %d, want %d", res.Sample.Len(), k)
	}
	seen := map[int]bool{}
	for _, it := range res.Sample.Items() {
		if seen[it.Node] {
			t.Fatal("node sampled twice")
		}
		seen[it.Node] = true
	}
	if _, err := NewSampleSession(dep, SchemeTD, 14, 0, nil); err == nil {
		t.Fatal("zero capacity must be rejected")
	}
}

func TestAllSessionsAcrossSchemes(t *testing.T) {
	// Every constructor must work under every scheme.
	dep := NewSyntheticDeployment(15, 120)
	dep.SetGlobalLoss(0.2)
	value := func(_, node int) float64 { return float64(node%9 + 1) }
	for _, scheme := range []Scheme{SchemeTAG, SchemeSD, SchemeTDCoarse, SchemeTD} {
		if _, err := NewMinSession(dep, scheme, 15, value); err != nil {
			t.Fatalf("Min %v: %v", scheme, err)
		}
		if _, err := NewMaxSession(dep, scheme, 15, value); err != nil {
			t.Fatalf("Max %v: %v", scheme, err)
		}
		if _, err := NewAverageSession(dep, scheme, 15, value); err != nil {
			t.Fatalf("Average %v: %v", scheme, err)
		}
		if _, err := NewMomentsSession(dep, scheme, 15, value); err != nil {
			t.Fatalf("Moments %v: %v", scheme, err)
		}
		if _, err := NewSampleSession(dep, scheme, 15, 10, value); err != nil {
			t.Fatalf("Sample %v: %v", scheme, err)
		}
	}
}
