package quantile

import (
	"math"
	"sort"
	"testing"

	"tributarydelta/internal/sample"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/xrand"
)

// buildAgg returns an agg over a tiny synthetic field's restricted tree.
func buildAgg(t *testing.T, seed uint64, k int, g Gradient) (*Agg, *topo.Tree) {
	t.Helper()
	gph := topo.NewRandomField(seed, 60, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
	r := topo.BuildRings(gph)
	tree := topo.BuildRestrictedTree(gph, r, seed)
	return NewAgg(tree, seed, k, 40, g), tree
}

func TestAggPartialCodecRoundTrip(t *testing.T) {
	a, _ := buildAgg(t, 1, 8, nil)
	p := a.Local(0, 3, 17.5)
	p = a.MergeTree(p, a.Local(0, 4, 2.25))
	p = a.MergeTree(p, a.Local(0, 5, 99))
	enc := a.AppendPartial(nil, p)
	got, err := a.DecodePartial(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sum.N != p.Sum.N || len(got.Sum.Entries) != len(p.Sum.Entries) {
		t.Fatalf("summary mismatch: %+v vs %+v", got.Sum, p.Sum)
	}
	for i := range got.Sum.Entries {
		if got.Sum.Entries[i] != p.Sum.Entries[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, got.Sum.Entries[i], p.Sum.Entries[i])
		}
	}
	if got.Smp.Len() != p.Smp.Len() {
		t.Fatalf("sample size %d vs %d", got.Smp.Len(), p.Smp.Len())
	}
	reEnc := a.AppendPartial(nil, got)
	if string(reEnc) != string(enc) {
		t.Fatal("re-encoding differs")
	}
	if _, err := a.DecodePartial(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated partial must fail to decode")
	}
}

func TestAggSynopsisCodecRoundTrip(t *testing.T) {
	a, _ := buildAgg(t, 2, 8, nil)
	s := a.Convert(0, 3, a.Local(0, 3, 5))
	s = a.Fuse(s, a.Convert(0, 4, a.Local(0, 4, 7)))
	enc := a.AppendSynopsis(nil, s)
	got, err := a.DecodeSynopsis(enc)
	if err != nil {
		t.Fatal(err)
	}
	reEnc := a.AppendSynopsis(nil, got)
	if string(reEnc) != string(enc) {
		t.Fatal("synopsis re-encoding differs")
	}
	if _, err := a.DecodeSynopsis(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated synopsis must fail to decode")
	}
}

// Fusing a replica of the same converted synopsis must not change the
// answer — the duplicate-insensitivity multi-path routing relies on.
func TestAggFuseIdempotent(t *testing.T) {
	a, _ := buildAgg(t, 3, 16, nil)
	p := a.Local(1, 7, 3.5)
	p = a.MergeTree(p, a.Local(1, 8, 4.5))
	s1 := a.Convert(1, 7, p)
	s2 := a.Convert(1, 7, p)
	fused := a.Fuse(a.Convert(1, 9, a.Local(1, 9, 10)), s1)
	once := a.AppendSynopsis(nil, fused)
	fused = a.Fuse(fused, s2)
	twice := a.AppendSynopsis(nil, fused)
	if string(once) != string(twice) {
		t.Fatal("fusing a duplicate synopsis changed the state")
	}
}

// A pure-tree evaluation with a gradient keeps every quantile within the
// gradient's total rank budget.
func TestAggTreeQuantileError(t *testing.T) {
	const eps = 0.05
	seed := uint64(4)
	gph := topo.NewRandomField(seed, 80, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
	rings := topo.BuildRings(gph)
	tree := topo.BuildRestrictedTree(gph, rings, seed)
	h := tree.Heights()[topo.Base]
	a := NewAgg(tree, seed, 8, 40, Uniform(eps, h))

	// Fold every in-tree node's reading up the tree, exactly as the runner
	// would without loss.
	n := len(tree.Parent)
	partials := make([]*Partial, n)
	var vals []float64
	src := xrand.NewSource(seed, 0xABC)
	reading := make([]float64, n)
	for v := 1; v < n; v++ {
		reading[v] = 100 + 10*src.NormFloat64()
	}
	for _, v := range tree.PostOrder() {
		if v == topo.Base || !tree.InTree(v) {
			continue
		}
		p := a.Local(0, v, reading[v])
		vals = append(vals, reading[v])
		for _, c := range tree.Children[v] {
			if partials[c] != nil {
				p = a.MergeTree(p, partials[c])
			}
		}
		partials[v] = a.FinalizeTree(0, v, p)
	}
	var tops []*Partial
	for _, c := range tree.Children[topo.Base] {
		if partials[c] != nil {
			tops = append(tops, partials[c])
		}
	}
	root := a.EvalBase(tops, nil)
	if root.N != int64(len(vals)) {
		t.Fatalf("root covers %d readings, want %d", root.N, len(vals))
	}
	if root.Eps > eps {
		t.Fatalf("accumulated eps %v exceeds budget %v", root.Eps, eps)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := root.Quantile(q)
		// The true rank of the answer must be within eps*N (plus entry
		// slack, bounded by the same budget) of the queried rank.
		r := int64(q*float64(root.N-1)) + 1
		lo, hi := exactRankRange(vals, got)
		slack := int64(math.Ceil(2 * eps * float64(root.N)))
		if hi < r-slack || lo > r+slack {
			t.Fatalf("q=%v: value %v has true rank [%d,%d], want within %d of %d",
				q, got, lo, hi, slack, r)
		}
	}
}

// exactRankRange returns the 1-based rank range value occupies in sorted.
func exactRankRange(sorted []float64, v float64) (lo, hi int64) {
	lo = int64(sort.SearchFloat64s(sorted, v)) + 1
	hi = int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > v }))
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func TestSampleSummary(t *testing.T) {
	// Partial sample: exact.
	s := sample.New(10)
	for i := 0; i < 5; i++ {
		s.Add(1, 0, i+1, float64(i))
	}
	sum := SampleSummary(s, 5)
	if sum.N != 5 || sum.Eps != 0 {
		t.Fatalf("partial sample summary N=%d eps=%v, want exact over 5", sum.N, sum.Eps)
	}

	// Full sample over a larger population: ranks scale to n.
	s = sample.New(10)
	for i := 0; i < 200; i++ {
		s.Add(1, 0, i+1, float64(i))
	}
	sum = SampleSummary(s, 200)
	if sum.N != 200 || len(sum.Entries) != 10 {
		t.Fatalf("full sample summary N=%d entries=%d", sum.N, len(sum.Entries))
	}
	if err := sum.Validate(); err != nil {
		t.Fatal(err)
	}
	if last := sum.Entries[len(sum.Entries)-1]; last.RMax != 200 {
		t.Fatalf("top sample entry rank %d, want 200", last.RMax)
	}

	// Empty.
	if sum := SampleSummary(sample.New(4), 0); sum.N != 0 {
		t.Fatal("empty sample must give empty summary")
	}
}
