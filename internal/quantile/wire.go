package quantile

import (
	"fmt"

	"tributarydelta/internal/wire"
)

// Wire codec. A summary travels as N, its accumulated error fraction, and
// the entries in value order. Rank bounds are monotone, so they are encoded
// as deltas: RMin against the previous entry's RMin, RMax against the
// entry's own RMin — small varints for realistic summaries.

// AppendWire appends the lossless wire encoding of the summary to dst.
func (s *Summary) AppendWire(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(s.N))
	dst = wire.AppendFloat64(dst, s.Eps)
	dst = wire.AppendUvarint(dst, uint64(len(s.Entries)))
	prevRMin := int64(0)
	for _, e := range s.Entries {
		dst = wire.AppendFloat64(dst, e.V)
		dst = wire.AppendVarint(dst, e.RMin-prevRMin)
		dst = wire.AppendUvarint(dst, uint64(e.RMax-e.RMin))
		prevRMin = e.RMin
	}
	return dst
}

// DecodeWireSummary parses a summary encoded by AppendWire.
func DecodeWireSummary(data []byte) (*Summary, error) {
	r := wire.NewReader(data)
	s, err := ReadWire(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadWire parses one summary from a reader positioned at its first byte —
// the form used when a summary is one field of a larger message (the
// Quantiles aggregate's tree partial). The reader is left positioned after
// the summary; callers compose further fields or Finish.
func ReadWire(r *wire.Reader) (*Summary, error) {
	s := &Summary{
		N:   int64(r.Uvarint()),
		Eps: r.Float64(),
	}
	n := r.Count(3) // value + two rank fields, >= 1 byte each
	if n > 0 {
		s.Entries = make([]Entry, n)
	}
	prevRMin := int64(0)
	prevV := 0.0
	for i := range s.Entries {
		v := r.Float64()
		rmin := prevRMin + r.Varint()
		rmax := rmin + int64(r.Uvarint())
		if r.Err() == nil && i > 0 && v < prevV { // canonical form is V-ascending
			return nil, fmt.Errorf("quantile: entries out of order: %w", wire.ErrMalformed)
		}
		s.Entries[i] = Entry{V: v, RMin: rmin, RMax: rmax}
		prevRMin = rmin
		prevV = v
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if s.N < 0 {
		return nil, fmt.Errorf("quantile: negative N: %w", wire.ErrMalformed)
	}
	return s, nil
}
