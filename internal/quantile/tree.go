package quantile

import (
	"math"

	"tributarydelta/internal/topo"
)

// Gradient supplies a per-height error tolerance ε(i); it mirrors
// freq.Gradient so the §6.1.4 precision-gradient extension applies to
// quantiles without an import cycle.
type Gradient interface {
	Eps(height int) float64
}

// uniformGradient is ε(i) = ε·i/h — the budget the Quantiles-based baseline
// of Figure 8 spends evenly per level.
type uniformGradient struct {
	eps float64
	h   int
}

func (g uniformGradient) Eps(i int) float64 {
	if i > g.h {
		i = g.h
	}
	return g.eps * float64(i) / float64(g.h)
}

// Uniform returns the even per-level gradient with total budget eps over a
// tree of height h.
func Uniform(eps float64, h int) Gradient { return uniformGradient{eps: eps, h: h} }

// TreeResult is the outcome of a lossless in-tree quantile computation.
type TreeResult struct {
	// Root is the summary delivered to the base station.
	Root *Summary
	// LoadWords[v] is the number of 32-bit words node v transmitted.
	LoadWords []int
}

// RunTree aggregates per-node value streams up the tree using merge&prune
// with the given precision gradient: a node of height i prunes its merged
// summary to k_i = ceil(1/(ε(i)−ε(i−1))) entries, so the total accumulated
// rank error at the root is at most ε(h) — the §6.1.4 construction. The
// returned loads feed the Figure 8 comparison.
func RunTree(t *topo.Tree, values func(node int) []float64, g Gradient) TreeResult {
	n := len(t.Parent)
	heights := t.Heights()
	summaries := make([]*Summary, n)
	loads := make([]int, n)
	for _, v := range t.PostOrder() {
		if !t.InTree(v) {
			continue
		}
		s := FromUnsorted(values(v))
		for _, c := range t.Children[v] {
			if summaries[c] != nil {
				s = Merge(s, summaries[c])
			}
		}
		if v != topo.Base {
			h := heights[v]
			delta := g.Eps(h) - g.Eps(h-1)
			if delta > 0 {
				k := int(math.Ceil(1 / delta))
				s.Prune(k)
			}
			loads[v] = s.Words()
		}
		summaries[v] = s
	}
	return TreeResult{Root: summaries[topo.Base], LoadWords: loads}
}
