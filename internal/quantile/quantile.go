// Package quantile implements mergeable ε-approximate quantile summaries in
// the Greenwald–Khanna tradition [8], the substrate for two pieces of the
// paper: the Quantiles-based frequent items baseline of Figure 8, and the
// §6.1.4 extension that drives quantile computation with the paper's
// precision gradients (budgeting prune error per tree height so the root
// meets a target ε with provable total communication).
//
// A Summary stores a sorted sequence of entries (value, rmin, rmax): rmin
// and rmax bound the rank of the value within everything the summary covers.
// Two operations preserve the bounds exactly:
//
//   - Merge: combines two summaries; rank bounds add (the classic mergeable
//     summaries construction).
//   - Prune(k): keeps ~k evenly rank-spaced entries, adding N/(2k) rank
//     error.
//
// The cumulative rank error is tracked in Eps (a fraction of N), so callers
// can verify the ε-approximation invariant: every query's true rank is
// within Eps·N of the answer's rank bounds.
package quantile

import (
	"fmt"
	"sort"

	"tributarydelta/internal/wire"
)

// Entry is one stored value with its rank bounds: the value's rank (1-based,
// over everything the summary covers) lies in [RMin, RMax].
type Entry struct {
	V          float64
	RMin, RMax int64
}

// Summary is a mergeable quantile summary. The zero value is an empty
// summary covering nothing.
type Summary struct {
	// Entries are sorted by V ascending.
	Entries []Entry
	// N is the number of observations covered.
	N int64
	// Eps is the accumulated rank-error fraction: any rank answer is off by
	// at most Eps·N.
	Eps float64
}

// FromSorted builds an exact summary (Eps 0) from sorted values.
func FromSorted(vals []float64) *Summary {
	s := &Summary{N: int64(len(vals))}
	s.Entries = make([]Entry, len(vals))
	for i, v := range vals {
		s.Entries[i] = Entry{V: v, RMin: int64(i + 1), RMax: int64(i + 1)}
	}
	return s
}

// FromUnsorted sorts a copy of vals and builds an exact summary.
func FromUnsorted(vals []float64) *Summary {
	cp := append([]float64(nil), vals...)
	sort.Float64s(cp)
	return FromSorted(cp)
}

// Clone returns a deep copy.
func (s *Summary) Clone() *Summary {
	return &Summary{Entries: append([]Entry(nil), s.Entries...), N: s.N, Eps: s.Eps}
}

// Size returns the number of stored entries.
func (s *Summary) Size() int { return len(s.Entries) }

// Words returns the message size in 32-bit words, measured from the actual
// wire encoding (see AppendWire) so the accounting can never drift from
// what is transmitted. The buffer is pre-sized (a capacity hint only, not
// accounting) to avoid growth reallocations.
func (s *Summary) Words() int {
	buf := make([]byte, 0, 16+16*len(s.Entries))
	return wire.Words(len(s.AppendWire(buf)))
}

// Merge combines two summaries into a new one covering both populations.
// Rank bounds follow the mergeable-summaries construction: an entry's rmin
// adds the rmin of its floor in the other summary; its rmax adds the rmax of
// the next entry above that floor (or the other summary's N if none).
// The error fractions combine by taking the max, weighted correctly:
// absolute error max(Eps1·N1 + Eps2·N2) stays ≤ max(Eps1,Eps2)·(N1+N2).
func Merge(a, b *Summary) *Summary {
	if a.N == 0 {
		return b.Clone()
	}
	if b.N == 0 {
		return a.Clone()
	}
	out := &Summary{N: a.N + b.N}
	// Weighted error: (Eps_a·N_a + Eps_b·N_b)/(N_a+N_b) ≤ max(Eps_a, Eps_b).
	out.Eps = (a.Eps*float64(a.N) + b.Eps*float64(b.N)) / float64(a.N+b.N)
	out.Entries = make([]Entry, 0, len(a.Entries)+len(b.Entries))
	merge := func(self, other *Summary) {
		for _, e := range self.Entries {
			// floor: the largest entry of other with V < e.V (strictly), and
			// the successor entry.
			idx := sort.Search(len(other.Entries), func(i int) bool {
				return other.Entries[i].V >= e.V
			})
			var rminAdd, rmaxAdd int64
			if idx > 0 {
				rminAdd = other.Entries[idx-1].RMin
			}
			if idx < len(other.Entries) {
				rmaxAdd = other.Entries[idx].RMax - 1
			} else {
				rmaxAdd = other.N
			}
			out.Entries = append(out.Entries, Entry{
				V:    e.V,
				RMin: e.RMin + rminAdd,
				RMax: e.RMax + rmaxAdd,
			})
		}
	}
	merge(a, b)
	merge(b, a)
	sort.Slice(out.Entries, func(i, j int) bool {
		if out.Entries[i].V != out.Entries[j].V {
			return out.Entries[i].V < out.Entries[j].V
		}
		return out.Entries[i].RMin < out.Entries[j].RMin
	})
	return out
}

// Prune reduces the summary to at most k+1 entries by keeping entries
// closest to the ranks i·N/k, i = 0..k. It adds N/(2k) rank error, which is
// recorded in Eps. k must be positive.
func (s *Summary) Prune(k int) {
	if k <= 0 {
		panic("quantile: Prune with non-positive k")
	}
	if len(s.Entries) <= k+1 {
		return
	}
	kept := make([]Entry, 0, k+1)
	for i := 0; i <= k; i++ {
		target := int64(float64(i) * float64(s.N) / float64(k))
		if target < 1 {
			target = 1
		}
		e := s.lookupRank(target)
		if len(kept) == 0 || kept[len(kept)-1] != e {
			kept = append(kept, e)
		}
	}
	s.Entries = kept
	s.Eps += 1 / float64(2*k)
}

// lookupRank returns the entry whose rank interval is closest to covering r.
func (s *Summary) lookupRank(r int64) Entry {
	best := s.Entries[0]
	bestDist := rankDist(best, r)
	for _, e := range s.Entries[1:] {
		if d := rankDist(e, r); d < bestDist {
			best, bestDist = e, d
		}
	}
	return best
}

func rankDist(e Entry, r int64) int64 {
	mid := (e.RMin + e.RMax) / 2
	if mid > r {
		return mid - r
	}
	return r - mid
}

// Query returns the value whose rank is approximately r (1-based). The true
// rank of the returned value is within Eps·N (plus the entry's own slack) of
// r.
func (s *Summary) Query(r int64) float64 {
	if len(s.Entries) == 0 {
		return 0
	}
	if r < 1 {
		r = 1
	}
	if r > s.N {
		r = s.N
	}
	return s.lookupRank(r).V
}

// Quantile returns the value at quantile q in [0, 1].
func (s *Summary) Quantile(q float64) float64 {
	return s.Query(int64(q*float64(s.N-1)) + 1)
}

// RankBounds returns lower and upper bounds on the rank of value v: the
// number of covered observations ≤ v is in [lo, hi].
func (s *Summary) RankBounds(v float64) (lo, hi int64) {
	idx := sort.Search(len(s.Entries), func(i int) bool { return s.Entries[i].V > v })
	// All entries below idx have V <= v.
	if idx > 0 {
		lo = s.Entries[idx-1].RMin
	}
	if idx < len(s.Entries) {
		hi = s.Entries[idx].RMax - 1
	} else {
		hi = s.N
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// CountEstimate estimates the number of occurrences of the exact value v
// (the frequent items derivation the Figure 8 baseline uses: rank range of v
// minus rank range just below v).
func (s *Summary) CountEstimate(v float64) float64 {
	loAt, hiAt := s.RankBounds(v)
	// Rank bounds just below v: count of observations < v.
	idx := sort.Search(len(s.Entries), func(i int) bool { return s.Entries[i].V >= v })
	var loBelow, hiBelow int64
	if idx > 0 {
		loBelow = s.Entries[idx-1].RMin
	}
	if idx < len(s.Entries) {
		hiBelow = s.Entries[idx].RMax - 1
	} else {
		hiBelow = s.N
	}
	if hiBelow < loBelow {
		hiBelow = loBelow
	}
	// Midpoint difference is the natural point estimate.
	est := float64(loAt+hiAt)/2 - float64(loBelow+hiBelow)/2
	if est < 0 {
		est = 0
	}
	return est
}

// Validate checks internal consistency: sortedness, bound sanity and the
// rank-coverage property. It returns the first violation.
func (s *Summary) Validate() error {
	for i, e := range s.Entries {
		if e.RMin < 1 || e.RMax > s.N || e.RMin > e.RMax {
			return fmt.Errorf("quantile: entry %d has bad rank bounds [%d,%d] (N=%d)", i, e.RMin, e.RMax, s.N)
		}
		if i > 0 && s.Entries[i-1].V > e.V {
			return fmt.Errorf("quantile: entries out of order at %d", i)
		}
	}
	return nil
}
