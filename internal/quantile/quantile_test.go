package quantile

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"tributarydelta/internal/topo"
	"tributarydelta/internal/xrand"
)

func TestFromSortedExact(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := FromSorted(vals)
	if s.N != 10 || s.Eps != 0 {
		t.Fatalf("N=%d Eps=%v", s.N, s.Eps)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for r := int64(1); r <= 10; r++ {
		if got := s.Query(r); got != float64(r) {
			t.Fatalf("Query(%d) = %v, want %v", r, got, r)
		}
	}
}

func TestQueryClamps(t *testing.T) {
	s := FromSorted([]float64{5, 6, 7})
	if s.Query(-5) != 5 || s.Query(100) != 7 {
		t.Fatal("Query must clamp out-of-range ranks")
	}
	empty := &Summary{}
	if empty.Query(1) != 0 {
		t.Fatal("empty summary should answer 0")
	}
}

func TestMergeExactSummaries(t *testing.T) {
	a := FromSorted([]float64{1, 3, 5, 7})
	b := FromSorted([]float64{2, 4, 6, 8})
	m := Merge(a, b)
	if m.N != 8 {
		t.Fatalf("merged N = %d", m.N)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Exact merge of exact summaries answers every rank exactly.
	for r := int64(1); r <= 8; r++ {
		if got := m.Query(r); got != float64(r) {
			t.Fatalf("Query(%d) = %v, want %v", r, got, r)
		}
	}
}

func TestMergeWithEmpty(t *testing.T) {
	a := FromSorted([]float64{1, 2})
	empty := &Summary{}
	if m := Merge(a, empty); m.N != 2 || m.Size() != 2 {
		t.Fatal("merge with empty must clone the non-empty side")
	}
	if m := Merge(empty, a); m.N != 2 {
		t.Fatal("merge with empty (reversed) failed")
	}
}

func TestPruneAddsBoundedError(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := FromSorted(vals)
	s.Prune(20)
	if s.Size() > 21 {
		t.Fatalf("pruned size %d > k+1", s.Size())
	}
	if math.Abs(s.Eps-1.0/40) > 1e-12 {
		t.Fatalf("prune error %v, want 1/40", s.Eps)
	}
	// Every rank query must be within Eps*N + entry slack of truth.
	for r := int64(1); r <= 1000; r += 37 {
		got := s.Query(r)
		trueRank := got + 1 // value i has rank i+1
		if math.Abs(trueRank-float64(r)) > float64(s.N)*s.Eps+float64(s.N)/40+1 {
			t.Fatalf("rank %d answered value with rank %v", r, trueRank)
		}
	}
}

func TestPrunePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSorted([]float64{1}).Prune(0)
}

// TestMergePruneEpsInvariant is the core property: after arbitrary
// merge/prune sequences, every rank query is within Eps·N of truth.
func TestMergePruneEpsInvariant(t *testing.T) {
	src := xrand.NewSource(42)
	for trial := 0; trial < 30; trial++ {
		// Build 8 random chunks, summarize with random prunes, merge all.
		var all []float64
		parts := make([]*Summary, 0, 8)
		for c := 0; c < 8; c++ {
			n := 50 + src.Intn(200)
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = src.Float64() * 1000
			}
			all = append(all, vals...)
			s := FromUnsorted(vals)
			if src.Intn(2) == 0 {
				s.Prune(10 + src.Intn(20))
			}
			parts = append(parts, s)
		}
		m := parts[0]
		for _, p := range parts[1:] {
			m = Merge(m, p)
			if src.Intn(3) == 0 {
				m.Prune(30 + src.Intn(30))
			}
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		sort.Float64s(all)
		slack := m.Eps*float64(m.N) + 2
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			r := int64(q*float64(m.N-1)) + 1
			got := m.Quantile(q)
			// True rank range of got in all.
			lo := sort.SearchFloat64s(all, got)
			hi := sort.Search(len(all), func(i int) bool { return all[i] > got })
			trueLo, trueHi := float64(lo+1), float64(hi)
			if float64(r) < trueLo-slack || float64(r) > trueHi+slack {
				t.Fatalf("trial %d q=%v: answer rank range [%v,%v], asked %d, slack %v (Eps=%v N=%d)",
					trial, q, trueLo, trueHi, r, slack, m.Eps, m.N)
			}
		}
	}
}

func TestRankBounds(t *testing.T) {
	s := FromSorted([]float64{1, 2, 2, 2, 3, 4})
	lo, hi := s.RankBounds(2)
	if lo > 4 || hi < 4 {
		t.Fatalf("RankBounds(2) = [%d,%d], must cover 4", lo, hi)
	}
	lo, hi = s.RankBounds(0.5)
	if lo != 0 || hi > 1 {
		t.Fatalf("RankBounds below min = [%d,%d]", lo, hi)
	}
	lo, hi = s.RankBounds(99)
	if lo != 6 || hi != 6 {
		t.Fatalf("RankBounds above max = [%d,%d], want [6,6]", lo, hi)
	}
}

func TestCountEstimateExact(t *testing.T) {
	// 30% of values are 7.
	var vals []float64
	for i := 0; i < 100; i++ {
		if i < 30 {
			vals = append(vals, 7)
		} else {
			vals = append(vals, float64(100+i))
		}
	}
	s := FromUnsorted(vals)
	if got := s.CountEstimate(7); math.Abs(got-30) > 0.5 {
		t.Fatalf("CountEstimate(7) = %v, want 30", got)
	}
	if got := s.CountEstimate(55.5); got != 0 {
		t.Fatalf("CountEstimate(absent) = %v, want 0", got)
	}
}

func TestCountEstimateAfterPrune(t *testing.T) {
	var vals []float64
	for i := 0; i < 1000; i++ {
		if i < 300 {
			vals = append(vals, 7)
		} else {
			vals = append(vals, float64(1000+i))
		}
	}
	s := FromUnsorted(vals)
	s.Prune(50)
	got := s.CountEstimate(7)
	slack := s.Eps*float64(s.N) + float64(s.N)/50
	if math.Abs(got-300) > slack+1 {
		t.Fatalf("CountEstimate(7) = %v after prune, want 300±%v", got, slack)
	}
}

func TestMergeCommutative(t *testing.T) {
	err := quick.Check(func(aRaw, bRaw []uint16) bool {
		if len(aRaw) == 0 || len(bRaw) == 0 {
			return true
		}
		av := make([]float64, len(aRaw))
		for i, x := range aRaw {
			av[i] = float64(x)
		}
		bv := make([]float64, len(bRaw))
		for i, x := range bRaw {
			bv[i] = float64(x)
		}
		ab := Merge(FromUnsorted(av), FromUnsorted(bv))
		ba := Merge(FromUnsorted(bv), FromUnsorted(av))
		if ab.N != ba.N || ab.Size() != ba.Size() {
			return false
		}
		for _, q := range []float64{0, 0.5, 1} {
			if ab.Quantile(q) != ba.Quantile(q) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTreeAccuracy(t *testing.T) {
	g := topo.NewRandomField(3, 100, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
	r := topo.BuildRings(g)
	tr := topo.BuildRestrictedTree(g, r, 3)
	src := xrand.NewSource(7)
	perNode := make(map[int][]float64)
	var all []float64
	for v := 1; v < g.N(); v++ {
		if !tr.InTree(v) {
			continue
		}
		n := 20 + src.Intn(30)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = src.Float64() * 100
		}
		perNode[v] = vals
		all = append(all, vals...)
	}
	const eps = 0.05
	heights := tr.Heights()
	res := RunTree(tr, func(node int) []float64 { return perNode[node] }, Uniform(eps, heights[topo.Base]))
	if res.Root.N != int64(len(all)) {
		t.Fatalf("root covers %d, want %d", res.Root.N, len(all))
	}
	if res.Root.Eps > eps+1e-9 {
		t.Fatalf("root error %v exceeds budget %v", res.Root.Eps, eps)
	}
	sort.Float64s(all)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		got := res.Root.Quantile(q)
		r := int64(q*float64(len(all)-1)) + 1
		lo := sort.SearchFloat64s(all, got)
		hi := sort.Search(len(all), func(i int) bool { return all[i] > got })
		slack := eps*float64(len(all)) + 2
		if float64(r) < float64(lo+1)-slack || float64(r) > float64(hi)+slack {
			t.Fatalf("q=%v: answer rank [%d,%d], asked %d (±%v)", q, lo+1, hi, r, slack)
		}
	}
	// Loads: every non-base tree node transmitted something.
	for v := 1; v < g.N(); v++ {
		if tr.InTree(v) && res.LoadWords[v] == 0 {
			t.Fatalf("node %d transmitted nothing", v)
		}
	}
}

func TestValidateCatchesBadEntries(t *testing.T) {
	s := &Summary{N: 5, Entries: []Entry{{V: 1, RMin: 0, RMax: 2}}}
	if s.Validate() == nil {
		t.Fatal("RMin < 1 must fail validation")
	}
	s = &Summary{N: 5, Entries: []Entry{{V: 2, RMin: 1, RMax: 1}, {V: 1, RMin: 2, RMax: 2}}}
	if s.Validate() == nil {
		t.Fatal("out-of-order entries must fail validation")
	}
}
