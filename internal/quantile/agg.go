package quantile

import (
	"math"
	"sort"

	"tributarydelta/internal/sample"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/wire"
	"tributarydelta/internal/xrand"
)

// This file implements the aggregate.Aggregate contract for quantiles,
// combining the two quantile substrates the paper names: in the tributaries
// the mergeable ε-approximate summaries of this package, driven by a §6.1.4
// precision gradient; in the delta the duplicate-insensitive bottom-k
// uniform sample of §5 (the paper's route to multi-path quantiles), paired
// with an FM sketch that estimates how many readings the sample represents.
// At the tributary/delta boundary a subtree's summary cannot be converted
// into sample items (identities are gone), so the tree partial carries the
// subtree's bottom-k sample alongside its summary and conversion extracts
// it — deterministic in (epoch, owner), hence idempotent under multi-path
// replication.

// Partial is the tree-side partial result: the subtree's mergeable summary
// plus its bottom-k sample, kept in lock-step so the boundary conversion has
// a duplicate-insensitive form to hand to the delta.
type Partial struct {
	// Sum is the subtree's rank summary (pruned per the precision gradient).
	Sum *Summary
	// Smp is the subtree's bottom-k sample of the same readings.
	Smp *sample.Sample
}

// Synopsis is the delta-side synopsis: the fused bottom-k sample and an FM
// count sketch estimating the number of readings the delta covers (the
// population size the sample's order statistics are scaled by).
type Synopsis struct {
	// Smp is the duplicate-insensitive bottom-k sample.
	Smp *sample.Sample
	// Cnt estimates the number of readings represented in Smp's population.
	Cnt *sketch.Sketch
}

// Agg is the Tributary-Delta quantiles aggregate. Construct with NewAgg.
// It implements aggregate.Aggregate[float64, *Partial, *Synopsis, *Summary]:
// one reading per node per epoch, answered by a merged rank summary at the
// base station.
type Agg struct {
	// Seed drives the sample's rank hashes and the count sketch.
	Seed uint64
	// K is the bottom-k sample capacity (delta-side accuracy knob).
	K int
	// CountK is the FM bitmap count of the delta population sketch.
	CountK int
	// Gradient budgets tree-side prune error per node height; nil keeps
	// tree summaries exact (no pruning).
	Gradient Gradient
	// ReseedEvery is the hash reseeding period in epochs, matching the
	// simple aggregates: within a period the count-sketch seed and the
	// sample rank realization are fixed — what makes boundary conversions
	// memoizable across epochs — and between periods both re-draw so
	// multi-epoch answers de-correlate. 0 never reseeds.
	ReseedEvery int
	// heights indexes the precision gradient per node.
	heights []int

	// scratchSmp/scratchCnt/scratchCnts are the EvalBase delta-merge
	// accumulators, reused epoch to epoch (EvalBase runs on the dispatch
	// goroutine only).
	scratchSmp  *sample.Sample
	scratchCnt  *sketch.Sketch
	scratchCnts []*sketch.Sketch
}

// NewAgg assembles the quantiles aggregate over a concrete tree (heights
// drive the gradient). k is the bottom-k sample capacity and countK the FM
// bitmap count of the delta population sketch; g may be nil for exact
// (unpruned) tree summaries. The hash reseeding period defaults to 10
// epochs, like the simple aggregates.
func NewAgg(tree *topo.Tree, seed uint64, k, countK int, g Gradient) *Agg {
	return &Agg{Seed: seed, K: k, CountK: countK, Gradient: g, ReseedEvery: 10,
		heights: tree.Heights()}
}

// epochKey identifies the hash-reseeding window epoch falls in; the count
// seed and the sample rank epoch both hash the key, never the raw epoch.
func (a *Agg) epochKey(epoch int) uint64 {
	if a.ReseedEvery <= 0 {
		return 0
	}
	return uint64(epoch / a.ReseedEvery)
}

// countSeed namespaces the delta population sketch per reseeding window.
func (a *Agg) countSeed(epoch int) uint64 {
	return xrand.Hash(a.Seed, 0x51AA, a.epochKey(epoch))
}

// rankEpoch is the epoch identity fed to the bottom-k sample's rank hash: the
// reseeding window, not the raw epoch, so a node's rank holds still within a
// window (Local depends on the epoch only through the key — the memoizer
// contract) and re-draws at rollover. Duplicate insensitivity needs only
// within-epoch identity, which the node id provides.
func (a *Agg) rankEpoch(epoch int) int { return int(a.epochKey(epoch)) }

// Name implements aggregate.Aggregate.
func (a *Agg) Name() string { return "Quantiles" }

// Local implements aggregate.Aggregate: a one-reading summary plus the
// reading's sample entry.
func (a *Agg) Local(epoch, node int, v float64) *Partial {
	smp := sample.New(a.K)
	smp.Add(a.Seed, a.rankEpoch(epoch), node, v)
	return &Partial{Sum: FromSorted([]float64{v}), Smp: smp}
}

// MergeTree implements aggregate.Aggregate: summaries merge by the
// mergeable-summaries construction, samples by bottom-k union.
func (a *Agg) MergeTree(acc, in *Partial) *Partial {
	acc.Sum = Merge(acc.Sum, in.Sum)
	acc.Smp.Merge(in.Smp)
	return acc
}

// FinalizeTree implements aggregate.Aggregate: the §6.1.4 prune at the
// node's height, spending the gradient's per-level budget exactly once per
// node after all children are folded.
func (a *Agg) FinalizeTree(_, node int, p *Partial) *Partial {
	if a.Gradient == nil {
		return p
	}
	h := a.heights[node]
	delta := a.Gradient.Eps(h) - a.Gradient.Eps(h-1)
	if delta > 0 {
		p.Sum.Prune(int(math.Ceil(1 / delta)))
	}
	return p
}

// AppendPartial implements aggregate.Aggregate.
func (a *Agg) AppendPartial(dst []byte, p *Partial) []byte {
	dst = p.Sum.AppendWire(dst)
	return p.Smp.AppendWire(dst)
}

// DecodePartial implements aggregate.Aggregate.
func (a *Agg) DecodePartial(data []byte) (*Partial, error) {
	r := wire.NewReader(data)
	sum, err := ReadWire(r)
	if err != nil {
		return nil, err
	}
	smp, err := sample.ReadWire(r, a.K)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &Partial{Sum: sum, Smp: smp}, nil
}

// Convert implements aggregate.Aggregate: the boundary conversion hands the
// subtree's bottom-k sample to the delta and registers the subtree's exact
// reading count (p.Sum.N) in the population sketch under the unique tree
// sender's identity — a pure function of (epoch, owner, p), so multi-path
// replication fuses idempotently.
func (a *Agg) Convert(epoch, owner int, p *Partial) *Synopsis {
	cnt := sketch.New(a.CountK)
	cnt.AddCount(a.countSeed(epoch), uint64(owner), p.Sum.N)
	return &Synopsis{Smp: p.Smp.Clone(), Cnt: cnt}
}

// Fuse implements aggregate.Aggregate.
func (a *Agg) Fuse(acc, in *Synopsis) *Synopsis {
	acc.Smp.Merge(in.Smp)
	acc.Cnt.Union(in.Cnt)
	return acc
}

// NewSynopsis implements aggregate.SynopsisRecycler.
func (a *Agg) NewSynopsis() *Synopsis {
	return &Synopsis{Smp: sample.New(a.K), Cnt: sketch.New(a.CountK)}
}

// ConvertInto implements aggregate.SynopsisRecycler: Convert into a recycled
// synopsis.
func (a *Agg) ConvertInto(epoch, owner int, p *Partial, dst *Synopsis) *Synopsis {
	dst.Smp.CopyFrom(p.Smp)
	dst.Cnt.Reset()
	dst.Cnt.AddCount(a.countSeed(epoch), uint64(owner), p.Sum.N)
	return dst
}

// DecodeSynopsisInto implements aggregate.SynopsisRecycler.
func (a *Agg) DecodeSynopsisInto(data []byte, dst *Synopsis) (*Synopsis, error) {
	r := wire.NewReader(data)
	if err := sample.ReadWireInto(r, dst.Smp); err != nil {
		return nil, err
	}
	if d := r.Take(sketch.WireBytes(a.CountK)); d != nil {
		_ = dst.Cnt.LoadWire(d) // length is exact by construction
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return dst, nil
}

// SynopsisEpochKey implements aggregate.SynopsisMemoizer: the reseeding
// window shared by the count seed and the sample rank realization. Within a
// window ConvertInto is a pure function of (owner, partial), so the epoch
// engine may cache converted boundary partials and reuse whole frames.
func (a *Agg) SynopsisEpochKey(epoch int) uint64 { return a.epochKey(epoch) }

// PartialEqual implements aggregate.SynopsisMemoizer: conversion extracts
// the bottom-k sample verbatim and registers Sum.N in the population sketch
// — the summary's entries and error bound never reach the synopsis — so two
// partials convert identically exactly when those agree.
func (a *Agg) PartialEqual(x, y *Partial) bool {
	if x == nil || y == nil {
		return x == y
	}
	if x.Sum.N != y.Sum.N {
		return false
	}
	xi, yi := x.Smp.Items(), y.Smp.Items()
	if len(xi) != len(yi) {
		return false
	}
	for i := range xi {
		if xi[i] != yi[i] {
			return false
		}
	}
	return true
}

// CopySynopsisInto implements aggregate.SynopsisMemoizer.
func (a *Agg) CopySynopsisInto(dst, src *Synopsis) *Synopsis {
	dst.Smp.CopyFrom(src.Smp)
	dst.Cnt.CopyFrom(src.Cnt)
	return dst
}

// AppendSynopsis implements aggregate.Aggregate.
func (a *Agg) AppendSynopsis(dst []byte, s *Synopsis) []byte {
	dst = s.Smp.AppendWire(dst)
	return s.Cnt.AppendWire(dst)
}

// DecodeSynopsis implements aggregate.Aggregate.
func (a *Agg) DecodeSynopsis(data []byte) (*Synopsis, error) {
	r := wire.NewReader(data)
	smp, err := sample.ReadWire(r, a.K)
	if err != nil {
		return nil, err
	}
	cnt := sketch.ReadWire(r, a.CountK)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &Synopsis{Smp: smp, Cnt: cnt}, nil
}

// EvalBase implements aggregate.Aggregate: directly received tree summaries
// merge exactly; the delta's fused sample becomes a summary scaled to the
// sketch-estimated delta population; the two merge into the answer.
func (a *Agg) EvalBase(treeParts []*Partial, syns []*Synopsis) *Summary {
	var root *Summary
	for _, p := range treeParts {
		if root == nil {
			root = p.Sum.Clone()
		} else {
			root = Merge(root, p.Sum)
		}
	}
	if len(syns) > 0 {
		// Samples must fold pairwise (bottom-k truncation), but the
		// population sketches compose under plain OR: gather them and run one
		// fused word-major union instead of a per-synopsis Union loop.
		if a.scratchSmp == nil {
			a.scratchSmp = sample.New(a.K)
			a.scratchCnt = sketch.New(a.CountK)
		}
		smp, cnt := a.scratchSmp, a.scratchCnt
		smp.CopyFrom(syns[0].Smp)
		a.scratchCnts = a.scratchCnts[:0]
		for _, s := range syns {
			a.scratchCnts = append(a.scratchCnts, s.Cnt)
		}
		for _, s := range syns[1:] {
			smp.Merge(s.Smp)
		}
		sketch.UnionAllInto(cnt, a.scratchCnts...)
		if ds := SampleSummary(smp, int64(math.Round(cnt.Estimate()))); ds.N > 0 {
			if root == nil {
				root = ds
			} else {
				root = Merge(root, ds)
			}
		}
	}
	if root == nil {
		return &Summary{}
	}
	return root
}

// Exact implements aggregate.Aggregate.
func (a *Agg) Exact(vs []float64) *Summary { return FromUnsorted(vs) }

// SampleSummary builds a rank summary from a bottom-k sample of a population
// of approximately n readings. When the sample is not full it holds every
// reading it ever saw, so the summary is exact over them; otherwise each
// sorted sample value is placed at its scaled order-statistic rank, and Eps
// records the sampling noise (the ~1/(2√k) standard deviation of a bottom-k
// rank estimate — a noise scale, not a hard bound like a prune's).
func SampleSummary(s *sample.Sample, n int64) *Summary {
	m := s.Len()
	if m == 0 || n <= 0 {
		return &Summary{}
	}
	vals := s.Values()
	sort.Float64s(vals)
	if m < s.K() {
		// Partial sample: it saw the whole population, exactly.
		return FromSorted(vals)
	}
	if n < int64(m) {
		n = int64(m)
	}
	out := &Summary{N: n, Eps: 1 / (2 * math.Sqrt(float64(m)))}
	out.Entries = make([]Entry, m)
	prev := int64(0)
	for i, v := range vals {
		r := int64(math.Round(float64(i+1) / float64(m) * float64(n)))
		if r < 1 {
			r = 1
		}
		if r > n {
			r = n
		}
		if r < prev {
			r = prev
		}
		out.Entries[i] = Entry{V: v, RMin: r, RMax: r}
		prev = r
	}
	return out
}
