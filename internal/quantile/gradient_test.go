package quantile

import (
	"sort"
	"testing"

	"tributarydelta/internal/freq"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/xrand"
)

// TestFreqGradientsDriveQuantiles verifies the §6.1.4 claim directly: the
// paper's precision gradients (defined for frequent items) plug into the
// quantile tree unchanged, and the root still meets the ε budget — "they
// are the first quantiles algorithms that achieve these bounds".
func TestFreqGradientsDriveQuantiles(t *testing.T) {
	g := topo.NewRandomField(8, 150, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
	r := topo.BuildRings(g)
	tr := topo.BuildRestrictedTree(g, r, 8)
	topo.OpportunisticImprove(g, r, tr, 8, 6)
	h := tr.Heights()[topo.Base]
	d := topo.TreeDominationFactor(tr, 0.05)
	if d < 1.2 {
		d = 1.2
	}

	src := xrand.NewSource(21)
	perNode := make(map[int][]float64)
	var all []float64
	for v := 1; v < g.N(); v++ {
		if !tr.InTree(v) {
			continue
		}
		vals := make([]float64, 40)
		for i := range vals {
			vals[i] = src.Float64() * 500
		}
		perNode[v] = vals
		all = append(all, vals...)
	}
	sort.Float64s(all)

	const eps = 0.02
	// freq.Gradient implements quantile.Gradient structurally.
	grads := []Gradient{
		freq.MinTotalLoad{Epsilon: eps, D: d},
		freq.MinMaxLoad{Epsilon: eps, H: h},
		freq.Hybrid{Epsilon: eps, D: d, H: h},
		Uniform(eps, h),
	}
	var totals []int
	for _, grad := range grads {
		res := RunTree(tr, func(v int) []float64 { return perNode[v] }, grad)
		if res.Root.Eps > eps+1e-9 {
			t.Fatalf("gradient %T: root error %v exceeds budget %v", grad, res.Root.Eps, eps)
		}
		for _, q := range []float64{0.25, 0.5, 0.75} {
			got := res.Root.Quantile(q)
			rank := int64(q*float64(len(all)-1)) + 1
			lo := sort.SearchFloat64s(all, got)
			hi := sort.Search(len(all), func(i int) bool { return all[i] > got })
			slack := eps*float64(len(all)) + 2
			if float64(rank) < float64(lo+1)-slack || float64(rank) > float64(hi)+slack {
				t.Fatalf("gradient %T q=%v: rank out of budget", grad, q)
			}
		}
		total := 0
		for _, w := range res.LoadWords {
			total += w
		}
		totals = append(totals, total)
	}
	// All gradients should need the same order of magnitude; none may be
	// degenerate (zero load).
	for i, tot := range totals {
		if tot == 0 {
			t.Fatalf("gradient %d transmitted nothing", i)
		}
	}
}

// TestQuantileDerivedFrequentItems exercises the Figure 8 baseline path:
// frequent items from a quantile summary via CountEstimate.
func TestQuantileDerivedFrequentItems(t *testing.T) {
	// Stream where item 42 holds 20% and the rest is thin.
	var vals []float64
	for i := 0; i < 200; i++ {
		vals = append(vals, 42)
	}
	for i := 0; i < 800; i++ {
		vals = append(vals, float64(1000+i))
	}
	s := FromUnsorted(vals)
	s.Prune(200)
	n := float64(s.N)
	// Report values whose estimated count clears (s−ε)·N.
	const support, eps = 0.1, 0.01
	thresh := (support - eps) * n
	if got := s.CountEstimate(42); got <= thresh {
		t.Fatalf("heavy item estimate %v below reporting threshold %v", got, thresh)
	}
	if got := s.CountEstimate(1500); got > thresh {
		t.Fatalf("thin item estimate %v above threshold", got)
	}
}
