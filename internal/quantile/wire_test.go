package quantile

import (
	"testing"

	"tributarydelta/internal/wire"
	"tributarydelta/internal/xrand"
)

func testSummary(seed uint64, n, prune int) *Summary {
	src := xrand.NewSource(seed)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = src.Float64() * 1000
	}
	s := FromUnsorted(vals)
	if prune > 0 {
		s.Prune(prune)
	}
	return s
}

func TestWireRoundTrip(t *testing.T) {
	for _, s := range []*Summary{
		{},
		FromSorted([]float64{1, 2, 3}),
		testSummary(7, 500, 50),
		testSummary(8, 1000, 0),
	} {
		enc := s.AppendWire(nil)
		got, err := DecodeWireSummary(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != s.N || got.Eps != s.Eps || len(got.Entries) != len(s.Entries) {
			t.Fatalf("shape: %+v vs %+v", got, s)
		}
		for i := range s.Entries {
			if got.Entries[i] != s.Entries[i] {
				t.Fatalf("entry %d: %+v != %+v", i, got.Entries[i], s.Entries[i])
			}
		}
		if err := got.Validate(); s.Validate() == nil && err != nil {
			t.Fatalf("decoded summary invalid: %v", err)
		}
	}
}

func TestWordsDerivedFromEncoding(t *testing.T) {
	s := testSummary(9, 800, 100)
	if want := wire.Words(len(s.AppendWire(nil))); s.Words() != want {
		t.Fatalf("Words() = %d, want encoded length %d", s.Words(), want)
	}
	if s.Words() == 0 {
		t.Fatal("non-empty summary must cost words")
	}
}

func TestDecodeWireSummaryRejectsUnsortedEntries(t *testing.T) {
	// Hand-build a frame whose entries are out of V-order: the canonical
	// form is V-ascending, so this must be rejected, not silently accepted.
	buf := wire.AppendUvarint(nil, 2) // N
	buf = wire.AppendFloat64(buf, 0)  // Eps
	buf = wire.AppendUvarint(buf, 2)  // entries
	buf = wire.AppendFloat64(buf, 9)  // V0 = 9
	buf = wire.AppendVarint(buf, 1)   // RMin 1
	buf = wire.AppendUvarint(buf, 0)  // RMax = RMin
	buf = wire.AppendFloat64(buf, 3)  // V1 = 3 < V0
	buf = wire.AppendVarint(buf, 1)   // RMin 2
	buf = wire.AppendUvarint(buf, 0)  // RMax = RMin
	if _, err := DecodeWireSummary(buf); err == nil {
		t.Fatal("out-of-order entries accepted")
	}
}

func TestDecodeWireSummaryRejectsTruncation(t *testing.T) {
	enc := testSummary(10, 100, 20).AppendWire(nil)
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeWireSummary(enc[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if _, err := DecodeWireSummary(append(enc, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func FuzzDecodeWireSummary(f *testing.F) {
	f.Add(testSummary(11, 200, 30).AppendWire(nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeWireSummary(data) // must never panic
		if err != nil {
			return
		}
		// Whatever decodes must survive a re-encode/re-decode cycle intact.
		again, err := DecodeWireSummary(s.AppendWire(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.N != s.N || len(again.Entries) != len(s.Entries) {
			t.Fatal("cycle changed the summary")
		}
	})
}
