package transport_test

import (
	"strings"
	"testing"

	"tributarydelta/internal/network"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/transport"
	"tributarydelta/internal/wire"
)

// newDetUDP builds a deterministic 4-shard UDP transport over nw, failing the
// test on construction or on a sticky transport error at cleanup.
func newDetUDP(t *testing.T, nw *network.Net, stats *network.Stats) *transport.UDP {
	t.Helper()
	u, err := transport.NewUDP(nw, transport.UDPOptions{
		Deterministic: true, Shards: 4, Stats: stats,
	})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	t.Cleanup(func() {
		u.Close()
		if err := u.Err(); err != nil {
			t.Errorf("udp transport error: %v", err)
		}
	})
	return u
}

// TestUDPDeterministicMatchesSimulator is the UDP twin of
// TestDeterministicMatchesSimulator: with the seeded loss model deciding
// Deliver verdicts and the barrier enforcing exactly-once datagram arrival,
// the multi-process runtime must produce per-epoch results identical to the
// synchronous simulator and receive-side accounting identical to the chan
// backend — for seeds 1–3 across tree, multi-path and adaptive modes.
func TestUDPDeterministicMatchesSimulator(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		f := newFixture(seed, 250)
		for _, mode := range []runner.Mode{runner.ModeTree, runner.ModeMultipath, runner.ModeTD} {
			model := network.Global{P: 0.25}
			simNet := network.New(f.g, model, seed)
			chNet := network.New(f.g, model, seed)
			udpNet := network.New(f.g, model, seed)
			chStats := network.NewStats(f.g.N())
			udpStats := network.NewStats(f.g.N())
			ch := transport.New(chNet, transport.Options{Deterministic: true, Stats: chStats})
			u := newDetUDP(t, udpNet, udpStats)
			simR := countRunner(t, f, mode, simNet, seed, nil)
			chR := countRunner(t, f, mode, chNet, seed, ch)
			udpR := countRunner(t, f, mode, udpNet, seed, u)
			for e := 0; e < 20; e++ {
				sim, con, up := simR.RunEpoch(e), chR.RunEpoch(e), udpR.RunEpoch(e)
				if sim != up {
					t.Fatalf("seed %d %s epoch %d: simulator %+v, udp transport %+v", seed, mode, e, sim, up)
				}
				if con != up {
					t.Fatalf("seed %d %s epoch %d: chan %+v, udp %+v", seed, mode, e, con, up)
				}
			}
			if got, want := udpStats.TotalRxFrames(), chStats.TotalRxFrames(); got != want || got == 0 {
				t.Fatalf("seed %d %s: udp rx frames %d, chan rx frames %d", seed, mode, got, want)
			}
			for v := range udpStats.RxFrames {
				if udpStats.RxFrames[v] != chStats.RxFrames[v] || udpStats.RxBytes[v] != chStats.RxBytes[v] {
					t.Fatalf("seed %d %s node %d: udp rx %d frames/%d bytes, chan rx %d frames/%d bytes",
						seed, mode, v, udpStats.RxFrames[v], udpStats.RxBytes[v], chStats.RxFrames[v], chStats.RxBytes[v])
				}
			}
			if d := udpStats.TotalDuplicates(); d != 0 {
				t.Fatalf("seed %d %s: deterministic barrier let %d duplicates through", seed, mode, d)
			}
			if l := u.Lost(); l != 0 {
				t.Fatalf("seed %d %s: deterministic udp counted %d backend losses", seed, mode, l)
			}
			ch.Close()
			u.Close()
		}
	}
}

// TestUDPFreeRunningLossless drives the free-running barrier over a lossless
// model: Deliver is optimistic, losses are discovered (not predicted), so on
// an idle loopback the answers must match the simulator's lossless run and
// the barrier must find nothing missing and nothing duplicated.
func TestUDPFreeRunningLossless(t *testing.T) {
	seed := uint64(5)
	f := newFixture(seed, 60)
	simNet := network.New(f.g, network.Global{P: 0}, seed)
	udpNet := network.New(f.g, network.Global{P: 0}, seed)
	stats := network.NewStats(f.g.N())
	u, err := transport.NewUDP(udpNet, transport.UDPOptions{Shards: 3, Stats: stats})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer u.Close()
	simR := countRunner(t, f, runner.ModeTree, simNet, seed, nil)
	udpR := countRunner(t, f, runner.ModeTree, udpNet, seed, u)
	for e := 0; e < 10; e++ {
		sim, up := simR.RunEpoch(e), udpR.RunEpoch(e)
		if sim != up {
			t.Fatalf("epoch %d: simulator %+v, free-running udp %+v", e, sim, up)
		}
	}
	if err := u.Err(); err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if u.Lost() != 0 || stats.TotalLosses() != 0 {
		t.Fatalf("lossless loopback run lost %d datagrams (stats %d)", u.Lost(), stats.TotalLosses())
	}
	if u.Duplicates() != 0 || stats.TotalDuplicates() != 0 {
		t.Fatalf("lossless loopback run saw %d duplicates", u.Duplicates())
	}
	if stats.TotalRxFrames() == 0 {
		t.Fatal("no receive deltas reached stats")
	}
}

// TestUDPCloseIdempotent closes the fleet twice; the second close must be a
// no-op and the transport must stay error-free.
func TestUDPCloseIdempotent(t *testing.T) {
	f := newFixture(3, 40)
	nw := network.New(f.g, network.Global{P: 0}, 3)
	u, err := transport.NewUDP(nw, transport.UDPOptions{Shards: 2, Deterministic: true})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	u.BeginEpoch(0)
	if !u.Deliver(0, 0, 2, 1, treeFrame(0, 2)) {
		t.Fatal("lossless delivery refused")
	}
	u.EndEpoch(0)
	u.Close()
	u.Close()
	if err := u.Err(); err != nil {
		t.Fatalf("transport error after double close: %v", err)
	}
}

// TestUDPOversizeFrame pins the negotiated-size guard: a frame whose datagram
// image exceeds the per-shard limit must fail its delivery (so the runner
// accounts the loss) and set the sticky error instead of truncating or
// blowing up the socket.
func TestUDPOversizeFrame(t *testing.T) {
	f := newFixture(4, 40)
	nw := network.New(f.g, network.Global{P: 0}, 4)
	u, err := transport.NewUDP(nw, transport.UDPOptions{Shards: 2, MaxDatagram: 512})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer u.Close()
	big := wire.AppendEnvelope(nil, &wire.Envelope{
		Kind: wire.KindTree, Epoch: 1, From: 2, Contrib: 1, Payload: make([]byte, 1024),
	})
	u.BeginEpoch(1)
	if u.Deliver(1, 0, 2, 1, big) {
		t.Fatal("oversized frame reported delivered")
	}
	err = u.Err()
	if err == nil || !strings.Contains(err.Error(), "datagram size") {
		t.Fatalf("sticky error = %v, want negotiated-size failure", err)
	}
	// The transport stays usable for frames that fit.
	if !u.Deliver(1, 0, 2, 1, treeFrame(1, 2)) {
		t.Fatal("small frame refused after oversize error")
	}
	u.EndEpoch(1)
}
