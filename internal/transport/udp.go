package transport

// UDP is the third Transport backend: the node runtime leaves the process.
// Nodes are partitioned into shards (node v lives on shard v mod Shards),
// each shard is a separate OS process (or, with the default in-process
// spawner, a goroutine that still speaks real loopback sockets), and every
// delivery is a real UDP frame — the first configuration where packet
// loss, reordering and duplication are physical events rather than hash
// draws.
//
// Topology is a star: only the parent (the runner host) transmits, because
// the runner's Transport seam hands it every frame already routed — shards
// never talk to each other. The reliable control channel (one TCP loopback
// connection per shard) carries the join handshake, the epoch barrier and
// shutdown; the lossy data plane carries only datagrams.
//
// The data plane coalesces: all frames a round sends to one shard are
// packed into MTU-bounded batch datagrams (wire's 0xD8 framing), sealed the
// moment the next frame would not fit, and submitted to the socket in
// sendmmsg batches at the epoch barrier — a 600-node epoch costs a handful
// of syscalls instead of hundreds. Because a batch's frames carry
// consecutive sequence numbers, a lost datagram surfaces at the barrier as
// a contiguous missing *range*, and retransmission resends whole datagram
// images. NoBatching restores the PR 7 one-frame-per-datagram path — the
// A/B lever golden tests and tdbench compare against; answers are
// bit-identical either way.
//
// Two modes, exactly like Chan:
//
//   - Deterministic: the Deliver verdict comes from the seeded loss model
//     (the same hash as the simulator and Chan, so answers are pinned
//     bit-identical to the golden file), and every surviving frame is
//     delivered to its shard exactly once — the barrier retransmits any
//     datagram the loopback medium itself dropped, and the shard's
//     per-round dedup absorbs the replays, keeping the receive-side
//     accounting exact.
//   - Free-running: Deliver queues the frame and optimistically reports
//     true; the loss model is not consulted. What actually got lost is
//     discovered at the epoch barrier — each shard drains a quiet period,
//     reports the missing sequence ranges, and the parent attributes one
//     loss to each missing frame's sender (and one duplicate to each
//     replayed one), feeding the same network.Stats that the in-process
//     backends feed.
//
// The fleet is self-healing: a shard that fails its barrier is declared
// dead — that round's frames are attributed as losses — and handed to a
// supervisor goroutine, which reaps the old runtime, respawns a
// replacement with capped exponential backoff, re-runs the join/assign
// handshake mid-run, and rejoins the shard to the fleet at the next epoch
// boundary. Err stays nil across recovered faults; the Health snapshot
// records per-shard state, restart counts and epochs spent degraded.

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tributarydelta/internal/network"
	"tributarydelta/internal/transport/batchio"
	"tributarydelta/internal/wire"
)

// ShardProc is a running shard runtime as seen by the parent: a process
// handle (or its in-process stand-in) the parent waits out at Close and
// kills if it will not exit.
type ShardProc interface {
	// Wait blocks until the shard runtime exits and returns its error; it
	// must be callable more than once.
	Wait() error
	// Kill forcibly terminates the shard runtime (no-op for in-process
	// shards, which exit when their sockets close).
	Kill() error
}

// Spawner launches the shard runtime for one shard index, telling it the
// parent's control address. The default spawner runs RunNode on a goroutine
// in this process — real sockets, no exec; SpawnExec launches a tdnode
// binary per shard. A Spawner must be safe for concurrent use: the
// supervisor goroutines respawn failed shards with it mid-run.
type Spawner func(controlAddr string, shard int) (ShardProc, error)

// UDPOptions configure a UDP transport.
type UDPOptions struct {
	// Shards is the number of shard processes nodes are partitioned over
	// (<= 0 means 1; clamped to the node count).
	Shards int
	// Deterministic selects the exactly-once barrier with the seeded loss
	// model deciding Deliver verdicts, making answers bit-identical to the
	// in-process backends. Free-running mode (false) sends optimistically
	// and discovers real losses/duplicates at the barrier.
	Deterministic bool
	// Stats, if non-nil, receives the backend-side accounting: per-node
	// receive deltas (AddRx), duplicates (AddDuplicates) and — in
	// free-running mode — real frame losses (AddLoss, applied at the
	// barrier on the dispatch goroutine). Swappable via SetStats at the
	// epoch barrier, like Chan.
	Stats *network.Stats
	// Spawn launches each shard runtime; nil selects the in-process
	// default. The supervisor reuses it to respawn failed shards, so it
	// must be safe for concurrent use.
	Spawn Spawner
	// MaxDatagram caps the datagram size this side is willing to send;
	// <= 0 (or anything above wire.MaxUDPPayload) means wire.MaxUDPPayload.
	// The effective per-shard limit is the min of this and the shard's
	// advertised limit — the bound batch datagrams are sealed against. A
	// frame that cannot fit even alone fails its delivery and sets the
	// transport's sticky error.
	MaxDatagram int
	// NoBatching disables datagram coalescing: every frame travels as its
	// own single-frame (0xD7) datagram, the PR 7 data plane. The A/B lever
	// for golden parity tests and benchmarks; answers and accounting are
	// identical either way, only datagram and syscall counts differ.
	NoBatching bool
	// DrainQuiet is the free-running barrier's quiet window: a shard
	// reports its round once no datagram has arrived for this long. <= 0
	// means 5ms. Chaos tests raise it to out-wait their proxy's reordering.
	DrainQuiet time.Duration
	// BarrierTimeout caps one epoch barrier's control-channel round trips
	// per shard; a shard that cannot be flushed within it is declared dead
	// (its round's frames attributed as losses) and handed to the
	// supervisor for respawn — no hang either way. Within the budget,
	// individual control reads run under shorter per-attempt deadlines
	// (BarrierTimeout/4, floored at 50ms) so a transiently slow shard is
	// re-flushed rather than written off. <= 0 means 5s.
	BarrierTimeout time.Duration
	// JoinTimeout bounds each join/assign handshake: the initial fleet
	// joins at construction and every mid-run rejoin of a respawned shard.
	// <= 0 means 10s.
	JoinTimeout time.Duration
	// RespawnBackoff is the supervisor's delay before the first respawn
	// attempt of a failed shard; subsequent attempts double it up to
	// RespawnBackoffMax. <= 0 means 50ms.
	RespawnBackoff time.Duration
	// RespawnBackoffMax caps the exponential respawn backoff. <= 0 means
	// 2s (raised to RespawnBackoff when that is larger); NewUDP rejects an
	// explicit cap below RespawnBackoff.
	RespawnBackoffMax time.Duration
	// MaxRespawns bounds the consecutive failed respawn attempts per
	// failure episode before the shard is declared permanently failed
	// (which does set the sticky error). 0 means 8; negative disables
	// supervision entirely — the first shard death sets the sticky error
	// and the shard stays down, the pre-supervision behavior.
	MaxRespawns int
	// AddrRewrite, if set, maps each shard's advertised UDP address to the
	// address the parent actually sends to — the seam a chaos-proxy test
	// interposes on. It runs once per join handshake — including mid-run
	// rejoins of respawned shards, which advertise a fresh port — and must
	// be safe for concurrent use (rejoins run on supervisor goroutines).
	AddrRewrite func(shard int, addr string) string
}

// Barrier and supervision tuning shared by parent and tests.
const (
	defaultBarrierTimeout    = 5 * time.Second
	defaultJoinTimeout       = 10 * time.Second
	defaultRespawnBackoff    = 50 * time.Millisecond
	defaultRespawnBackoffMax = 2 * time.Second
	defaultMaxRespawns       = 8
	minCtrlAttemptTimeout    = 50 * time.Millisecond
	reapTimeout              = 3 * time.Second
	minNegotiatedDatagram    = 512
	maxDetResends            = 64
)

// ShardState is a shard's supervision state in a Health snapshot.
type ShardState string

const (
	// ShardHealthy: joined and answering the barrier.
	ShardHealthy ShardState = "healthy"
	// ShardRespawning: declared dead at a barrier; the supervisor is
	// reaping the old runtime and respawning a replacement. Frames bound
	// for the shard are attributed as losses until it rejoins.
	ShardRespawning ShardState = "respawning"
	// ShardFailed: permanently failed — the respawn budget is exhausted or
	// supervision is disabled. The transport's sticky error is set.
	ShardFailed ShardState = "failed"
)

// ShardHealth is one shard's entry in a Health snapshot.
type ShardHealth struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// State is the shard's current supervision state.
	State ShardState `json:"state"`
	// Restarts counts completed respawn/rejoin cycles over the fleet's
	// lifetime.
	Restarts int `json:"restarts,omitempty"`
	// DegradedEpochs counts epoch barriers the shard missed while dead —
	// epochs whose frames for this shard were attributed as losses.
	DegradedEpochs int `json:"degradedEpochs,omitempty"`
	// LastErr is the most recent failure cause (barrier error, spawn
	// failure or exit status), empty while none has occurred.
	LastErr string `json:"lastErr,omitempty"`
}

// HealthSnapshot is a point-in-time view of the fleet's supervision state,
// safe to take from any goroutine (tdserve exposes it per deployment).
type HealthSnapshot struct {
	// Shards holds one entry per shard, by index.
	Shards []ShardHealth `json:"shards,omitempty"`
	// Restarts is the fleet-wide sum of completed respawn/rejoin cycles.
	Restarts int `json:"restarts"`
	// DegradedEpochs is the fleet-wide sum of shard-epochs spent dead.
	DegradedEpochs int `json:"degradedEpochs"`
	// Failed counts shards currently in the failed state.
	Failed int `json:"failed"`
}

// Healthy reports whether every shard is currently in the healthy state.
func (h HealthSnapshot) Healthy() bool {
	for _, sh := range h.Shards {
		if sh.State != ShardHealthy {
			return false
		}
	}
	return true
}

// shardHealth is the internal, mutex-guarded form of one shard's health.
type shardHealth struct {
	state    ShardState
	restarts int
	degraded int
	lastErr  string
}

// rejoin is a completed mid-run join handshake: the replacement runtime's
// process handle, control connection, resolved data-plane address and
// negotiated datagram limit. A supervisor publishes it through the shard's
// pending slot; the dispatch goroutine adopts it at the next BeginEpoch, so
// every shard field stays dispatch-owned.
type rejoin struct {
	proc        ShardProc
	ctrl        net.Conn
	addr        *net.UDPAddr
	maxDatagram int
}

// acceptedJoin is one join connection the acceptor has read and routed.
type acceptedJoin struct {
	conn net.Conn
	join ctrlMsg
}

// errSupervisionStopped marks a respawn attempt abandoned because the
// transport is closing — not a failure to count against the budget.
var errSupervisionStopped = errors.New("transport: supervision stopped")

// udpShard is the parent's view of one shard: its process handle, control
// connection, resolved data-plane address, and the current round's send
// state (dispatch-goroutine-owned; the flush goroutines only touch it
// between EndEpoch's spawn and join, which the WaitGroup orders; the
// supervisor touches only the atomic pending slot).
type udpShard struct {
	id          int
	proc        ShardProc
	ctrl        net.Conn
	addr        *net.UDPAddr
	maxDatagram int
	dead        bool
	// pending carries a supervisor's completed rejoin to the dispatch
	// goroutine, adopted at the next BeginEpoch.
	pending atomic.Pointer[rejoin]
	// sent counts the frames (sequence numbers) assigned this round.
	sent int
	// batch is the building batch datagram, sealed into dgrams when the
	// next frame would not fit; batchBase/batchN are its first sequence
	// number and frame count.
	batch     []byte
	batchBase int
	batchN    int
	// dgrams keeps the round's sealed datagram images — the send queue, and
	// in deterministic mode the retransmission store; buffers are recycled
	// across rounds. dgramBase records each datagram's first sequence
	// number (ascending), so a missing range maps back to whole datagrams
	// by binary search.
	dgrams    [][]byte
	dgramBase []int
	// from records each seq's sender for loss attribution.
	from []int32
	// recvCalls/recvDatagrams mirror the shard's cumulative socket-level
	// receive counters from its last barrier reply (for IOStats).
	recvCalls, recvDatagrams int64
}

// UDP is the multi-process UDP transport. Construct with NewUDP; it
// implements runner.Transport, runner.EpochMarker and runner.StatsSetter.
// Like every backend, Deliver/BeginEpoch/EndEpoch are dispatch-goroutine-
// only; Close may be called from any goroutine once the run has quiesced
// and is idempotent. Health and Err are safe from any goroutine.
type UDP struct {
	nw   *network.Net
	opts UDPOptions
	// view caches the current epoch's delivery view, exactly like Chan.
	view      network.EpochView
	viewEpoch int
	viewSet   bool
	conn      *net.UDPConn
	io        *batchio.Sender
	ioc       batchio.Counters
	// ln is the control listener, kept open for the transport's lifetime so
	// respawned shards can rejoin mid-run; ctrlAddr is its address, what
	// the Spawner is told.
	ln       net.Listener
	ctrlAddr string
	// stopc stops the supervisor goroutines; acceptWG/superWG join the
	// acceptor and supervisors at teardown.
	stopc    chan struct{}
	acceptWG sync.WaitGroup
	superWG  sync.WaitGroup
	// rejoinWaiters routes accepted mid-run joins to the supervisor
	// awaiting that shard index.
	rejoinMu      sync.Mutex
	rejoinWaiters map[int]chan acceptedJoin
	// health is the per-shard supervision state behind Health().
	healthMu sync.Mutex
	health   []shardHealth
	// pending queues the round's sealed datagrams for one batched submit at
	// the epoch barrier.
	pending   []batchio.Message
	shards    []*udpShard
	round     uint64
	lost      atomic.Int64
	dupes     atomic.Int64
	errMu     sync.Mutex
	err       error
	closeOnce sync.Once
}

// NewUDP spawns the shard fleet, runs the join handshake (collecting each
// shard's UDP address and negotiating per-shard datagram limits) and
// returns the ready transport. On any failure it tears down whatever it
// spawned and returns the error. The caller must Close it.
func NewUDP(nw *network.Net, opts UDPOptions) (*UDP, error) {
	n := nw.Graph.N()
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.Shards > n {
		opts.Shards = n
	}
	if opts.MaxDatagram <= 0 || opts.MaxDatagram > wire.MaxUDPPayload {
		opts.MaxDatagram = wire.MaxUDPPayload
	}
	if opts.DrainQuiet <= 0 {
		opts.DrainQuiet = defaultQuietUS * time.Microsecond
	}
	if opts.BarrierTimeout <= 0 {
		opts.BarrierTimeout = defaultBarrierTimeout
	}
	if opts.JoinTimeout <= 0 {
		opts.JoinTimeout = defaultJoinTimeout
	}
	if opts.RespawnBackoff <= 0 {
		opts.RespawnBackoff = defaultRespawnBackoff
	}
	if opts.RespawnBackoffMax <= 0 {
		opts.RespawnBackoffMax = defaultRespawnBackoffMax
		if opts.RespawnBackoffMax < opts.RespawnBackoff {
			opts.RespawnBackoffMax = opts.RespawnBackoff
		}
	}
	if opts.RespawnBackoffMax < opts.RespawnBackoff {
		return nil, fmt.Errorf("transport: RespawnBackoffMax %v below RespawnBackoff %v", opts.RespawnBackoffMax, opts.RespawnBackoff)
	}
	if opts.MaxRespawns == 0 {
		opts.MaxRespawns = defaultMaxRespawns
	}
	if opts.Spawn == nil {
		opts.Spawn = spawnInProcess
	}
	u := &UDP{
		nw: nw, opts: opts,
		shards:        make([]*udpShard, opts.Shards),
		stopc:         make(chan struct{}),
		rejoinWaiters: make(map[int]chan acceptedJoin),
		health:        make([]shardHealth, opts.Shards),
	}
	for i := range u.health {
		u.health[i].state = ShardHealthy
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: udp control listener: %w", err)
	}
	u.ln = ln
	u.ctrlAddr = ln.Addr().String()
	u.conn, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("transport: udp send socket: %w", err)
	}
	_ = u.conn.SetWriteBuffer(1 << 22)
	u.io = batchio.NewSender(u.conn, &u.ioc)

	fail := func(err error) (*UDP, error) {
		u.teardown()
		return nil, err
	}
	for i := 0; i < opts.Shards; i++ {
		proc, err := opts.Spawn(u.ctrlAddr, i)
		if err != nil {
			return fail(fmt.Errorf("transport: spawn shard %d: %w", i, err))
		}
		u.shards[i] = &udpShard{id: i, proc: proc}
	}
	tl, _ := ln.(*net.TCPListener)
	for joined := 0; joined < opts.Shards; joined++ {
		if tl != nil {
			//lint:ignore determinism control-plane accept deadline; join timing never reaches the epoch path
			_ = tl.SetDeadline(time.Now().Add(opts.JoinTimeout))
		}
		c, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("transport: waiting for shard joins (%d/%d): %w", joined, opts.Shards, err))
		}
		var join ctrlMsg
		//lint:ignore determinism control-plane I/O deadline; join timing never reaches the epoch path
		if err := readCtrl(c, time.Now().Add(opts.JoinTimeout), &join); err != nil {
			c.Close()
			return fail(fmt.Errorf("transport: shard join handshake: %w", err))
		}
		sh := u.shardForJoin(&join)
		if sh == nil {
			c.Close()
			return fail(fmt.Errorf("transport: invalid or duplicate shard join %+v", join))
		}
		rj, err := u.completeJoin(c, &join)
		if err != nil {
			c.Close()
			return fail(fmt.Errorf("transport: %w", err))
		}
		sh.ctrl, sh.addr, sh.maxDatagram = rj.ctrl, rj.addr, rj.maxDatagram
	}
	if tl != nil {
		_ = tl.SetDeadline(time.Time{})
	}
	u.acceptWG.Add(1)
	go u.acceptJoins()
	return u, nil
}

// shardForJoin matches a join message to its not-yet-joined shard slot, or
// nil if the message is invalid.
func (u *UDP) shardForJoin(join *ctrlMsg) *udpShard {
	if join.Type != ctrlJoin || join.Shard < 0 || join.Shard >= len(u.shards) {
		return nil
	}
	sh := u.shards[join.Shard]
	if sh == nil || sh.ctrl != nil || join.MaxDatagram < minNegotiatedDatagram {
		return nil
	}
	return sh
}

// completeJoin finishes one join handshake on an accepted control
// connection: resolve the advertised data-plane address (through
// AddrRewrite), negotiate the datagram limit and send the assignment. It
// serves both the initial fleet joins and mid-run rejoins; the caller owns
// the connection on error.
func (u *UDP) completeJoin(c net.Conn, join *ctrlMsg) (*rejoin, error) {
	addr := join.UDPAddr
	if u.opts.AddrRewrite != nil {
		addr = u.opts.AddrRewrite(join.Shard, addr)
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("shard %d udp address %q: %w", join.Shard, addr, err)
	}
	maxDgram := min(u.opts.MaxDatagram, join.MaxDatagram)
	if maxDgram < minNegotiatedDatagram {
		maxDgram = minNegotiatedDatagram
	}
	assign := ctrlMsg{
		Type: ctrlAssign, Nodes: u.nw.Graph.N(), Shards: len(u.shards),
		Deterministic: u.opts.Deterministic,
		MaxDatagram:   maxDgram,
		QuietUS:       int(u.opts.DrainQuiet / time.Microsecond),
	}
	//lint:ignore determinism control-plane I/O deadline; join timing never reaches the epoch path
	if err := writeCtrl(c, time.Now().Add(u.opts.JoinTimeout), &assign); err != nil {
		return nil, fmt.Errorf("shard %d assignment: %w", join.Shard, err)
	}
	return &rejoin{ctrl: c, addr: ua, maxDatagram: maxDgram}, nil
}

// acceptJoins routes mid-run join connections — respawned shards dialing
// back in — to the supervisor awaiting that shard index. It owns the
// control listener after construction and exits when teardown closes it;
// joins nobody is waiting for are dropped.
func (u *UDP) acceptJoins() {
	defer u.acceptWG.Done()
	for {
		c, err := u.ln.Accept()
		if err != nil {
			return
		}
		var join ctrlMsg
		//lint:ignore determinism control-plane I/O deadline; rejoin timing never reaches the epoch path
		if err := readCtrl(c, time.Now().Add(u.opts.JoinTimeout), &join); err != nil {
			c.Close()
			continue
		}
		if join.Type != ctrlJoin || join.Shard < 0 || join.Shard >= len(u.shards) ||
			join.MaxDatagram < minNegotiatedDatagram {
			c.Close()
			continue
		}
		u.rejoinMu.Lock()
		ch := u.rejoinWaiters[join.Shard]
		delete(u.rejoinWaiters, join.Shard)
		u.rejoinMu.Unlock()
		if ch == nil {
			c.Close()
			continue
		}
		ch <- acceptedJoin{conn: c, join: join}
	}
}

// nextBuf returns a recycled datagram buffer for the shard's next sealed
// datagram: the hidden capacity slot of dgrams, if one survives from a
// previous round, truncated to zero length. seal must be the next dgrams
// mutation (Deliver's batch building guarantees it: one open batch per
// shard, sealed in order).
func (sh *udpShard) nextBuf() []byte {
	if n := len(sh.dgrams); cap(sh.dgrams) > n {
		sh.dgrams = sh.dgrams[:n+1]
		buf := sh.dgrams[n][:0]
		sh.dgrams = sh.dgrams[:n]
		return buf
	}
	return nil
}

// seal records one finished datagram image — retransmission store and send
// queue entry — with base as its first sequence number.
func (u *UDP) seal(sh *udpShard, buf []byte, base int) {
	sh.dgrams = append(sh.dgrams, buf)
	sh.dgramBase = append(sh.dgramBase, base)
	u.pending = append(u.pending, batchio.Message{Buf: buf, Addr: sh.addr})
}

// sealBatch closes the shard's building batch, if any.
func (u *UDP) sealBatch(sh *udpShard) {
	if sh.batchN == 0 {
		return
	}
	u.seal(sh, sh.batch, sh.batchBase)
	sh.batch = nil
	sh.batchN = 0
}

// Deliver implements runner.Transport. In deterministic mode the verdict
// comes from the seeded loss model (surviving frames are queued, and the
// barrier guarantees exactly-once arrival); in free-running mode every
// frame is queued and optimistically reported delivered — the barrier
// settles what was really lost. Frames accumulate into batch datagrams
// (unless NoBatching) and hit the socket at EndEpoch; a false return on a
// dead shard or oversized frame lets the runner account the loss as usual.
func (u *UDP) Deliver(epoch, attempt, from, to int, frame []byte) bool {
	if u.opts.Deterministic {
		if !u.viewSet || u.viewEpoch != epoch {
			u.view = u.nw.Epoch(epoch)
			u.viewSet = true
			u.viewEpoch = epoch
		}
		if !u.view.Delivered(attempt, from, to) {
			return false
		}
	}
	sh := u.shards[to%len(u.shards)]
	if sh.dead {
		u.lost.Add(1)
		return false
	}
	seq := sh.sent
	if seq >= wire.MaxDatagramSeq {
		u.setErr(fmt.Errorf("transport: round %d exceeded %d frames to shard %d", u.round, wire.MaxDatagramSeq, sh.id))
		return false
	}
	if u.opts.NoBatching {
		buf := wire.AppendDatagram(sh.nextBuf(), u.round, seq, to, frame)
		if len(buf) > sh.maxDatagram {
			u.setErr(fmt.Errorf("transport: frame of %d bytes exceeds shard %d's negotiated datagram size %d",
				len(frame), sh.id, sh.maxDatagram))
			return false
		}
		u.seal(sh, buf, seq)
	} else {
		need := wire.BatchFrameLen(to, len(frame))
		if wire.DatagramBatchOverhead(u.round, seq)+need > sh.maxDatagram {
			u.setErr(fmt.Errorf("transport: frame of %d bytes exceeds shard %d's negotiated datagram size %d",
				len(frame), sh.id, sh.maxDatagram))
			return false
		}
		if sh.batchN > 0 && len(sh.batch)+need > sh.maxDatagram {
			u.sealBatch(sh)
		}
		if sh.batchN == 0 {
			sh.batch = wire.AppendDatagramBatch(sh.nextBuf(), u.round, seq)
			sh.batchBase = seq
		}
		sh.batch = wire.AppendBatchFrame(sh.batch, to, frame)
		sh.batchN++
	}
	sh.from = append(sh.from, int32(from))
	sh.sent++
	return true
}

// BeginEpoch implements runner.EpochMarker: adopt any completed rejoins,
// then advance the barrier round. The round counter — not the epoch number
// — scopes datagram sequence spaces, because query-set members reuse epoch
// numbers across their sub-rounds. Adoption happens here, on the dispatch
// goroutine, so the shard's connection, address and datagram limit are
// stable for the whole round.
func (u *UDP) BeginEpoch(int) {
	u.round++
	for _, sh := range u.shards {
		if rj := sh.pending.Swap(nil); rj != nil {
			sh.proc, sh.ctrl, sh.addr, sh.maxDatagram = rj.proc, rj.ctrl, rj.addr, rj.maxDatagram
			sh.recvCalls, sh.recvDatagrams = 0, 0
			sh.dead = false
		}
		sh.sent = 0
		sh.from = sh.from[:0]
		sh.batch = nil
		sh.batchN = 0
		sh.dgrams = sh.dgrams[:0]
		sh.dgramBase = sh.dgramBase[:0]
	}
	u.pending = u.pending[:0]
}

// EndEpoch implements runner.EpochMarker: seal the open batches, submit the
// whole round's datagrams in one batched send, then flush every shard that
// received traffic this round (concurrently — each shard has its own
// control connection) and apply the collected receive deltas, duplicates
// and free-running losses to the current Stats target on the calling
// (dispatch) goroutine, preserving the transmit-side single-writer
// contract. A shard that cannot be flushed within BarrierTimeout is
// declared dead: its round's frames are attributed as losses and the
// supervisor takes over respawning it — no hang, and no sticky error
// unless recovery itself is exhausted.
func (u *UDP) EndEpoch(int) {
	for _, sh := range u.shards {
		u.sealBatch(sh)
	}
	if len(u.pending) > 0 {
		if err := u.io.Send(u.pending); err != nil {
			u.setErr(fmt.Errorf("transport: batched send: %w", err))
		}
		u.pending = u.pending[:0]
	}
	var wg sync.WaitGroup
	type flushResult struct {
		done ctrlMsg
		err  error
	}
	results := make([]flushResult, len(u.shards))
	for i, sh := range u.shards {
		if sh.dead || sh.sent == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, sh *udpShard) {
			defer wg.Done()
			results[i].done, results[i].err = u.flushShard(sh)
		}(i, sh)
	}
	wg.Wait()
	st := u.opts.Stats
	for i, sh := range u.shards {
		if sh.dead {
			// A shard that stayed dead through the round missed its epoch;
			// Deliver already counted its frames as losses.
			u.noteDegraded(sh.id)
			continue
		}
		if sh.sent == 0 {
			continue
		}
		res := results[i]
		if res.err != nil {
			// The shard is gone mid-round: how much of the round it
			// processed is unknowable, so attribute the whole round as
			// lost — the conservative reading of a crashed receiver — and
			// hand the shard to the supervisor.
			u.lost.Add(int64(sh.sent))
			if st != nil {
				for _, from := range sh.from {
					st.AddLoss(int(from))
				}
			}
			u.declareDead(sh, res.err)
			u.noteDegraded(sh.id)
			continue
		}
		sh.recvCalls = res.done.RecvCalls
		sh.recvDatagrams = res.done.RecvDatagrams
		for _, d := range res.done.Rx {
			if d.Node < 0 || d.Node >= u.nw.Graph.N() {
				continue
			}
			if st != nil {
				st.AddRx(d.Node, d.Frames, d.Bytes)
				if d.Dups > 0 {
					st.AddDuplicates(d.Node, d.Dups)
				}
			}
			u.dupes.Add(d.Dups)
		}
		for _, rng := range res.done.Missing {
			first, count := rng.First, rng.Count
			if first < 0 || count <= 0 || first >= sh.sent {
				continue
			}
			if count > sh.sent-first {
				count = sh.sent - first
			}
			u.lost.Add(int64(count))
			if st != nil {
				for seq := first; seq < first+count; seq++ {
					st.AddLoss(int(sh.from[seq]))
				}
			}
		}
	}
}

// declareDead transitions a shard that failed its barrier into recovery:
// its control connection closes (so a stalled-but-alive runtime
// self-terminates through its control-read error path), the health state
// flips to respawning, and a supervisor goroutine takes over reaping and
// respawning. With supervision disabled (MaxRespawns < 0) the shard
// instead fails permanently with the sticky error — the pre-supervision
// contract. Dispatch-goroutine-only.
func (u *UDP) declareDead(sh *udpShard, cause error) {
	sh.dead = true
	if u.opts.MaxRespawns < 0 {
		u.setShardState(sh.id, ShardFailed, cause)
		u.setErr(fmt.Errorf("transport: shard %d: %w", sh.id, cause))
		return
	}
	ctrl, proc := sh.ctrl, sh.proc
	sh.ctrl, sh.proc = nil, nil
	if ctrl != nil {
		ctrl.Close()
	}
	u.setShardState(sh.id, ShardRespawning, cause)
	u.superWG.Add(1)
	go u.supervise(sh.id, proc)
}

// supervise reaps a dead shard's old runtime, then respawns it with capped
// exponential backoff until a replacement rejoins, the attempt budget is
// exhausted, or the transport closes. It runs on its own goroutine; a
// completed rejoin is handed to the dispatch goroutine through the shard's
// pending slot and adopted at the next BeginEpoch.
func (u *UDP) supervise(id int, proc ShardProc) {
	defer u.superWG.Done()
	if proc != nil {
		// Reap first: join the old runtime's exit and record its cause, so
		// a crash is distinguishable from a clean stop in the health
		// snapshot.
		_ = proc.Kill()
		if err := waitProc(proc, reapTimeout); err != nil {
			u.noteShardErr(id, fmt.Errorf("shard runtime exit: %w", err))
		}
	}
	backoff := u.opts.RespawnBackoff
	for attempt := 1; ; attempt++ {
		//lint:ignore determinism respawn backoff timer; supervision runs beside the epoch path — a recovering shard's frames are already attributed as losses, and answers never depend on when it rejoins
		t := time.NewTimer(backoff)
		select {
		case <-u.stopc:
			t.Stop()
			return
		case <-t.C:
		}
		rj, err := u.respawn(id)
		if err == nil {
			u.shards[id].pending.Store(rj)
			u.noteRejoined(id)
			return
		}
		if errors.Is(err, errSupervisionStopped) {
			return
		}
		u.noteShardErr(id, err)
		if attempt >= u.opts.MaxRespawns {
			u.setShardState(id, ShardFailed, err)
			u.setErr(fmt.Errorf("transport: shard %d: respawn budget exhausted after %d attempts: %w", id, attempt, err))
			return
		}
		backoff *= 2
		if backoff > u.opts.RespawnBackoffMax {
			backoff = u.opts.RespawnBackoffMax
		}
	}
}

// respawn launches one replacement runtime for a shard and runs the
// mid-run join/assign handshake, returning the ready rejoin record. On any
// failure the replacement is killed and reaped before the error returns.
func (u *UDP) respawn(id int) (*rejoin, error) {
	ch := make(chan acceptedJoin, 1)
	u.rejoinMu.Lock()
	u.rejoinWaiters[id] = ch
	u.rejoinMu.Unlock()
	cancel := func() {
		u.rejoinMu.Lock()
		if u.rejoinWaiters[id] == ch {
			delete(u.rejoinWaiters, id)
		}
		u.rejoinMu.Unlock()
		select {
		case aj := <-ch:
			aj.conn.Close()
		default:
		}
	}
	proc, err := u.opts.Spawn(u.ctrlAddr, id)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("respawn shard %d: %w", id, err)
	}
	reap := func() {
		_ = proc.Kill()
		_ = waitProc(proc, reapTimeout)
	}
	//lint:ignore determinism rejoin handshake timer; supervision runs beside the epoch path and never reaches answer bits
	t := time.NewTimer(u.opts.JoinTimeout)
	defer t.Stop()
	select {
	case aj := <-ch:
		rj, err := u.completeJoin(aj.conn, &aj.join)
		if err != nil {
			aj.conn.Close()
			reap()
			return nil, fmt.Errorf("respawn shard %d: %w", id, err)
		}
		rj.proc = proc
		return rj, nil
	case <-t.C:
		cancel()
		reap()
		return nil, fmt.Errorf("respawn shard %d: no rejoin within %v", id, u.opts.JoinTimeout)
	case <-u.stopc:
		cancel()
		reap()
		return nil, errSupervisionStopped
	}
}

// setShardState records a supervision state transition and its cause.
func (u *UDP) setShardState(id int, st ShardState, cause error) {
	u.healthMu.Lock()
	u.health[id].state = st
	if cause != nil {
		u.health[id].lastErr = cause.Error()
	}
	u.healthMu.Unlock()
}

// noteShardErr records a failure cause without changing the state.
func (u *UDP) noteShardErr(id int, cause error) {
	u.healthMu.Lock()
	u.health[id].lastErr = cause.Error()
	u.healthMu.Unlock()
}

// noteRejoined records a completed respawn/rejoin cycle.
func (u *UDP) noteRejoined(id int) {
	u.healthMu.Lock()
	u.health[id].state = ShardHealthy
	u.health[id].restarts++
	u.healthMu.Unlock()
}

// noteDegraded counts one epoch barrier a dead shard missed.
func (u *UDP) noteDegraded(id int) {
	u.healthMu.Lock()
	u.health[id].degraded++
	u.healthMu.Unlock()
}

// Health returns a snapshot of the fleet's supervision state: per-shard
// state, restart counts and epochs spent degraded. Safe from any
// goroutine; recovered faults appear here, not in Err.
func (u *UDP) Health() HealthSnapshot {
	u.healthMu.Lock()
	defer u.healthMu.Unlock()
	snap := HealthSnapshot{Shards: make([]ShardHealth, len(u.health))}
	for i, h := range u.health {
		snap.Shards[i] = ShardHealth{
			Shard: i, State: h.state,
			Restarts: h.restarts, DegradedEpochs: h.degraded,
			LastErr: h.lastErr,
		}
		snap.Restarts += h.restarts
		snap.DegradedEpochs += h.degraded
		if h.state == ShardFailed {
			snap.Failed++
		}
	}
	return snap
}

// ctrlAttemptDeadline bounds one control-plane I/O attempt: the earlier of
// now+attemptIO and the barrier's overall deadline.
func ctrlAttemptDeadline(deadline time.Time, attemptIO time.Duration) time.Time {
	//lint:ignore determinism per-attempt control-plane I/O deadline; bounds waiting at the barrier, never answer bits
	d := time.Now().Add(attemptIO)
	if d.After(deadline) {
		return deadline
	}
	return d
}

// budgetLeft reports whether the barrier's overall deadline has not passed.
func budgetLeft(deadline time.Time) bool {
	//lint:ignore determinism barrier liveness check; expiry surfaces as a shard failure handed to the supervisor, not a divergent answer
	return time.Now().Before(deadline)
}

// isTimeout classifies a control-plane I/O error: deadline expiries are
// transient (the shard may be slow or its link stalled — retry within the
// barrier budget); anything else (EOF, connection reset) means the peer is
// gone and is fatal.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// attemptTimeout derives the per-attempt control I/O deadline from the
// barrier budget: BarrierTimeout/4, floored at 50ms — several read
// attempts fit in one budget, so a transiently slow shard gets re-flushed
// instead of being written off at the first silence.
func (u *UDP) attemptTimeout() time.Duration {
	at := u.opts.BarrierTimeout / 4
	if at < minCtrlAttemptTimeout {
		at = minCtrlAttemptTimeout
	}
	if at > u.opts.BarrierTimeout {
		at = u.opts.BarrierTimeout
	}
	return at
}

// readDone reads one barrier reply, skipping stale done messages a
// timed-out earlier attempt left queued on the stream. A read timeout with
// budget remaining asks the caller to re-send the flush (second return
// true); any other failure is fatal.
func (u *UDP) readDone(sh *udpShard, deadline time.Time, attemptIO time.Duration) (ctrlMsg, bool, error) {
	for {
		var done ctrlMsg
		if err := readCtrl(sh.ctrl, ctrlAttemptDeadline(deadline, attemptIO), &done); err != nil {
			if isTimeout(err) && budgetLeft(deadline) {
				return ctrlMsg{}, true, nil
			}
			return ctrlMsg{}, false, fmt.Errorf("barrier reply: %w", err)
		}
		if done.Type != ctrlDone {
			return ctrlMsg{}, false, fmt.Errorf("unexpected barrier reply %q (round %d)", done.Type, u.round)
		}
		if done.Round < u.round {
			continue // stale reply from a superseded barrier attempt
		}
		if done.Round > u.round {
			return ctrlMsg{}, false, fmt.Errorf("barrier reply for future round %d (want %d)", done.Round, u.round)
		}
		return done, false, nil
	}
}

// flushShard runs one shard's barrier: flush, read done, and — in
// deterministic mode — retransmit whatever the shard reports missing until
// nothing is, the timeout expires, or the control channel fails. Missing
// sequence ranges map back to whole sealed datagram images (by binary
// search over their base sequence numbers); the shard's dedup absorbs any
// frames of a resent datagram that had in fact arrived.
//
// Control I/O runs under bounded per-attempt deadlines within the overall
// BarrierTimeout budget: a read timeout re-sends the flush (the shard
// answers a duplicate flush idempotently, and readDone skips the stale
// replies), while a failed write or a non-timeout read error is fatal
// immediately — a reset connection means the peer is gone, and a timed-out
// write may have left a partial frame on the stream.
func (u *UDP) flushShard(sh *udpShard) (ctrlMsg, error) {
	//lint:ignore determinism barrier liveness deadline; deterministic mode retransmits to exactly-once receipt, so timing bounds waiting, never answer bits
	deadline := time.Now().Add(u.opts.BarrierTimeout)
	attemptIO := u.attemptTimeout()
	var resend []batchio.Message
	resends := 0
	for {
		if err := writeCtrl(sh.ctrl, ctrlAttemptDeadline(deadline, attemptIO), &ctrlMsg{Type: ctrlFlush, Round: u.round, Sent: sh.sent}); err != nil {
			return ctrlMsg{}, fmt.Errorf("barrier flush: %w", err)
		}
		done, retry, err := u.readDone(sh, deadline, attemptIO)
		if err != nil {
			return ctrlMsg{}, err
		}
		if retry {
			continue
		}
		if !u.opts.Deterministic || len(done.Missing) == 0 {
			return done, nil
		}
		if resends >= maxDetResends || !budgetLeft(deadline) {
			missing := 0
			for _, rng := range done.Missing {
				missing += rng.Count
			}
			return ctrlMsg{}, fmt.Errorf("%d frames still missing after %d resends", missing, resends)
		}
		resends++
		resend = resend[:0]
		last := -1
		for _, rng := range done.Missing {
			if rng.First < 0 || rng.Count <= 0 || rng.First+rng.Count > sh.sent {
				return ctrlMsg{}, fmt.Errorf("shard reported unknown seq range [%d,%d)", rng.First, rng.First+rng.Count)
			}
			di := sort.SearchInts(sh.dgramBase, rng.First+1) - 1
			if di < 0 {
				return ctrlMsg{}, fmt.Errorf("no datagram covers seq %d", rng.First)
			}
			for ; di < len(sh.dgrams) && sh.dgramBase[di] < rng.First+rng.Count; di++ {
				if di <= last {
					continue // already queued by an earlier range
				}
				resend = append(resend, batchio.Message{Buf: sh.dgrams[di], Addr: sh.addr})
				last = di
			}
		}
		if err := u.io.Send(resend); err != nil {
			return ctrlMsg{}, fmt.Errorf("retransmit: %w", err)
		}
	}
}

// SetStats redirects the backend-side accounting to s, implementing
// runner.StatsSetter under the same quiescence contract as Chan: only
// between EndEpoch and the next Deliver — exactly when a query-set mux port
// swaps members. Every UDP accounting write happens on the dispatch
// goroutine (at the barrier), so the swap needs no synchronization at all.
func (u *UDP) SetStats(s *network.Stats) { u.opts.Stats = s }

// Err returns the transport's sticky error: an oversized frame, a socket
// failure, or a shard that failed permanently (respawn budget exhausted,
// or supervision disabled). A shard death the supervisor recovers from is
// NOT an error — its epochs-as-losses and the restart appear in Health
// instead. A non-nil Err means some deliveries were force-counted as
// losses; answers remain whatever the runner computed.
func (u *UDP) Err() error {
	u.errMu.Lock()
	defer u.errMu.Unlock()
	return u.err
}

// setErr records the first failure.
func (u *UDP) setErr(err error) {
	u.errMu.Lock()
	if u.err == nil {
		u.err = err
	}
	u.errMu.Unlock()
}

// Lost returns the frames the backend itself counted as lost: real losses
// discovered at free-running barriers, plus whole rounds attributed to dead
// shards. Deterministic-mode medium losses are not included (they never
// become datagrams). Frame-denominated: a lost batch datagram counts once
// per frame it carried.
func (u *UDP) Lost() int64 { return u.lost.Load() }

// Duplicates returns the duplicated frames shards have discarded
// (frame-denominated, like Lost).
func (u *UDP) Duplicates() int64 { return u.dupes.Load() }

// Shards returns the shard count nodes are partitioned over.
func (u *UDP) Shards() int { return len(u.shards) }

// IOStats returns the transport's socket-level counters: the parent's send
// side (live) plus the shard fleet's receive side (as of each shard's last
// barrier reply). cmd/tdbench derives datagrams/epoch and syscalls/epoch
// from deltas of this snapshot. A respawned shard's receive counters
// restart from zero.
func (u *UDP) IOStats() batchio.Snapshot {
	s := u.ioc.Snapshot()
	for _, sh := range u.shards {
		s.RecvCalls += sh.recvCalls
		s.RecvDatagrams += sh.recvDatagrams
	}
	return s
}

// Close stops the fleet: the supervisors and the join acceptor wind down,
// each live shard gets a stop message (answered by bye), the sockets
// close, and every shard process is waited out — or killed if it will not
// exit. Idempotent; Deliver must not be called afterwards.
func (u *UDP) Close() {
	u.closeOnce.Do(u.teardown)
}

// teardown is Close's body, shared with NewUDP's failure path.
func (u *UDP) teardown() {
	close(u.stopc)
	if u.ln != nil {
		u.ln.Close()
	}
	u.acceptWG.Wait()
	u.superWG.Wait()
	for _, sh := range u.shards {
		if sh == nil {
			continue
		}
		// A rejoin completed but never adopted winds down like a live shard.
		if rj := sh.pending.Swap(nil); rj != nil {
			sh.proc, sh.ctrl, sh.dead = rj.proc, rj.ctrl, false
		}
		if sh.ctrl == nil {
			continue
		}
		if !sh.dead {
			//lint:ignore determinism shutdown I/O deadline; teardown timing never reaches the epoch path
			dl := time.Now().Add(2 * time.Second)
			if writeCtrl(sh.ctrl, dl, &ctrlMsg{Type: ctrlStop}) == nil {
				var bye ctrlMsg
				_ = readCtrl(sh.ctrl, dl, &bye)
			}
		}
		sh.ctrl.Close()
	}
	if u.conn != nil {
		u.conn.Close()
	}
	for _, sh := range u.shards {
		if sh == nil || sh.proc == nil {
			continue
		}
		_ = waitProc(sh.proc, reapTimeout)
	}
}

// waitProc waits a shard runtime out, escalating to Kill at the timeout,
// and returns the exit cause — nil for a clean stop, the runtime's error
// for a crash or kill. The wait goroutine is always joined: after Kill the
// runtime's exit is assured (SIGKILL for exec shards, closed sockets for
// in-process ones), so the post-kill wait blocks for the cause instead of
// leaking the goroutine and discarding it.
func waitProc(p ShardProc, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- p.Wait() }()
	//lint:ignore determinism teardown escalation timer; process reaping never reaches the epoch path
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		_ = p.Kill()
		return <-done
	}
}

// SpawnInProcess is the default Spawner (what a nil UDPOptions.Spawn
// selects): the shard runtime runs on a goroutine in this process — the
// topology, sockets and protocol are identical to a separate tdnode
// process; only the process boundary is elided. Exported so wrappers (the
// chaos driver's fault-injecting spawner) can interpose on the default.
func SpawnInProcess(controlAddr string, shard int) (ShardProc, error) {
	return spawnInProcess(controlAddr, shard)
}

func spawnInProcess(controlAddr string, shard int) (ShardProc, error) {
	p := &inprocShard{done: make(chan error, 1)}
	go func() { p.done <- RunNode(controlAddr, shard) }()
	return p, nil
}

// inprocShard adapts the in-process shard goroutine to ShardProc.
type inprocShard struct {
	done chan error
	once sync.Once
	err  error
}

// Wait implements ShardProc.
func (p *inprocShard) Wait() error {
	p.once.Do(func() { p.err = <-p.done })
	return p.err
}

// Kill implements ShardProc: in-process shards exit when their sockets
// close, so there is nothing to kill.
func (p *inprocShard) Kill() error { return nil }

// SpawnExec returns a Spawner that launches one OS process per shard:
// `binary [args...] -control <addr> -shard <i>` — the cmd/tdnode contract.
// The children inherit this process's stderr for diagnostics.
func SpawnExec(binary string, args ...string) Spawner {
	return func(controlAddr string, shard int) (ShardProc, error) {
		argv := append(append([]string(nil), args...),
			"-control", controlAddr, "-shard", strconv.Itoa(shard))
		cmd := exec.Command(binary, argv...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &execShard{cmd: cmd}, nil
	}
}

// execShard adapts an exec'd tdnode process to ShardProc.
type execShard struct {
	cmd  *exec.Cmd
	once sync.Once
	err  error
}

// Wait implements ShardProc, memoizing the process exit status.
func (p *execShard) Wait() error {
	p.once.Do(func() { p.err = p.cmd.Wait() })
	return p.err
}

// Kill implements ShardProc with SIGKILL.
func (p *execShard) Kill() error { return p.cmd.Process.Kill() }
