package transport

// UDP is the third Transport backend: the node runtime leaves the process.
// Nodes are partitioned into shards (node v lives on shard v mod Shards),
// each shard is a separate OS process (or, with the default in-process
// spawner, a goroutine that still speaks real loopback sockets), and every
// delivery is a real UDP frame — the first configuration where packet
// loss, reordering and duplication are physical events rather than hash
// draws.
//
// Topology is a star: only the parent (the runner host) transmits, because
// the runner's Transport seam hands it every frame already routed — shards
// never talk to each other. The reliable control channel (one TCP loopback
// connection per shard) carries the join handshake, the epoch barrier and
// shutdown; the lossy data plane carries only datagrams.
//
// The data plane coalesces: all frames a round sends to one shard are
// packed into MTU-bounded batch datagrams (wire's 0xD8 framing), sealed the
// moment the next frame would not fit, and submitted to the socket in
// sendmmsg batches at the epoch barrier — a 600-node epoch costs a handful
// of syscalls instead of hundreds. Because a batch's frames carry
// consecutive sequence numbers, a lost datagram surfaces at the barrier as
// a contiguous missing *range*, and retransmission resends whole datagram
// images. NoBatching restores the PR 7 one-frame-per-datagram path — the
// A/B lever golden tests and tdbench compare against; answers are
// bit-identical either way.
//
// Two modes, exactly like Chan:
//
//   - Deterministic: the Deliver verdict comes from the seeded loss model
//     (the same hash as the simulator and Chan, so answers are pinned
//     bit-identical to the golden file), and every surviving frame is
//     delivered to its shard exactly once — the barrier retransmits any
//     datagram the loopback medium itself dropped, and the shard's
//     per-round dedup absorbs the replays, keeping the receive-side
//     accounting exact.
//   - Free-running: Deliver queues the frame and optimistically reports
//     true; the loss model is not consulted. What actually got lost is
//     discovered at the epoch barrier — each shard drains a quiet period,
//     reports the missing sequence ranges, and the parent attributes one
//     loss to each missing frame's sender (and one duplicate to each
//     replayed one), feeding the same network.Stats that the in-process
//     backends feed.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tributarydelta/internal/network"
	"tributarydelta/internal/transport/batchio"
	"tributarydelta/internal/wire"
)

// ShardProc is a running shard runtime as seen by the parent: a process
// handle (or its in-process stand-in) the parent waits out at Close and
// kills if it will not exit.
type ShardProc interface {
	// Wait blocks until the shard runtime exits and returns its error; it
	// must be callable more than once.
	Wait() error
	// Kill forcibly terminates the shard runtime (no-op for in-process
	// shards, which exit when their sockets close).
	Kill() error
}

// Spawner launches the shard runtime for one shard index, telling it the
// parent's control address. The default spawner runs RunNode on a goroutine
// in this process — real sockets, no exec; SpawnExec launches a tdnode
// binary per shard.
type Spawner func(controlAddr string, shard int) (ShardProc, error)

// UDPOptions configure a UDP transport.
type UDPOptions struct {
	// Shards is the number of shard processes nodes are partitioned over
	// (<= 0 means 1; clamped to the node count).
	Shards int
	// Deterministic selects the exactly-once barrier with the seeded loss
	// model deciding Deliver verdicts, making answers bit-identical to the
	// in-process backends. Free-running mode (false) sends optimistically
	// and discovers real losses/duplicates at the barrier.
	Deterministic bool
	// Stats, if non-nil, receives the backend-side accounting: per-node
	// receive deltas (AddRx), duplicates (AddDuplicates) and — in
	// free-running mode — real frame losses (AddLoss, applied at the
	// barrier on the dispatch goroutine). Swappable via SetStats at the
	// epoch barrier, like Chan.
	Stats *network.Stats
	// Spawn launches each shard runtime; nil selects the in-process
	// default.
	Spawn Spawner
	// MaxDatagram caps the datagram size this side is willing to send;
	// <= 0 (or anything above wire.MaxUDPPayload) means wire.MaxUDPPayload.
	// The effective per-shard limit is the min of this and the shard's
	// advertised limit — the bound batch datagrams are sealed against. A
	// frame that cannot fit even alone fails its delivery and sets the
	// transport's sticky error.
	MaxDatagram int
	// NoBatching disables datagram coalescing: every frame travels as its
	// own single-frame (0xD7) datagram, the PR 7 data plane. The A/B lever
	// for golden parity tests and benchmarks; answers and accounting are
	// identical either way, only datagram and syscall counts differ.
	NoBatching bool
	// DrainQuiet is the free-running barrier's quiet window: a shard
	// reports its round once no datagram has arrived for this long. <= 0
	// means 5ms. Chaos tests raise it to out-wait their proxy's reordering.
	DrainQuiet time.Duration
	// BarrierTimeout caps one epoch barrier's control-channel round trips
	// per shard; a shard that cannot be flushed within it is declared dead
	// (sticky error, losses attributed, no hang). <= 0 means 5s.
	BarrierTimeout time.Duration
	// AddrRewrite, if set, maps each shard's advertised UDP address to the
	// address the parent actually sends to — the seam a chaos-proxy test
	// interposes on. It runs once per shard during the join handshake.
	AddrRewrite func(shard int, addr string) string
}

// Barrier tuning shared by parent and tests.
const (
	defaultBarrierTimeout = 5 * time.Second
	joinTimeout           = 10 * time.Second
	minNegotiatedDatagram = 512
	maxDetResends         = 64
)

// udpShard is the parent's view of one shard: its process handle, control
// connection, resolved data-plane address, and the current round's send
// state (dispatch-goroutine-owned; the flush goroutines only touch it
// between EndEpoch's spawn and join, which the WaitGroup orders).
type udpShard struct {
	id          int
	proc        ShardProc
	ctrl        net.Conn
	addr        *net.UDPAddr
	maxDatagram int
	dead        bool
	// sent counts the frames (sequence numbers) assigned this round.
	sent int
	// batch is the building batch datagram, sealed into dgrams when the
	// next frame would not fit; batchBase/batchN are its first sequence
	// number and frame count.
	batch     []byte
	batchBase int
	batchN    int
	// dgrams keeps the round's sealed datagram images — the send queue, and
	// in deterministic mode the retransmission store; buffers are recycled
	// across rounds. dgramBase records each datagram's first sequence
	// number (ascending), so a missing range maps back to whole datagrams
	// by binary search.
	dgrams    [][]byte
	dgramBase []int
	// from records each seq's sender for loss attribution.
	from []int32
	// recvCalls/recvDatagrams mirror the shard's cumulative socket-level
	// receive counters from its last barrier reply (for IOStats).
	recvCalls, recvDatagrams int64
}

// UDP is the multi-process UDP transport. Construct with NewUDP; it
// implements runner.Transport, runner.EpochMarker and runner.StatsSetter.
// Like every backend, Deliver/BeginEpoch/EndEpoch are dispatch-goroutine-
// only; Close may be called from any goroutine once the run has quiesced
// and is idempotent.
type UDP struct {
	nw   *network.Net
	opts UDPOptions
	// view caches the current epoch's delivery view, exactly like Chan.
	view      network.EpochView
	viewEpoch int
	viewSet   bool
	conn      *net.UDPConn
	io        *batchio.Sender
	ioc       batchio.Counters
	// pending queues the round's sealed datagrams for one batched submit at
	// the epoch barrier.
	pending   []batchio.Message
	shards    []*udpShard
	round     uint64
	lost      atomic.Int64
	dupes     atomic.Int64
	errMu     sync.Mutex
	err       error
	closeOnce sync.Once
}

// NewUDP spawns the shard fleet, runs the join handshake (collecting each
// shard's UDP address and negotiating per-shard datagram limits) and
// returns the ready transport. On any failure it tears down whatever it
// spawned and returns the error. The caller must Close it.
func NewUDP(nw *network.Net, opts UDPOptions) (*UDP, error) {
	n := nw.Graph.N()
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.Shards > n {
		opts.Shards = n
	}
	if opts.MaxDatagram <= 0 || opts.MaxDatagram > wire.MaxUDPPayload {
		opts.MaxDatagram = wire.MaxUDPPayload
	}
	if opts.DrainQuiet <= 0 {
		opts.DrainQuiet = defaultQuietUS * time.Microsecond
	}
	if opts.BarrierTimeout <= 0 {
		opts.BarrierTimeout = defaultBarrierTimeout
	}
	if opts.Spawn == nil {
		opts.Spawn = spawnInProcess
	}
	u := &UDP{nw: nw, opts: opts, shards: make([]*udpShard, opts.Shards)}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: udp control listener: %w", err)
	}
	defer ln.Close()
	u.conn, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("transport: udp send socket: %w", err)
	}
	_ = u.conn.SetWriteBuffer(1 << 22)
	u.io = batchio.NewSender(u.conn, &u.ioc)

	fail := func(err error) (*UDP, error) {
		u.teardown()
		return nil, err
	}
	for i := 0; i < opts.Shards; i++ {
		proc, err := opts.Spawn(ln.Addr().String(), i)
		if err != nil {
			return fail(fmt.Errorf("transport: spawn shard %d: %w", i, err))
		}
		u.shards[i] = &udpShard{id: i, proc: proc}
	}
	tl, _ := ln.(*net.TCPListener)
	for joined := 0; joined < opts.Shards; joined++ {
		if tl != nil {
			//lint:ignore determinism control-plane accept deadline; join timing never reaches the epoch path
			_ = tl.SetDeadline(time.Now().Add(joinTimeout))
		}
		c, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("transport: waiting for shard joins (%d/%d): %w", joined, opts.Shards, err))
		}
		var join ctrlMsg
		//lint:ignore determinism control-plane I/O deadline; join timing never reaches the epoch path
		if err := readCtrl(c, time.Now().Add(joinTimeout), &join); err != nil {
			c.Close()
			return fail(fmt.Errorf("transport: shard join handshake: %w", err))
		}
		sh := u.shardForJoin(&join)
		if sh == nil {
			c.Close()
			return fail(fmt.Errorf("transport: invalid or duplicate shard join %+v", join))
		}
		addr := join.UDPAddr
		if opts.AddrRewrite != nil {
			addr = opts.AddrRewrite(sh.id, addr)
		}
		sh.addr, err = net.ResolveUDPAddr("udp", addr)
		if err != nil {
			c.Close()
			return fail(fmt.Errorf("transport: shard %d udp address %q: %w", sh.id, addr, err))
		}
		sh.maxDatagram = min(opts.MaxDatagram, join.MaxDatagram)
		if sh.maxDatagram < minNegotiatedDatagram {
			sh.maxDatagram = minNegotiatedDatagram
		}
		assign := ctrlMsg{
			Type: ctrlAssign, Nodes: n, Shards: opts.Shards,
			Deterministic: opts.Deterministic,
			MaxDatagram:   sh.maxDatagram,
			QuietUS:       int(opts.DrainQuiet / time.Microsecond),
		}
		//lint:ignore determinism control-plane I/O deadline; join timing never reaches the epoch path
		if err := writeCtrl(c, time.Now().Add(joinTimeout), &assign); err != nil {
			c.Close()
			return fail(fmt.Errorf("transport: shard %d assignment: %w", sh.id, err))
		}
		sh.ctrl = c
	}
	return u, nil
}

// shardForJoin matches a join message to its not-yet-joined shard slot, or
// nil if the message is invalid.
func (u *UDP) shardForJoin(join *ctrlMsg) *udpShard {
	if join.Type != ctrlJoin || join.Shard < 0 || join.Shard >= len(u.shards) {
		return nil
	}
	sh := u.shards[join.Shard]
	if sh == nil || sh.ctrl != nil || join.MaxDatagram < minNegotiatedDatagram {
		return nil
	}
	return sh
}

// nextBuf returns a recycled datagram buffer for the shard's next sealed
// datagram: the hidden capacity slot of dgrams, if one survives from a
// previous round, truncated to zero length. seal must be the next dgrams
// mutation (Deliver's batch building guarantees it: one open batch per
// shard, sealed in order).
func (sh *udpShard) nextBuf() []byte {
	if n := len(sh.dgrams); cap(sh.dgrams) > n {
		sh.dgrams = sh.dgrams[:n+1]
		buf := sh.dgrams[n][:0]
		sh.dgrams = sh.dgrams[:n]
		return buf
	}
	return nil
}

// seal records one finished datagram image — retransmission store and send
// queue entry — with base as its first sequence number.
func (u *UDP) seal(sh *udpShard, buf []byte, base int) {
	sh.dgrams = append(sh.dgrams, buf)
	sh.dgramBase = append(sh.dgramBase, base)
	u.pending = append(u.pending, batchio.Message{Buf: buf, Addr: sh.addr})
}

// sealBatch closes the shard's building batch, if any.
func (u *UDP) sealBatch(sh *udpShard) {
	if sh.batchN == 0 {
		return
	}
	u.seal(sh, sh.batch, sh.batchBase)
	sh.batch = nil
	sh.batchN = 0
}

// Deliver implements runner.Transport. In deterministic mode the verdict
// comes from the seeded loss model (surviving frames are queued, and the
// barrier guarantees exactly-once arrival); in free-running mode every
// frame is queued and optimistically reported delivered — the barrier
// settles what was really lost. Frames accumulate into batch datagrams
// (unless NoBatching) and hit the socket at EndEpoch; a false return on a
// dead shard or oversized frame lets the runner account the loss as usual.
func (u *UDP) Deliver(epoch, attempt, from, to int, frame []byte) bool {
	if u.opts.Deterministic {
		if !u.viewSet || u.viewEpoch != epoch {
			u.view = u.nw.Epoch(epoch)
			u.viewSet = true
			u.viewEpoch = epoch
		}
		if !u.view.Delivered(attempt, from, to) {
			return false
		}
	}
	sh := u.shards[to%len(u.shards)]
	if sh.dead {
		u.lost.Add(1)
		return false
	}
	seq := sh.sent
	if seq >= wire.MaxDatagramSeq {
		u.setErr(fmt.Errorf("transport: round %d exceeded %d frames to shard %d", u.round, wire.MaxDatagramSeq, sh.id))
		return false
	}
	if u.opts.NoBatching {
		buf := wire.AppendDatagram(sh.nextBuf(), u.round, seq, to, frame)
		if len(buf) > sh.maxDatagram {
			u.setErr(fmt.Errorf("transport: frame of %d bytes exceeds shard %d's negotiated datagram size %d",
				len(frame), sh.id, sh.maxDatagram))
			return false
		}
		u.seal(sh, buf, seq)
	} else {
		need := wire.BatchFrameLen(to, len(frame))
		if wire.DatagramBatchOverhead(u.round, seq)+need > sh.maxDatagram {
			u.setErr(fmt.Errorf("transport: frame of %d bytes exceeds shard %d's negotiated datagram size %d",
				len(frame), sh.id, sh.maxDatagram))
			return false
		}
		if sh.batchN > 0 && len(sh.batch)+need > sh.maxDatagram {
			u.sealBatch(sh)
		}
		if sh.batchN == 0 {
			sh.batch = wire.AppendDatagramBatch(sh.nextBuf(), u.round, seq)
			sh.batchBase = seq
		}
		sh.batch = wire.AppendBatchFrame(sh.batch, to, frame)
		sh.batchN++
	}
	sh.from = append(sh.from, int32(from))
	sh.sent++
	return true
}

// BeginEpoch implements runner.EpochMarker: advance the barrier round. The
// round counter — not the epoch number — scopes datagram sequence spaces,
// because query-set members reuse epoch numbers across their sub-rounds.
func (u *UDP) BeginEpoch(int) {
	u.round++
	for _, sh := range u.shards {
		sh.sent = 0
		sh.from = sh.from[:0]
		sh.batch = nil
		sh.batchN = 0
		sh.dgrams = sh.dgrams[:0]
		sh.dgramBase = sh.dgramBase[:0]
	}
	u.pending = u.pending[:0]
}

// EndEpoch implements runner.EpochMarker: seal the open batches, submit the
// whole round's datagrams in one batched send, then flush every shard that
// received traffic this round (concurrently — each shard has its own
// control connection) and apply the collected receive deltas, duplicates
// and free-running losses to the current Stats target on the calling
// (dispatch) goroutine, preserving the transmit-side single-writer
// contract. A shard that cannot be flushed within BarrierTimeout is
// declared dead: its round's frames are attributed as losses, the sticky
// error is set, and the run continues without it — no hang.
func (u *UDP) EndEpoch(int) {
	for _, sh := range u.shards {
		u.sealBatch(sh)
	}
	if len(u.pending) > 0 {
		if err := u.io.Send(u.pending); err != nil {
			u.setErr(fmt.Errorf("transport: batched send: %w", err))
		}
		u.pending = u.pending[:0]
	}
	var wg sync.WaitGroup
	type flushResult struct {
		done ctrlMsg
		err  error
	}
	results := make([]flushResult, len(u.shards))
	for i, sh := range u.shards {
		if sh.dead || sh.sent == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, sh *udpShard) {
			defer wg.Done()
			results[i].done, results[i].err = u.flushShard(sh)
		}(i, sh)
	}
	wg.Wait()
	st := u.opts.Stats
	for i, sh := range u.shards {
		if sh.dead || sh.sent == 0 {
			continue
		}
		res := results[i]
		if res.err != nil {
			sh.dead = true
			u.setErr(fmt.Errorf("transport: shard %d: %w", sh.id, res.err))
			// The shard is gone mid-round: how much of the round it
			// processed is unknowable, so attribute the whole round as
			// lost — the conservative reading of a crashed receiver.
			u.lost.Add(int64(sh.sent))
			if st != nil {
				for _, from := range sh.from {
					st.AddLoss(int(from))
				}
			}
			continue
		}
		sh.recvCalls = res.done.RecvCalls
		sh.recvDatagrams = res.done.RecvDatagrams
		for _, d := range res.done.Rx {
			if d.Node < 0 || d.Node >= u.nw.Graph.N() {
				continue
			}
			if st != nil {
				st.AddRx(d.Node, d.Frames, d.Bytes)
				if d.Dups > 0 {
					st.AddDuplicates(d.Node, d.Dups)
				}
			}
			u.dupes.Add(d.Dups)
		}
		for _, rng := range res.done.Missing {
			first, count := rng.First, rng.Count
			if first < 0 || count <= 0 || first >= sh.sent {
				continue
			}
			if count > sh.sent-first {
				count = sh.sent - first
			}
			u.lost.Add(int64(count))
			if st != nil {
				for seq := first; seq < first+count; seq++ {
					st.AddLoss(int(sh.from[seq]))
				}
			}
		}
	}
}

// flushShard runs one shard's barrier: flush, read done, and — in
// deterministic mode — retransmit whatever the shard reports missing until
// nothing is, the timeout expires, or the control channel fails. Missing
// sequence ranges map back to whole sealed datagram images (by binary
// search over their base sequence numbers); the shard's dedup absorbs any
// frames of a resent datagram that had in fact arrived.
func (u *UDP) flushShard(sh *udpShard) (ctrlMsg, error) {
	//lint:ignore determinism barrier liveness deadline; deterministic mode retransmits to exactly-once receipt, so timing bounds waiting, never answer bits
	deadline := time.Now().Add(u.opts.BarrierTimeout)
	var resend []batchio.Message
	for attempt := 0; ; attempt++ {
		if err := writeCtrl(sh.ctrl, deadline, &ctrlMsg{Type: ctrlFlush, Round: u.round, Sent: sh.sent}); err != nil {
			return ctrlMsg{}, fmt.Errorf("barrier flush: %w", err)
		}
		var done ctrlMsg
		if err := readCtrl(sh.ctrl, deadline, &done); err != nil {
			return ctrlMsg{}, fmt.Errorf("barrier reply: %w", err)
		}
		if done.Type != ctrlDone || done.Round != u.round {
			return ctrlMsg{}, fmt.Errorf("unexpected barrier reply %q (round %d, want %d)", done.Type, done.Round, u.round)
		}
		if !u.opts.Deterministic || len(done.Missing) == 0 {
			return done, nil
		}
		//lint:ignore determinism barrier liveness check; expiry surfaces as a sticky transport error, not a divergent answer
		if attempt >= maxDetResends || !time.Now().Before(deadline) {
			missing := 0
			for _, rng := range done.Missing {
				missing += rng.Count
			}
			return ctrlMsg{}, fmt.Errorf("%d frames still missing after %d resends", missing, attempt)
		}
		resend = resend[:0]
		last := -1
		for _, rng := range done.Missing {
			if rng.First < 0 || rng.Count <= 0 || rng.First+rng.Count > sh.sent {
				return ctrlMsg{}, fmt.Errorf("shard reported unknown seq range [%d,%d)", rng.First, rng.First+rng.Count)
			}
			di := sort.SearchInts(sh.dgramBase, rng.First+1) - 1
			if di < 0 {
				return ctrlMsg{}, fmt.Errorf("no datagram covers seq %d", rng.First)
			}
			for ; di < len(sh.dgrams) && sh.dgramBase[di] < rng.First+rng.Count; di++ {
				if di <= last {
					continue // already queued by an earlier range
				}
				resend = append(resend, batchio.Message{Buf: sh.dgrams[di], Addr: sh.addr})
				last = di
			}
		}
		if err := u.io.Send(resend); err != nil {
			return ctrlMsg{}, fmt.Errorf("retransmit: %w", err)
		}
	}
}

// SetStats redirects the backend-side accounting to s, implementing
// runner.StatsSetter under the same quiescence contract as Chan: only
// between EndEpoch and the next Deliver — exactly when a query-set mux port
// swaps members. Every UDP accounting write happens on the dispatch
// goroutine (at the barrier), so the swap needs no synchronization at all.
func (u *UDP) SetStats(s *network.Stats) { u.opts.Stats = s }

// Err returns the transport's sticky error: the first shard death, barrier
// timeout, oversized frame or socket failure. A non-nil Err means some
// deliveries were force-counted as losses; answers remain whatever the
// runner computed.
func (u *UDP) Err() error {
	u.errMu.Lock()
	defer u.errMu.Unlock()
	return u.err
}

// setErr records the first failure.
func (u *UDP) setErr(err error) {
	u.errMu.Lock()
	if u.err == nil {
		u.err = err
	}
	u.errMu.Unlock()
}

// Lost returns the frames the backend itself counted as lost: real losses
// discovered at free-running barriers, plus whole rounds attributed to dead
// shards. Deterministic-mode medium losses are not included (they never
// become datagrams). Frame-denominated: a lost batch datagram counts once
// per frame it carried.
func (u *UDP) Lost() int64 { return u.lost.Load() }

// Duplicates returns the duplicated frames shards have discarded
// (frame-denominated, like Lost).
func (u *UDP) Duplicates() int64 { return u.dupes.Load() }

// Shards returns the shard count nodes are partitioned over.
func (u *UDP) Shards() int { return len(u.shards) }

// IOStats returns the transport's socket-level counters: the parent's send
// side (live) plus the shard fleet's receive side (as of each shard's last
// barrier reply). cmd/tdbench derives datagrams/epoch and syscalls/epoch
// from deltas of this snapshot.
func (u *UDP) IOStats() batchio.Snapshot {
	s := u.ioc.Snapshot()
	for _, sh := range u.shards {
		s.RecvCalls += sh.recvCalls
		s.RecvDatagrams += sh.recvDatagrams
	}
	return s
}

// Close stops the fleet: each live shard gets a stop message (answered by
// bye), the sockets close, and every shard process is waited out — or
// killed if it will not exit. Idempotent; Deliver must not be called
// afterwards.
func (u *UDP) Close() {
	u.closeOnce.Do(u.teardown)
}

// teardown is Close's body, shared with NewUDP's failure path.
func (u *UDP) teardown() {
	for _, sh := range u.shards {
		if sh == nil || sh.ctrl == nil {
			continue
		}
		if !sh.dead {
			//lint:ignore determinism shutdown I/O deadline; teardown timing never reaches the epoch path
			dl := time.Now().Add(2 * time.Second)
			if writeCtrl(sh.ctrl, dl, &ctrlMsg{Type: ctrlStop}) == nil {
				var bye ctrlMsg
				_ = readCtrl(sh.ctrl, dl, &bye)
			}
		}
		sh.ctrl.Close()
	}
	if u.conn != nil {
		u.conn.Close()
	}
	for _, sh := range u.shards {
		if sh == nil || sh.proc == nil {
			continue
		}
		waitProc(sh.proc, 3*time.Second)
	}
}

// waitProc waits a shard process out, escalating to Kill at the timeout.
func waitProc(p ShardProc, timeout time.Duration) {
	done := make(chan struct{})
	go func() {
		_ = p.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		_ = p.Kill()
		select {
		case <-done:
		case <-time.After(time.Second):
		}
	}
}

// spawnInProcess is the default Spawner: the shard runtime runs on a
// goroutine in this process — the topology, sockets and protocol are
// identical to a separate tdnode process; only the process boundary is
// elided.
func spawnInProcess(controlAddr string, shard int) (ShardProc, error) {
	p := &inprocShard{done: make(chan error, 1)}
	go func() { p.done <- RunNode(controlAddr, shard) }()
	return p, nil
}

// inprocShard adapts the in-process shard goroutine to ShardProc.
type inprocShard struct {
	done chan error
	once sync.Once
	err  error
}

// Wait implements ShardProc.
func (p *inprocShard) Wait() error {
	p.once.Do(func() { p.err = <-p.done })
	return p.err
}

// Kill implements ShardProc: in-process shards exit when their sockets
// close, so there is nothing to kill.
func (p *inprocShard) Kill() error { return nil }

// SpawnExec returns a Spawner that launches one OS process per shard:
// `binary [args...] -control <addr> -shard <i>` — the cmd/tdnode contract.
// The children inherit this process's stderr for diagnostics.
func SpawnExec(binary string, args ...string) Spawner {
	return func(controlAddr string, shard int) (ShardProc, error) {
		argv := append(append([]string(nil), args...),
			"-control", controlAddr, "-shard", strconv.Itoa(shard))
		cmd := exec.Command(binary, argv...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &execShard{cmd: cmd}, nil
	}
}

// execShard adapts an exec'd tdnode process to ShardProc.
type execShard struct {
	cmd  *exec.Cmd
	once sync.Once
	err  error
}

// Wait implements ShardProc, memoizing the process exit status.
func (p *execShard) Wait() error {
	p.once.Do(func() { p.err = p.cmd.Wait() })
	return p.err
}

// Kill implements ShardProc with SIGKILL.
func (p *execShard) Kill() error { return p.cmd.Process.Kill() }
