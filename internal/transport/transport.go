// Package transport provides concurrent delivery backends for the runner's
// Transport seam.
//
// The default in-process simulator answers "did this frame arrive?" from
// the deterministic loss model and nothing actually moves. Chan is the
// first backend with a real node runtime behind the seam: every node runs a
// worker goroutine draining a bounded inbox channel of copied frames, a
// delivery is a message send, and an epoch barrier guarantees that every
// frame of epoch e has been processed by its receiver before epoch e+1
// begins. Medium losses still come from the same deterministic network
// model, so in Deterministic mode (blocking enqueue — a delivery is never
// refused by a full inbox) answers are bit-identical to the simulator; the
// runner's golden tests pin this. In free-running mode an enqueue races the
// receiver's drain: a full inbox drops the frame whole — the radio-buffer
// overflow of a real mote — and the drop is reported through network.Stats
// next to the medium losses.
//
// A networked backend (UDP, TCP) would keep exactly this shape: Deliver
// serializes nothing (frames arrive already encoded and self-describing),
// puts the frame on a socket, and the per-node worker becomes the remote
// node's receive loop. See DESIGN.md §5.
package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tributarydelta/internal/network"
	"tributarydelta/internal/wire"
)

// DefaultInboxCap is the per-node inbox bound used when Options.InboxCap is
// unset: a handful of frames, like a mote's radio receive queue.
const DefaultInboxCap = 64

// Options configure a Chan transport.
type Options struct {
	// InboxCap bounds each node's inbox channel; <= 0 means
	// DefaultInboxCap. In free-running mode a frame arriving at a full
	// inbox is dropped whole.
	InboxCap int
	// Deterministic makes enqueues blocking: a delivery waits for inbox
	// space instead of dropping, so the only losses are the seeded medium
	// losses and results are bit-identical to the in-process simulator.
	Deterministic bool
	// Stats, if non-nil, receives the backend-side accounting: processed
	// frames via AddRxBytes and inbox overflows via AddInboxDrop. The
	// transport keeps its own counters either way (Processed, Drops). Note
	// that the runner's ResetStats replaces its Stats object, so share a
	// Stats here only when the run does not reset it mid-flight.
	Stats *network.Stats
	// OnFrame, if set, runs on the receiving node's worker goroutine for
	// every processed frame — the hook where per-node application logic
	// (or a test) observes the decoded envelope. It must not retain env or
	// its byte slices; the backing buffer is recycled after the call.
	OnFrame func(to int, env *wire.Envelope)
}

// Chan is a goroutine-per-node concurrent transport over buffered channels.
// Construct with New; Close releases the node goroutines. Deliver follows
// the runner.Transport contract (single dispatch goroutine); BeginEpoch and
// EndEpoch implement the runner.EpochMarker barrier.
type Chan struct {
	net  *network.Net
	opts Options
	// view caches the current epoch's delivery view (the pre-folded loss
	// hash prefix); touched only by the dispatch goroutine inside Deliver.
	view      network.EpochView
	viewEpoch int
	viewSet   bool
	inboxes   []chan delivery
	done      []chan struct{}
	// pending counts frames enqueued but not yet processed; EndEpoch waits
	// for it to drain, which is the epoch barrier.
	pending sync.WaitGroup
	// bufPool recycles frame copies between deliveries.
	bufPool   sync.Pool
	processed []atomic.Int64
	drops     atomic.Int64
	epoch     atomic.Int64
	closeOnce sync.Once
}

// delivery is one in-flight frame copy.
type delivery struct {
	epoch, from int
	frame       []byte
}

// New starts one worker goroutine per node of net's graph and returns the
// transport. The caller must Close it to stop the workers.
func New(net *network.Net, opts Options) *Chan {
	if opts.InboxCap <= 0 {
		opts.InboxCap = DefaultInboxCap
	}
	n := net.Graph.N()
	c := &Chan{
		net:       net,
		opts:      opts,
		inboxes:   make([]chan delivery, n),
		done:      make([]chan struct{}, n),
		processed: make([]atomic.Int64, n),
	}
	c.bufPool.New = func() any { b := make([]byte, 0, 256); return &b }
	for v := 0; v < n; v++ {
		c.inboxes[v] = make(chan delivery, opts.InboxCap)
		c.done[v] = make(chan struct{})
		go c.run(v)
	}
	return c
}

// run is node v's runtime: drain the inbox until it closes, processing each
// frame in arrival order. Each worker owns one wire.Decoder, reset per
// frame — the zero-allocation receive path (OnFrame must not retain the
// envelope, so the scratch never outlives a frame).
func (c *Chan) run(v int) {
	defer close(c.done[v])
	var dec wire.Decoder
	for d := range c.inboxes[v] {
		c.process(v, &dec, d)
		dec.Reset()
		c.pending.Done()
	}
}

// process validates and accounts one received frame. The transport carries
// only frames the runner encoded itself, so a decode failure is a codec or
// corruption bug and panics rather than silently dropping data.
func (c *Chan) process(v int, dec *wire.Decoder, d delivery) {
	env, err := dec.Decode(d.frame)
	if err != nil {
		panic(fmt.Sprintf("transport: node %d received corrupt frame from %d: %v", v, d.from, err))
	}
	if int(env.From) != d.from {
		panic(fmt.Sprintf("transport: node %d frame claims sender %d, delivered by %d", v, env.From, d.from))
	}
	if c.opts.OnFrame != nil {
		c.opts.OnFrame(v, &env)
	}
	c.processed[v].Add(1)
	if c.opts.Stats != nil {
		c.opts.Stats.AddRxBytes(v, len(d.frame))
	}
	c.bufPool.Put(&d.frame)
}

// Deliver implements runner.Transport: consult the deterministic loss
// model, and on survival hand a copy of the frame to the receiver's worker.
// In free-running mode a full inbox refuses the frame (drop-on-full); in
// Deterministic mode the enqueue blocks until the worker makes room, so the
// return value depends only on the seeded loss model. Deliver must not be
// called after Close.
func (c *Chan) Deliver(epoch, attempt, from, to int, frame []byte) bool {
	if !c.viewSet || c.viewEpoch != epoch {
		// Deliver is dispatch-goroutine-only (see the contract above), so
		// the cached per-epoch delivery view needs no synchronization.
		c.view = c.net.Epoch(epoch)
		c.viewSet = true
		c.viewEpoch = epoch
	}
	if !c.view.Delivered(attempt, from, to) {
		return false
	}
	bp := c.bufPool.Get().(*[]byte)
	d := delivery{epoch: epoch, from: from, frame: append((*bp)[:0], frame...)}
	c.pending.Add(1)
	if c.opts.Deterministic {
		c.inboxes[to] <- d
		return true
	}
	select {
	case c.inboxes[to] <- d:
		return true
	default:
		c.pending.Done()
		c.bufPool.Put(&d.frame)
		c.drops.Add(1)
		if c.opts.Stats != nil {
			c.opts.Stats.AddInboxDrop(to)
		}
		return false
	}
}

// SetStats redirects the backend-side accounting (AddRxBytes, AddInboxDrop)
// to s, implementing runner.StatsSetter so a query-set multiplexer can
// attribute a shared transport's receive work per member. It must only be
// called while the transport is quiescent — after EndEpoch (or Close) and
// before the next Deliver — which is exactly when a mux port swaps members:
// workers observe the new target through the inbox channel's happens-before
// edge on the frames delivered afterwards.
func (c *Chan) SetStats(s *network.Stats) { c.opts.Stats = s }

// BeginEpoch implements runner.EpochMarker.
func (c *Chan) BeginEpoch(epoch int) { c.epoch.Store(int64(epoch)) }

// EndEpoch implements runner.EpochMarker: it blocks until every frame
// delivered so far has been processed by its receiver's worker — the epoch
// barrier separating round e from round e+1.
func (c *Chan) EndEpoch(int) { c.pending.Wait() }

// Epoch returns the most recent epoch begun (diagnostics).
func (c *Chan) Epoch() int { return int(c.epoch.Load()) }

// Processed returns the number of frames node v's worker has handled. Only
// quiescent reads (after EndEpoch or Close) are exact.
func (c *Chan) Processed(v int) int64 { return c.processed[v].Load() }

// TotalProcessed returns the frames handled across all nodes.
func (c *Chan) TotalProcessed() int64 {
	var t int64
	for i := range c.processed {
		t += c.processed[i].Load()
	}
	return t
}

// Drops returns the number of frames refused by full inboxes (always zero
// in Deterministic mode).
func (c *Chan) Drops() int64 { return c.drops.Load() }

// Close drains outstanding deliveries and stops every node goroutine. It is
// idempotent; Deliver must not be called afterwards.
func (c *Chan) Close() {
	c.closeOnce.Do(func() {
		c.pending.Wait()
		for _, in := range c.inboxes {
			close(in)
		}
		for _, d := range c.done {
			<-d
		}
	})
}
