package transport

// The UDP backend's shard runtime: one process (or goroutine) hosting the
// receive side of a contiguous residue class of nodes (node v lives on
// shard v mod shards). The shard listens on its own UDP socket, decodes and
// deduplicates every arriving frame — datagrams carry either a single frame
// (0xD7) or a coalesced batch of them (0xD8) — and answers the parent's
// barrier flushes over the control channel with receipts, missing sequence
// ranges and per-node receive deltas.
//
// Everything read from the UDP socket is untrusted: the datagram header,
// the batch entries and the enclosed envelopes are decoded with the
// bounds-checked wire readers, and any failure — bad magic, truncated
// varint, out-of-range node, corrupt envelope — increments a malformed
// counter and drops the frame (a hostile entry inside a batch drops only
// itself; the rest of the batch is still honored). The receive path must
// never panic on arbitrary bytes (FuzzShardReceive and
// FuzzShardReceiveBatch pin this), unlike the in-process Chan transport,
// which only ever carries frames the runner itself encoded and treats
// corruption as a bug.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"tributarydelta/internal/transport/batchio"
	"tributarydelta/internal/wire"
)

// Shard runtime timing: how long a deterministic-mode flush waits for
// in-flight datagrams before reporting them missing (the parent then
// retransmits and re-flushes), and the I/O deadline on control replies.
const (
	detFlushWait   = 25 * time.Millisecond
	ctrlIOTimeout  = 10 * time.Second
	dialNodeWait   = 10 * time.Second
	defaultQuietUS = 5000
)

// RunNode hosts one UDP shard: it dials the parent's control address,
// joins, and serves the shard until the parent sends stop (returning nil)
// or the control connection fails (returning the error). It is the entire
// body of the cmd/tdnode binary and of the in-process default spawner.
func RunNode(controlAddr string, shard int) error {
	conn, err := net.DialTimeout("tcp", controlAddr, dialNodeWait)
	if err != nil {
		return fmt.Errorf("transport: shard %d dial control %s: %w", shard, controlAddr, err)
	}
	defer conn.Close()
	return serveShard(conn, shard)
}

// shardState is one shard's receive-side state for the current barrier
// round. The receive goroutine and the control loop share it under mu;
// arrival carries a non-blocking wakeup per accepted datagram so a flush
// can wait for stragglers without polling.
type shardState struct {
	shard, shards, nodes int
	det                  bool
	quiet                time.Duration
	udp                  *net.UDPConn
	// io accumulates the socket-level receive counters, reported to the
	// parent in every done reply.
	io batchio.Counters

	mu      sync.Mutex
	arrival chan struct{}
	round   uint64
	// seen is the round's dedup bitset over sequence numbers; capacity is
	// bounded by wire.MaxDatagramSeq regardless of input.
	seen        []uint64
	unique      int
	received    int64
	lastArrival time.Time
	// rxFrames/rxBytes/dups are per-local-node deltas for the round,
	// indexed by v/shards.
	rxFrames, rxBytes, dups []int64
	malformed               int64
	stale                   int64
}

// localCount returns how many nodes of [0, nodes) live on this shard.
func localCount(nodes, shards, shard int) int {
	if shard >= nodes {
		return 0
	}
	return (nodes - shard + shards - 1) / shards
}

// serveShard runs the shard protocol over an established control
// connection: join, receive, answer flushes, stop.
func serveShard(conn net.Conn, shard int) error {
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return fmt.Errorf("transport: shard %d listen udp: %w", shard, err)
	}
	defer udp.Close()
	_ = udp.SetReadBuffer(1 << 22)

	join := ctrlMsg{Type: ctrlJoin, Shard: shard, UDPAddr: udp.LocalAddr().String(), MaxDatagram: wire.MaxUDPPayload}
	//lint:ignore determinism control-plane I/O deadline; join timing never reaches the epoch path
	if err := writeCtrl(conn, time.Now().Add(ctrlIOTimeout), &join); err != nil {
		return fmt.Errorf("transport: shard %d join: %w", shard, err)
	}
	var assign ctrlMsg
	//lint:ignore determinism control-plane I/O deadline; join timing never reaches the epoch path
	if err := readCtrl(conn, time.Now().Add(ctrlIOTimeout), &assign); err != nil {
		return fmt.Errorf("transport: shard %d await assign: %w", shard, err)
	}
	if assign.Type != ctrlAssign || assign.Nodes <= 0 || assign.Shards <= 0 || shard >= assign.Shards {
		return fmt.Errorf("transport: shard %d got invalid assignment %+v", shard, assign)
	}
	quiet := time.Duration(assign.QuietUS) * time.Microsecond
	if quiet <= 0 {
		quiet = defaultQuietUS * time.Microsecond
	}
	s := newShardState(assign.Nodes, assign.Shards, shard, assign.Deterministic, quiet)
	s.udp = udp

	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		s.receive()
	}()

	for {
		var m ctrlMsg
		if err := readCtrl(conn, time.Time{}, &m); err != nil {
			udp.Close()
			<-recvDone
			return fmt.Errorf("transport: shard %d control channel: %w", shard, err)
		}
		switch m.Type {
		case ctrlFlush:
			reply := s.flush(&m)
			//lint:ignore determinism control-plane I/O deadline; barrier reply timing never reaches the epoch path
			if err := writeCtrl(conn, time.Now().Add(ctrlIOTimeout), reply); err != nil {
				udp.Close()
				<-recvDone
				return fmt.Errorf("transport: shard %d flush reply: %w", shard, err)
			}
		case ctrlStop:
			//lint:ignore determinism shutdown I/O deadline; teardown timing never reaches the epoch path
			_ = writeCtrl(conn, time.Now().Add(ctrlIOTimeout), &ctrlMsg{Type: ctrlBye})
			udp.Close()
			<-recvDone
			return nil
		default:
			// Unknown control messages are skipped: the reliable channel is
			// parent-owned, so tolerance here only buys forward compatibility.
		}
	}
}

// newShardState builds the receive-side state for one shard assignment.
func newShardState(nodes, shards, shard int, det bool, quiet time.Duration) *shardState {
	locals := localCount(nodes, shards, shard)
	return &shardState{
		shard: shard, shards: shards, nodes: nodes,
		det:      det,
		quiet:    quiet,
		arrival:  make(chan struct{}, 1),
		rxFrames: make([]int64, locals),
		rxBytes:  make([]int64, locals),
		dups:     make([]int64, locals),
	}
}

// receive drains the UDP socket until it closes, a batch of datagrams per
// syscall, into pooled buffers. One decoder serves the whole loop, reset
// per frame.
func (s *shardState) receive() {
	rcv := batchio.NewReceiver(s.udp, &s.io)
	var dec wire.Decoder
	for {
		n, err := rcv.Recv()
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			s.handleDatagram(&dec, rcv.Datagram(i))
		}
	}
}

// handleDatagram dispatches one datagram of arbitrary (untrusted) bytes on
// its magic: a coalesced batch or the single-frame format. Malformed input
// of any shape is counted and dropped; nothing here may panic or allocate
// proportionally to a hostile header field.
//
//td:hotpath
func (s *shardState) handleDatagram(dec *wire.Decoder, data []byte) {
	if wire.DatagramIsBatch(data) {
		s.handleBatch(dec, data)
		return
	}
	d, err := wire.DecodeDatagram(data)
	if err != nil || !s.frameOK(dec, d.To, d.Frame) {
		s.addMalformed()
		return
	}
	s.mu.Lock()
	if !s.enterRoundLocked(d.Round) {
		s.mu.Unlock()
		return
	}
	s.acceptLocked(d.Seq, d.To, len(d.Frame))
	s.mu.Unlock()
	s.wake()
}

// handleBatch validates, deduplicates and accounts every frame of one batch
// datagram. A hostile entry drops only itself (counted malformed); a
// malformed tail after the last decodable entry counts once. The whole
// batch shares one round check — the parent never mixes rounds within a
// datagram, and a straggler batch from a superseded round is counted stale
// once, like a straggler single.
//
//td:hotpath
func (s *shardState) handleBatch(dec *wire.Decoder, data []byte) {
	b, err := wire.DecodeDatagramBatch(data)
	if err != nil {
		s.addMalformed()
		return
	}
	s.mu.Lock()
	if !s.enterRoundLocked(b.Round) {
		s.mu.Unlock()
		return
	}
	accepted := 0
	for b.Next() {
		if !s.frameOK(dec, b.To(), b.Frame()) {
			s.malformed++
			continue
		}
		s.acceptLocked(b.Seq(), b.To(), len(b.Frame()))
		accepted++
	}
	if b.Err() != nil {
		s.malformed++
	}
	s.mu.Unlock()
	if accepted > 0 {
		s.wake()
	}
}

// frameOK validates one frame's addressing and envelope: the receiver must
// be a node of this shard and the envelope must decode with an in-range
// sender. The decoder is reset after each use, so its arena never outlives
// the frame.
//
//td:hotpath
func (s *shardState) frameOK(dec *wire.Decoder, to int, frame []byte) bool {
	if to >= s.nodes || to%s.shards != s.shard {
		return false
	}
	env, err := dec.Decode(frame)
	ok := err == nil && int(env.From) < s.nodes
	dec.Reset()
	return ok
}

// enterRoundLocked folds a datagram's round into the shard's: a straggler
// from a superseded round is counted stale and rejected (its barrier
// already closed), a newer round resets the state. Callers hold mu.
func (s *shardState) enterRoundLocked(round uint64) bool {
	switch {
	case round < s.round:
		s.stale++
		return false
	case round > s.round:
		s.resetRoundLocked(round)
	}
	return true
}

// acceptLocked deduplicates and accounts one validated frame. Callers hold
// mu; the caller guarantees seq < wire.MaxDatagramSeq (the decoders bound
// it), so the bitset stays bounded.
//
//td:hotpath
func (s *shardState) acceptLocked(seq, to, frameLen int) {
	s.received++
	//lint:ignore determinism free-running arrival clock for the quiet-period drain; deterministic mode synchronizes on seq receipt, not time
	s.lastArrival = time.Now()
	w, bit := seq>>6, uint64(1)<<(uint(seq)&63)
	for w >= len(s.seen) {
		s.seen = append(s.seen, 0)
	}
	li := to / s.shards
	if s.seen[w]&bit != 0 {
		s.dups[li]++
	} else {
		s.seen[w] |= bit
		s.unique++
		s.rxFrames[li]++
		s.rxBytes[li] += int64(frameLen)
	}
}

// wake nudges a waiting flush without blocking the receive loop.
func (s *shardState) wake() {
	select {
	case s.arrival <- struct{}{}:
	default:
	}
}

// addMalformed counts one dropped hostile/corrupt datagram.
func (s *shardState) addMalformed() {
	s.mu.Lock()
	s.malformed++
	s.mu.Unlock()
}

// resetRoundLocked advances to a new barrier round, discarding the previous
// round's dedup and delta state (already reported, or empty). Callers hold mu.
func (s *shardState) resetRoundLocked(round uint64) {
	s.round = round
	for i := range s.seen {
		s.seen[i] = 0
	}
	s.unique = 0
	s.received = 0
	s.lastArrival = time.Time{}
	for i := range s.rxFrames {
		s.rxFrames[i] = 0
		s.rxBytes[i] = 0
		s.dups[i] = 0
	}
}

// flush answers one barrier flush: wait for the round's traffic to settle,
// then report what arrived. In deterministic mode the wait is short and the
// reply lists missing sequence ranges for the parent to retransmit — the
// barrier converges to exactly-once. In free-running mode the wait is a
// quiet period since the last arrival (so trailing duplicates and
// reordered stragglers are counted), and whatever is missing then is
// reported as genuinely lost.
func (s *shardState) flush(m *ctrlMsg) *ctrlMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.Round > s.round {
		s.resetRoundLocked(m.Round)
	}
	if m.Round < s.round {
		// A stale flush for a superseded round: nothing left to report.
		return &ctrlMsg{Type: ctrlDone, Round: m.Round}
	}
	if m.Sent > wire.MaxDatagramSeq {
		m.Sent = wire.MaxDatagramSeq
	}
	if s.det {
		//lint:ignore determinism barrier liveness deadline; deterministic mode waits for exactly-once receipt, timing only bounds the wait
		deadline := time.Now().Add(detFlushWait)
		for s.unique < m.Sent {
			if !s.waitArrivalLocked(deadline) {
				break
			}
		}
	} else {
		// Quiet-period drain: wait until no datagram has arrived for the
		// quiet window, anchored at the flush itself when the round saw no
		// traffic at all — so total loss still terminates after one window.
		anchor := s.lastArrival
		if anchor.IsZero() {
			//lint:ignore determinism free-running quiet-period anchor; this branch only paces the lossy drain
			anchor = time.Now()
		}
		for {
			if !s.lastArrival.IsZero() {
				anchor = s.lastArrival
			}
			//lint:ignore determinism free-running quiet-period drain; real arrival timing is the point of this mode
			idle := time.Since(anchor)
			if idle >= s.quiet {
				break
			}
			//lint:ignore determinism free-running quiet-period drain; real arrival timing is the point of this mode
			s.waitArrivalLocked(time.Now().Add(s.quiet - idle))
		}
	}
	io := s.io.Snapshot()
	reply := &ctrlMsg{
		Type: ctrlDone, Round: m.Round,
		Received: s.received, Malformed: s.malformed,
		RecvCalls: io.RecvCalls, RecvDatagrams: io.RecvDatagrams,
	}
	if s.unique < m.Sent {
		// Collapse the missing sequence numbers into maximal runs: a lost
		// batch datagram takes a contiguous range with it, so the list stays
		// short even when whole datagrams vanish.
		run := 0
		for seq := 0; seq < m.Sent; seq++ {
			if w := seq >> 6; w >= len(s.seen) || s.seen[w]&(uint64(1)<<(uint(seq)&63)) == 0 {
				run++
				continue
			}
			if run > 0 {
				reply.Missing = append(reply.Missing, seqRange{First: seq - run, Count: run})
				run = 0
			}
		}
		if run > 0 {
			reply.Missing = append(reply.Missing, seqRange{First: m.Sent - run, Count: run})
		}
	}
	if !s.det || len(reply.Missing) == 0 {
		// Terminal reply: attach the round's per-node receive deltas. (A
		// deterministic reply with missing ranges triggers a resend and a
		// re-flush; the parent applies deltas only from the terminal one.)
		for li := range s.rxFrames {
			if s.rxFrames[li] == 0 && s.dups[li] == 0 {
				continue
			}
			reply.Rx = append(reply.Rx, rxDelta{
				Node:   s.shard + li*s.shards,
				Frames: s.rxFrames[li],
				Bytes:  s.rxBytes[li],
				Dups:   s.dups[li],
			})
		}
	}
	return reply
}

// waitArrivalLocked releases mu, waits for either a datagram arrival or the
// deadline, and reacquires mu. It reports whether an arrival (rather than
// the deadline) woke it; the caller re-evaluates its exit condition after
// every wakeup.
func (s *shardState) waitArrivalLocked(deadline time.Time) bool {
	//lint:ignore determinism condition-wait timeout plumbing; wakeup timing never reaches the epoch path
	wait := time.Until(deadline)
	if wait <= 0 {
		return false
	}
	s.mu.Unlock()
	defer s.mu.Lock()
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-s.arrival:
		return true
	case <-timer.C:
		return false
	}
}
