package transport

// The UDP backend's control channel: a TCP loopback connection per shard.
// The data plane (datagrams) is lossy by nature; the control plane is the
// reliable spine the barrier is built on — join/assign at startup, flush/done
// at every epoch barrier, stop/bye at shutdown. Frames are 4-byte big-endian
// length + body, with the length capped so a hostile or corrupted peer
// cannot force a giant allocation.
//
// The body comes in two encodings, discriminated by its first byte. The
// cold messages (join, assign, stop, bye — a handful per fleet lifetime)
// stay JSON: self-describing, easy to extend, and their first byte '{' can
// never collide with the binary magics. The hot messages (flush and done —
// two per shard per epoch barrier) are fixed-layout binary frames built on
// the wire package's varint primitives: a done reply for a clean round is
// ~10 bytes against ~60 of JSON, and neither direction touches a reflection
// marshaller on the epoch path. Missing sequence numbers travel as *ranges*
// (first, count): a lost batch datagram takes a contiguous seq run with it,
// so ranges are the natural unit of retransmission — and a fully-lost
// 10k-frame round costs one range, not a 10k-element array.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"tributarydelta/internal/wire"
)

// Control message types.
const (
	ctrlJoin   = "join"   // shard → parent: here I am, my UDP address, my max datagram
	ctrlAssign = "assign" // parent → shard: topology, mode, negotiated datagram size
	ctrlFlush  = "flush"  // parent → shard: barrier — round r had `sent` frames for you
	ctrlDone   = "done"   // shard → parent: barrier reply — receipts, missing ranges, rx deltas
	ctrlStop   = "stop"   // parent → shard: shut down
	ctrlBye    = "bye"    // shard → parent: shutting down
)

// Binary control frame magics: the first body byte of the two hot barrier
// messages. JSON bodies start with '{' (0x7B), so the dispatch in readCtrl
// is a single byte compare.
const (
	ctrlBinFlush byte = 0xF5
	ctrlBinDone  byte = 0xF6
)

// maxCtrlFrame bounds one control frame. The largest legitimate message is
// a done reply carrying per-node receive deltas plus a missing-range list —
// generously under this cap for any supported fleet.
const maxCtrlFrame = 8 << 20

// rxDelta is one node's receive-side accounting for one barrier round,
// reported by its shard in the done reply.
type rxDelta struct {
	// Node is the receiving node id.
	Node int `json:"node"`
	// Frames and Bytes count the unique envelope frames (and their encoded
	// bytes) the node's runtime processed this round.
	Frames int64 `json:"frames"`
	// Bytes is the byte-denominated companion of Frames.
	Bytes int64 `json:"bytes"`
	// Dups counts duplicated frames discarded after deduplication.
	Dups int64 `json:"dups,omitempty"`
}

// seqRange is a contiguous run of missing sequence numbers [First,
// First+Count) in a done reply — the retransmission unit of the barrier.
type seqRange struct {
	// First is the first missing sequence number of the run.
	First int `json:"first"`
	// Count is the run length (always >= 1).
	Count int `json:"count"`
}

// ctrlMsg is the union of all control messages; Type selects which fields
// are meaningful.
type ctrlMsg struct {
	Type string `json:"type"`

	// join fields (shard → parent).
	Shard       int    `json:"shard,omitempty"`
	UDPAddr     string `json:"udpAddr,omitempty"`
	MaxDatagram int    `json:"maxDatagram,omitempty"`

	// assign fields (parent → shard); MaxDatagram carries the negotiated
	// size (the min of both sides' limits).
	Nodes         int  `json:"nodes,omitempty"`
	Shards        int  `json:"shards,omitempty"`
	Deterministic bool `json:"deterministic,omitempty"`
	QuietUS       int  `json:"quietUs,omitempty"`

	// flush fields (parent → shard): the barrier round and how many frames
	// (sequence numbers) were sent to this shard in it. done echoes Round.
	Round uint64 `json:"round,omitempty"`
	Sent  int    `json:"sent,omitempty"`

	// done fields (shard → parent). RecvCalls/RecvDatagrams are the shard's
	// cumulative socket-level receive counters, reported so the parent's
	// IOStats can cover both ends of the data plane.
	Received      int64      `json:"received,omitempty"`
	Malformed     int64      `json:"malformed,omitempty"`
	RecvCalls     int64      `json:"recvCalls,omitempty"`
	RecvDatagrams int64      `json:"recvDatagrams,omitempty"`
	Missing       []seqRange `json:"missing,omitempty"`
	Rx            []rxDelta  `json:"rx,omitempty"`
}

// appendBinFlush encodes a flush message: magic, round, sent.
func appendBinFlush(dst []byte, m *ctrlMsg) []byte {
	dst = append(dst, ctrlBinFlush)
	dst = wire.AppendUvarint(dst, m.Round)
	return wire.AppendUvarint(dst, uint64(m.Sent))
}

// decodeBinFlush parses a binary flush body into m (already zeroed).
func decodeBinFlush(body []byte, m *ctrlMsg) error {
	r := wire.NewReader(body)
	r.Byte() // magic, dispatched on by the caller
	m.Round = r.Uvarint()
	sent := r.Uvarint()
	if r.Err() == nil && sent > wire.MaxDatagramSeq {
		return wire.ErrMalformed
	}
	m.Sent = int(sent)
	m.Type = ctrlFlush
	return r.Finish()
}

// appendBinDone encodes a done reply: magic, round, the round's receipt
// counters, the shard's cumulative socket counters, then the missing-range
// and rx-delta lists, each count-prefixed.
func appendBinDone(dst []byte, m *ctrlMsg) []byte {
	dst = append(dst, ctrlBinDone)
	dst = wire.AppendUvarint(dst, m.Round)
	dst = wire.AppendUvarint(dst, uint64(m.Received))
	dst = wire.AppendUvarint(dst, uint64(m.Malformed))
	dst = wire.AppendUvarint(dst, uint64(m.RecvCalls))
	dst = wire.AppendUvarint(dst, uint64(m.RecvDatagrams))
	dst = wire.AppendUvarint(dst, uint64(len(m.Missing)))
	for _, rng := range m.Missing {
		dst = wire.AppendUvarint(dst, uint64(rng.First))
		dst = wire.AppendUvarint(dst, uint64(rng.Count))
	}
	dst = wire.AppendUvarint(dst, uint64(len(m.Rx)))
	for _, d := range m.Rx {
		dst = wire.AppendUvarint(dst, uint64(d.Node))
		dst = wire.AppendUvarint(dst, uint64(d.Frames))
		dst = wire.AppendUvarint(dst, uint64(d.Bytes))
		dst = wire.AppendUvarint(dst, uint64(d.Dups))
	}
	return dst
}

// decodeBinDone parses a binary done body into m (already zeroed). Counts
// are validated against the bytes actually present and ranges against the
// bounded sequence space, so a corrupt peer cannot force a huge allocation.
func decodeBinDone(body []byte, m *ctrlMsg) error {
	r := wire.NewReader(body)
	r.Byte() // magic, dispatched on by the caller
	m.Round = r.Uvarint()
	m.Received = int64(r.Uvarint())
	m.Malformed = int64(r.Uvarint())
	m.RecvCalls = int64(r.Uvarint())
	m.RecvDatagrams = int64(r.Uvarint())
	nm := r.Count(2)
	for i := 0; i < nm; i++ {
		first := r.Uvarint()
		count := r.Uvarint()
		if r.Err() != nil {
			break
		}
		if count == 0 || first >= wire.MaxDatagramSeq || count > wire.MaxDatagramSeq-first {
			return wire.ErrMalformed
		}
		m.Missing = append(m.Missing, seqRange{First: int(first), Count: int(count)})
	}
	nr := r.Count(4)
	for i := 0; i < nr; i++ {
		m.Rx = append(m.Rx, rxDelta{
			Node:   int(r.Uvarint()),
			Frames: int64(r.Uvarint()),
			Bytes:  int64(r.Uvarint()),
			Dups:   int64(r.Uvarint()),
		})
	}
	m.Type = ctrlDone
	return r.Finish()
}

// writeCtrl sends one framed control message, honoring the deadline (zero
// means none). Barrier messages take the binary encoding; everything else
// is JSON.
func writeCtrl(conn net.Conn, deadline time.Time, m *ctrlMsg) error {
	var body []byte
	switch m.Type {
	case ctrlFlush:
		body = appendBinFlush(make([]byte, 0, 2*wire.MaxUvarintLen+1), m)
	case ctrlDone:
		body = appendBinDone(nil, m)
	default:
		var err error
		body, err = json.Marshal(m)
		if err != nil {
			return err
		}
	}
	if len(body) > maxCtrlFrame {
		return fmt.Errorf("transport: control frame of %d bytes exceeds cap", len(body))
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	if err := conn.SetWriteDeadline(deadline); err != nil {
		return err
	}
	_, err := conn.Write(buf)
	return err
}

// readCtrl receives one framed control message into m, honoring the
// deadline (zero means none). The advertised length is validated before any
// allocation; the body's first byte selects the binary or JSON decoder.
func readCtrl(conn net.Conn, deadline time.Time, m *ctrlMsg) error {
	if err := conn.SetReadDeadline(deadline); err != nil {
		return err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxCtrlFrame {
		return fmt.Errorf("transport: control frame of %d bytes exceeds cap", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		return err
	}
	*m = ctrlMsg{}
	if len(body) == 0 {
		return wire.ErrMalformed
	}
	switch body[0] {
	case ctrlBinFlush:
		return decodeBinFlush(body, m)
	case ctrlBinDone:
		return decodeBinDone(body, m)
	default:
		return json.Unmarshal(body, m)
	}
}
