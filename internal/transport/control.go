package transport

// The UDP backend's control channel: a TCP loopback connection per shard
// carrying length-prefixed JSON messages. The data plane (datagrams) is
// lossy by nature; the control plane is the reliable spine the barrier is
// built on — join/assign at startup, flush/done at every epoch barrier,
// stop/bye at shutdown. Frames are 4-byte big-endian length + JSON body,
// with the length capped so a hostile or corrupted peer cannot force a
// giant allocation.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"
)

// Control message types.
const (
	ctrlJoin   = "join"   // shard → parent: here I am, my UDP address, my max datagram
	ctrlAssign = "assign" // parent → shard: topology, mode, negotiated datagram size
	ctrlFlush  = "flush"  // parent → shard: barrier — round r had `sent` datagrams for you
	ctrlDone   = "done"   // shard → parent: barrier reply — receipts, missing seqs, rx deltas
	ctrlStop   = "stop"   // parent → shard: shut down
	ctrlBye    = "bye"    // shard → parent: shutting down
)

// maxCtrlFrame bounds one control frame. The largest legitimate message is
// a done reply carrying per-node receive deltas plus a missing-sequence
// list — generously under this cap for any supported fleet.
const maxCtrlFrame = 8 << 20

// rxDelta is one node's receive-side accounting for one barrier round,
// reported by its shard in the done reply.
type rxDelta struct {
	// Node is the receiving node id.
	Node int `json:"node"`
	// Frames and Bytes count the unique envelope frames (and their encoded
	// bytes) the node's runtime processed this round.
	Frames int64 `json:"frames"`
	// Bytes is the byte-denominated companion of Frames.
	Bytes int64 `json:"bytes"`
	// Dups counts duplicated datagrams discarded after deduplication.
	Dups int64 `json:"dups,omitempty"`
}

// ctrlMsg is the union of all control messages; Type selects which fields
// are meaningful.
type ctrlMsg struct {
	Type string `json:"type"`

	// join fields (shard → parent).
	Shard       int    `json:"shard,omitempty"`
	UDPAddr     string `json:"udpAddr,omitempty"`
	MaxDatagram int    `json:"maxDatagram,omitempty"`

	// assign fields (parent → shard); MaxDatagram carries the negotiated
	// size (the min of both sides' limits).
	Nodes         int  `json:"nodes,omitempty"`
	Shards        int  `json:"shards,omitempty"`
	Deterministic bool `json:"deterministic,omitempty"`
	QuietUS       int  `json:"quietUs,omitempty"`

	// flush fields (parent → shard): the barrier round and how many
	// datagrams were sent to this shard in it. done echoes Round.
	Round uint64 `json:"round,omitempty"`
	Sent  int    `json:"sent,omitempty"`

	// done fields (shard → parent).
	Received  int64     `json:"received,omitempty"`
	Malformed int64     `json:"malformed,omitempty"`
	Missing   []int     `json:"missing,omitempty"`
	Rx        []rxDelta `json:"rx,omitempty"`
}

// writeCtrl sends one framed control message, honoring the deadline (zero
// means none).
func writeCtrl(conn net.Conn, deadline time.Time, m *ctrlMsg) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if len(body) > maxCtrlFrame {
		return fmt.Errorf("transport: control frame of %d bytes exceeds cap", len(body))
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	if err := conn.SetWriteDeadline(deadline); err != nil {
		return err
	}
	_, err = conn.Write(buf)
	return err
}

// readCtrl receives one framed control message into m, honoring the
// deadline (zero means none). The advertised length is validated before any
// allocation.
func readCtrl(conn net.Conn, deadline time.Time, m *ctrlMsg) error {
	if err := conn.SetReadDeadline(deadline); err != nil {
		return err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxCtrlFrame {
		return fmt.Errorf("transport: control frame of %d bytes exceeds cap", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		return err
	}
	*m = ctrlMsg{}
	return json.Unmarshal(body, m)
}
