package transport_test

// Barrier edge cases for the coalesced data plane: a flush landing on a
// partially-filled batch, rounds whose batches straddle the negotiated
// datagram size, range-retransmission of a fully-lost round, and a shard
// killed between Deliver and the barrier (datagrams still unsent — the
// sends are deferred to EndEpoch).

import (
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"tributarydelta/internal/network"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/transport"
)

// TestUDPFlushMidBatch pins the seal-at-barrier path: a round small enough
// that no batch fills up must still deliver every frame exactly once — the
// barrier seals the open batch, and the whole round rides one datagram.
func TestUDPFlushMidBatch(t *testing.T) {
	f := newFixture(11, 40)
	nw := network.New(f.g, network.Global{P: 0}, 11)
	stats := network.NewStats(f.g.N())
	u, err := transport.NewUDP(nw, transport.UDPOptions{Shards: 2, Deterministic: true, Stats: stats})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer u.Close()

	u.BeginEpoch(0)
	const frames = 3
	for i := 0; i < frames; i++ {
		if !u.Deliver(0, 0, 2, 1+2*i, treeFrame(0, 2)) { // odd receivers: all shard 1
			t.Fatalf("lossless delivery %d refused", i)
		}
	}
	u.EndEpoch(0)
	if err := u.Err(); err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if got := stats.TotalRxFrames(); got != frames {
		t.Fatalf("barrier delivered %d unique frames, want %d", got, frames)
	}
	if io := u.IOStats(); io.SentDatagrams >= frames {
		t.Fatalf("partial batch was not coalesced: %d datagrams for %d frames", io.SentDatagrams, frames)
	}
}

// TestUDPBatchStraddlesMaxDatagram drives a round whose frames overflow the
// negotiated datagram size many times over: batches must seal at the
// boundary (no datagram may exceed it), the round spreads across several
// datagrams, and the barrier still converges to exactly-once.
func TestUDPBatchStraddlesMaxDatagram(t *testing.T) {
	f := newFixture(12, 40)
	nw := network.New(f.g, network.Global{P: 0}, 12)
	stats := network.NewStats(f.g.N())
	const maxDG = 512 // the negotiation floor
	u, err := transport.NewUDP(nw, transport.UDPOptions{
		Shards: 2, Deterministic: true, Stats: stats, MaxDatagram: maxDG,
	})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer u.Close()

	before := u.IOStats()
	u.BeginEpoch(0)
	const frames = 400
	var bytes int64
	for i := 0; i < frames; i++ {
		frame := treeFrame(0, 2+i%7)
		bytes += int64(len(frame))
		if !u.Deliver(0, 0, 2+i%7, 1, frame) {
			t.Fatalf("lossless delivery %d refused", i)
		}
	}
	u.EndEpoch(0)
	if err := u.Err(); err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if got := stats.TotalRxFrames(); got != frames {
		t.Fatalf("barrier delivered %d unique frames, want %d", got, frames)
	}
	io := u.IOStats().Sub(before)
	if io.SentDatagrams < bytes/maxDG {
		t.Fatalf("%d bytes of frames crossed in %d datagrams — some must have exceeded the %d cap",
			bytes, io.SentDatagrams, maxDG)
	}
	if io.SentDatagrams == frames {
		t.Fatalf("no coalescing: %d datagrams for %d frames", io.SentDatagrams, frames)
	}
	if avg := io.SentBytes / io.SentDatagrams; avg > maxDG {
		t.Fatalf("average datagram %d bytes exceeds negotiated size %d", avg, maxDG)
	}
}

// firstCopyDropProxy forwards datagrams to dst but swallows the first copy
// of every distinct packet image. Against a deterministic barrier this
// deletes a round's entire first transmission — every datagram, every batch
// — and lets the range-driven retransmission (identical images) through.
type firstCopyDropProxy struct {
	ln  *net.UDPConn
	dst *net.UDPAddr

	mu      sync.Mutex
	seen    map[string]bool
	dropped int64
}

func newFirstCopyDropProxy(t *testing.T, dst string) *firstCopyDropProxy {
	t.Helper()
	addr, err := net.ResolveUDPAddr("udp", dst)
	if err != nil {
		t.Fatalf("proxy resolve %q: %v", dst, err)
	}
	ln, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &firstCopyDropProxy{ln: ln, dst: addr, seen: make(map[string]bool)}
	t.Cleanup(func() { ln.Close() })
	go p.run()
	return p
}

func (p *firstCopyDropProxy) run() {
	buf := make([]byte, 1<<16)
	for {
		n, _, err := p.ln.ReadFromUDP(buf)
		if err != nil {
			return
		}
		p.mu.Lock()
		key := string(buf[:n])
		if !p.seen[key] {
			p.seen[key] = true
			p.dropped++
			p.mu.Unlock()
			continue
		}
		p.mu.Unlock()
		_, _ = p.ln.WriteToUDP(buf[:n], p.dst)
	}
}

func (p *firstCopyDropProxy) drops() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// TestUDPRangeRetransmitFullyLostRound interposes a first-copy-drop proxy
// on every shard: each round's entire first transmission vanishes, so every
// barrier reports the full sequence space missing — one range — and must
// recover by resending whole datagram images. Answers stay identical to the
// simulator and the deterministic backend counts no losses.
func TestUDPRangeRetransmitFullyLostRound(t *testing.T) {
	seed := uint64(13)
	f := newFixture(seed, 80)
	simNet := network.New(f.g, network.Global{P: 0.2}, seed)
	udpNet := network.New(f.g, network.Global{P: 0.2}, seed)
	stats := network.NewStats(f.g.N())
	var mu sync.Mutex
	proxies := make(map[int]*firstCopyDropProxy)
	u, err := transport.NewUDP(udpNet, transport.UDPOptions{
		Shards:        4,
		Deterministic: true,
		Stats:         stats,
		AddrRewrite: func(shard int, addr string) string {
			p := newFirstCopyDropProxy(t, addr)
			mu.Lock()
			proxies[shard] = p
			mu.Unlock()
			return p.addrStr()
		},
	})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer u.Close()

	simR := countRunner(t, f, runner.ModeTree, simNet, seed, nil)
	udpR := countRunner(t, f, runner.ModeTree, udpNet, seed, u)
	for e := 0; e < 8; e++ {
		sim, up := simR.RunEpoch(e), udpR.RunEpoch(e)
		if sim != up {
			t.Fatalf("epoch %d: simulator %+v, retransmitting udp %+v", e, sim, up)
		}
	}
	if err := u.Err(); err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if u.Lost() != 0 {
		t.Fatalf("deterministic barrier counted %d losses despite retransmission", u.Lost())
	}
	var dropped int64
	for _, p := range proxies {
		dropped += p.drops()
	}
	if dropped == 0 {
		t.Fatal("proxy dropped nothing: the retransmit path was never exercised")
	}
}

func (p *firstCopyDropProxy) addrStr() string { return p.ln.LocalAddr().String() }

// TestUDPShardDeathMidBatch kills one tdnode process after frames were
// delivered into still-open batches but before the barrier — the deferred
// sends hit a dead socket, the control channel is gone, and EndEpoch must
// come back anyway: the round's frames attributed as losses, no hang. Run
// with supervision disabled (MaxRespawns < 0) to pin the legacy contract:
// the first death is a sticky error naming the shard and the shard stays
// down. TestUDPFleetRecoversFromKill covers the supervised path.
func TestUDPShardDeathMidBatch(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	f := newFixture(14, 40)
	nw := network.New(f.g, network.Global{P: 0}, 14)
	stats := network.NewStats(f.g.N())
	var mu sync.Mutex
	procs := make(map[int]transport.ShardProc)
	spawn := transport.SpawnExec(exe)
	u, err := transport.NewUDP(nw, transport.UDPOptions{
		Shards:         2,
		Deterministic:  true,
		Stats:          stats,
		BarrierTimeout: 2 * time.Second,
		MaxRespawns:    -1, // legacy contract: first death is a sticky error
		Spawn: func(controlAddr string, shard int) (transport.ShardProc, error) {
			p, err := spawn(controlAddr, shard)
			if err == nil {
				mu.Lock()
				procs[shard] = p
				mu.Unlock()
			}
			return p, err
		},
	})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer u.Close()

	// A healthy round first, so the kill demonstrably lands on a working fleet.
	u.BeginEpoch(0)
	if !u.Deliver(0, 0, 2, 1, treeFrame(0, 2)) {
		t.Fatal("healthy delivery refused")
	}
	u.EndEpoch(0)
	if err := u.Err(); err != nil {
		t.Fatalf("healthy fleet errored: %v", err)
	}

	u.BeginEpoch(1)
	const toVictim = 5
	for i := 0; i < toVictim; i++ {
		if !u.Deliver(1, 0, 2, 1+2*i, treeFrame(1, 2)) { // odd receivers: shard 1
			t.Fatalf("mid-batch delivery %d refused", i)
		}
	}
	if err := procs[1].Kill(); err != nil {
		t.Fatalf("kill shard 1: %v", err)
	}
	_ = procs[1].Wait()

	done := make(chan struct{})
	go func() {
		defer close(done)
		u.EndEpoch(1)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("EndEpoch hung after kill -9 mid-batch")
	}
	err = u.Err()
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("sticky error = %v, want shard 1 failure", err)
	}
	if got := u.Lost(); got != toVictim {
		t.Fatalf("dead shard's round attributed %d losses, want %d", got, toVictim)
	}
	if got := stats.TotalLosses(); got != toVictim {
		t.Fatalf("stats recorded %d losses, want %d", got, toVictim)
	}

	// The surviving shard keeps taking rounds.
	u.BeginEpoch(2)
	if !u.Deliver(2, 0, 3, 2, treeFrame(2, 3)) { // even receiver: shard 0
		t.Fatal("survivor delivery refused")
	}
	u.EndEpoch(2)
}
