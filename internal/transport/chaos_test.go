package transport_test

// Chaos battery for the UDP backend, driven by the internal/chaos package:
// seeded link noise (drop/duplicate/reorder) interposed via AddrRewrite,
// scheduled faults (kill, control stall, blackhole) applied at epoch
// boundaries, and supervision tests that SIGKILL shard processes mid-run
// and require the fleet to heal. The process tests re-exec this test
// binary as the tdnode stand-in (see TestMain in fuzz_test.go).

import (
	"os"
	"sync"
	"testing"
	"time"

	"tributarydelta/internal/chaos"
	"tributarydelta/internal/network"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/transport"
)

// TestUDPChaosAccounting routes every shard's data plane through the chaos
// driver's noise proxies and runs a free-running session through them. The
// session must converge — free-running Deliver is optimistic, so the
// runner's answers equal the lossless simulator's — and the barrier's
// loss/duplicate discovery must agree with the driver's frame-denominated
// ground truth exactly: every dropped frame (a dropped batch datagram
// loses all of its frames at once) becomes one AddLoss, every duplicated
// frame one AddDuplicates, reordering costs nothing.
func TestUDPChaosAccounting(t *testing.T) {
	for _, noBatch := range []bool{false, true} {
		name := "batched"
		if noBatch {
			name = "unbatched"
		}
		t.Run(name, func(t *testing.T) { testUDPChaosAccounting(t, noBatch) })
	}
}

func testUDPChaosAccounting(t *testing.T, noBatch bool) {
	seed := uint64(7)
	f := newFixture(seed, 80)
	simNet := network.New(f.g, network.Global{P: 0}, seed)
	udpNet := network.New(f.g, network.Global{P: 0}, seed)
	stats := network.NewStats(f.g.N())
	drv, err := chaos.New(chaos.Schedule{
		Seed: 1000, Drop: 0.10, Dup: 0.10, Reorder: 0.10,
	}, 4)
	if err != nil {
		t.Fatalf("chaos.New: %v", err)
	}
	defer drv.Close()
	u, err := transport.NewUDP(udpNet, transport.UDPOptions{
		Shards:      4,
		Stats:       stats,
		NoBatching:  noBatch,
		DrainQuiet:  25 * time.Millisecond,
		AddrRewrite: drv.AddrRewrite,
	})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer u.Close()

	simR := countRunner(t, f, runner.ModeTree, simNet, seed, nil)
	udpR := countRunner(t, f, runner.ModeTree, udpNet, seed, u)
	for e := 0; e < 12; e++ {
		drv.Advance(e)
		sim, up := simR.RunEpoch(e), udpR.RunEpoch(e)
		if sim != up {
			t.Fatalf("epoch %d: lossless simulator %+v, chaos session %+v", e, sim, up)
		}
	}
	if err := u.Err(); err != nil {
		t.Fatalf("transport error under chaos: %v", err)
	}

	c := drv.Counters()
	if c.Dropped == 0 || c.Dupped == 0 || c.Reordered == 0 {
		t.Fatalf("chaos driver idle: %+v", c)
	}
	if c.Blackholed != 0 {
		t.Fatalf("no blackhole scheduled, yet %d frames swallowed", c.Blackholed)
	}
	if got := u.Lost(); got != c.Dropped {
		t.Fatalf("transport counted %d losses, driver dropped %d", got, c.Dropped)
	}
	if got := stats.TotalLosses(); got != c.Dropped {
		t.Fatalf("stats recorded %d losses, driver dropped %d", got, c.Dropped)
	}
	if got := u.Duplicates(); got != c.Dupped {
		t.Fatalf("transport counted %d duplicates, driver duplicated %d", got, c.Dupped)
	}
	if got := stats.TotalDuplicates(); got != c.Dupped {
		t.Fatalf("stats recorded %d duplicates, driver duplicated %d", got, c.Dupped)
	}
}

// TestUDPFleetRecoversFromKill runs a 16-process fleet (each shard a
// SpawnExec'd re-exec of this test binary), SIGKILLs one tdnode mid-run,
// and lets the supervisor heal it. The contract: the next barrier detects
// the death within BarrierTimeout (no hang) and attributes the degraded
// epochs' traffic as losses; the supervisor respawns the shard and re-runs
// the join handshake without operator action; once the replacement is
// adopted, answers are again bit-identical to the lossless-transport
// simulator at the same epochs; Err stays nil throughout; and Health
// records the restart and the degraded epochs.
func TestUDPFleetRecoversFromKill(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	seed := uint64(9)
	f := newFixture(seed, 64)
	simNet := network.New(f.g, network.Global{P: 0.25}, seed)
	udpNet := network.New(f.g, network.Global{P: 0.25}, seed)
	stats := network.NewStats(f.g.N())
	var mu sync.Mutex
	procs := make(map[int]transport.ShardProc)
	spawn := transport.SpawnExec(exe)
	u, err := transport.NewUDP(udpNet, transport.UDPOptions{
		Shards:         16,
		Deterministic:  true,
		Stats:          stats,
		BarrierTimeout: 2 * time.Second,
		// The supervisor respawns through this same wrapper (on its own
		// goroutine — hence the mutex), so the replacement's proc handle
		// lands in the map too.
		Spawn: func(controlAddr string, shard int) (transport.ShardProc, error) {
			p, err := spawn(controlAddr, shard)
			if err == nil {
				mu.Lock()
				procs[shard] = p
				mu.Unlock()
			}
			return p, err
		},
	})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer u.Close()

	// The deterministic loss model draws identically for both networks
	// (same seed), so the UDP session's answers match the simulator's
	// bit-for-bit at every epoch — as long as the fleet is whole.
	simR := countRunner(t, f, runner.ModeTree, simNet, seed, nil)
	udpR := countRunner(t, f, runner.ModeTree, udpNet, seed, u)
	for e := 0; e < 3; e++ {
		sim, up := simR.RunEpoch(e), udpR.RunEpoch(e)
		if sim != up {
			t.Fatalf("healthy epoch %d: simulator %+v, udp %+v", e, sim, up)
		}
	}
	if err := u.Err(); err != nil {
		t.Fatalf("healthy fleet errored: %v", err)
	}

	// Kill a shard that demonstrably receives traffic — the tree is static
	// and exactly-once receipts are in stats, so any shard with a receiving
	// node will be flushed (and its death noticed) in later epochs too.
	victim := -1
	for v := range stats.RxFrames {
		if stats.RxFrames[v] > 0 {
			victim = v % u.Shards()
			break
		}
	}
	if victim < 0 {
		t.Fatal("no shard received any traffic in the healthy epochs")
	}
	mu.Lock()
	vp := procs[victim]
	mu.Unlock()
	if err := vp.Kill(); err != nil {
		t.Fatalf("kill shard %d: %v", victim, err)
	}
	_ = vp.Wait()

	// Keep running epochs while the supervisor recovers the shard. An
	// epoch whose answers match the simulator again with the fleet healthy
	// is the recovery point; the deadline only bounds a hung fleet.
	deadline := time.Now().Add(60 * time.Second)
	recovered := -1
	for e := 3; time.Now().Before(deadline); e++ {
		sim, up := simR.RunEpoch(e), udpR.RunEpoch(e)
		if h := u.Health(); sim == up && h.Healthy() && h.Restarts > 0 {
			recovered = e
			break
		}
		time.Sleep(10 * time.Millisecond) // give the supervisor its backoff
	}
	if recovered < 0 {
		t.Fatalf("fleet did not recover from kill -9 of shard %d: health %+v", victim, u.Health())
	}
	t.Logf("recovered at epoch %d: health %+v", recovered, u.Health())

	// Recovery must hold: further epochs stay bit-identical.
	for e := recovered + 1; e < recovered+4; e++ {
		sim, up := simR.RunEpoch(e), udpR.RunEpoch(e)
		if sim != up {
			t.Fatalf("post-recovery epoch %d: simulator %+v, udp %+v", e, sim, up)
		}
	}

	if err := u.Err(); err != nil {
		t.Fatalf("recovered fault must not be a sticky error, got: %v", err)
	}
	if u.Lost() == 0 {
		t.Fatal("dead shard's traffic was not attributed as losses")
	}
	h := u.Health()
	vh := h.Shards[victim]
	if vh.State != transport.ShardHealthy || vh.Restarts < 1 || vh.DegradedEpochs < 1 {
		t.Fatalf("victim shard health %+v, want healthy with >=1 restart and >=1 degraded epoch", vh)
	}
	if vh.LastErr == "" {
		t.Fatal("victim shard health lost the failure cause")
	}
}

// TestUDPChaosScheduleRecovery drives a scheduled fault sequence — kill a
// shard, blackhole another's data plane for a window, stall a third's
// control channel past the barrier budget — through the chaos driver
// against a supervised exec fleet. The fleet must heal from every fault:
// by the end all shards are healthy again, answers match the simulator
// bit-for-bit, the sticky error never fires, and Health shows a restart
// for the killed shard.
func TestUDPChaosScheduleRecovery(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	const shards = 4
	seed := uint64(11)
	f := newFixture(seed, 48)
	simNet := network.New(f.g, network.Global{P: 0}, seed)
	udpNet := network.New(f.g, network.Global{P: 0}, seed)
	drv, err := chaos.New(chaos.Schedule{
		Faults: []chaos.Fault{
			{Epoch: 2, Kind: chaos.KillShard, Shard: 1},
			{Epoch: 6, Kind: chaos.BlackholeShard, Shard: 2, Epochs: 2},
			{Epoch: 12, Kind: chaos.StallControl, Shard: 0, Epochs: 2},
		},
	}, shards)
	if err != nil {
		t.Fatalf("chaos.New: %v", err)
	}
	// Close the driver before the transport (LIFO defers): healing the
	// stall gates lets any still-blocked shard runtime exit under the
	// transport's teardown.
	defer drv.Close()
	u, err := transport.NewUDP(udpNet, transport.UDPOptions{
		Shards:         shards,
		Deterministic:  true,
		BarrierTimeout: 500 * time.Millisecond,
		JoinTimeout:    500 * time.Millisecond,
		Spawn:          drv.WrapSpawner(transport.SpawnExec(exe)),
		AddrRewrite:    drv.AddrRewrite,
	})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer u.Close()

	simR := countRunner(t, f, runner.ModeTree, simNet, seed, nil)
	udpR := countRunner(t, f, runner.ModeTree, udpNet, seed, u)
	deadline := time.Now().Add(120 * time.Second)
	epoch := 0
	for ; epoch < 16; epoch++ {
		drv.Advance(epoch)
		simR.RunEpoch(epoch)
		udpR.RunEpoch(epoch)
	}
	// The schedule is exhausted; run until the fleet is whole and answers
	// line up again (the deadline only bounds a fleet that cannot heal).
	healed := false
	for ; time.Now().Before(deadline); epoch++ {
		drv.Advance(epoch)
		sim, up := simR.RunEpoch(epoch), udpR.RunEpoch(epoch)
		if sim == up && u.Health().Healthy() {
			healed = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !healed {
		t.Fatalf("fleet did not heal from the fault schedule: health %+v", u.Health())
	}
	for e := epoch + 1; e < epoch+4; e++ {
		drv.Advance(e)
		sim, up := simR.RunEpoch(e), udpR.RunEpoch(e)
		if sim != up {
			t.Fatalf("post-heal epoch %d: simulator %+v, udp %+v", e, sim, up)
		}
	}
	if err := u.Err(); err != nil {
		t.Fatalf("healed fleet must not carry a sticky error, got: %v", err)
	}
	h := u.Health()
	if h.Shards[1].Restarts < 1 {
		t.Fatalf("killed shard was never restarted: health %+v", h)
	}
	t.Logf("healed at epoch %d: health %+v", epoch, h)
}
