package transport_test

// Chaos battery for the UDP backend: a loopback proxy that drops, duplicates
// and reorders datagrams with a seeded RNG (interposed via AddrRewrite), and
// a fleet-survives-kill test that SIGKILLs one shard process mid-run. The
// process tests re-exec this test binary as the tdnode stand-in (see
// TestMain in fuzz_test.go).

import (
	"math/rand"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"tributarydelta/internal/network"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/transport"
	"tributarydelta/internal/wire"
)

// frameCount decodes how many envelope frames one data-plane datagram
// carries: a 0xD8 batch holds its entry count, a single-frame datagram one.
// The proxy's ground truth is frame-denominated because the transport's
// Lost/Duplicates accounting is — dropping one batch datagram loses every
// frame inside it.
func frameCount(pkt []byte) int64 {
	if !wire.DatagramIsBatch(pkt) {
		return 1
	}
	b, err := wire.DecodeDatagramBatch(pkt)
	if err != nil {
		return 0
	}
	for b.Next() {
	}
	return int64(b.Len())
}

// chaosProxy sits between the parent's send socket and one shard's UDP
// socket. Every forwarded packet rolls one seeded RNG draw: ~10% are
// dropped, ~10% duplicated, ~10% reordered (held until the next packet, or
// a 2ms timer — far inside the barrier's quiet window, so held packets are
// never stranded past a flush).
type chaosProxy struct {
	ln  *net.UDPConn
	dst *net.UDPAddr

	mu        sync.Mutex
	rng       *rand.Rand
	held      []byte
	heldTimer *time.Timer
	dropped   int64
	dupped    int64
	reordered int64
}

func newChaosProxy(t *testing.T, seed int64, dst string) *chaosProxy {
	t.Helper()
	addr, err := net.ResolveUDPAddr("udp", dst)
	if err != nil {
		t.Fatalf("proxy resolve %q: %v", dst, err)
	}
	ln, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &chaosProxy{ln: ln, dst: addr, rng: rand.New(rand.NewSource(seed))}
	t.Cleanup(func() { ln.Close() })
	go p.run()
	return p
}

func (p *chaosProxy) addr() string { return p.ln.LocalAddr().String() }

func (p *chaosProxy) run() {
	buf := make([]byte, 1<<16)
	for {
		n, _, err := p.ln.ReadFromUDP(buf)
		if err != nil {
			return
		}
		pkt := append([]byte(nil), buf[:n]...)
		p.mu.Lock()
		switch r := p.rng.Float64(); {
		case r < 0.10:
			p.dropped += frameCount(pkt)
		case r < 0.20:
			p.dupped += frameCount(pkt)
			p.forwardLocked(pkt)
			p.forwardLocked(pkt)
			p.flushHeldLocked()
		case r < 0.30 && p.held == nil:
			p.reordered++
			p.held = pkt
			p.heldTimer = time.AfterFunc(2*time.Millisecond, p.flushHeld)
		default:
			p.forwardLocked(pkt)
			p.flushHeldLocked()
		}
		p.mu.Unlock()
	}
}

func (p *chaosProxy) forwardLocked(pkt []byte) { _, _ = p.ln.WriteToUDP(pkt, p.dst) }

func (p *chaosProxy) flushHeld() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushHeldLocked()
}

// flushHeldLocked releases a held (reordered) packet after its successor.
func (p *chaosProxy) flushHeldLocked() {
	if p.held == nil {
		return
	}
	p.forwardLocked(p.held)
	p.held = nil
	if p.heldTimer != nil {
		p.heldTimer.Stop()
	}
}

func (p *chaosProxy) counts() (dropped, dupped, reordered int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped, p.dupped, p.reordered
}

// TestUDPChaosAccounting interposes a chaos proxy on every shard and runs a
// free-running session through it, with datagram batching both on and off.
// The session must converge — free-running Deliver is optimistic, so the
// runner's answers equal the lossless simulator's — and the barrier's
// loss/duplicate discovery must agree with the proxy's frame-denominated
// ground truth exactly: every dropped frame (a dropped batch datagram loses
// all of its frames at once) becomes one AddLoss, every duplicated frame
// one AddDuplicates, reordering costs nothing.
func TestUDPChaosAccounting(t *testing.T) {
	for _, noBatch := range []bool{false, true} {
		name := "batched"
		if noBatch {
			name = "unbatched"
		}
		t.Run(name, func(t *testing.T) { testUDPChaosAccounting(t, noBatch) })
	}
}

func testUDPChaosAccounting(t *testing.T, noBatch bool) {
	seed := uint64(7)
	f := newFixture(seed, 80)
	simNet := network.New(f.g, network.Global{P: 0}, seed)
	udpNet := network.New(f.g, network.Global{P: 0}, seed)
	stats := network.NewStats(f.g.N())
	var mu sync.Mutex
	proxies := make(map[int]*chaosProxy)
	u, err := transport.NewUDP(udpNet, transport.UDPOptions{
		Shards:     4,
		Stats:      stats,
		NoBatching: noBatch,
		DrainQuiet: 25 * time.Millisecond,
		AddrRewrite: func(shard int, addr string) string {
			p := newChaosProxy(t, 1000+int64(shard), addr)
			mu.Lock()
			proxies[shard] = p
			mu.Unlock()
			return p.addr()
		},
	})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer u.Close()
	if len(proxies) != u.Shards() {
		t.Fatalf("AddrRewrite ran for %d shards, want %d", len(proxies), u.Shards())
	}

	simR := countRunner(t, f, runner.ModeTree, simNet, seed, nil)
	udpR := countRunner(t, f, runner.ModeTree, udpNet, seed, u)
	for e := 0; e < 12; e++ {
		sim, up := simR.RunEpoch(e), udpR.RunEpoch(e)
		if sim != up {
			t.Fatalf("epoch %d: lossless simulator %+v, chaos session %+v", e, sim, up)
		}
	}
	if err := u.Err(); err != nil {
		t.Fatalf("transport error under chaos: %v", err)
	}

	var dropped, dupped, reordered int64
	for _, p := range proxies {
		d, du, re := p.counts()
		dropped, dupped, reordered = dropped+d, dupped+du, reordered+re
	}
	if dropped == 0 || dupped == 0 || reordered == 0 {
		t.Fatalf("chaos proxy idle: dropped=%d dupped=%d reordered=%d", dropped, dupped, reordered)
	}
	if got := u.Lost(); got != dropped {
		t.Fatalf("transport counted %d losses, proxy dropped %d", got, dropped)
	}
	if got := stats.TotalLosses(); got != dropped {
		t.Fatalf("stats recorded %d losses, proxy dropped %d", got, dropped)
	}
	if got := u.Duplicates(); got != dupped {
		t.Fatalf("transport counted %d duplicates, proxy duplicated %d", got, dupped)
	}
	if got := stats.TotalDuplicates(); got != dupped {
		t.Fatalf("stats recorded %d duplicates, proxy duplicated %d", got, dupped)
	}
}

// TestUDPFleetSurvivesKill runs a 16-process fleet (each shard a SpawnExec'd
// re-exec of this test binary) and SIGKILLs one tdnode mid-run. The contract:
// the next barrier detects the death within BarrierTimeout (no hang), the
// sticky error names the shard, the dead shard's traffic is accounted as
// losses, and the remaining fleet keeps completing epochs.
func TestUDPFleetSurvivesKill(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	seed := uint64(9)
	f := newFixture(seed, 64)
	nw := network.New(f.g, network.Global{P: 0.25}, seed)
	stats := network.NewStats(f.g.N())
	var mu sync.Mutex
	procs := make(map[int]transport.ShardProc)
	spawn := transport.SpawnExec(exe)
	u, err := transport.NewUDP(nw, transport.UDPOptions{
		Shards:         16,
		Deterministic:  true,
		Stats:          stats,
		BarrierTimeout: 2 * time.Second,
		Spawn: func(controlAddr string, shard int) (transport.ShardProc, error) {
			p, err := spawn(controlAddr, shard)
			if err == nil {
				mu.Lock()
				procs[shard] = p
				mu.Unlock()
			}
			return p, err
		},
	})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	defer u.Close()

	r := countRunner(t, f, runner.ModeTree, nw, seed, u)
	for e := 0; e < 3; e++ {
		r.RunEpoch(e)
	}
	if err := u.Err(); err != nil {
		t.Fatalf("healthy fleet errored: %v", err)
	}

	// Kill a shard that demonstrably receives traffic — the tree is static
	// and exactly-once receipts are in stats, so any shard with a receiving
	// node will be flushed (and its death noticed) in later epochs too.
	victim := -1
	for v := range stats.RxFrames {
		if stats.RxFrames[v] > 0 {
			victim = v % u.Shards()
			break
		}
	}
	if victim < 0 {
		t.Fatal("no shard received any traffic in the healthy epochs")
	}
	if err := procs[victim].Kill(); err != nil {
		t.Fatalf("kill shard %d: %v", victim, err)
	}
	_ = procs[victim].Wait()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := 3; e < 8; e++ {
			r.RunEpoch(e)
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("fleet hung after kill -9 of one tdnode")
	}
	if err := u.Err(); err == nil {
		t.Fatal("killed shard went unnoticed: sticky error is nil")
	} else {
		t.Logf("sticky error after kill: %v", err)
	}
	if u.Lost() == 0 {
		t.Fatal("dead shard's traffic was not attributed as losses")
	}
}
