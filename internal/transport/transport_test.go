package transport_test

import (
	"testing"
	"time"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/runner"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/transport"
	"tributarydelta/internal/wire"
)

// fixture bundles a topology for tests, mirroring the runner package's
// fixture so both suites exercise identical fields.
type fixture struct {
	g  *topo.Graph
	r  *topo.Rings
	tr *topo.Tree
}

func newFixture(seed uint64, n int) fixture {
	g := topo.NewRandomField(seed, n, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
	r := topo.BuildRings(g)
	tr := topo.BuildRestrictedTree(g, r, seed)
	topo.OpportunisticImprove(g, r, tr, seed, 4)
	return fixture{g: g, r: r, tr: tr}
}

func countRunner(t *testing.T, f fixture, mode runner.Mode, net *network.Net, seed uint64, tr runner.Transport) *runner.Runner[struct{}, int64, *sketch.Sketch, float64] {
	t.Helper()
	r, err := runner.New(runner.Config[struct{}, int64, *sketch.Sketch, float64]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   net,
		Agg:   aggregate.NewCount(seed),
		Value: func(int, int) struct{} { return struct{}{} },
		Mode:  mode, Seed: seed, Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// treeFrame builds a minimal valid tree-partial frame from the given sender.
func treeFrame(epoch, from int) []byte {
	return wire.AppendEnvelope(nil, &wire.Envelope{
		Kind: wire.KindTree, Epoch: uint32(epoch), From: uint32(from), Contrib: 1,
	})
}

// TestDeterministicMatchesSimulator pins the tentpole determinism property:
// with blocking enqueues, the concurrent goroutine-per-node runtime yields
// per-epoch results identical to the synchronous in-process simulator, for
// seeds 1–3 across tree, multi-path and adaptive modes.
func TestDeterministicMatchesSimulator(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		f := newFixture(seed, 250)
		for _, mode := range []runner.Mode{runner.ModeTree, runner.ModeMultipath, runner.ModeTD} {
			model := network.Global{P: 0.25}
			simNet := network.New(f.g, model, seed)
			chNet := network.New(f.g, model, seed)
			stats := network.NewStats(f.g.N())
			ch := transport.New(chNet, transport.Options{Deterministic: true, Stats: stats})
			simR := countRunner(t, f, mode, simNet, seed, nil)
			chR := countRunner(t, f, mode, chNet, seed, ch)
			for e := 0; e < 20; e++ {
				sim, con := simR.RunEpoch(e), chR.RunEpoch(e)
				if sim != con {
					t.Fatalf("seed %d %s epoch %d: simulator %+v, chan transport %+v", seed, mode, e, sim, con)
				}
			}
			if ch.Drops() != 0 {
				t.Fatalf("deterministic transport dropped %d frames", ch.Drops())
			}
			if got := ch.TotalProcessed(); got == 0 || got != stats.TotalRxFrames() {
				t.Fatalf("processed %d frames, stats recorded %d", got, stats.TotalRxFrames())
			}
			ch.Close()
		}
	}
}

// TestDropOnFull forces a bounded-inbox overflow: with capacity 1 and the
// worker blocked inside OnFrame, the third delivery must be refused and
// reported through network.Stats.
func TestDropOnFull(t *testing.T) {
	f := newFixture(1, 50)
	net := network.New(f.g, network.Global{P: 0}, 1)
	stats := network.NewStats(f.g.N())
	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	ch := transport.New(net, transport.Options{
		InboxCap: 1,
		Stats:    stats,
		OnFrame: func(int, *wire.Envelope) {
			entered <- struct{}{}
			<-gate
		},
	})
	frame := treeFrame(0, 2)
	if !ch.Deliver(0, 0, 2, 1, frame) {
		t.Fatal("first delivery refused")
	}
	<-entered // worker now holds frame 1; the inbox is empty again
	if !ch.Deliver(0, 0, 2, 1, frame) {
		t.Fatal("second delivery should fill the inbox")
	}
	if ch.Deliver(0, 0, 2, 1, frame) {
		t.Fatal("third delivery should drop on a full inbox")
	}
	if ch.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", ch.Drops())
	}
	close(gate)
	ch.EndEpoch(0)
	if got := ch.Processed(1); got != 2 {
		t.Fatalf("node 1 processed %d frames, want 2", got)
	}
	if stats.InboxDrops[1] != 1 || stats.TotalInboxDrops() != 1 {
		t.Fatalf("stats inbox drops = %v", stats.InboxDrops[1])
	}
	if stats.RxFrames[1] != 2 {
		t.Fatalf("stats rx frames = %d, want 2", stats.RxFrames[1])
	}
	ch.Close()
}

// TestEpochBarrier checks EndEpoch's guarantee: every frame delivered
// during the epoch has been fully processed — even with deliberately slow
// receivers — before EndEpoch returns.
func TestEpochBarrier(t *testing.T) {
	f := newFixture(2, 50)
	net := network.New(f.g, network.Global{P: 0}, 2)
	ch := transport.New(net, transport.Options{
		Deterministic: true,
		OnFrame:       func(int, *wire.Envelope) { time.Sleep(200 * time.Microsecond) },
	})
	defer ch.Close()
	ch.BeginEpoch(7)
	const frames = 25
	for i := 0; i < frames; i++ {
		to := 1 + i%5
		if !ch.Deliver(7, 0, 6+i%3, to, treeFrame(7, 6+i%3)) {
			t.Fatalf("lossless delivery %d refused", i)
		}
	}
	ch.EndEpoch(7)
	if got := ch.TotalProcessed(); got != frames {
		t.Fatalf("after barrier: processed %d, want %d", got, frames)
	}
	if ch.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", ch.Epoch())
	}
}

// TestCloseIdempotent closes twice and checks the workers drained first.
func TestCloseIdempotent(t *testing.T) {
	f := newFixture(3, 50)
	net := network.New(f.g, network.Global{P: 0}, 3)
	ch := transport.New(net, transport.Options{})
	if !ch.Deliver(0, 0, 2, 1, treeFrame(0, 2)) {
		t.Fatal("lossless delivery refused")
	}
	ch.Close()
	ch.Close()
	if got := ch.Processed(1); got != 1 {
		t.Fatalf("processed %d, want 1 (Close must drain)", got)
	}
}
