//go:build !(linux && (amd64 || arm64))

package batchio

// Portable fallback: one WriteToUDP/ReadFromUDP per datagram. Observable
// behavior matches the Linux mmsg path exactly — only the syscall counters
// record one call per datagram instead of per batch.

import (
	"net"
	"sync"
)

// Sender batches datagram sends over one UDP socket. Safe for concurrent
// use; construct with NewSender. On this platform each datagram is one
// WriteToUDP.
type Sender struct {
	conn *net.UDPConn
	c    *Counters
	mu   sync.Mutex
}

// NewSender wraps conn; counters must be non-nil.
func NewSender(conn *net.UDPConn, c *Counters) *Sender {
	return &Sender{conn: conn, c: c}
}

// Send submits every message, returning the first socket error.
func (s *Sender) Send(msgs []Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range msgs {
		m := &msgs[i]
		if _, err := s.conn.WriteToUDP(m.Buf, m.Addr); err != nil {
			return err
		}
		s.c.sendCalls.Add(1)
		s.c.sentDatagrams.Add(1)
		s.c.sentBytes.Add(int64(len(m.Buf)))
	}
	return nil
}

// Receiver drains datagrams from one UDP socket into a pooled buffer. Not
// safe for concurrent use — it belongs to one receive goroutine. Construct
// with NewReceiver.
type Receiver struct {
	conn *net.UDPConn
	c    *Counters
	buf  []byte
	n    int
}

// NewReceiver wraps conn, allocating the receive buffer once; counters
// must be non-nil.
func NewReceiver(conn *net.UDPConn, c *Counters) *Receiver {
	return &Receiver{conn: conn, c: c, buf: make([]byte, recvBuf)}
}

// Recv blocks until a datagram arrives and returns how many are readable
// via Datagram (always 1 on this platform). It returns the socket's error
// once it closes.
func (r *Receiver) Recv() (int, error) {
	n, _, err := r.conn.ReadFromUDP(r.buf)
	if err != nil {
		return 0, err
	}
	r.c.recvCalls.Add(1)
	r.c.recvDatagrams.Add(1)
	r.n = n
	return 1, nil
}

// Datagram returns the i-th datagram of the last Recv; the slice aliases a
// pooled buffer valid until the next Recv.
func (r *Receiver) Datagram(i int) []byte {
	_ = i
	return r.buf[:r.n]
}
