//go:build linux && arm64

package batchio

// sysSENDMMSG is sendmmsg(2)'s syscall number on linux/arm64; the frozen
// syscall package predates it (it has SYS_RECVMMSG but not SYS_SENDMMSG).
const sysSENDMMSG = 269
