//go:build linux && (amd64 || arm64)

package batchio

// The Linux fast path: sendmmsg(2)/recvmmsg(2) submit and drain up to a
// whole batch of datagrams per syscall. The socket is driven through
// net.UDPConn.SyscallConn with MSG_DONTWAIT, so EAGAIN parks the goroutine
// on the runtime's net poller (the RawConn Read/Write contract) instead of
// blocking a thread — closing the socket still unblocks both directions,
// exactly like the portable path.
//
// The mmsghdr/iovec/sockaddr scratch arrays live on the Sender/Receiver and
// are reused across calls, so steady-state batched I/O allocates nothing.

import (
	"net"
	"sync"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr on linux amd64/arm64: a msghdr plus the
// kernel-filled per-message byte count (padded to 8 bytes).
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// Sender batches datagram sends over one UDP socket. Safe for concurrent
// use (an internal mutex serializes the scratch arrays); construct with
// NewSender.
type Sender struct {
	conn *net.UDPConn
	c    *Counters
	mu   sync.Mutex
	raw  syscall.RawConn
	hdrs [sendBatch]mmsghdr
	iovs [sendBatch]syscall.Iovec
	sas  [sendBatch]syscall.RawSockaddrInet4
}

// NewSender wraps conn; counters must be non-nil.
func NewSender(conn *net.UDPConn, c *Counters) *Sender {
	s := &Sender{conn: conn, c: c}
	s.raw, _ = conn.SyscallConn()
	return s
}

// Send submits every message, batching IPv4 destinations through sendmmsg
// (loopback shard addresses always are); other address families fall back
// to WriteToUDP. It returns the first socket error.
func (s *Sender) Send(msgs []Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.raw == nil {
		return s.sendLoop(msgs)
	}
	i := 0
	for i < len(msgs) {
		if msgs[i].Addr.IP.To4() == nil {
			if err := s.sendOne(&msgs[i]); err != nil {
				return err
			}
			i++
			continue
		}
		n := s.gather(msgs[i:])
		sent, err := s.sendmmsg(n)
		if err != nil {
			return err
		}
		i += sent
	}
	return nil
}

// gather fills the scratch vectors with a run of IPv4 messages and returns
// its length (at least 1).
func (s *Sender) gather(msgs []Message) int {
	n := 0
	for n < len(msgs) && n < sendBatch {
		m := &msgs[n]
		ip4 := m.Addr.IP.To4()
		if ip4 == nil {
			break
		}
		sa := &s.sas[n]
		*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		copy(sa.Addr[:], ip4)
		// sin_port holds raw network-order bytes.
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0] = byte(m.Addr.Port >> 8)
		p[1] = byte(m.Addr.Port)
		iov := &s.iovs[n]
		if len(m.Buf) > 0 {
			iov.Base = &m.Buf[0]
		} else {
			iov.Base = nil
		}
		iov.SetLen(len(m.Buf))
		h := &s.hdrs[n]
		h.hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(sa)),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     iov,
			Iovlen:  1,
		}
		h.len = 0
		n++
	}
	return n
}

// sendmmsg submits the first n gathered messages in one syscall, waiting on
// the net poller if the socket is momentarily unwritable, and returns how
// many the kernel accepted.
func (s *Sender) sendmmsg(n int) (int, error) {
	var sent int
	var opErr syscall.Errno
	err := s.raw.Write(func(fd uintptr) bool {
		s.c.sendCalls.Add(1)
		r, _, e := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&s.hdrs[0])), uintptr(n), syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EINTR {
			return false // park on the poller, retry when writable
		}
		if e != 0 {
			opErr = e
			return true
		}
		sent = int(r)
		return true
	})
	if err != nil {
		return 0, err
	}
	if opErr != 0 {
		return 0, opErr
	}
	if sent <= 0 {
		return 0, syscall.EIO
	}
	var bytes int64
	for i := 0; i < sent; i++ {
		bytes += int64(s.hdrs[i].len)
	}
	s.c.sentDatagrams.Add(int64(sent))
	s.c.sentBytes.Add(bytes)
	return sent, nil
}

// sendOne falls back to a single WriteToUDP (non-IPv4 destinations).
func (s *Sender) sendOne(m *Message) error {
	if _, err := s.conn.WriteToUDP(m.Buf, m.Addr); err != nil {
		return err
	}
	s.c.sendCalls.Add(1)
	s.c.sentDatagrams.Add(1)
	s.c.sentBytes.Add(int64(len(m.Buf)))
	return nil
}

// sendLoop is the degraded path when SyscallConn is unavailable.
func (s *Sender) sendLoop(msgs []Message) error {
	for i := range msgs {
		if err := s.sendOne(&msgs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Receiver drains batches of datagrams from one UDP socket into pooled
// buffers. Not safe for concurrent use — it belongs to one receive
// goroutine. Construct with NewReceiver.
type Receiver struct {
	conn *net.UDPConn
	c    *Counters
	raw  syscall.RawConn
	bufs [recvBatch][]byte
	iovs [recvBatch]syscall.Iovec
	hdrs [recvBatch]mmsghdr
	sas  [recvBatch]syscall.RawSockaddrAny
	lens [recvBatch]int
}

// NewReceiver wraps conn, allocating the receive buffers once; counters
// must be non-nil.
func NewReceiver(conn *net.UDPConn, c *Counters) *Receiver {
	r := &Receiver{conn: conn, c: c}
	r.raw, _ = conn.SyscallConn()
	for i := range r.bufs {
		r.bufs[i] = make([]byte, recvBuf)
		r.iovs[i].Base = &r.bufs[i][0]
		r.iovs[i].SetLen(recvBuf)
	}
	return r
}

// Recv blocks until at least one datagram arrives, drains up to a full
// batch in one syscall, and returns how many are readable via Datagram.
// It returns the socket's error once it closes.
func (r *Receiver) Recv() (int, error) {
	if r.raw == nil {
		return r.recvOne()
	}
	var got int
	var opErr syscall.Errno
	err := r.raw.Read(func(fd uintptr) bool {
		for i := range r.hdrs {
			r.hdrs[i].hdr = syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&r.sas[i])),
				Namelen: syscall.SizeofSockaddrAny,
				Iov:     &r.iovs[i],
				Iovlen:  1,
			}
			r.hdrs[i].len = 0
		}
		r.c.recvCalls.Add(1)
		n, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&r.hdrs[0])), recvBatch, syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EINTR {
			return false // park on the poller until readable
		}
		if e != 0 {
			opErr = e
			return true
		}
		got = int(n)
		return true
	})
	if err != nil {
		return 0, err
	}
	if opErr != 0 {
		return 0, opErr
	}
	for i := 0; i < got; i++ {
		r.lens[i] = int(r.hdrs[i].len)
	}
	r.c.recvDatagrams.Add(int64(got))
	return got, nil
}

// recvOne is the degraded path when SyscallConn is unavailable.
func (r *Receiver) recvOne() (int, error) {
	n, _, err := r.conn.ReadFromUDP(r.bufs[0])
	if err != nil {
		return 0, err
	}
	r.c.recvCalls.Add(1)
	r.c.recvDatagrams.Add(1)
	r.lens[0] = n
	return 1, nil
}

// Datagram returns the i-th datagram of the last Recv; the slice aliases a
// pooled buffer valid until the next Recv.
func (r *Receiver) Datagram(i int) []byte { return r.bufs[i][:r.lens[i]] }
