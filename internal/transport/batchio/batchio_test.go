package batchio

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"
)

// newLoopbackPair returns a bound receive socket and an unbound send socket.
func newLoopbackPair(t *testing.T) (send, recv *net.UDPConn) {
	t.Helper()
	var err error
	recv, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	send, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close() })
	return send, recv
}

// TestSenderReceiverRoundTrip pushes several batches through a loopback
// pair and checks every payload arrives intact with the counters adding up.
func TestSenderReceiverRoundTrip(t *testing.T) {
	sendConn, recvConn := newLoopbackPair(t)
	addr := recvConn.LocalAddr().(*net.UDPAddr)

	var c Counters
	s := NewSender(sendConn, &c)
	r := NewReceiver(recvConn, &c)

	const total = 3*sendBatch + 5
	var msgs []Message
	want := make(map[string]int, total)
	for i := 0; i < total; i++ {
		buf := []byte(fmt.Sprintf("datagram-%03d", i))
		msgs = append(msgs, Message{Buf: buf, Addr: addr})
		want[string(buf)]++
	}
	if err := s.Send(msgs); err != nil {
		t.Fatalf("Send: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	got := 0
	for got < total {
		_ = recvConn.SetReadDeadline(deadline)
		n, err := r.Recv()
		if err != nil {
			t.Fatalf("Recv after %d datagrams: %v", got, err)
		}
		for i := 0; i < n; i++ {
			d := string(r.Datagram(i))
			if want[d] == 0 {
				t.Fatalf("unexpected datagram %q", d)
			}
			want[d]--
			got++
		}
	}
	snap := c.Snapshot()
	if snap.SentDatagrams != total || snap.RecvDatagrams != int64(total) {
		t.Fatalf("counters: %+v, want %d datagrams each way", snap, total)
	}
	var wantBytes int64
	for i := range msgs {
		wantBytes += int64(len(msgs[i].Buf))
	}
	if snap.SentBytes != wantBytes {
		t.Fatalf("SentBytes = %d, want %d", snap.SentBytes, wantBytes)
	}
	if snap.SendCalls <= 0 || snap.SendCalls > int64(total) || snap.RecvCalls <= 0 {
		t.Fatalf("implausible syscall counters: %+v", snap)
	}
	t.Logf("sent %d datagrams in %d send calls, received in %d recv calls",
		total, snap.SendCalls, snap.RecvCalls)
}

// TestReceiverUnblocksOnClose pins the shutdown contract the shard receive
// loop depends on: closing the socket makes a blocked Recv return an error.
func TestReceiverUnblocksOnClose(t *testing.T) {
	_, recvConn := newLoopbackPair(t)
	var c Counters
	r := NewReceiver(recvConn, &c)
	errc := make(chan error, 1)
	go func() {
		_, err := r.Recv()
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	recvConn.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Recv returned nil after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

// TestSenderEmptyAndLarge covers the edge payloads: a zero-byte datagram
// and one at the receive buffer bound.
func TestSenderEmptyAndLarge(t *testing.T) {
	sendConn, recvConn := newLoopbackPair(t)
	addr := recvConn.LocalAddr().(*net.UDPAddr)
	_ = sendConn.SetWriteBuffer(1 << 20)
	_ = recvConn.SetReadBuffer(1 << 20)

	var c Counters
	s := NewSender(sendConn, &c)
	r := NewReceiver(recvConn, &c)

	large := bytes.Repeat([]byte{0x5a}, 60000)
	if err := s.Send([]Message{{Buf: nil, Addr: addr}, {Buf: large, Addr: addr}}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var sizes []int
	for len(sizes) < 2 {
		_ = recvConn.SetReadDeadline(deadline)
		n, err := r.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		for i := 0; i < n; i++ {
			sizes = append(sizes, len(r.Datagram(i)))
		}
	}
	if sizes[0]+sizes[1] != len(large) {
		t.Fatalf("got sizes %v, want one empty and one of %d", sizes, len(large))
	}
}
