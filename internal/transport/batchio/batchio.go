// Package batchio is the UDP transport's batched socket I/O seam: a Sender
// that submits many datagrams per syscall and a Receiver that drains many
// per syscall, with shared atomic counters so cmd/tdbench can report
// syscalls/epoch. On Linux (amd64/arm64) the implementations ride
// sendmmsg(2)/recvmmsg(2) through the net poller's RawConn hooks — the
// socket stays in non-blocking mode and parks on the poller exactly like
// the portable path, so nothing about blocking semantics changes. Every
// other platform falls back to plain WriteToUDP/ReadFromUDP loops with
// identical observable behavior; only the syscall counters differ.
//
// The package reads no clocks and draws no randomness: batching affects
// when bytes hit the wire, never which bytes — the determinism contract of
// the transport above it.
package batchio

import (
	"net"
	"sync/atomic"
)

// Batch sizing: how many datagrams one sendmmsg submits and one recvmmsg
// can drain. The receiver owns recvBatch fixed 64 KiB buffers (512 KiB per
// shard socket), so the steady-state receive loop never allocates.
const (
	sendBatch = 64
	recvBatch = 8
	recvBuf   = 1 << 16
)

// Message is one datagram to send: its payload and destination.
type Message struct {
	// Buf is the datagram payload; the Sender does not retain it past Send.
	Buf []byte
	// Addr is the destination address.
	Addr *net.UDPAddr
}

// Counters accumulate socket-level accounting across Senders and Receivers
// sharing them. All fields are updated atomically; Snapshot reads a
// consistent-enough view for benchmarking (the counters are monotonic).
type Counters struct {
	sendCalls     atomic.Int64
	sentDatagrams atomic.Int64
	sentBytes     atomic.Int64
	recvCalls     atomic.Int64
	recvDatagrams atomic.Int64
}

// Snapshot is a point-in-time copy of a Counters.
type Snapshot struct {
	// SendCalls counts send-side syscalls (each sendmmsg or WriteToUDP).
	SendCalls int64
	// SentDatagrams counts datagrams actually submitted to the socket.
	SentDatagrams int64
	// SentBytes counts payload bytes across those datagrams.
	SentBytes int64
	// RecvCalls counts receive-side syscalls (each recvmmsg or ReadFromUDP).
	RecvCalls int64
	// RecvDatagrams counts datagrams drained from the socket.
	RecvDatagrams int64
}

// Snapshot returns the counters' current values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		SendCalls:     c.sendCalls.Load(),
		SentDatagrams: c.sentDatagrams.Load(),
		SentBytes:     c.sentBytes.Load(),
		RecvCalls:     c.recvCalls.Load(),
		RecvDatagrams: c.recvDatagrams.Load(),
	}
}

// Sub returns the per-field difference s - o: the delta between two
// snapshots of the same Counters.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		SendCalls:     s.SendCalls - o.SendCalls,
		SentDatagrams: s.SentDatagrams - o.SentDatagrams,
		SentBytes:     s.SentBytes - o.SentBytes,
		RecvCalls:     s.RecvCalls - o.RecvCalls,
		RecvDatagrams: s.RecvDatagrams - o.RecvDatagrams,
	}
}
