package transport

// White-box hostile-input battery for the UDP shard receive path, plus the
// re-exec hook that lets process-level tests (the kill-fleet chaos test) use
// this test binary as a tdnode stand-in: when SpawnExec launches it with
// -control/-shard, TestMain runs the shard runtime instead of the test suite.

import (
	"os"
	"strconv"
	"testing"
	"time"

	"tributarydelta/internal/wire"
)

func TestMain(m *testing.M) {
	// The cmd/tdnode contract, detected positionally so transport.SpawnExec
	// can point at the test binary itself — no separately built binary needed.
	var control string
	shard := 0
	for i, a := range os.Args {
		if i+1 >= len(os.Args) {
			break
		}
		switch a {
		case "-control":
			control = os.Args[i+1]
		case "-shard":
			shard, _ = strconv.Atoi(os.Args[i+1])
		}
	}
	if control != "" {
		if err := RunNode(control, shard); err != nil {
			os.Stderr.WriteString("tdnode(test): " + err.Error() + "\n")
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// checkShardInvariants asserts the properties hostile input must never break:
// bounded dedup state, consistent counters, per-node deltas that sum to the
// unique count.
func checkShardInvariants(t *testing.T, s *shardState) {
	t.Helper()
	if max := wire.MaxDatagramSeq/64 + 1; len(s.seen) > max {
		t.Fatalf("dedup bitset grew to %d words (bound %d)", len(s.seen), max)
	}
	if int64(s.unique) > s.received {
		t.Fatalf("unique %d > received %d", s.unique, s.received)
	}
	var frames int64
	for _, f := range s.rxFrames {
		frames += f
	}
	if frames != int64(s.unique) {
		t.Fatalf("per-node rx deltas sum to %d, unique is %d", frames, s.unique)
	}
	var dups int64
	for _, d := range s.dups {
		dups += d
	}
	if dups+int64(s.unique) != s.received {
		t.Fatalf("unique %d + dups %d != received %d", s.unique, dups, s.received)
	}
}

// FuzzShardReceive throws arbitrary datagrams — any bytes at all — at the
// shard receive path. The contract under attack: never panic, never allocate
// proportionally to a hostile header field, and keep the round accounting
// consistent no matter what arrives.
func FuzzShardReceive(f *testing.F) {
	frame := wire.AppendEnvelope(nil, &wire.Envelope{Kind: wire.KindTree, Epoch: 2, From: 3, Contrib: 1})
	f.Add(wire.AppendDatagram(nil, 1, 0, 5, frame))                     // valid, node 5 lives on shard 1 of 4
	f.Add(wire.AppendDatagram(nil, 1, 0, 6, frame))                     // wrong shard
	f.Add(wire.AppendDatagram(nil, 1, wire.MaxDatagramSeq-1, 5, frame)) // max seq
	f.Add(wire.AppendDatagram(nil, 9, 1, 5, []byte{0xff, 0xff}))        // corrupt envelope
	f.Add(wire.AppendDatagram(nil, 1, 2, 1<<30, frame))                 // node out of range
	f.Add([]byte{wire.DatagramMagic, wire.DatagramVersion, 0x80, 0x80}) // truncated varint
	f.Fuzz(func(t *testing.T, data []byte) {
		s := newShardState(16, 4, 1, true, time.Millisecond)
		var dec wire.Decoder
		// Feed the input twice: the second pass exercises the dedup and
		// stale-round branches against whatever state the first pass built.
		for i := 0; i < 2; i++ {
			s.handleDatagram(&dec, data)
			dec.Reset()
			checkShardInvariants(t, s)
		}
		// A flush for the current round must also survive whatever arrived
		// (zero-wait: deterministic with everything already reported sent).
		reply := s.flush(&ctrlMsg{Type: ctrlFlush, Round: s.round, Sent: s.unique})
		if reply.Type != ctrlDone {
			t.Fatalf("flush reply type %q", reply.Type)
		}
	})
}

// FuzzShardReceiveBatch throws arbitrary bytes at the shard receive path's
// batch branch (and, via the magic dispatch, everything else). The batch
// decoder is streaming — a corrupt entry mid-batch must keep every frame
// accepted before it, drop the rest, and count exactly one malformed for
// the truncated tail; the round accounting invariants must hold throughout.
func FuzzShardReceiveBatch(f *testing.F) {
	frame := wire.AppendEnvelope(nil, &wire.Envelope{Kind: wire.KindTree, Epoch: 2, From: 3, Contrib: 1})
	batch := wire.AppendDatagramBatch(nil, 1, 0)
	batch = wire.AppendBatchFrame(batch, 5, frame)
	batch = wire.AppendBatchFrame(batch, 9, frame)
	batch = wire.AppendBatchFrame(batch, 13, frame)
	f.Add(batch)                                       // valid three-frame batch, all on shard 1 of 4
	f.Add(batch[:len(batch)-3])                        // truncated mid-entry
	f.Add(append(append([]byte(nil), batch...), 0x06)) // trailing garbage entry
	mixed := wire.AppendDatagramBatch(nil, 1, 4)
	mixed = wire.AppendBatchFrame(mixed, 5, frame)
	mixed = wire.AppendBatchFrame(mixed, 6, frame) // wrong shard
	mixed = wire.AppendBatchFrame(mixed, 9, []byte{0xff, 0xff})
	f.Add(mixed)
	f.Add(wire.AppendBatchFrame(wire.AppendDatagramBatch(nil, 1, wire.MaxDatagramSeq-1), 5, frame)) // last legal seq
	f.Add([]byte{wire.DatagramBatchMagic, wire.DatagramVersion, 0x80, 0x80})                        // truncated varint
	f.Fuzz(func(t *testing.T, data []byte) {
		s := newShardState(16, 4, 1, true, time.Millisecond)
		var dec wire.Decoder
		// Feed the input twice: the second pass exercises the dedup and
		// stale-round branches against whatever state the first pass built.
		for i := 0; i < 2; i++ {
			s.handleDatagram(&dec, data)
			dec.Reset()
			checkShardInvariants(t, s)
		}
		// A flush for the current round must survive whatever arrived, and
		// its missing report must be well-formed ranges within [0, sent).
		reply := s.flush(&ctrlMsg{Type: ctrlFlush, Round: s.round, Sent: s.unique})
		if reply.Type != ctrlDone {
			t.Fatalf("flush reply type %q", reply.Type)
		}
		for _, rng := range reply.Missing {
			if rng.Count <= 0 || rng.First < 0 || rng.First+rng.Count > s.unique {
				t.Fatalf("flush reported bogus missing range [%d,%d) with sent=%d",
					rng.First, rng.First+rng.Count, s.unique)
			}
		}
	})
}

// FuzzEnvelopeDecode drives arbitrary bytes through the full receive path as
// the envelope of an otherwise valid datagram: wire.Decoder.Decode on hostile
// input must return an error — never panic, never poison later decodes on the
// same reused decoder — and the shard must count exactly one malformed drop
// or one accepted frame per datagram.
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add(wire.AppendEnvelope(nil, &wire.Envelope{Kind: wire.KindTree, Epoch: 1, From: 2, Contrib: 7}))
	f.Add(wire.AppendEnvelope(nil, &wire.Envelope{
		Kind: wire.KindSynopsis, Epoch: 3, From: 4,
		ContribSketch: []byte{1, 2, 3}, NCValid: true, TopNC: []int{4, 2}, MinNC: 2, Payload: []byte{9},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	good := wire.AppendEnvelope(nil, &wire.Envelope{Kind: wire.KindTree, Epoch: 5, From: 6, Contrib: 1})
	f.Fuzz(func(t *testing.T, payload []byte) {
		s := newShardState(16, 4, 1, false, time.Millisecond)
		var dec wire.Decoder
		s.handleDatagram(&dec, wire.AppendDatagram(nil, 1, 0, 5, payload))
		dec.Reset()
		if s.malformed+int64(s.unique) != 1 {
			t.Fatalf("one datagram produced malformed=%d unique=%d", s.malformed, s.unique)
		}
		checkShardInvariants(t, s)
		// The same decoder must remain sound for a subsequent valid frame.
		s.handleDatagram(&dec, wire.AppendDatagram(nil, 1, 1, 5, good))
		if s.malformed+int64(s.unique) != 2 {
			t.Fatalf("decoder poisoned: malformed=%d unique=%d after valid follow-up", s.malformed, s.unique)
		}
	})
}
