package xrand

import "testing"

func TestSplitIsHash(t *testing.T) {
	// Split is Hash by definition — the alias documents stream namespacing,
	// it must never drift from the hash the rest of the simulator uses, or
	// reorganizing code between the two forms would move every answer.
	for seed := uint64(0); seed < 8; seed++ {
		if Split(seed, 1, 2, 3) != Hash(seed, 1, 2, 3) {
			t.Fatalf("Split(%d,1,2,3) != Hash(%d,1,2,3)", seed, seed)
		}
	}
}

func TestSplitSubStreamsDisjoint(t *testing.T) {
	// Sub-streams split by distinct node ids must look independent: no two
	// of the first draws collide across 10k nodes (64-bit space — any
	// collision here is a mixing bug, not bad luck).
	seen := make(map[uint64]int, 10000)
	for node := uint64(0); node < 10000; node++ {
		v := NewSource(Split(42, node)).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("nodes %d and %d share the first draw of their sub-streams", prev, node)
		}
		seen[v] = int(node)
	}
}

func TestSplitOrderSensitive(t *testing.T) {
	if Split(1, 2, 3) == Split(1, 3, 2) {
		t.Fatal("Split must fold identifiers order-sensitively")
	}
}
