// Package xrand provides deterministic, splittable pseudo-randomness for the
// simulator. Every stochastic decision in a simulation run — a message loss,
// a hash placement, a workload draw — is a pure function of a seed and the
// identifiers of the entities involved. This makes runs bit-reproducible and
// independent of execution order, so the epoch engine may process nodes of a
// level concurrently (one goroutine per node) without perturbing results.
//
// The core primitive is a 64-bit mixing function (SplitMix64 finalizer,
// Stafford variant 13) applied to a running combination of the inputs. The
// mixer passes standard avalanche tests and is adequate for simulation
// purposes; it is not cryptographic.
package xrand

import "math"

// Mix64 is the SplitMix64 finalizer. It maps a 64-bit value to a
// statistically independent-looking 64-bit value.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Combine folds b into a running hash a, returning a new hash. Combine is
// not commutative, so the order of folded values matters — callers must fold
// identifiers in a fixed, documented order.
func Combine(a, b uint64) uint64 {
	return Mix64(a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2)))
}

// Hash hashes the seed and a sequence of identifiers into one 64-bit value.
func Hash(seed uint64, ids ...uint64) uint64 {
	h := Mix64(seed + 0x9e3779b97f4a7c15)
	for _, id := range ids {
		h = Combine(h, id)
	}
	return h
}

// Split derives the seed of a statistically independent sub-stream from a
// parent seed and the identifiers of the entity owning the sub-stream — the
// splittable-RNG discipline that makes the level-parallel epoch engine
// deterministic: every node (and every epoch) draws from its own
// (seed, ids...) sub-stream, so the bits a node consumes are a pure function
// of identity, never of scheduling order or worker count. Split(seed, ids...)
// is Hash(seed, ids...) by definition; the separate name documents intent
// (namespacing a stream) versus Hash's (consuming one value).
func Split(seed uint64, ids ...uint64) uint64 {
	return Hash(seed, ids...)
}

// Float64 maps a hash to the half-open interval [0, 1).
func Float64(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Bernoulli reports whether a trial with success probability p succeeds,
// using h as the randomness. Probabilities outside [0,1] are clamped.
func Bernoulli(h uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return Float64(h) < p
}

// Source is a deterministic stream of pseudo-random values identified by a
// key. Two Sources constructed with the same key produce identical streams.
// The zero value is a valid Source with key 0.
type Source struct {
	state uint64
	ctr   uint64
}

// NewSource returns a Source whose stream is determined by seed and ids.
func NewSource(seed uint64, ids ...uint64) *Source {
	return &Source{state: Hash(seed, ids...)}
}

// Uint64 returns the next value of the stream.
func (s *Source) Uint64() uint64 {
	s.ctr++
	return Mix64(s.state + s.ctr*0x9e3779b97f4a7c15)
}

// Float64 returns the next value of the stream in [0, 1).
func (s *Source) Float64() float64 {
	return Float64(s.Uint64())
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping; bias is negligible for the
	// simulation ranges used here (n << 2^32).
	return int((s.Uint64() >> 32) * uint64(n) >> 32)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, via the Box–Muller transform.
func (s *Source) NormFloat64() float64 {
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Bernoulli reports a success with probability p drawn from the stream.
func (s *Source) Bernoulli(p float64) bool {
	return Bernoulli(s.Uint64(), p)
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials (support {0, 1, 2, ...}). It panics if p
// is not in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric probability out of range")
	}
	if p == 1 {
		return 0
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Binomial returns a draw from Binomial(n, p). It uses direct simulation for
// small n and a normal approximation with continuity correction for large n,
// which is accurate to well under the simulation noise floor for the sketch
// insertion counts used here.
func (s *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if s.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*s.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Zipf draws values in [0, n) following a Zipf distribution with exponent
// alpha > 0 (rank 0 most frequent). The cumulative table is precomputed by
// NewZipf; draws are O(log n).
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over n ranks with the given exponent, drawing
// randomness from src. It panics if n <= 0 or alpha <= 0.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("xrand: Zipf with non-positive n")
	}
	if alpha <= 0 {
		panic("xrand: Zipf with non-positive alpha")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Draw returns the next Zipf-distributed rank.
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
