package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Avalanche(t *testing.T) {
	// Flipping any single input bit should flip roughly half the output bits.
	const trials = 256
	src := NewSource(1, 42)
	for i := 0; i < trials; i++ {
		x := src.Uint64()
		for bit := 0; bit < 64; bit += 7 {
			d := Mix64(x) ^ Mix64(x^(1<<uint(bit)))
			popcount := 0
			for d != 0 {
				d &= d - 1
				popcount++
			}
			if popcount < 10 || popcount > 54 {
				t.Fatalf("weak avalanche: x=%#x bit=%d flipped %d bits", x, bit, popcount)
			}
		}
	}
}

func TestHashDeterminism(t *testing.T) {
	a := Hash(7, 1, 2, 3)
	b := Hash(7, 1, 2, 3)
	if a != b {
		t.Fatalf("Hash not deterministic: %#x != %#x", a, b)
	}
	if Hash(7, 1, 2, 3) == Hash(7, 3, 2, 1) {
		t.Fatal("Hash should be order-sensitive")
	}
	if Hash(7, 1, 2, 3) == Hash(8, 1, 2, 3) {
		t.Fatal("Hash should depend on seed")
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(h uint64) bool {
		f := Float64(h)
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliEdges(t *testing.T) {
	if Bernoulli(12345, 0) {
		t.Fatal("Bernoulli(0) must never succeed")
	}
	if !Bernoulli(12345, 1) {
		t.Fatal("Bernoulli(1) must always succeed")
	}
	if Bernoulli(12345, -0.5) {
		t.Fatal("negative p must never succeed")
	}
	if !Bernoulli(12345, 1.5) {
		t.Fatal("p>1 must always succeed")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	for _, p := range []float64{0.05, 0.3, 0.5, 0.9} {
		hits := 0
		const n = 200000
		for i := 0; i < n; i++ {
			if Bernoulli(Hash(99, uint64(i)), p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency %v, want within 0.01", p, got)
		}
	}
}

func TestSourceStreamsIndependent(t *testing.T) {
	a := NewSource(1, 10)
	b := NewSource(1, 11)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different ids collided %d times", same)
	}
	// Same key -> identical stream.
	c := NewSource(1, 10)
	d := NewSource(1, 10)
	for i := 0; i < 64; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("same-key sources diverged")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	src := NewSource(3, 1)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := src.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	src := NewSource(5, 2)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[src.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestPerm(t *testing.T) {
	src := NewSource(9)
	p := src.Perm(50)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("permutation missing elements: %v", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	src := NewSource(11)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := src.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	src := NewSource(13)
	const p = 0.25
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += src.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // mean of failures-before-success
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("geometric mean %v, want ~%v", mean, want)
	}
	if src.Geometric(1) != 0 {
		t.Error("Geometric(1) must be 0")
	}
}

func TestBinomialMoments(t *testing.T) {
	src := NewSource(17)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.5}, {64, 0.1}, {1000, 0.3}, {100000, 0.01}} {
		const trials = 2000
		sum := 0
		for i := 0; i < trials; i++ {
			sum += src.Binomial(tc.n, tc.p)
		}
		mean := float64(sum) / trials
		want := float64(tc.n) * tc.p
		sd := math.Sqrt(want * (1 - tc.p))
		if math.Abs(mean-want) > 4*sd/math.Sqrt(trials)+1 {
			t.Errorf("Binomial(%d,%v) mean %v, want ~%v", tc.n, tc.p, mean, want)
		}
	}
	if v := src.Binomial(100, 0); v != 0 {
		t.Errorf("Binomial(n,0) = %d, want 0", v)
	}
	if v := src.Binomial(100, 1); v != 100 {
		t.Errorf("Binomial(n,1) = %d, want n", v)
	}
}

func TestZipfSkew(t *testing.T) {
	src := NewSource(19)
	z := NewZipf(src, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	// Rank 0 should be roughly twice as frequent as rank 1 for alpha=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.4 {
		t.Errorf("zipf rank0/rank1 ratio %v, want ~2", ratio)
	}
	if counts[0] < counts[50] {
		t.Error("zipf should be decreasing in rank")
	}
}

func TestZipfPanics(t *testing.T) {
	src := NewSource(1)
	for _, fn := range []func(){
		func() { NewZipf(src, 0, 1) },
		func() { NewZipf(src, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
