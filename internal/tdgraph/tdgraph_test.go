package tdgraph

import (
	"testing"

	"tributarydelta/internal/topo"
	"tributarydelta/internal/xrand"
)

// testTopology builds a synthetic field with rings and a restricted tree.
func testTopology(seed uint64, n int) (*topo.Graph, *topo.Rings, *topo.Tree) {
	g := topo.NewRandomField(seed, n, 20, 20, topo.Point{X: 10, Y: 10}, 2.0)
	r := topo.BuildRings(g)
	t := topo.BuildRestrictedTree(g, r, seed)
	return g, r, t
}

func TestNewStateDeltaLevels(t *testing.T) {
	g, r, tr := testTopology(1, 300)
	for _, lv := range []int{0, 1, 2, r.Max} {
		s := NewState(g, r, tr, lv)
		for v := 0; v < g.N(); v++ {
			if !r.Reachable(v) {
				continue
			}
			wantM := r.Level[v] <= lv || v == topo.Base
			if s.IsM(v) != wantM {
				t.Fatalf("deltaLevels=%d node %d level %d labeled %v", lv, v, r.Level[v], s.Label(v))
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("deltaLevels=%d: %v", lv, err)
		}
	}
}

func TestPureExtremes(t *testing.T) {
	g, r, tr := testTopology(2, 200)
	tree := NewState(g, r, tr, 0)
	if tree.DeltaSize() != 1 {
		t.Fatalf("pure tree delta size %d, want 1 (base only)", tree.DeltaSize())
	}
	multi := NewState(g, r, tr, r.Max)
	if multi.DeltaSize() != r.CountReachable() {
		t.Fatalf("pure multipath delta %d, want all %d reachable", multi.DeltaSize(), r.CountReachable())
	}
	if multi.TributarySize() != g.N()-multi.DeltaSize() {
		t.Fatal("tributary size inconsistent")
	}
}

func TestObservation1(t *testing.T) {
	// All children of a switchable M vertex are switchable T vertices.
	g, r, tr := testTopology(3, 400)
	s := NewState(g, r, tr, 2)
	for _, v := range s.SwitchableM() {
		for _, c := range tr.Children[v] {
			if !r.Reachable(c) {
				continue
			}
			if s.Label(c) != T {
				t.Fatalf("child %d of switchable M %d is not T", c, v)
			}
			if !s.IsSwitchableT(c) {
				t.Fatalf("child %d of switchable M %d is not switchable", c, v)
			}
		}
	}
	_ = g
}

func TestLemma1(t *testing.T) {
	// If T vertices exist, at least one is switchable; if non-base M
	// vertices exist, at least one is switchable. Exercised across many
	// delta shapes produced by random expand/shrink walks.
	g, r, tr := testTopology(4, 300)
	s := NewState(g, r, tr, 1)
	src := xrand.NewSource(77)
	nc := make([]int, g.N())
	for step := 0; step < 200; step++ {
		hasT, hasM := false, false
		for v := 0; v < g.N(); v++ {
			if !r.Reachable(v) || v == topo.Base {
				continue
			}
			if s.Label(v) == T {
				hasT = true
			} else {
				hasM = true
			}
		}
		if hasT && len(s.SwitchableT()) == 0 {
			t.Fatal("Lemma 1 violated: T vertices exist but none switchable")
		}
		if hasM && len(s.SwitchableM()) == 0 {
			t.Fatal("Lemma 1 violated: M vertices exist but none switchable")
		}
		// Random walk over delta shapes using both strategies' moves.
		switch src.Intn(4) {
		case 0:
			s.ExpandCoarse()
		case 1:
			s.ShrinkCoarse()
		case 2:
			for _, v := range s.SwitchableM() {
				nc[v] = src.Intn(5)
			}
			s.ExpandTD(nc, 4)
		default:
			for _, v := range s.SwitchableM() {
				nc[v] = src.Intn(5)
			}
			s.ShrinkTD(nc, 0)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestExpandShrinkCoarseRoundTrip(t *testing.T) {
	g, r, tr := testTopology(5, 300)
	s := NewState(g, r, tr, 0)
	before := s.DeltaSize()
	n1 := s.ExpandCoarse()
	if n1 == 0 || s.DeltaSize() != before+n1 {
		t.Fatalf("expand switched %d, delta %d", n1, s.DeltaSize())
	}
	// Shrinking all the way back down recovers the pure tree.
	for s.DeltaSize() > 1 {
		if s.ShrinkCoarse() == 0 {
			t.Fatal("shrink stalled before reaching pure tree")
		}
	}
	if s.DeltaSize() != 1 {
		t.Fatal("did not shrink to base-only delta")
	}
	_ = g
}

func TestExpandCoarseGrowsByLevels(t *testing.T) {
	g, r, tr := testTopology(6, 300)
	s := NewState(g, r, tr, 0)
	// After k coarse expansions every reachable vertex within tree depth k
	// must be M.
	depth := tr.Depths()
	for k := 1; k <= 3; k++ {
		s.ExpandCoarse()
		for v := 0; v < g.N(); v++ {
			if r.Reachable(v) && depth[v] <= k && depth[v] >= 0 && !s.IsM(v) {
				t.Fatalf("after %d expansions, depth-%d vertex %d still T", k, depth[v], v)
			}
		}
	}
}

func TestExpandTDTargetsMaxSubtree(t *testing.T) {
	g, r, tr := testTopology(7, 300)
	s := NewState(g, r, tr, 1)
	nc := make([]int, g.N())
	sw := s.SwitchableM()
	if len(sw) < 2 {
		t.Skip("topology yielded too few switchable M vertices")
	}
	// Give one switchable vertex a uniquely bad subtree.
	bad := sw[0]
	for _, v := range sw {
		nc[v] = 1
	}
	nc[bad] = 9
	switched := s.ExpandTD(nc, 9)
	// Only bad's children switch.
	want := 0
	for _, c := range tr.Children[bad] {
		if r.Reachable(c) {
			want++
		}
	}
	if switched != want {
		t.Fatalf("TD expand switched %d, want %d (children of the max subtree)", switched, want)
	}
	for _, v := range sw[1:] {
		for _, c := range tr.Children[v] {
			if r.Reachable(c) && s.IsM(c) && tr.Parent[c] == v {
				t.Fatalf("TD expand touched subtree of %d with min count", v)
			}
		}
	}
	_ = g
}

func TestShrinkTDTargetsMinSubtree(t *testing.T) {
	g, r, tr := testTopology(8, 300)
	s := NewState(g, r, tr, 2)
	nc := make([]int, g.N())
	sw := s.SwitchableM()
	if len(sw) < 2 {
		t.Skip("too few switchable M vertices")
	}
	good := sw[0]
	for _, v := range sw {
		nc[v] = 7
	}
	nc[good] = 0
	switched := s.ShrinkTD(nc, 0)
	if switched != 1 {
		t.Fatalf("TD shrink switched %d, want exactly the min vertex", switched)
	}
	if s.IsM(good) {
		t.Fatal("min vertex not switched to T")
	}
	_ = g
	_ = r
}

func TestExpandTDFromDegenerateDelta(t *testing.T) {
	g, r, tr := testTopology(9, 200)
	s := NewState(g, r, tr, 0)
	nc := make([]int, g.N())
	if switched := s.ExpandTD(nc, 0); switched == 0 {
		t.Fatal("TD expand from base-only delta must recruit the base's children")
	}
	for _, c := range tr.Children[topo.Base] {
		if r.Reachable(c) && !s.IsM(c) {
			t.Fatalf("base child %d not recruited", c)
		}
	}
	_ = g
}

func TestEdgesRespectCorrectness(t *testing.T) {
	// The realized aggregation edges must satisfy both properties at every
	// delta shape along a random adaptation walk.
	g, r, tr := testTopology(10, 300)
	s := NewState(g, r, tr, 1)
	src := xrand.NewSource(5)
	nc := make([]int, g.N())
	for step := 0; step < 60; step++ {
		edges := s.Edges()
		if !EdgeCorrect(g.N(), edges, s.labelsCopy()) {
			t.Fatalf("step %d: edge correctness violated", step)
		}
		if !PathCorrect(g.N(), edges, s.labelsCopy()) {
			t.Fatalf("step %d: path correctness violated", step)
		}
		if src.Intn(2) == 0 {
			s.ExpandCoarse()
		} else {
			for _, v := range s.SwitchableM() {
				nc[v] = src.Intn(3)
			}
			s.ShrinkTD(nc, src.Intn(3))
		}
	}
}

// labelsCopy exposes labels for the correctness checks in tests.
func (s *State) labelsCopy() []Label {
	out := make([]Label, len(s.label))
	copy(out, s.label)
	return out
}

func TestEdgeCorrectImpliesPathCorrect(t *testing.T) {
	// On arbitrary digraphs, Property 1 implies Property 2; and on graphs
	// where every non-base vertex routes onward and the base station is M
	// (always true in the system), Property 2 implies Property 1.
	src := xrand.NewSource(123)
	for trial := 0; trial < 500; trial++ {
		n := 3 + src.Intn(8)
		label := make([]Label, n)
		label[0] = M // vertex 0 is the base station
		for i := 1; i < n; i++ {
			if src.Intn(2) == 0 {
				label[i] = M
			}
		}
		// Random DAG edges v -> u with u < v (0 acts as the base station).
		var edges [][2]int
		for v := 1; v < n; v++ {
			deg := 1 + src.Intn(2)
			for d := 0; d < deg; d++ {
				edges = append(edges, [2]int{v, src.Intn(v)})
			}
		}
		ec := EdgeCorrect(n, edges, label)
		pc := PathCorrect(n, edges, label)
		if ec && !pc {
			t.Fatalf("trial %d: edge-correct graph not path-correct (labels %v edges %v)", trial, label, edges)
		}
		// Every non-sink vertex here has an outgoing edge, so the converse
		// holds too.
		if pc && !ec {
			t.Fatalf("trial %d: path-correct graph not edge-correct (labels %v edges %v)", trial, label, edges)
		}
	}
}

func TestPathCorrectCounterexample(t *testing.T) {
	// M edge into a T vertex that routes onward with a T edge: path
	// correctness must fail.
	label := []Label{T, T, M}
	edges := [][2]int{{2, 1}, {1, 0}} // M(2)->T(1), then T(1)->T(0)
	if PathCorrect(3, edges, label) {
		t.Fatal("expected path correctness violation")
	}
	if EdgeCorrect(3, edges, label) {
		t.Fatal("expected edge correctness violation")
	}
	// A dead-end M edge into T violates Property 1 but not Property 2 —
	// the equivalence needs onward routing, as §3 notes.
	label2 := []Label{T, M}
	edges2 := [][2]int{{1, 0}}
	if EdgeCorrect(2, edges2, label2) {
		t.Fatal("M->T edge must violate edge correctness")
	}
	if !PathCorrect(2, edges2, label2) {
		t.Fatal("single dead-end edge cannot violate path correctness")
	}
}

func TestControllerThresholds(t *testing.T) {
	g, r, tr := testTopology(11, 300)
	nc := make([]int, g.N())

	s := NewState(g, r, tr, 1)
	c := NewController(StrategyCoarse)
	act, n := c.Decide(s, 0.5, nc, nil, 0)
	if act != ActionExpand || n == 0 {
		t.Fatalf("low contribution must expand, got %v/%d", act, n)
	}
	act, _ = c.Decide(s, 0.92, nc, nil, 0)
	if act != ActionNone {
		t.Fatalf("in-band contribution must hold, got %v", act)
	}
	act, n = c.Decide(s, 0.99, nc, nil, 0)
	if act != ActionShrink || n == 0 {
		t.Fatalf("high contribution must shrink, got %v/%d", act, n)
	}
}

func TestControllerNoneStrategy(t *testing.T) {
	g, r, tr := testTopology(12, 100)
	s := NewState(g, r, tr, 1)
	c := NewController(StrategyNone)
	if act, n := c.Decide(s, 0.1, make([]int, g.N()), nil, 0); act != ActionNone || n != 0 {
		t.Fatal("StrategyNone must never adapt")
	}
}

func TestControllerOscillationDamping(t *testing.T) {
	g, r, tr := testTopology(13, 300)
	s := NewState(g, r, tr, 1)
	c := NewController(StrategyCoarse)
	nc := make([]int, g.N())
	// Alternate low/high contribution; damping must introduce cooldowns.
	skipped := 0
	frac := []float64{0.5, 0.99}
	for i := 0; i < 30; i++ {
		act, _ := c.Decide(s, frac[i%2], nc, nil, 0)
		if act == ActionNone {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("oscillation damping never engaged")
	}
}

func TestControllerSameDirectionNoDamping(t *testing.T) {
	g, r, tr := testTopology(14, 400)
	s := NewState(g, r, tr, 0)
	c := NewController(StrategyCoarse)
	nc := make([]int, g.N())
	// Repeated expansion in the same direction should not back off until
	// the delta saturates.
	acted := 0
	for i := 0; i < 4; i++ {
		if act, _ := c.Decide(s, 0.5, nc, nil, 0); act == ActionExpand {
			acted++
		}
	}
	if acted < 3 {
		t.Fatalf("same-direction adaptation was damped: %d/4 acted", acted)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, r, tr := testTopology(15, 100)
	s := NewState(g, r, tr, 2)
	// Corrupt: find an M vertex at level 2 and flip its parent's label.
	for v := 0; v < g.N(); v++ {
		if s.IsM(v) && v != topo.Base && r.Level[v] == 2 {
			s.label[tr.Parent[v]] = T
			break
		}
	}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate must catch an M vertex with a T parent")
	}
}

// TestDeltaSizeIncrementalMatchesRecount pins the O(1) DeltaSize counter
// against a full label recount across every switch operation, and pins the
// switch operations as allocation-free once the scan buffer is warm (the
// amortized §4.2 decision path must not allocate).
func TestDeltaSizeIncrementalMatchesRecount(t *testing.T) {
	g, r, tr := testTopology(15, 100)
	s := NewState(g, r, tr, 2)
	recount := func() int {
		n := 0
		for v := 0; v < g.N(); v++ {
			if s.IsM(v) {
				n++
			}
		}
		return n
	}
	check := func(op string) {
		t.Helper()
		if got, want := s.DeltaSize(), recount(); got != want {
			t.Fatalf("after %s: DeltaSize %d, recount %d", op, got, want)
		}
	}
	check("NewState")
	nc := make([]int, g.N())
	for i := range nc {
		nc[i] = i % 3
	}
	s.ExpandCoarse()
	check("ExpandCoarse")
	s.ExpandTDAtLeast(nc, 1)
	check("ExpandTDAtLeast")
	s.ShrinkTD(nc, 0)
	check("ShrinkTD")
	s.ExpandTD(nc, 2)
	check("ExpandTD")
	s.ShrinkCoarse()
	check("ShrinkCoarse")
	if got, want := s.TributarySize(), g.N()-recount(); got != want {
		t.Fatalf("TributarySize %d, want %d", got, want)
	}

	// Warm the scan buffer, then the decision-path operations must not
	// allocate.
	s.ExpandCoarse()
	s.ShrinkCoarse()
	if n := testing.AllocsPerRun(20, func() {
		s.ExpandCoarse()
		s.ExpandTDAtLeast(nc, 1)
		s.ShrinkTD(nc, 0)
		s.ShrinkCoarse()
	}); n != 0 {
		t.Fatalf("switch operations allocate %v per cycle, want 0", n)
	}
}

func TestStrategyAndActionStrings(t *testing.T) {
	if StrategyTD.String() != "TD" || StrategyCoarse.String() != "TD-Coarse" || StrategyNone.String() != "none" {
		t.Fatal("strategy strings wrong")
	}
	if ActionExpand.String() != "expand" || ActionShrink.String() != "shrink" || ActionNone.String() != "none" {
		t.Fatal("action strings wrong")
	}
	if T.String() != "T" || M.String() != "M" {
		t.Fatal("label strings wrong")
	}
}
