// Package tdgraph implements the heart of the paper: the labeled aggregation
// graph of §3 — every vertex runs either the tree scheme (T) or the
// multi-path scheme (M) — together with the correctness properties (Edge
// Correctness, Property 1; Path Correctness, Property 2), the switchable-
// vertex machinery (Observation 1, Lemma 1), and the two adaptation
// strategies of §4.2, TD-Coarse and TD, with the oscillation-damping
// heuristic.
//
// The delta region (the M vertices) always contains the base station and is
// upward closed along tree-parent pointers: an M vertex's tree parent is M.
// This structural invariant, maintained by every switch operation, is what
// makes Path Correctness hold — a partial result converted to a synopsis at
// the tributary/delta boundary never meets a tree vertex again on its way to
// the base station.
package tdgraph

import (
	"fmt"

	"tributarydelta/internal/topo"
)

// Label says which aggregation scheme a vertex runs.
type Label uint8

const (
	// T vertices run the tree scheme (tributaries).
	T Label = iota
	// M vertices run the multi-path scheme (the delta).
	M
)

// String implements fmt.Stringer.
func (l Label) String() string {
	if l == M {
		return "M"
	}
	return "T"
}

// State is the labeling of a fixed aggregation topology: the radio graph,
// its rings, and a spanning tree whose links are rings links (§4.1). Labels
// change over time through the switch operations; the topology does not.
type State struct {
	G     *topo.Graph
	R     *topo.Rings
	Tree  *topo.Tree
	label []Label
	// subtree[v] is the size of v's tree subtree including v — the paper's
	// footnote 3 "unique subtree" used by the TD strategy.
	subtree []int
	// deltaSize counts the M vertices, maintained at every label write so
	// DeltaSize is O(1) — the epoch loop reads it every round.
	deltaSize int
	// scan is the reusable buffer behind the internal frontier/switchable
	// enumerations: the amortized §4.2 decision runs allocation-free. The
	// exported enumerations still return fresh slices.
	scan []int
}

// setLabel writes v's label, keeping the M-vertex count current.
func (s *State) setLabel(v int, l Label) {
	if s.label[v] == l {
		return
	}
	if l == M {
		s.deltaSize++
	} else {
		s.deltaSize--
	}
	s.label[v] = l
}

// NewState labels every reachable vertex with rings level ≤ deltaLevels as M
// and the rest as T. deltaLevels = 0 yields the pure-tree extreme (delta =
// base station only); deltaLevels ≥ the max ring yields pure multi-path.
func NewState(g *topo.Graph, r *topo.Rings, tree *topo.Tree, deltaLevels int) *State {
	s := &State{
		G:       g,
		R:       r,
		Tree:    tree,
		label:   make([]Label, g.N()),
		subtree: tree.SubtreeSizes(),
	}
	for v := 0; v < g.N(); v++ {
		if r.Reachable(v) && r.Level[v] <= deltaLevels {
			s.setLabel(v, M)
		}
	}
	s.setLabel(topo.Base, M)
	return s
}

// Label returns v's current label.
func (s *State) Label(v int) Label { return s.label[v] }

// IsM reports whether v runs the multi-path scheme.
func (s *State) IsM(v int) bool { return s.label[v] == M }

// SubtreeSize returns the size of v's tree subtree (v included).
func (s *State) SubtreeSize(v int) int { return s.subtree[v] }

// DeltaSize returns the number of M vertices, the base station included.
func (s *State) DeltaSize() int { return s.deltaSize }

// TributarySize returns the number of T vertices.
func (s *State) TributarySize() int { return s.G.N() - s.DeltaSize() }

// IsSwitchableM reports whether M vertex v may switch to T: all its incoming
// edges are T edges or it has no incoming edges (§3). Incoming edges are
// unicasts from tree children (always T-sourced while the invariant holds)
// and broadcasts from down-ring M neighbours, so v is switchable exactly
// when no down-ring radio neighbour is M. The base station never switches.
func (s *State) IsSwitchableM(v int) bool {
	if v == topo.Base || s.label[v] != M || !s.R.Reachable(v) {
		return false
	}
	for _, w := range s.R.Down[v] {
		if s.label[w] == M {
			return false
		}
	}
	return true
}

// IsFrontierM reports whether M vertex v roots a unique all-T tree subtree
// (every tree child is T). Frontier vertices are the ones that report the
// §4.2 non-contributing subtree counts (footnote 3's "unique subtree") and
// whose children the TD strategy recruits on expansion. Every switchable M
// vertex is a frontier vertex, but not vice versa: a frontier vertex may
// still receive synopses from down-ring M radio neighbours of other
// subtrees, which blocks it from switching to T without blocking its
// children from switching to M.
func (s *State) IsFrontierM(v int) bool {
	if s.label[v] != M || !s.R.Reachable(v) {
		return false
	}
	for _, c := range s.Tree.Children[v] {
		if s.label[c] == M {
			return false
		}
	}
	return true
}

// FrontierM returns all frontier M vertices (the base station included when
// it qualifies).
func (s *State) FrontierM() []int { return s.appendFrontierM(nil) }

// appendFrontierM appends the frontier M vertices to buf. The switch
// operations feed it the reusable scan buffer (collect-then-switch: the
// enumeration is fully materialized before any label changes) so the
// amortized decision path never allocates.
func (s *State) appendFrontierM(buf []int) []int {
	for v := 0; v < s.G.N(); v++ {
		if s.IsFrontierM(v) {
			buf = append(buf, v)
		}
	}
	return buf
}

// IsSwitchableT reports whether T vertex v may switch to M: its tree parent
// is an M vertex (§3).
func (s *State) IsSwitchableT(v int) bool {
	if s.label[v] != T || !s.R.Reachable(v) || !s.Tree.InTree(v) {
		return false
	}
	p := s.Tree.Parent[v]
	return p != -1 && s.label[p] == M
}

// SwitchableM returns all switchable M vertices.
func (s *State) SwitchableM() []int { return s.appendSwitchableM(nil) }

// appendSwitchableM appends the switchable M vertices to buf; see
// appendFrontierM for the scratch discipline.
func (s *State) appendSwitchableM(buf []int) []int {
	for v := 0; v < s.G.N(); v++ {
		if s.IsSwitchableM(v) {
			buf = append(buf, v)
		}
	}
	return buf
}

// SwitchableT returns all switchable T vertices.
func (s *State) SwitchableT() []int { return s.appendSwitchableT(nil) }

// appendSwitchableT appends the switchable T vertices to buf; see
// appendFrontierM for the scratch discipline.
func (s *State) appendSwitchableT(buf []int) []int {
	for v := 0; v < s.G.N(); v++ {
		if s.IsSwitchableT(v) {
			buf = append(buf, v)
		}
	}
	return buf
}

// ExpandCoarse switches every switchable T vertex to M — the TD-Coarse
// expansion, widening the delta region by one tree level. It returns the
// number of vertices switched.
func (s *State) ExpandCoarse() int {
	switched := 0
	s.scan = s.appendSwitchableT(s.scan[:0])
	for _, v := range s.scan {
		s.setLabel(v, M)
		switched++
	}
	return switched
}

// ShrinkCoarse switches every switchable M vertex to T — the TD-Coarse
// contraction. It returns the number of vertices switched.
func (s *State) ShrinkCoarse() int {
	switched := 0
	s.scan = s.appendSwitchableM(s.scan[:0])
	for _, v := range s.scan {
		s.setLabel(v, T)
		switched++
	}
	return switched
}

// ExpandTD implements the TD strategy's fine-grained expansion: every
// frontier M vertex whose subtree reported notContrib[v] == maxNC switches
// all its tree children (switchable T vertices, since their parent is M) to
// M. The notContrib slice holds each frontier vertex's last reported count
// of non-contributing subtree nodes; entries for other vertices are
// ignored.
func (s *State) ExpandTD(notContrib []int, maxNC int) int {
	switched := 0
	s.scan = s.appendFrontierM(s.scan[:0])
	for _, v := range s.scan {
		if v == topo.Base || notContrib[v] != maxNC {
			continue
		}
		for _, c := range s.Tree.Children[v] {
			if s.label[c] == T && s.R.Reachable(c) {
				s.setLabel(c, M)
				switched++
			}
		}
	}
	switched += s.expandBaseChildren(notContrib, maxNC, true)
	// Expanding from the degenerate delta {base}: the base station's own
	// children are the frontier.
	if switched == 0 && s.DeltaSize() == 1 {
		for _, c := range s.Tree.Children[topo.Base] {
			if s.R.Reachable(c) {
				s.setLabel(c, M)
				switched++
			}
		}
	}
	return switched
}

// expandBaseChildren recruits lossy T children of the base station. The
// base knows each direct child's subtree contribution from the child's own
// partial result (or its absence), so it records notContrib for them and
// may switch a child whose subtree misses enough nodes — without this, a
// base station with mixed M and T children could never extend the delta
// into its T branches under the TD strategy.
func (s *State) expandBaseChildren(notContrib []int, threshold int, exact bool) int {
	switched := 0
	for _, c := range s.Tree.Children[topo.Base] {
		if s.label[c] != T || !s.R.Reachable(c) || notContrib[c] < 0 {
			continue
		}
		if exact && notContrib[c] != threshold {
			continue
		}
		if !exact && notContrib[c] < threshold {
			continue
		}
		s.setLabel(c, M)
		switched++
	}
	return switched
}

// ExpandTDAtLeast is the §4.2 adaptivity heuristic the paper names ("using
// max/2 instead of max"): every switchable M vertex whose subtree reported
// notContrib[v] ≥ threshold switches its tree children to M. It converges in
// a few adaptation periods where the strict-max rule needs many.
func (s *State) ExpandTDAtLeast(notContrib []int, threshold int) int {
	switched := 0
	s.scan = s.appendFrontierM(s.scan[:0])
	for _, v := range s.scan {
		if v == topo.Base || notContrib[v] < threshold {
			continue
		}
		for _, c := range s.Tree.Children[v] {
			if s.label[c] == T && s.R.Reachable(c) {
				s.setLabel(c, M)
				switched++
			}
		}
	}
	switched += s.expandBaseChildren(notContrib, threshold, false)
	if switched == 0 && s.DeltaSize() == 1 {
		for _, c := range s.Tree.Children[topo.Base] {
			if s.R.Reachable(c) {
				s.setLabel(c, M)
				switched++
			}
		}
	}
	return switched
}

// ShrinkTD implements the TD strategy's fine-grained contraction: every
// switchable M vertex whose subtree reported notContrib[v] == minNC switches
// itself to T.
func (s *State) ShrinkTD(notContrib []int, minNC int) int {
	switched := 0
	s.scan = s.appendSwitchableM(s.scan[:0])
	for _, v := range s.scan {
		if notContrib[v] == minNC {
			s.setLabel(v, T)
			switched++
		}
	}
	return switched
}

// Validate checks the structural invariants the switch operations maintain:
// the base station is M, and every M vertex's tree parent is M (the delta is
// upward closed, which implies Path Correctness for the realized message
// flow). It returns the first violation found.
func (s *State) Validate() error {
	if s.label[topo.Base] != M {
		return fmt.Errorf("tdgraph: base station is not M")
	}
	for v := 0; v < s.G.N(); v++ {
		if v == topo.Base || s.label[v] != M {
			continue
		}
		p := s.Tree.Parent[v]
		if p == -1 {
			if s.R.Reachable(v) {
				return fmt.Errorf("tdgraph: reachable M vertex %d has no tree parent", v)
			}
			continue
		}
		if s.label[p] != M {
			return fmt.Errorf("tdgraph: M vertex %d has T tree parent %d", v, p)
		}
	}
	return nil
}

// Reparent moves v's aggregation-tree parent to newParent — the churn
// primitive behind scripted re-parent events (a node picking a new parent
// after its old one dies or degrades). It preserves the standing
// invariants: the base keeps no parent, the tree stays acyclic (newParent
// must not sit in v's own subtree), subtree sizes are recomputed, and
// upward closure is restored by force-promoting any T vertex on
// newParent's path to the base to M when v itself is M. Feasibility
// against the rings (the TD modes demand every tree link also be a rings
// link) is the caller's concern — the runner validates a churn schedule
// per mode before applying it.
func (s *State) Reparent(v, newParent int) error {
	n := s.G.N()
	if v < 0 || v >= n || newParent < 0 || newParent >= n {
		return fmt.Errorf("tdgraph: reparent %d -> %d outside [0,%d)", v, newParent, n)
	}
	if v == topo.Base {
		return fmt.Errorf("tdgraph: the base station cannot be reparented")
	}
	if newParent == v {
		return fmt.Errorf("tdgraph: vertex %d cannot parent itself", v)
	}
	if !s.Tree.InTree(newParent) {
		return fmt.Errorf("tdgraph: new parent %d is outside the tree", newParent)
	}
	for u := newParent; u != -1; u = s.Tree.Parent[u] {
		if u == v {
			return fmt.Errorf("tdgraph: reparenting %d under its own subtree (via %d) would cycle", v, newParent)
		}
	}
	s.Tree.SetParent(v, newParent)
	s.subtree = s.Tree.SubtreeSizes()
	if s.IsM(v) {
		for u := newParent; u != topo.Base && !s.IsM(u); u = s.Tree.Parent[u] {
			s.setLabel(u, M)
		}
	}
	return nil
}

// Edges returns the potential aggregation edges of the labeled graph G of
// §3 under the current labels: one unicast edge per T vertex to its tree
// parent, and one broadcast edge from each M vertex to every up-ring M
// neighbour (T vertices ignore synopses, so those transmissions never become
// G edges). Used by the correctness checks and tests.
func (s *State) Edges() [][2]int {
	var edges [][2]int
	for v := 0; v < s.G.N(); v++ {
		if !s.R.Reachable(v) || v == topo.Base {
			continue
		}
		if s.label[v] == T {
			if p := s.Tree.Parent[v]; p != -1 {
				edges = append(edges, [2]int{v, p})
			}
			continue
		}
		for _, u := range s.R.Up[v] {
			if s.label[u] == M {
				edges = append(edges, [2]int{v, u})
			}
		}
	}
	return edges
}
