package tdgraph

// Strategy selects between the two adaptation schemes of §4.2.
type Strategy uint8

const (
	// StrategyNone disables adaptation (the TAG and SD baselines).
	StrategyNone Strategy = iota
	// StrategyCoarse is TD-Coarse: the delta grows or shrinks by a whole
	// level of switchable vertices at a time.
	StrategyCoarse
	// StrategyTD is TD: expansion targets the subtrees with the most
	// non-contributing nodes; contraction retires the subtrees with the
	// fewest.
	StrategyTD
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyCoarse:
		return "TD-Coarse"
	case StrategyTD:
		return "TD"
	default:
		return "none"
	}
}

// Action is the outcome of one adaptation decision.
type Action uint8

// Adaptation outcomes.
const (
	ActionNone Action = iota
	ActionExpand
	ActionShrink
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionExpand:
		return "expand"
	case ActionShrink:
		return "shrink"
	default:
		return "none"
	}
}

// Controller is the base station's adaptation logic: compare the fraction of
// contributing nodes against the user threshold, expand or shrink the delta
// region accordingly, and damp oscillation by exponentially backing off when
// expansion and contraction alternate (§4.2's damping heuristic).
type Controller struct {
	// Threshold is the user-specified minimum fraction of nodes that should
	// contribute to the answer (the paper's experiments use 0.90).
	Threshold float64
	// ShrinkMargin is how far above Threshold the contributing fraction must
	// be before the delta shrinks ("well above the threshold", §4.2).
	ShrinkMargin float64
	// Strategy picks TD-Coarse or TD.
	Strategy Strategy
	// TopK selects the TD expansion heuristic: 0 uses the "max/2" rule,
	// k > 0 uses the k-th largest reported non-contributing count as the
	// threshold — the §4.2 "maintaining the top-k values instead of just
	// the top-1" extension.
	TopK int

	lastAction Action
	oscillated int // consecutive direction alternations
	cooldown   int // adaptation periods to skip
}

// NewController returns a controller with the paper's defaults: a 90%
// threshold and a 5% shrink margin.
func NewController(strategy Strategy) *Controller {
	return &Controller{Threshold: 0.90, ShrinkMargin: 0.05, Strategy: strategy}
}

// Decide applies one adaptation period: given the observed contributing
// fraction, the per-vertex non-contributing counts reported by frontier M
// vertices, the top reported counts (descending; topNC[0] is the §4.2 max)
// and the observed minimum, it mutates the state and returns the action
// taken together with the number of vertices switched.
func (c *Controller) Decide(s *State, contribFrac float64, notContrib []int, topNC []int, minNC int) (Action, int) {
	if c.Strategy == StrategyNone {
		return ActionNone, 0
	}
	if c.cooldown > 0 {
		c.cooldown--
		return ActionNone, 0
	}
	var want Action
	switch {
	case contribFrac < c.Threshold:
		want = ActionExpand
	case contribFrac >= c.Threshold+c.ShrinkMargin:
		want = ActionShrink
	default:
		c.oscillated = 0
		c.lastAction = ActionNone
		return ActionNone, 0
	}

	// Oscillation damping: alternating expand/shrink backs off
	// exponentially (capped at 4 periods, so a regime change is never
	// ignored for long); repeating the same direction resets the backoff.
	if c.lastAction != ActionNone && want != c.lastAction {
		c.oscillated++
		c.cooldown = 1 << minInt(c.oscillated, 2)
	} else {
		c.oscillated = 0
	}
	c.lastAction = want

	var switched int
	switch {
	case want == ActionExpand && c.Strategy == StrategyCoarse:
		switched = s.ExpandCoarse()
	case want == ActionExpand && c.Strategy == StrategyTD:
		switched = s.ExpandTDAtLeast(notContrib, c.expandThreshold(topNC))
	case want == ActionShrink && c.Strategy == StrategyCoarse:
		switched = s.ShrinkCoarse()
	case want == ActionShrink && c.Strategy == StrategyTD:
		switched = s.ShrinkTD(notContrib, minNC)
	}
	if switched == 0 {
		return ActionNone, 0
	}
	return want, switched
}

// expandThreshold derives the expansion threshold from the reported top
// non-contributing counts: the k-th largest under TopK, or the paper's
// "max/2" heuristic otherwise. Targeting every subtree within half of the
// worst keeps the fine-grained locality while converging in a few periods.
func (c *Controller) expandThreshold(topNC []int) int {
	if len(topNC) == 0 {
		return 0
	}
	if c.TopK > 0 {
		idx := c.TopK - 1
		if idx >= len(topNC) {
			idx = len(topNC) - 1
		}
		return topNC[idx]
	}
	return (topNC[0] + 1) / 2
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
