package tdgraph

import (
	"testing"

	"tributarydelta/internal/topo"
)

func TestFrontierMSupersetOfSwitchable(t *testing.T) {
	// Every switchable M vertex is a frontier vertex (its tree children are
	// a subset of its down-ring radio neighbours).
	g, r, tr := testTopology(41, 300)
	s := NewState(g, r, tr, 2)
	for _, v := range s.SwitchableM() {
		if !s.IsFrontierM(v) {
			t.Fatalf("switchable M vertex %d is not frontier", v)
		}
	}
	_ = g
}

func TestFrontierMDetectsMixedChildren(t *testing.T) {
	g, r, tr := testTopology(42, 300)
	s := NewState(g, r, tr, 2)
	// Find an M vertex with an M tree child: it must not be frontier.
	found := false
	for v := 0; v < g.N(); v++ {
		if !s.IsM(v) {
			continue
		}
		for _, c := range tr.Children[v] {
			if s.IsM(c) {
				if s.IsFrontierM(v) {
					t.Fatalf("vertex %d with M child %d reported frontier", v, c)
				}
				found = true
			}
		}
	}
	if !found {
		t.Skip("no interior delta vertex in this topology")
	}
}

func TestExpandTDAtLeastThreshold(t *testing.T) {
	g, r, tr := testTopology(43, 300)
	s := NewState(g, r, tr, 1)
	nc := make([]int, g.N())
	frontier := 0
	for _, v := range s.FrontierM() {
		if v == topo.Base {
			continue
		}
		frontier++
		nc[v] = frontier % 10 // values 1..9 cycling
	}
	if frontier < 4 {
		t.Skip("too few frontier vertices")
	}
	before := s.DeltaSize()
	switched := s.ExpandTDAtLeast(nc, 5)
	// Only children of frontier vertices with nc >= 5 switch.
	if switched == 0 {
		t.Skip("qualifying frontier vertices had no reachable T children")
	}
	if s.DeltaSize() != before+switched {
		t.Fatal("delta size inconsistent with switch count")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExpandTDAtLeastNeverSwitchesLowNC(t *testing.T) {
	g, r, tr := testTopology(44, 300)
	s := NewState(g, r, tr, 1)
	nc := make([]int, g.N())
	var lowParents []int
	for _, v := range s.FrontierM() {
		if v == topo.Base {
			continue
		}
		nc[v] = 1
		lowParents = append(lowParents, v)
	}
	if len(lowParents) == 0 {
		t.Skip("no frontier")
	}
	s.ExpandTDAtLeast(nc, 100)
	for _, v := range lowParents {
		for _, c := range tr.Children[v] {
			if s.IsM(c) {
				t.Fatalf("child %d of low-NC vertex %d switched", c, v)
			}
		}
	}
	_ = g
	_ = r
}

func TestExpandRecruitsLossyBaseChild(t *testing.T) {
	// A base station with mixed children: the lossy T child's subtree must
	// be recruitable via its recorded NC.
	g, r, tr := testTopology(45, 200)
	s := NewState(g, r, tr, 0) // delta = {base}
	// Recruit one child manually to make the children mixed.
	kids := tr.Children[topo.Base]
	if len(kids) < 2 {
		t.Skip("base has too few children")
	}
	nc := make([]int, g.N())
	for i := range nc {
		nc[i] = -2
	}
	// First expansion from the degenerate delta recruits everything; do a
	// targeted one instead: child 0 has high NC.
	nc[kids[0]] = 50
	switched := s.ExpandTDAtLeast(nc, 25)
	if switched != 1 || !s.IsM(kids[0]) {
		t.Fatalf("lossy base child not recruited (switched=%d)", switched)
	}
	for _, c := range kids[1:] {
		if s.IsM(c) {
			t.Fatalf("non-lossy base child %d recruited", c)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
