package tdgraph

// This file implements the paper's two correctness conditions over an
// arbitrary labeled directed graph, independent of any particular topology,
// so that their relationship (each implies the other on graphs where every
// vertex routes onward; see §3) can be property-tested.

// EdgeCorrect checks Property 1 on a labeled digraph: an M edge (an edge
// whose source is labeled M) is never incident on a T vertex.
func EdgeCorrect(n int, edges [][2]int, label []Label) bool {
	for _, e := range edges {
		if label[e[0]] == M && label[e[1]] == T {
			return false
		}
	}
	return true
}

// PathCorrect checks Property 2 on a labeled digraph: in no directed path
// does a T edge appear after an M edge. Equivalently, no vertex reachable
// via an M edge ever has an outgoing T edge on the continuation — i.e. there
// is no pair (M edge into v, T edge out of w) with w reachable from v.
func PathCorrect(n int, edges [][2]int, label []Label) bool {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	// afterM[v]: v is the head of some M edge, or reachable from one.
	afterM := make([]bool, n)
	var stack []int
	for _, e := range edges {
		if label[e[0]] == M && !afterM[e[1]] {
			afterM[e[1]] = true
			stack = append(stack, e[1])
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !afterM[w] {
				afterM[w] = true
				stack = append(stack, w)
			}
		}
	}
	for _, e := range edges {
		if label[e[0]] == T && afterM[e[0]] {
			return false
		}
	}
	return true
}
