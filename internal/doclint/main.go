// Command doclint enforces the documentation contract CI runs over the
// public facade: every exported top-level symbol (funcs, methods, types,
// consts, vars) in the listed package directories must carry a doc
// comment, either on its own spec or on the enclosing declaration group,
// and every package must have a package comment on at least one file.
// Exported fields of exported struct types must carry a doc or line
// comment too — the query layer's option/result/stats structs are read
// through their fields, so an undocumented field is an undocumented API.
// Directories are scanned non-recursively; _test.go files are skipped.
//
//	go run ./internal/doclint . ./cmd/tdserve ./internal/transport
//
// Exit status 1 lists every offending symbol as file:line: name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	bad := 0
	for _, dir := range dirs {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported symbol(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir reports the number of undocumented exported symbols in one
// directory's packages.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Fprintf(os.Stderr, "%s: package %s has no package comment\n", dir, pkg.Name)
			bad++
		}
		for name, f := range pkg.Files {
			bad += lintFile(fset, name, f)
		}
	}
	return bad
}

// lintFile reports undocumented exported top-level symbols of one file.
func lintFile(fset *token.FileSet, name string, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, sym string) {
		fmt.Fprintf(os.Stderr, "%s: exported %s is missing a doc comment\n", fset.Position(pos), sym)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
						report(sp.Pos(), sp.Name.Name)
					}
					if st, ok := sp.Type.(*ast.StructType); ok && sp.Name.IsExported() {
						bad += lintFields(fset, sp.Name.Name, st)
					}
				case *ast.ValueSpec:
					for _, id := range sp.Names {
						if id.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							report(id.Pos(), id.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// lintFields reports undocumented exported fields of one exported struct.
func lintFields(fset *token.FileSet, typeName string, st *ast.StructType) int {
	bad := 0
	for _, f := range st.Fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				fmt.Fprintf(os.Stderr, "%s: exported field %s.%s is missing a doc comment\n",
					fset.Position(name.Pos()), typeName, name.Name)
				bad++
			}
		}
	}
	return bad
}
