// The loader: a self-contained, offline replacement for go/packages built
// on `go list -deps -json` plus go/parser and go/types. Dependencies —
// including the standard library — are type-checked from source in the
// topological order go list emits, so the loader needs no export data, no
// network and no toolchain cache beyond GOROOT sources.
package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked package: the unit RunAnalyzers
// passes to each analyzer.
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// Name is the package name.
	Name string
	// Dir is the directory holding the sources.
	Dir string
	// GoFiles are the absolute paths of the non-test sources built on this
	// platform.
	GoFiles []string
	// Fset is the loader-wide file set.
	Fset *token.FileSet
	// Syntax is the parsed, comment-preserving syntax of GoFiles.
	Syntax []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records the type-checker's facts for Syntax.
	TypesInfo *types.Info
}

// A Loader loads and type-checks packages of one module, caching every
// package (standard library included) across calls — analyzer tests share
// one Loader so the stdlib is checked once per process.
type Loader struct {
	// Dir is the module root `go list` runs in.
	Dir  string
	fset *token.FileSet
	pkgs map[string]*Package // by import path; nil entry = being loaded
}

// NewLoader returns a loader rooted at the module directory dir.
func NewLoader(dir string) *Loader {
	return &Loader{Dir: dir, fset: token.NewFileSet(), pkgs: make(map[string]*Package)}
}

// ModuleRoot walks up from the working directory to the enclosing go.mod —
// how tests and the driver locate the module without configuration.
func ModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("framework: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves the patterns with `go list -deps`, type-checks every listed
// package in dependency order, and returns the packages the patterns
// matched directly (dependencies are cached but not returned). CGO is
// disabled for the listing so every package resolves to pure Go sources.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Standard,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("framework: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("framework: parsing go list output: %v", err)
		}
		listed = append(listed, &p)
	}
	var roots []*Package
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("framework: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := l.check(p)
		if err != nil {
			return nil, err
		}
		if !p.DepOnly && pkg != nil {
			roots = append(roots, pkg)
		}
	}
	return roots, nil
}

// check parses and type-checks one listed package, caching the result.
// go list -deps emits dependencies before dependents, so every import is
// already in the cache when its importer is checked.
func (l *Loader) check(p *listedPackage) (*Package, error) {
	if cached, ok := l.pkgs[p.ImportPath]; ok {
		return cached, nil
	}
	if p.ImportPath == "unsafe" {
		pkg := &Package{PkgPath: "unsafe", Name: "unsafe", Types: types.Unsafe, Fset: l.fset}
		l.pkgs["unsafe"] = pkg
		return pkg, nil
	}
	if len(p.GoFiles) == 0 {
		l.pkgs[p.ImportPath] = nil
		return nil, nil
	}
	files := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		files[i] = filepath.Join(p.Dir, f)
	}
	pkg, err := l.typecheck(p.ImportPath, p.Dir, files, p.Standard)
	if err != nil {
		return nil, err
	}
	l.pkgs[p.ImportPath] = pkg
	return pkg, nil
}

// LoadDir parses every non-test .go file of dir as one package rooted at
// importPath, resolving its imports through the module — the fixture entry
// point of the analysistest-style harness, which lets a testdata directory
// (invisible to `go list ./...`) masquerade as any package path an
// analyzer's scope rules key on.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, filepath.Join(dir, name))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("framework: no .go files in %s", dir)
	}
	// Pre-load the fixture's imports (and transitively, theirs) into the
	// cache so the importer below can resolve them.
	imports, err := l.scanImports(files)
	if err != nil {
		return nil, err
	}
	if len(imports) > 0 {
		if _, err := l.Load(imports...); err != nil {
			return nil, err
		}
	}
	return l.typecheck(importPath, dir, files, false)
}

// scanImports parses import clauses only and returns the union of imported
// paths.
func (l *Loader) scanImports(files []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, file := range files {
		f, err := parser.ParseFile(l.fset, file, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	return out, nil
}

// loaderImporter resolves imports from the loader's cache.
type loaderImporter struct{ l *Loader }

// Import implements types.Importer against the cache.
func (i loaderImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := i.l.pkgs[path]; ok && pkg != nil {
		return pkg.Types, nil
	}
	return nil, fmt.Errorf("framework: import %q not loaded", path)
}

// typecheck parses and type-checks one package's files. Type errors in
// standard-library dependencies are tolerated (go/types recovers with
// invalid types; contract analyzers only need the module's own packages to
// check cleanly); errors in module packages are fatal.
func (l *Loader) typecheck(importPath, dir string, files []string, standard bool) (*Package, error) {
	syntax := make([]*ast.File, 0, len(files))
	for _, file := range files {
		f, err := parser.ParseFile(l.fset, file, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("framework: %v", err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var firstErr error
	cfg := types.Config{
		Importer: loaderImporter{l},
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := cfg.Check(importPath, l.fset, syntax, info)
	if firstErr != nil && !standard {
		return nil, fmt.Errorf("framework: type-checking %s: %v", importPath, firstErr)
	}
	return &Package{
		PkgPath:   importPath,
		Name:      tpkg.Name(),
		Dir:       dir,
		GoFiles:   files,
		Fset:      l.fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
