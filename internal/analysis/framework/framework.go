// Package framework is the offline analysis core under cmd/tdlint: a
// minimal, dependency-free re-implementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic), a module-aware package
// loader that type-checks from source via `go list`, and an
// analysistest-style fixture runner. The repo vendors no third-party code,
// so the suite is built on the standard library's go/ast, go/parser and
// go/types alone; the API mirrors go/analysis closely enough that the
// analyzers in internal/analysis would port to the upstream driver by
// changing imports.
//
// Suppression: a diagnostic is dropped when the line it lands on, or the
// line directly above it, carries a
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// comment. The justification is mandatory — an ignore without a reason is
// itself reported — so every waived contract violation documents why it is
// safe at the site that waives it.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check: a name used in diagnostics and
// //lint:ignore directives, a doc string, and a Run function applied once
// per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in output and ignore directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects one package via the Pass and reports findings; the
	// returned value is unused (kept for go/analysis shape).
	Run func(*Pass) (any, error)
}

// A Pass presents one package to one analyzer, mirroring analysis.Pass:
// parsed syntax, type information, and a Report sink.
type Pass struct {
	// Analyzer is the check this pass runs.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line.
	Fset *token.FileSet
	// Files is the package's parsed, comment-preserving syntax.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression and object facts.
	TypesInfo *types.Info
	// Report receives one diagnostic; use Reportf for formatting.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message states the violated contract.
	Message string
}

// A Finding is a resolved diagnostic: analyzer name plus concrete position,
// ready for printing and for //lint:ignore filtering.
type Finding struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos is the resolved file position.
	Pos token.Position
	// Message states the violated contract.
	Message string
}

// String formats the finding in the file:line: [analyzer] message form the
// driver prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line      int
	analyzers []string // names, or ["*"]
	used      bool
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)(.*)$`)

// collectIgnores parses every //lint:ignore directive of a file and reports
// malformed ones (missing justification) as findings in their own right.
func collectIgnores(fset *token.FileSet, f *ast.File) ([]*ignoreDirective, []Finding) {
	var dirs []*ignoreDirective
	var bad []Finding
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			if strings.TrimSpace(m[2]) == "" {
				bad = append(bad, Finding{
					Analyzer: "lintdirective",
					Pos:      pos,
					Message:  "//lint:ignore needs a justification after the analyzer name",
				})
				continue
			}
			dirs = append(dirs, &ignoreDirective{
				line:      pos.Line,
				analyzers: strings.Split(m[1], ","),
			})
		}
	}
	return dirs, bad
}

// matches reports whether the directive suppresses analyzer name findings
// on the given line (the directive's own line or the line below it).
func (d *ignoreDirective) matches(name string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, a := range d.analyzers {
		if a == "*" || a == name {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package, resolves positions,
// filters //lint:ignore'd findings, and returns the survivors sorted by
// position. Unused directives are not reported (a fixed violation leaves
// its waiver behind until the next cleanup pass), but directives missing a
// justification are.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var all []Finding
	ignores := make(map[string][]*ignoreDirective) // filename -> directives
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			name := pkg.Fset.Position(f.Pos()).Filename
			dirs, bad := collectIgnores(pkg.Fset, f)
			ignores[name] = append(ignores[name], dirs...)
			all = append(all, bad...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				all = append(all, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	var kept []Finding
	for _, f := range all {
		suppressed := false
		for _, d := range ignores[f.Pos.Filename] {
			if d.matches(f.Analyzer, f.Pos.Line) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}
