// The analysistest-style harness: fixture files carry `// want "regexp"`
// comments on the lines where an analyzer must report, and RunFixture
// fails the test on any mismatch in either direction — a diagnostic with
// no want, or a want with no diagnostic.
package framework

import (
	"regexp"
	"strings"
	"testing"
)

// wantRe matches one `// want "re" "re" ...` trailer. The quoted patterns
// are Go regular expressions matched against diagnostic messages.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wantPatternRe extracts the individual quoted patterns of a want trailer.
var wantPatternRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one want pattern at one line.
type expectation struct {
	line    int
	pattern *regexp.Regexp
	matched bool
}

// RunFixture loads dir as a package named importPath, runs exactly one
// analyzer over it, and compares the findings (after //lint:ignore
// filtering, which fixtures may exercise deliberately) against the
// fixture's want comments.
func RunFixture(t *testing.T, l *Loader, a *Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	expects := collectWants(t, pkg)
	for _, f := range findings {
		ok := false
		for _, e := range expects[f.Pos.Filename] {
			if e.line == f.Pos.Line && !e.matched && e.pattern.MatchString(f.Message) {
				e.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for file, es := range expects {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, e.line, e.pattern)
			}
		}
	}
}

// collectWants parses the want comments of every fixture file.
func collectWants(t *testing.T, pkg *Package) map[string][]*expectation {
	t.Helper()
	out := make(map[string][]*expectation)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pats := wantPatternRe.FindAllStringSubmatch(m[1], -1)
				if len(pats) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern", pos)
				}
				for _, p := range pats {
					re, err := regexp.Compile(strings.ReplaceAll(p[1], `\"`, `"`))
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p[1], err)
					}
					out[pos.Filename] = append(out[pos.Filename], &expectation{line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}
