package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"tributarydelta/internal/analysis/framework"
)

// WireSafe enforces the sticky-error decoding contract of the receive path
// (DESIGN.md §8.2). In internal/wire's read-side functions and in every
// Decode*/decode*/ReadWire*/readWire* function repo-wide — the functions
// reachable from the datagram/envelope receive path, which parse bytes an
// adversary controls — it forbids:
//
//   - raw indexing or slicing of []byte values: bounds and truncation
//     handling belong to the sticky-error wire.Reader, whose methods are
//     the single audited, fuzzed implementation (the Reader's own methods
//     are exempt — they ARE the guard);
//   - encoding/binary varint decoding (binary.Uvarint and friends accept
//     non-minimal encodings, the canonicality bug class PR 7's fuzzing
//     shook out of the datagram path; wire.Reader.Uvarint rejects them).
//
// Repo-wide it also requires every Append* codec that takes a []byte buffer
// to return a []byte — append-style encoders that mutate in place and drop
// the grown slice corrupt the caller's view of the buffer.
var WireSafe = &framework.Analyzer{
	Name: "wiresafe",
	Doc:  "receive-path decoding must go through the sticky-error wire.Reader; Append* codecs must return the appended slice",
	Run:  runWireSafe,
}

func runWireSafe(pass *framework.Pass) (any, error) {
	inWire := inScope(pass.Pkg.Path(), []string{"internal/wire"})
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkAppendCodecShape(pass, fn)
			if !isReceivePathFunc(fn, inWire) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IndexExpr:
					if isByteSlice(typeOf(pass, n.X)) {
						pass.Reportf(n.Pos(), "raw byte indexing %s in receive-path function %s; decode through the sticky-error wire.Reader", types.ExprString(n), fn.Name.Name)
					}
				case *ast.SliceExpr:
					if isByteSlice(typeOf(pass, n.X)) {
						pass.Reportf(n.Pos(), "raw byte slicing %s in receive-path function %s; decode through the sticky-error wire.Reader", types.ExprString(n), fn.Name.Name)
					}
				case *ast.CallExpr:
					callee := calleeFunc(pass.TypesInfo, n)
					if calleePkgPath(callee) == "encoding/binary" && strings.Contains(strings.ToLower(callee.Name()), "varint") {
						pass.Reportf(n.Pos(), "binary.%s accepts non-minimal varint encodings (canonicality bug class); use wire.Reader.Uvarint/Varint", callee.Name())
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// isReceivePathFunc reports whether fn parses attacker-controlled bytes:
// any Decode*/ReadWire* (and unexported decode*/readWire*/read*) function,
// plus — inside internal/wire — every read-side function that is not a
// method on the Reader itself (the Reader's methods implement the guard and
// necessarily index the underlying buffer).
func isReceivePathFunc(fn *ast.FuncDecl, inWire bool) bool {
	name := fn.Name.Name
	if isReaderMethod(fn) {
		return false
	}
	for _, prefix := range []string{"Decode", "decode", "ReadWire", "readWire"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	if inWire {
		// wire's own read side beyond the naming convention: the Decoder's
		// methods and any Read*/read* helper.
		if strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "read") {
			return true
		}
		if fn.Recv != nil && receiverTypeName(fn) == "Decoder" {
			return true
		}
	}
	return false
}

// isReaderMethod reports whether fn is a method on wire.Reader (by receiver
// type name; the analyzer only exempts it inside internal/wire because only
// there can the type be declared).
func isReaderMethod(fn *ast.FuncDecl) bool {
	return fn.Recv != nil && receiverTypeName(fn) == "Reader"
}

// receiverTypeName returns the receiver's type name, or "".
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr: // generic receiver T[P1, P2]
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// checkAppendCodecShape requires Append*-named functions with a []byte
// parameter to return at least one []byte result.
func checkAppendCodecShape(pass *framework.Pass, fn *ast.FuncDecl) {
	if !strings.HasPrefix(fn.Name.Name, "Append") {
		return
	}
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	hasByteParam := false
	for i := 0; i < sig.Params().Len(); i++ {
		if isByteSlice(sig.Params().At(i).Type()) {
			hasByteParam = true
			break
		}
	}
	if !hasByteParam {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isByteSlice(sig.Results().At(i).Type()) {
			return
		}
	}
	pass.Reportf(fn.Pos(), "append-style codec %s takes a []byte buffer but returns no []byte; return the appended slice so callers keep the grown buffer", fn.Name.Name)
}

// typeOf returns the static type of e, or nil.
func typeOf(pass *framework.Pass, e ast.Expr) types.Type {
	return pass.TypesInfo.Types[e].Type
}
