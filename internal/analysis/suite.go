// Package analysis is tdlint's analyzer suite: five static checks that turn
// the repo's prose contracts (DESIGN.md §8) into machine-checked rules —
// determinism of the epoch path, wire-safety of the receive path, the
// single-writer network.Stats discipline, zero-alloc hot-path hygiene, and
// the exported-symbol documentation contract formerly enforced by the
// standalone doclint. The suite runs under cmd/tdlint and in the analyzer
// unit tests; every rule can be waived at a single site with a justified
// //lint:ignore comment (see the framework package).
package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"tributarydelta/internal/analysis/framework"
)

// Suite returns every analyzer cmd/tdlint runs, in reporting order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		Determinism,
		WireSafe,
		StatsWriter,
		HotPath,
		DocComment,
	}
}

// inScope reports whether pkgPath is path or a subpackage of one of the
// scope paths. Scopes are matched as path suffixes of the module-qualified
// import path, so fixtures loaded under a fake path can opt in.
func inScope(pkgPath string, scopes []string) bool {
	for _, s := range scopes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) ||
			strings.HasPrefix(pkgPath, s+"/") || strings.Contains(pkgPath, "/"+s+"/") {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the declared function or method
// it invokes, or nil for indirect calls and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// calleePkgPath returns the import path of the package declaring the called
// function, or "".
func calleePkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isByteSlice reports whether t is []byte (after unaliasing).
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// rootIdent returns the identifier at the base of a selector/index/slice
// chain (x in x.f[i][:n]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// funcDocHas reports whether the function's doc comment block contains the
// given directive line (e.g. "//td:hotpath").
func funcDocHas(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}
