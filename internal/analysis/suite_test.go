package analysis

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tributarydelta/internal/analysis/framework"
)

// The fixtures live under testdata (invisible to go list ./... and to the
// tdlint driver) and are loaded under fake import paths chosen so the
// scope rules of each analyzer see them as in-scope packages. One Loader
// is shared across all fixture tests: the expensive part is type-checking
// the standard library and module dependencies from source, and the cache
// makes every load after the first nearly free.
var (
	loaderOnce sync.Once
	loader     *framework.Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *framework.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := framework.ModuleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		loader = framework.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("locating module root: %v", loaderErr)
	}
	return loader
}

func TestDeterminismFixture(t *testing.T) {
	framework.RunFixture(t, fixtureLoader(t), Determinism,
		filepath.Join("testdata", "determinism"), "fixture/internal/runner")
}

func TestWireSafeFixture(t *testing.T) {
	framework.RunFixture(t, fixtureLoader(t), WireSafe,
		filepath.Join("testdata", "wiresafe"), "fixture/internal/wire")
}

func TestStatsWriterFixture(t *testing.T) {
	framework.RunFixture(t, fixtureLoader(t), StatsWriter,
		filepath.Join("testdata", "statswriter"), "fixture/statsclient")
}

func TestStatsWriterMutexFixture(t *testing.T) {
	framework.RunFixture(t, fixtureLoader(t), StatsWriter,
		filepath.Join("testdata", "statsmutex"), "fixture/internal/network")
}

func TestHotPathFixture(t *testing.T) {
	framework.RunFixture(t, fixtureLoader(t), HotPath,
		filepath.Join("testdata", "hotpath"), "fixture/hotpath")
}

func TestDocCommentFixture(t *testing.T) {
	framework.RunFixture(t, fixtureLoader(t), DocComment,
		filepath.Join("testdata", "doccomment"), "fixture/internal/transport")
}

// TestIgnoreDirectiveNeedsJustification pins the malformed-waiver rule: a
// //lint:ignore with no justification is reported as a lintdirective
// finding and does not suppress the violation beneath it. Checked through
// RunAnalyzers directly because the directive finding lands on the
// comment's own line, where a want trailer cannot sit.
func TestIgnoreDirectiveNeedsJustification(t *testing.T) {
	l := fixtureLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "lintdirective"), "fixture2/internal/runner")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := framework.RunAnalyzers([]*framework.Package{pkg}, []*framework.Analyzer{Determinism})
	if err != nil {
		t.Fatalf("running determinism: %v", err)
	}
	var gotDirective, gotClock bool
	for _, f := range findings {
		switch f.Analyzer {
		case "lintdirective":
			gotDirective = true
			if !strings.Contains(f.Message, "justification") {
				t.Errorf("lintdirective message = %q, want mention of the missing justification", f.Message)
			}
		case "determinism":
			gotClock = true
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if !gotDirective {
		t.Error("malformed //lint:ignore was not reported")
	}
	if !gotClock {
		t.Error("malformed //lint:ignore suppressed the finding below it")
	}
}

// TestSuite pins the suite composition the driver and CI rely on.
func TestSuite(t *testing.T) {
	want := []string{"determinism", "wiresafe", "statswriter", "hotpath", "doccomment"}
	got := Suite()
	if len(got) != len(want) {
		t.Fatalf("Suite() has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Suite()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s is missing doc or run function", a.Name)
		}
	}
}
