package analysis

import (
	"go/ast"
	"regexp"
	"strings"

	"tributarydelta/internal/analysis/framework"
)

// docCommentScope lists the packages under the documentation contract: the
// public facade, the service-facing commands, the packages whose exported
// surface backs them — and the lint suite itself. This is the dir list of
// the retired standalone internal/doclint command, carried forward.
var docCommentScope = []string{
	"tributarydelta", // the root facade package
	"cmd/tdserve",
	"cmd/tdbench",
	"cmd/tdtopo",
	"cmd/tdnode",
	"cmd/tdlint",
	"internal/transport",
	"internal/network",
	"internal/wire",
	"internal/analysis",
	"internal/analysis/framework",
}

// DocComment is the doclint port (DESIGN.md §8.5): every exported top-level
// symbol (funcs, methods, types, consts, vars) of the scope packages must
// carry a doc comment, either on its own spec or on the enclosing
// declaration group; every package must have a package comment on at least
// one file; and exported fields of exported struct types must carry a doc
// or line comment — the query layer's option/result/stats structs are read
// through their fields, so an undocumented field is an undocumented API.
var DocComment = &framework.Analyzer{
	Name: "doccomment",
	Doc:  "exported symbols, struct fields and packages of the facade must be documented",
	Run:  runDocComment,
}

// docInScope matches exactly (or as a trailing path suffix, so fixtures
// can opt in) — unlike inScope it does not extend to subpackages, because
// the scope names whole packages, and "tributarydelta" as a prefix would
// swallow the entire module.
func docInScope(pkgPath string) bool {
	for _, s := range docCommentScope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// directiveLineRe matches comment lines that are tool directives rather
// than prose: //go:/lint:/td: machine annotations and the fixture
// harness's want trailers.
var directiveLineRe = regexp.MustCompile(`^//\s*(go:|lint:|td:|want\s)`)

// isDoc reports whether cg documents a symbol: non-nil with at least one
// line that is not a directive. A //lint:ignore waiver or a fixture want
// trailer hanging off a declaration is machine-facing and does not count
// as documentation.
func isDoc(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if !directiveLineRe.MatchString(c.Text) {
			return true
		}
	}
	return false
}

func runDocComment(pass *framework.Pass) (any, error) {
	if !docInScope(pass.Pkg.Path()) {
		return nil, nil
	}
	hasPkgDoc := false
	for _, f := range pass.Files {
		if isDoc(f.Doc) {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc && len(pass.Files) > 0 {
		pass.Reportf(pass.Files[0].Name.Pos(), "package %s has no package comment", pass.Pkg.Name())
	}
	for _, f := range pass.Files {
		lintDocFile(pass, f)
	}
	return nil, nil
}

// lintDocFile reports undocumented exported top-level symbols of one file.
func lintDocFile(pass *framework.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && !isDoc(d.Doc) {
				pass.Reportf(d.Pos(), "exported %s is missing a doc comment", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && !isDoc(d.Doc) && !isDoc(sp.Doc) {
						pass.Reportf(sp.Pos(), "exported %s is missing a doc comment", sp.Name.Name)
					}
					if st, ok := sp.Type.(*ast.StructType); ok && sp.Name.IsExported() {
						lintDocFields(pass, sp.Name.Name, st)
					}
				case *ast.ValueSpec:
					for _, id := range sp.Names {
						if id.IsExported() && !isDoc(d.Doc) && !isDoc(sp.Doc) && !isDoc(sp.Comment) {
							pass.Reportf(id.Pos(), "exported %s is missing a doc comment", id.Name)
						}
					}
				}
			}
		}
	}
}

// lintDocFields reports undocumented exported fields of one exported
// struct.
func lintDocFields(pass *framework.Pass, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isDoc(field.Doc) || isDoc(field.Comment) {
			continue
		}
		for _, name := range field.Names {
			if name.IsExported() {
				pass.Reportf(name.Pos(), "exported field %s.%s is missing a doc comment", typeName, name.Name)
			}
		}
	}
}
