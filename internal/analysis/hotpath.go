package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"tributarydelta/internal/analysis/framework"
)

// HotPath enforces zero-alloc hygiene on functions annotated //td:hotpath —
// the steady-state per-epoch loops pinned by TestEpochZeroAlloc* and
// TestEpochLowAllocTD (DESIGN.md §8.4). Inside an annotated function it
// forbids the construct classes that put allocations back on the epoch
// bill:
//
//   - fmt calls (every fmt entry point allocates, and its ...any
//     parameters box their operands);
//   - closure literals (a closure that captures anything heap-allocates
//     its environment per call);
//   - &T{...} address-of-composite-literal and slice/map composite
//     literals (fresh backing store per execution);
//   - append to a slice that is neither a parameter (caller-owned,
//     append-style contract) nor reassigned to the expression it extends
//     (x = append(x, ...) / x = append(x[:0], ...), the grow-once pattern
//     whose steady state allocates nothing).
//
// The annotation is a contract, not a hint: annotate exactly the functions
// the alloc tests pin, and waive intentional exceptions with a justified
// //lint:ignore hotpath comment.
var HotPath = &framework.Analyzer{
	Name: "hotpath",
	Doc:  "//td:hotpath functions must not contain allocation-prone constructs",
	Run:  runHotPath,
}

// HotPathDirective is the doc-comment line that opts a function into the
// analyzer.
const HotPathDirective = "//td:hotpath"

func runHotPath(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcDocHas(fn, HotPathDirective) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil, nil
}

// checkHotFunc walks one annotated function's body.
func checkHotFunc(pass *framework.Pass, fn *ast.FuncDecl) {
	params := paramVars(pass, fn)
	// First pass: record the assignment target of every append call that
	// appears as a direct right-hand side (so the self-append pattern can
	// be recognized when the call is visited), and the source ranges of
	// panic(...) calls (a fmt.Sprintf feeding a panic is a cold abort
	// path, not an epoch-loop allocation).
	appendLHS := make(map[*ast.CallExpr]ast.Expr)
	var panicRanges [][2]token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					appendLHS[call] = n.Lhs[i]
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					panicRanges = append(panicRanges, [2]token.Pos{n.Pos(), n.End()})
				}
			}
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicRanges {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in //td:hotpath function %s allocates its environment; hoist the state onto the receiver or a worker struct", fn.Name.Name)
			return false // the literal's own body is not hot-path scope
		case *ast.CallExpr:
			callee := calleeFunc(pass.TypesInfo, n)
			if calleePkgPath(callee) == "fmt" && !inPanic(n.Pos()) {
				pass.Reportf(n.Pos(), "fmt.%s call in //td:hotpath function %s allocates; format outside the epoch loop", callee.Name(), fn.Name.Name)
			}
			checkHotAppend(pass, fn, n, params, appendLHS[n])
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(cl.Pos(), "&composite-literal in //td:hotpath function %s escapes to the heap; reuse a pooled or receiver-owned object", fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			t := typeOf(pass, n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s composite literal in //td:hotpath function %s allocates fresh backing store; reuse a receiver-owned buffer", t.String(), fn.Name.Name)
				}
			}
		}
		return true
	})
}

// isAppendCall reports whether call is the builtin append.
func isAppendCall(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// checkHotAppend flags append calls that can silently allocate each epoch:
// the target is allowed to be a parameter (append-style codec contract) or
// to flow back into itself via lhs = append(lhs[...], ...).
func checkHotAppend(pass *framework.Pass, fn *ast.FuncDecl, call *ast.CallExpr, params map[*types.Var]bool, lhs ast.Expr) {
	if !isAppendCall(pass, call) || len(call.Args) == 0 {
		return
	}
	target := ast.Unparen(call.Args[0])
	// Self-append: lhs = append(lhs, ...) or lhs = append(lhs[:0], ...).
	cmp := target
	if s, ok := cmp.(*ast.SliceExpr); ok {
		cmp = s.X
	}
	if lhs != nil && types.ExprString(lhs) == types.ExprString(cmp) {
		return
	}
	if id := rootIdent(target); id != nil {
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && params[v] {
			return
		}
	}
	pass.Reportf(call.Pos(), "append to non-parameter slice %s in //td:hotpath function %s without self-reassignment; use x = append(x, ...) on a reused buffer or an append-style parameter", types.ExprString(call.Args[0]), fn.Name.Name)
}

// paramVars collects the parameter and receiver variables of fn.
func paramVars(pass *framework.Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					out[v] = true
				}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	return out
}
