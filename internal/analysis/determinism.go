package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"tributarydelta/internal/analysis/framework"
)

// determinismScope lists the packages whose every stochastic or ordered
// decision must be a pure function of (seed, identifiers): the epoch
// engine and everything it transmits. Matched as path suffixes so fixture
// packages can opt in.
var determinismScope = []string{
	"internal/runner",
	"internal/aggregate",
	"internal/sketch",
	"internal/freq",
	"internal/quantile",
	"internal/network",
	// The transport backends carry real deadlines and retransmit pacing in
	// free-running mode; their legitimate wall-clock uses are individually
	// //lint:ignore'd so any NEW one that could leak into deterministic
	// mode must justify itself.
	"internal/transport",
	// The chaos driver's noise model must draw from per-shard seeded
	// generators and its fault schedule from data; only its proxy plumbing
	// (reorder release, stall gates) may touch real timers.
	"internal/chaos",
}

// Determinism enforces the bit-reproducibility contract of the epoch path
// (DESIGN.md §8.1): inside the scope packages it forbids wall-clock reads
// (time.Now/Since/Until), the process-global math/rand generators, and
// unordered iteration over maps. Loss realizations, hash draws and schedule
// order must derive from the xrand.Split(seed, ids...) discipline, and any
// map walk whose order cannot leak into answers or frames must say why in a
// //lint:ignore justification.
var Determinism = &framework.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand and unordered map iteration in the epoch path",
	Run:  runDeterminism,
}

func runDeterminism(pass *framework.Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), determinismScope) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.RangeStmt:
				if n.X != nil && isMap(pass.TypesInfo.Types[n.X].Type) {
					pass.Reportf(n.Pos(), "unordered range over map %s in the deterministic epoch path; iterate sorted keys (see freq.sortedItems) or justify with //lint:ignore determinism", types.ExprString(n.X))
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkDeterminismCall flags wall-clock reads and global math/rand draws.
func checkDeterminismCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Methods (rand.Rand.Intn on a seeded local generator, time.Time.Sub)
	// are fine; only package-level functions read ambient state.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return
	}
	switch calleePkgPath(fn) {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "wall-clock read time.%s in the deterministic epoch path; derive values from xrand.Split(seed, ids...) or justify with //lint:ignore determinism", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors of explicitly-seeded generators are fine; the
		// package-level draws consume the shared global source.
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(), "global math/rand draw rand.%s in the deterministic epoch path; use xrand.Split sub-streams instead", fn.Name())
		}
	}
}

// isMap reports whether t is a map type (after unaliasing).
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
