package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tributarydelta/internal/analysis/framework"
)

// statsWriterAllowed lists the packages permitted to mutate network.Stats
// transmit counters directly: the stats type's own package, the epoch
// engine's single dispatch goroutine, and the transport backends' dispatch
// paths — the single-writer contract established in PR 4 when Stats dropped
// its mutex.
var statsWriterAllowed = []string{
	"internal/network",
	"internal/runner",
	"internal/transport",
}

// statsTxFields are the plain transmit-side counters of network.Stats:
// single-writer by contract, written only from the dispatch packages, and
// never through sync/atomic — the atomic side of the type is the published
// totals and the receive counters, not these.
var statsTxFields = map[string]bool{
	"Transmissions": true,
	"Words":         true,
	"Bytes":         true,
	"PacketsSent":   true,
	"Losses":        true,
	"LevelBytes":    true,
	"LevelWords":    true,
	"txWords":       true,
	"txBytes":       true,
	"txLosses":      true,
}

// statsRxFields are the receive-side counters: updated atomically by
// concurrent receiver runtimes (that IS their contract), but still written
// only by the dispatch packages.
var statsRxFields = map[string]bool{
	"InboxDrops": true,
	"RxFrames":   true,
	"RxBytes":    true,
	"Duplicates": true,
}

// StatsWriter enforces the single-writer network.Stats contract (DESIGN.md
// §8.3): plain transmit counters are written only by the dispatch packages
// (reads are free for everyone), sync/atomic must never touch them (the
// atomic side of Stats is the published totals, not the counters), and the
// Stats struct itself must not regrow a mutex — PR 4 removed it
// deliberately, and mixing mutex and plain/atomic access on one type is
// how the pre-PR-4 races crept in.
var StatsWriter = &framework.Analyzer{
	Name: "statswriter",
	Doc:  "network.Stats plain counters: single-writer dispatch packages only, no atomic/mutex mixing",
	Run:  runStatsWriter,
}

func runStatsWriter(pass *framework.Pass) (any, error) {
	allowed := inScope(pass.Pkg.Path(), statsWriterAllowed)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if allowed {
					return true
				}
				for _, lhs := range n.Lhs {
					if field, ok := statsCounterTarget(pass, lhs); ok {
						pass.Reportf(lhs.Pos(), "write to network.Stats.%s outside the single-writer dispatch packages; record through a Stats method from the dispatch goroutine", field)
					}
				}
			case *ast.IncDecStmt:
				if allowed {
					return true
				}
				if field, ok := statsCounterTarget(pass, n.X); ok {
					pass.Reportf(n.Pos(), "write to network.Stats.%s outside the single-writer dispatch packages; record through a Stats method from the dispatch goroutine", field)
				}
			case *ast.CallExpr:
				checkAtomicOnStats(pass, n)
			case *ast.TypeSpec:
				checkStatsMutexField(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// statsCounterTarget reports whether expr writes an element or the whole of
// one of network.Stats' plain counter fields, returning the field name.
func statsCounterTarget(pass *framework.Pass, expr ast.Expr) (string, bool) {
	e := ast.Unparen(expr)
	// Peel element/slice accesses: s.Words[v] writes the Words counter.
peel:
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			break peel
		}
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !(statsTxFields[sel.Sel.Name] || statsRxFields[sel.Sel.Name]) {
		return "", false
	}
	if !isNetworkStats(typeOf(pass, sel.X)) {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkAtomicOnStats flags sync/atomic calls that take the address of a
// plain transmit counter — atomics mutate through pointers, so &s.Field is
// the mixing signature. The receive counters are excluded: atomic updates
// are their documented contract.
func checkAtomicOnStats(pass *framework.Pass, call *ast.CallExpr) {
	callee := calleeFunc(pass.TypesInfo, call)
	if calleePkgPath(callee) != "sync/atomic" {
		return
	}
	for _, arg := range call.Args {
		u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		if field, ok := statsCounterTarget(pass, u.X); ok && statsTxFields[field] {
			pass.Reportf(call.Pos(), "atomic.%s on network.Stats.%s mixes atomics onto a plain single-writer transmit counter; the memory model is plain counters + Publish, not per-counter atomics", callee.Name(), field)
		}
	}
}

// checkStatsMutexField flags a mutex field (re)introduced on the Stats
// struct declaration itself.
func checkStatsMutexField(pass *framework.Pass, spec *ast.TypeSpec) {
	if spec.Name.Name != "Stats" || !inScope(pass.Pkg.Path(), []string{"internal/network"}) {
		return
	}
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		t := typeOf(pass, field.Type)
		if t == nil {
			continue
		}
		name := t.String()
		if strings.HasSuffix(name, "sync.Mutex") || strings.HasSuffix(name, "sync.RWMutex") {
			pass.Reportf(field.Pos(), "mutex field on network.Stats: PR 4 removed Stats locking in favor of the single-writer + atomic-publish scheme; do not mix a mutex back in")
		}
	}
}

// isNetworkStats reports whether t is network.Stats or *network.Stats (any
// package whose path ends in internal/network, so fixtures can stand in).
func isNetworkStats(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "Stats" || obj.Pkg() == nil {
		return false
	}
	return inScope(obj.Pkg().Path(), []string{"internal/network"})
}
