// Package detfix exercises the determinism analyzer: wall-clock reads,
// global math/rand draws and unordered map ranges in the epoch path are
// reported; seeded sub-stream draws, slice ranges and justified waivers
// are not. The fixture is loaded under an import path ending in
// internal/runner so it falls inside the analyzer's scope.
package detfix

import (
	"math/rand"
	"sort"
	"time"
)

// Epoch runs one fixture epoch containing every forbidden construct.
func Epoch(m map[int]int) int {
	t := time.Now()        // want "wall-clock read time\.Now"
	_ = time.Since(t)      // want "wall-clock read time\.Since"
	total := rand.Intn(10) // want "global math/rand draw rand\.Intn"
	for k, v := range m {  // want "unordered range over map m"
		total += k + v
	}
	return total
}

// Seeded draws through an explicitly seeded generator: rand.New* is the
// construction of a sub-stream, and method calls on it are deterministic
// given the seed, so neither line is reported.
func Seeded(seed int64, items []int) int {
	r := rand.New(rand.NewSource(seed))
	total := r.Intn(100)
	for _, v := range items {
		total += v
	}
	return total
}

// Sorted iterates a map through sorted keys — the sanctioned discipline.
// The key-collection range still touches the map unordered, so it carries
// a justified waiver exactly like the real call sites do.
func Sorted(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	//lint:ignore determinism key collection only; the keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Gate shows a justified wall-clock waiver: the directive names the
// analyzer and a reason, so the read on the next line is suppressed.
func Gate() int64 {
	//lint:ignore determinism fixture: phase-gate timing never reaches answer bits
	return time.Now().UnixNano()
}
