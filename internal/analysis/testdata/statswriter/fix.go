// Package statsclient exercises the statswriter analyzer from outside the
// single-writer dispatch packages: plain writes to the transmit counters
// and atomics aimed at them are reported; reads, and the receive-side
// counters that are atomic by contract, are not.
package statsclient

import (
	"sync/atomic"

	"tributarydelta/internal/network"
)

// Record mutates transmit counters from outside the dispatch packages —
// every line races the single writer.
func Record(st *network.Stats, level int) {
	st.Transmissions[level]++             // want "write to network\.Stats\.Transmissions"
	st.Words[level] += 3                  // want "write to network\.Stats\.Words"
	st.Bytes[level] = 48                  // want "write to network\.Stats\.Bytes"
	atomic.AddInt64(&st.Losses[level], 1) // want "atomic\.AddInt64 on network\.Stats\.Losses"
}

// Observe only reads the transmit side and uses atomics on the
// receive-side counters, which are atomic by contract — nothing reported.
func Observe(st *network.Stats, level int) int64 {
	atomic.AddInt64(&st.RxFrames[level], 1)
	return st.Transmissions[level] + atomic.LoadInt64(&st.InboxDrops[level])
}
