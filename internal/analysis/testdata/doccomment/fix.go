package transfix // want "package transfix has no package comment"

// MaxFrame is documented, so only the bare declarations below are
// reported.
const MaxFrame = 1024

func Dial(addr string) error { // want "exported Dial is missing a doc comment"
	_ = addr
	return nil
}

// Config collects fixture options.
type Config struct {
	Addr string // want "exported field Config\.Addr is missing a doc comment"
	// Retries is documented by a doc comment.
	Retries int
	quiet   bool
}

type Conn struct{} // want "exported Conn is missing a doc comment"

var Default = Config{} // want "exported Default is missing a doc comment"

// Tunables of the fixture transport: the group doc covers every member,
// so neither spec is reported.
var (
	Window = 8
	Linger = 2
)
