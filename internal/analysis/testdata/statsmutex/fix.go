// Package netfix exercises the statswriter mutex rule from inside a
// package matching the internal/network scope: re-introducing a lock on
// the Stats block contradicts the single-writer + atomic-publish scheme.
package netfix

import "sync"

// Stats is a fixture re-creation of the network stats block.
type Stats struct {
	mu sync.Mutex // want "mutex field on network\.Stats"
	// Transmissions counts per-level radio sends.
	Transmissions []int64
}

// Locked is here only so the mutex field is used.
func (s *Stats) Locked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.Transmissions) > 0
}
