// Package wirefix exercises the wiresafe analyzer: raw buffer access in
// receive-path functions, the non-minimal-varint canonicality bug class,
// and the append-codec return contract are reported; reads through the
// sticky-error wire.Reader and methods of a Reader type are not. The
// fixture is loaded under an import path ending in internal/wire so the
// wire-internal read* rule applies too.
package wirefix

import (
	"encoding/binary"

	"tributarydelta/internal/wire"
)

// DecodeHeader reaches into the raw buffer instead of draining a Reader.
func DecodeHeader(data []byte) (byte, []byte) {
	v := data[0]     // want "raw byte indexing data\[0\]"
	rest := data[1:] // want "raw byte slicing data\[1:\]"
	return v, rest
}

// DecodeCount reproduces the canonicality bug class fixed in the varint
// hardening pass: binary.Uvarint accepts non-minimal encodings, so two
// distinct byte strings decode to the same value and break canonical
// re-encoding checks.
func DecodeCount(data []byte) uint64 {
	v, _ := binary.Uvarint(data) // want "binary\.Uvarint accepts non-minimal varint encodings"
	return v
}

// readTail is receive-path by the wire-internal read* naming rule.
func readTail(data []byte) byte {
	return data[len(data)-1] // want "raw byte indexing"
}

// AppendHeader takes an append-style buffer but drops the grown slice.
func AppendHeader(dst []byte, v byte) { // want "append-style codec AppendHeader"
	_ = append(dst, v)
}

// AppendCount returns the appended slice — the contract shape.
func AppendCount(dst []byte, v uint64) []byte {
	return wire.AppendUvarint(dst, v)
}

// DecodeSafe drains the frame through the sticky-error reader; no raw
// access, nothing reported.
func DecodeSafe(data []byte) (uint64, error) {
	r := wire.NewReader(data)
	v := r.Uvarint()
	return v, r.Err()
}

// DecodeBatchDispatch mirrors the tempting shortcut on the batch receive
// path: dispatching on the datagram magic by raw indexing instead of
// draining the Reader.
func DecodeBatchDispatch(data []byte) ([]byte, bool) {
	if data[0] != 0xD8 { // want "raw byte indexing data\[0\]"
		return nil, false
	}
	return data[1:], true // want "raw byte slicing data\[1:\]"
}

// Batch mirrors the wire.DatagramBatch iterator: the header decode hands
// back a value holding the sticky-error Reader and Next drains entries
// through it — the sanctioned batch-decoder shape, nothing reported.
type Batch struct {
	r     *wire.Reader
	base  uint64
	n     int
	frame []byte
}

// DecodeBatch parses a batch header; every read goes through the Reader.
func DecodeBatch(data []byte) (Batch, error) {
	r := wire.NewReader(data)
	if r.Byte() != 0xD8 && r.Err() == nil {
		return Batch{}, wire.ErrMalformed
	}
	b := Batch{r: r, base: r.Uvarint()}
	return b, r.Err()
}

// Next advances to the next length-prefixed entry through the reader.
func (b *Batch) Next() bool {
	if b.r.Remaining() == 0 {
		return false
	}
	b.frame = b.r.Bytes()
	if b.r.Err() != nil {
		return false
	}
	b.n++
	return true
}

// Reader is a fixture sticky-error reader; its methods are the guarded
// decode surface, so raw indexing inside them is exempt.
type Reader struct {
	buf []byte
	off int
}

// ReadByte indexes the reader's own buffer — exempt as a Reader method.
func (r *Reader) ReadByte() byte {
	b := r.buf[r.off]
	r.off++
	return b
}

var _ = readTail
