// Package hotfix exercises the hotpath analyzer: inside a //td:hotpath
// function, fmt calls, closures, escaping composite literals and appends
// that drop their result are reported; the self-append and
// parameter-append idioms, receiver-owned buffers, panic formatting and
// unannotated functions are not.
package hotfix

import "fmt"

// state is the reused scratch of the fixture hot loop.
type state struct {
	buf  []byte
	vals []int
}

// Step is annotated and contains one instance of every forbidden
// construct class.
//
//td:hotpath
func (s *state) Step(in []byte) {
	msg := fmt.Sprintf("%d", len(in)) // want "fmt\.Sprintf call"
	_ = msg
	f := func() int { return len(s.buf) } // want "closure literal"
	_ = f
	p := &state{} // want "&composite-literal"
	_ = p
	tmp := []int{1, 2, 3} // want "composite literal"
	_ = tmp
	var local []byte
	grown := append(local, in...) // want "append to non-parameter slice local"
	_ = grown
}

// Recycle uses only the sanctioned append shapes: self-append on a
// receiver-owned buffer and append through an append-style parameter.
//
//td:hotpath
func (s *state) Recycle(dst []byte, in []byte) []byte {
	s.buf = append(s.buf[:0], in...)
	s.vals = append(s.vals, len(in))
	return append(dst, s.buf...)
}

// Guard panics on corrupt input; the fmt call inside the panic argument
// is the cold abort path and exempt.
//
//td:hotpath
func Guard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("hotfix: negative %d", n))
	}
}

// Cold is unannotated, so its allocations are nobody's business.
func Cold() *state {
	_ = fmt.Sprint("cold")
	return &state{buf: []byte{1}}
}
