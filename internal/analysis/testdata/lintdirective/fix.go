// Package lintdir holds a waiver with no justification: the directive is
// malformed, so it is reported in its own right and suppresses nothing —
// the wall-clock read below it still surfaces. Exercised by a direct
// RunAnalyzers test rather than RunFixture, because the finding lands on
// the directive's own comment line where no want trailer can sit.
package lintdir

import "time"

// Gate tries to waive the wall-clock read without saying why.
func Gate() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano()
}
