package topo

import (
	"math"
	"testing"
	"testing/quick"

	"tributarydelta/internal/xrand"
)

func synthGraph(seed uint64) *Graph {
	return NewRandomField(seed, 600, 20, 20, Point{X: 10, Y: 10}, 2.0)
}

func TestNewFieldAdjacencySymmetric(t *testing.T) {
	g := synthGraph(1)
	for v := range g.Adj {
		for _, w := range g.Adj[v] {
			found := false
			for _, u := range g.Adj[w] {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric", v, w)
			}
			if g.Pos[v].Dist(g.Pos[w]) > g.Range+1e-9 {
				t.Fatalf("edge %d-%d longer than radio range", v, w)
			}
		}
	}
}

func TestRandomFieldDeterministic(t *testing.T) {
	a := NewRandomField(7, 100, 20, 20, Point{10, 10}, 2)
	b := NewRandomField(7, 100, 20, 20, Point{10, 10}, 2)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatal("same seed produced different fields")
		}
	}
	c := NewRandomField(8, 100, 20, 20, Point{10, 10}, 2)
	diff := false
	for i := range a.Pos[1:] {
		if a.Pos[i+1] != c.Pos[i+1] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestRingsLevelsAreHopCounts(t *testing.T) {
	g := synthGraph(2)
	r := BuildRings(g)
	if r.Level[Base] != 0 {
		t.Fatal("base station must be level 0")
	}
	// BFS levels: every reachable node's level is 1 + min neighbour level.
	for v := 1; v < g.N(); v++ {
		if !r.Reachable(v) {
			continue
		}
		min := math.MaxInt
		for _, w := range g.Adj[v] {
			if r.Level[w] >= 0 && r.Level[w] < min {
				min = r.Level[w]
			}
		}
		if r.Level[v] != min+1 {
			t.Fatalf("node %d level %d, want %d", v, r.Level[v], min+1)
		}
	}
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestRingsUpDownConsistency(t *testing.T) {
	g := synthGraph(3)
	r := BuildRings(g)
	for v := 0; v < g.N(); v++ {
		for _, u := range r.Up[v] {
			if r.Level[u] != r.Level[v]-1 {
				t.Fatalf("up neighbour %d of %d at wrong level", u, v)
			}
		}
		for _, d := range r.Down[v] {
			if r.Level[d] != r.Level[v]+1 {
				t.Fatalf("down neighbour %d of %d at wrong level", d, v)
			}
		}
	}
}

func TestBuildTAGTreeSpans(t *testing.T) {
	g := synthGraph(4)
	r := BuildRings(g)
	tr := BuildTAGTree(g, 11)
	if tr.Size() != r.CountReachable() {
		t.Fatalf("TAG tree covers %d nodes, reachable %d", tr.Size(), r.CountReachable())
	}
	// Every tree link must be a radio link.
	for v, p := range tr.Parent {
		if p == -1 {
			continue
		}
		ok := false
		for _, u := range g.Adj[v] {
			if u == p {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("tree link %d-%d is not a radio link", v, p)
		}
	}
}

func TestBuildRestrictedTreeLinksSubsetOfRings(t *testing.T) {
	g := synthGraph(5)
	r := BuildRings(g)
	tr := BuildRestrictedTree(g, r, 13)
	if !tr.LinksSubsetOfRings(g, r) {
		t.Fatal("restricted tree must only use rings links")
	}
	if tr.Size() != r.CountReachable() {
		t.Fatalf("restricted tree covers %d, reachable %d", tr.Size(), r.CountReachable())
	}
}

func TestHeightsAndSubtreeSizes(t *testing.T) {
	//        0
	//      /   \
	//     1     2
	//    / \     \
	//   3   4     5
	//            /
	//           6
	parent := []int{-1, 0, 0, 1, 1, 2, 5}
	tr, err := NewTreeFromParents(parent)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.Heights()
	want := []int{4, 2, 3, 1, 1, 2, 1}
	for v := range want {
		if h[v] != want[v] {
			t.Fatalf("height[%d] = %d, want %d", v, h[v], want[v])
		}
	}
	s := tr.SubtreeSizes()
	wantS := []int{7, 3, 3, 1, 1, 2, 1}
	for v := range wantS {
		if s[v] != wantS[v] {
			t.Fatalf("subtree[%d] = %d, want %d", v, s[v], wantS[v])
		}
	}
	d := tr.Depths()
	wantD := []int{0, 1, 1, 2, 2, 2, 3}
	for v := range wantD {
		if d[v] != wantD[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d[v], wantD[v])
		}
	}
}

func TestNewTreeFromParentsRejectsCycle(t *testing.T) {
	if _, err := NewTreeFromParents([]int{-1, 2, 1}); err == nil {
		t.Fatal("cycle must be rejected")
	}
	if _, err := NewTreeFromParents([]int{-1, 99}); err == nil {
		t.Fatal("out-of-range parent must be rejected")
	}
	if _, err := NewTreeFromParents([]int{-1, 1}); err == nil {
		t.Fatal("self parent must be rejected")
	}
}

func TestPostOrderChildrenBeforeParents(t *testing.T) {
	g := synthGraph(6)
	r := BuildRings(g)
	tr := BuildRestrictedTree(g, r, 17)
	pos := make([]int, g.N())
	for i, v := range tr.PostOrder() {
		pos[v] = i
	}
	for v, p := range tr.Parent {
		if p != -1 && pos[v] > pos[p] {
			t.Fatalf("node %d appears after its parent %d in post order", v, p)
		}
	}
}

func TestSetParentMaintainsChildren(t *testing.T) {
	tr, _ := NewTreeFromParents([]int{-1, 0, 0, 1})
	tr.SetParent(3, 2)
	if got := len(tr.Children[1]); got != 0 {
		t.Fatalf("old parent kept %d children", got)
	}
	if len(tr.Children[2]) != 1 || tr.Children[2][0] != 3 {
		t.Fatal("new parent did not gain child")
	}
	if tr.Parent[3] != 2 {
		t.Fatal("parent not updated")
	}
}

// TestTable2Reproduction reproduces Table 2 of the paper: the example tree
// Te with h(i) = (37,10,6,1) and the regular tree T2 with h(i) = (8,4,2,1),
// their H(i) fractions, and the 2-domination of both.
func TestTable2Reproduction(t *testing.T) {
	te := []int{37, 10, 6, 1}
	t2 := RegularHist(2, 4)
	wantT2 := []int{8, 4, 2, 1}
	for i := range wantT2 {
		if t2[i] != wantT2[i] {
			t.Fatalf("T2 h(%d) = %d, want %d", i+1, t2[i], wantT2[i])
		}
	}
	He := HFractions(te)
	wantHe := []float64{37.0 / 54, 47.0 / 54, 53.0 / 54, 1}
	for i := range wantHe {
		if math.Abs(He[i]-wantHe[i]) > 1e-12 {
			t.Fatalf("Te H(%d) = %v, want %v", i+1, He[i], wantHe[i])
		}
	}
	H2 := HFractions(t2)
	wantH2 := []float64{8.0 / 15, 12.0 / 15, 14.0 / 15, 1}
	for i := range wantH2 {
		if math.Abs(H2[i]-wantH2[i]) > 1e-12 {
			t.Fatalf("T2 H(%d) = %v, want %v", i+1, H2[i], wantH2[i])
		}
	}
	// Te dominates T2 level-wise, and T2 is 2-dominating, so Te is too.
	for i := range He {
		if He[i] < H2[i]-1e-12 {
			t.Fatalf("Te H(%d) below T2", i+1)
		}
	}
	if !IsDominating(t2, 2) {
		t.Fatal("T2 must be 2-dominating")
	}
	if !IsDominating(te, 2) {
		t.Fatal("Te must be 2-dominating")
	}
}

func TestEveryTreeIs1Dominating(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		hist := make([]int, 0, len(raw))
		for _, r := range raw {
			hist = append(hist, int(r)+1)
		}
		if len(hist) == 0 {
			hist = []int{1}
		}
		return IsDominating(hist, 1)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDominationMonotoneInD(t *testing.T) {
	hist := []int{37, 10, 6, 1}
	prev := true
	for d := 1.0; d < 10; d += 0.25 {
		cur := IsDominating(hist, d)
		if cur && !prev {
			t.Fatalf("domination not monotone at d=%v", d)
		}
		prev = cur
	}
}

func TestDominationFactorClosedForm(t *testing.T) {
	// For Te the binding constraint is i=2: d = (54/7)^(1/2) ≈ 2.777, so at
	// granularity 0.05 the factor is 2.75. (The paper's prose says "2",
	// which is inconsistent with its own printed definition; we follow the
	// definition — see DESIGN.md §4.)
	d := DominationFactor([]int{37, 10, 6, 1}, 0.05)
	if math.Abs(d-2.75) > 1e-9 {
		t.Fatalf("Te domination factor = %v, want 2.75", d)
	}
	// A regular d-ary tree's factor is at least d.
	for _, deg := range []int{2, 3, 4} {
		f := DominationFactor(RegularHist(deg, 5), 0.05)
		if f < float64(deg)-1e-9 {
			t.Fatalf("regular %d-ary tree factor %v < %d", deg, f, deg)
		}
	}
}

func TestDominationFactorConsistentWithIsDominating(t *testing.T) {
	err := quick.Check(func(a, b, c, d uint8) bool {
		hist := []int{int(a) + 50, int(b)%30 + 5, int(c)%10 + 2, int(d)%3 + 1}
		f := DominationFactor(hist, 0.05)
		return IsDominating(hist, f) && !IsDominating(hist, f+0.1)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLemma2Property(t *testing.T) {
	// Build random trees in which every internal node has at least d
	// children of height one less; Lemma 2 says they are d-dominating.
	src := xrand.NewSource(99)
	for trial := 0; trial < 50; trial++ {
		d := 2 + src.Intn(2) // d in {2,3}
		height := 3 + src.Intn(2)
		parent := []int{-1}
		// Level-by-level construction: each node at height>1 gets exactly d
		// children of the next height down plus random extra shallow nodes.
		type nd struct{ id, h int }
		frontier := []nd{{0, height + 1}}
		for len(frontier) > 0 {
			cur := frontier[0]
			frontier = frontier[1:]
			if cur.h <= 1 {
				continue
			}
			for c := 0; c < d; c++ {
				id := len(parent)
				parent = append(parent, cur.id)
				frontier = append(frontier, nd{id, cur.h - 1})
			}
			// Random extra leaf children (heights below cur.h-1 are fine).
			for c := 0; c < src.Intn(3); c++ {
				parent = append(parent, cur.id)
			}
		}
		tr, err := NewTreeFromParents(parent)
		if err != nil {
			t.Fatal(err)
		}
		if !SatisfiesLemma2(tr, d) {
			t.Fatal("construction should satisfy Lemma 2 premise")
		}
		if !IsDominating(HeightHist(tr), float64(d)) {
			t.Fatalf("Lemma 2 violated: tree with >=%d children per level not %d-dominating", d, d)
		}
	}
}

func TestOpportunisticImproveRaisesDomination(t *testing.T) {
	improved, base := 0, 0.0
	for seed := uint64(1); seed <= 5; seed++ {
		g := NewRandomField(seed, 400, 20, 20, Point{10, 10}, 2.0)
		r := BuildRings(g)
		tr := BuildRestrictedTree(g, r, seed)
		before := TreeDominationFactor(tr, 0.05)
		OpportunisticImprove(g, r, tr, seed, 8)
		after := TreeDominationFactor(tr, 0.05)
		if !tr.LinksSubsetOfRings(g, r) {
			t.Fatal("improvement broke the rings-subset property")
		}
		if tr.Size() != r.CountReachable() {
			t.Fatal("improvement dropped nodes from the tree")
		}
		if after >= before {
			improved++
		}
		base += after - before
	}
	if improved < 3 {
		t.Fatalf("opportunistic switching regressed domination in %d/5 fields", 5-improved)
	}
	if base < 0 {
		t.Fatalf("mean domination change %.3f negative", base/5)
	}
}

func TestLabField(t *testing.T) {
	g := NewLabField()
	if g.N() != 55 {
		t.Fatalf("lab field has %d nodes, want 55 (54 sensors + base)", g.N())
	}
	r := BuildRings(g)
	if r.CountReachable() != g.N() {
		t.Fatal("lab field must be fully connected")
	}
	if r.Max < 3 || r.Max > 8 {
		t.Fatalf("lab rings depth %d outside the realistic 3..8 band", r.Max)
	}
	tr := BuildRestrictedTree(g, r, 1)
	OpportunisticImprove(g, r, tr, 1, 8)
	d := TreeDominationFactor(tr, 0.05)
	// Paper: LabData has domination factor 2.25. Our substitute should land
	// in the same neighbourhood.
	if d < 1.5 || d > 4.5 {
		t.Fatalf("lab tree domination factor %v, want ~2.25 (band 1.5..4.5)", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr, _ := NewTreeFromParents([]int{-1, 0, 0})
	cl := tr.Clone()
	cl.SetParent(2, 1)
	if tr.Parent[2] != 0 {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestIsConnectedFrom(t *testing.T) {
	// Two far-apart nodes are disconnected with a tiny range.
	g := NewField([]Point{{0, 0}, {100, 100}}, 1)
	if g.IsConnectedFrom(0) {
		t.Fatal("disconnected field reported connected")
	}
	g2 := NewField([]Point{{0, 0}, {0.5, 0}}, 1)
	if !g2.IsConnectedFrom(0) {
		t.Fatal("connected field reported disconnected")
	}
}
