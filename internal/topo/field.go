// Package topo builds and analyses the aggregation topologies of the paper:
// the sensor field and its connectivity graph, the rings decomposition used
// by multi-path aggregation (§2), spanning trees — the standard TAG tree and
// the paper's restricted tree whose links are a subset of the rings links
// (§4.1) — the opportunistic parent-switching construction that raises the
// domination factor (§6.1.3), and the d-dominating tree machinery of §6.1.2
// (height histograms, H(i), domination factors, Lemma 2).
package topo

import (
	"fmt"
	"math"

	"tributarydelta/internal/xrand"
)

// Base is the node index of the base station in every Graph.
const Base = 0

// Point is a sensor position in the deployment plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Graph is a sensor field: node 0 is the base station, nodes 1..N-1 are
// sensors, and Adj lists the bidirectional radio links (nodes within radio
// range of each other).
type Graph struct {
	Pos   []Point
	Adj   [][]int
	Range float64
}

// N returns the number of nodes including the base station.
func (g *Graph) N() int { return len(g.Pos) }

// Sensors returns the number of sensor nodes (excluding the base station).
func (g *Graph) Sensors() int { return len(g.Pos) - 1 }

// NewField builds a graph from explicit positions (index 0 is the base
// station) connecting every pair within radioRange.
func NewField(pos []Point, radioRange float64) *Graph {
	g := &Graph{Pos: pos, Adj: make([][]int, len(pos)), Range: radioRange}
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			if pos[i].Dist(pos[j]) <= radioRange {
				g.Adj[i] = append(g.Adj[i], j)
				g.Adj[j] = append(g.Adj[j], i)
			}
		}
	}
	return g
}

// NewRandomField places n sensors uniformly at random in a width×height
// rectangle with the base station at base, and connects nodes within
// radioRange. This is the paper's Synthetic deployment generator (§7.1: 600
// sensors in a 20 ft × 20 ft grid, base station at (10,10)).
func NewRandomField(seed uint64, n int, width, height float64, base Point, radioRange float64) *Graph {
	src := xrand.NewSource(seed, 0xF1E1D)
	pos := make([]Point, n+1)
	pos[Base] = base
	for i := 1; i <= n; i++ {
		pos[i] = Point{X: src.Float64() * width, Y: src.Float64() * height}
	}
	return NewField(pos, radioRange)
}

// IsConnectedFrom reports whether every node is reachable from start.
func (g *Graph) IsConnectedFrom(start int) bool {
	seen := make([]bool, g.N())
	stack := []int{start}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.N()
}

// Degree returns the number of radio neighbours of v.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// Rings is the level decomposition used by multi-path aggregation: the base
// station is level 0; a node is in ring i if it can hear a ring i−1
// transmission and is in no earlier ring (§2). Level is −1 for nodes not
// reachable from the base station.
type Rings struct {
	Level []int
	Max   int
	// Up[v] lists v's radio neighbours one ring closer to the base — the
	// recipients of v's multi-path broadcast and the candidate tree parents
	// under the §4.1 restriction.
	Up [][]int
	// Down[v] lists v's radio neighbours one ring further from the base.
	Down [][]int
}

// BuildRings runs the rings construction over the graph.
func BuildRings(g *Graph) *Rings {
	n := g.N()
	r := &Rings{
		Level: make([]int, n),
		Up:    make([][]int, n),
		Down:  make([][]int, n),
	}
	for i := range r.Level {
		r.Level[i] = -1
	}
	r.Level[Base] = 0
	queue := []int{Base}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Adj[v] {
			if r.Level[w] == -1 {
				r.Level[w] = r.Level[v] + 1
				if r.Level[w] > r.Max {
					r.Max = r.Level[w]
				}
				queue = append(queue, w)
			}
		}
	}
	for v := 0; v < n; v++ {
		if r.Level[v] < 0 {
			continue
		}
		for _, w := range g.Adj[v] {
			switch {
			case r.Level[w] == r.Level[v]-1:
				r.Up[v] = append(r.Up[v], w)
			case r.Level[w] == r.Level[v]+1:
				r.Down[v] = append(r.Down[v], w)
			}
		}
	}
	return r
}

// Reachable reports whether v is in some ring (i.e. connected to the base).
func (r *Rings) Reachable(v int) bool { return r.Level[v] >= 0 }

// CountReachable returns the number of reachable nodes, including the base.
func (r *Rings) CountReachable() int {
	c := 0
	for _, l := range r.Level {
		if l >= 0 {
			c++
		}
	}
	return c
}

// Validate checks the defining ring property: every non-base reachable node
// has at least one neighbour one ring up, and ring numbers of neighbours
// differ by at most one... except that plain radio graphs may connect rings
// i and i+1 only; same-ring links are allowed and skipped by Up/Down.
func (r *Rings) Validate(g *Graph) error {
	for v := 0; v < g.N(); v++ {
		if v == Base || r.Level[v] < 0 {
			continue
		}
		if len(r.Up[v]) == 0 {
			return fmt.Errorf("topo: node %d at ring %d has no up neighbour", v, r.Level[v])
		}
		for _, w := range g.Adj[v] {
			if r.Level[w] >= 0 && abs(r.Level[w]-r.Level[v]) > 1 {
				return fmt.Errorf("topo: radio link %d–%d spans rings %d and %d",
					v, w, r.Level[v], r.Level[w])
			}
		}
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
