package topo

import "math"

// HeightHist returns the paper's h(i) vector for a tree: h[i-1] is the
// number of sensor nodes of height i. The base station (the root) is
// excluded, as in Table 2 where the 54 LabData sensors sum the histogram.
func HeightHist(t *Tree) []int {
	heights := t.Heights()
	max := 0
	for v, h := range heights {
		if v != Base && t.InTree(v) && h > max {
			max = h
		}
	}
	hist := make([]int, max)
	for v, h := range heights {
		if v != Base && t.InTree(v) && h >= 1 {
			hist[h-1]++
		}
	}
	return hist
}

// HFractions returns the cumulative H(i) = (1/m)·Σ_{j≤i} h(j) vector from a
// height histogram: H[i-1] is the fraction of nodes with height at most i.
func HFractions(hist []int) []float64 {
	m := 0
	for _, h := range hist {
		m += h
	}
	out := make([]float64, len(hist))
	run := 0
	for i, h := range hist {
		run += h
		out[i] = float64(run) / float64(m)
	}
	return out
}

// IsDominating reports whether a tree with height histogram hist is
// d-dominating: for every i ≥ 1,
//
//	H(i) ≥ (d−1)/d · (1 + 1/d + … + 1/d^{i−1}) = 1 − d^{−i}.
//
// Every tree is 1-dominating.
func IsDominating(hist []int, d float64) bool {
	if d <= 1 {
		return true
	}
	H := HFractions(hist)
	for i, h := range H {
		if h < 1-math.Pow(d, -float64(i+1))-1e-12 {
			return false
		}
	}
	return true
}

// DominationFactor returns the largest d at the given granularity for which
// the tree is d-dominating. The bound per level i is closed-form:
// H(i) ≥ 1 − d^{−i}  ⇔  d ≤ (1/(1−H(i)))^{1/i}, so the factor is the minimum
// over levels with H(i) < 1, floored to a multiple of granularity (the paper
// uses granularity 0.05 in the Table 2 example). Trees with H(1) = 1 (a
// star) have unbounded factor; maxDomination caps the report.
func DominationFactor(hist []int, granularity float64) float64 {
	const maxDomination = 64.0
	d := maxDomination
	H := HFractions(hist)
	for i, h := range H {
		if h >= 1 {
			continue
		}
		bound := math.Pow(1/(1-h), 1/float64(i+1))
		if bound < d {
			d = bound
		}
	}
	if d < 1 {
		d = 1
	}
	if granularity > 0 {
		d = math.Floor(d/granularity+1e-9) * granularity
	}
	return d
}

// TreeDominationFactor is a convenience wrapper computing the domination
// factor of a tree directly.
func TreeDominationFactor(t *Tree, granularity float64) float64 {
	return DominationFactor(HeightHist(t), granularity)
}

// SatisfiesLemma2 reports whether every internal node of height i has at
// least d children of height i−1 — the sufficient condition of Lemma 2 for
// d-domination.
func SatisfiesLemma2(t *Tree, d int) bool {
	heights := t.Heights()
	for v := range t.Parent {
		if !t.InTree(v) || len(t.Children[v]) == 0 || v == Base {
			continue
		}
		count := 0
		for _, c := range t.Children[v] {
			if heights[c] == heights[v]-1 {
				count++
			}
		}
		if count < d {
			return false
		}
	}
	return true
}

// RegularHist returns the height histogram of a complete balanced d-ary tree
// of the given height: h(i) = d^{height−i} (Table 2's T2 is RegularHist(2,4)
// = [8 4 2 1]).
func RegularHist(d, height int) []int {
	hist := make([]int, height)
	v := 1
	for i := height - 1; i >= 0; i-- {
		hist[i] = v
		v *= d
	}
	return hist
}
