package topo

// LabPositions returns a 54-sensor deployment shaped like the Intel Research
// Berkeley laboratory used by the paper's LabData scenario (§7.1). The real
// mote coordinates ship with a trace we cannot redistribute, so this is the
// documented substitution (DESIGN.md §2): three rows of eighteen motes over
// an elongated ~40 m × 12 m floor with the base station at the west wall —
// a layout whose restricted aggregation tree is bushy with a domination
// factor close to the paper's measured 2.25. Index 0 is the base station.
func LabPositions() []Point {
	const (
		cols   = 18
		rows   = 3
		width  = 40.0
		height = 12.0
	)
	pos := make([]Point, 0, cols*rows+1)
	pos = append(pos, Point{X: 0, Y: height / 2}) // base station
	for r := 0; r < rows; r++ {
		y := height * (0.5 + float64(r)) / rows
		for c := 0; c < cols; c++ {
			x := width * (0.5 + float64(c)) / cols
			// Slight deterministic stagger so rows are not degenerate.
			stagger := 0.7 * float64((r+c)%3-1)
			pos = append(pos, Point{X: x, Y: y + stagger})
		}
	}
	return pos
}

// LabRadioRange is the radio range used with LabPositions; it yields ring
// depths of 5–6 and the bushy tree the paper reports for this deployment.
const LabRadioRange = 8.0

// NewLabField builds the LabData substitute graph.
func NewLabField() *Graph {
	return NewField(LabPositions(), LabRadioRange)
}
