package topo

import (
	"fmt"

	"tributarydelta/internal/xrand"
)

// Tree is a spanning tree rooted at the base station. Parent[v] is −1 for
// the root and for nodes outside the tree (unreachable sensors).
type Tree struct {
	Parent   []int
	Children [][]int
}

// NewTreeFromParents builds a Tree from a parent vector, deriving children
// lists. It validates that the structure is acyclic and rooted at Base.
func NewTreeFromParents(parent []int) (*Tree, error) {
	n := len(parent)
	t := &Tree{Parent: make([]int, n), Children: make([][]int, n)}
	copy(t.Parent, parent)
	for v, p := range parent {
		if p == -1 {
			continue
		}
		if p < 0 || p >= n || p == v {
			return nil, fmt.Errorf("topo: node %d has invalid parent %d", v, p)
		}
		t.Children[p] = append(t.Children[p], v)
	}
	// Walk up from every node; a cycle would exceed n steps.
	for v := range parent {
		steps := 0
		for u := v; u != -1; u = t.Parent[u] {
			steps++
			if steps > n {
				return nil, fmt.Errorf("topo: cycle through node %d", v)
			}
		}
	}
	return t, nil
}

// InTree reports whether v participates in the tree (the root always does).
func (t *Tree) InTree(v int) bool { return v == Base || t.Parent[v] != -1 }

// Size returns the number of nodes in the tree, including the root.
func (t *Tree) Size() int {
	c := 0
	for v := range t.Parent {
		if t.InTree(v) {
			c++
		}
	}
	return c
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	nt := &Tree{Parent: make([]int, len(t.Parent)), Children: make([][]int, len(t.Children))}
	copy(nt.Parent, t.Parent)
	for v, ch := range t.Children {
		nt.Children[v] = append([]int(nil), ch...)
	}
	return nt
}

// SetParent relinks v under newParent, updating children lists. newParent
// may be −1 to detach v.
func (t *Tree) SetParent(v, newParent int) {
	if old := t.Parent[v]; old != -1 {
		ch := t.Children[old]
		for i, c := range ch {
			if c == v {
				t.Children[old] = append(ch[:i], ch[i+1:]...)
				break
			}
		}
	}
	t.Parent[v] = newParent
	if newParent != -1 {
		t.Children[newParent] = append(t.Children[newParent], v)
	}
}

// Heights returns the height of every tree node: leaves have height 1, an
// internal node one more than its highest child (§6.1.1). Nodes outside the
// tree get height 0. The base station's height is the h of the precision
// gradient ε(1..h).
func (t *Tree) Heights() []int {
	h := make([]int, len(t.Parent))
	order := t.PostOrder()
	for _, v := range order {
		max := 0
		for _, c := range t.Children[v] {
			if h[c] > max {
				max = h[c]
			}
		}
		h[v] = max + 1
	}
	return h
}

// Depths returns each tree node's hop distance from the root (root = 0);
// −1 outside the tree.
func (t *Tree) Depths() []int {
	d := make([]int, len(t.Parent))
	for i := range d {
		d[i] = -1
	}
	d[Base] = 0
	for _, v := range t.PreOrder() {
		if v != Base {
			d[v] = d[t.Parent[v]] + 1
		}
	}
	return d
}

// SubtreeSizes returns, for every tree node, the number of tree nodes in its
// subtree (itself included); 0 outside the tree.
func (t *Tree) SubtreeSizes() []int {
	s := make([]int, len(t.Parent))
	for _, v := range t.PostOrder() {
		s[v] = 1
		for _, c := range t.Children[v] {
			s[v] += s[c]
		}
	}
	return s
}

// PreOrder returns the tree nodes root-first.
func (t *Tree) PreOrder() []int {
	order := make([]int, 0, len(t.Parent))
	stack := []int{Base}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		stack = append(stack, t.Children[v]...)
	}
	return order
}

// PostOrder returns the tree nodes children-first (every child before its
// parent), the order in which in-network aggregation proceeds.
func (t *Tree) PostOrder() []int {
	pre := t.PreOrder()
	for i, j := 0, len(pre)-1; i < j; i, j = i+1, j-1 {
		pre[i], pre[j] = pre[j], pre[i]
	}
	return pre
}

// BuildTAGTree constructs the standard TAG spanning tree [10]: the tree-
// construction message floods outward from the base station and each node
// attaches to a node it heard the flood from — usually a neighbour one hop
// closer to the base, but the standard algorithm also allows a same-level
// neighbour whose broadcast happened to arrive first (§6.1.3 notes this
// difference from the paper's restricted construction). Tree depth is
// therefore close to, but not bounded by, the rings depth.
func BuildTAGTree(g *Graph, seed uint64) *Tree {
	n := g.N()
	t := &Tree{Parent: make([]int, n), Children: make([][]int, n)}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[Base] = 0
	queue := []int{Base}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Adj[v] {
			if level[w] == -1 {
				level[w] = level[v] + 1
				queue = append(queue, w)
			}
		}
	}
	src := xrand.NewSource(seed, 0x7A6)
	for v := 1; v < n; v++ {
		if level[v] < 0 {
			continue
		}
		// Flood arrival: all hop-level-(i−1) neighbours are candidates;
		// each same-level neighbour races the node's own attachment and
		// wins half the time.
		var cands []int
		for _, u := range g.Adj[v] {
			switch {
			case level[u] == level[v]-1:
				cands = append(cands, u)
			case level[u] == level[v] && u != v && src.Intn(2) == 0:
				cands = append(cands, u)
			}
		}
		// Keep only candidates that cannot create a cycle: same-level
		// parents are allowed only when the candidate's own parent chain is
		// already fixed and does not pass through v. Processing in id order
		// with the check below guarantees acyclicity.
		var safe []int
		for _, u := range cands {
			if level[u] < level[v] {
				safe = append(safe, u)
				continue
			}
			cyclic := false
			for a := u; a != -1; a = t.Parent[a] {
				if a == v {
					cyclic = true
					break
				}
			}
			if !cyclic && (u == Base || t.Parent[u] != -1) {
				safe = append(safe, u)
			}
		}
		if len(safe) == 0 {
			// Fall back to any up-level neighbour (always exists).
			for _, u := range g.Adj[v] {
				if level[u] == level[v]-1 {
					safe = append(safe, u)
				}
			}
		}
		t.SetParent(v, safe[src.Intn(len(safe))])
	}
	return t
}

// BuildRestrictedTree constructs the paper's tree (§4.1, §6.1.3 first
// optimisation): every node picks its parent uniformly among its ring-(i−1)
// neighbours, so all tree links are rings links and a node keeps its sending
// epoch when switching between tree and multi-path modes.
func BuildRestrictedTree(g *Graph, r *Rings, seed uint64) *Tree {
	n := g.N()
	t := &Tree{Parent: make([]int, n), Children: make([][]int, n)}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	src := xrand.NewSource(seed, 0x757)
	for v := 0; v < n; v++ {
		if v == Base || !r.Reachable(v) {
			continue
		}
		up := r.Up[v]
		t.SetParent(v, up[src.Intn(len(up))])
	}
	return t
}

// LinksSubsetOfRings reports whether every tree link connects a node to a
// ring-(i−1) neighbour — the §4.1 synchronisation property.
func (t *Tree) LinksSubsetOfRings(g *Graph, r *Rings) bool {
	for v, p := range t.Parent {
		if p == -1 {
			continue
		}
		if r.Level[p] != r.Level[v]-1 {
			return false
		}
		ok := false
		for _, u := range g.Adj[v] {
			if u == p {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// OpportunisticImprove applies the §6.1.3 parent-switching technique to push
// the tree toward 2-domination while keeping tree links inside the rings
// links. Each round: (1) every node with two or more children of height one
// less than its own pins two of them and flags itself; (2) every non-pinned
// node switches to a uniformly random reachable non-flagged ring-(i−1)
// neighbour; (3) pins and flags are re-derived. The search stops after
// rounds rounds or when a round changes nothing.
func OpportunisticImprove(g *Graph, r *Rings, t *Tree, seed uint64, rounds int) {
	n := g.N()
	src := xrand.NewSource(seed, 0x0BB)
	for round := 0; round < rounds; round++ {
		heights := t.Heights()
		flagged := make([]bool, n)
		pinned := make([]bool, n)
		// Pin two height-(j) children under every height-(j+1) node that
		// has at least two, then flag the parent.
		markPins(t, heights, flagged, pinned)
		changed := false
		for v := 1; v < n; v++ {
			if !t.InTree(v) || pinned[v] {
				continue
			}
			var cands []int
			for _, u := range r.Up[v] {
				if !flagged[u] && u != t.Parent[v] && (u == Base || t.InTree(u)) {
					cands = append(cands, u)
				}
			}
			if len(cands) == 0 {
				continue
			}
			p := cands[src.Intn(len(cands))]
			t.SetParent(v, p)
			changed = true
			// As soon as a non-flagged node has two flagged children of the
			// same height, it pins both and flags itself.
			if !flagged[p] {
				byHeight := map[int]int{}
				for _, c := range t.Children[p] {
					if flagged[c] {
						byHeight[heights[c]]++
						if byHeight[heights[c]] >= 2 {
							flagged[p] = true
							for _, c2 := range t.Children[p] {
								if flagged[c2] && heights[c2] == heights[c] {
									pinned[c2] = true
								}
							}
							break
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

// markPins performs step (1) of OpportunisticImprove.
func markPins(t *Tree, heights []int, flagged, pinned []bool) {
	for v := range t.Parent {
		if !t.InTree(v) {
			continue
		}
		want := heights[v] - 1
		count := 0
		for _, c := range t.Children[v] {
			if heights[c] == want {
				count++
			}
		}
		if count >= 2 {
			flagged[v] = true
			pinnedHere := 0
			for _, c := range t.Children[v] {
				if heights[c] == want && pinnedHere < 2 {
					pinned[c] = true
					pinnedHere++
				}
			}
		}
	}
}
