package aggregate

import (
	"tributarydelta/internal/sample"
	"tributarydelta/internal/wire"
)

// UniformSample adapts the bottom-k duplicate-insensitive sample of
// internal/sample to the Aggregate interface. Because min-wise samples are
// idempotent under merge, the same structure is both tree partial and
// synopsis and Convert is (a copy-safe) identity — the paper lists Uniform
// Sample among the aggregates with simple conversion functions and notes it
// extends the framework to Quantiles and Statistical Moments (§5).
type UniformSample struct {
	Seed uint64
	// SampleK is the bottom-k capacity.
	SampleK int
}

// NewUniformSample returns a sampler keeping k readings.
func NewUniformSample(seed uint64, k int) *UniformSample {
	return &UniformSample{Seed: seed, SampleK: k}
}

// Name implements Aggregate.
func (a *UniformSample) Name() string { return "UniformSample" }

// Local implements Aggregate.
func (a *UniformSample) Local(epoch, node int, v float64) *sample.Sample {
	s := sample.New(a.SampleK)
	s.Add(a.Seed, epoch, node, v)
	return s
}

// MergeTree implements Aggregate.
func (a *UniformSample) MergeTree(acc, in *sample.Sample) *sample.Sample {
	acc.Merge(in)
	return acc
}

// FinalizeTree implements Aggregate (no-op).
func (a *UniformSample) FinalizeTree(_, _ int, p *sample.Sample) *sample.Sample { return p }

// AppendPartial implements Aggregate.
func (a *UniformSample) AppendPartial(dst []byte, p *sample.Sample) []byte {
	return p.AppendWire(dst)
}

// DecodePartial implements Aggregate.
func (a *UniformSample) DecodePartial(data []byte) (*sample.Sample, error) {
	return sample.DecodeWire(data, a.SampleK)
}

// Convert implements Aggregate: identity up to copying (the synopsis must
// not alias the tree partial, which its producer may keep).
func (a *UniformSample) Convert(_, _ int, p *sample.Sample) *sample.Sample {
	return p.Clone()
}

// NewSynopsis implements SynopsisRecycler.
func (a *UniformSample) NewSynopsis() *sample.Sample { return sample.New(a.SampleK) }

// ConvertInto implements SynopsisRecycler: the identity conversion into a
// recycled sample.
func (a *UniformSample) ConvertInto(_, _ int, p *sample.Sample, dst *sample.Sample) *sample.Sample {
	dst.CopyFrom(p)
	return dst
}

// DecodeSynopsisInto implements SynopsisRecycler.
func (a *UniformSample) DecodeSynopsisInto(data []byte, dst *sample.Sample) (*sample.Sample, error) {
	r := wire.NewReader(data)
	if err := sample.ReadWireInto(r, dst); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return dst, nil
}

// Fuse implements Aggregate.
func (a *UniformSample) Fuse(acc, in *sample.Sample) *sample.Sample {
	acc.Merge(in)
	return acc
}

// AppendSynopsis implements Aggregate: samples use one codec for both
// roles, like the structure itself.
func (a *UniformSample) AppendSynopsis(dst []byte, s *sample.Sample) []byte {
	return s.AppendWire(dst)
}

// DecodeSynopsis implements Aggregate.
func (a *UniformSample) DecodeSynopsis(data []byte) (*sample.Sample, error) {
	return sample.DecodeWire(data, a.SampleK)
}

// EvalBase implements Aggregate.
func (a *UniformSample) EvalBase(treeParts []*sample.Sample, syns []*sample.Sample) *sample.Sample {
	out := sample.New(a.SampleK)
	for _, p := range treeParts {
		out.Merge(p)
	}
	for _, s := range syns {
		out.Merge(s)
	}
	return out
}

// Exact implements Aggregate: the "exact sample" is the whole population,
// which experiments compare against via order statistics.
func (a *UniformSample) Exact(vs []float64) *sample.Sample {
	k := len(vs)
	if k == 0 {
		k = 1
	}
	out := sample.New(k)
	for i, v := range vs {
		out.Add(a.Seed, 0, i, v)
	}
	return out
}
