package aggregate

import (
	"math"
	"testing"
	"testing/quick"

	"tributarydelta/internal/sample"
	"tributarydelta/internal/sketch"
)

func TestCountBasics(t *testing.T) {
	a := NewCount(1)
	if a.Name() != "Count" {
		t.Fatal("name")
	}
	p := a.Local(0, 5, struct{}{})
	if p != 1 {
		t.Fatalf("local count = %d", p)
	}
	p = a.MergeTree(p, a.Local(0, 6, struct{}{}))
	p = a.FinalizeTree(0, 5, p)
	if p != 2 {
		t.Fatalf("merged count = %d", p)
	}
	if PartialWords[struct{}, int64, *sketch.Sketch, float64](a, p) != 1 {
		t.Fatal("tree words")
	}
	if got := a.EvalBase([]int64{3, 4}, nil); got != 7 {
		t.Fatalf("EvalBase tree-only = %v, want exact 7", got)
	}
	if got := a.Exact(make([]struct{}, 9)); got != 9 {
		t.Fatalf("Exact = %v", got)
	}
}

func TestCountConversionAccuracy(t *testing.T) {
	// Convert(c) must produce a synopsis the multi-path side equates with
	// c (§5): fusing conversions of partials summing to C estimates ~C.
	a := NewCount(2)
	var syns []*sketch.Sketch
	var want float64
	for owner := 1; owner <= 20; owner++ {
		c := int64(50 + owner)
		want += float64(c)
		syns = append(syns, a.Convert(0, owner, c))
	}
	got := a.EvalBase(nil, syns)
	if math.Abs(got-want)/want > 0.4 {
		t.Fatalf("converted Count estimate %v, want ~%v", got, want)
	}
}

func TestCountConversionIdempotent(t *testing.T) {
	// The same conversion fused twice (multi-path duplication) counts once.
	a := NewCount(3)
	s1 := a.Convert(0, 7, 1000)
	s2 := a.Convert(0, 7, 1000)
	fused := a.Fuse(s1.Clone(), s2)
	if fused.Estimate() != s1.Estimate() {
		t.Fatal("duplicate conversion changed the estimate")
	}
}

func TestSumExactTreeSide(t *testing.T) {
	a := NewSum(4)
	p := a.Local(0, 1, 10.5)
	p = a.MergeTree(p, 20.25)
	p = a.FinalizeTree(0, 1, p)
	if p != 30.75 {
		t.Fatalf("tree sum = %v", p)
	}
	if got := a.EvalBase([]float64{1.5, 2.5}, nil); got != 4 {
		t.Fatalf("tree-only EvalBase = %v, want exact 4", got)
	}
	if got := a.Exact([]float64{1, 2, 3}); got != 6 {
		t.Fatalf("Exact = %v", got)
	}
}

func TestSumScale(t *testing.T) {
	// With a scale, fractional sums survive conversion approximately.
	a := &Sum{Seed: 5, K: 40, Scale: 100}
	syn := a.Convert(0, 1, 123.45)
	got := a.EvalBase(nil, []*sketch.Sketch{syn})
	if math.Abs(got-123.45)/123.45 > 0.5 {
		t.Fatalf("scaled conversion estimate %v, want ~123.45", got)
	}
}

func TestMinMaxExactness(t *testing.T) {
	vals := []float64{5, -2, 17, 3.5}
	var minA Min
	var maxA Max
	pMin, pMax := vals[0], vals[0]
	for _, v := range vals[1:] {
		pMin = minA.MergeTree(pMin, v)
		pMax = maxA.MergeTree(pMax, v)
	}
	if pMin != -2 || pMax != 17 {
		t.Fatalf("min/max = %v/%v", pMin, pMax)
	}
	// Conversion is the identity; fusion stays exact.
	if minA.Convert(0, 0, pMin) != pMin {
		t.Fatal("Min conversion must be identity")
	}
	if got := minA.EvalBase([]float64{3}, []float64{-1, 4}); got != -1 {
		t.Fatalf("Min EvalBase = %v", got)
	}
	if got := maxA.EvalBase([]float64{3}, []float64{-1, 4}); got != 4 {
		t.Fatalf("Max EvalBase = %v", got)
	}
	if minA.Exact(vals) != -2 || maxA.Exact(vals) != 17 {
		t.Fatal("Exact wrong")
	}
}

func TestMinMaxFuseProperties(t *testing.T) {
	var m Min
	err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return m.Fuse(a, b) == m.Fuse(b, a) && m.Fuse(a, a) == a
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAverage(t *testing.T) {
	a := NewAverage(6)
	p := a.Local(0, 1, 10)
	p = a.MergeTree(p, a.Local(0, 2, 20))
	p = a.FinalizeTree(0, 1, p)
	if p.Sum != 30 || p.Count != 2 {
		t.Fatalf("avg partial = %+v", p)
	}
	if got := a.EvalBase([]AvgPartial{p}, nil); got != 15 {
		t.Fatalf("tree-only average = %v, want exact 15", got)
	}
	// The (sum, count) pair costs at most the paper's two words; compact
	// integer-valued sums fit one.
	if w := PartialWords[float64, AvgPartial, AvgSynopsis, float64](a, p); w < 1 || w > 2 {
		t.Fatalf("avg tree words = %d, want 1..2", w)
	}
	if got := a.Exact([]float64{10, 20, 30}); got != 20 {
		t.Fatalf("Exact = %v", got)
	}
	if got := a.Exact(nil); got != 0 {
		t.Fatalf("empty Exact = %v", got)
	}
	// Mixed evaluation: tree part exact + converted part approximate.
	syn := a.Convert(0, 3, AvgPartial{Sum: 1000, Count: 10})
	got := a.EvalBase([]AvgPartial{{Sum: 1000, Count: 10}}, []AvgSynopsis{syn})
	if math.Abs(got-100)/100 > 0.5 {
		t.Fatalf("mixed average %v, want ~100", got)
	}
}

func TestAverageEmptyEval(t *testing.T) {
	a := NewAverage(7)
	if got := a.EvalBase(nil, nil); got != 0 {
		t.Fatalf("empty EvalBase = %v", got)
	}
}

func TestUniformSampleAggregate(t *testing.T) {
	a := NewUniformSample(8, 10)
	p := a.Local(0, 1, 5.0)
	for node := 2; node <= 50; node++ {
		p = a.MergeTree(p, a.Local(0, node, float64(node)))
	}
	p = a.FinalizeTree(0, 1, p)
	if p.Len() != 10 {
		t.Fatalf("sample size %d, want 10", p.Len())
	}
	// Conversion must not alias the original.
	s := a.Convert(0, 1, p)
	s = a.Fuse(s, a.Local(0, 99, 999))
	if p.Len() != 10 {
		t.Fatal("conversion aliased the tree partial")
	}
	_ = s
}

func TestUniformSampleEvalBase(t *testing.T) {
	a := NewUniformSample(9, 5)
	p1 := a.Local(0, 1, 1)
	p2 := a.Local(0, 2, 2)
	s1 := a.Convert(0, 1, p1)
	out := a.EvalBase(nil, nil)
	if out.Len() != 0 {
		t.Fatal("empty eval should be empty")
	}
	out = a.EvalBase([]*sample.Sample{p2}, []*sample.Sample{s1})
	if out.Len() != 2 {
		t.Fatalf("eval sample size %d, want 2", out.Len())
	}
	if a.Exact([]float64{1, 2, 3}).Len() != 3 {
		t.Fatal("Exact should hold the population")
	}
}
