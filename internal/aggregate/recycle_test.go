package aggregate

import (
	"testing"

	"tributarydelta/internal/sketch"
)

// Compile-time: the sketch-backed simple aggregates offer the recycling
// fast path the epoch engine pools synopses through.
var (
	_ SynopsisRecycler[int64, *sketch.Sketch]   = (*Count)(nil)
	_ SynopsisRecycler[float64, *sketch.Sketch] = (*Sum)(nil)
	_ SynopsisRecycler[AvgPartial, AvgSynopsis] = (*Average)(nil)
)

// TestConvertIntoMatchesConvert pins the recycler contract: ConvertInto
// into a dirty recycled synopsis must be bit-identical to Convert.
func TestConvertIntoMatchesConvert(t *testing.T) {
	t.Run("Count", func(t *testing.T) {
		a := NewCount(7)
		dst := a.NewSynopsis()
		dst.Insert(99, 1) // dirty
		got := a.ConvertInto(3, 14, 500, dst)
		want := a.Convert(3, 14, 500)
		if got.Estimate() != want.Estimate() || sketch.Union(got, want).Estimate() != want.Estimate() {
			t.Fatal("ConvertInto diverged from Convert")
		}
		if !equalWire(a.AppendSynopsis(nil, got), a.AppendSynopsis(nil, want)) {
			t.Fatal("ConvertInto not bit-identical to Convert")
		}
	})
	t.Run("Sum", func(t *testing.T) {
		a := NewSum(7)
		dst := a.NewSynopsis()
		dst.Insert(99, 1)
		got := a.ConvertInto(3, 14, 123.5, dst)
		want := a.Convert(3, 14, 123.5)
		if !equalWire(a.AppendSynopsis(nil, got), a.AppendSynopsis(nil, want)) {
			t.Fatal("ConvertInto not bit-identical to Convert")
		}
	})
	t.Run("Average", func(t *testing.T) {
		a := NewAverage(7)
		dst := a.NewSynopsis()
		dst.Sum.Insert(99, 1)
		dst.Count.Insert(98, 2)
		p := AvgPartial{Sum: 321.25, Count: 17}
		got := a.ConvertInto(3, 14, p, dst)
		want := a.Convert(3, 14, p)
		if !equalWire(a.AppendSynopsis(nil, got), a.AppendSynopsis(nil, want)) {
			t.Fatal("ConvertInto not bit-identical to Convert")
		}
	})
}

// TestDecodeSynopsisIntoMatchesDecode pins the decode half of the recycler
// contract, including the error path on truncated input.
func TestDecodeSynopsisIntoMatchesDecode(t *testing.T) {
	t.Run("Count", func(t *testing.T) {
		a := NewCount(5)
		enc := a.AppendSynopsis(nil, a.Convert(1, 2, 300))
		dst := a.NewSynopsis()
		dst.Insert(1, 1)
		got, err := a.DecodeSynopsisInto(enc, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !equalWire(a.AppendSynopsis(nil, got), enc) {
			t.Fatal("DecodeSynopsisInto not bit-identical")
		}
		if _, err := a.DecodeSynopsisInto(enc[:3], a.NewSynopsis()); err == nil {
			t.Fatal("truncated synopsis accepted")
		}
	})
	t.Run("Average", func(t *testing.T) {
		a := NewAverage(5)
		enc := a.AppendSynopsis(nil, a.Convert(1, 2, AvgPartial{Sum: 10, Count: 3}))
		got, err := a.DecodeSynopsisInto(enc, a.NewSynopsis())
		if err != nil {
			t.Fatal(err)
		}
		if !equalWire(a.AppendSynopsis(nil, got), enc) {
			t.Fatal("DecodeSynopsisInto not bit-identical")
		}
		if _, err := a.DecodeSynopsisInto(enc[:5], a.NewSynopsis()); err == nil {
			t.Fatal("truncated synopsis accepted")
		}
	})
}

// TestEvalBaseScratchDoesNotMutateInputs guards the Aggregate contract: the
// scratch-based EvalBase must leave the synopses it unions untouched.
func TestEvalBaseScratchDoesNotMutateInputs(t *testing.T) {
	a := NewCount(9)
	s1 := a.Convert(0, 1, 100)
	s2 := a.Convert(0, 2, 200)
	before1 := a.AppendSynopsis(nil, s1)
	before2 := a.AppendSynopsis(nil, s2)
	first := a.EvalBase(nil, []*sketch.Sketch{s1, s2})
	second := a.EvalBase(nil, []*sketch.Sketch{s1, s2}) // scratch reuse
	if first != second {
		t.Fatalf("EvalBase not stable under scratch reuse: %v vs %v", first, second)
	}
	if !equalWire(a.AppendSynopsis(nil, s1), before1) || !equalWire(a.AppendSynopsis(nil, s2), before2) {
		t.Fatal("EvalBase mutated an input synopsis")
	}
}

func equalWire(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
