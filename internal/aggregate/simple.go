package aggregate

import (
	"math"

	"tributarydelta/internal/sketch"
	"tributarydelta/internal/wire"
	"tributarydelta/internal/xrand"
)

// decodeFloatPartial parses the one-float encoding shared by Sum, Min and
// Max.
func decodeFloatPartial(data []byte) (float64, error) {
	r := wire.NewReader(data)
	v := r.Float64()
	return v, r.Finish()
}

// DefaultSketchK is the paper's multi-path Count/Sum configuration: 40
// 32-bit FM bitmaps, RLE-packed into one 48-byte TinyDB message, giving the
// ~12% approximation error visible in Figure 2.
const DefaultSketchK = 40

// DefaultReseedEvery is the default synopsis hash reseeding period of the
// sketch-backed aggregates, matching the §4.2 default adaptation period: the
// hash is fixed within a period (so base synopses are pure functions of
// (seed, owner, reading) and memoizable across its epochs) and re-drawn
// between periods (so long-run averages — the adaptation mean, an
// experiment's RMS error — still see independent FM realizations).
const DefaultReseedEvery = 10

// Sum aggregates non-negative numeric readings: exact float64 partial sums
// in the tree, FM count sketches in the delta. Readings are scaled by Scale
// and rounded before sketch insertion, so the multi-path side carries
// integers (the FM domain); the tree side stays exact.
type Sum struct {
	// Seed namespaces the sketch hash space; combine with the run seed.
	Seed uint64
	// K is the number of FM bitmaps per synopsis.
	K int
	// Scale converts readings to sketch units (units of 1/Scale).
	Scale float64
	// ReseedEvery is the hash reseeding period in epochs: within a period
	// the sketch hash is fixed — Considine-style, installed with the query —
	// making conversions memoizable; between periods it is re-drawn so
	// epoch averages de-correlate. 0 never reseeds (one hash for the whole
	// run).
	ReseedEvery int

	// scratch is the EvalBase union accumulator, reused epoch to epoch.
	scratch *sketch.Sketch
}

// NewSum returns a Sum aggregate with the paper's defaults.
func NewSum(seed uint64) *Sum {
	return &Sum{Seed: seed, K: DefaultSketchK, Scale: 1, ReseedEvery: DefaultReseedEvery}
}

// seedEpochKey maps an epoch to its hash-reseeding period.
func seedEpochKey(epoch, reseedEvery int) uint64 {
	if reseedEvery <= 0 {
		return 0
	}
	return uint64(epoch / reseedEvery)
}

// Name implements Aggregate.
func (a *Sum) Name() string { return "Sum" }

// Local implements Aggregate.
func (a *Sum) Local(_, _ int, v float64) float64 { return v }

// MergeTree implements Aggregate.
func (a *Sum) MergeTree(acc, in float64) float64 { return acc + in }

// FinalizeTree implements Aggregate (no-op).
func (a *Sum) FinalizeTree(_, _ int, p float64) float64 { return p }

// AppendPartial implements Aggregate: the exact float64 subtree sum,
// varint-compressed (integer-valued readings fit one word).
func (a *Sum) AppendPartial(dst []byte, p float64) []byte {
	return wire.AppendFloat64(dst, p)
}

// DecodePartial implements Aggregate.
func (a *Sum) DecodePartial(data []byte) (float64, error) {
	return decodeFloatPartial(data)
}

// Convert implements Aggregate: a subtree sum p becomes round(p·Scale)
// distinct sketch insertions owned by the converting sender, which is
// exactly the synopsis the multi-path scheme equates with p.
//
// The sketch hash is fixed within a reseeding period (see ReseedEvery), not
// re-randomized per epoch — as in Considine et al., where every node applies
// the same hash function h installed with the query. Within a period the
// synopsis is a pure function of (seed, owner, p), which is what lets the
// epoch engine memoize base synopses across epochs while a reading holds
// still.
func (a *Sum) Convert(epoch, owner int, p float64) *sketch.Sketch {
	return a.ConvertInto(epoch, owner, p, sketch.New(a.K))
}

// Fuse implements Aggregate.
func (a *Sum) Fuse(acc, in *sketch.Sketch) *sketch.Sketch {
	acc.Union(in)
	return acc
}

// FuseAll implements SynopsisBatchFuser: one word-major pass over all
// sources instead of one Fuse dispatch per synopsis.
func (a *Sum) FuseAll(acc *sketch.Sketch, in []*sketch.Sketch) *sketch.Sketch {
	sketch.UnionAllInto(acc, in...)
	return acc
}

// NewSynopsis implements SynopsisRecycler.
func (a *Sum) NewSynopsis() *sketch.Sketch { return sketch.New(a.K) }

// ConvertInto implements SynopsisRecycler: Convert into a recycled sketch.
func (a *Sum) ConvertInto(epoch, owner int, p float64, dst *sketch.Sketch) *sketch.Sketch {
	dst.Reset()
	units := int64(math.Round(p * a.Scale))
	dst.AddCount(a.sketchSeed(epoch), uint64(owner), units)
	return dst
}

// sketchSeed is the hash seed of the Sum synopsis domain for the epoch's
// reseeding period.
func (a *Sum) sketchSeed(epoch int) uint64 {
	return xrand.Hash(a.Seed, 0xF14, seedEpochKey(epoch, a.ReseedEvery))
}

// SynopsisEpochKey implements SynopsisMemoizer: conversions are stable
// while the reseeding period is.
func (a *Sum) SynopsisEpochKey(epoch int) uint64 { return seedEpochKey(epoch, a.ReseedEvery) }

// PartialEqual implements SynopsisMemoizer.
func (a *Sum) PartialEqual(x, y float64) bool { return x == y }

// CopySynopsisInto implements SynopsisMemoizer.
func (a *Sum) CopySynopsisInto(dst, src *sketch.Sketch) *sketch.Sketch {
	dst.CopyFrom(src)
	return dst
}

// DecodeSynopsisInto implements SynopsisRecycler.
func (a *Sum) DecodeSynopsisInto(data []byte, dst *sketch.Sketch) (*sketch.Sketch, error) {
	if err := dst.LoadWire(data); err != nil {
		return nil, err
	}
	return dst, nil
}

// AppendSynopsis implements Aggregate: the raw K-bitmap FM sketch, exactly
// K 32-bit words.
func (a *Sum) AppendSynopsis(dst []byte, s *sketch.Sketch) []byte {
	return s.AppendWire(dst)
}

// DecodeSynopsis implements Aggregate.
func (a *Sum) DecodeSynopsis(data []byte) (*sketch.Sketch, error) {
	return sketch.DecodeWire(data, a.K)
}

// EvalBase implements Aggregate.
func (a *Sum) EvalBase(treeParts []float64, syns []*sketch.Sketch) float64 {
	total := 0.0
	for _, p := range treeParts {
		total += p
	}
	if len(syns) > 0 {
		if a.scratch == nil {
			a.scratch = sketch.New(a.K)
		}
		sketch.UnionAllInto(a.scratch, syns...)
		total += a.scratch.Estimate() / a.Scale
	}
	return total
}

// Exact implements Aggregate.
func (a *Sum) Exact(vs []float64) float64 {
	t := 0.0
	for _, v := range vs {
		t += v
	}
	return t
}

// Count counts contributing sensor nodes: the paper's running example
// (Figures 2 and 5). It is Sum over the constant reading 1, with integer
// tree partials — each node inserts itself once into the bit-vector
// synopsis, as in Figure 3.
type Count struct {
	Seed uint64
	K    int
	// ReseedEvery is the hash reseeding period in epochs; see Sum.
	ReseedEvery int

	// scratch is the EvalBase union accumulator, reused epoch to epoch.
	scratch *sketch.Sketch
}

// NewCount returns a Count aggregate with the paper's defaults.
func NewCount(seed uint64) *Count {
	return &Count{Seed: seed, K: DefaultSketchK, ReseedEvery: DefaultReseedEvery}
}

// Name implements Aggregate.
func (a *Count) Name() string { return "Count" }

// Local implements Aggregate.
func (a *Count) Local(_, _ int, _ struct{}) int64 { return 1 }

// MergeTree implements Aggregate.
func (a *Count) MergeTree(acc, in int64) int64 { return acc + in }

// FinalizeTree implements Aggregate (no-op).
func (a *Count) FinalizeTree(_, _ int, p int64) int64 { return p }

// AppendPartial implements Aggregate: the exact subtree count as a varint —
// one 32-bit word for any realistic deployment (counts below 2^27).
func (a *Count) AppendPartial(dst []byte, p int64) []byte {
	return wire.AppendVarint(dst, p)
}

// DecodePartial implements Aggregate.
func (a *Count) DecodePartial(data []byte) (int64, error) {
	r := wire.NewReader(data)
	p := r.Varint()
	return p, r.Finish()
}

// Convert implements Aggregate. Like Sum's, the sketch hash is fixed within
// a reseeding period — the synopsis is a pure function of (seed, owner, p) —
// so converted partials are memoizable across the period's epochs.
func (a *Count) Convert(epoch, owner int, p int64) *sketch.Sketch {
	return a.ConvertInto(epoch, owner, p, sketch.New(a.K))
}

// Fuse implements Aggregate.
func (a *Count) Fuse(acc, in *sketch.Sketch) *sketch.Sketch {
	acc.Union(in)
	return acc
}

// FuseAll implements SynopsisBatchFuser: one word-major pass over all
// sources instead of one Fuse dispatch per synopsis.
func (a *Count) FuseAll(acc *sketch.Sketch, in []*sketch.Sketch) *sketch.Sketch {
	sketch.UnionAllInto(acc, in...)
	return acc
}

// NewSynopsis implements SynopsisRecycler.
func (a *Count) NewSynopsis() *sketch.Sketch { return sketch.New(a.K) }

// ConvertInto implements SynopsisRecycler: Convert into a recycled sketch.
func (a *Count) ConvertInto(epoch, owner int, p int64, dst *sketch.Sketch) *sketch.Sketch {
	dst.Reset()
	dst.AddCount(a.sketchSeed(epoch), uint64(owner), p)
	return dst
}

// sketchSeed is the hash seed of the Count synopsis domain for the epoch's
// reseeding period.
func (a *Count) sketchSeed(epoch int) uint64 {
	return xrand.Hash(a.Seed, 0xF14, seedEpochKey(epoch, a.ReseedEvery))
}

// SynopsisEpochKey implements SynopsisMemoizer.
func (a *Count) SynopsisEpochKey(epoch int) uint64 { return seedEpochKey(epoch, a.ReseedEvery) }

// PartialEqual implements SynopsisMemoizer.
func (a *Count) PartialEqual(x, y int64) bool { return x == y }

// CopySynopsisInto implements SynopsisMemoizer.
func (a *Count) CopySynopsisInto(dst, src *sketch.Sketch) *sketch.Sketch {
	dst.CopyFrom(src)
	return dst
}

// DecodeSynopsisInto implements SynopsisRecycler.
func (a *Count) DecodeSynopsisInto(data []byte, dst *sketch.Sketch) (*sketch.Sketch, error) {
	if err := dst.LoadWire(data); err != nil {
		return nil, err
	}
	return dst, nil
}

// AppendSynopsis implements Aggregate: the raw K-bitmap FM bit vector of
// Figure 3, exactly K 32-bit words.
func (a *Count) AppendSynopsis(dst []byte, s *sketch.Sketch) []byte {
	return s.AppendWire(dst)
}

// DecodeSynopsis implements Aggregate.
func (a *Count) DecodeSynopsis(data []byte) (*sketch.Sketch, error) {
	return sketch.DecodeWire(data, a.K)
}

// EvalBase implements Aggregate.
func (a *Count) EvalBase(treeParts []int64, syns []*sketch.Sketch) float64 {
	var exact int64
	for _, p := range treeParts {
		exact += p
	}
	total := float64(exact)
	if len(syns) > 0 {
		if a.scratch == nil {
			a.scratch = sketch.New(a.K)
		}
		sketch.UnionAllInto(a.scratch, syns...)
		total += a.scratch.Estimate()
	}
	return total
}

// Exact implements Aggregate.
func (a *Count) Exact(vs []struct{}) float64 { return float64(len(vs)) }

// Min tracks the minimum reading. Min is idempotent, so the very same
// float64 serves as tree partial and as duplicate-insensitive synopsis; the
// conversion function is the identity and multi-path introduces no
// approximation error (§5).
type Min struct{}

// Name implements Aggregate.
func (Min) Name() string { return "Min" }

// Local implements Aggregate.
func (Min) Local(_, _ int, v float64) float64 { return v }

// MergeTree implements Aggregate.
func (Min) MergeTree(acc, in float64) float64 { return math.Min(acc, in) }

// FinalizeTree implements Aggregate (no-op).
func (Min) FinalizeTree(_, _ int, p float64) float64 { return p }

// AppendPartial implements Aggregate.
func (Min) AppendPartial(dst []byte, p float64) []byte { return wire.AppendFloat64(dst, p) }

// DecodePartial implements Aggregate.
func (Min) DecodePartial(data []byte) (float64, error) { return decodeFloatPartial(data) }

// Convert implements Aggregate.
func (Min) Convert(_, _ int, p float64) float64 { return p }

// Fuse implements Aggregate.
func (Min) Fuse(acc, in float64) float64 { return math.Min(acc, in) }

// AppendSynopsis implements Aggregate: Min's synopsis is the same scalar as
// its partial (identity conversion).
func (Min) AppendSynopsis(dst []byte, s float64) []byte { return wire.AppendFloat64(dst, s) }

// DecodeSynopsis implements Aggregate.
func (Min) DecodeSynopsis(data []byte) (float64, error) { return decodeFloatPartial(data) }

// EvalBase implements Aggregate.
func (Min) EvalBase(treeParts []float64, syns []float64) float64 {
	m := math.Inf(1)
	for _, p := range treeParts {
		m = math.Min(m, p)
	}
	for _, s := range syns {
		m = math.Min(m, s)
	}
	return m
}

// Exact implements Aggregate.
func (Min) Exact(vs []float64) float64 {
	m := math.Inf(1)
	for _, v := range vs {
		m = math.Min(m, v)
	}
	return m
}

// Max tracks the maximum reading; see Min.
type Max struct{}

// Name implements Aggregate.
func (Max) Name() string { return "Max" }

// Local implements Aggregate.
func (Max) Local(_, _ int, v float64) float64 { return v }

// MergeTree implements Aggregate.
func (Max) MergeTree(acc, in float64) float64 { return math.Max(acc, in) }

// FinalizeTree implements Aggregate (no-op).
func (Max) FinalizeTree(_, _ int, p float64) float64 { return p }

// AppendPartial implements Aggregate.
func (Max) AppendPartial(dst []byte, p float64) []byte { return wire.AppendFloat64(dst, p) }

// DecodePartial implements Aggregate.
func (Max) DecodePartial(data []byte) (float64, error) { return decodeFloatPartial(data) }

// Convert implements Aggregate.
func (Max) Convert(_, _ int, p float64) float64 { return p }

// Fuse implements Aggregate.
func (Max) Fuse(acc, in float64) float64 { return math.Max(acc, in) }

// AppendSynopsis implements Aggregate.
func (Max) AppendSynopsis(dst []byte, s float64) []byte { return wire.AppendFloat64(dst, s) }

// DecodeSynopsis implements Aggregate.
func (Max) DecodeSynopsis(data []byte) (float64, error) { return decodeFloatPartial(data) }

// EvalBase implements Aggregate.
func (Max) EvalBase(treeParts []float64, syns []float64) float64 {
	m := math.Inf(-1)
	for _, p := range treeParts {
		m = math.Max(m, p)
	}
	for _, s := range syns {
		m = math.Max(m, s)
	}
	return m
}

// Exact implements Aggregate.
func (Max) Exact(vs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range vs {
		m = math.Max(m, v)
	}
	return m
}

// AvgPartial is the tree partial of Average: an exact (sum, count) pair.
type AvgPartial struct {
	Sum   float64
	Count int64
}

// AvgSynopsis is the multi-path synopsis of Average: a Sum sketch and a
// Count sketch fused independently.
type AvgSynopsis struct {
	Sum   *sketch.Sketch
	Count *sketch.Sketch
}

// Average computes the mean reading as Sum/Count, both carried in one
// message (§5 lists Average among the aggregates with simple conversions).
type Average struct {
	Seed  uint64
	K     int
	Scale float64
	// ReseedEvery is the hash reseeding period in epochs; see Sum.
	ReseedEvery int

	// scratchSum/scratchCount are the EvalBase union accumulators, reused
	// epoch to epoch.
	scratchSum, scratchCount *sketch.Sketch
}

// NewAverage returns an Average aggregate with the paper's defaults. The
// two sketches halve the bitmap budget each so the synopsis still fits one
// TinyDB packet.
func NewAverage(seed uint64) *Average {
	return &Average{Seed: seed, K: DefaultSketchK / 2, Scale: 1, ReseedEvery: DefaultReseedEvery}
}

// Name implements Aggregate.
func (a *Average) Name() string { return "Average" }

// Local implements Aggregate.
func (a *Average) Local(_, _ int, v float64) AvgPartial {
	return AvgPartial{Sum: v, Count: 1}
}

// MergeTree implements Aggregate.
func (a *Average) MergeTree(acc, in AvgPartial) AvgPartial {
	return AvgPartial{Sum: acc.Sum + in.Sum, Count: acc.Count + in.Count}
}

// FinalizeTree implements Aggregate (no-op).
func (a *Average) FinalizeTree(_, _ int, p AvgPartial) AvgPartial { return p }

// AppendPartial implements Aggregate: the exact (sum, count) pair.
func (a *Average) AppendPartial(dst []byte, p AvgPartial) []byte {
	dst = wire.AppendFloat64(dst, p.Sum)
	return wire.AppendVarint(dst, p.Count)
}

// DecodePartial implements Aggregate.
func (a *Average) DecodePartial(data []byte) (AvgPartial, error) {
	r := wire.NewReader(data)
	p := AvgPartial{Sum: r.Float64(), Count: r.Varint()}
	return p, r.Finish()
}

// Convert implements Aggregate. Both sketch hashes are fixed within a
// reseeding period (see Sum.Convert), so the synopsis is a pure function of
// (seed, owner, p).
func (a *Average) Convert(epoch, owner int, p AvgPartial) AvgSynopsis {
	return a.ConvertInto(epoch, owner, p, a.NewSynopsis())
}

// Fuse implements Aggregate.
func (a *Average) Fuse(acc, in AvgSynopsis) AvgSynopsis {
	acc.Sum.Union(in.Sum)
	acc.Count.Union(in.Count)
	return acc
}

// FuseAll implements SynopsisBatchFuser. The pair layout rules out a single
// gathered UnionAllInto pass (that would need aggregate-owned scratch, which
// the concurrency contract forbids), but the batch still collapses the
// per-synopsis Fuse dispatches into one call with UnionInto's overwrite
// semantics per half.
func (a *Average) FuseAll(acc AvgSynopsis, in []AvgSynopsis) AvgSynopsis {
	keep := false
	for _, s := range in {
		if s.Sum == acc.Sum {
			keep = true
		}
	}
	if !keep {
		acc.Sum.Reset()
		acc.Count.Reset()
	}
	for _, s := range in {
		if s.Sum == acc.Sum {
			continue
		}
		acc.Sum.Union(s.Sum)
		acc.Count.Union(s.Count)
	}
	return acc
}

// NewSynopsis implements SynopsisRecycler.
func (a *Average) NewSynopsis() AvgSynopsis {
	return AvgSynopsis{Sum: sketch.New(a.K), Count: sketch.New(a.K)}
}

// ConvertInto implements SynopsisRecycler: Convert into a recycled synopsis.
func (a *Average) ConvertInto(epoch, owner int, p AvgPartial, dst AvgSynopsis) AvgSynopsis {
	dst.Sum.Reset()
	dst.Count.Reset()
	seed := a.sketchSeed(epoch)
	dst.Sum.AddCount(seed, uint64(owner), int64(math.Round(p.Sum*a.Scale)))
	dst.Count.AddCount(xrand.Combine(seed, 0xC07), uint64(owner), p.Count)
	return dst
}

// sketchSeed is the hash seed of the Average synopsis domain for the epoch's
// reseeding period.
func (a *Average) sketchSeed(epoch int) uint64 {
	return xrand.Hash(a.Seed, 0xF14, seedEpochKey(epoch, a.ReseedEvery))
}

// SynopsisEpochKey implements SynopsisMemoizer.
func (a *Average) SynopsisEpochKey(epoch int) uint64 { return seedEpochKey(epoch, a.ReseedEvery) }

// PartialEqual implements SynopsisMemoizer.
func (a *Average) PartialEqual(x, y AvgPartial) bool { return x == y }

// CopySynopsisInto implements SynopsisMemoizer.
func (a *Average) CopySynopsisInto(dst, src AvgSynopsis) AvgSynopsis {
	dst.Sum.CopyFrom(src.Sum)
	dst.Count.CopyFrom(src.Count)
	return dst
}

// DecodeSynopsisInto implements SynopsisRecycler.
func (a *Average) DecodeSynopsisInto(data []byte, dst AvgSynopsis) (AvgSynopsis, error) {
	r := wire.NewReader(data)
	half := sketch.WireBytes(a.K)
	if d := r.Take(half); d != nil {
		_ = dst.Sum.LoadWire(d) // length is exact by construction
	}
	if d := r.Take(half); d != nil {
		_ = dst.Count.LoadWire(d)
	}
	if err := r.Finish(); err != nil {
		return AvgSynopsis{}, err
	}
	return dst, nil
}

// AppendSynopsis implements Aggregate: the Sum and Count sketches
// back-to-back, 2K words.
func (a *Average) AppendSynopsis(dst []byte, s AvgSynopsis) []byte {
	dst = s.Sum.AppendWire(dst)
	return s.Count.AppendWire(dst)
}

// DecodeSynopsis implements Aggregate.
func (a *Average) DecodeSynopsis(data []byte) (AvgSynopsis, error) {
	r := wire.NewReader(data)
	s := AvgSynopsis{Sum: sketch.ReadWire(r, a.K), Count: sketch.ReadWire(r, a.K)}
	return s, r.Finish()
}

// EvalBase implements Aggregate.
func (a *Average) EvalBase(treeParts []AvgPartial, syns []AvgSynopsis) float64 {
	var sum float64
	var count float64
	for _, p := range treeParts {
		sum += p.Sum
		count += float64(p.Count)
	}
	if len(syns) > 0 {
		if a.scratchSum == nil {
			a.scratchSum = sketch.New(a.K)
			a.scratchCount = sketch.New(a.K)
		}
		a.scratchSum.CopyFrom(syns[0].Sum)
		a.scratchCount.CopyFrom(syns[0].Count)
		for _, s := range syns[1:] {
			a.scratchSum.Union(s.Sum)
			a.scratchCount.Union(s.Count)
		}
		sum += a.scratchSum.Estimate() / a.Scale
		count += a.scratchCount.Estimate()
	}
	if count == 0 {
		return 0
	}
	return sum / count
}

// Exact implements Aggregate.
func (a *Average) Exact(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range vs {
		t += v
	}
	return t / float64(len(vs))
}
