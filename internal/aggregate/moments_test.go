package aggregate

import (
	"math"
	"testing"

	"tributarydelta/internal/xrand"
)

func TestMomentsExact(t *testing.T) {
	a := NewMoments(1)
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	got := a.Exact(vs)
	if got.Count != 8 {
		t.Fatalf("count = %v", got.Count)
	}
	if math.Abs(got.Mean-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", got.Mean)
	}
	if math.Abs(got.Variance-4) > 1e-12 {
		t.Fatalf("variance = %v, want 4", got.Variance)
	}
}

func TestMomentsTreeSideExact(t *testing.T) {
	a := NewMoments(2)
	p := a.Local(0, 1, 3)
	p = a.MergeTree(p, a.Local(0, 2, 5))
	p = a.MergeTree(p, a.Local(0, 3, 7))
	p = a.FinalizeTree(0, 1, p)
	got := a.EvalBase([]MomentsPartial{p}, nil)
	want := a.Exact([]float64{3, 5, 7})
	if math.Abs(got.Mean-want.Mean) > 1e-12 || math.Abs(got.Variance-want.Variance) > 1e-12 {
		t.Fatalf("tree-only moments %+v, want %+v", got, want)
	}
}

func TestMomentsConversionApproximation(t *testing.T) {
	// Converted synopses should land near the exact moments; judge the
	// mean over a few epochs (each with its own hash space).
	a := NewMoments(3)
	src := xrand.NewSource(17)
	vs := make([]float64, 200)
	for i := range vs {
		vs[i] = 40 + 20*src.Float64()
	}
	want := a.Exact(vs)
	const epochs = 6
	var meanErr, countErr float64
	for e := 0; e < epochs; e++ {
		var syns []MomentsSynopsis
		for i, v := range vs {
			syns = append(syns, a.Convert(e, i+1, a.Local(e, i+1, v)))
		}
		got := a.EvalBase(nil, syns)
		meanErr += got.Mean/want.Mean - 1
		countErr += got.Count/want.Count - 1
	}
	if m := math.Abs(meanErr / epochs); m > 0.35 {
		t.Fatalf("mean relative error %v too large", m)
	}
	if c := math.Abs(countErr / epochs); c > 0.35 {
		t.Fatalf("count relative error %v too large", c)
	}
}

func TestMomentsClamp(t *testing.T) {
	a := NewMoments(4)
	p := a.Local(0, 1, -5)
	if p.S1 != 0 {
		t.Fatal("negative readings must clamp to 0")
	}
	p = a.Local(0, 1, 1e9)
	if p.S1 != a.MaxValue {
		t.Fatal("huge readings must clamp to MaxValue")
	}
}

func TestMomentsEmpty(t *testing.T) {
	a := NewMoments(5)
	got := a.EvalBase(nil, nil)
	if got.Count != 0 || got.Mean != 0 {
		t.Fatalf("empty eval = %+v", got)
	}
	if v := a.Exact(nil); v.Count != 0 {
		t.Fatal("empty exact")
	}
}

func TestMomentsSkewness(t *testing.T) {
	a := NewMoments(6)
	// A right-skewed sample: many small, few large.
	var vs []float64
	for i := 0; i < 90; i++ {
		vs = append(vs, 10)
	}
	for i := 0; i < 10; i++ {
		vs = append(vs, 100)
	}
	if got := a.Exact(vs); got.Skewness <= 0 {
		t.Fatalf("right-skewed data must have positive skewness, got %v", got.Skewness)
	}
}
