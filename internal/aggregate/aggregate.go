// Package aggregate defines the per-aggregate plumbing the Tributary-Delta
// framework needs (§5): a tree algorithm over exact partial results, a
// multi-path algorithm over duplicate-insensitive synopses (the SG/SF/SE
// decomposition of synopsis diffusion, §2), and the conversion function that
// turns a tree partial result into a synopsis at the tributary/delta
// boundary. It provides the simple aggregates of §5 — Count, Sum, Min, Max,
// Average — whose conversion functions are straightforward; Frequent Items
// (§6) lives in internal/freq and Uniform Sample in internal/sample.
package aggregate

import "tributarydelta/internal/wire"

// Aggregate is the contract between an aggregate and the collection-round
// runner. V is the type of one sensor's local reading, P the tree partial
// result, S the multi-path synopsis, and R the query answer produced at the
// base station.
//
// Semantics required by the framework:
//
//   - MergeTree must be associative and commutative over partials, so that
//     a node may fold its children's partials into its own in any order.
//   - Fuse must be associative, commutative and duplicate-insensitive
//     (idempotent over repeated copies of the same synopsis) — the synopsis
//     fusion property that makes multi-path routing safe (§2).
//   - Convert(epoch, owner, p) must produce a synopsis that the multi-path
//     scheme "equates with" p (§5): fusing it is equivalent to having the
//     owner's subtree contribute directly. The owner identifies the unique
//     tree sender, keeping conversion deterministic and hence idempotent
//     under multi-path replication.
//   - Implementations must not modify `in` arguments; they may mutate and
//     return `acc`.
//
// Every aggregate also supplies a partial codec and a synopsis codec: the
// runner transmits real encoded bytes (framed by internal/wire's Envelope),
// and all message-size accounting is derived from encoded lengths — there
// is no separate "estimated words" path that could drift from reality. The
// codecs must be lossless (decode(encode(x)) is semantically identical to
// x) and deterministic (equal values encode to equal bytes); any fixed
// parameters a decoder needs (sketch bitmap counts, sample capacity) come
// from the aggregate's own configuration, mirroring a deployment-wide query
// plan. Decoders must return an error — never panic — on malformed or
// truncated input.
type Aggregate[V, P, S, R any] interface {
	// Name identifies the aggregate in reports.
	Name() string
	// Local evaluates the query locally (§2's local result).
	Local(epoch, node int, v V) P
	// MergeTree folds a child's partial into an accumulator partial.
	MergeTree(acc, in P) P
	// FinalizeTree post-processes a node's folded partial before it is
	// transmitted. Most aggregates return p unchanged; the frequent items
	// tree algorithm applies its precision-gradient decrement here
	// (Algorithm 1, step 3), which must run exactly once per node after
	// all children are folded.
	FinalizeTree(epoch, node int, p P) P
	// AppendPartial appends the wire encoding of a tree partial to dst
	// and returns the extended buffer (append-style: zero allocation when
	// dst has capacity).
	AppendPartial(dst []byte, p P) []byte
	// DecodePartial parses a tree partial from exactly the bytes
	// AppendPartial produced.
	DecodePartial(data []byte) (P, error)
	// Convert is the tree→multi-path conversion function.
	Convert(epoch, owner int, p P) S
	// Fuse is the synopsis fusion (SF) function.
	Fuse(acc, in S) S
	// AppendSynopsis appends the wire encoding of a synopsis to dst.
	AppendSynopsis(dst []byte, s S) []byte
	// DecodeSynopsis parses a synopsis from exactly the bytes
	// AppendSynopsis produced.
	DecodeSynopsis(data []byte) (S, error)
	// EvalBase produces the answer at the base station from the tree
	// partials received directly from T children (kept exact — the source
	// of the zero approximation error at low loss) and the synopses
	// received from the delta region.
	EvalBase(treeParts []P, syns []S) R
	// Exact computes the ground-truth answer over all readings, for error
	// measurement by experiments.
	Exact(vs []V) R
}

// SynopsisRecycler is an optional Aggregate extension: aggregates whose
// synopses can be rebuilt in place implement it, and the epoch engine then
// recycles synopses through per-worker pools instead of allocating one per
// Convert and per decoded frame — the difference between thousands of
// allocations per epoch and none.
//
// Semantics: NewSynopsis returns a fresh reusable synopsis; ConvertInto and
// DecodeSynopsisInto must leave dst bit-identical to what Convert and
// DecodeSynopsis would have returned (dst's prior contents are fully
// overwritten, never folded in). The returned synopsis is dst itself.
type SynopsisRecycler[P, S any] interface {
	// NewSynopsis allocates one pool entry.
	NewSynopsis() S
	// ConvertInto is Convert writing into a recycled synopsis.
	ConvertInto(epoch, owner int, p P, dst S) S
	// DecodeSynopsisInto is DecodeSynopsis writing into a recycled synopsis.
	DecodeSynopsisInto(data []byte, dst S) (S, error)
}

// SynopsisMemoizer is an optional extension alongside SynopsisRecycler:
// aggregates whose conversion is a pure function of (seed, owner, partial)
// within a hash-reseeding window implement it, and the epoch engine then
// caches each node's converted base synopsis across epochs, skipping the
// sketch insertion work (for Sum, the Considine binomial simulation)
// entirely while the node's partial holds still.
//
// Semantics: SynopsisEpochKey(e1) == SynopsisEpochKey(e2) must guarantee
// that Convert(e1, o, p) and Convert(e2, o, p) are bit-identical for every
// (o, p); PartialEqual(a, b) must guarantee Convert(e, o, a) and
// Convert(e, o, b) are bit-identical; CopySynopsisInto must leave dst
// bit-identical to src (fully overwritten) and return dst. Local may depend
// on the epoch only through SynopsisEpochKey(epoch) — the engine busts its
// own-reading cache whenever the key rolls over, so key-periodic randomness
// (quantile sample ranks, say) is sound, but any per-epoch dependence inside
// a key window would make the cache serve stale readings.
type SynopsisMemoizer[P, S any] interface {
	// SynopsisEpochKey identifies the epoch's hash-reseeding window; cached
	// conversions are invalidated when it changes.
	SynopsisEpochKey(epoch int) uint64
	// PartialEqual reports whether two partials convert identically.
	PartialEqual(a, b P) bool
	// CopySynopsisInto overwrites dst with src and returns dst.
	CopySynopsisInto(dst, src S) S
}

// SynopsisBatchFuser is an optional Aggregate extension: aggregates whose
// fusion is commutative, associative and duplicate-insensitive at the bit
// level (plain sketch OR — Count, Sum, Average) implement it, and the epoch
// engine then gathers a node's incoming synopses and fuses them in one fused
// multi-sketch pass (sketch.UnionAllInto) instead of one shape-checked Fuse
// dispatch per synopsis.
//
// Semantics: FuseAll must leave acc bit-identical to what the sequential
// fold acc = Fuse(acc, in[0]); acc = Fuse(acc, in[1]); … would, except that
// acc is overwritten with the union of in — acc's prior contents fold in
// only when acc itself appears among in (mirroring sketch.UnionAllInto, so a
// caller that wants the fold passes acc as in[0]). in must not be modified;
// the returned synopsis is acc itself. Implementations must be safe for
// concurrent calls on distinct accumulators (the engine fuses from several
// workers at once), so no aggregate-owned scratch.
type SynopsisBatchFuser[S any] interface {
	// FuseAll overwrites acc with the fusion of every synopsis in `in`.
	FuseAll(acc S, in []S) S
}

// PartialWords returns the message size of a tree partial in 32-bit words,
// measured from its wire encoding — the only sanctioned way to cost a
// partial.
func PartialWords[V, P, S, R any](a Aggregate[V, P, S, R], p P) int {
	return wire.Words(len(a.AppendPartial(nil, p)))
}

// SynopsisWords returns the message size of a synopsis in 32-bit words,
// measured from its wire encoding.
func SynopsisWords[V, P, S, R any](a Aggregate[V, P, S, R], s S) int {
	return wire.Words(len(a.AppendSynopsis(nil, s)))
}
