package aggregate

import (
	"math"

	"tributarydelta/internal/sketch"
	"tributarydelta/internal/wire"
	"tributarydelta/internal/xrand"
)

// MomentsPartial is the exact tree partial of Moments: the count and the
// first three power sums of the readings.
type MomentsPartial struct {
	N          int64
	S1, S2, S3 float64
}

// MomentsSynopsis carries one duplicate-insensitive sketch per power sum.
type MomentsSynopsis struct {
	N, S1, S2, S3 *sketch.Sketch
}

// MomentsValue is the evaluated answer.
type MomentsValue struct {
	Count    float64
	Mean     float64
	Variance float64
	Skewness float64
}

// Moments computes mean, variance and skewness of the readings — §5 notes
// statistical moments among the aggregates the framework supports (via
// power sums, which are just Sums and hence duplicate-insensitive). The
// tree side is exact; the multi-path side carries four sketches that share
// the message budget.
type Moments struct {
	Seed uint64
	// K is the number of FM bitmaps per power-sum sketch (four sketches
	// per synopsis).
	K int
	// Scale converts power sums to sketch units.
	Scale float64
	// MaxValue bounds |reading|; readings are clamped so cubes stay within
	// the sketch's integer domain.
	MaxValue float64
}

// NewMoments returns a Moments aggregate: four 10-bitmap sketches keep the
// synopsis within four words of the Count/Sum configuration.
func NewMoments(seed uint64) *Moments {
	return &Moments{Seed: seed, K: 10, Scale: 1, MaxValue: 1e4}
}

// Name implements Aggregate.
func (a *Moments) Name() string { return "Moments" }

// clamp bounds a reading to the configured domain.
func (a *Moments) clamp(v float64) float64 {
	if v < 0 {
		return 0 // power-sum sketches need non-negative readings
	}
	if v > a.MaxValue {
		return a.MaxValue
	}
	return v
}

// Local implements Aggregate.
func (a *Moments) Local(_, _ int, v float64) MomentsPartial {
	v = a.clamp(v)
	return MomentsPartial{N: 1, S1: v, S2: v * v, S3: v * v * v}
}

// MergeTree implements Aggregate.
func (a *Moments) MergeTree(acc, in MomentsPartial) MomentsPartial {
	return MomentsPartial{
		N:  acc.N + in.N,
		S1: acc.S1 + in.S1,
		S2: acc.S2 + in.S2,
		S3: acc.S3 + in.S3,
	}
}

// FinalizeTree implements Aggregate (no-op).
func (a *Moments) FinalizeTree(_, _ int, p MomentsPartial) MomentsPartial { return p }

// AppendPartial implements Aggregate: the count and three exact power sums.
func (a *Moments) AppendPartial(dst []byte, p MomentsPartial) []byte {
	dst = wire.AppendVarint(dst, p.N)
	dst = wire.AppendFloat64(dst, p.S1)
	dst = wire.AppendFloat64(dst, p.S2)
	return wire.AppendFloat64(dst, p.S3)
}

// DecodePartial implements Aggregate.
func (a *Moments) DecodePartial(data []byte) (MomentsPartial, error) {
	r := wire.NewReader(data)
	p := MomentsPartial{N: r.Varint(), S1: r.Float64(), S2: r.Float64(), S3: r.Float64()}
	return p, r.Finish()
}

// Convert implements Aggregate: each power sum becomes a count credit owned
// by the converting sender.
func (a *Moments) Convert(epoch, owner int, p MomentsPartial) MomentsSynopsis {
	seed := xrand.Hash(a.Seed, uint64(epoch))
	syn := MomentsSynopsis{
		N:  sketch.New(a.K),
		S1: sketch.New(a.K),
		S2: sketch.New(a.K),
		S3: sketch.New(a.K),
	}
	syn.N.AddCount(xrand.Combine(seed, 0), uint64(owner), p.N)
	syn.S1.AddCount(xrand.Combine(seed, 1), uint64(owner), int64(math.Round(p.S1*a.Scale)))
	syn.S2.AddCount(xrand.Combine(seed, 2), uint64(owner), int64(math.Round(p.S2*a.Scale)))
	syn.S3.AddCount(xrand.Combine(seed, 3), uint64(owner), int64(math.Round(p.S3*a.Scale)))
	return syn
}

// Fuse implements Aggregate.
func (a *Moments) Fuse(acc, in MomentsSynopsis) MomentsSynopsis {
	acc.N.Union(in.N)
	acc.S1.Union(in.S1)
	acc.S2.Union(in.S2)
	acc.S3.Union(in.S3)
	return acc
}

// AppendSynopsis implements Aggregate: the four power-sum sketches
// back-to-back, 4K words.
func (a *Moments) AppendSynopsis(dst []byte, s MomentsSynopsis) []byte {
	dst = s.N.AppendWire(dst)
	dst = s.S1.AppendWire(dst)
	dst = s.S2.AppendWire(dst)
	return s.S3.AppendWire(dst)
}

// DecodeSynopsis implements Aggregate.
func (a *Moments) DecodeSynopsis(data []byte) (MomentsSynopsis, error) {
	r := wire.NewReader(data)
	s := MomentsSynopsis{
		N:  sketch.ReadWire(r, a.K),
		S1: sketch.ReadWire(r, a.K),
		S2: sketch.ReadWire(r, a.K),
		S3: sketch.ReadWire(r, a.K),
	}
	return s, r.Finish()
}

// EvalBase implements Aggregate.
func (a *Moments) EvalBase(treeParts []MomentsPartial, syns []MomentsSynopsis) MomentsValue {
	var n, s1, s2, s3 float64
	for _, p := range treeParts {
		n += float64(p.N)
		s1 += p.S1
		s2 += p.S2
		s3 += p.S3
	}
	if len(syns) > 0 {
		u := MomentsSynopsis{
			N:  syns[0].N.Clone(),
			S1: syns[0].S1.Clone(),
			S2: syns[0].S2.Clone(),
			S3: syns[0].S3.Clone(),
		}
		for _, s := range syns[1:] {
			u.N.Union(s.N)
			u.S1.Union(s.S1)
			u.S2.Union(s.S2)
			u.S3.Union(s.S3)
		}
		n += u.N.Estimate()
		s1 += u.S1.Estimate() / a.Scale
		s2 += u.S2.Estimate() / a.Scale
		s3 += u.S3.Estimate() / a.Scale
	}
	return momentsFromSums(n, s1, s2, s3)
}

// Exact implements Aggregate.
func (a *Moments) Exact(vs []float64) MomentsValue {
	var n, s1, s2, s3 float64
	for _, v := range vs {
		v = a.clamp(v)
		n++
		s1 += v
		s2 += v * v
		s3 += v * v * v
	}
	return momentsFromSums(n, s1, s2, s3)
}

// momentsFromSums derives central moments from power sums.
func momentsFromSums(n, s1, s2, s3 float64) MomentsValue {
	out := MomentsValue{Count: n}
	if n <= 0 {
		return out
	}
	mean := s1 / n
	variance := s2/n - mean*mean
	if variance < 0 {
		variance = 0 // sketch noise can push it slightly negative
	}
	out.Mean = mean
	out.Variance = variance
	if variance > 0 {
		m3 := s3/n - 3*mean*s2/n + 2*mean*mean*mean
		out.Skewness = m3 / math.Pow(variance, 1.5)
	}
	return out
}
