package aggregate

import (
	"math"
	"testing"

	"tributarydelta/internal/sample"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/wire"
)

// roundTrip encodes a partial and a synopsis through an aggregate's codecs
// and fails on any decode error. The comparison closures let each aggregate
// define value equality.
func roundTrip[V, P, S, R any](t *testing.T, a Aggregate[V, P, S, R], p P, s S,
	eqP func(a, b P) bool, eqS func(a, b S) bool) {
	t.Helper()
	gotP, err := a.DecodePartial(a.AppendPartial(nil, p))
	if err != nil {
		t.Fatalf("%s: DecodePartial: %v", a.Name(), err)
	}
	if !eqP(p, gotP) {
		t.Fatalf("%s: partial changed across the wire: %v != %v", a.Name(), gotP, p)
	}
	gotS, err := a.DecodeSynopsis(a.AppendSynopsis(nil, s))
	if err != nil {
		t.Fatalf("%s: DecodeSynopsis: %v", a.Name(), err)
	}
	if !eqS(s, gotS) {
		t.Fatalf("%s: synopsis changed across the wire", a.Name())
	}
}

func sketchEq(a, b *sketch.Sketch) bool {
	return string(a.AppendWire(nil)) == string(b.AppendWire(nil))
}

func TestCodecRoundTrips(t *testing.T) {
	count := NewCount(1)
	for _, c := range []int64{0, 1, 57, 599, 1 << 40, -3} {
		roundTrip(t, count, c, count.Convert(0, 9, 600),
			func(a, b int64) bool { return a == b }, sketchEq)
	}

	sum := NewSum(2)
	for _, v := range []float64{0, 1, 25.5, 1234, 1e-9, -7.25, math.Inf(1)} {
		roundTrip(t, sum, v, sum.Convert(0, 3, 1000),
			func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) },
			sketchEq)
	}

	feq := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
	roundTrip(t, Min{}, 3.25, -17.5, feq, feq)
	roundTrip(t, Max{}, -3.25, 17.5, feq, feq)

	avg := NewAverage(3)
	roundTrip(t, avg, AvgPartial{Sum: 123.456, Count: 78}, avg.Convert(1, 2, AvgPartial{Sum: 900, Count: 30}),
		func(a, b AvgPartial) bool { return a == b },
		func(a, b AvgSynopsis) bool { return sketchEq(a.Sum, b.Sum) && sketchEq(a.Count, b.Count) })

	mom := NewMoments(4)
	roundTrip(t, mom, MomentsPartial{N: 9, S1: 90.5, S2: 1000.25, S3: 12000},
		mom.Convert(0, 5, MomentsPartial{N: 3, S1: 30, S2: 300, S3: 3000}),
		func(a, b MomentsPartial) bool { return a == b },
		func(a, b MomentsSynopsis) bool {
			return sketchEq(a.N, b.N) && sketchEq(a.S1, b.S1) &&
				sketchEq(a.S2, b.S2) && sketchEq(a.S3, b.S3)
		})

	us := NewUniformSample(5, 8)
	p := us.Local(0, 1, 10)
	for node := 2; node <= 40; node++ {
		p = us.MergeTree(p, us.Local(0, node, float64(node)))
	}
	seq := func(a, b *sample.Sample) bool {
		return string(a.AppendWire(nil)) == string(b.AppendWire(nil))
	}
	roundTrip(t, us, p, us.Convert(0, 1, p), seq, seq)
}

func TestCodecsRejectGarbage(t *testing.T) {
	count := NewCount(6)
	if _, err := count.DecodeSynopsis([]byte{1, 2, 3}); err == nil {
		t.Fatal("short sketch accepted")
	}
	if _, err := count.DecodePartial(nil); err == nil {
		t.Fatal("empty partial accepted")
	}
	avg := NewAverage(7)
	if _, err := avg.DecodeSynopsis(make([]byte, 7)); err == nil {
		t.Fatal("truncated average synopsis accepted")
	}
	us := NewUniformSample(8, 4)
	big := NewUniformSample(8, 64)
	over := big.Local(0, 1, 1)
	for n := 2; n <= 20; n++ {
		over = big.MergeTree(over, big.Local(0, n, float64(n)))
	}
	if _, err := us.DecodePartial(big.AppendPartial(nil, over)); err == nil {
		t.Fatal("over-capacity sample accepted")
	}
}

// TestPaperMessageCosts pins the encoded-length-derived word counts to the
// paper's §5/§7.1 message costs for the running-example aggregates: a
// Count/Sum tree partial is one 32-bit word (plus the one-word contributing
// count the envelope carries), and the multi-path synopsis is the K-bitmap
// FM sketch at one word per bitmap.
func TestPaperMessageCosts(t *testing.T) {
	count := NewCount(9)
	for _, c := range []int64{1, 57, 600, 100_000} {
		if w := PartialWords[struct{}, int64, *sketch.Sketch, float64](count, c); w != 1 {
			t.Fatalf("Count partial %d costs %d words, want 1", c, w)
		}
		// The piggybacked contributing count (the envelope's Contrib field)
		// costs at most one more word.
		if n := len(wire.AppendVarint(nil, c)); wire.Words(n) != 1 {
			t.Fatalf("contributing count %d costs %d bytes, want <= 1 word", c, n)
		}
	}
	syn := count.Convert(0, 1, 600)
	if w := SynopsisWords[struct{}, int64, *sketch.Sketch, float64](count, syn); w != count.K {
		t.Fatalf("Count synopsis costs %d words, want k=%d", w, count.K)
	}

	sum := NewSum(10)
	// Sensor-style readings keep the exact float sum in one word; wide
	// mantissas (large odd sums) degrade gracefully, never past 3 words.
	for _, v := range []float64{1, 42, 512, 4096} {
		if w := PartialWords[float64, float64, *sketch.Sketch, float64](sum, v); w != 1 {
			t.Fatalf("Sum partial %v costs %d words, want 1", v, w)
		}
	}
	if w := PartialWords[float64, float64, *sketch.Sketch, float64](sum, 87_123.625); w > 3 {
		t.Fatalf("worst-case Sum partial costs %d words, want <= 3", w)
	}
	ssyn := sum.Convert(0, 1, 1234)
	if w := SynopsisWords[float64, float64, *sketch.Sketch, float64](sum, ssyn); w != sum.K {
		t.Fatalf("Sum synopsis costs %d words, want k=%d", w, sum.K)
	}
}

func FuzzCountPartialCodec(f *testing.F) {
	f.Add(int64(57))
	f.Add(int64(-1))
	count := NewCount(11)
	f.Fuzz(func(t *testing.T, p int64) {
		got, err := count.DecodePartial(count.AppendPartial(nil, p))
		if err != nil || got != p {
			t.Fatalf("%d -> %d (%v)", p, got, err)
		}
	})
}

func FuzzSumPartialCodec(f *testing.F) {
	f.Add(25.0)
	f.Add(math.NaN())
	sum := NewSum(12)
	f.Fuzz(func(t *testing.T, p float64) {
		got, err := sum.DecodePartial(sum.AppendPartial(nil, p))
		if err != nil || math.Float64bits(got) != math.Float64bits(p) {
			t.Fatalf("%x -> %x (%v)", math.Float64bits(p), math.Float64bits(got), err)
		}
	})
}

func FuzzAveragePartialCodec(f *testing.F) {
	f.Add(10.5, int64(3))
	avg := NewAverage(13)
	f.Fuzz(func(t *testing.T, s float64, c int64) {
		p := AvgPartial{Sum: s, Count: c}
		got, err := avg.DecodePartial(avg.AppendPartial(nil, p))
		if err != nil || math.Float64bits(got.Sum) != math.Float64bits(p.Sum) || got.Count != p.Count {
			t.Fatalf("%+v -> %+v (%v)", p, got, err)
		}
	})
}

func FuzzMomentsPartialCodec(f *testing.F) {
	f.Add(int64(3), 30.5, 300.25, 3000.0)
	mom := NewMoments(15)
	f.Fuzz(func(t *testing.T, n int64, s1, s2, s3 float64) {
		p := MomentsPartial{N: n, S1: s1, S2: s2, S3: s3}
		got, err := mom.DecodePartial(mom.AppendPartial(nil, p))
		if err != nil || got.N != p.N ||
			math.Float64bits(got.S1) != math.Float64bits(p.S1) ||
			math.Float64bits(got.S2) != math.Float64bits(p.S2) ||
			math.Float64bits(got.S3) != math.Float64bits(p.S3) {
			t.Fatalf("%+v -> %+v (%v)", p, got, err)
		}
	})
}

func FuzzSamplePartialDecode(f *testing.F) {
	us := NewUniformSample(16, 6)
	p := us.Local(0, 1, 2.5)
	p = us.MergeTree(p, us.Local(0, 2, 7.5))
	f.Add(us.AppendPartial(nil, p))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := us.DecodePartial(data) // must never panic
		if err != nil {
			return
		}
		if s.Len() > 6 {
			t.Fatal("decoded sample exceeds capacity")
		}
	})
}

func FuzzSketchSynopsisDecode(f *testing.F) {
	count := NewCount(14)
	f.Add(count.AppendSynopsis(nil, count.Convert(0, 1, 10)))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := count.DecodeSynopsis(data) // must never panic
		if err != nil {
			return
		}
		if string(count.AppendSynopsis(nil, s)) != string(data) {
			t.Fatal("sketch synopsis codec not bijective")
		}
	})
}
