package freq

import (
	"math"
	"testing"

	"tributarydelta/internal/topo"
	"tributarydelta/internal/xrand"
)

func TestGradientMonotonicityAndBudget(t *testing.T) {
	grads := []Gradient{
		MinTotalLoad{Epsilon: 0.01, D: 2},
		MinTotalLoad{Epsilon: 0.05, D: 4},
		MinMaxLoad{Epsilon: 0.01, H: 8},
		Hybrid{Epsilon: 0.01, D: 2, H: 8},
		AvgHybrid{Epsilon: 0.01, D: 2, H: 8},
	}
	for _, g := range grads {
		if g.Eps(0) != 0 {
			t.Errorf("%s: Eps(0) = %v, want 0", g.Name(), g.Eps(0))
		}
		prev := 0.0
		for i := 1; i <= 20; i++ {
			e := g.Eps(i)
			if e < prev-1e-15 {
				t.Errorf("%s: gradient not monotone at %d (%v < %v)", g.Name(), i, e, prev)
			}
			if e > 0.05+1e-12 {
				t.Errorf("%s: Eps(%d) = %v exceeds budget", g.Name(), i, e)
			}
			prev = e
		}
	}
}

func TestMinTotalLoadClosedForm(t *testing.T) {
	// ε(i) = ε(1−t)(1+t+…+t^{i−1}) with t=1/√d must equal ε(1−t^i).
	g := MinTotalLoad{Epsilon: 0.01, D: 3}
	tt := 1 / math.Sqrt(3)
	for i := 1; i <= 10; i++ {
		sum := 0.0
		for j := 0; j < i; j++ {
			sum += math.Pow(tt, float64(j))
		}
		want := 0.01 * (1 - tt) * sum
		if math.Abs(g.Eps(i)-want) > 1e-15 {
			t.Fatalf("Eps(%d) = %v, want %v", i, g.Eps(i), want)
		}
	}
}

func TestLocalSummaryExact(t *testing.T) {
	s := NewLocalSummary([]Item{1, 2, 2, 3, 3, 3})
	if s.N != 6 || s.Eps != 0 {
		t.Fatalf("N=%d Eps=%v", s.N, s.Eps)
	}
	if s.Counts[1] != 1 || s.Counts[2] != 2 || s.Counts[3] != 3 {
		t.Fatalf("counts wrong: %v", s.Counts)
	}
}

func TestSummaryMergeFinalize(t *testing.T) {
	a := NewLocalSummary([]Item{1, 1, 1, 2})
	b := NewLocalSummary([]Item{1, 3, 3})
	a.Merge(b)
	if a.N != 7 {
		t.Fatalf("merged N = %d", a.N)
	}
	if a.Counts[1] != 4 {
		t.Fatalf("c(1) = %v", a.Counts[1])
	}
	a.Finalize(0.2) // dec = 0.2*7 - 0 = 1.4
	if _, ok := a.Counts[2]; ok {
		t.Fatal("item 2 (count 1) should be dropped by decrement 1.4")
	}
	if math.Abs(a.Counts[1]-(4-1.4)) > 1e-12 {
		t.Fatalf("c̃(1) = %v, want 2.6", a.Counts[1])
	}
	if a.Eps != 0.2 {
		t.Fatal("Eps not updated")
	}
}

func TestFinalizeCreditsPriorDecrements(t *testing.T) {
	// A summary finalized at ε1 and re-finalized at ε2 must only subtract
	// the difference (Algorithm 1's Σ εj·nj credit).
	s := NewLocalSummary([]Item{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}) // c(1)=10, N=10
	s.Finalize(0.1)                                            // dec 1 -> c̃=9
	if s.Counts[1] != 9 {
		t.Fatalf("after first finalize c̃ = %v", s.Counts[1])
	}
	parent := NewLocalSummary(nil)
	parent.Merge(s)
	parent.Finalize(0.2) // dec = 0.2*10 - 0.1*10 = 1 -> c̃=8
	if math.Abs(parent.Counts[1]-8) > 1e-12 {
		t.Fatalf("after second finalize c̃ = %v, want 8", parent.Counts[1])
	}
}

// buildTestTree builds a random restricted tree over a field and item
// streams, returning everything needed for tree runs.
func buildTestTree(seed uint64, n int) (*topo.Tree, map[int][]Item, [][]Item) {
	g := topo.NewRandomField(seed, n, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
	r := topo.BuildRings(g)
	tr := topo.BuildRestrictedTree(g, r, seed)
	topo.OpportunisticImprove(g, r, tr, seed, 6)
	src := xrand.NewSource(seed, 0x57)
	z := xrand.NewZipf(src, 200, 1.2)
	perNode := make(map[int][]Item)
	var all [][]Item
	for v := 1; v < g.N(); v++ {
		if !tr.InTree(v) {
			continue
		}
		m := 30 + src.Intn(40)
		items := make([]Item, m)
		for i := range items {
			items[i] = Item(z.Draw())
		}
		perNode[v] = items
		all = append(all, items)
	}
	return tr, perNode, all
}

// TestEpsDeficiencyInvariant is the central Algorithm 1 property: for every
// gradient, every item's root estimate satisfies
// max{0, c(u)−ε·N} ≤ c̃(u) ≤ c(u).
func TestEpsDeficiencyInvariant(t *testing.T) {
	tr, perNode, all := buildTestTree(11, 200)
	truth := make(map[Item]float64)
	var n float64
	for _, items := range all {
		for _, u := range items {
			truth[u]++
			n++
		}
	}
	heights := tr.Heights()
	h := heights[topo.Base]
	d := topo.TreeDominationFactor(tr, 0.05)
	if d < 1.1 {
		d = 1.1
	}
	const eps = 0.01
	for _, g := range []Gradient{
		MinTotalLoad{Epsilon: eps, D: d},
		MinMaxLoad{Epsilon: eps, H: h},
		Hybrid{Epsilon: eps, D: d, H: h},
	} {
		res := RunTree(tr, func(v int) []Item { return perNode[v] }, g)
		root := res.Root
		if root.N != int64(n) {
			t.Fatalf("%s: root N = %d, want %v", g.Name(), root.N, n)
		}
		for u, est := range root.Counts {
			c := truth[u]
			if est > c+1e-9 {
				t.Fatalf("%s: c̃(%d)=%v exceeds c=%v (overestimate!)", g.Name(), u, est, c)
			}
		}
		for u, c := range truth {
			est := root.Counts[u]
			if lower := c - eps*n; est < lower-1e-9 {
				t.Fatalf("%s: c̃(%d)=%v below c−εN=%v", g.Name(), u, est, lower)
			}
		}
	}
}

// TestMinTotalLoadCommBound checks Lemma 3 empirically: total communication
// stays below (1 + 2/(√d−1))·m/ε counters. Loads are compared in counters
// directly (LoadCounters), independent of the wire codec's per-counter byte
// cost.
func TestMinTotalLoadCommBound(t *testing.T) {
	tr, perNode, _ := buildTestTree(13, 300)
	d := topo.TreeDominationFactor(tr, 0.05)
	if d <= 1.05 {
		t.Skip("tree not dominating enough for the bound to be meaningful")
	}
	const eps = 0.02
	g := MinTotalLoad{Epsilon: eps, D: d}
	res := RunTree(tr, func(v int) []Item { return perNode[v] }, g)
	total := 0
	for _, c := range res.LoadCounters {
		total += c
	}
	m := tr.Size() - 1
	bound := g.TotalCommBound(m)
	if float64(total) > bound {
		t.Fatalf("total load %d counters exceeds Lemma 3 bound %v (m=%d d=%v)", total, bound, m, d)
	}
}

// TestPerNodeLoadBound checks the per-link bound: a node at height i sends
// at most 1/(ε(i)−ε(i−1)) counters (§6.1.1).
func TestPerNodeLoadBound(t *testing.T) {
	tr, perNode, _ := buildTestTree(17, 200)
	heights := tr.Heights()
	h := heights[topo.Base]
	const eps = 0.02
	g := MinMaxLoad{Epsilon: eps, H: h}
	res := RunTree(tr, func(v int) []Item { return perNode[v] }, g)
	for v, counters := range res.LoadCounters {
		if counters == 0 || v == topo.Base {
			continue
		}
		i := heights[v]
		maxCounters := 1/(g.Eps(i)-g.Eps(i-1)) + 1
		if float64(counters) > maxCounters {
			t.Fatalf("node %d (height %d) sent %v counters, bound %v", v, i, counters, maxCounters)
		}
	}
}

func TestFrequentReporting(t *testing.T) {
	// 1000 items: item 7 has 20%, item 9 has 5%, rest spread thin.
	var items []Item
	for i := 0; i < 200; i++ {
		items = append(items, 7)
	}
	for i := 0; i < 50; i++ {
		items = append(items, 9)
	}
	for i := 0; i < 750; i++ {
		items = append(items, Item(100+i))
	}
	s := NewLocalSummary(items)
	s.Finalize(0.01)
	freq := s.Frequent(0.10)
	if len(freq) != 1 || freq[0] != 7 {
		t.Fatalf("Frequent(0.10) = %v, want [7]", freq)
	}
	freq = s.Frequent(0.03)
	if len(freq) != 2 {
		t.Fatalf("Frequent(0.03) = %v, want [7 9]", freq)
	}
}

func TestGenerateSG(t *testing.T) {
	p := DefaultParams(1, 0.01, 20)
	items := []Item{1, 1, 1, 1, 2, 3}
	syn := Generate(items, 0, 5, p)
	if len(syn.ByClass) != 1 {
		t.Fatalf("expected one class synopsis, got %d", len(syn.ByClass))
	}
	cs, ok := syn.ByClass[2] // floor(log2(6)) = 2
	if !ok {
		t.Fatalf("expected class 2, have %v", syn.ByClass)
	}
	if _, kept := cs.ItemSketches[1]; !kept {
		t.Fatal("dominant item pruned at SG")
	}
	// Empty stream -> empty synopsis.
	if e := Generate(nil, 0, 5, p); len(e.ByClass) != 0 {
		t.Fatal("empty stream must produce empty synopsis")
	}
}

func TestSGPrunesRareItems(t *testing.T) {
	// With a large epsilon, singleton items among a big stream are pruned.
	p := DefaultParams(2, 0.5, 10)
	var items []Item
	for i := 0; i < 1000; i++ {
		items = append(items, 42)
	}
	items = append(items, 7) // singleton
	syn := Generate(items, 0, 1, p)
	for _, cs := range syn.ByClass {
		if _, kept := cs.ItemSketches[7]; kept {
			t.Fatal("singleton should be pruned: threshold i·n·ε/logN ≈ 450")
		}
		if _, kept := cs.ItemSketches[42]; !kept {
			t.Fatal("dominant item must be kept")
		}
	}
}

func TestFuseDuplicateInsensitive(t *testing.T) {
	// Fusing the same synopsis twice must not change estimates — the
	// multi-path requirement.
	p := DefaultParams(3, 0.01, 20)
	items := []Item{1, 1, 1, 2, 2, 3}
	a := Generate(items, 0, 1, p)
	b := Generate([]Item{4, 4, 5}, 0, 2, p)

	once := NewSynopsis()
	once.Fuse(a, p)
	once.Fuse(b, p)
	estOnce, nOnce := once.Evaluate(p)

	twice := NewSynopsis()
	twice.Fuse(a, p)
	twice.Fuse(b, p)
	twice.Fuse(a, p) // duplicate delivery over a second path
	estTwice, nTwice := twice.Evaluate(p)

	if nOnce != nTwice {
		t.Fatalf("ñ changed under duplicate fuse: %v vs %v", nOnce, nTwice)
	}
	for u, v := range estOnce {
		if estTwice[u] != v {
			t.Fatalf("estimate of %d changed under duplicate fuse", u)
		}
	}
}

func TestFuseCommutative(t *testing.T) {
	p := DefaultParams(5, 0.01, 20)
	a := Generate([]Item{1, 1, 2}, 0, 1, p)
	b := Generate([]Item{2, 3, 3, 3}, 0, 2, p)
	c := Generate([]Item{1, 4}, 0, 3, p)

	x := NewSynopsis()
	x.Fuse(a, p)
	x.Fuse(b, p)
	x.Fuse(c, p)
	estX, nX := x.Evaluate(p)

	y := NewSynopsis()
	y.Fuse(c, p)
	y.Fuse(b, p)
	y.Fuse(a, p)
	estY, nY := y.Evaluate(p)

	if nX != nY || len(estX) != len(estY) {
		t.Fatalf("fuse order changed result: n %v vs %v", nX, nY)
	}
	for u, v := range estX {
		if estY[u] != v {
			t.Fatalf("fuse order changed estimate of item %d", u)
		}
	}
}

func TestClassPromotion(t *testing.T) {
	p := DefaultParams(7, 0.01, 20)
	// Two class-6 synopses of ~64 items each: fused ñ ≈ 128 > 2^7 promotes.
	mk := func(owner int) *Synopsis {
		items := make([]Item, 64)
		for i := range items {
			items[i] = Item(owner) // one dominant item per owner
		}
		return Generate(items, 0, owner, p)
	}
	s := NewSynopsis()
	s.Fuse(mk(1), p)
	s.Fuse(mk(2), p)
	if _, has6 := s.ByClass[6]; has6 {
		if len(s.ByClass) != 1 {
			t.Fatalf("expected promotion to collapse classes, have %v", len(s.ByClass))
		}
	}
	// Whatever the class, the synopsis count must be 1 and its class ≥ 6.
	if len(s.ByClass) != 1 {
		t.Fatalf("expected a single class synopsis, got %d", len(s.ByClass))
	}
	for cl := range s.ByClass {
		if cl < 6 {
			t.Fatalf("fused class %d below inputs' class 6", cl)
		}
	}
}

func TestMultipathAccuracy(t *testing.T) {
	// Many nodes with a Zipf stream: the SE estimates of the heavy items
	// should land near truth (within the ⊕ operator's error).
	p := DefaultParams(11, 0.001, 22)
	p.ReseedEvery = 1 // every epoch its own hash space (the default is 10)
	src := xrand.NewSource(23)
	z := xrand.NewZipf(src, 100, 1.5)
	// The ⊕ operator at KItem=8 has ~27% standard error per observation, so
	// judge the mean over several epochs (independent hash spaces).
	const epochs = 8
	var relN, relTop float64
	for epoch := 0; epoch < epochs; epoch++ {
		truth := make(map[Item]float64)
		var n float64
		all := NewSynopsis()
		for owner := 1; owner <= 50; owner++ {
			items := make([]Item, 100)
			for i := range items {
				items[i] = Item(z.Draw())
				truth[items[i]]++
				n++
			}
			all.Fuse(Generate(items, epoch, owner, p), p)
		}
		est, nEst := all.Evaluate(p)
		top := Item(0)
		if truth[top] < 0.1*n {
			t.Fatalf("test setup: top item only %v of %v", truth[top], n)
		}
		relN += nEst/n - 1
		relTop += est[top]/truth[top] - 1
	}
	if m := math.Abs(relN / epochs); m > 0.25 {
		t.Fatalf("mean ñ relative error %v, want < 0.25", m)
	}
	if m := math.Abs(relTop / epochs); m > 0.3 {
		t.Fatalf("mean top-item relative error %v, want < 0.3", m)
	}
}

func TestConvertSummaryEquatesTreeResult(t *testing.T) {
	// A converted tree summary must evaluate to approximately the summary's
	// own estimates.
	p := DefaultParams(13, 0.01, 20)
	items := make([]Item, 0, 600)
	for i := 0; i < 500; i++ {
		items = append(items, 9)
	}
	for i := 0; i < 100; i++ {
		items = append(items, Item(100+i%10))
	}
	sum := NewLocalSummary(items)
	sum.Finalize(0.001)
	syn := ConvertSummary(sum, 0, 3, p)
	est, nEst := syn.Evaluate(p)
	if math.Abs(nEst-float64(sum.N))/float64(sum.N) > 0.5 {
		t.Fatalf("converted ñ %v vs summary N %d", nEst, sum.N)
	}
	if math.Abs(est[9]-sum.Counts[9])/sum.Counts[9] > 0.6 {
		t.Fatalf("converted estimate of heavy item %v vs %v", est[9], sum.Counts[9])
	}
	// Empty summary converts to an empty synopsis.
	if e := ConvertSummary(NewLocalSummary(nil), 0, 1, p); len(e.ByClass) != 0 {
		t.Fatal("empty summary must convert to empty synopsis")
	}
}

func TestFalseRates(t *testing.T) {
	fn, fp := FalseRates([]Item{1, 2, 3}, []Item{2, 3, 4, 5})
	if math.Abs(fn-0.5) > 1e-12 { // 4,5 missing out of 4
		t.Fatalf("fn = %v, want 0.5", fn)
	}
	if math.Abs(fp-1.0/3) > 1e-12 { // 1 wrong of 3 reported
		t.Fatalf("fp = %v, want 1/3", fp)
	}
	fn, fp = FalseRates(nil, nil)
	if fn != 0 || fp != 0 {
		t.Fatal("empty inputs must give zero rates")
	}
}

func TestTrueFrequent(t *testing.T) {
	vs := [][]Item{{1, 1, 1, 1, 2}, {1, 1, 3, 3, 3}}
	// N=10; item 1: 6 (60%), item 3: 3 (30%), item 2: 1 (10%).
	got := TrueFrequent(vs, 0.3)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("TrueFrequent = %v, want [1 3]", got)
	}
}

func TestResultFrequent(t *testing.T) {
	r := Result{Estimates: map[Item]float64{1: 50, 2: 8, 3: 30}, NEst: 100}
	got := r.Frequent(0.25, 0.01) // threshold 24
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Frequent = %v, want [1 3]", got)
	}
}

func TestAvgHybridWithinFactorTwo(t *testing.T) {
	// The averaging Hybrid's per-height counter bound must be within 2× of
	// each constituent optimum: 1/(εH(i)−εH(i−1)) ≤ 2/(εX(i)−εX(i−1)).
	const eps = 0.01
	const d, h = 2.5, 10
	tot := MinTotalLoad{Epsilon: eps, D: d}
	max := MinMaxLoad{Epsilon: eps, H: h}
	hyb := AvgHybrid{Epsilon: eps, D: d, H: h}
	for i := 1; i <= h; i++ {
		dh := hyb.Eps(i) - hyb.Eps(i-1)
		dt := tot.Eps(i) - tot.Eps(i-1)
		dm := max.Eps(i) - max.Eps(i-1)
		if 1/dh > 2/dt+1e-9 || 1/dh > 2/dm+1e-9 {
			t.Fatalf("height %d: hybrid load 1/%v not within 2x of both optima", i, dh)
		}
	}
}

func TestHybridDominatesConstituents(t *testing.T) {
	// The max-combination Hybrid prunes at least as deeply as each
	// constituent at every height, so its measured per-node load never
	// exceeds either one's.
	const eps = 0.01
	tr, perNode, _ := buildTestTree(29, 250)
	h := tr.Heights()[topo.Base]
	d := topo.TreeDominationFactor(tr, 0.05)
	if d < 1.2 {
		d = 1.2
	}
	tot := MinTotalLoad{Epsilon: eps, D: d}
	max := MinMaxLoad{Epsilon: eps, H: h}
	hyb := Hybrid{Epsilon: eps, D: d, H: h}
	for i := 0; i <= h+2; i++ {
		if hyb.Eps(i) < tot.Eps(i)-1e-15 || hyb.Eps(i) < max.Eps(i)-1e-15 {
			t.Fatalf("hybrid eps(%d) below a constituent", i)
		}
	}
	items := func(v int) []Item { return perNode[v] }
	lt := RunTree(tr, items, tot).LoadWords
	lm := RunTree(tr, items, max).LoadWords
	lh := RunTree(tr, items, hyb).LoadWords
	// The zero-clipping in Algorithm 1 means dominance is not exact per
	// node (an item dropped early "wastes" decrement), so allow a few
	// words of slack per node and require strict dominance in aggregate.
	var sumT, sumM, sumH int
	for v := range lh {
		bound := lt[v]
		if lm[v] < bound {
			bound = lm[v]
		}
		if float64(lh[v]) > 1.35*float64(bound)+8 {
			t.Fatalf("node %d: hybrid load %d far exceeds best constituent %d", v, lh[v], bound)
		}
		sumT += lt[v]
		sumM += lm[v]
		sumH += lh[v]
	}
	best := sumT
	if sumM < best {
		best = sumM
	}
	if float64(sumH) > 1.01*float64(best) {
		t.Fatalf("hybrid total %d exceeds best constituent total %d", sumH, best)
	}
}
