package freq

import (
	"math"
	"testing"

	"tributarydelta/internal/wire"
	"tributarydelta/internal/xrand"
)

// buildSummary produces a realistic mid-tree summary: merged children and a
// gradient decrement, so Eps and the credit are non-trivial floats.
func buildSummary(seed uint64) *Summary {
	src := xrand.NewSource(seed)
	z := xrand.NewZipf(src, 200, 1.2)
	mk := func() *Summary {
		items := make([]Item, 120)
		for i := range items {
			items[i] = Item(z.Draw())
		}
		s := NewLocalSummary(items)
		s.Finalize(0.004)
		return s
	}
	s := mk()
	s.Merge(mk())
	s.Merge(mk())
	s.Finalize(0.009)
	return s
}

// bitsEq compares floats by bit pattern so NaNs (reachable via fuzzed
// input) compare equal to themselves.
func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func summariesEqual(a, b *Summary) bool {
	if a.N != b.N || !bitsEq(a.Eps, b.Eps) || !bitsEq(a.credit, b.credit) || len(a.Counts) != len(b.Counts) {
		return false
	}
	for u, v := range a.Counts {
		if bv, ok := b.Counts[u]; !ok || !bitsEq(bv, v) {
			return false
		}
	}
	return true
}

func TestSummaryWireRoundTrip(t *testing.T) {
	for _, s := range []*Summary{
		NewLocalSummary(nil),
		NewLocalSummary([]Item{1, 1, 2, 9}),
		buildSummary(5),
	} {
		got, err := DecodeWireSummary(s.AppendWire(nil))
		if err != nil {
			t.Fatal(err)
		}
		if !summariesEqual(s, got) {
			t.Fatalf("summary round trip changed the value: %+v vs %+v", s, got)
		}
	}
}

func TestSummaryWireCanonical(t *testing.T) {
	// Identical summaries built in different insertion orders encode to
	// identical bytes (items are sorted on the wire).
	a := NewLocalSummary([]Item{3, 1, 2})
	b := NewLocalSummary([]Item{2, 3, 1})
	if string(a.AppendWire(nil)) != string(b.AppendWire(nil)) {
		t.Fatal("encoding depends on map iteration order")
	}
}

func TestSummaryWordsDerivedFromEncoding(t *testing.T) {
	s := buildSummary(6)
	if want := wire.Words(len(s.AppendWire(nil))); s.Words() != want {
		t.Fatalf("Words() = %d, want encoded length %d", s.Words(), want)
	}
	if s.Counters() != len(s.Counts) {
		t.Fatal("Counters mismatch")
	}
}

func buildSynopsis(seed uint64, p Params) *Synopsis {
	src := xrand.NewSource(seed)
	z := xrand.NewZipf(src, 150, 1.1)
	all := NewSynopsis()
	for owner := 1; owner <= 12; owner++ {
		items := make([]Item, 90)
		for i := range items {
			items[i] = Item(z.Draw())
		}
		all.Fuse(Generate(items, 0, owner, p), p)
	}
	return all
}

func synopsesEqual(a, b *Synopsis, p Params) bool {
	// The canonical wire form is a faithful fingerprint of the value.
	return string(a.AppendWire(nil, p)) == string(b.AppendWire(nil, p))
}

func TestSynopsisWireRoundTrip(t *testing.T) {
	p := DefaultParams(7, 0.01, math.Log2(12*90)+1)
	for _, s := range []*Synopsis{
		NewSynopsis(),
		Generate([]Item{1, 1, 1, 2}, 3, 4, p),
		buildSynopsis(8, p),
	} {
		enc := s.AppendWire(nil, p)
		got, err := DecodeWireSynopsis(enc, p)
		if err != nil {
			t.Fatal(err)
		}
		if !synopsesEqual(s, got, p) {
			t.Fatal("synopsis round trip changed the value")
		}
		if len(got.ByClass) != len(s.ByClass) {
			t.Fatalf("class count %d != %d", len(got.ByClass), len(s.ByClass))
		}
		// Evaluation must agree exactly.
		wantEst, wantN := s.Evaluate(p)
		gotEst, gotN := got.Evaluate(p)
		if wantN != gotN || len(wantEst) != len(gotEst) {
			t.Fatal("evaluation diverged after round trip")
		}
		for u, v := range wantEst {
			if gotEst[u] != v {
				t.Fatalf("estimate for %d diverged: %v != %v", u, gotEst[u], v)
			}
		}
	}
}

func TestSynopsisWireRejectsTruncation(t *testing.T) {
	p := DefaultParams(9, 0.01, 10)
	enc := buildSynopsis(10, p).AppendWire(nil, p)
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeWireSynopsis(enc[:i], p); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if _, err := DecodeWireSynopsis(append(enc, 0), p); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func FuzzDecodeWireSummary(f *testing.F) {
	f.Add(buildSummary(11).AppendWire(nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeWireSummary(data) // must never panic
		if err != nil {
			return
		}
		again, err := DecodeWireSummary(s.AppendWire(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !summariesEqual(s, again) {
			t.Fatal("cycle changed the summary")
		}
	})
}

func FuzzDecodeWireSynopsis(f *testing.F) {
	p := DefaultParams(12, 0.02, 12)
	f.Add(buildSynopsis(13, p).AppendWire(nil, p))
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeWireSynopsis(data, p) // must never panic
		if err != nil {
			return
		}
		again, err := DecodeWireSynopsis(s.AppendWire(nil, p), p)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !synopsesEqual(s, again, p) {
			t.Fatal("cycle changed the synopsis")
		}
	})
}
