package freq

import (
	"math"
	"testing"

	"tributarydelta/internal/xrand"
)

// TestTheorem1AccuracyRegime empirically checks the Theorem 1 guarantee in
// the accuracy-preserving regime: with an accuracy-preserving ⊕ (large
// enough per-item sketches for relative error εc), the algorithm's final
// estimates satisfy
//
//	(1 − εc)·(c(u) − ε·N) ≤ c̃(u) ≤ (1 + εc)·c(u)
//
// with high probability. The bound is statistical (the theorem holds with
// probability 1−δ), so the test averages over epochs and allows the
// sampling slack of the finite trial count.
func TestTheorem1AccuracyRegime(t *testing.T) {
	const (
		epsilon = 0.01
		epsC    = 0.2 // 0.78/sqrt(KItem): KItem = 16 gives ~0.2
		nodes   = 40
		perNode = 150
		epochs  = 10
	)
	p := Params{
		Seed:    77,
		Epsilon: epsilon,
		Eta:     1.5,
		LogN:    math.Log2(nodes*perNode) + 1,
		KItem:   16,
		KTotal:  40,
	}

	violationsLow, violationsHigh, checks := 0, 0, 0
	for epoch := 0; epoch < epochs; epoch++ {
		src := xrand.NewSource(1000 + uint64(epoch))
		z := xrand.NewZipf(src, 60, 1.3)
		truth := make(map[Item]float64)
		n := 0.0
		all := NewSynopsis()
		for owner := 1; owner <= nodes; owner++ {
			items := make([]Item, perNode)
			for i := range items {
				items[i] = Item(z.Draw())
				truth[items[i]]++
				n++
			}
			all.Fuse(Generate(items, epoch, owner, p), p)
		}
		est, _ := all.Evaluate(p)
		// Check the two-sided bound for every heavy item (where the bound
		// is non-vacuous). Allow 3 standard errors of slack on top of εc.
		slack := 3 * epsC / math.Sqrt(1) // per-item, single observation
		for u, c := range truth {
			if c < 3*epsilon*n {
				continue // the lower bound is (near) vacuous
			}
			checks++
			e := est[u]
			if lower := (1 - epsC - slack) * (c - epsilon*n); e < lower {
				violationsLow++
			}
			if upper := (1 + epsC + slack) * c; e > upper {
				violationsHigh++
			}
		}
	}
	if checks == 0 {
		t.Fatal("no heavy items checked — bad test setup")
	}
	// With 3σ slack, violations should be rare (the theorem's δ).
	if frac := float64(violationsLow+violationsHigh) / float64(checks); frac > 0.02 {
		t.Fatalf("Theorem 1 bound violated for %.1f%% of %d checks (low=%d high=%d)",
			100*frac, checks, violationsLow, violationsHigh)
	}
}

// TestMaxLoadBoundedByClasses checks the other half of Theorem 1: the
// per-link load stays bounded — a synopsis holds at most log N classes and
// the class thresholding keeps each class's item set small, so the message
// never approaches the full item universe.
func TestMaxLoadBoundedByClasses(t *testing.T) {
	const (
		nodes   = 60
		perNode = 200
	)
	p := DefaultParams(88, 0.01, math.Log2(nodes*perNode)+1)
	src := xrand.NewSource(2000)
	z := xrand.NewZipf(src, 5000, 0.8) // a heavy-tailed, wide universe
	all := NewSynopsis()
	maxWords := 0
	distinct := make(map[Item]bool)
	for owner := 1; owner <= nodes; owner++ {
		items := make([]Item, perNode)
		for i := range items {
			items[i] = Item(z.Draw())
			distinct[items[i]] = true
		}
		all.Fuse(Generate(items, 0, owner, p), p)
		if w := all.Words(p); w > maxWords {
			maxWords = w
		}
	}
	if len(all.ByClass) > int(p.LogN)+1 {
		t.Fatalf("%d classes exceed logN+1 = %v", len(all.ByClass), p.LogN+1)
	}
	// Without thresholding the synopsis would carry every distinct item.
	// Pruning only fires on class promotions, so between promotions the
	// synopsis accumulates; require meaningful pruning at the peak (≥ 25%
	// under this weakly skewed stream) and that the peak respects Theorem
	// 1's per-link bound O(log²N/ε · 1/εc²) counters. The per-item wire
	// cost is one id word plus a raw KItem-bitmap sketch (= KItem words).
	unpruned := len(distinct) * (1 + p.KItem)
	if float64(maxWords) > 0.75*float64(unpruned) {
		t.Fatalf("synopsis peaked at %d words — thresholding pruned under 25%% (unpruned baseline %d, %d distinct items)",
			maxWords, unpruned, len(distinct))
	}
	epsC := 0.78 / math.Sqrt(float64(p.KItem))
	theoremBound := p.LogN * p.LogN / p.Epsilon / (epsC * epsC)
	if float64(maxWords) > theoremBound {
		t.Fatalf("peak %d words exceeds the Theorem 1 bound %v", maxWords, theoremBound)
	}
	// After the final promotions the standing synopsis is smaller than the
	// mid-fusion peak.
	if final := all.Words(p); final > maxWords {
		t.Fatalf("final synopsis %d larger than observed peak %d", final, maxWords)
	}
}
