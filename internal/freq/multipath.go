package freq

import (
	"math"
	"sort"

	"tributarydelta/internal/sketch"
	"tributarydelta/internal/wire"
	"tributarydelta/internal/xrand"
)

// Params configures the multi-path frequent items algorithm (§6.2).
type Params struct {
	// Seed namespaces all sketch hashing; combine with the run seed.
	Seed uint64
	// Epsilon is the multi-path error tolerance (εb in §6.3).
	Epsilon float64
	// Eta is the thresholding slack of Algorithm 2 (η > 1): larger η keeps
	// more items, tolerating the ⊕ operator's inaccuracy.
	Eta float64
	// LogN is log₂ of (an upper bound on) the total number of item
	// occurrences N, which nodes are assumed to know (as in §6.2).
	LogN float64
	// KItem is the number of FM bitmaps per item-count sketch; the relative
	// error εc of ⊕ is about 0.78/√KItem (size ∝ 1/εc², §6.2).
	KItem int
	// KTotal is the number of FM bitmaps of the ñ (total count) sketch.
	KTotal int
	// ReseedEvery is the sketch-hash reseeding period in epochs, matching
	// the simple aggregates: within a period every epoch draws the same
	// item/total seeds — a fixed deployment-wide hash, which is what makes
	// converted summaries memoizable across epochs — and between periods
	// the seeds are re-drawn so multi-epoch averages de-correlate. 0 never
	// reseeds.
	ReseedEvery int
}

// DefaultParams returns the configuration used by the experiments: η = 1.5,
// 8-bitmap item sketches (εc ≈ 0.28, the low-overhead best-effort operator
// of [7], as the paper's evaluation uses), a 16-bitmap total sketch and a
// 10-epoch reseeding period.
func DefaultParams(seed uint64, epsilon float64, logN float64) Params {
	return Params{Seed: seed, Epsilon: epsilon, Eta: 1.5, LogN: logN, KItem: 8, KTotal: 16,
		ReseedEvery: 10}
}

// epochKey identifies the hash-reseeding window epoch falls in; all sketch
// seeds hash the key, not the raw epoch.
func (p Params) epochKey(epoch int) uint64 {
	if p.ReseedEvery <= 0 {
		return 0
	}
	return uint64(epoch / p.ReseedEvery)
}

func (p Params) itemSeed(epoch int, u Item) uint64 {
	return xrand.Hash(p.Seed, 0x17E6, p.epochKey(epoch), uint64(u))
}

func (p Params) totalSeed(epoch int) uint64 {
	return xrand.Hash(p.Seed, 0x707A1, p.epochKey(epoch))
}

// ClassSynopsis is a class-i synopsis: i is (the floor of the logarithm of)
// the approximate number of item occurrences it represents. Error tolerance
// scales with the class, and only same-class synopses combine, so a synopsis
// never grows far beyond 1/(class-threshold) items (§6.2).
type ClassSynopsis struct {
	Class int
	// NTotal is the duplicate-insensitive count ñ of occurrences covered.
	NTotal *sketch.Sketch
	// ItemSketches maps each kept item to its ⊕-count sketch.
	ItemSketches map[Item]*sketch.Sketch
}

func newClassSynopsis(class int, p Params) *ClassSynopsis {
	return &ClassSynopsis{
		Class:        class,
		NTotal:       sketch.New(p.KTotal),
		ItemSketches: make(map[Item]*sketch.Sketch),
	}
}

// Synopsis is a multi-path partial result: at most one class synopsis per
// class (§6.2's synopsis fusion invariant).
//
// A synopsis recycles its own storage: Reset strips the class synopses and
// item sketches onto internal freelists, and subsequent generation, fusion
// and decoding draw from them — a pooled synopsis reaches a steady state
// where a whole convert-or-decode-then-fuse cycle allocates nothing.
type Synopsis struct {
	ByClass map[int]*ClassSynopsis

	// spareClasses/spareItems are the freelists Reset fills. Item sketches
	// are always KItem bitmaps; class synopses keep their KTotal ñ sketch.
	spareClasses []*ClassSynopsis
	spareItems   []*sketch.Sketch
}

// NewSynopsis returns an empty synopsis.
func NewSynopsis() *Synopsis { return &Synopsis{ByClass: make(map[int]*ClassSynopsis)} }

// Reset empties the synopsis for reuse, keeping class synopses and item
// sketches on freelists.
func (s *Synopsis) Reset() {
	//lint:ignore determinism teardown walk; only freelist order varies and recycled storage is fully overwritten
	for c, cs := range s.ByClass {
		//lint:ignore determinism teardown walk; only freelist order varies and recycled storage is fully overwritten
		for u, sk := range cs.ItemSketches {
			s.spareItems = append(s.spareItems, sk)
			delete(cs.ItemSketches, u)
		}
		s.spareClasses = append(s.spareClasses, cs)
		delete(s.ByClass, c)
	}
}

// getClass hands out an empty class synopsis for the given class, recycled
// when possible.
func (s *Synopsis) getClass(class int, p Params) *ClassSynopsis {
	if n := len(s.spareClasses); n > 0 {
		cs := s.spareClasses[n-1]
		s.spareClasses = s.spareClasses[:n-1]
		cs.Class = class
		cs.NTotal.Reset()
		return cs
	}
	return newClassSynopsis(class, p)
}

// getItemSketch hands out an empty KItem-bitmap sketch, recycled when
// possible.
func (s *Synopsis) getItemSketch(p Params) *sketch.Sketch {
	if n := len(s.spareItems); n > 0 {
		sk := s.spareItems[n-1]
		s.spareItems = s.spareItems[:n-1]
		sk.Reset()
		return sk
	}
	return sketch.New(p.KItem)
}

// reclaimClass returns an s-owned class synopsis (and its item sketches) to
// the freelists. The caller must have copied out anything it still needs.
func (s *Synopsis) reclaimClass(cs *ClassSynopsis) {
	//lint:ignore determinism teardown walk; only freelist order varies and recycled storage is fully overwritten
	for u, sk := range cs.ItemSketches {
		s.spareItems = append(s.spareItems, sk)
		delete(cs.ItemSketches, u)
	}
	s.spareClasses = append(s.spareClasses, cs)
}

// cloneClassInto copies src into a class synopsis owned by s (drawn from its
// freelists).
func (s *Synopsis) cloneClassInto(src *ClassSynopsis, p Params) *ClassSynopsis {
	cs := s.getClass(src.Class, p)
	cs.NTotal.CopyFrom(src.NTotal)
	//lint:ignore determinism per-key deep copy; only freelist draw order varies and recycled storage is fully overwritten
	for u, sk := range src.ItemSketches {
		cp := s.getItemSketch(p)
		cp.CopyFrom(sk)
		cs.ItemSketches[u] = cp
	}
	return cs
}

// Generate is the synopsis generation (SG) function of §6.2: count local
// item frequencies, discard items with frequency at most i·n′·ε/log N where
// n′ is the node's total occurrences and i = ⌊log n′⌋, and build a class-i
// synopsis of ⊕-count sketches. The epoch namespaces hashes so streams of
// different rounds never collide; owner identifies the generating node for
// duplicate-insensitive crediting.
func Generate(items []Item, epoch, owner int, p Params) *Synopsis {
	out := NewSynopsis()
	n := int64(len(items))
	if n == 0 {
		return out
	}
	counts := make(map[Item]int64)
	for _, u := range items {
		counts[u]++
	}
	class := int(math.Floor(math.Log2(float64(n))))
	thresh := float64(class) * float64(n) * p.Epsilon / p.LogN
	cs := newClassSynopsis(class, p)
	cs.NTotal.AddCount(p.totalSeed(epoch), uint64(owner), n)
	//lint:ignore determinism per-key sketch generation; each item's sketch is a pure function of (seed, item, owner)
	for u, c := range counts {
		if float64(c) <= thresh {
			continue // pruned at generation (§6.2 SG)
		}
		sk := sketch.New(p.KItem)
		sk.AddCount(p.itemSeed(epoch, u), uint64(owner), c)
		cs.ItemSketches[u] = sk
	}
	out.ByClass[class] = cs
	return out
}

// fuseSame implements Algorithm 2 on an accumulator class owned by s and a
// read-only input of the same class: ⊕ the totals and the per-item counts;
// when the fused ñ exceeds 2^{i+1}, promote the class and drop items with
// ε·ñ/log N ≥ η·c̃(u). Copies and drops flow through s's freelists.
func (s *Synopsis) fuseSame(dst, src *ClassSynopsis, p Params) {
	dst.NTotal.Union(src.NTotal)
	//lint:ignore determinism per-key ⊕ fold; FM union is commutative and each key is visited once
	for u, sk := range src.ItemSketches {
		if own, ok := dst.ItemSketches[u]; ok {
			own.Union(sk)
		} else {
			cp := s.getItemSketch(p)
			cp.CopyFrom(sk)
			dst.ItemSketches[u] = cp
		}
	}
	nEst := dst.NTotal.Estimate()
	if nEst > math.Pow(2, float64(dst.Class+1)) {
		dst.Class++
		cut := p.Epsilon * nEst / (p.Eta * p.LogN)
		//lint:ignore determinism per-key threshold prune; only freelist order varies and recycled storage is fully overwritten
		for u, sk := range dst.ItemSketches {
			if sk.Estimate() <= cut {
				s.spareItems = append(s.spareItems, sk)
				delete(dst.ItemSketches, u)
			}
		}
	}
}

// Fuse folds another synopsis into s (the SF function): class synopses are
// combined pairwise smallest class first, cascading promotions until at most
// one synopsis per class remains. The input is never modified; the order of
// class processing is fixed (ascending) so results are deterministic.
func (s *Synopsis) Fuse(in *Synopsis, p Params) {
	classes := make([]int, 0, len(in.ByClass))
	//lint:ignore determinism key collection; sorted immediately below before any order-sensitive processing
	for c := range in.ByClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		var pending *ClassSynopsis
		existing, ok := s.ByClass[c]
		if !ok {
			s.ByClass[c] = s.cloneClassInto(in.ByClass[c], p)
			continue
		}
		delete(s.ByClass, c)
		s.fuseSame(existing, in.ByClass[c], p)
		pending = existing
		// Cascade: a promotion may collide with a synopsis already at the
		// next class.
		for {
			other, collides := s.ByClass[pending.Class]
			if !collides {
				s.ByClass[pending.Class] = pending
				break
			}
			delete(s.ByClass, pending.Class)
			before := pending.Class
			s.fuseSame(pending, other, p)
			s.reclaimClass(other) // fuseSame copied, never aliased, other's items
			if pending.Class == before {
				s.ByClass[pending.Class] = pending
				break
			}
		}
	}
}

// Words returns the message size of the whole synopsis in 32-bit words,
// measured from the actual wire encoding (see AppendWire). Even an empty
// synopsis costs its one-byte class count. The buffer is pre-sized (a
// capacity hint only, not accounting) to avoid growth reallocations.
func (s *Synopsis) Words(p Params) int {
	capHint := 8
	//lint:ignore determinism commutative integer sum into a capacity hint; never accounted or transmitted
	for _, cs := range s.ByClass {
		capHint += 16 + sketch.WireBytes(p.KTotal) +
			len(cs.ItemSketches)*(10+sketch.WireBytes(p.KItem))
	}
	buf := make([]byte, 0, capHint)
	return wire.Words(len(s.AppendWire(buf, p)))
}

// Items returns all items present in any class, sorted.
func (s *Synopsis) Items() []Item {
	set := make(map[Item]bool)
	//lint:ignore determinism set union build; membership is order-insensitive
	for _, cs := range s.ByClass {
		//lint:ignore determinism set union build; membership is order-insensitive
		for u := range cs.ItemSketches {
			set[u] = true
		}
	}
	out := make([]Item, 0, len(set))
	//lint:ignore determinism key collection; sorted immediately below before any order-sensitive processing
	for u := range set {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Evaluate is the synopsis evaluation (SE) function: per item, the frequency
// estimates across all classes are added with ⊕ (sketch union); ñ likewise.
// It returns the per-item estimates and the estimated total N̂.
func (s *Synopsis) Evaluate(p Params) (map[Item]float64, float64) {
	// Lazily-materialized union views: gathering sources per item and fusing
	// them in one word-major pass replaces the clone-then-Union-per-class
	// merge loop (and its per-item defensive clones).
	var total sketch.View
	perItem := make(map[Item]*sketch.View)
	//lint:ignore determinism per-key view gather; the folded FM union is commutative so estimates are source-order-independent
	for _, cs := range s.ByClass {
		total.Add(cs.NTotal)
		//lint:ignore determinism per-key view gather; the folded FM union is commutative so estimates are source-order-independent
		for u, sk := range cs.ItemSketches {
			v, ok := perItem[u]
			if !ok {
				v = &sketch.View{}
				perItem[u] = v
			}
			v.Add(sk)
		}
	}
	est := make(map[Item]float64, len(perItem))
	//lint:ignore determinism per-key map-to-map evaluation; each key is written exactly once
	for u, v := range perItem {
		est[u] = v.Estimate()
	}
	return est, total.Estimate()
}

// ConvertSummary is the §6.3 conversion function: the SG thresholding
// applied to a tree summary's estimated frequencies, with the summary's n as
// SG's n′. The resulting synopsis credits the converting owner, so
// multi-path replication of the converted result stays duplicate-
// insensitive. The total frequent items error becomes at most the sum of
// the tree's εa and the multi-path's εb.
func ConvertSummary(sum *Summary, epoch, owner int, p Params) *Synopsis {
	return ConvertSummaryInto(sum, epoch, owner, p, NewSynopsis())
}

// ConvertSummaryInto is ConvertSummary writing into a recycled synopsis: out
// is fully overwritten, drawing class and item storage from its freelists.
func ConvertSummaryInto(sum *Summary, epoch, owner int, p Params, out *Synopsis) *Synopsis {
	out.Reset()
	n := sum.N
	if n <= 0 {
		return out
	}
	class := int(math.Floor(math.Log2(float64(n))))
	thresh := float64(class) * float64(n) * p.Epsilon / p.LogN
	cs := out.getClass(class, p)
	cs.NTotal.AddCount(p.totalSeed(epoch), uint64(owner), n)
	//lint:ignore determinism per-key sketch generation; each item's sketch is a pure function of (seed, item, owner)
	for u, est := range sum.Counts {
		if est <= thresh {
			continue
		}
		c := int64(math.Round(est))
		if c <= 0 {
			continue
		}
		sk := out.getItemSketch(p)
		sk.AddCount(p.itemSeed(epoch, u), uint64(owner), c)
		cs.ItemSketches[u] = sk
	}
	out.ByClass[class] = cs
	return out
}
