// Package freq implements the paper's frequent items algorithms (§6): the
// Min Total-load tree algorithm — the first to bound worst-case total
// communication by O(m/ε) words on non-regular (d-dominating) trees — the
// Min Max-load [13] and Hybrid (§6.1.4) precision gradients, the new
// multi-path algorithm of §6.2 with class-indexed synopses and η-slack
// threshold pruning, and the §6.3 conversion function that welds the two
// into a Tributary-Delta frequent items algorithm.
//
// Problem formulation (§6): each of m sensor nodes generates a collection of
// items; c(u) is the network-wide frequency of item u and N = Σ c(u). Given
// an error tolerance ε, every algorithm delivers ε-deficient counts:
//
//	max{0, c(u) − ε·N} ≤ c̃(u) ≤ c(u)
//
// and, given a support threshold s ≫ ε, reports as frequent every item with
// c̃(u) > (s−ε)·N — no false negatives, and false positives have frequency at
// least (s−ε)·N.
package freq

import "math"

// Item identifies an item (e.g. a discretised sensor reading).
type Item uint64

// Gradient is a precision gradient (§6.1.1): ε(i) is the error tolerance of
// a node at height i. Implementations must be monotone non-decreasing in i
// with ε(h) at most the user's ε.
type Gradient interface {
	// Name identifies the gradient in reports.
	Name() string
	// Eps returns ε(i) for height i ≥ 1. Eps(0) must return 0 (leaves merge
	// exact local counts).
	Eps(i int) float64
}

// MinTotalLoad is the paper's main tree result (§6.1.2, Lemma 3): on a
// d-dominating tree,
//
//	ε(i) = ε·(1−t)·(1+t+…+t^{i−1}) = ε·(1−t^i),  t = 1/√d,
//
// bounds total communication by (1 + 2/(√d−1))·m/ε words, which is optimal.
type MinTotalLoad struct {
	// Epsilon is the user's total error tolerance.
	Epsilon float64
	// D is the tree's domination factor (> 1).
	D float64
}

// Name implements Gradient.
func (g MinTotalLoad) Name() string { return "Min Total-load" }

// Eps implements Gradient.
func (g MinTotalLoad) Eps(i int) float64 {
	if i <= 0 {
		return 0
	}
	t := 1 / math.Sqrt(g.D)
	return g.Epsilon * (1 - math.Pow(t, float64(i)))
}

// TotalCommBound returns Lemma 3's bound on total communication in words
// for m nodes: (1 + 2/(√d−1))·m/ε.
func (g MinTotalLoad) TotalCommBound(m int) float64 {
	return (1 + 2/(math.Sqrt(g.D)-1)) * float64(m) / g.Epsilon
}

// MinMaxLoad is the precision gradient of [13] minimizing the maximum load
// on any link: the even split ε(i) = ε·i/h, under which every node sends at
// most 1/(ε(i)−ε(i−1)) = h/ε counters. Its total communication is only
// bounded by O((m/ε)·log m) (§6.1), the weakness Min Total-load removes.
type MinMaxLoad struct {
	Epsilon float64
	// H is the tree height (the base station's height).
	H int
}

// Name implements Gradient.
func (g MinMaxLoad) Name() string { return "Min Max-load" }

// Eps implements Gradient.
func (g MinMaxLoad) Eps(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i > g.H {
		i = g.H
	}
	return g.Epsilon * float64(i) / float64(g.H)
}

// MaxLoadBound returns the per-link bound of the gradient: h/ε counters.
func (g MinMaxLoad) MaxLoadBound() float64 { return float64(g.H) / g.Epsilon }

// Hybrid combines the two objectives (§6.1.4) by taking the pointwise
// maximum of the two optimal gradients: at every height its cumulative
// decrement is at least that of Min Total-load AND of Min Max-load, so every
// item is pruned no later than under either constituent and the measured
// per-node load is dominated by both — reproducing the paper's observation
// that Hybrid beats the best of the two on real data (Figure 8). The
// paper's worst-case analysis (within a factor 2 of both optima) is in its
// full technical report; the average combination achieves that bound too
// and is available as AvgHybrid.
type Hybrid struct {
	Epsilon float64
	D       float64
	H       int
}

// Name implements Gradient.
func (g Hybrid) Name() string { return "Hybrid" }

// Eps implements Gradient.
func (g Hybrid) Eps(i int) float64 {
	total := MinTotalLoad{Epsilon: g.Epsilon, D: g.D}
	max := MinMaxLoad{Epsilon: g.Epsilon, H: g.H}
	return math.Max(total.Eps(i), max.Eps(i))
}

// AvgHybrid averages the two optimal gradients: every per-height difference
// is at least half of each constituent's, so both the worst-case total and
// the worst-case maximum communication are within a factor 2 of their
// respective optima.
type AvgHybrid struct {
	Epsilon float64
	D       float64
	H       int
}

// Name implements Gradient.
func (g AvgHybrid) Name() string { return "Hybrid(avg)" }

// Eps implements Gradient.
func (g AvgHybrid) Eps(i int) float64 {
	total := MinTotalLoad{Epsilon: g.Epsilon, D: g.D}
	max := MinMaxLoad{Epsilon: g.Epsilon, H: g.H}
	return (total.Eps(i) + max.Eps(i)) / 2
}
