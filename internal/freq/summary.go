package freq

import (
	"sort"

	"tributarydelta/internal/topo"
	"tributarydelta/internal/wire"
)

// Summary is the ε-deficient summary of §6.1.1: S = ⟨N, ε, {(u, c̃(u))}⟩.
// Every estimate satisfies max{0, c(u) − ε·N} ≤ c̃(u) ≤ c(u) over the
// multiset union the summary covers.
type Summary struct {
	// N is the total number of item occurrences covered.
	N int64
	// Eps is the summary's error tolerance (ε(k) after Finalize at height k).
	Eps float64
	// Counts holds the kept estimates c̃(u) > 0.
	Counts map[Item]float64
	// credit is Σ εj·nj over merged-in child summaries plus the node's own —
	// the amount of decrement already applied upstream, needed by
	// Algorithm 1's step 3 which subtracts ε(k)·n − Σ εj·nj.
	credit float64
}

// NewLocalSummary counts a node's own items exactly (a 0-error summary —
// leaves start the precision gradient from nothing).
func NewLocalSummary(items []Item) *Summary {
	s := &Summary{Counts: make(map[Item]float64, len(items))}
	for _, u := range items {
		s.Counts[u]++
	}
	s.N = int64(len(items))
	return s
}

// Clone returns a deep copy.
func (s *Summary) Clone() *Summary {
	c := &Summary{N: s.N, Eps: s.Eps, credit: s.credit, Counts: make(map[Item]float64, len(s.Counts))}
	//lint:ignore determinism per-key map copy; each key is written exactly once
	for u, v := range s.Counts {
		c.Counts[u] = v
	}
	return c
}

// Merge folds another summary into s — steps 1 and 2 of Algorithm 1. The
// input is not modified.
func (s *Summary) Merge(in *Summary) {
	s.N += in.N
	s.credit += in.Eps * float64(in.N)
	//lint:ignore determinism per-key add; each key of the input is folded exactly once
	for u, v := range in.Counts {
		s.Counts[u] += v
	}
}

// Finalize applies step 3 of Algorithm 1 for a node with tolerance epsK:
// every estimate drops by ε(k)·n − Σ εj·nj and non-positive entries are
// removed, bounding the number of kept items by 1/(ε(k)−ε(k−1)).
func (s *Summary) Finalize(epsK float64) {
	dec := epsK*float64(s.N) - s.credit
	if dec > 0 {
		//lint:ignore determinism per-key decrement/delete; each key is updated exactly once
		for u, v := range s.Counts {
			if v-dec <= 0 {
				delete(s.Counts, u)
			} else {
				s.Counts[u] = v - dec
			}
		}
	}
	s.Eps = epsK
	s.credit = epsK * float64(s.N)
}

// Words returns the message size in 32-bit words, measured from the actual
// wire encoding (see AppendWire) so the accounting can never drift from
// what is transmitted. The buffer is pre-sized (a capacity hint only, not
// accounting) to avoid growth reallocations.
func (s *Summary) Words() int {
	buf := make([]byte, 0, 32+13*len(s.Counts))
	return wire.Words(len(s.AppendWire(buf)))
}

// Counters returns the number of (item, estimate) pairs the summary keeps —
// the unit the paper's load lemmas bound.
func (s *Summary) Counters() int { return len(s.Counts) }

// Frequent reports the items with c̃(u) > (s−ε)·N, the paper's reporting
// rule that guarantees no false negatives for items with c(u) ≥ s·N.
func (s *Summary) Frequent(support float64) []Item {
	thresh := (support - s.Eps) * float64(s.N)
	var out []Item
	//lint:ignore determinism per-key threshold filter; the report is sorted below before anything reads its order
	for u, v := range s.Counts {
		if v > thresh {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TreeResult is the outcome of a lossless in-tree frequent items run.
type TreeResult struct {
	// Root is the summary produced at the base station (already finalized
	// at the base's height).
	Root *Summary
	// LoadWords[v] is the number of 32-bit words node v transmitted,
	// measured from the wire encoding.
	LoadWords []int
	// LoadCounters[v] is the number of (item, estimate) counters node v
	// transmitted — the unit of the §6.1 load bounds.
	LoadCounters []int
}

// RunTree executes Algorithm 1 bottom-up over a tree without message loss,
// recording per-node loads — the harness behind Figure 8. values supplies
// each node's item collection; g supplies the precision gradient.
func RunTree(t *topo.Tree, values func(node int) []Item, g Gradient) TreeResult {
	n := len(t.Parent)
	heights := t.Heights()
	summaries := make([]*Summary, n)
	loads := make([]int, n)
	counters := make([]int, n)
	for _, v := range t.PostOrder() {
		if !t.InTree(v) {
			continue
		}
		s := NewLocalSummary(values(v))
		for _, c := range t.Children[v] {
			if summaries[c] != nil {
				s.Merge(summaries[c])
			}
		}
		s.Finalize(g.Eps(heights[v]))
		if v != topo.Base {
			loads[v] = s.Words()
			counters[v] = s.Counters()
		}
		summaries[v] = s
	}
	return TreeResult{Root: summaries[topo.Base], LoadWords: loads, LoadCounters: counters}
}
