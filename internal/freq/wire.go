package freq

import (
	"fmt"
	"sort"

	"tributarydelta/internal/sketch"
	"tributarydelta/internal/wire"
)

// Wire codecs for the frequent items structures. Both encodings are
// canonical — items and classes are sorted — so identical values always
// produce identical bytes, and both are lossless: the ε-deficient summary's
// estimates, error state and decrement credit all round-trip exactly, which
// is what lets the runner transmit real bytes without perturbing Algorithm
// 1's arithmetic.

// sortedItems returns m's keys ascending.
func sortedItems[V any](m map[Item]V) []Item {
	out := make([]Item, 0, len(m))
	//lint:ignore determinism key collection; sorted immediately below — this helper IS the sorted-iteration discipline
	for u := range m {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AppendWire appends the wire encoding of the summary to dst: N, ε, the
// upstream decrement credit, then the (item, estimate) pairs in item order
// with delta-encoded item ids.
func (s *Summary) AppendWire(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(s.N))
	dst = wire.AppendFloat64(dst, s.Eps)
	dst = wire.AppendFloat64(dst, s.credit)
	items := sortedItems(s.Counts)
	dst = wire.AppendUvarint(dst, uint64(len(items)))
	prev := Item(0)
	for _, u := range items {
		dst = wire.AppendUvarint(dst, uint64(u-prev))
		dst = wire.AppendFloat64(dst, s.Counts[u])
		prev = u
	}
	return dst
}

// DecodeWireSummary parses a summary encoded by AppendWire.
func DecodeWireSummary(data []byte) (*Summary, error) {
	r := wire.NewReader(data)
	s := &Summary{
		N:      int64(r.Uvarint()),
		Eps:    r.Float64(),
		credit: r.Float64(),
	}
	n := r.Count(2) // item delta + estimate, >= 1 byte each
	s.Counts = make(map[Item]float64, n)
	prev := Item(0)
	for i := 0; i < n; i++ {
		u := prev + Item(r.Uvarint())
		if r.Err() == nil && i > 0 && u <= prev { // duplicate or delta overflow
			return nil, fmt.Errorf("freq: items out of order in summary: %w", wire.ErrMalformed)
		}
		s.Counts[u] = r.Float64()
		prev = u
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if s.N < 0 {
		return nil, fmt.Errorf("freq: negative N: %w", wire.ErrMalformed)
	}
	return s, nil
}

// AppendWire appends the wire encoding of the multi-path synopsis to dst:
// the class synopses in class order, each carrying its class, the ñ sketch
// (KTotal bitmaps) and the per-item ⊕-count sketches (KItem bitmaps) in
// item order. Bitmap counts come from the deployment-wide Params, not the
// message.
func (s *Synopsis) AppendWire(dst []byte, p Params) []byte {
	classes := make([]int, 0, len(s.ByClass))
	//lint:ignore determinism key collection; sorted immediately below so the wire encoding is canonical
	for c := range s.ByClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	dst = wire.AppendUvarint(dst, uint64(len(classes)))
	for _, c := range classes {
		cs := s.ByClass[c]
		dst = wire.AppendUvarint(dst, uint64(c))
		dst = cs.NTotal.AppendWire(dst)
		items := sortedItems(cs.ItemSketches)
		dst = wire.AppendUvarint(dst, uint64(len(items)))
		prev := Item(0)
		for _, u := range items {
			dst = wire.AppendUvarint(dst, uint64(u-prev))
			dst = cs.ItemSketches[u].AppendWire(dst)
			prev = u
		}
	}
	return dst
}

// DecodeWireSynopsis parses a synopsis encoded by AppendWire under the same
// Params.
func DecodeWireSynopsis(data []byte, p Params) (*Synopsis, error) {
	return DecodeWireSynopsisInto(data, p, NewSynopsis())
}

// DecodeWireSynopsisInto is DecodeWireSynopsis decoding into a recycled
// synopsis: out is fully overwritten, drawing class and item storage from
// its freelists (out's contents are unspecified after an error).
func DecodeWireSynopsisInto(data []byte, p Params, out *Synopsis) (*Synopsis, error) {
	if p.KItem <= 0 || p.KTotal <= 0 {
		return nil, fmt.Errorf("freq: decode with non-positive sketch sizes (KItem=%d KTotal=%d)", p.KItem, p.KTotal)
	}
	r := wire.NewReader(data)
	out.Reset()
	nClasses := r.Count(1 + sketch.WireBytes(p.KTotal) + 1)
	prevClass := -1
	for i := 0; i < nClasses; i++ {
		c := int(r.Uvarint())
		if r.Err() == nil && c <= prevClass {
			return nil, fmt.Errorf("freq: classes out of order: %w", wire.ErrMalformed)
		}
		prevClass = c
		cs := out.getClass(c, p)
		// The in-flight class goes into ByClass before any early return, so
		// a malformed frame never strands it (or its item sketches) outside
		// both the synopsis and the freelists — the next Reset reclaims it.
		out.ByClass[c] = cs
		if d := r.Take(sketch.WireBytes(p.KTotal)); d != nil {
			_ = cs.NTotal.LoadWire(d) // length is exact by construction
		}
		nItems := r.Count(1 + sketch.WireBytes(p.KItem))
		prev := Item(0)
		for j := 0; j < nItems; j++ {
			u := prev + Item(r.Uvarint())
			if r.Err() == nil && j > 0 && u <= prev { // duplicate or delta overflow
				return nil, fmt.Errorf("freq: items out of order in class %d: %w", c, wire.ErrMalformed)
			}
			sk := out.getItemSketch(p)
			cs.ItemSketches[u] = sk
			if d := r.Take(sketch.WireBytes(p.KItem)); d != nil {
				_ = sk.LoadWire(d)
			}
			prev = u
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return out, nil
}
