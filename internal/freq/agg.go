package freq

import (
	"sort"

	"tributarydelta/internal/topo"
)

// Result is the base station's frequent items answer: per-item frequency
// estimates and the estimated total occurrence count.
type Result struct {
	Estimates map[Item]float64
	NEst      float64
}

// Frequent reports items with estimate > (support−eps)·N̂, the paper's §6
// reporting rule (§7.4.3 uses it with the estimated total to compensate for
// undercounting in the tree part).
func (r Result) Frequent(support, eps float64) []Item {
	thresh := (support - eps) * r.NEst
	var out []Item
	//lint:ignore determinism per-key threshold filter; the report is sorted below before anything reads its order
	for u, v := range r.Estimates {
		if v > thresh {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Agg is the Tributary-Delta frequent items aggregate (§6.3): Algorithm 1
// with a precision gradient in the tributaries (budget εa), the §6.2 multi-
// path algorithm in the delta (budget εb), and ConvertSummary at the
// boundary; the end-to-end error is at most εa + εb.
type Agg struct {
	// Gradient drives the tree side; its total tolerance is εa.
	Gradient Gradient
	// EpsTree is εa (the Gradient's total budget), used at the base station
	// when finalizing directly received tree partials.
	EpsTree float64
	// MP configures the multi-path side (εb and the ⊕ operator).
	MP Params
	// heights indexes the precision gradient per node.
	heights []int
}

// NewAgg assembles the Tributary-Delta frequent items aggregate over a
// concrete tree (heights drive the gradient).
func NewAgg(tree *topo.Tree, g Gradient, epsTree float64, mp Params) *Agg {
	return &Agg{Gradient: g, EpsTree: epsTree, MP: mp, heights: tree.Heights()}
}

// Name implements aggregate.Aggregate.
func (a *Agg) Name() string { return "FrequentItems" }

// Local implements aggregate.Aggregate.
func (a *Agg) Local(_, _ int, items []Item) *Summary {
	return NewLocalSummary(items)
}

// MergeTree implements aggregate.Aggregate (steps 1–2 of Algorithm 1).
func (a *Agg) MergeTree(acc, in *Summary) *Summary {
	acc.Merge(in)
	return acc
}

// FinalizeTree implements aggregate.Aggregate (step 3 of Algorithm 1 at the
// node's height).
func (a *Agg) FinalizeTree(_, node int, p *Summary) *Summary {
	p.Finalize(a.Gradient.Eps(a.heights[node]))
	return p
}

// AppendPartial implements aggregate.Aggregate.
func (a *Agg) AppendPartial(dst []byte, p *Summary) []byte { return p.AppendWire(dst) }

// DecodePartial implements aggregate.Aggregate.
func (a *Agg) DecodePartial(data []byte) (*Summary, error) { return DecodeWireSummary(data) }

// Convert implements aggregate.Aggregate (the §6.3 conversion function).
func (a *Agg) Convert(epoch, owner int, p *Summary) *Synopsis {
	return ConvertSummary(p, epoch, owner, a.MP)
}

// Fuse implements aggregate.Aggregate (Algorithm 2 under the hood).
func (a *Agg) Fuse(acc, in *Synopsis) *Synopsis {
	acc.Fuse(in, a.MP)
	return acc
}

// NewSynopsis implements aggregate.SynopsisRecycler.
func (a *Agg) NewSynopsis() *Synopsis { return NewSynopsis() }

// ConvertInto implements aggregate.SynopsisRecycler: the §6.3 conversion
// into a recycled synopsis.
func (a *Agg) ConvertInto(epoch, owner int, p *Summary, dst *Synopsis) *Synopsis {
	return ConvertSummaryInto(p, epoch, owner, a.MP, dst)
}

// DecodeSynopsisInto implements aggregate.SynopsisRecycler.
func (a *Agg) DecodeSynopsisInto(data []byte, dst *Synopsis) (*Synopsis, error) {
	return DecodeWireSynopsisInto(data, a.MP, dst)
}

// SynopsisEpochKey implements aggregate.SynopsisMemoizer: the reseeding
// window shared by the item and total seeds (see Params.ReseedEvery). Within
// a window ConvertInto is a pure function of (owner, summary), so the epoch
// engine may cache converted boundary summaries and reuse whole frames.
func (a *Agg) SynopsisEpochKey(epoch int) uint64 { return a.MP.epochKey(epoch) }

// PartialEqual implements aggregate.SynopsisMemoizer: the §6.3 conversion
// reads only the summary's total count and per-item estimates (the error
// state and decrement credit never reach the synopsis), so two summaries
// convert identically exactly when those agree.
func (a *Agg) PartialEqual(x, y *Summary) bool {
	if x == nil || y == nil {
		return x == y
	}
	if x.N != y.N || len(x.Counts) != len(y.Counts) {
		return false
	}
	//lint:ignore determinism per-key equality test; the conjunction over keys is order-insensitive
	for u, v := range x.Counts {
		if w, ok := y.Counts[u]; !ok || w != v {
			return false
		}
	}
	return true
}

// CopySynopsisInto implements aggregate.SynopsisMemoizer: dst becomes a deep
// copy of src, drawing class and item storage from dst's freelists.
func (a *Agg) CopySynopsisInto(dst, src *Synopsis) *Synopsis {
	dst.Reset()
	//lint:ignore determinism per-key deep copy; only freelist draw order varies and recycled storage is fully overwritten
	for c, cs := range src.ByClass {
		dst.ByClass[c] = dst.cloneClassInto(cs, a.MP)
	}
	return dst
}

// AppendSynopsis implements aggregate.Aggregate.
func (a *Agg) AppendSynopsis(dst []byte, s *Synopsis) []byte { return s.AppendWire(dst, a.MP) }

// DecodeSynopsis implements aggregate.Aggregate.
func (a *Agg) DecodeSynopsis(data []byte) (*Synopsis, error) {
	return DecodeWireSynopsis(data, a.MP)
}

// EvalBase implements aggregate.Aggregate: directly received tree partials
// are merged and finalized exactly (base station as Algorithm 1 root); the
// delta's synopses are evaluated with SE; estimates add per item.
func (a *Agg) EvalBase(treeParts []*Summary, syns []*Synopsis) Result {
	res := Result{Estimates: make(map[Item]float64)}
	if len(treeParts) > 0 {
		root := treeParts[0].Clone()
		for _, p := range treeParts[1:] {
			root.Merge(p)
		}
		root.Finalize(a.EpsTree)
		//lint:ignore determinism per-key add into the result map; each key is visited exactly once
		for u, v := range root.Counts {
			res.Estimates[u] += v
		}
		res.NEst += float64(root.N)
	}
	if len(syns) > 0 {
		all := NewSynopsis()
		for _, s := range syns {
			all.Fuse(s, a.MP)
		}
		est, n := all.Evaluate(a.MP)
		//lint:ignore determinism per-key add into the result map; each key is visited exactly once
		for u, v := range est {
			res.Estimates[u] += v
		}
		res.NEst += n
	}
	return res
}

// Exact implements aggregate.Aggregate: ground-truth counts.
func (a *Agg) Exact(vs [][]Item) Result {
	res := Result{Estimates: make(map[Item]float64)}
	for _, items := range vs {
		for _, u := range items {
			res.Estimates[u]++
			res.NEst++
		}
	}
	return res
}

// TrueFrequent returns the items whose exact frequency is at least
// support·N — the ground truth against which false negatives/positives are
// measured (§7.4.3).
func TrueFrequent(vs [][]Item, support float64) []Item {
	counts := make(map[Item]int64)
	var n int64
	for _, items := range vs {
		for _, u := range items {
			counts[u]++
			n++
		}
	}
	thresh := support * float64(n)
	var out []Item
	//lint:ignore determinism per-key threshold filter; the report is sorted below before anything reads its order
	for u, c := range counts {
		if float64(c) >= thresh {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FalseRates compares reported frequent items against ground truth and
// returns the false negative and false positive fractions. The false
// negative rate is the fraction of truly frequent items missing from the
// report; the false positive rate is the fraction of reported items that
// are not truly frequent.
func FalseRates(reported, truth []Item) (fn, fp float64) {
	rep := make(map[Item]bool, len(reported))
	for _, u := range reported {
		rep[u] = true
	}
	tru := make(map[Item]bool, len(truth))
	for _, u := range truth {
		tru[u] = true
	}
	if len(truth) > 0 {
		missing := 0
		for _, u := range truth {
			if !rep[u] {
				missing++
			}
		}
		fn = float64(missing) / float64(len(truth))
	}
	if len(reported) > 0 {
		wrong := 0
		for _, u := range reported {
			if !tru[u] {
				wrong++
			}
		}
		fp = float64(wrong) / float64(len(reported))
	}
	return fn, fp
}
