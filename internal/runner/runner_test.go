package runner

import (
	"math"
	"runtime"
	"testing"
	"time"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/sample"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/topo"
)

// fixture bundles a topology for tests.
type fixture struct {
	g  *topo.Graph
	r  *topo.Rings
	tr *topo.Tree
}

func newFixture(seed uint64, n int) fixture {
	g := topo.NewRandomField(seed, n, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
	r := topo.BuildRings(g)
	tr := topo.BuildRestrictedTree(g, r, seed)
	topo.OpportunisticImprove(g, r, tr, seed, 4)
	return fixture{g: g, r: r, tr: tr}
}

// countRunner builds a Count runner over the fixture.
func countRunner(t *testing.T, f fixture, mode Mode, model network.Model, seed uint64, opts ...func(*Config[struct{}, int64, *sketch.Sketch, float64])) *Runner[struct{}, int64, *sketch.Sketch, float64] {
	t.Helper()
	cfg := Config[struct{}, int64, *sketch.Sketch, float64]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   network.New(f.g, model, seed),
		Agg:   aggregate.NewCount(seed),
		Value: func(int, int) struct{} { return struct{}{} },
		Mode:  mode,
		Seed:  seed,
	}
	for _, o := range opts {
		o(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// sumRunner builds a Sum runner with per-node readings node*1.0.
func sumRunner(t *testing.T, f fixture, mode Mode, model network.Model, seed uint64, opts ...func(*Config[float64, float64, *sketch.Sketch, float64])) *Runner[float64, float64, *sketch.Sketch, float64] {
	t.Helper()
	cfg := Config[float64, float64, *sketch.Sketch, float64]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   network.New(f.g, model, seed),
		Agg:   aggregate.NewSum(seed),
		Value: func(_, node int) float64 { return float64(node % 50) },
		Mode:  mode,
		Seed:  seed,
	}
	for _, o := range opts {
		o(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTreeModeLossFreeIsExact(t *testing.T) {
	f := newFixture(1, 300)
	r := countRunner(t, f, ModeTree, network.Global{P: 0}, 1)
	res := r.RunEpoch(0)
	want := float64(r.Sensors())
	if res.Answer != want {
		t.Fatalf("loss-free tree Count = %v, want exactly %v", res.Answer, want)
	}
	if res.TrueContrib != r.Sensors() {
		t.Fatalf("TrueContrib = %d, want %d", res.TrueContrib, r.Sensors())
	}
	if math.Abs(res.EstContrib-want) > 1e-9 {
		t.Fatalf("EstContrib = %v, want exact %v in pure tree", res.EstContrib, want)
	}
}

func TestSumTreeModeLossFreeIsExact(t *testing.T) {
	f := newFixture(2, 300)
	r := sumRunner(t, f, ModeTree, network.Global{P: 0}, 2)
	res := r.RunEpoch(0)
	want := r.ExactAnswer(0)
	if math.Abs(res.Answer-want) > 1e-9 {
		t.Fatalf("loss-free tree Sum = %v, want %v", res.Answer, want)
	}
}

func TestMultipathLossFreeApproximation(t *testing.T) {
	// SD with 40 bitmaps: ~12% approximation error, all nodes contributing.
	f := newFixture(3, 300)
	r := countRunner(t, f, ModeMultipath, network.Global{P: 0}, 3)
	res := r.RunEpoch(0)
	if res.TrueContrib != r.Sensors() {
		t.Fatalf("loss-free multipath should account all %d sensors, got %d", r.Sensors(), res.TrueContrib)
	}
	rel := math.Abs(res.Answer-float64(r.Sensors())) / float64(r.Sensors())
	if rel > 0.5 {
		t.Fatalf("multipath Count rel error %v too large", rel)
	}
}

func TestMultipathRobustUnderLoss(t *testing.T) {
	// At 30% loss, multipath should still account the large majority of
	// readings while tree loses whole subtrees (the Figure 2 contrast). The
	// residual multi-path loss is percolation over ring-boundary funnel
	// nodes, verified exactly in TestMultipathMatchesPercolation.
	f := newFixture(4, 600)
	sd := countRunner(t, f, ModeMultipath, network.Global{P: 0.3}, 4)
	tag := countRunner(t, f, ModeTree, network.Global{P: 0.3}, 4)
	var sdContrib, tagContrib int
	const epochs = 20
	for e := 0; e < epochs; e++ {
		sdContrib += sd.RunEpoch(e).TrueContrib
		tagContrib += tag.RunEpoch(e).TrueContrib
	}
	sdFrac := float64(sdContrib) / float64(epochs*sd.Sensors())
	tagFrac := float64(tagContrib) / float64(epochs*tag.Sensors())
	if sdFrac < 0.85 {
		t.Fatalf("multipath contribution %v under 30%% loss, want > 0.85", sdFrac)
	}
	if tagFrac > sdFrac-0.2 {
		t.Fatalf("tree contribution %v should be far below multipath %v", tagFrac, sdFrac)
	}
}

func TestDeterminism(t *testing.T) {
	f := newFixture(5, 200)
	a := countRunner(t, f, ModeTD, network.Global{P: 0.2}, 5)
	b := countRunner(t, f, ModeTD, network.Global{P: 0.2}, 5)
	ra := a.Run(30)
	rb := b.Run(30)
	for i := range ra {
		if ra[i].Answer != rb[i].Answer || ra[i].TrueContrib != rb[i].TrueContrib ||
			ra[i].DeltaSize != rb[i].DeltaSize {
			t.Fatalf("epoch %d diverged between identical runs", i)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	f := newFixture(6, 300)
	seq := countRunner(t, f, ModeTD, network.Global{P: 0.25}, 6,
		func(c *Config[struct{}, int64, *sketch.Sketch, float64]) { c.Workers = 1 })
	rs := seq.Run(20)
	for _, workers := range []int{2, 4, 8} {
		par := countRunner(t, f, ModeTD, network.Global{P: 0.25}, 6,
			func(c *Config[struct{}, int64, *sketch.Sketch, float64]) { c.Workers = workers })
		rp := par.Run(20)
		for i := range rs {
			if rs[i].Answer != rp[i].Answer || rs[i].TrueContrib != rp[i].TrueContrib {
				t.Fatalf("epoch %d: %d-worker run diverged from sequential", i, workers)
			}
		}
	}
}

func TestSetWorkersMidRunKeepsAnswers(t *testing.T) {
	// The pool rebalances worker budgets between rounds; answers must not
	// move when the bound changes mid-run.
	f := newFixture(6, 300)
	ref := countRunner(t, f, ModeTD, network.Global{P: 0.25}, 6,
		func(c *Config[struct{}, int64, *sketch.Sketch, float64]) { c.Workers = 1 })
	dyn := countRunner(t, f, ModeTD, network.Global{P: 0.25}, 6)
	rs := ref.Run(12)
	for e := 0; e < 12; e++ {
		dyn.SetWorkers(1 + e%5)
		res := dyn.RunEpoch(e)
		if res.Answer != rs[e].Answer || res.TrueContrib != rs[e].TrueContrib {
			t.Fatalf("epoch %d: answers moved under SetWorkers(%d)", e, 1+e%5)
		}
	}
	if dyn.Workers() != 1+11%5 {
		t.Fatalf("Workers() = %d", dyn.Workers())
	}
}

func TestCloseRetiresWaveHelpers(t *testing.T) {
	before := runtime.NumGoroutine()
	f := newFixture(6, 300)
	r := countRunner(t, f, ModeMultipath, network.Global{P: 0.2}, 6,
		func(c *Config[struct{}, int64, *sketch.Sketch, float64]) { c.Workers = 4 })
	r.Run(5) // engages the pool, spawning helpers
	r.Close()
	r.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still live after Close (started with %d)",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
	// A closed runner still answers, on the sequential engine.
	if res := r.RunEpoch(5); res.TrueContrib == 0 {
		t.Fatal("closed runner stopped answering")
	}
}

func TestShrinkRetiresSurplusHelpers(t *testing.T) {
	before := runtime.NumGoroutine()
	f := newFixture(6, 300)
	r := countRunner(t, f, ModeMultipath, network.Global{P: 0.2}, 6,
		func(c *Config[struct{}, int64, *sketch.Sketch, float64]) { c.Workers = 6 })
	r.Run(5) // engages the pool, spawning helpers
	r.SetWorkers(1)
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still live after SetWorkers(1) (started with %d)",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
	// Growing again re-arms the pool.
	r.SetWorkers(4)
	if res := r.RunEpoch(5); res.TrueContrib == 0 {
		t.Fatal("re-armed runner stopped answering")
	}
	r.Close()
}

func TestTDExpandsUnderHighLoss(t *testing.T) {
	f := newFixture(7, 400)
	r := countRunner(t, f, ModeTD, network.Global{P: 0.4}, 7)
	res := r.Run(100)
	if res[len(res)-1].DeltaSize <= res[0].DeltaSize {
		t.Fatalf("delta region did not grow under 40%% loss: %d -> %d",
			res[0].DeltaSize, res[len(res)-1].DeltaSize)
	}
	if err := r.State().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTDCoarseExpandsUnderHighLoss(t *testing.T) {
	f := newFixture(8, 400)
	r := countRunner(t, f, ModeTDCoarse, network.Global{P: 0.4}, 8)
	res := r.Run(60)
	if res[len(res)-1].DeltaSize <= res[0].DeltaSize {
		t.Fatal("TD-Coarse delta did not grow under heavy loss")
	}
}

func TestTDShrinksUnderZeroLoss(t *testing.T) {
	f := newFixture(9, 300)
	r := countRunner(t, f, ModeTD, network.Global{P: 0}, 9,
		func(c *Config[struct{}, int64, *sketch.Sketch, float64]) { c.InitialDeltaLevels = 4 })
	first := r.RunEpoch(0).DeltaSize
	res := r.Run(100)
	last := res[len(res)-1].DeltaSize
	if last >= first {
		t.Fatalf("delta did not shrink under zero loss: %d -> %d", first, last)
	}
}

func TestTDImprovesContributionVsTree(t *testing.T) {
	f := newFixture(10, 400)
	tag := countRunner(t, f, ModeTree, network.Global{P: 0.3}, 10)
	td := countRunner(t, f, ModeTD, network.Global{P: 0.3}, 10)
	var tagC, tdC int
	for e := 0; e < 60; e++ {
		tagC += tag.RunEpoch(e).TrueContrib
		tdC += td.RunEpoch(e).TrueContrib
	}
	if tdC <= tagC {
		t.Fatalf("TD contribution %d should exceed tree %d under loss", tdC, tagC)
	}
}

func TestRetransmissionsImproveTree(t *testing.T) {
	f := newFixture(11, 300)
	plain := countRunner(t, f, ModeTree, network.Global{P: 0.3}, 11)
	retx := countRunner(t, f, ModeTree, network.Global{P: 0.3}, 11,
		func(c *Config[struct{}, int64, *sketch.Sketch, float64]) { c.TreeRetransmits = 2 })
	var p, q int
	for e := 0; e < 30; e++ {
		p += plain.RunEpoch(e).TrueContrib
		q += retx.RunEpoch(e).TrueContrib
	}
	if q <= p {
		t.Fatalf("retransmissions did not improve contribution: %d vs %d", q, p)
	}
	// Energy: retransmissions must cost extra transmissions.
	if retx.Stats.Transmissions[1] <= plain.Stats.Transmissions[1] &&
		retx.Stats.TotalWords() <= plain.Stats.TotalWords() {
		t.Fatal("retransmissions were free")
	}
}

func TestEnergyMinimalMessagesPerEpoch(t *testing.T) {
	// Both schemes send one transmission per node per epoch without
	// retransmissions (Table 1's "minimal" messages row).
	f := newFixture(12, 200)
	for _, mode := range []Mode{ModeTree, ModeMultipath} {
		r := countRunner(t, f, mode, network.Global{P: 0.1}, 12)
		const epochs = 10
		r.Run(epochs)
		var total int64
		for v := 1; v < f.g.N(); v++ {
			total += r.Stats.Transmissions[v]
		}
		want := int64(epochs * r.Sensors())
		if total != want {
			t.Fatalf("%v: %d transmissions, want %d (one per node per epoch)", mode, total, want)
		}
	}
}

func TestContribEstimateTracksTruth(t *testing.T) {
	f := newFixture(13, 400)
	r := countRunner(t, f, ModeMultipath, network.Global{P: 0.2}, 13)
	var est, truth float64
	for e := 0; e < 20; e++ {
		res := r.RunEpoch(e)
		est += res.EstContrib
		truth += float64(res.TrueContrib)
	}
	if math.Abs(est-truth)/truth > 0.35 {
		t.Fatalf("contribution estimate %v far from truth %v", est/20, truth/20)
	}
}

func TestTAGTreeSchedulingByDepth(t *testing.T) {
	// A TAG tree may use same-ring parents; pure tree mode must still
	// deliver exactly under zero loss thanks to depth scheduling.
	g := topo.NewRandomField(21, 300, 20, 20, topo.Point{X: 10, Y: 10}, 2.0)
	r := topo.BuildRings(g)
	tr := topo.BuildTAGTree(g, 21)
	run, err := New(Config[struct{}, int64, *sketch.Sketch, float64]{
		Graph: g, Rings: r, Tree: tr,
		Net:   network.New(g, network.Global{P: 0}, 21),
		Agg:   aggregate.NewCount(21),
		Value: func(int, int) struct{} { return struct{}{} },
		Mode:  ModeTree,
		Seed:  21,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := run.RunEpoch(0)
	if res.Answer != float64(run.Sensors()) {
		t.Fatalf("TAG-tree zero-loss Count = %v, want %v", res.Answer, run.Sensors())
	}
	if run.Levels() < r.Max {
		t.Fatalf("TAG tree depth %d cannot be below ring depth %d", run.Levels(), r.Max)
	}
}

func TestMinMaxExactInMultipath(t *testing.T) {
	f := newFixture(14, 200)
	mkVal := func(_, node int) float64 { return float64((node*37)%100) + 1 }
	rMin, err := New(Config[float64, float64, float64, float64]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   network.New(f.g, network.Global{P: 0}, 14),
		Agg:   aggregate.Min{},
		Value: mkVal, Mode: ModeMultipath, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rMin.RunEpoch(0)
	if res.Answer != rMin.ExactAnswer(0) {
		t.Fatalf("multipath Min = %v, want exact %v", res.Answer, rMin.ExactAnswer(0))
	}
	rMax, err := New(Config[float64, float64, float64, float64]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   network.New(f.g, network.Global{P: 0}, 15),
		Agg:   aggregate.Max{},
		Value: mkVal, Mode: ModeTD, Seed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	res = rMax.RunEpoch(0)
	if res.Answer != rMax.ExactAnswer(0) {
		t.Fatalf("TD Max = %v, want exact %v", res.Answer, rMax.ExactAnswer(0))
	}
}

func TestAverageSanity(t *testing.T) {
	f := newFixture(16, 300)
	r, err := New(Config[float64, aggregate.AvgPartial, aggregate.AvgSynopsis, float64]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   network.New(f.g, network.Global{P: 0.1}, 16),
		Agg:   aggregate.NewAverage(16),
		Value: func(_, node int) float64 { return 50 + float64(node%10) },
		Mode:  ModeTD, Seed: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const epochs = 10
	for e := 0; e < epochs; e++ {
		sum += r.RunEpoch(e).Answer
	}
	mean := sum / epochs
	truth := r.ExactAnswer(0)
	if math.Abs(mean-truth)/truth > 0.3 {
		t.Fatalf("Average %v too far from truth %v", mean, truth)
	}
}

func TestUniformSampleFlows(t *testing.T) {
	f := newFixture(17, 200)
	const k = 20
	r, err := New(Config[float64, *sample.Sample, *sample.Sample, *sample.Sample]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   network.New(f.g, network.Global{P: 0.1}, 17),
		Agg:   aggregate.NewUniformSample(17, k),
		Value: func(_, node int) float64 { return float64(node) },
		Mode:  ModeTD, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.RunEpoch(0)
	if res.Answer.Len() != k {
		t.Fatalf("sample delivered %d items, want full capacity %d", res.Answer.Len(), k)
	}
	// Samples must be of distinct nodes.
	seen := map[int]bool{}
	for _, it := range res.Answer.Items() {
		if seen[it.Node] {
			t.Fatalf("node %d sampled twice — duplicate insensitivity broken", it.Node)
		}
		seen[it.Node] = true
	}
}

func TestConfigValidation(t *testing.T) {
	f := newFixture(18, 100)
	if _, err := New(Config[struct{}, int64, *sketch.Sketch, float64]{}); err == nil {
		t.Fatal("empty config must fail")
	}
	// TAG tree (same-ring parents possible) must be rejected in TD modes.
	tagTree := topo.BuildTAGTree(f.g, 18)
	if tagTree.LinksSubsetOfRings(f.g, f.r) {
		t.Skip("TAG tree happened to be rings-restricted")
	}
	_, err := New(Config[struct{}, int64, *sketch.Sketch, float64]{
		Graph: f.g, Rings: f.r, Tree: tagTree,
		Net:   network.New(f.g, network.Global{P: 0}, 18),
		Agg:   aggregate.NewCount(18),
		Value: func(int, int) struct{} { return struct{}{} },
		Mode:  ModeTD, Seed: 18,
	})
	if err == nil {
		t.Fatal("TD mode with non-restricted tree must be rejected")
	}
}

func TestStateStaysValidThroughAdaptation(t *testing.T) {
	f := newFixture(19, 300)
	r := countRunner(t, f, ModeTD, network.Regional{
		Region: network.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10},
		P1:     0.6, P2: 0.05, Pos: f.g.Pos,
	}, 19)
	for e := 0; e < 100; e++ {
		r.RunEpoch(e)
		if err := r.State().Validate(); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
}

func TestRMSError(t *testing.T) {
	ans := []float64{90, 110}
	truth := []float64{100, 100}
	got := RMSError(ans, truth)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RMSError = %v, want 0.1", got)
	}
	if !math.IsNaN(RMSError(nil, nil)) {
		t.Fatal("empty input should be NaN")
	}
	if !math.IsNaN(RMSError([]float64{1}, []float64{0})) {
		t.Fatal("zero truth should be NaN")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeTree: "TAG", ModeMultipath: "SD", ModeTDCoarse: "TD-Coarse", ModeTD: "TD", Mode(9): "?",
	} {
		if m.String() != want {
			t.Fatalf("Mode %d string %q, want %q", m, m.String(), want)
		}
	}
}
