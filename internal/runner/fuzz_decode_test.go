package runner

// Per-aggregate hostile-payload fuzzers: the UDP receive chain is datagram →
// envelope → aggregate payload, and each layer faces attacker-controlled
// bytes. FuzzDecodePartial and FuzzDecodeSynopsis push arbitrary bytes
// through every registered aggregate's payload decoder — the invariants are
// no panic, no allocation proportional to a hostile length field, and
// errors that stay errors: after a failed decode the same aggregate
// instance must still decode a known-good payload.

import (
	"testing"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/freq"
	"tributarydelta/internal/quantile"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/wire"
)

// fuzzDecoder pairs an aggregate's payload decoder with a known-good
// encoding used both as corpus seed and as the post-hostile-input probe.
type fuzzDecoder struct {
	name   string
	good   []byte
	decode func([]byte) error
}

// partialDecoders covers every aggregate family's tree-partial codec.
func partialDecoders(f fixture) []fuzzDecoder {
	seed := uint64(11)
	cnt := aggregate.NewCount(seed)
	sum := aggregate.NewSum(seed)
	avg := aggregate.NewAverage(seed)
	mom := aggregate.NewMoments(seed)
	smp := aggregate.NewUniformSample(seed, 16)
	fa := freq.NewAgg(f.tr, freq.MinTotalLoad{Epsilon: 0.01, D: topo.TreeDominationFactor(f.tr, 0.05)},
		0.01, freq.DefaultParams(seed, 0.01, 12))
	qa := quantile.NewAgg(f.tr, seed, 32, 16, nil)
	return []fuzzDecoder{
		{"count", cnt.AppendPartial(nil, 12345),
			func(b []byte) error { _, err := cnt.DecodePartial(b); return err }},
		{"sum", sum.AppendPartial(nil, 3.25),
			func(b []byte) error { _, err := sum.DecodePartial(b); return err }},
		{"average", avg.AppendPartial(nil, avg.Local(0, 1, 2.5)),
			func(b []byte) error { _, err := avg.DecodePartial(b); return err }},
		{"moments", mom.AppendPartial(nil, mom.Local(0, 1, 1.5)),
			func(b []byte) error { _, err := mom.DecodePartial(b); return err }},
		{"sample", smp.AppendPartial(nil, smp.Local(0, 1, 7.0)),
			func(b []byte) error { _, err := smp.DecodePartial(b); return err }},
		{"min", aggregate.Min{}.AppendPartial(nil, 1.0),
			func(b []byte) error { _, err := aggregate.Min{}.DecodePartial(b); return err }},
		{"freq", fa.AppendPartial(nil, fa.Local(0, 1, []freq.Item{3, 5})),
			func(b []byte) error { _, err := fa.DecodePartial(b); return err }},
		{"quantile", qa.AppendPartial(nil, qa.Local(0, 1, 4.5)),
			func(b []byte) error { _, err := qa.DecodePartial(b); return err }},
	}
}

// synopsisDecoders covers every aggregate family's synopsis codec.
func synopsisDecoders(f fixture) []fuzzDecoder {
	seed := uint64(11)
	cnt := aggregate.NewCount(seed)
	sum := aggregate.NewSum(seed)
	avg := aggregate.NewAverage(seed)
	mom := aggregate.NewMoments(seed)
	smp := aggregate.NewUniformSample(seed, 16)
	fa := freq.NewAgg(f.tr, freq.MinTotalLoad{Epsilon: 0.01, D: topo.TreeDominationFactor(f.tr, 0.05)},
		0.01, freq.DefaultParams(seed, 0.01, 12))
	qa := quantile.NewAgg(f.tr, seed, 32, 16, nil)
	return []fuzzDecoder{
		{"count", cnt.AppendSynopsis(nil, cnt.Convert(0, 1, 5)),
			func(b []byte) error { _, err := cnt.DecodeSynopsis(b); return err }},
		{"sum", sum.AppendSynopsis(nil, sum.Convert(0, 1, 2.5)),
			func(b []byte) error { _, err := sum.DecodeSynopsis(b); return err }},
		{"average", avg.AppendSynopsis(nil, avg.Convert(0, 1, avg.Local(0, 1, 2.5))),
			func(b []byte) error { _, err := avg.DecodeSynopsis(b); return err }},
		{"moments", mom.AppendSynopsis(nil, mom.Convert(0, 1, mom.Local(0, 1, 1.5))),
			func(b []byte) error { _, err := mom.DecodeSynopsis(b); return err }},
		{"sample", smp.AppendSynopsis(nil, smp.Convert(0, 1, smp.Local(0, 1, 7.0))),
			func(b []byte) error { _, err := smp.DecodeSynopsis(b); return err }},
		{"max", aggregate.Max{}.AppendSynopsis(nil, 2.0),
			func(b []byte) error { _, err := aggregate.Max{}.DecodeSynopsis(b); return err }},
		{"freq", fa.AppendSynopsis(nil, fa.Convert(0, 1, fa.Local(0, 1, []freq.Item{3, 5}))),
			func(b []byte) error { _, err := fa.DecodeSynopsis(b); return err }},
		{"quantile", qa.AppendSynopsis(nil, qa.Convert(0, 1, qa.Local(0, 1, 4.5))),
			func(b []byte) error { _, err := qa.DecodeSynopsis(b); return err }},
	}
}

// fuzzAggregatePayloads is the shared body: treat the input as a full UDP
// datagram, peel the framing and envelope like a shard would, and feed both
// the extracted payloads and the raw input to every aggregate decoder. After
// each hostile decode, the same instance must still accept its known-good
// encoding — a decoder error may never be sticky.
func fuzzAggregatePayloads(f *testing.F, decoders []fuzzDecoder) {
	for _, d := range decoders {
		f.Add(wire.AppendDatagram(nil, 1, 0, 5, wire.AppendEnvelope(nil, &wire.Envelope{
			Kind: wire.KindTree, Epoch: 1, From: 2, Contrib: 1, Payload: d.good,
		})))
		f.Add(d.good)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(wire.AppendUvarint(nil, 1<<40))
	var dec wire.Decoder
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads := [][]byte{data}
		if d, err := wire.DecodeDatagram(data); err == nil {
			dec.Reset()
			if env, err := dec.Decode(d.Frame); err == nil {
				payloads = append(payloads, env.Payload, env.ContribSketch)
			}
		}
		for _, fd := range decoders {
			for _, p := range payloads {
				_ = fd.decode(p) // must not panic, whatever p is
			}
			if err := fd.decode(fd.good); err != nil {
				t.Fatalf("%s: decoder poisoned by hostile input, rejects known-good payload: %v", fd.name, err)
			}
		}
	})
}

// FuzzDecodePartial drives arbitrary bytes through every aggregate's tree
// partial decoder, framed as a datagram-borne envelope and raw.
func FuzzDecodePartial(f *testing.F) { fuzzAggregatePayloads(f, partialDecoders(newFixture(11, 60))) }

// FuzzDecodeSynopsis drives arbitrary bytes through every aggregate's
// synopsis decoder, framed as a datagram-borne envelope and raw.
func FuzzDecodeSynopsis(f *testing.F) { fuzzAggregatePayloads(f, synopsisDecoders(newFixture(11, 60))) }
