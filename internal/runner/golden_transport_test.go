package runner

import (
	"testing"

	"tributarydelta/internal/network"
	"tributarydelta/internal/transport"
)

// TestGoldenAnswersChanTransport re-runs the golden workloads with the
// deterministic goroutine-per-node chan transport substituted for the
// in-process simulator and compares against the very same golden file: the
// concurrent runtime must not move a single answer — under the sequential
// engine and under the parallel wave engine driving the same backend.
func TestGoldenAnswersChanTransport(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := goldenRuns(t, func(net *network.Net) Transport {
			ch := transport.New(net, transport.Options{Deterministic: true})
			t.Cleanup(ch.Close)
			return ch
		}, workers)
		compareGolden(t, got)
	}
}
