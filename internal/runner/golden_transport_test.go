package runner

import (
	"testing"

	"tributarydelta/internal/network"
	"tributarydelta/internal/transport"
)

// TestGoldenAnswersChanTransport re-runs the golden workloads with the
// deterministic goroutine-per-node chan transport substituted for the
// in-process simulator and compares against the very same golden file: the
// concurrent runtime must not move a single answer.
func TestGoldenAnswersChanTransport(t *testing.T) {
	got := goldenRuns(t, func(net *network.Net) Transport {
		ch := transport.New(net, transport.Options{Deterministic: true})
		t.Cleanup(ch.Close)
		return ch
	})
	compareGolden(t, got)
}
