package runner

import (
	"testing"

	"tributarydelta/internal/network"
	"tributarydelta/internal/transport"
)

// TestGoldenAnswersUDPTransport re-runs the golden workloads (4 schemes ×
// seeds 1–3) with the multi-process UDP transport in deterministic mode —
// real loopback datagrams, an in-process shard fleet, the barrier protocol
// — and compares against the very same golden file, under the sequential
// engine and the parallel wave engine, with datagram coalescing both on and
// off. The Deliver verdict comes from the same seeded loss hash as the
// simulator and the chan transport, and the exactly-once barrier guarantees
// the data plane keeps up, so not a single answer may move — batched or not.
func TestGoldenAnswersUDPTransport(t *testing.T) {
	for _, noBatch := range []bool{false, true} {
		name := "batched"
		if noBatch {
			name = "unbatched"
		}
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				got := goldenRuns(t, func(nw *network.Net) Transport {
					u, err := transport.NewUDP(nw, transport.UDPOptions{
						Deterministic: true, Shards: 4, NoBatching: noBatch,
					})
					if err != nil {
						t.Fatalf("NewUDP: %v", err)
					}
					t.Cleanup(func() {
						u.Close()
						if err := u.Err(); err != nil {
							t.Errorf("udp transport error after run: %v", err)
						}
					})
					return u
				}, workers)
				compareGolden(t, got)
			}
		})
	}
}
