//go:build !race

package runner

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = false
