package runner

import (
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/wire"
)

// Epoch-over-epoch synopsis memoization.
//
// A multi-path node's outgoing frame is a pure function of (a) the hash
// seeds of the epoch's reseeding period, (b) the node's own local partial,
// and (c) the envelopes that reached it. With the sketch hashes fixed within
// a period (aggregate.SynopsisMemoizer) those inputs change far more slowly
// than once per epoch: a steady-state Count's reading never changes, and a
// loss realization that delivers the same sender set twice in a row —
// certain under zero loss, common under light loss — reproduces last
// epoch's synopsis bit for bit.
//
// The engine exploits this at three grains:
//
//  1. Own-base cache: each node's converted base synopsis is cached and
//     rebuilt only when its partial changes — steady-state Count and
//     slowly-changing Sum skip AddCount's binomial simulation entirely.
//  2. Boundary cache: an M vertex caches, per tree child, the converted
//     synopsis (keyed by the child's partial) and the contributing-Count
//     insertion (keyed by the child's contributing count) — the §5
//     conversion function runs only when the tributary's value moves.
//  3. Frame reuse: a node whose period keys, own partial, sender set,
//     boundary inputs and synopsis senders are all unchanged ("clean") skips
//     fusion and encoding outright and re-broadcasts last epoch's frame with
//     only the epoch header field patched. Cleanliness is inductive — a
//     synopsis input is unchanged exactly when its sender was clean this
//     epoch — and levels run deepest-first, so a sender's verdict is always
//     ready before its receivers ask.
//
// Everything here is a pure cache: answers, frame bytes and network.Stats
// accounting are bit-identical with memoization on, off (Config.NoMemo), or
// across worker counts — pinned by TestMemoMatchesNoMemo and the golden
// matrix. Ground-truth contributor bitsets are simulator metadata derived
// from the epoch's actual arrivals, so they are always recomputed, never
// memoized. Adaptation switches relabel vertices and therefore bust every
// cache (bustMemo); reseeding-period rollovers bust the grain they touch.

// boundaryEntry caches one tree child's conversion products at an M vertex.
type boundaryEntry[P, S any] struct {
	from int32
	// pValid marks syn as Convert(from, p); synSet marks syn allocated.
	pValid bool
	synSet bool
	// cValid marks contrib as the (from, contribCount) insertion.
	cValid bool
	p      P
	syn    S
	// contrib holds only this child's contributing-Count insertion, ready to
	// OR into the node's outgoing piggyback sketch.
	contrib      *sketch.Sketch
	contribCount int64
}

// nodeMemo is one node's cross-epoch memoization state.
type nodeMemo[P, S any] struct {
	// clean reports whether this node reused its frame in the current epoch
	// — read by next level's receivers to decide their own cleanliness.
	clean bool
	// prevValid marks that the node's frame slot holds a complete frame
	// from an earlier epoch (the reuse candidate).
	prevValid bool
	// ownValid marks ownSyn as the conversion of ownP; ownSynSet marks
	// ownSyn allocated.
	ownValid  bool
	ownSynSet bool
	ownP      P
	ownSyn    S
	// prevSenders is the inbox sender sequence of the last built epoch.
	prevSenders []int32
	boundary    []boundaryEntry[P, S]
}

// find returns the boundary entry for child `from`, or nil.
func (nm *nodeMemo[P, S]) find(from int32) *boundaryEntry[P, S] {
	for i := range nm.boundary {
		if nm.boundary[i].from == from {
			return &nm.boundary[i]
		}
	}
	return nil
}

// findOrCreate returns the boundary entry for child `from`, creating it on
// first contact. The child set of an M vertex is bounded by its static tree
// children, so the list stops growing after every child has gotten one frame
// through.
func (nm *nodeMemo[P, S]) findOrCreate(from int32) *boundaryEntry[P, S] {
	if be := nm.find(from); be != nil {
		return be
	}
	nm.boundary = append(nm.boundary, boundaryEntry[P, S]{from: from})
	return &nm.boundary[len(nm.boundary)-1]
}

// beginMemoEpoch refreshes the period keys and busts the cache grains whose
// key rolled over. Caches survive arbitrary epoch orderings: validity
// depends only on key equality (conversions are pure functions of the key),
// never on epochs being consecutive.
func (r *Runner[V, P, S, R]) beginMemoEpoch(epoch int) {
	r.memoOn = r.memo != nil && r.rec != nil && !r.cfg.NoMemo
	if !r.memoOn {
		return
	}
	aggKey := r.memo.SynopsisEpochKey(epoch)
	contribKey := r.contribEpochKey(epoch)
	r.keysStable = r.memoPrimed && aggKey == r.prevAggKey && contribKey == r.prevContribKey
	if r.memoPrimed && aggKey != r.prevAggKey {
		for i := range r.memoState {
			nm := &r.memoState[i]
			nm.ownValid = false
			for b := range nm.boundary {
				nm.boundary[b].pValid = false
			}
		}
	}
	if r.memoPrimed && contribKey != r.prevContribKey {
		for i := range r.memoState {
			nm := &r.memoState[i]
			for b := range nm.boundary {
				nm.boundary[b].cValid = false
			}
		}
	}
	r.prevAggKey, r.prevContribKey = aggKey, contribKey
	r.memoPrimed = true
}

// bustMemo invalidates every cache — called when an adaptation decision
// relabels vertices (conversion owners, boundary sets and frame contents all
// shift under the new labeling). Allocations are kept.
func (r *Runner[V, P, S, R]) bustMemo() {
	if r.memo == nil {
		return
	}
	for i := range r.memoState {
		nm := &r.memoState[i]
		nm.clean = false
		nm.prevValid = false
		nm.ownValid = false
		for b := range nm.boundary {
			nm.boundary[b].pValid = false
			nm.boundary[b].cValid = false
		}
	}
}

// tryReuseFrame is the clean-path check for node v: if every input of v's
// outgoing frame is provably unchanged since the last built epoch, the frame
// bytes are reused with only the epoch header patched, and the whole
// build+fuse+encode pipeline is skipped. Ground-truth contributors are
// recomputed from this epoch's actual arrivals regardless. Returns false —
// after recording v as not clean — whenever anything moved.
func (r *Runner[V, P, S, R]) tryReuseFrame(epoch, v, slot int) bool {
	nm := &r.memoState[v]
	if !r.state.IsM(v) {
		// T vertices take the plain path: their build is a cheap exact fold,
		// and their boundary products are cached by the M receiver instead.
		nm.clean = false
		return false
	}
	in := r.inbox[v]
	own := r.cfg.Agg.Local(epoch, v, r.cfg.Value(r.valueEpoch(epoch, v), v))
	clean := r.keysStable && nm.prevValid && nm.ownValid &&
		r.memo.PartialEqual(nm.ownP, own) && len(in) == len(nm.prevSenders)
	if clean {
		for i, idx := range in {
			e := &r.frames[idx].env
			if int32(e.from) != nm.prevSenders[i] {
				clean = false
				break
			}
			if e.isTree {
				be := nm.find(int32(e.from))
				if be == nil || !be.pValid || !be.cValid ||
					!r.memo.PartialEqual(be.p, e.p) || be.contribCount != e.contribTree {
					clean = false
					break
				}
			} else if !r.memoState[e.from].clean {
				clean = false
				break
			}
		}
	}
	nm.clean = clean
	if !clean {
		return false
	}
	contributors := r.contribArena[v*r.words : (v+1)*r.words]
	setBit(contributors, v)
	for _, idx := range in {
		orBits(contributors, r.frames[idx].env.contributors)
	}
	r.envs[slot].contributors = contributors
	r.patchFrameEpoch(&r.frames[slot], epoch)
	return true
}

// recordMemo captures node v's inbox sender sequence after a full (dirty)
// build, making v a reuse candidate for the next epoch.
func (r *Runner[V, P, S, R]) recordMemo(v int) {
	nm := &r.memoState[v]
	nm.clean = false
	if !r.state.IsM(v) {
		return
	}
	nm.prevSenders = nm.prevSenders[:0]
	for _, idx := range r.inbox[v] {
		nm.prevSenders = append(nm.prevSenders, int32(r.frames[idx].env.from))
	}
	nm.prevValid = true
}

// patchFrameEpoch rewrites the epoch field of a cached frame in place — the
// "header-only variation" of a reused broadcast. The epoch uvarint sits at a
// fixed offset (after the version and kind bytes); when its width changes
// (epoch crossing a 7-bit boundary) the tail shifts once and the frame is
// again patchable in place.
func (r *Runner[V, P, S, R]) patchFrameEpoch(f *frameSlot[P, S], epoch int) {
	newLen := wire.UvarintLen(uint64(epoch))
	oldLen := int(f.epochLen)
	if newLen != oldLen {
		tailLen := len(f.buf) - 2 - oldLen
		if newLen > oldLen {
			f.buf = append(f.buf, make([]byte, newLen-oldLen)...)
		}
		copy(f.buf[2+newLen:2+newLen+tailLen], f.buf[2+oldLen:2+oldLen+tailLen])
		if newLen < oldLen {
			f.buf = f.buf[:2+newLen+tailLen]
		}
		f.epochLen = uint8(newLen)
	}
	wire.PutUvarint(f.buf[2:2+newLen], uint64(epoch))
}
