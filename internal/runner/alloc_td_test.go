package runner

import (
	"testing"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/freq"
	"tributarydelta/internal/network"
	"tributarydelta/internal/quantile"
	"tributarydelta/internal/sample"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/xrand"
)

// TestEpochLowAllocTD pins the TD scheme's steady-state allocation budget —
// the mixed tributary/delta topology exercises the boundary conversion
// caches and the per-child contributing insertions on top of the Count/Sum
// receive path. Collection epochs must allocate nothing once warmed; with
// the default adaptation cadence the whole loop (decisions included) must
// stay within a small amortized budget.
func TestEpochLowAllocTD(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs in the non-race job")
	}
	t.Run("collection-only", func(t *testing.T) {
		f := newFixture(23, 300)
		r := countRunner(t, f, ModeTD, network.Global{P: 0.2}, 23,
			func(c *Config[struct{}, int64, *sketch.Sketch, float64]) {
				c.AdaptEvery = 1 << 30
			})
		// Loss-free warm-up maximizes every pool, buffer, boundary cache and
		// sender list; see TestEpochZeroAllocCount.
		r.cfg.Net.Model = network.Global{P: 0}
		epoch := 0
		for ; epoch < 5; epoch++ {
			r.RunEpoch(epoch)
		}
		r.cfg.Net.Model = network.Global{P: 0.2}
		n := testing.AllocsPerRun(20, func() {
			r.RunEpoch(epoch)
			epoch++
		})
		if n != 0 {
			t.Fatalf("steady-state TD collection epoch allocates %v per op, want 0", n)
		}
	})
	t.Run("with-adaptation", func(t *testing.T) {
		f := newFixture(24, 300)
		r := countRunner(t, f, ModeTD, network.Global{P: 0.2}, 24)
		epoch := 0
		// The delta takes a while to reach its oscillating equilibrium, and
		// every pool, cache and frame buffer must see its worst-case shape
		// (one growth per switched node, per loss pattern) before the loop
		// goes quiet — hence the long warm-up.
		for ; epoch < 1000; epoch++ {
			r.RunEpoch(epoch)
		}
		n := testing.AllocsPerRun(40, func() {
			r.RunEpoch(epoch)
			epoch++
		})
		// With the §4.2 decision path incrementalized (O(1) DeltaSize,
		// scratch-backed candidate scans) the whole loop — adaptation
		// decisions and reseed-period rebuilds included — allocates nothing
		// at equilibrium.
		if n != 0 {
			t.Fatalf("TD epoch with adaptation allocates %v per op, want 0", n)
		}
	})
	t.Run("with-adaptation-workers-4", func(t *testing.T) {
		f := newFixture(24, 300)
		r := countRunner(t, f, ModeTD, network.Global{P: 0.2}, 24,
			func(c *Config[struct{}, int64, *sketch.Sketch, float64]) {
				c.Workers = 4
			})
		defer r.Close()
		epoch := 0
		for ; epoch < 1000; epoch++ {
			r.RunEpoch(epoch)
		}
		n := testing.AllocsPerRun(40, func() {
			r.RunEpoch(epoch)
			epoch++
		})
		// The wave engine's parallel path must hold the same budget: shard
		// dispatch reuses one closure and the helper channels, and worker
		// scratch reaches a fixed shape because shard assignment is stable.
		if n != 0 {
			t.Fatalf("TD epoch (workers=4) allocates %v per op, want 0", n)
		}
	})
}

// TestRecyclerEngagedForAllAggregates pins that every aggregate shipping a
// synopsis codec also resolves the SynopsisRecycler fast path in the runner
// — quantile, sample and freq joined Count/Sum/Average in this revision.
func TestRecyclerEngagedForAllAggregates(t *testing.T) {
	f := newFixture(25, 100)

	qa := quantile.NewAgg(f.tr, 25, 32, 16, nil)
	qr, err := New(Config[float64, *quantile.Partial, *quantile.Synopsis, *quantile.Summary]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   network.New(f.g, network.Global{P: 0}, 25),
		Agg:   qa,
		Value: func(_, node int) float64 { return float64(node) },
		Mode:  ModeTD, Seed: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if qr.rec == nil {
		t.Fatal("Quantiles runner did not resolve the SynopsisRecycler fast path")
	}

	sa := aggregate.NewUniformSample(25, 16)
	sr, err := New(Config[float64, *sample.Sample, *sample.Sample, *sample.Sample]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   network.New(f.g, network.Global{P: 0}, 25),
		Agg:   sa,
		Value: func(_, node int) float64 { return float64(node) },
		Mode:  ModeMultipath, Seed: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sr.rec == nil {
		t.Fatal("UniformSample runner did not resolve the SynopsisRecycler fast path")
	}

	fa := freq.NewAgg(f.tr, freq.MinTotalLoad{Epsilon: 0.01, D: topo.TreeDominationFactor(f.tr, 0.05)},
		0.01, freq.DefaultParams(25, 0.01, 12))
	src := xrand.NewSource(25)
	fr, err := New(Config[[]freq.Item, *freq.Summary, *freq.Synopsis, freq.Result]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net: network.New(f.g, network.Global{P: 0}, 25),
		Agg: fa,
		Value: func(_, node int) []freq.Item {
			return []freq.Item{freq.Item(node % 7), freq.Item(src.Intn(50))}
		},
		Mode: ModeTD, Seed: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fr.rec == nil {
		t.Fatal("FrequentItems runner did not resolve the SynopsisRecycler fast path")
	}
	// The freq recycler must survive real epochs (pool reuse across fuse
	// cascades and decode-into) without perturbing answers: run a few epochs
	// against the allocating path.
	plain, err := New(Config[[]freq.Item, *freq.Summary, *freq.Synopsis, freq.Result]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net: network.New(f.g, network.Global{P: 0.2}, 25),
		Agg: fa,
		Value: func(_, node int) []freq.Item {
			return []freq.Item{freq.Item(node % 7), freq.Item(node % 13)}
		},
		Mode: ModeTD, Seed: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 8; e++ {
		res := plain.RunEpoch(e)
		if res.TrueContrib == 0 {
			t.Fatal("freq TD run produced no contributors")
		}
	}
}
