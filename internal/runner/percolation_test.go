package runner

import (
	"testing"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/xrand"
)

// TestMultipathMatchesPercolation verifies the multi-path delivery mechanics
// against an independent ground truth: a reading survives to the base
// station iff the rings DAG percolates for it (at least one all-successful
// chain of up-links). The runner's measured per-ring survival must agree
// with direct Monte-Carlo percolation on the same graph within sampling
// noise. This pins down the exact semantics of broadcast, level scheduling
// and synopsis incorporation.
func TestMultipathMatchesPercolation(t *testing.T) {
	f := newFixture(4, 600)
	const p = 0.3
	const trials = 40

	// Direct percolation over independent link samples.
	src := xrand.NewSource(999)
	percLoss := make([]float64, f.r.Max+1)
	ringSize := make([]int, f.r.Max+1)
	for v := 1; v < f.g.N(); v++ {
		if f.r.Reachable(v) {
			ringSize[f.r.Level[v]]++
		}
	}
	for tr := 0; tr < trials; tr++ {
		alive := map[[2]int]bool{}
		for v := 1; v < f.g.N(); v++ {
			for _, u := range f.r.Up[v] {
				alive[[2]int{v, u}] = src.Float64() >= p
			}
		}
		reach := make([]bool, f.g.N())
		reach[topo.Base] = true
		for l := 1; l <= f.r.Max; l++ {
			for v := 1; v < f.g.N(); v++ {
				if f.r.Level[v] != l {
					continue
				}
				for _, u := range f.r.Up[v] {
					if alive[[2]int{v, u}] && reach[u] {
						reach[v] = true
						break
					}
				}
			}
		}
		for v := 1; v < f.g.N(); v++ {
			if f.r.Reachable(v) && !reach[v] {
				percLoss[f.r.Level[v]]++
			}
		}
	}

	// Runner measurement over the same number of epochs.
	run, err := New(Config[struct{}, int64, *sketch.Sketch, float64]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   network.New(f.g, network.Global{P: p}, 4),
		Agg:   aggregate.NewCount(4),
		Value: func(int, int) struct{} { return struct{}{} },
		Mode:  ModeMultipath, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	runLoss := make([]float64, f.r.Max+1)
	for e := 0; e < trials; e++ {
		run.RunEpoch(e)
		bits := run.lastContributors
		for v := 1; v < f.g.N(); v++ {
			if !f.r.Reachable(v) {
				continue
			}
			if bits[v/64]&(1<<uint(v%64)) == 0 {
				runLoss[f.r.Level[v]]++
			}
		}
	}

	for l := 1; l <= f.r.Max; l++ {
		if ringSize[l] < 20 {
			continue // too few nodes for a stable frequency
		}
		denom := float64(ringSize[l] * trials)
		perc := percLoss[l] / denom
		got := runLoss[l] / denom
		if diff := got - perc; diff > 0.05 || diff < -0.05 {
			t.Errorf("ring %d: runner loss %.3f vs percolation %.3f", l, got, perc)
		}
	}
}
