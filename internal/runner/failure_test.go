package runner

import (
	"math"
	"testing"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/topo"
)

// TestNodeFailureInjection kills the largest subtree root mid-run and
// checks that (a) its readings vanish from the answer and (b) the TD
// adaptation recovers part of the loss by expanding the delta around the
// hole.
func TestNodeFailureInjection(t *testing.T) {
	f := newFixture(31, 300)
	// Find a ring-1 or ring-2 node with a large subtree.
	sizes := f.tr.SubtreeSizes()
	victim, best := -1, 0
	for v := 1; v < f.g.N(); v++ {
		if f.r.Level[v] >= 1 && f.r.Level[v] <= 2 && sizes[v] > best {
			victim, best = v, sizes[v]
		}
	}
	if victim == -1 || best < 10 {
		t.Skip("no suitable victim subtree")
	}
	const killAt = 20
	model := network.NodeFailure{
		Base: network.Global{P: 0.05},
		Dead: map[int]bool{victim: true},
		From: killAt,
	}
	r := countRunner(t, f, ModeTD, model, 31)
	var before, after float64
	for e := 0; e < killAt; e++ {
		before += float64(r.RunEpoch(e).TrueContrib)
	}
	before /= killAt
	// Let adaptation react, then measure.
	for e := killAt; e < killAt+60; e++ {
		r.RunEpoch(e)
	}
	const measure = 20
	for e := killAt + 60; e < killAt+60+measure; e++ {
		after += float64(r.RunEpoch(e).TrueContrib)
	}
	after /= measure
	// The victim itself is gone for good, but adaptation must have saved
	// most of its orphaned subtree: the drop should be far smaller than the
	// whole subtree.
	drop := before - after
	if drop > float64(best)*0.8 {
		t.Fatalf("adaptation failed to recover the dead node's subtree: dropped %.1f of %d", drop, best)
	}
	if err := r.State().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTimelineMidRunSwitch drives a runner through the Figure 6 model
// timeline and checks the TD error tracks the regime changes.
func TestTimelineMidRunSwitch(t *testing.T) {
	f := newFixture(32, 300)
	model := network.Timeline{Phases: []network.Phase{
		{Until: 40, Model: network.Global{P: 0}},
		{Until: 80, Model: network.Global{P: 0.4}},
		{Until: 160, Model: network.Global{P: 0}},
	}}
	r := countRunner(t, f, ModeTD, model, 32)
	contrib := make([]float64, 160)
	for e := 0; e < 160; e++ {
		contrib[e] = float64(r.RunEpoch(e).TrueContrib) / float64(r.Sensors())
	}
	phase1 := mean(contrib[20:40])
	phase2 := mean(contrib[45:65])
	phase3 := mean(contrib[140:160])
	if phase1 < 0.99 {
		t.Fatalf("lossless phase contribution %v, want ~1", phase1)
	}
	if phase2 >= phase1 {
		t.Fatal("loss phase should reduce contribution")
	}
	if phase3 < 0.99 {
		t.Fatalf("recovery phase contribution %v, want ~1", phase3)
	}
}

// TestDisconnectedSensors verifies sensors outside radio reach are excluded
// without wedging the runner.
func TestDisconnectedSensors(t *testing.T) {
	// A line of connected nodes plus two strays far away.
	pos := []topo.Point{{X: 0, Y: 0}}
	for i := 1; i <= 10; i++ {
		pos = append(pos, topo.Point{X: float64(i), Y: 0})
	}
	pos = append(pos, topo.Point{X: 500, Y: 500}, topo.Point{X: 600, Y: 600})
	g := topo.NewField(pos, 1.5)
	r := topo.BuildRings(g)
	tr := topo.BuildRestrictedTree(g, r, 1)
	run, err := New(Config[struct{}, int64, *sketch.Sketch, float64]{
		Graph: g, Rings: r, Tree: tr,
		Net:   network.New(g, network.Global{P: 0}, 1),
		Agg:   aggregate.NewCount(1),
		Value: func(int, int) struct{} { return struct{}{} },
		Mode:  ModeTree, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Sensors() != 10 {
		t.Fatalf("participating sensors = %d, want 10 (strays excluded)", run.Sensors())
	}
	res := run.RunEpoch(0)
	if res.Answer != 10 {
		t.Fatalf("answer %v, want exactly 10 in lossless tree mode", res.Answer)
	}
	// The TD mode must also run without wedging on the strays (its answer
	// passes through one small-count FM conversion, so only check bounds).
	run2, err := New(Config[struct{}, int64, *sketch.Sketch, float64]{
		Graph: g, Rings: r, Tree: tr,
		Net:   network.New(g, network.Global{P: 0}, 1),
		Agg:   aggregate.NewCount(1),
		Value: func(int, int) struct{} { return struct{}{} },
		Mode:  ModeTD, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res2 := run2.RunEpoch(0)
	if res2.TrueContrib != 10 {
		t.Fatalf("TD TrueContrib = %d, want 10", res2.TrueContrib)
	}
}

// TestTotalRegionalBlackout puts a quadrant at 100% loss: its nodes must
// vanish from tree answers yet the rest of the network keeps answering.
func TestTotalRegionalBlackout(t *testing.T) {
	f := newFixture(33, 300)
	region := network.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}
	model := network.Regional{Region: region, P1: 1.0, P2: 0, Pos: f.g.Pos}
	r := countRunner(t, f, ModeMultipath, model, 33)
	res := r.RunEpoch(0)
	inRegion := 0
	for v := 1; v < f.g.N(); v++ {
		if f.r.Reachable(v) && region.Contains(f.g.Pos[v]) {
			inRegion++
		}
	}
	// Nothing from the blackout region can arrive.
	if res.TrueContrib > r.Sensors()-inRegion {
		t.Fatalf("blackout region leaked: %d contributed, region holds %d", res.TrueContrib, inRegion)
	}
	// Out-of-region readings all arrive over perfect links — though some
	// may be orphaned if every path crosses the dead quadrant.
	if res.TrueContrib < (r.Sensors()-inRegion)/2 {
		t.Fatalf("too few survivors: %d of %d outside the region", res.TrueContrib, r.Sensors()-inRegion)
	}
}

// TestMomentsThroughRunner runs the Moments aggregate end to end.
func TestMomentsThroughRunner(t *testing.T) {
	f := newFixture(34, 200)
	agg := aggregate.NewMoments(34)
	r, err := New(Config[float64, aggregate.MomentsPartial, aggregate.MomentsSynopsis, aggregate.MomentsValue]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   network.New(f.g, network.Global{P: 0}, 34),
		Agg:   agg,
		Value: func(_, node int) float64 { return 50 + float64(node%21) },
		Mode:  ModeTree, Seed: 34,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.RunEpoch(0)
	want := r.ExactAnswer(0)
	if math.Abs(res.Answer.Mean-want.Mean) > 1e-9 {
		t.Fatalf("tree moments mean %v, want exact %v", res.Answer.Mean, want.Mean)
	}
	if math.Abs(res.Answer.Variance-want.Variance) > 1e-6 {
		t.Fatalf("tree moments variance %v, want %v", res.Answer.Variance, want.Variance)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
