package runner

import (
	"testing"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/sketch"
)

// TestEpochZeroAllocCount pins the zero-allocation receive path: after the
// first epochs grow every pool and buffer to steady state, a Count
// collection round allocates nothing — across the tree scheme, full
// synopsis diffusion, and TD, sequential and sharded. (Adaptation periods
// are excluded: a TD switch legitimately relabels state; the claim is about
// the per-epoch collection loop.)
func TestEpochZeroAllocCount(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs in the non-race job")
	}
	for _, workers := range []int{1, 4} {
		for _, mode := range []Mode{ModeTree, ModeMultipath} {
			t.Run(mode.String()+"/"+string(rune('0'+workers)), func(t *testing.T) {
				f := newFixture(20, 300)
				r := countRunner(t, f, mode, network.Global{P: 0.2}, 20,
					func(c *Config[struct{}, int64, *sketch.Sketch, float64]) {
						c.Workers = workers
						c.AdaptEvery = 1 << 30
					})
				// Warm up loss-free: with every frame delivered, every pool
				// and buffer reaches its maximum size, so the lossy epochs
				// measured below can never need growth.
				r.cfg.Net.Model = network.Global{P: 0}
				epoch := 0
				for ; epoch < 5; epoch++ {
					r.RunEpoch(epoch)
				}
				r.cfg.Net.Model = network.Global{P: 0.2}
				n := testing.AllocsPerRun(20, func() {
					r.RunEpoch(epoch)
					epoch++
				})
				if n != 0 {
					t.Fatalf("steady-state Count epoch allocates %v per op, want 0", n)
				}
			})
		}
	}
}

// TestEpochZeroAllocSum is TestEpochZeroAllocCount for Sum — the other
// aggregate the acceptance bar names.
func TestEpochZeroAllocSum(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs in the non-race job")
	}
	for _, workers := range []int{1, 4} {
		for _, mode := range []Mode{ModeTree, ModeMultipath} {
			t.Run(mode.String()+"/"+string(rune('0'+workers)), func(t *testing.T) {
				f := newFixture(21, 300)
				r := sumRunner(t, f, mode, network.Global{P: 0.2}, 21,
					func(c *Config[float64, float64, *sketch.Sketch, float64]) {
						c.Workers = workers
						c.AdaptEvery = 1 << 30
					})
				// Loss-free warm-up maximizes every pool; see TestEpochZeroAllocCount.
				r.cfg.Net.Model = network.Global{P: 0}
				epoch := 0
				for ; epoch < 5; epoch++ {
					r.RunEpoch(epoch)
				}
				r.cfg.Net.Model = network.Global{P: 0.2}
				n := testing.AllocsPerRun(20, func() {
					r.RunEpoch(epoch)
					epoch++
				})
				if n != 0 {
					t.Fatalf("steady-state Sum epoch allocates %v per op, want 0", n)
				}
			})
		}
	}
}

// TestRecyclerEngagedForSimpleAggregates pins that the runner actually
// resolves the synopsis-recycling fast path for the sketch-backed
// aggregates — if the interface assertion silently broke, the zero-alloc
// tests above would be the only symptom, and only for Count/Sum.
func TestRecyclerEngagedForSimpleAggregates(t *testing.T) {
	f := newFixture(22, 100)
	cr := countRunner(t, f, ModeMultipath, network.Global{P: 0}, 22)
	if cr.rec == nil {
		t.Fatal("Count runner did not resolve the SynopsisRecycler fast path")
	}
	r, err := New(Config[float64, aggregate.AvgPartial, aggregate.AvgSynopsis, float64]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:   network.New(f.g, network.Global{P: 0}, 22),
		Agg:   aggregate.NewAverage(22),
		Value: func(_, node int) float64 { return float64(node) },
		Mode:  ModeMultipath, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.rec == nil {
		t.Fatal("Average runner did not resolve the SynopsisRecycler fast path")
	}
}
