//go:build race

package runner

// raceEnabled reports whether the race detector is instrumenting this build
// — allocation and timing guards skip under it, since instrumentation
// allocates and slows what they measure.
const raceEnabled = true
