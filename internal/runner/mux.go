package runner

import "tributarydelta/internal/network"

// Mux multiplexes several runners — the members of a query set — over one
// delivery backend, so N simultaneous queries on one deployment share a
// single loss realization per epoch: every member's Deliver for a given
// (epoch, attempt, from, to) consults the same Transport, and a concurrent
// backend's node runtime is spawned once, not once per query.
//
// Members run strictly sequentially within a round (the query-set contract):
// each member's port brackets its sub-round with the backend's epoch
// barrier, so all of a member's frames are processed — and its receive-side
// accounting recorded — before the next member transmits. That barrier is
// what lets per-query Stats stay separate over a shared backend: a backend
// implementing StatsSetter has its accounting target swapped at the
// quiescent point between members.
type Mux struct {
	tr     Transport
	marker EpochMarker
	setter StatsSetter
}

// StatsSetter is implemented by delivery backends whose receive-side
// accounting target can be redirected while the backend is quiescent (all
// delivered frames processed) — transport.Chan implements it.
type StatsSetter interface {
	SetStats(*network.Stats)
}

// NewMux wraps the shared backend. A nil Transport means members use their
// own in-process simulators (pure functions of the shared seed — the loss
// realization is shared with no coordination needed) and ports only carry
// the per-member stats attribution.
func NewMux(tr Transport) *Mux {
	m := &Mux{tr: tr}
	m.marker, _ = tr.(EpochMarker)
	m.setter, _ = tr.(StatsSetter)
	return m
}

// Transport returns the shared backend (nil when members simulate locally).
func (m *Mux) Transport() Transport { return m.tr }

// Port returns one member's view of the shared backend: a Transport whose
// deliveries consult the shared loss realization and whose epoch brackets
// attribute the backend's receive-side accounting to stats.
func (m *Mux) Port(stats *network.Stats) Transport {
	return &muxPort{mux: m, stats: stats}
}

// muxPort is one member's Transport view; it always implements EpochMarker
// so the runner brackets every member sub-round even over a plain backend.
type muxPort struct {
	mux   *Mux
	stats *network.Stats
}

// Deliver implements Transport via the shared backend.
func (p *muxPort) Deliver(epoch, attempt, from, to int, frame []byte) bool {
	return p.mux.tr.Deliver(epoch, attempt, from, to, frame)
}

// BeginEpoch implements EpochMarker: redirect the backend's receive-side
// accounting to this member (the previous member's EndEpoch left the backend
// quiescent), then enter the backend's own epoch bracket.
func (p *muxPort) BeginEpoch(epoch int) {
	if p.mux.setter != nil {
		p.mux.setter.SetStats(p.stats)
	}
	if p.mux.marker != nil {
		p.mux.marker.BeginEpoch(epoch)
	}
}

// EndEpoch implements EpochMarker: drain the backend so every frame this
// member delivered is processed (and accounted) before the next member runs.
func (p *muxPort) EndEpoch(epoch int) {
	if p.mux.marker != nil {
		p.mux.marker.EndEpoch(epoch)
	}
}
