package runner

import (
	"testing"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/topo"
)

// BenchmarkRunEpoch is the wire refactor's performance guard: one full
// 600-node Count collection round per scheme, through real encoded
// envelopes. Compare against the facade-level BenchmarkEpochCount history
// when touching the dispatch or codec hot paths.
func BenchmarkRunEpoch(b *testing.B) {
	for _, mode := range []Mode{ModeTree, ModeMultipath, ModeTDCoarse, ModeTD} {
		b.Run(mode.String(), func(b *testing.B) {
			g := topo.NewRandomField(1, 600, 20, 20, topo.Point{X: 10, Y: 10}, 3.0)
			rings := topo.BuildRings(g)
			tr := topo.BuildRestrictedTree(g, rings, 1)
			topo.OpportunisticImprove(g, rings, tr, 1, 4)
			r, err := New(Config[struct{}, int64, *sketch.Sketch, float64]{
				Graph: g, Rings: rings, Tree: tr,
				Net:   network.New(g, network.Global{P: 0.2}, 1),
				Agg:   aggregate.NewCount(1),
				Value: func(int, int) struct{} { return struct{}{} },
				Mode:  mode,
				Seed:  1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.RunEpoch(i)
			}
		})
	}
}
