// Package runner executes Tributary-Delta collection rounds: one aggregate
// answer per epoch, computed level-by-level over the current labeled
// topology exactly as §2 and §3 describe — tree vertices unicast exact
// partial results to their parents, multi-path vertices broadcast synopses
// to the ring above, and the tributary/delta boundary applies the conversion
// function. Messages piggyback an approximate contributing Count (exact
// integers in the tributaries, a small FM sketch in the delta), from which
// the base station drives the §4.2 adaptation strategies.
//
// Every transmission goes over the wire for real: the sender's partial or
// synopsis is serialized by the aggregate's codec into a framed
// internal/wire Envelope, energy accounting charges the encoded byte
// length, losses drop whole frames, and receivers decode actual bytes. The
// codecs are lossless, so results are bit-identical to an in-memory
// hand-off — but sizes can never drift from reality, and the Transport seam
// lets a future networked backend replace the in-process simulator.
//
// The runner also maintains ground truth: every envelope is accompanied by
// a bitset of the sensors actually represented in it, so experiments can
// separate communication error from approximation error (Table 1's error
// decomposition). The bitset is simulator metadata — it rides next to the
// frame, never inside it, and is not charged to the energy accounting.
package runner

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/tdgraph"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/wire"
	"tributarydelta/internal/xrand"
)

// Mode selects the aggregation scheme under test.
type Mode uint8

const (
	// ModeTree is the TAG baseline: every sensor runs the tree scheme.
	ModeTree Mode = iota
	// ModeMultipath is the SD baseline: every sensor runs synopsis
	// diffusion over rings.
	ModeMultipath
	// ModeTDCoarse adapts the delta region with the TD-Coarse strategy.
	ModeTDCoarse
	// ModeTD adapts the delta region with the fine-grained TD strategy.
	ModeTD
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeTree:
		return "TAG"
	case ModeMultipath:
		return "SD"
	case ModeTDCoarse:
		return "TD-Coarse"
	case ModeTD:
		return "TD"
	}
	return "?"
}

// Config assembles a simulation: topology, network, aggregate and policy.
type Config[V, P, S, R any] struct {
	Graph *topo.Graph
	Rings *topo.Rings
	Tree  *topo.Tree
	Net   *network.Net
	Agg   aggregate.Aggregate[V, P, S, R]
	// Value supplies node readings per epoch (the stream of §2).
	Value func(epoch, node int) V
	Mode  Mode
	// Threshold is the user-specified minimum contributing fraction
	// (default 0.90, as in §7.1).
	Threshold float64
	// ShrinkMargin is the slack above Threshold before shrinking ("well
	// above the threshold", §4.2; default 0.08, so the equilibrium sits
	// above the 90% floor rather than at it).
	ShrinkMargin float64
	// AdaptEvery is the adaptation period in epochs (default 10, §7.1).
	AdaptEvery int
	// InitialDeltaLevels seeds the delta region for the TD modes (default
	// 1: the base station's radio neighbourhood).
	InitialDeltaLevels int
	// TreeRetransmits is the number of extra unicast attempts tree nodes
	// make after a loss (0 = the paper's default no-retransmission setup;
	// 2 = the Figure 9(b) configuration).
	TreeRetransmits int
	// ContribK is the bitmap count of the piggybacked contributing-Count
	// sketch (default 40 — the standard Count bit vector of Figure 3, whose
	// ~12% error is accurate enough to steer the 90% threshold).
	ContribK int
	// TopK enables the §4.2 top-k TD expansion heuristic: messages carry
	// the k largest non-contributing subtree counts and expansion targets
	// every subtree at or above the k-th. 0 (default) uses the "max/2"
	// rule over the single largest value.
	TopK int
	// Pipelined runs the §2 pipelined collection: level i processes epoch
	// e while level i+1 already processes e+1, so a node at depth l folds
	// the reading it took maxLevel−l epochs ago. Latency per result drops
	// to one level slot after the pipeline fills; answers mix readings
	// across a window of maxLevel epochs (the documented TAG behaviour for
	// slowly varying signals).
	Pipelined bool
	// Seed drives all the run's randomness.
	Seed uint64
	// Transport overrides frame delivery. Nil uses the in-process simulator
	// over Net — the only mode today; the seam exists so a networked
	// backend can carry the very same frames later.
	Transport Transport
	// Stats, if non-nil, is the accumulator the runner records energy
	// metrics into; nil allocates a fresh one. Sharing the object with a
	// transport backend lets its receive-side accounting land next to the
	// runner's send-side accounting.
	Stats *network.Stats
	// Parallel processes each level's nodes on goroutines — one per sensor,
	// as sensor nodes are naturally concurrent. Results are bit-identical
	// to the sequential schedule because every stochastic decision is a
	// pure function of (seed, epoch, ids) — see internal/xrand.
	Parallel bool
}

// EpochResult is one collection round's outcome.
type EpochResult[R any] struct {
	Epoch int
	// Answer is the base station's evaluated result.
	Answer R
	// EstContrib is the base station's (approximate) count of contributing
	// sensors — what adaptation decisions are based on.
	EstContrib float64
	// TrueContrib is the exact number of sensors represented in the answer
	// (ground truth from the simulator).
	TrueContrib int
	// DeltaSize is the delta region size after this round's adaptation.
	DeltaSize int
	// Action is the adaptation action taken after this round.
	Action tdgraph.Action
	// Switched is the number of vertices switched by Action.
	Switched int
}

// Runner executes collection rounds. Construct with New.
type Runner[V, P, S, R any] struct {
	cfg   Config[V, P, S, R]
	state *tdgraph.State
	ctrl  *tdgraph.Controller
	// Stats accumulates per-node energy metrics across all epochs run.
	Stats *network.Stats
	// lastNC is each switchable M vertex's most recent count of
	// non-contributing subtree nodes (node-local memory in §4.2).
	lastNC []int
	// fracSum/fracN average the noisy contributing estimates between
	// adaptation periods, so decisions see the period mean rather than one
	// ±12% FM observation.
	fracSum float64
	fracN   int
	// schedLevel orders transmissions: ring level in multi-path and TD
	// modes, tree depth in pure-tree mode (TAG trees may use same-ring
	// parents).
	schedLevel []int
	maxLevel   int
	sensors    int // reachable sensors (the denominator of % contributing)
	words      int // bitset words per envelope
	// lastContributors is the ground-truth bitset of the most recent epoch,
	// exposed for diagnostics and tests.
	lastContributors []uint64
	// transport carries encoded frames (the simulator unless overridden);
	// marker is its optional epoch-barrier extension, resolved once.
	transport Transport
	marker    EpochMarker
	// encBuf, payloadBuf and contribBuf are the dispatch scratch buffers:
	// dispatch runs sequentially, so one set of buffers serves every
	// transmission with zero steady-state allocation.
	encBuf     []byte
	payloadBuf []byte
	contribBuf []byte
	// contribArena backs every node's ground-truth contributor bitset for
	// one epoch: node v owns contribArena[v*words:(v+1)*words]. The regions
	// are disjoint, so the Parallel schedule writes them race-free, and the
	// arena is cleared (not reallocated) between epochs.
	contribArena []uint64
	// byLevel is the static transmission schedule: the participating nodes
	// of each level (participation and scheduling levels never change
	// within a run).
	byLevel [][]int
	// inbox buffers are retained across epochs (lengths reset, capacity
	// kept) so steady-state epochs append envelopes without reallocating.
	inbox [][]envelope[P, S]
	// envScratch holds one level's outgoing envelopes; buildEnvelope fully
	// overwrites each slot, and dispatch copies what receivers keep, so the
	// buffer is safely recycled level to level.
	envScratch []envelope[P, S]
	// skPool recycles the contributing-Count sketches decoded from frames:
	// they are runner-owned, consumed within the epoch, and never escape to
	// aggregates, so a per-epoch pool is safe.
	skPool contribSketchPool
}

// contribSketchPool hands out ContribK-bitmap sketches, recycling them each
// epoch.
type contribSketchPool struct {
	k     int
	items []*sketch.Sketch
	next  int
}

func (p *contribSketchPool) reset() { p.next = 0 }

func (p *contribSketchPool) get() *sketch.Sketch {
	if p.next < len(p.items) {
		s := p.items[p.next]
		p.next++
		return s
	}
	s := sketch.New(p.k)
	p.items = append(p.items, s)
	p.next++
	return s
}

// Transport is the delivery seam between the runner and the medium: it
// carries an already-encoded frame and reports whether it reached the
// receiver. The in-process implementation consults the loss model; a
// networked backend would put the frame on a real socket.
//
// The runner calls Deliver from a single dispatch goroutine, level by level
// (deepest first) and, for tree unicasts, once per retransmission attempt
// in increasing attempt order. Returning false means the frame was lost
// whole — there is no partial delivery — and the runner records the failed
// attempt in Stats.Losses.
type Transport interface {
	// Deliver reports whether the attempt-th transmission of frame by
	// `from` during `epoch` reached `to`. Implementations must not retain
	// frame — the runner reuses the buffer.
	Deliver(epoch, attempt, from, to int, frame []byte) bool
}

// EpochMarker is an optional Transport extension: the runner brackets every
// collection round with BeginEpoch/EndEpoch so concurrent backends can
// maintain an epoch barrier — every frame delivered during epoch e is fully
// processed by its receiver's runtime before EndEpoch(e) returns, and hence
// before epoch e+1 begins.
type EpochMarker interface {
	BeginEpoch(epoch int)
	EndEpoch(epoch int)
}

// simTransport adapts network.Net to the Transport seam: delivery is a pure
// function of (seed, epoch, attempt, from, to); the frame travels by
// staying in memory.
type simTransport struct{ net *network.Net }

// Deliver implements Transport.
func (t simTransport) Deliver(epoch, attempt, from, to int, _ []byte) bool {
	return t.net.Delivered(epoch, attempt, from, to)
}

type envelope[P, S any] struct {
	from   int
	isTree bool
	p      P
	s      S
	// contribTree is the exact count of sensors in a tree partial.
	contribTree int64
	// contribSk is the delta's duplicate-insensitive contributing count.
	contribSk *sketch.Sketch
	// topNC propagates the §4.2 TD statistics: the largest reported
	// non-contributing subtree counts, descending (topNC[0] is the max);
	// minNC the smallest. ncValid marks presence.
	topNC   []int
	minNC   int
	ncValid bool
	// contributors is the ground-truth bitset of represented sensors. It is
	// simulator bookkeeping, never serialized into the frame.
	contributors []uint64
}

// New validates the configuration and prepares a runner.
func New[V, P, S, R any](cfg Config[V, P, S, R]) (*Runner[V, P, S, R], error) {
	if cfg.Graph == nil || cfg.Rings == nil || cfg.Tree == nil || cfg.Net == nil {
		return nil, errors.New("runner: incomplete topology configuration")
	}
	if cfg.Agg == nil || cfg.Value == nil {
		return nil, errors.New("runner: aggregate and value source required")
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.90
	}
	if cfg.ShrinkMargin == 0 {
		cfg.ShrinkMargin = 0.08
	}
	if cfg.AdaptEvery == 0 {
		cfg.AdaptEvery = 10
	}
	if cfg.ContribK == 0 {
		cfg.ContribK = 40
	}
	if cfg.InitialDeltaLevels == 0 {
		cfg.InitialDeltaLevels = 1
	}

	adaptive := cfg.Mode == ModeTD || cfg.Mode == ModeTDCoarse
	if adaptive && !cfg.Tree.LinksSubsetOfRings(cfg.Graph, cfg.Rings) {
		return nil, errors.New("runner: TD modes require tree links to be rings links (§4.1)")
	}

	var deltaLevels int
	switch cfg.Mode {
	case ModeTree:
		deltaLevels = 0
	case ModeMultipath:
		deltaLevels = cfg.Rings.Max
	default:
		deltaLevels = cfg.InitialDeltaLevels
	}
	state := tdgraph.NewState(cfg.Graph, cfg.Rings, cfg.Tree, deltaLevels)

	var strategy tdgraph.Strategy
	switch cfg.Mode {
	case ModeTD:
		strategy = tdgraph.StrategyTD
	case ModeTDCoarse:
		strategy = tdgraph.StrategyCoarse
	default:
		strategy = tdgraph.StrategyNone
	}
	ctrl := tdgraph.NewController(strategy)
	ctrl.Threshold = cfg.Threshold
	ctrl.ShrinkMargin = cfg.ShrinkMargin
	ctrl.TopK = cfg.TopK

	n := cfg.Graph.N()
	if cfg.Stats == nil {
		cfg.Stats = network.NewStats(n)
	}
	r := &Runner[V, P, S, R]{
		cfg:        cfg,
		state:      state,
		ctrl:       ctrl,
		Stats:      cfg.Stats,
		lastNC:     make([]int, n),
		schedLevel: make([]int, n),
		words:      (n + 63) / 64,
		transport:  cfg.Transport,
	}
	if r.transport == nil {
		r.transport = simTransport{net: cfg.Net}
	}
	r.marker, _ = r.transport.(EpochMarker)
	for i := range r.lastNC {
		r.lastNC[i] = -2 // never reported
	}
	depths := cfg.Tree.Depths()
	for v := 0; v < n; v++ {
		if cfg.Mode == ModeTree {
			r.schedLevel[v] = depths[v]
		} else {
			r.schedLevel[v] = cfg.Rings.Level[v]
		}
		if r.schedLevel[v] > r.maxLevel {
			r.maxLevel = r.schedLevel[v]
		}
	}
	for v := 1; v < n; v++ {
		if r.participates(v) {
			r.sensors++
		}
	}
	if r.sensors == 0 {
		return nil, errors.New("runner: no sensor can reach the base station")
	}
	// Participation and schedule levels are fixed for a run, so the
	// level-by-level transmission order is precomputed once.
	r.byLevel = make([][]int, r.maxLevel+1)
	for v := 1; v < n; v++ {
		if r.participates(v) {
			l := r.schedLevel[v]
			if l >= 1 {
				r.byLevel[l] = append(r.byLevel[l], v)
			}
		}
	}
	r.skPool.k = cfg.ContribK
	return r, nil
}

// participates reports whether sensor v takes part in aggregation (reachable
// and, in tree mode, attached to the tree).
func (r *Runner[V, P, S, R]) participates(v int) bool {
	if r.cfg.Mode == ModeTree {
		return r.cfg.Tree.InTree(v) && v != topo.Base
	}
	return r.cfg.Rings.Reachable(v) && v != topo.Base
}

// ResetStats zeroes the energy accounting — used by experiments that
// measure steady-state loads after a warm-up.
func (r *Runner[V, P, S, R]) ResetStats() {
	r.Stats = network.NewStats(r.cfg.Graph.N())
}

// Levels returns the number of level slots per epoch — the latency measure
// of Table 1 (latency = epoch duration × levels).
func (r *Runner[V, P, S, R]) Levels() int { return r.maxLevel }

// Sensors returns the number of participating sensors.
func (r *Runner[V, P, S, R]) Sensors() int { return r.sensors }

// State exposes the labeled graph (read-mostly; tests also validate it).
func (r *Runner[V, P, S, R]) State() *tdgraph.State { return r.state }

// ExactAnswer computes the ground-truth answer for an epoch over all
// participating sensors.
func (r *Runner[V, P, S, R]) ExactAnswer(epoch int) R {
	var vs []V
	for v := 1; v < r.cfg.Graph.N(); v++ {
		if r.participates(v) {
			vs = append(vs, r.cfg.Value(epoch, v))
		}
	}
	return r.cfg.Agg.Exact(vs)
}

// contribSeed namespaces the piggyback sketch per epoch.
func (r *Runner[V, P, S, R]) contribSeed(epoch int) uint64 {
	return xrand.Hash(r.cfg.Seed, 0xCB, uint64(epoch))
}

// topKCap is how many NC values envelopes carry: at least the controller's
// k, minimum 4 so the max/2 rule sees ties.
func (r *Runner[V, P, S, R]) topKCap() int {
	if r.cfg.TopK > 4 {
		return r.cfg.TopK
	}
	return 4
}

// valueEpoch maps a collection epoch to the epoch whose reading node v
// folds in: identical under synchronous collection, shifted by the node's
// pipeline stage when Pipelined.
func (r *Runner[V, P, S, R]) valueEpoch(epoch, v int) int {
	if !r.cfg.Pipelined {
		return epoch
	}
	e := epoch - (r.maxLevel - r.schedLevel[v])
	if e < 0 {
		e = 0
	}
	return e
}

// mergeTopK folds src into dst keeping the cap largest values, descending.
func mergeTopK(dst, src []int, cap int) []int {
	for _, v := range src {
		dst = insertTopK(dst, v, cap)
	}
	return dst
}

func insertTopK(dst []int, v, cap int) []int {
	pos := len(dst)
	for i, x := range dst {
		if v > x {
			pos = i
			break
		}
	}
	if pos >= cap {
		return dst
	}
	dst = append(dst, 0)
	copy(dst[pos+1:], dst[pos:])
	dst[pos] = v
	if len(dst) > cap {
		dst = dst[:cap]
	}
	return dst
}

// RunEpoch executes one collection round and, on adaptation periods, one
// adaptation decision.
func (r *Runner[V, P, S, R]) RunEpoch(epoch int) EpochResult[R] {
	if r.marker != nil {
		r.marker.BeginEpoch(epoch)
		defer r.marker.EndEpoch(epoch)
	}
	n := r.cfg.Graph.N()
	if r.inbox == nil {
		r.inbox = make([][]envelope[P, S], n)
	} else {
		for v := range r.inbox {
			r.inbox[v] = r.inbox[v][:0]
		}
	}
	inbox := r.inbox
	if r.contribArena == nil {
		r.contribArena = make([]uint64, n*r.words)
	} else {
		clear(r.contribArena)
	}
	r.skPool.reset()

	// Nodes transmit level by level toward the base station, deepest first
	// (§2). Envelope construction per node only reads the node's own inbox,
	// so a level's nodes can be processed concurrently; deliveries are
	// dispatched afterwards to keep inbox appends race-free.
	for level := r.maxLevel; level >= 1; level-- {
		nodes := r.byLevel[level]
		if cap(r.envScratch) < len(nodes) {
			r.envScratch = make([]envelope[P, S], len(nodes))
		}
		envs := r.envScratch[:len(nodes)]
		if r.cfg.Parallel {
			var wg sync.WaitGroup
			for i, v := range nodes {
				wg.Add(1)
				go func(i, v int) {
					defer wg.Done()
					r.buildEnvelope(epoch, v, inbox[v], &envs[i])
				}(i, v)
			}
			wg.Wait()
		} else {
			for i, v := range nodes {
				r.buildEnvelope(epoch, v, inbox[v], &envs[i])
			}
		}
		for i, v := range nodes {
			r.dispatch(epoch, v, &envs[i], inbox)
		}
	}

	// Base station evaluation (§2's SE; exact combine for tree partials).
	var treeParts []P
	var syns []S
	var exactContrib int64
	cs := sketch.New(r.cfg.ContribK)
	var topNC []int
	minNC, ncValid := 0, false
	contributors := make([]uint64, r.words)
	baseChildContrib := make(map[int]int64)
	for _, e := range inbox[topo.Base] {
		if e.isTree {
			treeParts = append(treeParts, e.p)
			exactContrib += e.contribTree
			baseChildContrib[e.from] = e.contribTree
		} else {
			syns = append(syns, e.s)
			cs.Union(e.contribSk)
			if e.ncValid {
				topNC = mergeTopK(topNC, e.topNC, r.topKCap())
				if !ncValid || e.minNC < minNC {
					minNC = e.minNC
				}
				ncValid = true
			}
		}
		orBits(contributors, e.contributors)
	}
	answer := r.cfg.Agg.EvalBase(treeParts, syns)
	estContrib := float64(exactContrib) + cs.Estimate()
	r.lastContributors = contributors

	res := EpochResult[R]{
		Epoch:       epoch,
		Answer:      answer,
		EstContrib:  estContrib,
		TrueContrib: popcount(contributors),
		DeltaSize:   r.state.DeltaSize(),
	}

	// The base station sees each direct T child's subtree contribution (or
	// its absence) and records its non-contributing count for the TD
	// strategy (see tdgraph.State.expandBaseChildren).
	for _, c := range r.cfg.Tree.Children[topo.Base] {
		if r.state.IsM(c) || !r.participates(c) {
			continue
		}
		nc := r.state.SubtreeSize(c) - int(baseChildContrib[c])
		if nc < 0 {
			nc = 0
		}
		r.lastNC[c] = nc
		topNC = insertTopK(topNC, nc, r.topKCap())
		if !ncValid || nc < minNC {
			minNC = nc
		}
		ncValid = true
	}

	// Adaptation period: the base station compares % contributing against
	// the threshold and broadcasts a switch directive (§4.2).
	// The raw fraction is deliberately not clamped at 1: the FM estimate is
	// unbiased, and clamping before averaging would bias the period mean
	// downward, preventing large deltas from ever looking "well above" the
	// threshold.
	r.fracSum += estContrib / float64(r.sensors)
	r.fracN++
	if (epoch+1)%r.cfg.AdaptEvery == 0 {
		mean := r.fracSum / float64(r.fracN)
		r.fracSum, r.fracN = 0, 0
		action, switched := r.ctrl.Decide(r.state, mean, r.lastNC, topNC, minNC)
		res.Action = action
		res.Switched = switched
		res.DeltaSize = r.state.DeltaSize()
	}
	return res
}

// Run executes epochs rounds starting at epoch 0.
func (r *Runner[V, P, S, R]) Run(epochs int) []EpochResult[R] {
	out := make([]EpochResult[R], 0, epochs)
	for e := 0; e < epochs; e++ {
		out = append(out, r.RunEpoch(e))
	}
	return out
}

// buildEnvelope assembles node v's outgoing partial result from its own
// reading and its inbox into *out. The contributor bitset lives in the
// runner's per-epoch arena — node-disjoint, so concurrent levels are safe.
func (r *Runner[V, P, S, R]) buildEnvelope(epoch, v int, in []envelope[P, S], out *envelope[P, S]) {
	agg := r.cfg.Agg
	own := agg.Local(epoch, v, r.cfg.Value(r.valueEpoch(epoch, v), v))
	contributors := r.contribArena[v*r.words : (v+1)*r.words]
	setBit(contributors, v)

	if !r.state.IsM(v) {
		// Tree vertex: fold children's exact partials (only tree envelopes
		// can arrive — multi-path broadcasts are never incorporated by T
		// vertices, preserving Edge Correctness).
		p := own
		contrib := int64(1)
		for i := range in {
			e := &in[i]
			if !e.isTree {
				continue
			}
			p = agg.MergeTree(p, e.p)
			contrib += e.contribTree
			orBits(contributors, e.contributors)
		}
		p = agg.FinalizeTree(epoch, v, p)
		*out = envelope[P, S]{
			from: v, isTree: true, p: p,
			contribTree: contrib, contributors: contributors,
		}
		return
	}

	// Multi-path vertex: start from the conversion of the node's own local
	// result, fuse incoming synopses, and convert incoming tree partials at
	// the tributary/delta boundary (§5, Figure 3).
	s := agg.Convert(epoch, v, own)
	cs := sketch.New(r.cfg.ContribK)
	cs.AddCount(r.contribSeed(epoch), uint64(v), 1)
	subtreeContrib := int64(1)
	var topNC []int
	minNC, ncValid := 0, false
	for i := range in {
		e := &in[i]
		if e.isTree {
			s = agg.Fuse(s, agg.Convert(epoch, e.from, e.p))
			cs.AddCount(r.contribSeed(epoch), uint64(e.from), e.contribTree)
			subtreeContrib += e.contribTree
		} else {
			s = agg.Fuse(s, e.s)
			cs.Union(e.contribSk)
			if e.ncValid {
				topNC = mergeTopK(topNC, e.topNC, r.topKCap())
				if !ncValid || e.minNC < minNC {
					minNC = e.minNC
				}
				ncValid = true
			}
		}
		orBits(contributors, e.contributors)
	}
	// A frontier M vertex roots a unique all-T tree subtree (§4.2 footnote
	// 3) and reports how many of its nodes did not contribute.
	if r.state.IsFrontierM(v) {
		nc := r.state.SubtreeSize(v) - int(subtreeContrib)
		if nc < 0 {
			nc = 0
		}
		r.lastNC[v] = nc
		topNC = insertTopK(topNC, nc, r.topKCap())
		if !ncValid || nc < minNC {
			minNC = nc
		}
		ncValid = true
	}
	*out = envelope[P, S]{
		from: v, isTree: false, s: s,
		contribSk: cs, topNC: topNC, minNC: minNC, ncValid: ncValid,
		contributors: contributors,
	}
}

// encodeFrame serializes v's outgoing envelope into the runner's scratch
// buffer and returns the framed bytes. The returned slice is valid until
// the next encodeFrame call.
func (r *Runner[V, P, S, R]) encodeFrame(epoch int, env *envelope[P, S]) []byte {
	we := wire.Envelope{Epoch: uint32(epoch), From: uint32(env.from)}
	if env.isTree {
		we.Kind = wire.KindTree
		we.Contrib = env.contribTree
		r.payloadBuf = r.cfg.Agg.AppendPartial(r.payloadBuf[:0], env.p)
	} else {
		we.Kind = wire.KindSynopsis
		r.contribBuf = env.contribSk.AppendWire(r.contribBuf[:0])
		we.ContribSketch = r.contribBuf
		we.TopNC = env.topNC
		we.MinNC = env.minNC
		we.NCValid = env.ncValid
		r.payloadBuf = r.cfg.Agg.AppendSynopsis(r.payloadBuf[:0], env.s)
	}
	we.Payload = r.payloadBuf
	r.encBuf = wire.AppendEnvelope(r.encBuf[:0], &we)
	return r.encBuf
}

// decodeFrame reconstructs an envelope from received bytes into *dst. The
// runner produced the frame itself, so a decode failure is a codec bug, not
// a network condition — it panics rather than silently dropping data.
func (r *Runner[V, P, S, R]) decodeFrame(frame []byte, dst *envelope[P, S]) {
	we, err := wire.DecodeEnvelope(frame)
	if err != nil {
		panic(fmt.Sprintf("runner: corrupt frame: %v", err))
	}
	dst.from = int(we.From)
	switch we.Kind {
	case wire.KindTree:
		dst.isTree = true
		p, err := r.cfg.Agg.DecodePartial(we.Payload)
		if err != nil {
			panic(fmt.Sprintf("runner: corrupt tree partial from %d: %v", dst.from, err))
		}
		dst.p = p
		dst.contribTree = we.Contrib
	case wire.KindSynopsis:
		s, err := r.cfg.Agg.DecodeSynopsis(we.Payload)
		if err != nil {
			panic(fmt.Sprintf("runner: corrupt synopsis from %d: %v", dst.from, err))
		}
		cs := r.skPool.get()
		if err := cs.LoadWire(we.ContribSketch); err != nil {
			panic(fmt.Sprintf("runner: corrupt contributing sketch from %d: %v", dst.from, err))
		}
		dst.s = s
		dst.contribSk = cs
		dst.topNC = we.TopNC
		dst.minNC = we.MinNC
		dst.ncValid = we.NCValid
	}
}

// dispatch transmits v's envelope as an encoded frame: unicast with
// retransmissions toward the tree parent for T vertices, a single broadcast
// up the rings for M vertices. Energy accounting charges the encoded byte
// length of every radio transmission; a lost frame is dropped whole, and
// receivers decode the actual bytes. A broadcast is decoded once and the
// result shared among its receivers — fusion treats inputs as read-only, so
// this is indistinguishable from per-receiver decoding and keeps the
// simulator's hot path linear in deliveries, not in decode work.
func (r *Runner[V, P, S, R]) dispatch(epoch, v int, env *envelope[P, S], inbox [][]envelope[P, S]) {
	frame := r.encodeFrame(epoch, env)
	level := r.schedLevel[v]
	if env.isTree {
		parent := r.cfg.Tree.Parent[v]
		if parent == -1 {
			return
		}
		for attempt := 0; attempt <= r.cfg.TreeRetransmits; attempt++ {
			r.Stats.AddTxBytes(v, level, len(frame))
			if r.transport.Deliver(epoch, attempt, v, parent, frame) {
				inbox[parent] = append(inbox[parent], envelope[P, S]{})
				recv := &inbox[parent][len(inbox[parent])-1]
				r.decodeFrame(frame, recv)
				recv.contributors = env.contributors
				break
			}
			r.Stats.AddLoss(v)
		}
		return
	}
	r.Stats.AddTxBytes(v, level, len(frame)) // one broadcast, many potential receivers
	var recv envelope[P, S]
	decoded := false
	for _, u := range r.cfg.Rings.Up[v] {
		if !r.state.IsM(u) {
			continue // T vertices ignore synopses (Edge Correctness)
		}
		if r.transport.Deliver(epoch, 0, v, u, frame) {
			if !decoded {
				r.decodeFrame(frame, &recv)
				recv.contributors = env.contributors
				decoded = true
			}
			inbox[u] = append(inbox[u], recv)
		} else {
			r.Stats.AddLoss(v)
		}
	}
}

func setBit(bits []uint64, i int) { bits[i/64] |= 1 << uint(i%64) }

func orBits(dst, src []uint64) {
	for i := range src {
		dst[i] |= src[i]
	}
}

func popcount(b []uint64) int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// RMSError computes the paper's relative root-mean-square error over a set
// of answers: (1/V)·sqrt(Σ(Vt−V)²/T) — §7.3 — for scalar answers. It lives
// here for convenience of scalar runners; richer statistics are in
// internal/stats.
func RMSError(answers []float64, truth []float64) float64 {
	if len(answers) == 0 || len(answers) != len(truth) {
		return math.NaN()
	}
	sum := 0.0
	meanV := 0.0
	for i := range answers {
		d := answers[i] - truth[i]
		sum += d * d
		meanV += truth[i]
	}
	meanV /= float64(len(truth))
	if meanV == 0 {
		return math.NaN()
	}
	return math.Sqrt(sum/float64(len(answers))) / meanV
}
