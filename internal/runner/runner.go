// Package runner executes Tributary-Delta collection rounds: one aggregate
// answer per epoch, computed level-by-level over the current labeled
// topology exactly as §2 and §3 describe — tree vertices unicast exact
// partial results to their parents, multi-path vertices broadcast synopses
// to the ring above, and the tributary/delta boundary applies the conversion
// function. Messages piggyback an approximate contributing Count (exact
// integers in the tributaries, a small FM sketch in the delta), from which
// the base station drives the §4.2 adaptation strategies.
//
// Every transmission goes over the wire for real: the sender's partial or
// synopsis is serialized by the aggregate's codec into a framed
// internal/wire Envelope, energy accounting charges the encoded byte
// length, losses drop whole frames, and receivers decode actual bytes. The
// codecs are lossless, so results are bit-identical to an in-memory
// hand-off — but sizes can never drift from reality, and the Transport seam
// lets a future networked backend replace the in-process simulator.
//
// Execution is a level-parallel wave engine: the nodes of one ring level
// are independent (synopsis diffusion's own observation), so each level's
// envelope construction and frame decoding shard across a bounded worker
// pool while delivery — the part whose order defines the schedule — stays
// on one dispatch goroutine. Every stochastic decision is a pure function
// of (seed, epoch, ids) split through internal/xrand, so answers are
// bit-identical across worker counts, including the sequential Workers=1
// engine.
//
// The runner also maintains ground truth: every envelope is accompanied by
// a bitset of the sensors actually represented in it, so experiments can
// separate communication error from approximation error (Table 1's error
// decomposition). The bitset is simulator metadata — it rides next to the
// frame, never inside it, and is not charged to the energy accounting.
package runner

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"time"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/tdgraph"
	"tributarydelta/internal/topo"
	"tributarydelta/internal/wire"
	"tributarydelta/internal/xrand"
)

// Mode selects the aggregation scheme under test.
type Mode uint8

const (
	// ModeTree is the TAG baseline: every sensor runs the tree scheme.
	ModeTree Mode = iota
	// ModeMultipath is the SD baseline: every sensor runs synopsis
	// diffusion over rings.
	ModeMultipath
	// ModeTDCoarse adapts the delta region with the TD-Coarse strategy.
	ModeTDCoarse
	// ModeTD adapts the delta region with the fine-grained TD strategy.
	ModeTD
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeTree:
		return "TAG"
	case ModeMultipath:
		return "SD"
	case ModeTDCoarse:
		return "TD-Coarse"
	case ModeTD:
		return "TD"
	}
	return "?"
}

// Config assembles a simulation: topology, network, aggregate and policy.
type Config[V, P, S, R any] struct {
	Graph *topo.Graph
	Rings *topo.Rings
	Tree  *topo.Tree
	Net   *network.Net
	Agg   aggregate.Aggregate[V, P, S, R]
	// Value supplies node readings per epoch (the stream of §2). It must be
	// safe for concurrent calls with distinct nodes — the wave engine builds
	// a level's envelopes in parallel. The pure-function workloads used
	// everywhere satisfy this for free.
	Value func(epoch, node int) V
	Mode  Mode
	// Threshold is the user-specified minimum contributing fraction
	// (default 0.90, as in §7.1).
	Threshold float64
	// ShrinkMargin is the slack above Threshold before shrinking ("well
	// above the threshold", §4.2; default 0.08, so the equilibrium sits
	// above the 90% floor rather than at it).
	ShrinkMargin float64
	// AdaptEvery is the adaptation period in epochs (default 10, §7.1).
	AdaptEvery int
	// InitialDeltaLevels seeds the delta region for the TD modes (default
	// 1: the base station's radio neighbourhood).
	InitialDeltaLevels int
	// TreeRetransmits is the number of extra unicast attempts tree nodes
	// make after a loss (0 = the paper's default no-retransmission setup;
	// 2 = the Figure 9(b) configuration).
	TreeRetransmits int
	// ContribK is the bitmap count of the piggybacked contributing-Count
	// sketch (default 40 — the standard Count bit vector of Figure 3, whose
	// ~12% error is accurate enough to steer the 90% threshold).
	ContribK int
	// TopK enables the §4.2 top-k TD expansion heuristic: messages carry
	// the k largest non-contributing subtree counts and expansion targets
	// every subtree at or above the k-th. 0 (default) uses the "max/2"
	// rule over the single largest value.
	TopK int
	// Pipelined runs the §2 pipelined collection: level i processes epoch
	// e while level i+1 already processes e+1, so a node at depth l folds
	// the reading it took maxLevel−l epochs ago. Latency per result drops
	// to one level slot after the pipeline fills; answers mix readings
	// across a window of maxLevel epochs (the documented TAG behaviour for
	// slowly varying signals).
	Pipelined bool
	// Seed drives all the run's randomness.
	Seed uint64
	// Transport overrides frame delivery. Nil uses the in-process simulator
	// over Net — the only mode today; the seam exists so a networked
	// backend can carry the very same frames later.
	Transport Transport
	// Stats, if non-nil, is the accumulator the runner records energy
	// metrics into; nil allocates a fresh one. Sharing the object with a
	// transport backend lets its receive-side accounting land next to the
	// runner's send-side accounting.
	Stats *network.Stats
	// Workers bounds the wave engine's worker pool: each level's
	// independent nodes shard across up to Workers goroutines for envelope
	// construction and frame decoding. 0 selects GOMAXPROCS; 1 runs every
	// wave inline on the calling goroutine (the sequential engine).
	// Answers are bit-identical across worker counts — every stochastic
	// decision is a pure function of (seed, epoch, ids), see
	// internal/xrand.
	Workers int
	// NoMemo disables the epoch-over-epoch synopsis memoization (see
	// memo.go) even when the aggregate supports it — the A/B lever behind
	// the bench guards. Answers are bit-identical either way.
	NoMemo bool
	// NoBatchFuse disables the fused multi-sketch unions: inbox synopses
	// fold through one aggregate.SynopsisBatchFuser pass and contributing-
	// Count sketches through one sketch.UnionAllInto pass when batching is
	// on; off reverts to a Fuse/Union call per sender — the A/B lever
	// behind the fused-union bench guard. Every batched operation is a
	// pure bitwise OR, so answers are bit-identical either way.
	NoBatchFuse bool
	// Churn is an optional scripted node-churn schedule: nodes dying,
	// rejoining and re-parenting at fixed epochs, applied before the
	// epoch's first transmission. The schedule is validated up front (New
	// fails on an infeasible event) and is part of the run's identity:
	// answers under a fixed schedule are bit-identical across worker
	// counts and transports. A down node stays in the contributing-%
	// denominator — exactly the non-contributing pressure the §4.2
	// adaptation strategies are built to absorb. When a schedule is
	// present the runner clones Tree, so churn never mutates the caller's
	// topology.
	Churn []ChurnEvent
}

// ChurnKind selects a scripted churn event's effect.
type ChurnKind uint8

const (
	// ChurnDown silences a node: it stops transmitting and everything sent
	// to it is lost. Its sensors stay in the contributing-% denominator.
	ChurnDown ChurnKind = iota
	// ChurnUp revives a previously downed node in place.
	ChurnUp
	// ChurnReparent moves a node's tree link to a new parent (a radio
	// neighbour; in the TD modes also one ring closer to the base, the
	// §4.1 closure requirement).
	ChurnReparent
)

// ChurnEvent is one scripted topology change, applied at the start of
// epoch Epoch (before any transmission of that epoch).
type ChurnEvent struct {
	Epoch int
	Kind  ChurnKind
	// Node is the affected sensor. The base station cannot churn.
	Node int
	// NewParent is the target of a ChurnReparent; ignored otherwise.
	NewParent int
}

// EpochResult is one collection round's outcome.
type EpochResult[R any] struct {
	Epoch int
	// Answer is the base station's evaluated result.
	Answer R
	// EstContrib is the base station's (approximate) count of contributing
	// sensors — what adaptation decisions are based on.
	EstContrib float64
	// TrueContrib is the exact number of sensors represented in the answer
	// (ground truth from the simulator).
	TrueContrib int
	// DeltaSize is the delta region size after this round's adaptation.
	DeltaSize int
	// Action is the adaptation action taken after this round.
	Action tdgraph.Action
	// Switched is the number of vertices switched by Action.
	Switched int
}

// Runner executes collection rounds. Construct with New.
type Runner[V, P, S, R any] struct {
	cfg   Config[V, P, S, R]
	state *tdgraph.State
	ctrl  *tdgraph.Controller
	// Stats accumulates per-node energy metrics across all epochs run.
	Stats *network.Stats
	// lastNC is each switchable M vertex's most recent count of
	// non-contributing subtree nodes (node-local memory in §4.2).
	lastNC []int
	// fracSum/fracN average the noisy contributing estimates between
	// adaptation periods, so decisions see the period mean rather than one
	// ±12% FM observation.
	fracSum float64
	fracN   int
	// schedLevel orders transmissions: ring level in multi-path and TD
	// modes, tree depth in pure-tree mode (TAG trees may use same-ring
	// parents).
	schedLevel []int
	maxLevel   int
	sensors    int // reachable sensors (the denominator of % contributing)
	words      int // bitset words per envelope
	// lastContributors is the ground-truth bitset of the most recent epoch,
	// exposed for diagnostics and tests; it is overwritten by the next
	// epoch.
	lastContributors []uint64
	// transport carries encoded frames (the simulator unless overridden);
	// marker is its optional epoch-barrier extension, resolved once.
	transport Transport
	marker    EpochMarker
	// rec is the aggregate's optional synopsis-recycling fast path,
	// resolved once; nil falls back to the allocating Convert/Decode.
	rec aggregate.SynopsisRecycler[P, S]
	// memo is the aggregate's optional cross-epoch memoization extension
	// (resolved once); memoState carries the per-node caches and memoOn
	// whether the current epoch runs with memoization engaged. See memo.go.
	memo      aggregate.SynopsisMemoizer[P, S]
	memoState []nodeMemo[P, S]
	memoOn    bool
	// fuser is the aggregate's optional batch-fusion extension (resolved
	// once, absent under Config.NoBatchFuse): a node's whole inbox of
	// synopses folds in one pass instead of one Fuse call per sender.
	// batchUnions gates the analogous one-pass fold of contributing-Count
	// sketches — plain bitwise OR, so it needs nothing from the aggregate.
	fuser       aggregate.SynopsisBatchFuser[S]
	batchUnions bool
	// trackNC engages the §4.2 non-contributing-count bookkeeping (frontier
	// subtree NC counts, top-k merge, wire hints). Only the TD expansion
	// strategy consumes them — StrategyNone (pure multipath) and the coarse
	// strategy decide on the contributing fraction alone, so their runs skip
	// the bookkeeping and their frames stop carrying the hints.
	trackNC bool
	// keysStable reports that neither hash-reseeding period rolled over
	// since the last epoch; memoPrimed that prevAggKey/prevContribKey hold
	// a recorded epoch's keys.
	keysStable     bool
	memoPrimed     bool
	prevAggKey     uint64
	prevContribKey uint64
	// contribArena backs every node's ground-truth contributor bitset for
	// one epoch: node v owns contribArena[v*words:(v+1)*words]. The regions
	// are disjoint, so the parallel build phase writes them race-free, and
	// the arena is cleared (not reallocated) between epochs.
	contribArena []uint64
	// byLevel is the transmission schedule: the participating nodes of
	// each level. Static within a run unless a ChurnReparent fires in tree
	// mode (depths change), which rebuilds it via rebuildSchedule.
	byLevel [][]int
	// levelOff maps a level to the offset of its first slot in the
	// epoch-wide envs/frames arenas; level l's senders occupy slots
	// [levelOff[l], levelOff[l]+len(byLevel[l])). Rebuilt with byLevel.
	levelOff []int
	// churn is the validated, epoch-sorted churn schedule; churnNext the
	// next unapplied event; down the current liveness mask (down nodes
	// neither transmit nor receive but stay in the sensors denominator).
	churn     []ChurnEvent
	churnNext int
	down      []bool
	// inbox holds each receiver's arrivals as slot indices into the
	// epoch-wide arenas — an inbox entry is a 4-byte reference, not an
	// envelope copy, so a broadcast delivered to many parents shares one
	// decoded envelope. Buffers are retained across epochs (lengths reset,
	// capacity kept).
	inbox [][]int32
	// envs is the epoch-wide arena of outgoing envelopes, one slot per
	// participating sender, laid out level-major (see levelOff).
	// buildEnvelope fully overwrites each slot every epoch.
	envs []envelope[P, S]
	// frames is the parallel arena of encoded outgoing frames and, for
	// frames that reached at least one receiver, their decoded shared
	// envelope. Each sender's buffer persists across epochs (recycled via
	// buf[:0]), which is also what the epoch-over-epoch frame memoization
	// reuses.
	frames []frameSlot[P, S]
	// arrivals is the level's delivery record in schedule order — the
	// deterministic sequence the fill phase appends receiver inboxes in.
	arrivals []arrival

	// Wave engine state.
	workers int
	ws      []*workerState[P, S]
	// startCh/doneCh coordinate the helper goroutines: a task on startCh
	// carries the shard closure and a shard id; every completed shard
	// answers on doneCh. Helpers retire when startCh closes — explicitly
	// via Close, or through cleanup when an unclosed runner is collected.
	startCh chan waveTask
	doneCh  chan struct{}
	cleanup runtime.Cleanup
	// shardFn is the one closure binding the helpers to this runner's
	// phase state, created once.
	shardFn func(w int)
	spawned int // live helper goroutines (this epoch)
	// curPhase/curEpoch/curNodes/curOff/curStride describe the engaged
	// phase for the helpers; written before the startCh sends that publish
	// them.
	curPhase  int
	curEpoch  int
	curNodes  []int
	curOff    int
	curStride int
	// phaseNS estimates the sequential per-item cost of each parallel phase
	// (EWMA of measured wall time) — the gate that keeps cheap waves (a TAG
	// level of trivial integer folds) inline instead of paying wake-up
	// latency for no win. phaseTick counts parallel engagements per phase:
	// every probeEvery-th one runs inline instead, so the estimate is
	// periodically re-anchored to a true sequential measurement (a parallel
	// measurement scaled by the stride overestimates sequential cost on an
	// oversubscribed host, where shards serialize anyway).
	phaseNS   [2]float64
	phaseTick [2]int

	// Base-station evaluation scratch, reused epoch to epoch so the
	// steady-state loop allocates nothing.
	baseCS           *sketch.Sketch
	baseTreeParts    []P
	baseSyns         []S
	baseContrib      []uint64
	baseChildContrib map[int]int64
	baseTopNC        []int
	baseContribSrcs  []*sketch.Sketch
}

// Wave phases.
const (
	phaseBuild  = iota // construct + encode a level's envelopes
	phaseDecode        // decode the level's delivered frames (once per frame)
)

// minParallelPhaseNS is the estimated sequential phase cost below which a
// wave runs inline: waking helpers costs a few microseconds, so a phase
// must have at least this much divisible work before parallelism can win.
const minParallelPhaseNS = 24000

// probeEvery is how often an engaged phase runs inline anyway, to
// re-anchor the cost estimate with a true sequential measurement.
const probeEvery = 64

// arrival records one successful delivery: receiver and the index of the
// sender's frame in the level's frame table.
type arrival struct {
	to, frame int32
}

// waveTask is one helper engagement: run fn(w), or retire when fn is nil.
type waveTask struct {
	fn func(w int)
	w  int
}

// waveWorkerLoop is a helper goroutine's body: process shard tasks until
// the task channel closes. It is a plain function of its channels (not a
// method), so an idle helper keeps only the channels alive — never the
// runner — which is what lets a cleanup close the channel and retire the
// helpers once the runner itself is unreachable.
func waveWorkerLoop(startCh chan waveTask, doneCh chan struct{}) {
	for t := range startCh {
		t.fn(t.w)
		doneCh <- struct{}{}
	}
}

// frameSlot is one sender's encoded frame plus its decoded envelope. A
// broadcast is decoded once and the envelope struct shared among its
// receivers — fusion treats inputs as read-only, so this is
// indistinguishable from per-receiver decoding and keeps decode work linear
// in frames, not deliveries.
type frameSlot[P, S any] struct {
	buf    []byte
	env    envelope[P, S]
	needed bool
	// epochLen is the byte width of the epoch uvarint in buf — what lets a
	// memoized frame patch its epoch header in place (see patchFrameEpoch).
	epochLen uint8
}

// workerState is one wave worker's private scratch: the reusable decode
// arena, the recycled contributing-Count and synopsis pools, the outgoing
// top-NC buffer and the encode buffers. Workers never share scratch, so the
// parallel phases run without locks; pools reset each epoch.
type workerState[P, S any] struct {
	dec        wire.Decoder
	skPool     contribSketchPool
	synPool    []S
	synNext    int
	topNC      []int
	payloadBuf []byte
	contribBuf []byte
	// fuseSrcs/contribSrcs gather one node's fusion inputs for the batched
	// single-pass folds; the worker owns them, so the parallel build phase
	// stays lock-free (aggregates must not keep their own gather scratch).
	fuseSrcs    []S
	contribSrcs []*sketch.Sketch
}

// getSyn hands out a recycled synopsis from the worker's pool.
func (w *workerState[P, S]) getSyn(rec aggregate.SynopsisRecycler[P, S]) S {
	if w.synNext < len(w.synPool) {
		s := w.synPool[w.synNext]
		w.synNext++
		return s
	}
	s := rec.NewSynopsis()
	w.synPool = append(w.synPool, s)
	w.synNext++
	return s
}

// resetEpoch prepares the worker's pools for a new epoch.
func (w *workerState[P, S]) resetEpoch() {
	w.dec.Reset()
	w.skPool.reset()
	w.synNext = 0
}

// contribSketchPool hands out ContribK-bitmap sketches, recycling them each
// epoch. Pool entries are fully overwritten at reuse (LoadWire or Reset),
// never assumed clean.
type contribSketchPool struct {
	k     int
	items []*sketch.Sketch
	next  int
}

func (p *contribSketchPool) reset() { p.next = 0 }

func (p *contribSketchPool) get() *sketch.Sketch {
	if p.next < len(p.items) {
		s := p.items[p.next]
		p.next++
		return s
	}
	s := sketch.New(p.k)
	p.items = append(p.items, s)
	p.next++
	return s
}

// Transport is the delivery seam between the runner and the medium: it
// carries an already-encoded frame and reports whether it reached the
// receiver. The in-process implementation consults the loss model; a
// networked backend would put the frame on a real socket.
//
// The runner calls Deliver from a single dispatch goroutine, level by level
// (deepest first) and, for tree unicasts, once per retransmission attempt
// in increasing attempt order — the wave engine parallelizes envelope
// construction and frame decoding around the delivery phase, never the
// delivery phase itself. Returning false means the frame was lost whole —
// there is no partial delivery — and the runner records the failed attempt
// in Stats.Losses.
type Transport interface {
	// Deliver reports whether the attempt-th transmission of frame by
	// `from` during `epoch` reached `to`. Implementations must not retain
	// frame — the runner reuses the buffer.
	Deliver(epoch, attempt, from, to int, frame []byte) bool
}

// EpochMarker is an optional Transport extension: the runner brackets every
// collection round with BeginEpoch/EndEpoch so concurrent backends can
// maintain an epoch barrier — every frame delivered during epoch e is fully
// processed by its receiver's runtime before EndEpoch(e) returns, and hence
// before epoch e+1 begins.
type EpochMarker interface {
	BeginEpoch(epoch int)
	EndEpoch(epoch int)
}

// simTransport adapts network.Net to the Transport seam: delivery is a pure
// function of (seed, epoch, attempt, from, to); the frame travels by
// staying in memory. The per-epoch delivery view caches the epoch half of
// the loss hash chain; Deliver is dispatch-goroutine-only per the Transport
// contract, so the plain fields are race-free.
type simTransport struct {
	net     *network.Net
	view    network.EpochView
	viewSet bool
	viewEpo int
}

// Deliver implements Transport.
func (t *simTransport) Deliver(epoch, attempt, from, to int, _ []byte) bool {
	if !t.viewSet || t.viewEpo != epoch {
		t.view = t.net.Epoch(epoch)
		t.viewSet = true
		t.viewEpo = epoch
	}
	return t.view.Delivered(attempt, from, to)
}

type envelope[P, S any] struct {
	from   int
	isTree bool
	p      P
	s      S
	// contribTree is the exact count of sensors in a tree partial.
	contribTree int64
	// contribSk is the delta's duplicate-insensitive contributing count.
	contribSk *sketch.Sketch
	// topNC propagates the §4.2 TD statistics: the largest reported
	// non-contributing subtree counts, descending (topNC[0] is the max);
	// minNC the smallest. ncValid marks presence.
	topNC   []int
	minNC   int
	ncValid bool
	// contributors is the ground-truth bitset of represented sensors. It is
	// simulator bookkeeping, never serialized into the frame.
	contributors []uint64
}

// New validates the configuration and prepares a runner.
func New[V, P, S, R any](cfg Config[V, P, S, R]) (*Runner[V, P, S, R], error) {
	if cfg.Graph == nil || cfg.Rings == nil || cfg.Tree == nil || cfg.Net == nil {
		return nil, errors.New("runner: incomplete topology configuration")
	}
	if cfg.Agg == nil || cfg.Value == nil {
		return nil, errors.New("runner: aggregate and value source required")
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.90
	}
	if cfg.ShrinkMargin == 0 {
		cfg.ShrinkMargin = 0.08
	}
	if cfg.AdaptEvery == 0 {
		cfg.AdaptEvery = 10
	}
	if cfg.ContribK == 0 {
		cfg.ContribK = 40
	}
	if cfg.InitialDeltaLevels == 0 {
		cfg.InitialDeltaLevels = 1
	}

	if len(cfg.Churn) > 0 {
		// Reparent events mutate the tree, and callers (the facade shares
		// one scenario tree across sessions) expect theirs untouched.
		cfg.Tree = cfg.Tree.Clone()
	}

	adaptive := cfg.Mode == ModeTD || cfg.Mode == ModeTDCoarse
	if adaptive && !cfg.Tree.LinksSubsetOfRings(cfg.Graph, cfg.Rings) {
		return nil, errors.New("runner: TD modes require tree links to be rings links (§4.1)")
	}
	churn := append([]ChurnEvent(nil), cfg.Churn...)
	sort.SliceStable(churn, func(i, j int) bool { return churn[i].Epoch < churn[j].Epoch })
	if err := validateChurn(churn, cfg.Graph, cfg.Rings, cfg.Tree, cfg.Mode); err != nil {
		return nil, err
	}

	var deltaLevels int
	switch cfg.Mode {
	case ModeTree:
		deltaLevels = 0
	case ModeMultipath:
		deltaLevels = cfg.Rings.Max
	default:
		deltaLevels = cfg.InitialDeltaLevels
	}
	state := tdgraph.NewState(cfg.Graph, cfg.Rings, cfg.Tree, deltaLevels)

	var strategy tdgraph.Strategy
	switch cfg.Mode {
	case ModeTD:
		strategy = tdgraph.StrategyTD
	case ModeTDCoarse:
		strategy = tdgraph.StrategyCoarse
	default:
		strategy = tdgraph.StrategyNone
	}
	ctrl := tdgraph.NewController(strategy)
	ctrl.Threshold = cfg.Threshold
	ctrl.ShrinkMargin = cfg.ShrinkMargin
	ctrl.TopK = cfg.TopK

	n := cfg.Graph.N()
	if cfg.Stats == nil {
		cfg.Stats = network.NewStats(n)
	}
	r := &Runner[V, P, S, R]{
		cfg:        cfg,
		state:      state,
		ctrl:       ctrl,
		Stats:      cfg.Stats,
		lastNC:     make([]int, n),
		schedLevel: make([]int, n),
		words:      (n + 63) / 64,
		transport:  cfg.Transport,
		churn:      churn,
		down:       make([]bool, n),
	}
	if r.transport == nil {
		r.transport = &simTransport{net: cfg.Net}
	}
	r.marker, _ = r.transport.(EpochMarker)
	r.rec, _ = cfg.Agg.(aggregate.SynopsisRecycler[P, S])
	// The memoization extension only pays on the multi-path side; a pure
	// tree run has no synopses to cache, so it skips the bookkeeping too.
	if cfg.Mode != ModeTree {
		r.memo, _ = cfg.Agg.(aggregate.SynopsisMemoizer[P, S])
	}
	if r.memo != nil && r.rec != nil {
		r.memoState = make([]nodeMemo[P, S], n)
	} else {
		r.memo = nil
	}
	r.batchUnions = !cfg.NoBatchFuse
	if r.batchUnions {
		r.fuser, _ = cfg.Agg.(aggregate.SynopsisBatchFuser[S])
	}
	r.trackNC = strategy == tdgraph.StrategyTD
	for i := range r.lastNC {
		r.lastNC[i] = -2 // never reported
	}
	r.rebuildSchedule()
	for v := 1; v < n; v++ {
		if r.participates(v) {
			r.sensors++
		}
	}
	if r.sensors == 0 {
		return nil, errors.New("runner: no sensor can reach the base station")
	}
	r.SetWorkers(cfg.Workers)
	return r, nil
}

// rebuildSchedule recomputes the level-by-level transmission order
// (schedLevel/byLevel/levelOff) and resizes the epoch-wide envelope and
// frame arenas to one slot per participating sender. Participation and
// levels are fixed for a run except under tree-mode reparenting, whose
// depth changes re-enter here between epochs; the sensors denominator is
// deliberately NOT recomputed (see Config.Churn).
func (r *Runner[V, P, S, R]) rebuildSchedule() {
	cfg := &r.cfg
	n := cfg.Graph.N()
	depths := cfg.Tree.Depths()
	r.maxLevel = 0
	for v := 0; v < n; v++ {
		if cfg.Mode == ModeTree {
			r.schedLevel[v] = depths[v]
		} else {
			r.schedLevel[v] = cfg.Rings.Level[v]
		}
		if r.schedLevel[v] > r.maxLevel {
			r.maxLevel = r.schedLevel[v]
		}
	}
	r.byLevel = make([][]int, r.maxLevel+1)
	for v := 1; v < n; v++ {
		if r.participates(v) {
			l := r.schedLevel[v]
			if l >= 1 {
				r.byLevel[l] = append(r.byLevel[l], v)
			}
		}
	}
	// The envelope and frame arenas hold one slot per sender for the whole
	// epoch, laid out level-major, so inboxes can reference envelopes by
	// index instead of copying them.
	r.levelOff = make([]int, r.maxLevel+1)
	total := 0
	for l := 1; l <= r.maxLevel; l++ {
		r.levelOff[l] = total
		total += len(r.byLevel[l])
	}
	if total != len(r.envs) {
		r.envs = make([]envelope[P, S], total)
		r.frames = make([]frameSlot[P, S], total)
	}
}

// validateChurn simulates the schedule's tree evolution up front: RunEpoch
// has no error return, so an infeasible event must fail construction, not
// the run. Events are checked in schedule order against the evolving
// parent vector and liveness set.
func validateChurn(events []ChurnEvent, g *topo.Graph, rings *topo.Rings, tree *topo.Tree, mode Mode) error {
	if len(events) == 0 {
		return nil
	}
	n := g.N()
	parent := append([]int(nil), tree.Parent...)
	down := make([]bool, n)
	adjacent := func(a, b int) bool {
		for _, w := range g.Adj[a] {
			if w == b {
				return true
			}
		}
		return false
	}
	for i, ev := range events {
		if ev.Epoch < 0 {
			return fmt.Errorf("runner: churn event %d: negative epoch %d", i, ev.Epoch)
		}
		if ev.Node <= 0 || ev.Node >= n {
			return fmt.Errorf("runner: churn event %d: node %d out of range (the base station cannot churn)", i, ev.Node)
		}
		switch ev.Kind {
		case ChurnDown:
			if down[ev.Node] {
				return fmt.Errorf("runner: churn event %d: node %d is already down", i, ev.Node)
			}
			down[ev.Node] = true
		case ChurnUp:
			if !down[ev.Node] {
				return fmt.Errorf("runner: churn event %d: node %d is not down", i, ev.Node)
			}
			down[ev.Node] = false
		case ChurnReparent:
			p := ev.NewParent
			if p < 0 || p >= n || p == ev.Node {
				return fmt.Errorf("runner: churn event %d: invalid new parent %d for node %d", i, p, ev.Node)
			}
			if p != topo.Base && parent[p] == -1 {
				return fmt.Errorf("runner: churn event %d: new parent %d is outside the tree", i, p)
			}
			for u := p; u != -1; u = parent[u] {
				if u == ev.Node {
					return fmt.Errorf("runner: churn event %d: reparenting %d under its own subtree would cycle", i, ev.Node)
				}
			}
			if !adjacent(ev.Node, p) {
				return fmt.Errorf("runner: churn event %d: nodes %d and %d are not radio neighbours", i, ev.Node, p)
			}
			if (mode == ModeTD || mode == ModeTDCoarse) && rings.Level[p] != rings.Level[ev.Node]-1 {
				return fmt.Errorf("runner: churn event %d: TD modes require tree links to be rings links — parent %d is at ring %d, node %d at ring %d (§4.1)", i, p, rings.Level[p], ev.Node, rings.Level[ev.Node])
			}
			parent[ev.Node] = p
		default:
			return fmt.Errorf("runner: churn event %d: unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// applyChurn fires every schedule event due at or before epoch. The events
// were validated at New against the same evolution, so application cannot
// fail. Any event invalidates the synopsis memo (topology is part of the
// memo key's implicit context), and a tree-mode reparent rebuilds the
// depth-ordered transmission schedule.
func (r *Runner[V, P, S, R]) applyChurn(epoch int) {
	for r.churnNext < len(r.churn) && r.churn[r.churnNext].Epoch <= epoch {
		ev := r.churn[r.churnNext]
		r.churnNext++
		switch ev.Kind {
		case ChurnDown:
			r.down[ev.Node] = true
		case ChurnUp:
			r.down[ev.Node] = false
		case ChurnReparent:
			if err := r.state.Reparent(ev.Node, ev.NewParent); err != nil {
				panic(fmt.Sprintf("runner: validated churn event failed: %v", err))
			}
			if r.cfg.Mode == ModeTree {
				r.rebuildSchedule()
			}
		}
		r.bustMemo()
	}
}

// SetWorkers re-bounds the wave engine's worker pool: n <= 0 selects
// GOMAXPROCS, 1 the sequential inline engine. Answers do not depend on the
// worker count. It must not be called while an epoch is in flight (the
// deployment pool applies its budget between rounds).
func (r *Runner[V, P, S, R]) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	r.workers = n
	for len(r.ws) < n {
		r.ws = append(r.ws, &workerState[P, S]{
			skPool: contribSketchPool{k: r.cfg.ContribK},
			topNC:  make([]int, 0, r.topKCap()+1),
		})
	}
	// Retire the current helper generation when it no longer fits: its
	// channel is too small for a grown bound, or a shrunken bound leaves
	// surplus helpers idle forever (runPhase can never dispatch more than
	// workers−1 tasks, so the surplus would just sit on 8KB stacks).
	// Closing the channel retires all of them; the needed ones respawn
	// lazily. SetWorkers transitions are rare (pool rebalances).
	if r.startCh != nil && (cap(r.startCh) < n || r.spawned > n-1) {
		r.cleanup.Stop()
		close(r.startCh)
		r.startCh, r.doneCh, r.spawned = nil, nil, 0
	}
	if n > 1 && r.startCh == nil {
		r.startCh = make(chan waveTask, n)
		r.doneCh = make(chan struct{}, n)
		// Helpers persist between epochs (spawning is not free, and the
		// steady-state loop must not allocate); they hold only the
		// channels, so this cleanup retires them if an unclosed runner is
		// collected. Close retires them deterministically.
		r.cleanup = runtime.AddCleanup(r, func(ch chan waveTask) { close(ch) }, r.startCh)
	}
	if r.shardFn == nil {
		r.shardFn = func(w int) {
			r.phaseShard(r.curPhase, r.curEpoch, r.curNodes, r.curOff, w, r.curStride)
		}
	}
}

// Workers returns the wave engine's current worker bound.
func (r *Runner[V, P, S, R]) Workers() int { return r.workers }

// Close retires the wave engine's helper goroutines. It must not overlap a
// running epoch; it is idempotent, and a closed runner may still run epochs
// (they fall back to the sequential engine until SetWorkers re-arms the
// pool). Runners that are simply dropped without Close are also fine — a
// GC cleanup retires their helpers — but long-lived processes that hold
// closed sessions should not wait on the collector.
func (r *Runner[V, P, S, R]) Close() {
	if r.startCh == nil {
		return
	}
	r.cleanup.Stop()
	close(r.startCh)
	r.startCh = nil
	r.doneCh = nil
	r.spawned = 0
	r.workers = 1
}

// participates reports whether sensor v takes part in aggregation (reachable
// and, in tree mode, attached to the tree).
func (r *Runner[V, P, S, R]) participates(v int) bool {
	if r.cfg.Mode == ModeTree {
		return r.cfg.Tree.InTree(v) && v != topo.Base
	}
	return r.cfg.Rings.Reachable(v) && v != topo.Base
}

// ResetStats zeroes the energy accounting — used by experiments that
// measure steady-state loads after a warm-up.
func (r *Runner[V, P, S, R]) ResetStats() {
	r.Stats = network.NewStats(r.cfg.Graph.N())
}

// Levels returns the number of level slots per epoch — the latency measure
// of Table 1 (latency = epoch duration × levels).
func (r *Runner[V, P, S, R]) Levels() int { return r.maxLevel }

// Sensors returns the number of participating sensors.
func (r *Runner[V, P, S, R]) Sensors() int { return r.sensors }

// State exposes the labeled graph (read-mostly; tests also validate it).
func (r *Runner[V, P, S, R]) State() *tdgraph.State { return r.state }

// ExactAnswer computes the ground-truth answer for an epoch over all
// participating sensors that are currently up (churned-down nodes cannot
// contribute a reading, so ground truth excludes them too).
func (r *Runner[V, P, S, R]) ExactAnswer(epoch int) R {
	var vs []V
	for v := 1; v < r.cfg.Graph.N(); v++ {
		if r.participates(v) && !r.down[v] {
			vs = append(vs, r.cfg.Value(epoch, v))
		}
	}
	return r.cfg.Agg.Exact(vs)
}

// contribSeed namespaces the piggyback sketch's hash sub-stream. Like the
// aggregates' synopsis hashes, it is fixed within an adaptation period — the
// bits a (owner, count) credit sets are a pure function of identity for the
// period's epochs, which is what lets the epoch engine memoize contributing
// insertions — and re-drawn between periods, so the §4.2 decision mean
// averages independent FM realizations. Per-node disjointness comes from
// the owner ids folded into every insertion (see xrand.Split).
func (r *Runner[V, P, S, R]) contribSeed(epoch int) uint64 {
	return xrand.Split(r.cfg.Seed, 0xCB, r.contribEpochKey(epoch))
}

// contribEpochKey maps an epoch to its contributing-hash period.
func (r *Runner[V, P, S, R]) contribEpochKey(epoch int) uint64 {
	return uint64(epoch / r.cfg.AdaptEvery)
}

// topKCap is how many NC values envelopes carry: at least the controller's
// k, minimum 4 so the max/2 rule sees ties.
func (r *Runner[V, P, S, R]) topKCap() int {
	if r.cfg.TopK > 4 {
		return r.cfg.TopK
	}
	return 4
}

// valueEpoch maps a collection epoch to the epoch whose reading node v
// folds in: identical under synchronous collection, shifted by the node's
// pipeline stage when Pipelined.
func (r *Runner[V, P, S, R]) valueEpoch(epoch, v int) int {
	if !r.cfg.Pipelined {
		return epoch
	}
	e := epoch - (r.maxLevel - r.schedLevel[v])
	if e < 0 {
		e = 0
	}
	return e
}

// mergeTopK folds src into dst keeping the cap largest values, descending.
func mergeTopK(dst, src []int, cap int) []int {
	for _, v := range src {
		dst = insertTopK(dst, v, cap)
	}
	return dst
}

func insertTopK(dst []int, v, cap int) []int {
	pos := len(dst)
	for i, x := range dst {
		if v > x {
			pos = i
			break
		}
	}
	if pos >= cap {
		return dst
	}
	dst = append(dst, 0)
	copy(dst[pos+1:], dst[pos:])
	dst[pos] = v
	if len(dst) > cap {
		dst = dst[:cap]
	}
	return dst
}

// RunEpoch executes one collection round and, on adaptation periods, one
// adaptation decision.
func (r *Runner[V, P, S, R]) RunEpoch(epoch int) EpochResult[R] {
	r.applyChurn(epoch)
	if r.marker != nil {
		r.marker.BeginEpoch(epoch)
		defer r.marker.EndEpoch(epoch)
	}
	n := r.cfg.Graph.N()
	if r.inbox == nil {
		r.inbox = make([][]int32, n)
	} else {
		for v := range r.inbox {
			r.inbox[v] = r.inbox[v][:0]
		}
	}
	if r.contribArena == nil {
		r.contribArena = make([]uint64, n*r.words)
	} else {
		clear(r.contribArena)
	}
	for i := range r.frames {
		r.frames[i].needed = false
	}
	for _, ws := range r.ws[:r.workers] {
		ws.resetEpoch()
	}
	r.beginMemoEpoch(epoch)

	// Nodes transmit level by level toward the base station, deepest first
	// (§2): build+encode the level's envelopes (parallel wave), dispatch
	// deliveries in schedule order (sequential — order defines the
	// schedule), decode the delivered frames once each (parallel wave), and
	// fill receiver inboxes in delivery order — an inbox entry is the slot
	// index of the sender's decoded envelope, shared by every receiver of
	// the broadcast.
	for level := r.maxLevel; level >= 1; level-- {
		nodes := r.byLevel[level]
		if len(nodes) == 0 {
			continue
		}
		off := r.levelOff[level]

		r.runPhase(phaseBuild, epoch, nodes, off)

		r.arrivals = r.arrivals[:0]
		for i, v := range nodes {
			if r.down[v] {
				continue // churned-down nodes are silent
			}
			r.deliver(epoch, v, off+i, &r.envs[off+i])
		}

		r.runPhase(phaseDecode, epoch, nodes, off)

		for _, a := range r.arrivals {
			r.inbox[a.to] = append(r.inbox[a.to], a.frame)
		}
	}

	res := r.evalBase(epoch)
	r.Stats.Publish()
	return res
}

// evalBase is the base station's §2 evaluation (SE; exact combine for tree
// partials) plus the §4.2 adaptation decision on period boundaries. All its
// scratch is runner-owned and recycled, so steady-state epochs allocate
// nothing here.
func (r *Runner[V, P, S, R]) evalBase(epoch int) EpochResult[R] {
	treeParts := r.baseTreeParts[:0]
	syns := r.baseSyns[:0]
	var exactContrib int64
	if r.baseCS == nil {
		r.baseCS = sketch.New(r.cfg.ContribK)
		r.baseContrib = make([]uint64, r.words)
		r.baseChildContrib = make(map[int]int64)
		r.baseTopNC = make([]int, 0, r.topKCap()+1)
	}
	cs := r.baseCS
	cs.Reset()
	contribSrcs := r.baseContribSrcs[:0]
	contributors := r.baseContrib
	clear(contributors)
	baseChildContrib := r.baseChildContrib
	clear(baseChildContrib)
	topNC := r.baseTopNC[:0]
	minNC, ncValid := 0, false
	for _, idx := range r.inbox[topo.Base] {
		e := &r.frames[idx].env
		if e.isTree {
			treeParts = append(treeParts, e.p)
			exactContrib += e.contribTree
			baseChildContrib[e.from] = e.contribTree
		} else {
			syns = append(syns, e.s)
			if r.batchUnions {
				contribSrcs = append(contribSrcs, e.contribSk)
			} else {
				cs.Union(e.contribSk)
			}
			if r.trackNC && e.ncValid {
				topNC = mergeTopK(topNC, e.topNC, r.topKCap())
				if !ncValid || e.minNC < minNC {
					minNC = e.minNC
				}
				ncValid = true
			}
		}
		orBits(contributors, e.contributors)
	}
	if len(contribSrcs) > 0 {
		// cs was just Reset, so the plain overwrite semantics of the fused
		// union are exactly right here.
		sketch.UnionAllInto(cs, contribSrcs...)
	}
	r.baseContribSrcs = contribSrcs
	answer := r.cfg.Agg.EvalBase(treeParts, syns)
	estContrib := float64(exactContrib) + cs.Estimate()
	r.lastContributors = contributors
	r.baseTreeParts = treeParts
	r.baseSyns = syns

	res := EpochResult[R]{
		Epoch:       epoch,
		Answer:      answer,
		EstContrib:  estContrib,
		TrueContrib: popcount(contributors),
		DeltaSize:   r.state.DeltaSize(),
	}

	// The base station sees each direct T child's subtree contribution (or
	// its absence) and records its non-contributing count for the TD
	// strategy (see tdgraph.State.expandBaseChildren); only that strategy
	// reads the counts.
	if r.trackNC {
		for _, c := range r.cfg.Tree.Children[topo.Base] {
			if r.state.IsM(c) || !r.participates(c) {
				continue
			}
			nc := r.state.SubtreeSize(c) - int(baseChildContrib[c])
			if nc < 0 {
				nc = 0
			}
			r.lastNC[c] = nc
			topNC = insertTopK(topNC, nc, r.topKCap())
			if !ncValid || nc < minNC {
				minNC = nc
			}
			ncValid = true
		}
	}
	r.baseTopNC = topNC[:0]

	// Adaptation period: the base station compares % contributing against
	// the threshold and broadcasts a switch directive (§4.2).
	// The raw fraction is deliberately not clamped at 1: the FM estimate is
	// unbiased, and clamping before averaging would bias the period mean
	// downward, preventing large deltas from ever looking "well above" the
	// threshold.
	r.fracSum += estContrib / float64(r.sensors)
	r.fracN++
	if (epoch+1)%r.cfg.AdaptEvery == 0 {
		mean := r.fracSum / float64(r.fracN)
		r.fracSum, r.fracN = 0, 0
		action, switched := r.ctrl.Decide(r.state, mean, r.lastNC, topNC, minNC)
		res.Action = action
		res.Switched = switched
		res.DeltaSize = r.state.DeltaSize()
		if switched > 0 {
			// The relabeling moved the tributary/delta boundary: every cached
			// conversion owner and frame is suspect.
			r.bustMemo()
		}
	}
	return res
}

// Run executes epochs rounds starting at epoch 0.
func (r *Runner[V, P, S, R]) Run(epochs int) []EpochResult[R] {
	out := make([]EpochResult[R], 0, epochs)
	for e := 0; e < epochs; e++ {
		out = append(out, r.RunEpoch(e))
	}
	return out
}

// runPhase executes one parallel wave phase over the level's nodes: on the
// calling goroutine alone when the estimated sequential cost is below the
// wake-up break-even (or Workers is 1), across the helper pool otherwise.
// The shard assignment (i ≡ w mod stride) depends only on the worker bound
// and the level width — never on whether helpers were engaged — so each
// worker state's pools see a stable node subset and reach a fixed
// steady-state size even as the adaptive gate flips a level between inline
// and parallel execution. (Results don't depend on the assignment either
// way: every scratch object is fully overwritten at reuse.)
func (r *Runner[V, P, S, R]) runPhase(phase, epoch int, nodes []int, off int) {
	stride := r.workers
	if stride > len(nodes) {
		stride = len(nodes)
	}
	engage := stride > 1 && r.phaseNS[phase]*float64(len(nodes)) >= minParallelPhaseNS
	if engage {
		r.phaseTick[phase]++
		engage = r.phaseTick[phase]%probeEvery != 0
	}
	if !engage {
		//lint:ignore determinism EWMA phase-gate timing; it only picks inline vs parallel execution, and answers are pinned bit-identical at every worker count
		start := time.Now()
		for w := 0; w < stride; w++ {
			r.phaseShard(phase, epoch, nodes, off, w, stride)
		}
		//lint:ignore determinism EWMA phase-gate timing; it only picks inline vs parallel execution, and answers are pinned bit-identical at every worker count
		r.observePhase(phase, len(nodes), time.Since(start))
		return
	}
	r.ensureWorkers()
	r.curPhase, r.curEpoch, r.curNodes, r.curOff, r.curStride = phase, epoch, nodes, off, stride
	for w := 1; w < stride; w++ {
		r.startCh <- waveTask{fn: r.shardFn, w: w}
	}
	r.phaseShard(phase, epoch, nodes, off, 0, stride)
	for w := 1; w < stride; w++ {
		<-r.doneCh
	}
}

// observePhase updates the per-item sequential cost estimate (EWMA). Only
// inline runs feed it — parallel wall time is not a clean sequential
// signal (dividing by concurrency assumes the shards actually ran
// concurrently, which an oversubscribed host does not deliver), so engaged
// phases refresh the estimate through the periodic inline probe instead.
func (r *Runner[V, P, S, R]) observePhase(phase, items int, elapsed time.Duration) {
	per := float64(elapsed.Nanoseconds()) / float64(items)
	if r.phaseNS[phase] == 0 {
		r.phaseNS[phase] = per
		return
	}
	r.phaseNS[phase] = 0.75*r.phaseNS[phase] + 0.25*per
}

// ensureWorkers lazily spawns the helper goroutines (workers−1 of them; the
// dispatch goroutine is worker 0). Helpers persist until the runner's
// cleanup closes their task channel.
func (r *Runner[V, P, S, R]) ensureWorkers() {
	for r.spawned < r.workers-1 {
		r.spawned++
		go waveWorkerLoop(r.startCh, r.doneCh)
	}
}

// phaseShard runs worker w's share (i ≡ w mod stride) of a phase; off is the
// level's base slot in the epoch-wide arenas.
//
//td:hotpath
func (r *Runner[V, P, S, R]) phaseShard(phase, epoch int, nodes []int, off, w, stride int) {
	ws := r.ws[w]
	switch phase {
	case phaseBuild:
		for i := w; i < len(nodes); i += stride {
			v := nodes[i]
			slot := off + i
			if r.memoOn && r.tryReuseFrame(epoch, v, slot) {
				continue
			}
			r.buildEnvelope(ws, epoch, v, r.inbox[v], &r.envs[slot])
			r.encodeFrame(ws, epoch, &r.envs[slot], &r.frames[slot])
			if r.memoOn {
				r.recordMemo(v)
			}
		}
	case phaseDecode:
		for i := w; i < len(nodes); i += stride {
			f := &r.frames[off+i]
			if !f.needed {
				continue
			}
			r.decodeFrame(ws, f.buf, &f.env)
			f.env.contributors = r.envs[off+i].contributors
		}
	}
}

// buildEnvelope assembles node v's outgoing partial result from its own
// reading and its inbox into *out, drawing every recycled object from the
// calling worker's private scratch. The contributor bitset lives in the
// runner's per-epoch arena — node-disjoint, so concurrent shards are safe.
//
//td:hotpath
func (r *Runner[V, P, S, R]) buildEnvelope(ws *workerState[P, S], epoch, v int, in []int32, out *envelope[P, S]) {
	agg := r.cfg.Agg
	own := agg.Local(epoch, v, r.cfg.Value(r.valueEpoch(epoch, v), v))
	contributors := r.contribArena[v*r.words : (v+1)*r.words]
	setBit(contributors, v)

	if !r.state.IsM(v) {
		// Tree vertex: fold children's exact partials (only tree envelopes
		// can arrive — multi-path broadcasts are never incorporated by T
		// vertices, preserving Edge Correctness).
		p := own
		contrib := int64(1)
		for _, idx := range in {
			e := &r.frames[idx].env
			if !e.isTree {
				continue
			}
			p = agg.MergeTree(p, e.p)
			contrib += e.contribTree
			orBits(contributors, e.contributors)
		}
		p = agg.FinalizeTree(epoch, v, p)
		*out = envelope[P, S]{
			from: v, isTree: true, p: p,
			contribTree: contrib, contributors: contributors,
		}
		return
	}

	// Multi-path vertex: start from the conversion of the node's own local
	// result, fuse incoming synopses, and convert incoming tree partials at
	// the tributary/delta boundary (§5, Figure 3). With memoization engaged,
	// conversions flow through the per-node caches: the own-base synopsis and
	// each boundary child's products are rebuilt only when their inputs
	// changed (see memo.go).
	var nm *nodeMemo[P, S]
	var s S
	batch := r.fuser != nil
	if batch {
		ws.fuseSrcs = ws.fuseSrcs[:0]
	}
	if r.memoOn {
		nm = &r.memoState[v]
		if !nm.ownValid || !r.memo.PartialEqual(nm.ownP, own) {
			if !nm.ownSynSet {
				nm.ownSyn = r.rec.NewSynopsis()
				nm.ownSynSet = true
			}
			nm.ownSyn = r.rec.ConvertInto(epoch, v, own, nm.ownSyn)
			nm.ownP = own
			nm.ownValid = true
		}
		if batch {
			// FuseAll overwrites its accumulator, so the cached own-base
			// synopsis joins the source list instead of being copied first.
			s = ws.getSyn(r.rec)
			ws.fuseSrcs = append(ws.fuseSrcs, nm.ownSyn)
		} else {
			s = r.memo.CopySynopsisInto(ws.getSyn(r.rec), nm.ownSyn)
		}
	} else {
		s = r.convert(ws, epoch, v, own)
		if batch {
			// s carries real content here: listing the accumulator among
			// the sources makes FuseAll fold it rather than overwrite it.
			ws.fuseSrcs = append(ws.fuseSrcs, s)
		}
	}
	cs := ws.skPool.get()
	cs.Reset()
	cs.AddCount(r.contribSeed(epoch), uint64(v), 1)
	if r.batchUnions {
		// Same accumulator-among-sources trick: direct AddCount insertions
		// into cs (below) survive the final one-pass union.
		ws.contribSrcs = append(ws.contribSrcs[:0], cs)
	}
	subtreeContrib := int64(1)
	topNC := ws.topNC[:0]
	minNC, ncValid := 0, false
	for _, idx := range in {
		e := &r.frames[idx].env
		if e.isTree {
			if nm != nil {
				be := nm.findOrCreate(int32(e.from))
				if !be.cValid || be.contribCount != e.contribTree {
					if be.contrib == nil {
						be.contrib = sketch.New(r.cfg.ContribK)
					}
					be.contrib.Reset()
					be.contrib.AddCount(r.contribSeed(epoch), uint64(e.from), e.contribTree)
					be.contribCount = e.contribTree
					be.cValid = true
				}
				if r.batchUnions {
					ws.contribSrcs = append(ws.contribSrcs, be.contrib)
				} else {
					cs.Union(be.contrib)
				}
				if !be.pValid || !r.memo.PartialEqual(be.p, e.p) {
					if !be.synSet {
						be.syn = r.rec.NewSynopsis()
						be.synSet = true
					}
					be.syn = r.rec.ConvertInto(epoch, e.from, e.p, be.syn)
					be.p = e.p
					be.pValid = true
				}
				if batch {
					ws.fuseSrcs = append(ws.fuseSrcs, be.syn)
				} else {
					s = agg.Fuse(s, be.syn)
				}
			} else {
				if batch {
					ws.fuseSrcs = append(ws.fuseSrcs, r.convert(ws, epoch, e.from, e.p))
				} else {
					s = agg.Fuse(s, r.convert(ws, epoch, e.from, e.p))
				}
				cs.AddCount(r.contribSeed(epoch), uint64(e.from), e.contribTree)
			}
			subtreeContrib += e.contribTree
		} else {
			if batch {
				ws.fuseSrcs = append(ws.fuseSrcs, e.s)
			} else {
				s = agg.Fuse(s, e.s)
			}
			if r.batchUnions {
				ws.contribSrcs = append(ws.contribSrcs, e.contribSk)
			} else {
				cs.Union(e.contribSk)
			}
			if r.trackNC && e.ncValid {
				topNC = mergeTopK(topNC, e.topNC, r.topKCap())
				if !ncValid || e.minNC < minNC {
					minNC = e.minNC
				}
				ncValid = true
			}
		}
		orBits(contributors, e.contributors)
	}
	if batch {
		s = r.fuser.FuseAll(s, ws.fuseSrcs)
	}
	if r.batchUnions && len(ws.contribSrcs) > 1 {
		sketch.UnionAllInto(cs, ws.contribSrcs...)
	}
	// A frontier M vertex roots a unique all-T tree subtree (§4.2 footnote
	// 3) and reports how many of its nodes did not contribute.
	if r.trackNC && r.state.IsFrontierM(v) {
		nc := r.state.SubtreeSize(v) - int(subtreeContrib)
		if nc < 0 {
			nc = 0
		}
		r.lastNC[v] = nc
		topNC = insertTopK(topNC, nc, r.topKCap())
		if !ncValid || nc < minNC {
			minNC = nc
		}
		ncValid = true
	}
	*out = envelope[P, S]{
		from: v, isTree: false, s: s,
		contribSk: cs, topNC: topNC, minNC: minNC, ncValid: ncValid,
		contributors: contributors,
	}
}

// convert applies the tree→multi-path conversion, through the recycling
// fast path when the aggregate offers one. The returned synopsis lives
// until the worker's pools reset at the next epoch.
func (r *Runner[V, P, S, R]) convert(ws *workerState[P, S], epoch, owner int, p P) S {
	if r.rec != nil {
		return r.rec.ConvertInto(epoch, owner, p, ws.getSyn(r.rec))
	}
	return r.cfg.Agg.Convert(epoch, owner, p)
}

// encodeFrame serializes v's outgoing envelope into the level's frame slot
// using the worker's encode scratch. The slot buffer persists until the
// level's deliveries and decodes are done.
//
//td:hotpath
func (r *Runner[V, P, S, R]) encodeFrame(ws *workerState[P, S], epoch int, env *envelope[P, S], slot *frameSlot[P, S]) {
	we := wire.Envelope{Epoch: uint32(epoch), From: uint32(env.from)}
	if env.isTree {
		we.Kind = wire.KindTree
		we.Contrib = env.contribTree
		ws.payloadBuf = r.cfg.Agg.AppendPartial(ws.payloadBuf[:0], env.p)
	} else {
		we.Kind = wire.KindSynopsis
		ws.contribBuf = env.contribSk.AppendWire(ws.contribBuf[:0])
		we.ContribSketch = ws.contribBuf
		we.TopNC = env.topNC
		we.MinNC = env.minNC
		we.NCValid = env.ncValid
		ws.payloadBuf = r.cfg.Agg.AppendSynopsis(ws.payloadBuf[:0], env.s)
	}
	we.Payload = ws.payloadBuf
	slot.buf = wire.AppendEnvelope(slot.buf[:0], &we)
	slot.epochLen = uint8(wire.UvarintLen(uint64(epoch)))
}

// decodeFrame reconstructs an envelope from received bytes into *dst, fully
// overwriting every field (the slot's envelope persists for the whole epoch
// — receivers and the base station reference it by index — and is recycled
// only by the next epoch's build/decode of the same sender). The runner
// produced the frame itself, so a decode failure is a codec bug, not a
// network condition — it panics rather than silently dropping data.
//
//td:hotpath
func (r *Runner[V, P, S, R]) decodeFrame(ws *workerState[P, S], frame []byte, dst *envelope[P, S]) {
	we, err := ws.dec.Decode(frame)
	if err != nil {
		panic(fmt.Sprintf("runner: corrupt frame: %v", err))
	}
	var zeroP P
	var zeroS S
	dst.from = int(we.From)
	switch we.Kind {
	case wire.KindTree:
		p, err := r.cfg.Agg.DecodePartial(we.Payload)
		if err != nil {
			panic(fmt.Sprintf("runner: corrupt tree partial from %d: %v", dst.from, err))
		}
		dst.isTree = true
		dst.p = p
		dst.contribTree = we.Contrib
		dst.s = zeroS
		dst.contribSk = nil
		dst.topNC = nil
		dst.minNC = 0
		dst.ncValid = false
	case wire.KindSynopsis:
		var s S
		if r.rec != nil {
			s, err = r.rec.DecodeSynopsisInto(we.Payload, ws.getSyn(r.rec))
		} else {
			s, err = r.cfg.Agg.DecodeSynopsis(we.Payload)
		}
		if err != nil {
			panic(fmt.Sprintf("runner: corrupt synopsis from %d: %v", dst.from, err))
		}
		cs := ws.skPool.get()
		if err := cs.LoadWire(we.ContribSketch); err != nil {
			panic(fmt.Sprintf("runner: corrupt contributing sketch from %d: %v", dst.from, err))
		}
		dst.isTree = false
		dst.s = s
		dst.contribSk = cs
		dst.topNC = we.TopNC
		dst.minNC = we.MinNC
		dst.ncValid = we.NCValid
		dst.p = zeroP
		dst.contribTree = 0
	}
}

// deliver transmits v's already-encoded frame: unicast with retransmissions
// toward the tree parent for T vertices, a single broadcast up the rings
// for M vertices. The frame is encoded once per node per epoch — the very
// same bytes are offered to every parent of a broadcast. Energy accounting
// charges the encoded byte length of every radio transmission; a lost frame
// is dropped whole. Successful deliveries are recorded as arrivals (decoded
// once and referenced by receiver inboxes in exactly this order).
//
//td:hotpath
func (r *Runner[V, P, S, R]) deliver(epoch, v, slot int, env *envelope[P, S]) {
	frame := r.frames[slot].buf
	level := r.schedLevel[v]
	if env.isTree {
		parent := r.cfg.Tree.Parent[v]
		if parent == -1 {
			return
		}
		if r.down[parent] {
			// A dead parent never acknowledges: the sender (which cannot
			// know) spends the energy of every attempt and loses them all.
			// The transport is not consulted — a dead node must not see
			// (or account) receive traffic.
			for attempt := 0; attempt <= r.cfg.TreeRetransmits; attempt++ {
				r.Stats.AddTxBytes(v, level, len(frame))
				r.Stats.AddLoss(v)
			}
			return
		}
		for attempt := 0; attempt <= r.cfg.TreeRetransmits; attempt++ {
			r.Stats.AddTxBytes(v, level, len(frame))
			if r.transport.Deliver(epoch, attempt, v, parent, frame) {
				r.frames[slot].needed = true
				r.arrivals = append(r.arrivals, arrival{to: int32(parent), frame: int32(slot)})
				break
			}
			r.Stats.AddLoss(v)
		}
		return
	}
	r.Stats.AddTxBytes(v, level, len(frame)) // one broadcast, many potential receivers
	for _, u := range r.cfg.Rings.Up[v] {
		if !r.state.IsM(u) {
			continue // T vertices ignore synopses (Edge Correctness)
		}
		if r.down[u] {
			r.Stats.AddLoss(v) // dead receiver: the broadcast leg is lost
			continue
		}
		if r.transport.Deliver(epoch, 0, v, u, frame) {
			r.frames[slot].needed = true
			r.arrivals = append(r.arrivals, arrival{to: int32(u), frame: int32(slot)})
		} else {
			r.Stats.AddLoss(v)
		}
	}
}

func setBit(bits []uint64, i int) { bits[i/64] |= 1 << uint(i%64) }

func orBits(dst, src []uint64) {
	for i := range src {
		dst[i] |= src[i]
	}
}

func popcount(b []uint64) int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// RMSError computes the paper's relative root-mean-square error over a set
// of answers: (1/V)·sqrt(Σ(Vt−V)²/T) — §7.3 — for scalar answers. It lives
// here for convenience of scalar runners; richer statistics are in
// internal/stats.
func RMSError(answers []float64, truth []float64) float64 {
	if len(answers) == 0 || len(answers) != len(truth) {
		return math.NaN()
	}
	sum := 0.0
	meanV := 0.0
	for i := range answers {
		d := answers[i] - truth[i]
		sum += d * d
		meanV += truth[i]
	}
	meanV /= float64(len(truth))
	if meanV == 0 {
		return math.NaN()
	}
	return math.Sqrt(sum/float64(len(answers))) / meanV
}
