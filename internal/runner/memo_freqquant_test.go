package runner

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tributarydelta/internal/freq"
	"tributarydelta/internal/network"
	"tributarydelta/internal/quantile"
	"tributarydelta/internal/topo"
)

// The frequent-items and quantile aggregates joined the memoization layer in
// this revision: their conversions cache per boundary child and their frames
// reuse whole across clean epochs, keyed by the same reseeding windows as
// Count/Sum. The transparency contract is identical — bit-identical answers
// and stats with the caches engaged or disabled, across modes, loss rates
// and worker counts.

// runSeriesWith is runSeries for non-scalar answers: render canonicalizes
// the per-epoch result (map iteration order must not leak into the string).
func runSeriesWith[V, P, S, R any](r *Runner[V, P, S, R], epochs int, render func(R) string) []string {
	out := make([]string, 0, epochs)
	for e := 0; e < epochs; e++ {
		res := r.RunEpoch(e)
		out = append(out, fmt.Sprintf("%s/%.17g/%d/%d/%d",
			render(res.Answer), res.EstContrib, res.TrueContrib, res.DeltaSize, res.Switched))
	}
	out = append(out, fmt.Sprintf("bytes=%d words=%d losses=%d",
		r.Stats.TotalBytes(), r.Stats.TotalWords(), r.Stats.TotalLosses()))
	return out
}

func renderFreq(res freq.Result) string {
	items := make([]freq.Item, 0, len(res.Estimates))
	for u := range res.Estimates {
		items = append(items, u)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "N=%.17g", res.NEst)
	for _, u := range items {
		fmt.Fprintf(&b, ",%d=%.17g", u, res.Estimates[u])
	}
	return b.String()
}

func renderQuantile(s *quantile.Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d,eps=%.17g", s.N, s.Eps)
	for _, e := range s.Entries {
		fmt.Fprintf(&b, ",%.17g:%d:%d", e.V, e.RMin, e.RMax)
	}
	return b.String()
}

// TestFreqQuantileMemoMatchesNoMemo pins cache transparency for the two
// structured aggregates across the same matrix as TestMemoMatchesNoMemo.
// 70 epochs cross several reseeding periods (ReseedEvery defaults to 10 for
// both), many adaptation decisions in the TD modes, and a mid-run reading
// change that dirties part of the field.
func TestFreqQuantileMemoMatchesNoMemo(t *testing.T) {
	const epochs = 70
	for _, mode := range []Mode{ModeMultipath, ModeTDCoarse, ModeTD} {
		for _, loss := range []float64{0, 0.25} {
			for _, workers := range []int{1, 3, 8} {
				label := fmt.Sprintf("%v/loss=%v/workers=%d", mode, loss, workers)
				f := newFixture(41, 120)

				mkFreq := func(noMemo bool) *Runner[[]freq.Item, *freq.Summary, *freq.Synopsis, freq.Result] {
					fa := freq.NewAgg(f.tr, freq.MinTotalLoad{Epsilon: 0.01, D: topo.TreeDominationFactor(f.tr, 0.05)},
						0.01, freq.DefaultParams(41, 0.01, 12))
					r, err := New(Config[[]freq.Item, *freq.Summary, *freq.Synopsis, freq.Result]{
						Graph: f.g, Rings: f.r, Tree: f.tr,
						Net: network.New(f.g, network.Global{P: loss}, 41),
						Agg: fa,
						Value: func(epoch, node int) []freq.Item {
							return []freq.Item{freq.Item(node % 7), freq.Item((node*31 + epoch/20) % 40)}
						},
						Mode: mode, Seed: 41, Workers: workers, NoMemo: noMemo,
					})
					if err != nil {
						t.Fatal(err)
					}
					return r
				}
				memoF := mkFreq(false)
				if memoF.memo == nil {
					t.Fatal("FrequentItems runner did not resolve the SynopsisMemoizer extension")
				}
				compareSeries(t, "freq/"+label,
					runSeriesWith(memoF, epochs, renderFreq),
					runSeriesWith(mkFreq(true), epochs, renderFreq))

				mkQuant := func(noMemo bool) *Runner[float64, *quantile.Partial, *quantile.Synopsis, *quantile.Summary] {
					qa := quantile.NewAgg(f.tr, 41, 32, 16, nil)
					r, err := New(Config[float64, *quantile.Partial, *quantile.Synopsis, *quantile.Summary]{
						Graph: f.g, Rings: f.r, Tree: f.tr,
						Net: network.New(f.g, network.Global{P: loss}, 41),
						Agg: qa,
						Value: func(epoch, node int) float64 {
							return float64(node%50) + float64(epoch/25)
						},
						Mode: mode, Seed: 41, Workers: workers, NoMemo: noMemo,
					})
					if err != nil {
						t.Fatal(err)
					}
					return r
				}
				memoQ := mkQuant(false)
				if memoQ.memo == nil {
					t.Fatal("Quantiles runner did not resolve the SynopsisMemoizer extension")
				}
				compareSeries(t, "quantile/"+label,
					runSeriesWith(memoQ, epochs, renderQuantile),
					runSeriesWith(mkQuant(true), epochs, renderQuantile))
			}
		}
	}
}
