package runner

import (
	"fmt"
	"testing"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/sketch"
)

// The epoch-over-epoch memoization (memo.go) is a pure cache: every answer,
// contributing estimate and stats counter must be bit-identical with the
// caches engaged, disabled, and at every worker count — under loss (partial
// reuse), under zero loss (the fully-clean steady state), across reseeding
// period rollovers, adaptation switches, changing readings, and the epoch
// uvarint width boundary that forces a header reshape in patchFrameEpoch.

// runSeries executes epochs and flattens the observable outcome.
func runSeries[V, P, S any](r *Runner[V, P, S, float64], epochs int) []string {
	out := make([]string, 0, epochs)
	for e := 0; e < epochs; e++ {
		res := r.RunEpoch(e)
		out = append(out, fmt.Sprintf("%.17g/%.17g/%d/%d/%d",
			res.Answer, res.EstContrib, res.TrueContrib, res.DeltaSize, res.Switched))
	}
	out = append(out, fmt.Sprintf("bytes=%d words=%d losses=%d",
		r.Stats.TotalBytes(), r.Stats.TotalWords(), r.Stats.TotalLosses()))
	return out
}

func compareSeries(t *testing.T, label string, got, want []string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: epoch %d diverged: memo %q vs nomemo %q", label, i, got[i], want[i])
		}
	}
}

// TestMemoMatchesNoMemo pins the cache-transparency contract across modes,
// loss rates and worker counts, for Count and Sum. 140 epochs cross the
// epoch-127→128 uvarint width boundary, several reseeding periods and
// (in the TD modes) many adaptation decisions.
func TestMemoMatchesNoMemo(t *testing.T) {
	const epochs = 140
	for _, mode := range []Mode{ModeMultipath, ModeTDCoarse, ModeTD} {
		for _, loss := range []float64{0, 0.25} {
			for _, workers := range []int{1, 3, 8} {
				label := fmt.Sprintf("%v/loss=%v/workers=%d", mode, loss, workers)
				f := newFixture(31, 250)
				base := countRunner(t, f, mode, network.Global{P: loss}, 31,
					func(c *Config[struct{}, int64, *sketch.Sketch, float64]) {
						c.Workers = workers
						c.NoMemo = true
					})
				memo := countRunner(t, f, mode, network.Global{P: loss}, 31,
					func(c *Config[struct{}, int64, *sketch.Sketch, float64]) {
						c.Workers = workers
					})
				if memo.memo == nil {
					t.Fatal("Count runner did not resolve the SynopsisMemoizer extension")
				}
				compareSeries(t, label, runSeries(memo, epochs), runSeries(base, epochs))
			}
		}
	}
	// Sum exercises the binomial-simulation path (readings > the direct
	// insertion threshold) and a reading that changes mid-run.
	for _, loss := range []float64{0, 0.25} {
		label := fmt.Sprintf("Sum/loss=%v", loss)
		value := func(epoch, node int) float64 {
			if epoch >= 70 && node%7 == 0 {
				return float64(node%50) * 3 // a third of the field steps at epoch 70
			}
			return float64(node % 50)
		}
		f := newFixture(32, 250)
		mk := func(noMemo bool) *Runner[float64, float64, *sketch.Sketch, float64] {
			return sumRunner(t, f, ModeTD, network.Global{P: loss}, 32,
				func(c *Config[float64, float64, *sketch.Sketch, float64]) {
					c.NoMemo = noMemo
					c.Value = value
				})
		}
		compareSeries(t, label, runSeries(mk(false), 140), runSeries(mk(true), 140))
	}
}

// TestMemoCleanSteadyState pins that the clean path actually engages: under
// zero loss with constant readings, every multi-path node must reuse its
// frame once the caches are primed (within a reseeding period).
func TestMemoCleanSteadyState(t *testing.T) {
	f := newFixture(33, 250)
	r := countRunner(t, f, ModeMultipath, network.Global{P: 0}, 33,
		func(c *Config[struct{}, int64, *sketch.Sketch, float64]) {
			c.AdaptEvery = 1 << 20 // one endless reseeding period
		})
	r.cfg.Agg.(*aggregate.Count).ReseedEvery = 0
	r.RunEpoch(0)
	r.RunEpoch(1)
	clean := 0
	total := 0
	r.RunEpoch(2)
	for v := 1; v < f.g.N(); v++ {
		if !r.participates(v) {
			continue
		}
		total++
		if r.memoState[v].clean {
			clean++
		}
	}
	if clean != total {
		t.Fatalf("steady state: %d of %d nodes clean, want all", clean, total)
	}
}

// TestMemoReseedInvalidates pins that a reseeding-period rollover busts the
// clean state (the frame bytes legitimately change with the new hash).
func TestMemoReseedInvalidates(t *testing.T) {
	f := newFixture(34, 200)
	r := countRunner(t, f, ModeMultipath, network.Global{P: 0}, 34) // ReseedEvery=10
	for e := 0; e < 9; e++ {
		r.RunEpoch(e)
	}
	if !r.memoState[r.byLevel[r.maxLevel][0]].clean {
		t.Fatal("expected clean nodes inside the period")
	}
	r.RunEpoch(10) // new period: hashes re-drawn
	for v := 1; v < f.g.N(); v++ {
		if r.memoState[v].clean {
			t.Fatalf("node %d clean across a reseeding boundary", v)
		}
	}
}

// TestPatchFrameEpochWidths drives patchFrameEpoch across uvarint width
// transitions in both directions and checks the patched frame matches a
// fresh encoding byte for byte.
func TestPatchFrameEpochWidths(t *testing.T) {
	f := newFixture(35, 120)
	r := countRunner(t, f, ModeMultipath, network.Global{P: 0}, 35)
	var slot frameSlot[int64, *sketch.Sketch]
	env := envelope[int64, *sketch.Sketch]{
		from: 17, isTree: false,
		s:         sketch.New(40),
		contribSk: sketch.New(40),
	}
	env.s.AddCount(1, 17, 1000)
	env.contribSk.AddCount(2, 17, 1)
	ws := r.ws[0]
	r.encodeFrame(ws, 5, &env, &slot)
	var want frameSlot[int64, *sketch.Sketch]
	for _, epoch := range []int{5, 127, 128, 300, 16384, 70, 2} {
		r.patchFrameEpoch(&slot, epoch)
		r.encodeFrame(ws, epoch, &env, &want)
		if string(slot.buf) != string(want.buf) {
			t.Fatalf("epoch %d: patched frame differs from fresh encoding", epoch)
		}
	}
}
