package runner

import (
	"testing"

	"tributarydelta/internal/network"
	"tributarydelta/internal/sketch"
	"tributarydelta/internal/wire"
)

// TestByteAccountingTree pins the byte-level energy accounting of the
// tributary fast path: a Count tree frame is the paper's two payload words
// (one-word partial + one-word contributing count) plus at most one word of
// framing (version, kind, epoch, sender, length).
func TestByteAccountingTree(t *testing.T) {
	f := newFixture(31, 300)
	r := countRunner(t, f, ModeTree, network.Global{P: 0}, 31)
	r.RunEpoch(0)
	if r.Stats.TotalBytes() <= 0 {
		t.Fatal("no bytes accounted")
	}
	// Bytes and Words must describe the same transmissions: each frame's
	// words is ceil(bytes/4).
	if r.Stats.TotalBytes() > 4*r.Stats.TotalWords() {
		t.Fatalf("bytes %d exceed 4×words %d", r.Stats.TotalBytes(), 4*r.Stats.TotalWords())
	}
	for v := 1; v < f.g.N(); v++ {
		tx := r.Stats.Transmissions[v]
		if tx == 0 {
			continue
		}
		perTxWords := float64(r.Stats.Words[v]) / float64(tx)
		if perTxWords > 3 {
			t.Fatalf("node %d: %v words per tree Count frame, want <= 3 (2 payload + framing)", v, perTxWords)
		}
	}
}

// TestByteAccountingMultipath pins the delta side: a broadcast frame
// carries the K-word synopsis sketch plus the ContribK-word
// contributing-Count sketch plus a few words of NC statistics and framing.
func TestByteAccountingMultipath(t *testing.T) {
	f := newFixture(32, 300)
	r := countRunner(t, f, ModeMultipath, network.Global{P: 0}, 32)
	r.RunEpoch(0)
	const k = 40 // aggregate.DefaultSketchK and the default ContribK
	minWords := int64(k + k)
	maxWords := int64(k + k + 10)
	for v := 1; v < f.g.N(); v++ {
		tx := r.Stats.Transmissions[v]
		if tx == 0 {
			continue
		}
		w := r.Stats.Words[v] / tx
		if w < minWords || w > maxWords {
			t.Fatalf("node %d: %d words per synopsis frame, want %d..%d", v, w, minWords, maxWords)
		}
	}
}

// TestPerLevelByteAccounting verifies the per-level load breakdown: every
// populated schedule level reports bytes and the levels sum to the total.
func TestPerLevelByteAccounting(t *testing.T) {
	f := newFixture(33, 300)
	r := countRunner(t, f, ModeTD, network.Global{P: 0.2}, 33)
	r.Run(5)
	if len(r.Stats.LevelBytes) == 0 {
		t.Fatal("no per-level accounting")
	}
	var sum int64
	for l, b := range r.Stats.LevelBytes {
		sum += b
		// Per frame, words = ceil(bytes/4), so 4·words always covers bytes.
		if 4*r.Stats.LevelWords[l] < b {
			t.Fatalf("level %d: words %d inconsistent with bytes %d", l, r.Stats.LevelWords[l], b)
		}
	}
	if sum != r.Stats.TotalBytes() {
		t.Fatalf("level bytes sum %d != total %d", sum, r.Stats.TotalBytes())
	}
}

// TestLossDropsWholeFrames: at 100% loss nothing is delivered and the base
// station answers from its own perspective alone, yet every transmission is
// still charged.
func TestLossDropsWholeFrames(t *testing.T) {
	f := newFixture(34, 200)
	r := countRunner(t, f, ModeTree, network.Global{P: 1}, 34)
	res := r.RunEpoch(0)
	if res.Answer != 0 {
		t.Fatalf("total loss delivered an answer: %v", res.Answer)
	}
	if r.Stats.TotalBytes() <= 0 {
		t.Fatal("lost frames must still cost transmit energy")
	}
}

// recordingTransport wraps the simulator transport and checks that every
// frame on the seam is a decodable envelope.
type recordingTransport struct {
	net    *network.Net
	frames int
	bad    int
}

func (t *recordingTransport) Deliver(epoch, attempt, from, to int, frame []byte) bool {
	t.frames++
	if _, err := wire.DecodeEnvelope(frame); err != nil {
		t.bad++
	}
	return t.net.Delivered(epoch, attempt, from, to)
}

// TestTransportSeamSeesRealFrames verifies the Transport seam: a custom
// backend receives the actual encoded envelopes and can decode every one,
// and plugging it in does not change results.
func TestTransportSeamSeesRealFrames(t *testing.T) {
	f := newFixture(35, 200)
	net := network.New(f.g, network.Global{P: 0.2}, 35)
	rec := &recordingTransport{net: net}
	a := countRunner(t, f, ModeTD, network.Global{P: 0.2}, 35)
	b := countRunner(t, f, ModeTD, network.Global{P: 0.2}, 35,
		func(c *Config[struct{}, int64, *sketch.Sketch, float64]) { c.Transport = rec })
	ra := a.Run(10)
	rb := b.Run(10)
	for i := range ra {
		if ra[i].Answer != rb[i].Answer || ra[i].TrueContrib != rb[i].TrueContrib {
			t.Fatalf("epoch %d: custom transport changed results", i)
		}
	}
	if rec.frames == 0 {
		t.Fatal("transport saw no frames")
	}
	if rec.bad != 0 {
		t.Fatalf("%d of %d frames failed to decode on the seam", rec.bad, rec.frames)
	}
}
