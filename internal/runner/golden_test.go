package runner

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tributarydelta/internal/network"
	"tributarydelta/internal/sketch"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden answer file")

// goldenEpoch is one recorded collection round.
type goldenEpoch struct {
	Answer      string `json:"answer"` // %.17g — exact float64 round-trip
	TrueContrib int    `json:"trueContrib"`
	DeltaSize   int    `json:"deltaSize"`
}

// goldenRun is one (aggregate, mode, seed) series.
type goldenRun struct {
	Agg    string        `json:"agg"`
	Mode   string        `json:"mode"`
	Seed   uint64        `json:"seed"`
	Epochs []goldenEpoch `json:"epochs"`
}

const goldenEpochs = 30

// goldenRuns executes the reference workloads: Count and Sum across all four
// schemes for seeds 1–3 under 25% global loss. newTransport, when non-nil,
// substitutes a Transport built over the runner's own Net — the lever that
// lets the same golden file pin alternative delivery backends. workers
// selects the wave engine's pool bound (0 = the GOMAXPROCS default); the
// golden file is answer-identical at every setting.
func goldenRuns(t *testing.T, newTransport func(*network.Net) Transport, workers int) []goldenRun {
	t.Helper()
	var out []goldenRun
	for seed := uint64(1); seed <= 3; seed++ {
		f := newFixture(seed, 300)
		for _, mode := range []Mode{ModeTree, ModeMultipath, ModeTDCoarse, ModeTD} {
			cr := countRunner(t, f, mode, network.Global{P: 0.25}, seed,
				func(cfg *Config[struct{}, int64, *sketch.Sketch, float64]) {
					cfg.Workers = workers
					if newTransport != nil {
						cfg.Transport = newTransport(cfg.Net)
					}
				})
			run := goldenRun{Agg: "Count", Mode: mode.String(), Seed: seed}
			for _, res := range cr.Run(goldenEpochs) {
				run.Epochs = append(run.Epochs, goldenEpoch{
					Answer:      fmt.Sprintf("%.17g", res.Answer),
					TrueContrib: res.TrueContrib,
					DeltaSize:   res.DeltaSize,
				})
			}
			out = append(out, run)

			sr := sumRunner(t, f, mode, network.Global{P: 0.25}, seed,
				func(cfg *Config[float64, float64, *sketch.Sketch, float64]) {
					cfg.Workers = workers
					if newTransport != nil {
						cfg.Transport = newTransport(cfg.Net)
					}
				})
			srun := goldenRun{Agg: "Sum", Mode: mode.String(), Seed: seed}
			for _, res := range sr.Run(goldenEpochs) {
				srun.Epochs = append(srun.Epochs, goldenEpoch{
					Answer:      fmt.Sprintf("%.17g", res.Answer),
					TrueContrib: res.TrueContrib,
					DeltaSize:   res.DeltaSize,
				})
			}
			out = append(out, srun)
		}
	}
	return out
}

// TestGoldenAnswers pins every scheme's per-epoch answers bit-for-bit against
// the pre-wire-refactor runner: the wire codec layer is required to be
// lossless, so transmitting real bytes must not move a single answer.
func TestGoldenAnswers(t *testing.T) {
	path := filepath.Join("testdata", "golden_answers.json")
	got := goldenRuns(t, nil, 1)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", path)
		return
	}
	compareGolden(t, got)
}

// TestGoldenAnswersParallel pins the level-parallel wave engine against the
// same golden file as the sequential runner: all four schemes, seeds 1–3,
// at three worker-pool bounds, bit-identical — the determinism contract
// that lets the default engine shard waves across however many cores the
// host has.
func TestGoldenAnswersParallel(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file is updated by TestGoldenAnswers")
	}
	for _, workers := range []int{1, 3, 8} {
		compareGolden(t, goldenRuns(t, nil, workers))
	}
}

// compareGolden checks got against the pinned golden file.
func compareGolden(t *testing.T, got []goldenRun) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden_answers.json"))
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d runs, golden has %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Agg != w.Agg || g.Mode != w.Mode || g.Seed != w.Seed || len(g.Epochs) != len(w.Epochs) {
			t.Fatalf("run %d header mismatch: got %s/%s/%d×%d, want %s/%s/%d×%d",
				i, g.Agg, g.Mode, g.Seed, len(g.Epochs), w.Agg, w.Mode, w.Seed, len(w.Epochs))
		}
		for e := range w.Epochs {
			if g.Epochs[e] != w.Epochs[e] {
				t.Errorf("%s/%s seed %d epoch %d: got %+v, want %+v",
					w.Agg, w.Mode, w.Seed, e, g.Epochs[e], w.Epochs[e])
				break // report the first divergence per run
			}
		}
	}
}
