package runner

import (
	"testing"

	"tributarydelta/internal/aggregate"
	"tributarydelta/internal/network"
	"tributarydelta/internal/sketch"
)

func TestMergeTopK(t *testing.T) {
	got := mergeTopK(nil, []int{3, 1}, 4)
	got = mergeTopK(got, []int{9, 2}, 4)
	got = mergeTopK(got, []int{5}, 4)
	want := []int{9, 5, 3, 2}
	if len(got) != len(want) {
		t.Fatalf("topK = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topK = %v, want %v", got, want)
		}
	}
	// Capacity respected; below-threshold values ignored.
	got = insertTopK(got, 1, 4)
	if len(got) != 4 || got[3] != 2 {
		t.Fatalf("capacity breached: %v", got)
	}
	got = insertTopK(got, 7, 4)
	if got[1] != 7 || got[3] != 3 {
		t.Fatalf("insertion order wrong: %v", got)
	}
}

// TestTopKHeuristicConverges runs the §4.2 top-k expansion variant and
// checks it adapts at least as effectively as the default max/2 rule.
func TestTopKHeuristicConverges(t *testing.T) {
	f := newFixture(51, 300)
	mk := func(topK int) float64 {
		r, err := New(Config[struct{}, int64, *sketch.Sketch, float64]{
			Graph: f.g, Rings: f.r, Tree: f.tr,
			Net:   network.New(f.g, network.Global{P: 0.3}, 51),
			Agg:   aggregate.NewCount(51),
			Value: func(int, int) struct{} { return struct{}{} },
			Mode:  ModeTD,
			TopK:  topK,
			Seed:  51,
		})
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 80; e++ {
			r.RunEpoch(e)
		}
		var contrib int
		const measure = 20
		for e := 80; e < 80+measure; e++ {
			contrib += r.RunEpoch(e).TrueContrib
		}
		if err := r.State().Validate(); err != nil {
			t.Fatal(err)
		}
		return float64(contrib) / float64(measure*r.Sensors())
	}
	defaultRule := mk(0)
	topK := mk(8)
	if topK < defaultRule-0.15 {
		t.Fatalf("top-k heuristic much worse than default: %.3f vs %.3f", topK, defaultRule)
	}
	if topK < 0.5 {
		t.Fatalf("top-k heuristic failed to adapt: contribution %.3f", topK)
	}
}

// TestPipelinedConstantSignal: with epoch-invariant readings, pipelined and
// synchronous collection give identical loss-free answers.
func TestPipelinedConstantSignal(t *testing.T) {
	f := newFixture(52, 200)
	mk := func(pipelined bool) float64 {
		r, err := New(Config[float64, float64, *sketch.Sketch, float64]{
			Graph: f.g, Rings: f.r, Tree: f.tr,
			Net:       network.New(f.g, network.Global{P: 0}, 52),
			Agg:       aggregate.NewSum(52),
			Value:     func(_, node int) float64 { return float64(node % 13) },
			Mode:      ModeTree,
			Pipelined: pipelined,
			Seed:      52,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.RunEpoch(10).Answer
	}
	if sync, pipe := mk(false), mk(true); sync != pipe {
		t.Fatalf("constant signal: pipelined %v != synchronous %v", pipe, sync)
	}
}

// TestPipelinedMixesEpochs: with a step signal, the pipelined answer during
// the transition window mixes old and new readings — deep nodes contribute
// stale values — then converges to the new total.
func TestPipelinedMixesEpochs(t *testing.T) {
	f := newFixture(53, 200)
	const stepAt = 20
	value := func(epoch, _ int) float64 {
		if epoch >= stepAt {
			return 2
		}
		return 1
	}
	r, err := New(Config[float64, float64, *sketch.Sketch, float64]{
		Graph: f.g, Rings: f.r, Tree: f.tr,
		Net:       network.New(f.g, network.Global{P: 0}, 53),
		Agg:       aggregate.NewSum(53),
		Value:     value,
		Mode:      ModeTree,
		Pipelined: true,
		Seed:      53,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(r.Sensors())
	for e := 0; e < stepAt; e++ {
		if got := r.RunEpoch(e).Answer; e > r.Levels() && got != n {
			t.Fatalf("pre-step epoch %d: answer %v, want %v", e, got, n)
		}
	}
	// During the fill window the answer must lie strictly between the two
	// plateaus at least once.
	sawMix := false
	for e := stepAt; e < stepAt+r.Levels(); e++ {
		got := r.RunEpoch(e).Answer
		if got > n && got < 2*n {
			sawMix = true
		}
	}
	if !sawMix {
		t.Fatal("pipelined transition never mixed old and new readings")
	}
	// After the pipeline drains, the new plateau is exact.
	if got := r.RunEpoch(stepAt + r.Levels() + 2).Answer; got != 2*n {
		t.Fatalf("post-step answer %v, want %v", got, 2*n)
	}
}

// TestPipelinedLatencyAccounting: the pipelined runner still reports the
// level count; results arrive every epoch either way, but the reading-to-
// answer delay is what Pipelined trades.
func TestPipelinedDeterminism(t *testing.T) {
	f := newFixture(54, 150)
	mk := func() []float64 {
		r, err := New(Config[struct{}, int64, *sketch.Sketch, float64]{
			Graph: f.g, Rings: f.r, Tree: f.tr,
			Net:       network.New(f.g, network.Global{P: 0.2}, 54),
			Agg:       aggregate.NewCount(54),
			Value:     func(int, int) struct{} { return struct{}{} },
			Mode:      ModeTD,
			Pipelined: true,
			Seed:      54,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 30)
		for e := range out {
			out[e] = r.RunEpoch(e).Answer
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pipelined runs are not deterministic")
		}
	}
}
