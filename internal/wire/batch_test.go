package wire

import (
	"bytes"
	"testing"
)

func TestDatagramBatchRoundTrip(t *testing.T) {
	frames := [][]byte{
		AppendEnvelope(nil, &Envelope{Kind: KindTree, Epoch: 7, From: 12, Contrib: 3}),
		AppendEnvelope(nil, &Envelope{Kind: KindTree, Epoch: 7, From: 599, Contrib: 1}),
		{},
		bytes.Repeat([]byte{0xab}, 300),
	}
	tos := []int{0, 299, 4, 1<<32 - 1}
	cases := []struct {
		round uint64
		base  int
	}{
		{0, 0},
		{1 << 40, MaxDatagramSeq - len(frames)},
		{42, 127},
	}
	for _, c := range cases {
		enc := AppendDatagramBatch(nil, c.round, c.base)
		if got, want := len(enc), DatagramBatchOverhead(c.round, c.base); got != want {
			t.Errorf("header of (%d,%d) = %d bytes, DatagramBatchOverhead says %d", c.round, c.base, got, want)
		}
		for i, frame := range frames {
			before := len(enc)
			enc = AppendBatchFrame(enc, tos[i], frame)
			if got, want := len(enc)-before, BatchFrameLen(tos[i], len(frame)); got != want {
				t.Errorf("entry %d = %d bytes, BatchFrameLen says %d", i, got, want)
			}
		}
		if !DatagramIsBatch(enc) || DatagramIsBatch(AppendDatagram(nil, 1, 2, 3, nil)) {
			t.Fatal("DatagramIsBatch misclassifies")
		}
		b, err := DecodeDatagramBatch(enc)
		if err != nil {
			t.Fatalf("decode (%d,%d): %v", c.round, c.base, err)
		}
		if b.Round != c.round || b.Base != c.base {
			t.Fatalf("header round-trip (%d,%d): got (%d,%d)", c.round, c.base, b.Round, b.Base)
		}
		for i := range frames {
			if !b.Next() {
				t.Fatalf("Next()=false at frame %d: %v", i, b.Err())
			}
			if b.Seq() != c.base+i || b.To() != tos[i] || !bytes.Equal(b.Frame(), frames[i]) {
				t.Fatalf("frame %d: seq=%d to=%d frame=%x", i, b.Seq(), b.To(), b.Frame())
			}
		}
		if b.Next() {
			t.Fatal("Next()=true past the last frame")
		}
		if b.Err() != nil || b.Len() != len(frames) {
			t.Fatalf("clean end: err=%v len=%d", b.Err(), b.Len())
		}
	}
}

func TestDatagramBatchDecodeRejects(t *testing.T) {
	good := AppendBatchFrame(AppendDatagramBatch(nil, 3, 4), 5, []byte{1, 2, 3})
	headerBad := [][]byte{
		nil,
		{},
		{DatagramBatchMagic},
		{DatagramMagic, DatagramVersion, 1, 1}, // single-frame magic
		{DatagramBatchMagic, 99, 1, 1},         // wrong version
		AppendDatagramBatch(nil, 1, MaxDatagramSeq), // base out of range
	}
	for i, data := range headerBad {
		if _, err := DecodeDatagramBatch(data); err == nil {
			t.Errorf("header case %d: decode accepted %x", i, data)
		}
	}
	entryBad := [][]byte{
		AppendUvarint(AppendDatagramBatch(nil, 1, 0), 7),                       // to without frame
		AppendBytes(AppendUvarint(AppendDatagramBatch(nil, 1, 0), 1<<33), nil), // node out of range
		append(AppendDatagramBatch(nil, 1, 0), 0x80),                           // truncated varint
		AppendUvarint(AppendUvarint(AppendDatagramBatch(nil, 1, 0), 7), 1<<40), // frame length past end
	}
	for i, data := range entryBad {
		b, err := DecodeDatagramBatch(data)
		if err != nil {
			t.Fatalf("entry case %d: header rejected: %v", i, err)
		}
		for b.Next() {
		}
		if b.Err() == nil {
			t.Errorf("entry case %d: iteration accepted %x", i, data)
		}
	}
	// A batch whose implied sequence numbers would leave the bounded space
	// must stop with an error at the overflowing frame, not index past it.
	over := AppendDatagramBatch(nil, 1, MaxDatagramSeq-1)
	over = AppendBatchFrame(over, 0, nil) // seq MaxDatagramSeq-1: fine
	over = AppendBatchFrame(over, 0, nil) // seq MaxDatagramSeq: malformed
	b, err := DecodeDatagramBatch(over)
	if err != nil {
		t.Fatalf("overflow header rejected: %v", err)
	}
	n := 0
	for b.Next() {
		n++
	}
	if n != 1 || b.Err() == nil {
		t.Fatalf("seq overflow: decoded %d frames, err=%v", n, b.Err())
	}
	b, err = DecodeDatagramBatch(good)
	if err != nil {
		t.Fatalf("control case rejected: %v", err)
	}
	for b.Next() {
	}
	if b.Err() != nil {
		t.Fatalf("control case iteration failed: %v", b.Err())
	}
}

// FuzzDatagramBatchDecode feeds arbitrary bytes to the batch decoder on the
// untrusted UDP receive path: header decode and frame iteration must never
// panic, every accepted identifier must be in range (so the receive-side
// dedup bitset stays bounded), and an accepted batch must survive a
// re-encode/re-decode round trip unchanged. (Byte-level canonicality is NOT
// guaranteed: uvarint readers accept non-minimal encodings.)
func FuzzDatagramBatchDecode(f *testing.F) {
	frame := AppendEnvelope(nil, &Envelope{Kind: KindTree, Epoch: 9, From: 4, Contrib: 2})
	seed := AppendDatagramBatch(nil, 1, 0)
	seed = AppendBatchFrame(seed, 17, frame)
	seed = AppendBatchFrame(seed, 3, nil)
	f.Add(seed)
	f.Add(AppendDatagramBatch(nil, 1<<30, MaxDatagramSeq-1))
	f.Add([]byte{DatagramBatchMagic, DatagramVersion})
	f.Add([]byte{DatagramBatchMagic, DatagramVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(AppendBatchFrame(AppendDatagramBatch(nil, 0, 1<<20-2), 0, []byte{1}))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeDatagramBatch(data)
		if err != nil {
			return
		}
		if b.Base < 0 || b.Base >= MaxDatagramSeq {
			t.Fatalf("accepted out-of-range base: %d", b.Base)
		}
		re := AppendDatagramBatch(nil, b.Round, b.Base)
		var tos []int
		var frames [][]byte
		for b.Next() {
			if b.Seq() != b.Base+len(tos) || b.Seq() >= MaxDatagramSeq || b.To() < 0 {
				t.Fatalf("accepted out-of-range frame: seq=%d to=%d", b.Seq(), b.To())
			}
			re = AppendBatchFrame(re, b.To(), b.Frame())
			tos = append(tos, b.To())
			frames = append(frames, append([]byte(nil), b.Frame()...))
		}
		if b.Err() != nil {
			return // malformed tail: nothing more to check
		}
		b2, err := DecodeDatagramBatch(re)
		if err != nil {
			t.Fatalf("re-encoded batch rejected: %v", err)
		}
		for i := range tos {
			if !b2.Next() {
				t.Fatalf("re-encoded batch lost frame %d: %v", i, b2.Err())
			}
			if b2.To() != tos[i] || !bytes.Equal(b2.Frame(), frames[i]) {
				t.Fatalf("round trip changed frame %d", i)
			}
		}
		if b2.Next() || b2.Err() != nil {
			t.Fatal("round trip changed the frame count")
		}
	})
}
