package wire

import (
	"math"
	"testing"
)

// BenchmarkEncodeDecode covers the hot codec paths the runner exercises per
// transmission: varints, floats, and full envelope frames.

func BenchmarkAppendUvarint(b *testing.B) {
	buf := make([]byte, 0, 16)
	for i := 0; i < b.N; i++ {
		buf = AppendUvarint(buf[:0], uint64(i)*2654435761)
	}
}

func BenchmarkAppendFloat64(b *testing.B) {
	buf := make([]byte, 0, 16)
	for i := 0; i < b.N; i++ {
		buf = AppendFloat64(buf[:0], float64(i%1000)+0.5)
	}
}

func BenchmarkDecodeFloat64(b *testing.B) {
	buf := AppendFloat64(nil, 12345.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		if r.Float64(); r.Err() != nil {
			b.Fatal(r.Err())
		}
	}
}

func benchEnvelope() *Envelope {
	payload := make([]byte, 160) // a 40-bitmap raw FM sketch
	for i := range payload {
		payload[i] = byte(i)
	}
	return &Envelope{
		Kind:          KindSynopsis,
		Epoch:         1000,
		From:          321,
		ContribSketch: payload[:160],
		TopNC:         []int{17, 9, 3, 0},
		MinNC:         0,
		NCValid:       true,
		Payload:       payload,
	}
}

func BenchmarkEncodeEnvelope(b *testing.B) {
	e := benchEnvelope()
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEnvelope(buf[:0], e)
	}
	if len(buf) == 0 {
		b.Fatal("no bytes")
	}
}

func BenchmarkDecodeEnvelope(b *testing.B) {
	buf := AppendEnvelope(nil, benchEnvelope())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelope(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecodeTreeFrame(b *testing.B) {
	// The tributary fast path: a Count partial is a couple of varints.
	payload := AppendVarint(nil, 57)
	e := &Envelope{Kind: KindTree, Epoch: 12, From: 99, Contrib: 57, Payload: payload}
	buf := make([]byte, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEnvelope(buf[:0], e)
		if _, err := DecodeEnvelope(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWords(b *testing.B) {
	s := 0
	for i := 0; i < b.N; i++ {
		s += Words(i & 1023)
	}
	if s < 0 {
		b.Fatal(math.Inf(1))
	}
}
