package wire

// Batch datagram framing for the UDP transport's coalesced data plane: one
// datagram carries every frame destined for a shard that fits under the
// negotiated datagram size, so a 600-node epoch costs a handful of sends
// instead of hundreds. The layout is
//
//	magic 0xD8 | version | round uvarint | baseSeq uvarint |
//	repeated ( to uvarint | frame bytes, length-prefixed )
//
// The i-th frame in the batch has sequence number baseSeq+i — consecutive by
// construction, which is what lets the barrier account a lost datagram as a
// contiguous *range* of missing sequence numbers and the parent retransmit
// whole datagram images instead of individual frames. There is no frame
// count in the header: frames are self-delimiting and the datagram boundary
// ends the batch, so the sender can seal a batch the moment the next frame
// would not fit.
//
// Like the single-frame format, every field arrives from outside the
// process: decoding never panics, all identifiers are bounds-checked, and a
// hostile header cannot force an allocation beyond the datagram itself
// (FuzzDatagramBatchDecode pins this).

// DatagramBatchMagic is the first byte of every batch datagram; the
// single-frame format keeps 0xD7, so a receiver dispatches on the magic.
const DatagramBatchMagic byte = 0xD8

// AppendDatagramBatch appends a batch datagram header to dst: magic,
// version, the barrier round and the sequence number of the batch's first
// frame. Frames follow via AppendBatchFrame.
//
//td:hotpath
func AppendDatagramBatch(dst []byte, round uint64, baseSeq int) []byte {
	dst = append(dst, DatagramBatchMagic, DatagramVersion)
	dst = AppendUvarint(dst, round)
	return AppendUvarint(dst, uint64(baseSeq))
}

// DatagramBatchOverhead returns the header size AppendDatagramBatch would
// add for the given round and base sequence number.
func DatagramBatchOverhead(round uint64, baseSeq int) int {
	return 2 + UvarintLen(round) + UvarintLen(uint64(baseSeq))
}

// AppendBatchFrame appends one batch entry to dst: the receiving node and
// the length-prefixed envelope frame. The entry's sequence number is implied
// by its position — the batch's baseSeq plus the number of entries appended
// before it.
//
//td:hotpath
func AppendBatchFrame(dst []byte, to int, frame []byte) []byte {
	dst = AppendUvarint(dst, uint64(to))
	return AppendBytes(dst, frame)
}

// BatchFrameLen returns the encoded size of one batch entry — what
// AppendBatchFrame would append — so the sender can seal a batch before an
// entry would push the datagram past the negotiated size.
func BatchFrameLen(to, frameLen int) int {
	return UvarintLen(uint64(to)) + UvarintLen(uint64(frameLen)) + frameLen
}

// DatagramIsBatch reports whether data begins with the batch magic — the
// receive path's dispatch between the single-frame and batch decoders.
func DatagramIsBatch(data []byte) bool {
	return len(data) > 0 && data[0] == DatagramBatchMagic
}

// DatagramBatch iterates the frames of one batch datagram. Decode the header
// with DecodeDatagramBatch, then advance with Next and read the current
// entry's Seq/To/Frame; after Next returns false, Err distinguishes a clean
// end of batch (nil) from malformed input. Frames alias the input buffer.
type DatagramBatch struct {
	// Round is the parent's barrier round counter, scoping the sequence
	// space exactly like the single-frame format.
	Round uint64
	// Base is the sequence number of the batch's first frame.
	Base int

	r     Reader
	n     int
	to    int
	frame []byte
}

// DecodeDatagramBatch parses a batch datagram header and returns the frame
// iterator. Bad magic, bad version and out-of-range identifiers are errors,
// never panics: this sits on the untrusted receive path.
//
//td:hotpath
func DecodeDatagramBatch(data []byte) (DatagramBatch, error) {
	b := DatagramBatch{r: Reader{buf: data}}
	if c := b.r.Byte(); b.r.Err() == nil && c != DatagramBatchMagic {
		return DatagramBatch{}, ErrMalformed
	}
	if c := b.r.Byte(); b.r.Err() == nil && c != DatagramVersion {
		return DatagramBatch{}, ErrMalformed
	}
	b.Round = b.r.Uvarint()
	base := b.r.Uvarint()
	if b.r.Err() == nil && base >= MaxDatagramSeq {
		return DatagramBatch{}, ErrMalformed
	}
	b.Base = int(base)
	if err := b.r.Err(); err != nil {
		return DatagramBatch{}, err
	}
	return b, nil
}

// Next advances to the batch's next frame, reporting whether one was
// decoded. It returns false at the clean end of the batch and on the first
// malformed entry alike; Err tells them apart. A frame whose implied
// sequence number would leave the bounded per-round sequence space is
// malformed — the dedup bitset on the receive side stays bounded no matter
// what the header claims.
//
//td:hotpath
func (b *DatagramBatch) Next() bool {
	if b.r.err != nil || b.r.Remaining() == 0 {
		return false
	}
	to := b.r.Uvarint()
	frame := b.r.Bytes()
	if b.r.err != nil {
		return false
	}
	if to > maxDatagramNode || b.Base+b.n >= MaxDatagramSeq {
		b.r.fail(ErrMalformed)
		return false
	}
	b.to = int(to)
	b.frame = frame
	b.n++
	return true
}

// Seq returns the current frame's sequence number: Base plus its position
// in the batch.
func (b *DatagramBatch) Seq() int { return b.Base + b.n - 1 }

// To returns the current frame's receiving node id.
func (b *DatagramBatch) To() int { return b.to }

// Frame returns the current frame's envelope bytes, aliasing the input.
func (b *DatagramBatch) Frame() []byte { return b.frame }

// Len returns the number of frames decoded so far.
func (b *DatagramBatch) Len() int { return b.n }

// Err returns nil after a clean end of batch, or the malformation that
// stopped iteration early.
func (b *DatagramBatch) Err() error { return b.r.err }
