package wire

import (
	"bytes"
	"testing"
)

// synFrame builds a synopsis frame with NC statistics — the envelope shape
// that makes DecodeEnvelope allocate (TopNC) and that Decoder must not.
func synFrame(from uint32, topNC []int) []byte {
	return AppendEnvelope(nil, &Envelope{
		Kind: KindSynopsis, Epoch: 9, From: from,
		ContribSketch: []byte{1, 2, 3, 4},
		NCValid:       true, TopNC: topNC, MinNC: -2,
		Payload: []byte{0xAB, 0xCD},
	})
}

func TestDecoderMatchesDecodeEnvelope(t *testing.T) {
	frames := [][]byte{
		AppendEnvelope(nil, &Envelope{Kind: KindTree, Epoch: 1, From: 2, Contrib: 77, Payload: []byte{5}}),
		synFrame(3, []int{9, 4, 1}),
		synFrame(4, nil),
	}
	var d Decoder
	for _, f := range frames {
		want, err1 := DecodeEnvelope(f)
		got, err2 := d.Decode(f)
		if err1 != nil || err2 != nil {
			t.Fatalf("decode errors: %v / %v", err1, err2)
		}
		if got.Kind != want.Kind || got.From != want.From || got.Contrib != want.Contrib ||
			got.MinNC != want.MinNC || got.NCValid != want.NCValid ||
			len(got.TopNC) != len(want.TopNC) ||
			!bytes.Equal(got.Payload, want.Payload) ||
			!bytes.Equal(got.ContribSketch, want.ContribSketch) {
			t.Fatalf("Decoder: %+v, DecodeEnvelope: %+v", got, want)
		}
		for i := range want.TopNC {
			if got.TopNC[i] != want.TopNC[i] {
				t.Fatalf("TopNC[%d] = %d, want %d", i, got.TopNC[i], want.TopNC[i])
			}
		}
	}
}

func TestDecoderEnvelopesStayValidUntilReset(t *testing.T) {
	// Decode enough NC-bearing frames to force the arena to grow several
	// times; every earlier envelope's TopNC must keep its values.
	var d Decoder
	var envs []Envelope
	var want [][]int
	for i := 0; i < 64; i++ {
		top := []int{i * 3, i * 2, i}
		e, err := d.Decode(synFrame(uint32(i), top))
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, e)
		want = append(want, top)
	}
	for i, e := range envs {
		for j := range want[i] {
			if e.TopNC[j] != want[i][j] {
				t.Fatalf("envelope %d TopNC[%d] = %d, want %d (arena growth corrupted an earlier view)",
					i, j, e.TopNC[j], want[i][j])
			}
		}
	}
	d.Reset()
	e, err := d.Decode(synFrame(0, []int{42}))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.TopNC) != 1 || e.TopNC[0] != 42 {
		t.Fatalf("post-Reset decode: %v", e.TopNC)
	}
}

func TestDecoderSteadyStateZeroAlloc(t *testing.T) {
	var d Decoder
	frame := synFrame(7, []int{8, 6, 4, 2})
	// Warm the arena to steady-state capacity.
	for i := 0; i < 8; i++ {
		d.Reset()
		if _, err := d.Decode(frame); err != nil {
			t.Fatal(err)
		}
	}
	n := testing.AllocsPerRun(200, func() {
		d.Reset()
		for i := 0; i < 4; i++ {
			if _, err := d.Decode(frame); err != nil {
				t.Fatal(err)
			}
		}
	})
	if n != 0 {
		t.Fatalf("steady-state Decode allocates %v per run, want 0", n)
	}
}

func TestDecoderRejectsBadFrames(t *testing.T) {
	var d Decoder
	good := synFrame(1, []int{3, 2, 1})
	for i := 0; i < len(good); i++ {
		if _, err := d.Decode(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}
