package wire

import (
	"bytes"
	"testing"
)

func TestDatagramRoundTrip(t *testing.T) {
	frame := AppendEnvelope(nil, &Envelope{Kind: KindTree, Epoch: 7, From: 12, Contrib: 3})
	cases := []struct {
		round uint64
		seq   int
		to    int
	}{
		{0, 0, 0},
		{1, 0, 299},
		{1 << 40, MaxDatagramSeq - 1, 1<<32 - 1},
		{42, 127, 128},
	}
	for _, c := range cases {
		enc := AppendDatagram(nil, c.round, c.seq, c.to, frame)
		if got, want := len(enc)-len(frame), DatagramOverhead(c.round, c.seq, c.to); got != want {
			t.Errorf("overhead of (%d,%d,%d) = %d, DatagramOverhead says %d", c.round, c.seq, c.to, got, want)
		}
		d, err := DecodeDatagram(enc)
		if err != nil {
			t.Fatalf("decode (%d,%d,%d): %v", c.round, c.seq, c.to, err)
		}
		if d.Round != c.round || d.Seq != c.seq || d.To != c.to || !bytes.Equal(d.Frame, frame) {
			t.Fatalf("round-trip (%d,%d,%d): got %+v", c.round, c.seq, c.to, d)
		}
	}
}

func TestDatagramDecodeRejects(t *testing.T) {
	frame := AppendEnvelope(nil, &Envelope{Kind: KindTree, Epoch: 1, From: 2, Contrib: 1})
	good := AppendDatagram(nil, 3, 4, 5, frame)
	bad := [][]byte{
		nil,
		{},
		{DatagramMagic},
		{0x00, DatagramVersion, 1, 1, 1}, // wrong magic
		{DatagramMagic, 99, 1, 1, 1},     // wrong version
		good[:3],                         // truncated header
		AppendDatagram(nil, 1, MaxDatagramSeq, 2, frame), // seq out of range
		AppendDatagram(nil, 1, 2, 1<<33, frame),          // node out of range
	}
	for i, data := range bad {
		if _, err := DecodeDatagram(data); err == nil {
			t.Errorf("case %d: decode accepted %x", i, data)
		}
	}
	if _, err := DecodeDatagram(good); err != nil {
		t.Fatalf("control case rejected: %v", err)
	}
}

// FuzzDatagramDecode feeds arbitrary bytes to the first decoder on the
// untrusted UDP receive path: it must never panic, every identifier it
// accepts must be in range, and an accepted datagram must survive a
// re-encode/re-decode round trip unchanged. (Byte-level canonicality is NOT
// guaranteed: uvarint readers accept non-minimal encodings.)
func FuzzDatagramDecode(f *testing.F) {
	frame := AppendEnvelope(nil, &Envelope{Kind: KindTree, Epoch: 9, From: 4, Contrib: 2})
	f.Add(AppendDatagram(nil, 1, 0, 17, frame))
	f.Add(AppendDatagram(nil, 1<<30, MaxDatagramSeq-1, 0, nil))
	f.Add([]byte{DatagramMagic, DatagramVersion})
	f.Add([]byte{DatagramMagic, DatagramVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDatagram(data)
		if err != nil {
			return
		}
		if d.Seq < 0 || d.Seq >= MaxDatagramSeq || d.To < 0 {
			t.Fatalf("accepted out-of-range identifiers: %+v", d)
		}
		re := AppendDatagram(nil, d.Round, d.Seq, d.To, d.Frame)
		d2, err := DecodeDatagram(re)
		if err != nil {
			t.Fatalf("re-encoded datagram rejected: %v", err)
		}
		if d2.Round != d.Round || d2.Seq != d.Seq || d2.To != d.To || !bytes.Equal(d2.Frame, d.Frame) {
			t.Fatalf("round trip changed the datagram: %+v != %+v", d, d2)
		}
	})
}
