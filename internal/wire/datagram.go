package wire

// Datagram framing for the UDP transport backend: one datagram carries one
// envelope frame, prefixed by a fixed magic/version pair and three varints —
// the barrier round, the per-(round, shard) sequence number, and the
// receiving node. The round scopes the sequence space (a query set reuses
// epoch numbers across member sub-rounds, so the barrier counts rounds, not
// epochs); the sequence number is what lets a shard deduplicate replayed
// datagrams and report the missing ones at the barrier; the receiver is in
// the header — not inferred from the envelope — because the envelope only
// names its sender (a broadcast frame has many receivers).
//
// Unlike the in-process transports, every field here arrives from outside
// the process, so the decoder treats the input as hostile: all bounds are
// checked, oversized identifiers are malformed, and no input can force an
// allocation larger than the datagram itself.

// MaxUDPPayload is the largest UDP payload deliverable over IPv4 (65535
// minus the IP and UDP headers) — the upper bound of the per-link datagram
// size negotiation.
const MaxUDPPayload = 65507

// DatagramMagic is the first byte of every transport datagram; anything
// else is malformed input (most likely a stray packet on a reused port).
const DatagramMagic byte = 0xD7

// DatagramVersion is the datagram header version; the second byte.
const DatagramVersion byte = 1

// MaxDatagramSeq bounds the per-round sequence space. It caps the size of a
// shard's deduplication bitset against hostile input (2^20 sequence numbers
// = a 128 KiB bitset at most) and is far above any real epoch's frame count.
const MaxDatagramSeq = 1 << 20

// maxDatagramNode bounds the receiver id, mirroring the envelope's 32-bit
// node identifiers.
const maxDatagramNode = 1<<32 - 1

// Datagram is one decoded transport datagram: the barrier round it belongs
// to, its sequence number within that round's traffic to one shard, the
// receiving node, and the enclosed envelope frame (aliasing the input).
type Datagram struct {
	// Round is the parent's barrier round counter (monotonic across epochs
	// and query-set sub-rounds).
	Round uint64
	// Seq is the datagram's sequence number within (Round, shard).
	Seq int
	// To is the receiving node id.
	To int
	// Frame is the enclosed envelope frame; it aliases the input buffer.
	Frame []byte
}

// AppendDatagram appends the framed datagram encoding to dst: magic,
// version, round, seq, to, then the envelope frame occupying the rest of
// the datagram (the datagram boundary is the frame boundary, so no length
// prefix is needed).
func AppendDatagram(dst []byte, round uint64, seq, to int, frame []byte) []byte {
	dst = append(dst, DatagramMagic, DatagramVersion)
	dst = AppendUvarint(dst, round)
	dst = AppendUvarint(dst, uint64(seq))
	dst = AppendUvarint(dst, uint64(to))
	return append(dst, frame...)
}

// DatagramOverhead returns the header size AppendDatagram would add for the
// given identifiers — what the sender subtracts from the negotiated datagram
// size to bound the enclosed frame.
func DatagramOverhead(round uint64, seq, to int) int {
	return 2 + UvarintLen(round) + UvarintLen(uint64(seq)) + UvarintLen(uint64(to))
}

// DecodeDatagram parses one datagram. The returned Frame aliases data. Bad
// magic, bad version, out-of-range identifiers and truncated headers are
// errors, never panics: this is the first decoder on the untrusted receive
// path.
func DecodeDatagram(data []byte) (Datagram, error) {
	r := NewReader(data)
	var d Datagram
	if b := r.Byte(); r.Err() == nil && b != DatagramMagic {
		return Datagram{}, ErrMalformed
	}
	if b := r.Byte(); r.Err() == nil && b != DatagramVersion {
		return Datagram{}, ErrMalformed
	}
	d.Round = r.Uvarint()
	seq := r.Uvarint()
	to := r.Uvarint()
	if r.Err() == nil && (seq >= MaxDatagramSeq || to > maxDatagramNode) {
		return Datagram{}, ErrMalformed
	}
	d.Seq = int(seq)
	d.To = int(to)
	d.Frame = r.Take(r.Remaining())
	if err := r.Err(); err != nil {
		return Datagram{}, err
	}
	return d, nil
}
