package wire

import "math"

// Kind tags the two message schemes of the framework (§2): exact tree
// partials unicast to a parent, and duplicate-insensitive synopses broadcast
// up the rings.
type Kind uint8

const (
	// KindTree frames an exact tree partial result.
	KindTree Kind = 1
	// KindSynopsis frames a multi-path synopsis.
	KindSynopsis Kind = 2
)

// Version is the envelope format version; the first frame byte.
const Version = 1

// Envelope is the framed radio message of one transmission: the scheme tag,
// the epoch and sender, the piggybacked contributing-Count (an exact integer
// in the tributaries, an encoded FM sketch in the delta), the §4.2
// adaptation statistics, and the aggregate-specific payload produced by the
// aggregate's partial or synopsis codec.
//
// The simulator's ground-truth contributor bitset is deliberately NOT part
// of the envelope: it is bookkeeping about the network, not a field a real
// sensor message could carry, and must not count toward transmission cost.
type Envelope struct {
	// Kind is the scheme tag: tree partial or multi-path synopsis.
	Kind Kind
	// Epoch is the collection round the message belongs to.
	Epoch uint32
	// From is the sending node id.
	From uint32

	// Contrib is the exact contributing-node count of a tree partial
	// (KindTree only).
	Contrib int64

	// ContribSketch is the encoded duplicate-insensitive contributing-Count
	// sketch (KindSynopsis only).
	ContribSketch []byte

	// TopNC, MinNC and NCValid carry the §4.2 non-contributing subtree
	// statistics (KindSynopsis only). TopNC is descending; NCValid marks
	// presence.
	TopNC []int
	// MinNC is the smallest tracked non-contributing subtree size (see
	// TopNC).
	MinNC int
	// NCValid marks the presence of the TopNC/MinNC statistics (see TopNC).
	NCValid bool

	// Payload is the aggregate-specific encoding of the partial result or
	// synopsis.
	Payload []byte
}

// AppendEnvelope appends the framed encoding of e to dst.
func AppendEnvelope(dst []byte, e *Envelope) []byte {
	dst = append(dst, Version, byte(e.Kind))
	dst = AppendUvarint(dst, uint64(e.Epoch))
	dst = AppendUvarint(dst, uint64(e.From))
	switch e.Kind {
	case KindTree:
		dst = AppendVarint(dst, e.Contrib)
	case KindSynopsis:
		dst = AppendBytes(dst, e.ContribSketch)
		dst = AppendBool(dst, e.NCValid)
		if e.NCValid {
			dst = AppendUvarint(dst, uint64(len(e.TopNC)))
			for _, v := range e.TopNC {
				dst = AppendVarint(dst, int64(v))
			}
			dst = AppendVarint(dst, int64(e.MinNC))
		}
	}
	return AppendBytes(dst, e.Payload)
}

// DecodeEnvelope parses a frame produced by AppendEnvelope. The returned
// envelope's byte fields alias data. Trailing bytes, unknown versions and
// unknown kinds are errors. Each call allocates the TopNC slice afresh; hot
// receive loops decode through a reusable Decoder instead.
func DecodeEnvelope(data []byte) (Envelope, error) {
	var d Decoder
	return d.Decode(data)
}

// Decoder decodes envelopes with reusable scratch: the TopNC values of every
// decoded envelope are carved out of one growing arena instead of a fresh
// allocation per frame, so a steady-state receive loop decodes with zero
// allocations. The zero value is ready to use; a Decoder must not be shared
// between goroutines (the epoch engine keeps one per worker).
//
// Lifetime contract: the TopNC slices (and the byte fields, which alias the
// input data) of every envelope returned since the last Reset stay valid
// until the next Reset — the arena only ever grows between Resets, and
// growth copies, leaving earlier views intact.
type Decoder struct {
	topNC []int
}

// Reset releases the decoder's scratch for reuse. Envelopes decoded before
// the Reset must no longer be read.
func (d *Decoder) Reset() {
	d.topNC = d.topNC[:0]
}

// Decode parses a frame produced by AppendEnvelope, drawing TopNC storage
// from the decoder's arena. See the Decoder type docs for the lifetime
// contract; errors match DecodeEnvelope's.
func (d *Decoder) Decode(data []byte) (Envelope, error) {
	r := NewReader(data)
	var e Envelope
	if v := r.Byte(); r.Err() == nil && v != Version {
		return Envelope{}, ErrMalformed
	}
	e.Kind = Kind(r.Byte())
	epoch := r.Uvarint()
	from := r.Uvarint()
	if r.Err() == nil && (epoch > math.MaxUint32 || from > math.MaxUint32) {
		return Envelope{}, ErrMalformed
	}
	e.Epoch = uint32(epoch)
	e.From = uint32(from)
	switch e.Kind {
	case KindTree:
		e.Contrib = r.Varint()
	case KindSynopsis:
		e.ContribSketch = r.Bytes()
		e.NCValid = r.Bool()
		if e.NCValid {
			n := r.Count(1)
			if n > 0 {
				base := len(d.topNC)
				for i := 0; i < n; i++ {
					d.topNC = append(d.topNC, int(r.Varint()))
				}
				e.TopNC = d.topNC[base:]
			}
			e.MinNC = int(r.Varint())
		}
	default:
		if r.Err() == nil {
			return Envelope{}, ErrMalformed
		}
	}
	e.Payload = r.Bytes()
	if err := r.Finish(); err != nil {
		return Envelope{}, err
	}
	return e, nil
}
