package wire

import "math"

// Kind tags the two message schemes of the framework (§2): exact tree
// partials unicast to a parent, and duplicate-insensitive synopses broadcast
// up the rings.
type Kind uint8

const (
	// KindTree frames an exact tree partial result.
	KindTree Kind = 1
	// KindSynopsis frames a multi-path synopsis.
	KindSynopsis Kind = 2
)

// Version is the envelope format version; the first frame byte.
const Version = 1

// Envelope is the framed radio message of one transmission: the scheme tag,
// the epoch and sender, the piggybacked contributing-Count (an exact integer
// in the tributaries, an encoded FM sketch in the delta), the §4.2
// adaptation statistics, and the aggregate-specific payload produced by the
// aggregate's partial or synopsis codec.
//
// The simulator's ground-truth contributor bitset is deliberately NOT part
// of the envelope: it is bookkeeping about the network, not a field a real
// sensor message could carry, and must not count toward transmission cost.
type Envelope struct {
	Kind  Kind
	Epoch uint32
	From  uint32

	// Contrib is the exact contributing-node count of a tree partial
	// (KindTree only).
	Contrib int64

	// ContribSketch is the encoded duplicate-insensitive contributing-Count
	// sketch (KindSynopsis only).
	ContribSketch []byte

	// TopNC, MinNC and NCValid carry the §4.2 non-contributing subtree
	// statistics (KindSynopsis only). TopNC is descending; NCValid marks
	// presence.
	TopNC   []int
	MinNC   int
	NCValid bool

	// Payload is the aggregate-specific encoding of the partial result or
	// synopsis.
	Payload []byte
}

// AppendEnvelope appends the framed encoding of e to dst.
func AppendEnvelope(dst []byte, e *Envelope) []byte {
	dst = append(dst, Version, byte(e.Kind))
	dst = AppendUvarint(dst, uint64(e.Epoch))
	dst = AppendUvarint(dst, uint64(e.From))
	switch e.Kind {
	case KindTree:
		dst = AppendVarint(dst, e.Contrib)
	case KindSynopsis:
		dst = AppendBytes(dst, e.ContribSketch)
		dst = AppendBool(dst, e.NCValid)
		if e.NCValid {
			dst = AppendUvarint(dst, uint64(len(e.TopNC)))
			for _, v := range e.TopNC {
				dst = AppendVarint(dst, int64(v))
			}
			dst = AppendVarint(dst, int64(e.MinNC))
		}
	}
	return AppendBytes(dst, e.Payload)
}

// DecodeEnvelope parses a frame produced by AppendEnvelope. The returned
// envelope's byte fields alias data. Trailing bytes, unknown versions and
// unknown kinds are errors.
func DecodeEnvelope(data []byte) (Envelope, error) {
	r := NewReader(data)
	var e Envelope
	if v := r.Byte(); r.Err() == nil && v != Version {
		return Envelope{}, ErrMalformed
	}
	e.Kind = Kind(r.Byte())
	epoch := r.Uvarint()
	from := r.Uvarint()
	if r.Err() == nil && (epoch > math.MaxUint32 || from > math.MaxUint32) {
		return Envelope{}, ErrMalformed
	}
	e.Epoch = uint32(epoch)
	e.From = uint32(from)
	switch e.Kind {
	case KindTree:
		e.Contrib = r.Varint()
	case KindSynopsis:
		e.ContribSketch = r.Bytes()
		e.NCValid = r.Bool()
		if e.NCValid {
			n := r.Count(1)
			if n > 0 {
				e.TopNC = make([]int, n)
				for i := range e.TopNC {
					e.TopNC[i] = int(r.Varint())
				}
			}
			e.MinNC = int(r.Varint())
		}
	default:
		if r.Err() == nil {
			return Envelope{}, ErrMalformed
		}
	}
	e.Payload = r.Bytes()
	if err := r.Finish(); err != nil {
		return Envelope{}, err
	}
	return e, nil
}
