// Package wire is the byte-level message codec layer: every partial result,
// synopsis and piggybacked statistic that the paper costs in 32-bit words is
// serialized here into a deterministic binary format, so message sizes are
// measured from real encoded bytes instead of hand-maintained word
// arithmetic. The package sits at the bottom of the dependency stack — it
// imports nothing — and exposes two styles of API:
//
//   - append-style encoders, AppendX(dst []byte, ...) []byte, which grow a
//     caller-owned buffer and allocate nothing when the buffer has capacity
//     (the runner reuses one scratch buffer across all transmissions);
//   - a Reader with sticky-error decoding, so codecs chain field reads and
//     check a single error at the end. Malformed or truncated input yields
//     an error, never a panic — decode paths are fuzzed on arbitrary bytes.
//
// Integers use unsigned LEB128 varints (zigzag for signed values) and
// float64s are varint-encoded after byte reversal: the bit patterns of
// sensor-style readings (integers, short decimals) have long runs of
// trailing zero bytes, which the reversal turns into leading zeros that the
// varint drops. A reading like 25.0 costs 2 bytes; a worst-case float64
// costs 10. The encoding is exact for every float64 — losslessness is what
// lets the runner transmit real bytes while keeping epoch answers
// bit-identical to the in-memory implementation.
package wire

import (
	"errors"
	"math"
	"math/bits"
)

// BytesPerWord is the size of the paper's message accounting unit: one
// 32-bit word.
const BytesPerWord = 4

// Words converts an encoded byte length to the paper's 32-bit word
// accounting unit, rounding up: a message of n bytes occupies ceil(n/4)
// words on a TinyDB-style radio.
func Words(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + BytesPerWord - 1) / BytesPerWord
}

// MaxUvarintLen is the worst-case encoded size of a 64-bit varint.
const MaxUvarintLen = 10

// ErrTruncated reports input that ended before a field was complete.
var ErrTruncated = errors.New("wire: truncated input")

// ErrMalformed reports input that cannot be a valid encoding (varint
// overflow, bad tag, trailing garbage).
var ErrMalformed = errors.New("wire: malformed input")

// AppendUvarint appends v in unsigned LEB128 form.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// AppendVarint appends v zigzag-encoded, so small negative values stay
// small on the wire.
func AppendVarint(dst []byte, v int64) []byte {
	return AppendUvarint(dst, uint64(v)<<1^uint64(v>>63))
}

// UvarintLen returns the encoded size of v in unsigned LEB128 form — the
// size AppendUvarint would append.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// PutUvarint encodes v into b, which must be at least UvarintLen(v) bytes —
// the in-place form used to patch a single varint field (the epoch of a
// memoized frame) without re-encoding the rest of the message.
func PutUvarint(b []byte, v uint64) {
	i := 0
	for v >= 0x80 {
		b[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	b[i] = byte(v)
}

// AppendUint32 appends v as four little-endian bytes — the fixed-width
// encoding used for FM sketch bitmaps, where every bit is payload.
func AppendUint32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AppendUint64 appends v as eight little-endian bytes.
func AppendUint64(dst []byte, v uint64) []byte {
	dst = AppendUint32(dst, uint32(v))
	return AppendUint32(dst, uint32(v>>32))
}

// AppendFloat64 appends v exactly: the IEEE-754 bit pattern is byte-reversed
// and varint-encoded, compressing the trailing zero bytes of typical sensor
// readings. Every float64 (including NaNs, infinities and -0) round-trips
// bit-for-bit.
func AppendFloat64(dst []byte, v float64) []byte {
	return AppendUvarint(dst, bits.ReverseBytes64(math.Float64bits(v)))
}

// AppendBool appends a single 0/1 byte.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendBytes appends b length-prefixed (uvarint length, then the raw
// bytes).
func AppendBytes(dst []byte, b []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Reader decodes a byte slice with sticky errors: after the first failure
// every further read returns the zero value and Err reports the cause, so
// codecs can decode a whole struct and check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over data. The reader never copies: Bytes and
// Take return subslices of data.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Finish verifies the input was fully consumed and returns the reader's
// error state. Trailing bytes are malformed input: every frame knows its own
// length.
func (r *Reader) Finish() error {
	if r.err == nil && r.Remaining() != 0 {
		r.fail(ErrMalformed)
	}
	return r.err
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uvarint reads an unsigned LEB128 varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	for i := 0; ; i++ {
		if i == MaxUvarintLen {
			r.fail(ErrMalformed)
			return 0
		}
		if r.off >= len(r.buf) {
			r.fail(ErrTruncated)
			return 0
		}
		b := r.buf[r.off]
		r.off++
		if i == MaxUvarintLen-1 && b > 1 {
			r.fail(ErrMalformed) // 64-bit overflow
			return 0
		}
		v |= uint64(b&0x7f) << uint(7*i)
		if b < 0x80 {
			return v
		}
	}
}

// Varint reads a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	u := r.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Uint32 reads four little-endian bytes.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 4 {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off:]
	r.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Uint64 reads eight little-endian bytes.
func (r *Reader) Uint64() uint64 {
	lo := r.Uint32()
	hi := r.Uint32()
	return uint64(lo) | uint64(hi)<<32
}

// Float64 reads a float encoded by AppendFloat64.
func (r *Reader) Float64() float64 {
	return math.Float64frombits(bits.ReverseBytes64(r.Uvarint()))
}

// Bool reads a 0/1 byte; any other value is malformed.
func (r *Reader) Bool() bool {
	b := r.Byte()
	if b > 1 {
		r.fail(ErrMalformed)
		return false
	}
	return b == 1
}

// Bytes reads a length-prefixed byte string written by AppendBytes. The
// returned slice aliases the reader's input.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	return r.Take(int(n))
}

// Take reads exactly n raw bytes, aliasing the reader's input.
func (r *Reader) Take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// Count reads a uvarint element count and validates it against the bytes
// actually remaining: each element needs at least minElemBytes bytes, so a
// hostile length cannot force a huge allocation.
func (r *Reader) Count(minElemBytes int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(r.Remaining()/minElemBytes) {
		r.fail(ErrMalformed)
		return 0
	}
	return int(n)
}
