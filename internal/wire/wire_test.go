package wire

import (
	"bytes"
	"math"
	"testing"
)

func TestWords(t *testing.T) {
	cases := []struct{ n, want int }{
		{-1, 0}, {0, 0}, {1, 1}, {3, 1}, {4, 1}, {5, 2}, {8, 2}, {160, 40},
	}
	for _, c := range cases {
		if got := Words(c.n); got != c.want {
			t.Errorf("Words(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<32 - 1, 1 << 40, math.MaxUint64}
	for _, v := range vals {
		buf := AppendUvarint(nil, v)
		r := NewReader(buf)
		if got := r.Uvarint(); got != v || r.Finish() != nil {
			t.Errorf("uvarint %d -> %d (err %v)", v, got, r.Err())
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 63, -64, 64, -65, 1 << 30, -(1 << 30), math.MaxInt64, math.MinInt64}
	for _, v := range vals {
		buf := AppendVarint(nil, v)
		r := NewReader(buf)
		if got := r.Varint(); got != v || r.Finish() != nil {
			t.Errorf("varint %d -> %d (err %v)", v, got, r.Err())
		}
	}
}

func TestSmallNegativeVarintsStaySmall(t *testing.T) {
	if n := len(AppendVarint(nil, -1)); n != 1 {
		t.Fatalf("-1 encoded to %d bytes, want 1 (zigzag)", n)
	}
}

func TestFixedWidthRoundTrip(t *testing.T) {
	buf := AppendUint32(nil, 0xDEADBEEF)
	buf = AppendUint64(buf, 0x0123456789ABCDEF)
	r := NewReader(buf)
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("uint32 = %x", got)
	}
	if got := r.Uint64(); got != 0x0123456789ABCDEF {
		t.Fatalf("uint64 = %x", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64RoundTripExact(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1, -1, 25, 123.456, 1e-300, 1e300,
		math.Inf(1), math.Inf(-1), math.NaN(), math.SmallestNonzeroFloat64, math.MaxFloat64}
	for _, v := range vals {
		buf := AppendFloat64(nil, v)
		r := NewReader(buf)
		got := r.Float64()
		if r.Finish() != nil || math.Float64bits(got) != math.Float64bits(v) {
			t.Errorf("float %v (%x) -> %v (%x)", v, math.Float64bits(v), got, math.Float64bits(got))
		}
	}
}

func TestFloat64CompactForSimpleValues(t *testing.T) {
	// The whole point of the reversed-varint float encoding: typical sensor
	// readings fit one 32-bit word.
	for _, v := range []float64{0, 1, 25, 100, 1000, 2.5} {
		if n := len(AppendFloat64(nil, v)); n > BytesPerWord {
			t.Errorf("float %v encoded to %d bytes, want <= %d", v, n, BytesPerWord)
		}
	}
}

func TestBytesAndBool(t *testing.T) {
	buf := AppendBool(nil, true)
	buf = AppendBool(buf, false)
	buf = AppendBytes(buf, []byte("hello"))
	buf = AppendBytes(buf, nil)
	r := NewReader(buf)
	if !r.Bool() || r.Bool() {
		t.Fatal("bools")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("bytes = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Fatalf("empty bytes = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderStickyErrors(t *testing.T) {
	r := NewReader([]byte{0x80}) // truncated varint
	if r.Uvarint() != 0 || r.Err() != ErrTruncated {
		t.Fatal("expected truncation")
	}
	// Every later read stays zero with the first error.
	if r.Uint32() != 0 || r.Float64() != 0 || r.Bool() || r.Take(1) != nil {
		t.Fatal("reads after error must be zero")
	}
	if r.Err() != ErrTruncated {
		t.Fatalf("sticky error lost: %v", r.Err())
	}
}

func TestReaderMalformed(t *testing.T) {
	// 11-byte varint: overflow.
	r := NewReader(bytes.Repeat([]byte{0x80}, 11))
	r.Uvarint()
	if r.Err() != ErrMalformed {
		t.Fatalf("overlong varint: %v", r.Err())
	}
	// Trailing garbage.
	r = NewReader([]byte{1, 2})
	r.Byte()
	if err := r.Finish(); err != ErrMalformed {
		t.Fatalf("trailing byte: %v", err)
	}
	// Bad bool.
	r = NewReader([]byte{7})
	r.Bool()
	if r.Err() != ErrMalformed {
		t.Fatalf("bool 7: %v", r.Err())
	}
	// Hostile count: claims 1<<40 elements in 2 bytes.
	r = NewReader(append(AppendUvarint(nil, 1<<40), 0, 0))
	r.Count(1)
	if r.Err() != ErrMalformed {
		t.Fatalf("hostile count: %v", r.Err())
	}
}

func TestAppendReusesCapacity(t *testing.T) {
	buf := make([]byte, 0, 64)
	out := AppendUvarint(buf, 300)
	out = AppendFloat64(out, 25)
	out = AppendUint32(out, 9)
	if &buf[:1][0] != &out[:1][0] {
		t.Fatal("append-style encoders must reuse the caller's buffer")
	}
}

func TestEnvelopeTreeRoundTrip(t *testing.T) {
	e := &Envelope{Kind: KindTree, Epoch: 42, From: 17, Contrib: 123, Payload: []byte{9, 8, 7}}
	buf := AppendEnvelope(nil, e)
	got, err := DecodeEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindTree || got.Epoch != 42 || got.From != 17 || got.Contrib != 123 ||
		!bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestEnvelopeSynopsisRoundTrip(t *testing.T) {
	e := &Envelope{
		Kind: KindSynopsis, Epoch: 7, From: 3,
		ContribSketch: []byte{1, 2, 3, 4},
		TopNC:         []int{9, 4, 0},
		MinNC:         -1,
		NCValid:       true,
		Payload:       []byte{0xAA},
	}
	buf := AppendEnvelope(nil, e)
	got, err := DecodeEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.NCValid || got.MinNC != -1 || len(got.TopNC) != 3 || got.TopNC[0] != 9 ||
		!bytes.Equal(got.ContribSketch, e.ContribSketch) || !bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("round trip: %+v", got)
	}
	// Without NC stats the frame is shorter.
	e2 := &Envelope{Kind: KindSynopsis, Epoch: 7, From: 3, ContribSketch: []byte{1}, Payload: []byte{2}}
	if len(AppendEnvelope(nil, e2)) >= len(buf) {
		t.Fatal("NCValid=false must not pay for NC fields")
	}
}

func TestEnvelopeRejectsBadFrames(t *testing.T) {
	good := AppendEnvelope(nil, &Envelope{Kind: KindTree, Epoch: 1, From: 2, Contrib: 3})
	// Truncations at every length must error, not panic.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeEnvelope(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Trailing garbage.
	if _, err := DecodeEnvelope(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// Wrong version.
	bad := append([]byte{}, good...)
	bad[0] = 99
	if _, err := DecodeEnvelope(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	// Unknown kind.
	bad = append([]byte{}, good...)
	bad[1] = 9
	if _, err := DecodeEnvelope(bad); err == nil {
		t.Fatal("bad kind accepted")
	}
	// Epoch/From beyond uint32 must be rejected, not silently truncated.
	over := []byte{Version, byte(KindTree)}
	over = AppendUvarint(over, 1<<32) // epoch out of range
	over = AppendUvarint(over, 2)
	over = AppendVarint(over, 3)
	over = AppendBytes(over, nil)
	if _, err := DecodeEnvelope(over); err != ErrMalformed {
		t.Fatalf("oversized epoch: %v", err)
	}
}

func FuzzUvarintRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(300))
	f.Add(uint64(math.MaxUint64))
	f.Fuzz(func(t *testing.T, v uint64) {
		r := NewReader(AppendUvarint(nil, v))
		if got := r.Uvarint(); got != v || r.Finish() != nil {
			t.Fatalf("%d -> %d (%v)", v, got, r.Err())
		}
	})
}

func FuzzFloat64RoundTrip(f *testing.F) {
	f.Add(25.0)
	f.Add(math.Inf(-1))
	f.Add(math.NaN())
	f.Fuzz(func(t *testing.T, v float64) {
		r := NewReader(AppendFloat64(nil, v))
		got := r.Float64()
		if r.Finish() != nil || math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("%x -> %x (%v)", math.Float64bits(v), math.Float64bits(got), r.Err())
		}
	})
}

func FuzzDecodeEnvelope(f *testing.F) {
	f.Add(AppendEnvelope(nil, &Envelope{Kind: KindTree, Epoch: 3, From: 4, Contrib: 5, Payload: []byte{1}}))
	f.Add(AppendEnvelope(nil, &Envelope{Kind: KindSynopsis, Epoch: 3, From: 4,
		ContribSketch: []byte{1, 2}, NCValid: true, TopNC: []int{4, 2}, MinNC: 2, Payload: []byte{1}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEnvelope(data) // must never panic or over-allocate
		if err != nil {
			return
		}
		// Valid frames must re-encode to the identical bytes (canonical form).
		if !bytes.Equal(AppendEnvelope(nil, &e), data) {
			t.Skip("non-canonical varint forms are accepted but not re-emitted")
		}
	})
}
