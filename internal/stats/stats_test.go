package stats

import (
	"math"
	"testing"
)

func TestRelativeRMS(t *testing.T) {
	got := RelativeRMS([]float64{90, 110}, []float64{100, 100})
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RMS = %v, want 0.1", got)
	}
	if got := RelativeRMS([]float64{100}, []float64{100}); got != 0 {
		t.Fatalf("exact answers should give 0, got %v", got)
	}
	if !math.IsNaN(RelativeRMS(nil, nil)) {
		t.Fatal("empty should be NaN")
	}
	if !math.IsNaN(RelativeRMS([]float64{1}, []float64{1, 2})) {
		t.Fatal("length mismatch should be NaN")
	}
	if !math.IsNaN(RelativeRMS([]float64{1, -1}, []float64{1, -1})) {
		// mean truth zero
		t.Fatal("zero mean truth should be NaN")
	}
}

func TestRelativeErrors(t *testing.T) {
	errs := RelativeErrors([]float64{90, 120, 5}, []float64{100, 100, 0})
	if math.Abs(errs[0]-0.1) > 1e-12 || math.Abs(errs[1]-0.2) > 1e-12 {
		t.Fatalf("errors = %v", errs)
	}
	if !math.IsNaN(errs[2]) {
		t.Fatal("zero truth entry should be NaN")
	}
}

func TestMeanMax(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Max([]float64{1, 5, 3}) != 5 {
		t.Fatal("max")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty inputs should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 || Quantile(xs, 0.5) != 3 {
		t.Fatal("quantiles wrong")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty should be NaN")
	}
}

func TestSmooth(t *testing.T) {
	xs := []float64{0, 10, 0, 10, 0}
	sm := Smooth(xs, 3)
	if len(sm) != len(xs) {
		t.Fatal("length changed")
	}
	// Interior points average their neighbourhood.
	if math.Abs(sm[2]-20.0/3) > 1e-12 {
		t.Fatalf("sm[2] = %v", sm[2])
	}
	// NaNs are skipped, not propagated.
	withNaN := Smooth([]float64{1, math.NaN(), 3}, 3)
	if math.IsNaN(withNaN[1]) {
		t.Fatal("NaN propagated through Smooth")
	}
	// Even widths are bumped to odd; width < 1 behaves as 1.
	if got := Smooth(xs, 0); got[1] != 10 {
		t.Fatalf("width-0 smooth changed values: %v", got)
	}
	all := Smooth([]float64{math.NaN()}, 3)
	if !math.IsNaN(all[0]) {
		t.Fatal("all-NaN window must stay NaN")
	}
}
