// Package stats provides the error metrics of §7: the relative RMS error of
// a series of answers ((1/V)·sqrt(Σ(Vt−V)²/T), §7.3), per-epoch relative
// errors for the timeline plots (Figure 6), and small summary helpers.
package stats

import (
	"math"
	"sort"
)

// RelativeRMS computes the paper's error metric for a run: answers Vt
// against per-epoch truths. The normaliser V is the mean truth, matching
// the paper's single "actual value" when the truth is constant.
func RelativeRMS(answers, truth []float64) float64 {
	if len(answers) == 0 || len(answers) != len(truth) {
		return math.NaN()
	}
	var sq, mean float64
	for i := range answers {
		d := answers[i] - truth[i]
		sq += d * d
		mean += truth[i]
	}
	mean /= float64(len(truth))
	if mean == 0 {
		return math.NaN()
	}
	return math.Sqrt(sq/float64(len(answers))) / mean
}

// RelativeErrors returns the per-epoch |Vt−V|/V series (Figure 6's metric).
func RelativeErrors(answers, truth []float64) []float64 {
	out := make([]float64, len(answers))
	for i := range answers {
		if truth[i] == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = math.Abs(answers[i]-truth[i]) / truth[i]
	}
	return out
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by nearest rank.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// Smooth returns a centered moving average of width w (w forced odd), used
// to render the Figure 6 timelines legibly in text.
func Smooth(xs []float64, w int) []float64 {
	if w < 1 {
		w = 1
	}
	if w%2 == 0 {
		w++
	}
	half := w / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		s, n := 0.0, 0
		for j := lo; j <= hi; j++ {
			if !math.IsNaN(xs[j]) {
				s += xs[j]
				n++
			}
		}
		if n == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = s / float64(n)
		}
	}
	return out
}
