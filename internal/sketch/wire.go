package sketch

import (
	"encoding/binary"
	"fmt"

	"tributarydelta/internal/wire"
)

// Wire codec.
//
// The wire encoding of a sketch is its K bitmaps as fixed-width 32-bit
// words: exactly K words (4K bytes), the straightforward "k 32-bit FM
// bitmaps" message of the Count/Sum synopses (Figure 3). Unlike the
// run-length EncodeCompact (which drops bits above the fringe window and is
// kept for the 48-byte TinyDB packing experiments), the wire codec is
// lossless: it is what the runner actually transmits, so the decoded sketch
// must be bit-identical to the sender's.

// WireBytes returns the encoded size of a k-bitmap sketch in bytes.
func WireBytes(k int) int { return k * wire.BytesPerWord }

// WireWords returns the encoded size of a k-bitmap sketch in 32-bit words:
// exactly k, one word per bitmap.
func WireWords(k int) int { return wire.Words(WireBytes(k)) }

// AppendWire appends the lossless wire encoding of the sketch to dst. The
// packed uint64 words go out in one bulk extension, 8 bytes per store — the
// little-endian image of a uint64 word is exactly the two little-endian
// 32-bit bitmaps it packs, so this is byte-identical to (and half the work
// of) a per-bitmap encoder. This is the runner's per-broadcast hot path.
func (s *Sketch) AppendWire(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, WireBytes(s.k))...)
	pairs := s.k / 2
	for i := 0; i < pairs; i++ {
		binary.LittleEndian.PutUint64(dst[off+i*8:], s.words[i])
	}
	if s.k&1 == 1 {
		binary.LittleEndian.PutUint32(dst[off+pairs*8:], uint32(s.words[pairs]))
	}
	return dst
}

// DecodeWire parses a sketch of k bitmaps from exactly WireBytes(k) bytes.
// The bitmap count is carried by context (the aggregate's configuration),
// not the message, exactly as a fixed deployment-wide query plan would.
func DecodeWire(data []byte, k int) (*Sketch, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sketch: decode with non-positive k %d", k)
	}
	if len(data) != WireBytes(k) {
		return nil, fmt.Errorf("sketch: encoding is %d bytes, want %d for k=%d: %w",
			len(data), WireBytes(k), k, wire.ErrMalformed)
	}
	s := New(k)
	if err := s.LoadWire(data); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadWire overwrites s's bitmaps from data, which must be exactly
// WireBytes(s.K()) bytes — the allocation-free decode used by pools that
// recycle sketches across messages. Like AppendWire it moves two bitmaps per
// 64-bit load.
func (s *Sketch) LoadWire(data []byte) error {
	if len(data) != WireBytes(s.k) {
		return fmt.Errorf("sketch: encoding is %d bytes, want %d for k=%d: %w",
			len(data), WireBytes(s.k), s.k, wire.ErrMalformed)
	}
	pairs := s.k / 2
	for i := 0; i < pairs; i++ {
		s.words[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	if s.k&1 == 1 {
		s.words[pairs] = uint64(binary.LittleEndian.Uint32(data[pairs*8:]))
	}
	return nil
}

// ReadWire parses a sketch of k bitmaps from a reader positioned at its
// first byte — the form used when a sketch is one field of a larger
// message. On underflow the reader's error is set and an empty sketch is
// returned.
func ReadWire(r *wire.Reader, k int) *Sketch {
	s := New(k)
	if data := r.Take(k * wire.BytesPerWord); data != nil {
		_ = s.LoadWire(data) // length is exact by construction
	}
	return s
}
