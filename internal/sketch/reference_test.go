package sketch

import (
	"bytes"
	"testing"

	"tributarydelta/internal/xrand"
)

// The historical bit-at-a-time compact codec, kept verbatim as the reference
// the word-level EncodeCompactInto/DecodeCompactInto implementations are
// differentially tested against: the 64-bit-accumulator packers must emit
// byte-identical streams and reconstruct bit-identical sketches.

// bitWriter packs values MSB-first into a byte slice.
type bitWriter struct {
	buf []byte
	n   int // bits written
}

func newBitWriter(capacityBits int) *bitWriter {
	return &bitWriter{buf: make([]byte, 0, (capacityBits+7)/8)}
}

func (w *bitWriter) write(v uint32, width int) {
	for i := width - 1; i >= 0; i-- {
		if w.n%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		bit := (v >> uint(i)) & 1
		w.buf[w.n/8] |= byte(bit) << uint(7-w.n%8)
		w.n++
	}
}

func (w *bitWriter) bytes() []byte { return w.buf }

type bitReader struct {
	buf []byte
	n   int
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

func (r *bitReader) read(width int) uint32 {
	var v uint32
	for i := 0; i < width; i++ {
		var bit byte
		if r.n/8 < len(r.buf) {
			bit = (r.buf[r.n/8] >> uint(7-r.n%8)) & 1
		}
		v = v<<1 | uint32(bit)
		r.n++
	}
	return v
}

// encodeCompactReference is the pre-word-level EncodeCompact.
func encodeCompactReference(s *Sketch) []byte {
	w := newBitWriter(EncodedBits(s.K()))
	for m := 0; m < s.K(); m++ {
		r := s.lowestZero(m)
		if r > (1<<runBits)-1 {
			r = (1 << runBits) - 1
		}
		w.write(uint32(r), runBits)
		var fringe uint32
		if r < BitmapBits {
			fringe = (s.bitmap(m) >> uint(r+1)) & ((1 << fringeBits) - 1)
		}
		w.write(fringe, fringeBits)
	}
	return w.bytes()
}

// decodeCompactReference is the pre-word-level DecodeCompact.
func decodeCompactReference(data []byte, k int) (*Sketch, error) {
	need := (EncodedBits(k) + 7) / 8
	if len(data) < need {
		return nil, errTruncatedRef
	}
	r := newBitReader(data)
	s := New(k)
	for m := 0; m < k; m++ {
		run := int(r.read(runBits))
		fringe := r.read(fringeBits)
		var bm uint32
		if run >= BitmapBits {
			bm = ^uint32(0)
		} else {
			bm = (1 << uint(run)) - 1
			bm |= fringe << uint(run+1)
		}
		if m&1 == 0 {
			s.words[m>>1] = uint64(bm)
		} else {
			s.words[m>>1] |= uint64(bm) << BitmapBits
		}
	}
	return s, nil
}

type refError string

func (e refError) Error() string { return string(e) }

const errTruncatedRef = refError("sketch: compact encoding truncated")

// randomSketch fills a sketch of k bitmaps with a deterministic pseudo-random
// bit pattern derived from seed — arbitrary bitmaps, not just reachable ones,
// so the codecs are compared over the whole 32k-bit input space.
func randomSketch(seed uint64, k int) *Sketch {
	s := New(k)
	src := xrand.NewSource(seed, uint64(k))
	for m := 0; m < k; m++ {
		bm := uint32(src.Uint64())
		if m&1 == 0 {
			s.words[m>>1] = uint64(bm)
		} else {
			s.words[m>>1] |= uint64(bm) << BitmapBits
		}
	}
	return s
}

func sketchEqual(a, b *Sketch) bool {
	if a.k != b.k {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}

// TestCompactCodecMatchesReference is the differential pin: across bitmap
// counts (odd and even, partial final bytes and whole) and many random
// sketches, the word-level encoder is byte-identical to the bit-at-a-time
// reference and the word-level decoder reconstructs the identical sketch.
func TestCompactCodecMatchesReference(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 8, 15, 16, 39, 40, 63} {
		for seed := uint64(1); seed <= 50; seed++ {
			s := randomSketch(seed, k)
			want := encodeCompactReference(s)
			got := s.EncodeCompactInto(nil)
			if !bytes.Equal(got, want) {
				t.Fatalf("k=%d seed=%d: word-level encoding %x != reference %x", k, seed, got, want)
			}
			if enc := s.EncodeCompact(); !bytes.Equal(enc, want) {
				t.Fatalf("k=%d seed=%d: EncodeCompact diverged from reference", k, seed)
			}
			refDec, err := decodeCompactReference(want, k)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeCompact(got, k)
			if err != nil {
				t.Fatal(err)
			}
			if !sketchEqual(dec, refDec) {
				t.Fatalf("k=%d seed=%d: word-level decode differs from reference decode", k, seed)
			}
		}
	}
}

// TestDecodeCompactIntoOverwrites pins that the recycling decode fully
// overwrites stale state, including the unused high half of an odd-k
// sketch's final word.
func TestDecodeCompactIntoOverwrites(t *testing.T) {
	for _, k := range []int{3, 5, 40} {
		src := randomSketch(7, k)
		enc := src.EncodeCompactInto(nil)
		dst := randomSketch(1234, k) // stale garbage
		if err := dst.DecodeCompactInto(enc); err != nil {
			t.Fatal(err)
		}
		want, err := decodeCompactReference(enc, k)
		if err != nil {
			t.Fatal(err)
		}
		if !sketchEqual(dst, want) {
			t.Fatalf("k=%d: DecodeCompactInto left stale bits", k)
		}
	}
}

// FuzzCompactCodecDifferential fuzzes raw word material into sketches and
// checks encoder/decoder equivalence with the reference implementation.
func FuzzCompactCodecDifferential(f *testing.F) {
	f.Add(uint64(1), uint64(2), 40)
	f.Add(uint64(0), uint64(0), 1)
	f.Add(^uint64(0), ^uint64(0), 7)
	f.Fuzz(func(t *testing.T, w0, w1 uint64, k int) {
		if k <= 0 || k > 128 {
			return
		}
		s := New(k)
		for i := range s.words {
			if i&1 == 0 {
				s.words[i] = w0
			} else {
				s.words[i] = w1
			}
			w0, w1 = xrand.Mix64(w0), xrand.Mix64(w1)
		}
		if k&1 == 1 {
			s.words[len(s.words)-1] &= (1 << BitmapBits) - 1
		}
		want := encodeCompactReference(s)
		got := s.EncodeCompactInto(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("encoding mismatch: %x != %x", got, want)
		}
		dec, err := DecodeCompact(got, k)
		if err != nil {
			t.Fatal(err)
		}
		refDec, err := decodeCompactReference(want, k)
		if err != nil {
			t.Fatal(err)
		}
		if !sketchEqual(dec, refDec) {
			t.Fatal("decode mismatch against reference")
		}
	})
}

// FuzzDecodeCompactBytes feeds arbitrary byte streams to both decoders: they
// must agree on every input, including streams with trailing garbage and
// fringe patterns unreachable by any encoder.
func FuzzDecodeCompactBytes(f *testing.F) {
	f.Add([]byte{0xff, 0x01, 0x02}, 2)
	f.Add(make([]byte, 45), 40)
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		if k <= 0 || k > 128 {
			return
		}
		dec, err := DecodeCompact(data, k)
		refDec, refErr := decodeCompactReference(data, k)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("error mismatch: %v vs %v", err, refErr)
		}
		if err != nil {
			return
		}
		if !sketchEqual(dec, refDec) {
			t.Fatal("decode mismatch against reference")
		}
	})
}

var sinkB []byte

// BenchmarkEncodeCompactInto measures the word-level encoder on the paper's
// 40-bitmap configuration with a caller-owned buffer (the zero-allocation
// form).
func BenchmarkEncodeCompactInto(b *testing.B) {
	s := New(40)
	for i := uint64(0); i < 10000; i++ {
		s.Insert(1, i)
	}
	buf := make([]byte, 0, EncodedBytes(40))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.EncodeCompactInto(buf[:0])
	}
	sinkB = buf
}

// BenchmarkDecodeCompact measures the word-level decoder (recycling form).
func BenchmarkDecodeCompact(b *testing.B) {
	s := New(40)
	for i := uint64(0); i < 10000; i++ {
		s.Insert(1, i)
	}
	enc := s.EncodeCompact()
	dst := New(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.DecodeCompactInto(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeCompactReference is the bit-at-a-time baseline, for
// comparing against BenchmarkEncodeCompactInto in the same run.
func BenchmarkEncodeCompactReference(b *testing.B) {
	s := New(40)
	for i := uint64(0); i < 10000; i++ {
		s.Insert(1, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkB = encodeCompactReference(s)
	}
}
