// Package sketch implements the duplicate-insensitive counting machinery the
// multi-path ("delta") side of Tributary-Delta relies on: Flajolet–Martin
// PCSA bitmap sketches [Flajolet & Martin 1985], the efficient insertion of
// large counts used by Considine et al. for Sum, a compact run-length
// encoding that fits 40 bitmaps into a 48-byte TinyDB message (§7.1 of the
// paper), and the duplicate-insensitive sum operator ⊕ (Definition 1) used by
// the multi-path frequent items algorithm (Algorithm 2).
//
// Duplicate insensitivity comes from insertion being a pure function of the
// inserted item's identity: re-inserting the same item, or OR-ing two copies
// of a sketch that both saw it, leaves the sketch unchanged.
package sketch

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"tributarydelta/internal/xrand"
)

// phi is the Flajolet–Martin magic constant correcting the expectation of
// 2^R toward the true count.
const phi = 0.77351

// kappa is the small-range correction exponent (Scheuermann & Mauve); it
// removes most of the bias of the plain PCSA estimator for counts below ~10k.
const kappa = 1.75

// BitmapBits is the width of one FM bitmap. The paper uses 32-bit Sum
// synopses; counts up to ~2^32 per bitmap are representable, far beyond any
// workload here.
const BitmapBits = 32

// directInsertThreshold is the count below which AddCount inserts items one
// by one (exact and cheap) instead of simulating the insertion distribution.
const directInsertThreshold = 256

// Sketch is a PCSA summary: K independent FM bitmaps. An item is hashed to
// one bitmap and sets a geometrically distributed bit in it. The standard
// error of the estimate is about 0.78/sqrt(K); the paper's 40-bitmap
// configuration gives the ~12% approximation error reported in Figure 2.
//
// The zero value is not usable; construct with New.
type Sketch struct {
	bitmaps []uint32
}

// New returns an empty sketch with k bitmaps. It panics if k <= 0.
func New(k int) *Sketch {
	if k <= 0 {
		panic("sketch: New with non-positive k")
	}
	return &Sketch{bitmaps: make([]uint32, k)}
}

// KForRelativeError returns the number of bitmaps needed for a target
// relative standard error eps (0 < eps < 1): k ≈ (0.78/eps)^2.
func KForRelativeError(eps float64) int {
	if eps <= 0 || eps >= 1 {
		panic("sketch: relative error must be in (0,1)")
	}
	k := int(math.Ceil((0.78 / eps) * (0.78 / eps)))
	if k < 1 {
		k = 1
	}
	return k
}

// K returns the number of bitmaps.
func (s *Sketch) K() int { return len(s.bitmaps) }

// Clone returns a deep copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{bitmaps: make([]uint32, len(s.bitmaps))}
	copy(c.bitmaps, s.bitmaps)
	return c
}

// Reset clears every bitmap, returning the sketch to its freshly-constructed
// state without releasing its storage — the recycling primitive behind the
// epoch engine's per-worker sketch pools.
func (s *Sketch) Reset() {
	clear(s.bitmaps)
}

// CopyFrom overwrites s's bitmaps with other's without allocating. It panics
// if the sketches have different K.
func (s *Sketch) CopyFrom(other *Sketch) {
	if len(s.bitmaps) != len(other.bitmaps) {
		panic(fmt.Sprintf("sketch: copy of mismatched sketches (%d vs %d bitmaps)",
			len(s.bitmaps), len(other.bitmaps)))
	}
	copy(s.bitmaps, other.bitmaps)
}

// Empty reports whether no insertion has touched the sketch.
func (s *Sketch) Empty() bool {
	for _, b := range s.bitmaps {
		if b != 0 {
			return false
		}
	}
	return true
}

// InsertHash inserts the item identified by the 64-bit hash h. The low bits
// select the bitmap, the remaining bits select the geometric level, so the
// same h always sets the same bit — the source of duplicate insensitivity.
func (s *Sketch) InsertHash(h uint64) {
	k := uint64(len(s.bitmaps))
	m := h % k
	rest := h / k
	// Geometric level: position of the lowest set bit of the remaining
	// entropy, capped at the top bit of the bitmap.
	level := bits.TrailingZeros64(rest | (1 << 62))
	if level >= BitmapBits {
		level = BitmapBits - 1
	}
	s.bitmaps[m] |= 1 << uint(level)
}

// Insert inserts the item identified by (seed, ids...).
func (s *Sketch) Insert(seed uint64, ids ...uint64) {
	s.InsertHash(xrand.Hash(seed, ids...))
}

// AddCount credits count distinct items owned by owner to the sketch. The
// bits set are a pure function of (seed, owner, count), so crediting the same
// (owner, count) again — as happens when a partial result reaches a combiner
// over several multi-path routes — is idempotent under Union. This is the
// Considine-style efficient Sum insertion: direct item insertion for small
// counts, exact sequential-binomial simulation of the multinomial placement
// for large ones (O(K + log count) instead of O(count)).
func (s *Sketch) AddCount(seed, owner uint64, count int64) {
	if count <= 0 {
		return
	}
	if count <= directInsertThreshold {
		for j := int64(0); j < count; j++ {
			s.Insert(seed, owner, uint64(j))
		}
		return
	}
	src := xrand.NewSource(seed, owner, 0xC0DE)
	k := len(s.bitmaps)
	remaining := count
	for m := 0; m < k && remaining > 0; m++ {
		var nm int64
		if m == k-1 {
			nm = remaining
		} else {
			nm = int64(src.Binomial(int(remaining), 1/float64(k-m)))
		}
		remaining -= nm
		s.simulateGeometric(src, m, nm)
	}
}

// simulateGeometric sets the bits of bitmap m as if n items each chose a
// geometric level. At each level every remaining item continues upward with
// probability 1/2; items that stop set the level's bit.
func (s *Sketch) simulateGeometric(src *xrand.Source, m int, n int64) {
	remaining := n
	for b := 0; b < BitmapBits-1 && remaining > 0; b++ {
		cont := int64(src.Binomial(int(remaining), 0.5))
		if remaining-cont > 0 {
			s.bitmaps[m] |= 1 << uint(b)
		}
		remaining = cont
	}
	if remaining > 0 {
		s.bitmaps[m] |= 1 << uint(BitmapBits-1)
	}
}

// Union merges other into s (bitwise OR). Union is the synopsis fusion for
// duplicate-insensitive counting: commutative, associative and idempotent.
// It panics if the sketches have different K.
func (s *Sketch) Union(other *Sketch) {
	if len(s.bitmaps) != len(other.bitmaps) {
		panic(fmt.Sprintf("sketch: union of mismatched sketches (%d vs %d bitmaps)",
			len(s.bitmaps), len(other.bitmaps)))
	}
	for i, b := range other.bitmaps {
		s.bitmaps[i] |= b
	}
}

// Union returns the union of two sketches without modifying either. Both
// must have the same K.
func Union(a, b *Sketch) *Sketch {
	c := a.Clone()
	c.Union(b)
	return c
}

// UnionInto overwrites dst with the union of srcs — the zero-copy ⊕ fast
// path of the epoch hot loop: where Clone-then-Union allocates a sketch per
// merge chain, UnionInto reuses a caller-owned scratch sketch and ORs the
// source bitmaps into it word by word. dst may itself appear among srcs (its
// prior contents are folded in rather than cleared). All sketches must share
// dst's K; mismatches panic like Union.
func UnionInto(dst *Sketch, srcs ...*Sketch) {
	keep := false
	for _, s := range srcs {
		if s == dst {
			keep = true
			break
		}
	}
	if !keep {
		dst.Reset()
	}
	for _, s := range srcs {
		if s != dst {
			dst.Union(s)
		}
	}
}

// lowestZero returns the index of the lowest unset bit of bitmap m (the FM
// statistic R_m).
func (s *Sketch) lowestZero(m int) int {
	return bits.TrailingZeros32(^s.bitmaps[m])
}

// Estimate returns the duplicate-insensitive count estimate: the PCSA
// estimator with the small-range correction term.
func (s *Sketch) Estimate() float64 {
	k := len(s.bitmaps)
	sum := 0
	for m := range s.bitmaps {
		sum += s.lowestZero(m)
	}
	if sum == 0 {
		return 0
	}
	x := float64(sum) / float64(k)
	return float64(k) / phi * (math.Pow(2, x) - math.Pow(2, -kappa*x))
}

// RelativeError returns the expected relative standard error of Estimate for
// this sketch's K.
func (s *Sketch) RelativeError() float64 {
	return 0.78 / math.Sqrt(float64(len(s.bitmaps)))
}

// Compact encoding.
//
// An FM bitmap is almost always of the form 1...1 0 (noise) 0...0: a solid
// run of low ones, then a short noisy fringe, then zeros. Following the
// ANF-style run-length trick the paper cites [17], EncodeCompact stores per
// bitmap the 5-bit run length R (the lowest unset bit index) and fringeBits
// bits of fringe above R. Bits above the fringe window are dropped — the
// encoding is slightly lossy in the direction of undercounting, matching the
// best-effort operator of [7] that the paper's evaluation uses. 40 bitmaps
// encode to 40*(5+4) = 360 bits = 45 bytes, inside the 48-byte TinyDB budget.

// fringeBits is the number of fringe bits kept above the run by the compact
// encoding.
const fringeBits = 4

// runBits is the number of bits used to store the run length R (R < 32).
const runBits = 5

// EncodedBits returns the number of bits EncodeCompact will produce for a
// sketch with k bitmaps.
func EncodedBits(k int) int { return k * (runBits + fringeBits) }

// EncodedWords returns the number of 32-bit words the compact encoding of a
// k-bitmap sketch occupies — the unit of the paper's message accounting.
func EncodedWords(k int) int { return (EncodedBits(k) + 31) / 32 }

// EncodeCompact serialises the sketch with the run+fringe scheme.
func (s *Sketch) EncodeCompact() []byte {
	w := newBitWriter(EncodedBits(len(s.bitmaps)))
	for m := range s.bitmaps {
		r := s.lowestZero(m)
		if r > (1<<runBits)-1 {
			r = (1 << runBits) - 1
		}
		w.write(uint32(r), runBits)
		var fringe uint32
		if r < BitmapBits {
			fringe = (s.bitmaps[m] >> uint(r+1)) & ((1 << fringeBits) - 1)
		}
		w.write(fringe, fringeBits)
	}
	return w.bytes()
}

// DecodeCompact reconstructs a sketch from the compact encoding. Bits beyond
// the fringe window are lost; everything else round-trips exactly.
func DecodeCompact(data []byte, k int) (*Sketch, error) {
	need := (EncodedBits(k) + 7) / 8
	if len(data) < need {
		return nil, errors.New("sketch: compact encoding truncated")
	}
	r := newBitReader(data)
	s := New(k)
	for m := 0; m < k; m++ {
		run := int(r.read(runBits))
		fringe := r.read(fringeBits)
		var bm uint32
		if run >= BitmapBits {
			bm = ^uint32(0)
		} else {
			bm = (1 << uint(run)) - 1 // the solid run of ones; bit `run` stays 0
			bm |= fringe << uint(run+1)
		}
		s.bitmaps[m] = bm
	}
	return s, nil
}

// bitWriter packs values MSB-first into a byte slice.
type bitWriter struct {
	buf []byte
	n   int // bits written
}

func newBitWriter(capacityBits int) *bitWriter {
	return &bitWriter{buf: make([]byte, 0, (capacityBits+7)/8)}
}

func (w *bitWriter) write(v uint32, width int) {
	for i := width - 1; i >= 0; i-- {
		if w.n%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		bit := (v >> uint(i)) & 1
		w.buf[w.n/8] |= byte(bit) << uint(7-w.n%8)
		w.n++
	}
}

func (w *bitWriter) bytes() []byte { return w.buf }

type bitReader struct {
	buf []byte
	n   int
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

func (r *bitReader) read(width int) uint32 {
	var v uint32
	for i := 0; i < width; i++ {
		var bit byte
		if r.n/8 < len(r.buf) {
			bit = (r.buf[r.n/8] >> uint(7-r.n%8)) & 1
		}
		v = v<<1 | uint32(bit)
		r.n++
	}
	return v
}
