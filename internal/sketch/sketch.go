// Package sketch implements the duplicate-insensitive counting machinery the
// multi-path ("delta") side of Tributary-Delta relies on: Flajolet–Martin
// PCSA bitmap sketches [Flajolet & Martin 1985], the efficient insertion of
// large counts used by Considine et al. for Sum, a compact run-length
// encoding that fits 40 bitmaps into a 48-byte TinyDB message (§7.1 of the
// paper), and the duplicate-insensitive sum operator ⊕ (Definition 1) used by
// the multi-path frequent items algorithm (Algorithm 2).
//
// Duplicate insensitivity comes from insertion being a pure function of the
// inserted item's identity: re-inserting the same item, or OR-ing two copies
// of a sketch that both saw it, leaves the sketch unchanged.
//
// Storage is word-packed: two 32-bit FM bitmaps per uint64 machine word, so
// the merge chain of the epoch hot loop (Union, UnionInto) and the wire
// codec (AppendWire, LoadWire) touch half as many words as a naive
// one-bitmap-per-element layout. The packing is invisible outside the
// package — every observable bit, estimate and encoding is identical to the
// unpacked form.
package sketch

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"tributarydelta/internal/xrand"
)

// phi is the Flajolet–Martin magic constant correcting the expectation of
// 2^R toward the true count.
const phi = 0.77351

// kappa is the small-range correction exponent (Scheuermann & Mauve); it
// removes most of the bias of the plain PCSA estimator for counts below ~10k.
const kappa = 1.75

// BitmapBits is the width of one FM bitmap. The paper uses 32-bit Sum
// synopses; counts up to ~2^32 per bitmap are representable, far beyond any
// workload here.
const BitmapBits = 32

// directInsertThreshold is the count below which AddCount inserts items one
// by one (exact and cheap) instead of simulating the insertion distribution.
const directInsertThreshold = 256

// Sketch is a PCSA summary: K independent FM bitmaps. An item is hashed to
// one bitmap and sets a geometrically distributed bit in it. The standard
// error of the estimate is about 0.78/sqrt(K); the paper's 40-bitmap
// configuration gives the ~12% approximation error reported in Figure 2.
//
// The zero value is not usable; construct with New.
type Sketch struct {
	k int
	// words packs the bitmaps two per uint64: bitmap m occupies bits
	// [32·(m&1), 32·(m&1)+31] of words[m>>1]. For odd k the high half of the
	// last word is unused and stays zero.
	words []uint64
}

// New returns an empty sketch with k bitmaps. It panics if k <= 0.
func New(k int) *Sketch {
	if k <= 0 {
		panic("sketch: New with non-positive k")
	}
	return &Sketch{k: k, words: make([]uint64, (k+1)/2)}
}

// KForRelativeError returns the number of bitmaps needed for a target
// relative standard error eps (0 < eps < 1): k ≈ (0.78/eps)^2.
func KForRelativeError(eps float64) int {
	if eps <= 0 || eps >= 1 {
		panic("sketch: relative error must be in (0,1)")
	}
	k := int(math.Ceil((0.78 / eps) * (0.78 / eps)))
	if k < 1 {
		k = 1
	}
	return k
}

// K returns the number of bitmaps.
func (s *Sketch) K() int { return s.k }

// bitmap returns bitmap m (the unpacked view of the word storage).
func (s *Sketch) bitmap(m int) uint32 {
	return uint32(s.words[m>>1] >> (uint(m&1) * BitmapBits))
}

// setLevel sets bit `level` of bitmap m.
func (s *Sketch) setLevel(m, level int) {
	s.words[m>>1] |= 1 << (uint(level) + uint(m&1)*BitmapBits)
}

// Clone returns a deep copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{k: s.k, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Reset clears every bitmap, returning the sketch to its freshly-constructed
// state without releasing its storage — the recycling primitive behind the
// epoch engine's per-worker sketch pools.
//
//td:hotpath
func (s *Sketch) Reset() {
	clear(s.words)
}

// CopyFrom overwrites s's bitmaps with other's without allocating. It panics
// if the sketches have different K.
//
//td:hotpath
func (s *Sketch) CopyFrom(other *Sketch) {
	if s.k != other.k {
		panic(fmt.Sprintf("sketch: copy of mismatched sketches (%d vs %d bitmaps)",
			s.k, other.k))
	}
	copy(s.words, other.words)
}

// Empty reports whether no insertion has touched the sketch.
func (s *Sketch) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// InsertHash inserts the item identified by the 64-bit hash h. The low bits
// select the bitmap, the remaining bits select the geometric level, so the
// same h always sets the same bit — the source of duplicate insensitivity.
//
//td:hotpath
func (s *Sketch) InsertHash(h uint64) {
	k := uint64(s.k)
	m := h % k
	rest := h / k
	// Geometric level: position of the lowest set bit of the remaining
	// entropy, capped at the top bit of the bitmap.
	level := bits.TrailingZeros64(rest | (1 << 62))
	if level >= BitmapBits {
		level = BitmapBits - 1
	}
	s.setLevel(int(m), level)
}

// Insert inserts the item identified by (seed, ids...).
func (s *Sketch) Insert(seed uint64, ids ...uint64) {
	s.InsertHash(xrand.Hash(seed, ids...))
}

// AddCount credits count distinct items owned by owner to the sketch. The
// bits set are a pure function of (seed, owner, count), so crediting the same
// (owner, count) again — as happens when a partial result reaches a combiner
// over several multi-path routes — is idempotent under Union. This is the
// Considine-style efficient Sum insertion: direct item insertion for small
// counts, exact sequential-binomial simulation of the multinomial placement
// for large ones (O(K + log count) instead of O(count)).
func (s *Sketch) AddCount(seed, owner uint64, count int64) {
	if count <= 0 {
		return
	}
	if count <= directInsertThreshold {
		for j := int64(0); j < count; j++ {
			s.Insert(seed, owner, uint64(j))
		}
		return
	}
	src := xrand.NewSource(seed, owner, 0xC0DE)
	k := s.k
	remaining := count
	for m := 0; m < k && remaining > 0; m++ {
		var nm int64
		if m == k-1 {
			nm = remaining
		} else {
			nm = int64(src.Binomial(int(remaining), 1/float64(k-m)))
		}
		remaining -= nm
		s.simulateGeometric(src, m, nm)
	}
}

// simulateGeometric sets the bits of bitmap m as if n items each chose a
// geometric level. At each level every remaining item continues upward with
// probability 1/2; items that stop set the level's bit.
func (s *Sketch) simulateGeometric(src *xrand.Source, m int, n int64) {
	var acc uint32
	remaining := n
	for b := 0; b < BitmapBits-1 && remaining > 0; b++ {
		cont := int64(src.Binomial(int(remaining), 0.5))
		if remaining-cont > 0 {
			acc |= 1 << uint(b)
		}
		remaining = cont
	}
	if remaining > 0 {
		acc |= 1 << uint(BitmapBits-1)
	}
	s.words[m>>1] |= uint64(acc) << (uint(m&1) * BitmapBits)
}

// Union merges other into s (bitwise OR). Union is the synopsis fusion for
// duplicate-insensitive counting: commutative, associative and idempotent.
// It panics if the sketches have different K.
func (s *Sketch) Union(other *Sketch) {
	if s.k != other.k {
		panic(fmt.Sprintf("sketch: union of mismatched sketches (%d vs %d bitmaps)",
			s.k, other.k))
	}
	a := s.words
	b := other.words[:len(a)]
	for i := range a {
		a[i] |= b[i]
	}
}

// Union returns the union of two sketches without modifying either. Both
// must have the same K.
func Union(a, b *Sketch) *Sketch {
	c := a.Clone()
	c.Union(b)
	return c
}

// UnionInto overwrites dst with the union of srcs — the zero-copy ⊕ fast
// path of the epoch hot loop: where Clone-then-Union allocates a sketch per
// merge chain, UnionInto reuses a caller-owned scratch sketch and ORs every
// source's packed words into it in one fused pass (mismatches are rejected
// up front, so the per-word loop never re-checks shapes or dispatches
// through Union). dst may itself appear among srcs (its prior contents are
// folded in rather than cleared). All sketches must share dst's K;
// mismatches panic like Union.
//
//td:hotpath
func UnionInto(dst *Sketch, srcs ...*Sketch) {
	keep := false
	for _, s := range srcs {
		if s.k != dst.k {
			panic(fmt.Sprintf("sketch: union of mismatched sketches (%d vs %d bitmaps)",
				dst.k, s.k))
		}
		if s == dst {
			keep = true
		}
	}
	if !keep {
		dst.Reset()
	}
	a := dst.words
	for _, s := range srcs {
		if s == dst {
			continue
		}
		b := s.words[:len(a)]
		for i := range a {
			a[i] |= b[i]
		}
	}
}

// UnionAllInto is the fused multi-sketch union behind the batch fusion
// paths: N class or contribution sketches compose under plain bitwise OR
// (Considine et al.), so one call replaces N shape-checked Union calls. The
// sources stream through the destination two at a time with their slice
// headers hoisted out of the word loop — the destination stays cache-hot
// across passes and every access is bounds-check free. The contract matches
// UnionInto: dst is overwritten with the union of srcs, dst may itself
// appear among srcs (its prior contents then fold in), and any K mismatch
// panics like Union.
//
//td:hotpath
func UnionAllInto(dst *Sketch, srcs ...*Sketch) {
	fold := false
	for _, s := range srcs {
		if s.k != dst.k {
			panic(fmt.Sprintf("sketch: union of mismatched sketches (%d vs %d bitmaps)",
				dst.k, s.k))
		}
		if s == dst {
			fold = true
		}
	}
	a := dst.words
	if len(srcs) == 0 {
		clear(a)
		return
	}
	i := 0
	if !fold {
		// dst holds stale content: the first source overwrites instead of
		// folding. (With dst among srcs its own words must survive, so every
		// pass ORs.)
		copy(a, srcs[0].words)
		i = 1
	}
	for ; i+1 < len(srcs); i += 2 {
		x := srcs[i].words[:len(a)]
		y := srcs[i+1].words[:len(a)]
		for j := range a {
			a[j] |= x[j] | y[j]
		}
	}
	if i < len(srcs) {
		x := srcs[i].words[:len(a)]
		for j := range a {
			a[j] |= x[j]
		}
	}
}

// View is a lazily-materialized union of sketches. Add records a source
// without touching any words; the fused union is computed — once, by a single
// UnionAllInto pass over all recorded sources — only when Materialize (or
// Estimate) is called, and the result is cached until the source set changes.
// It replaces the clone-then-Union-in-a-loop merge pattern: callers that
// gather per-key sketches from many classes no longer pay one shape-checked
// Union per source, and keys that are never estimated never pay for a union
// at all. The sources must outlive the view unchanged (it stores pointers,
// not copies). The zero value is ready to use; Reset recycles the view and
// its materialization buffer for the next merge chain.
type View struct {
	srcs  []*Sketch
	mat   *Sketch
	fresh bool // mat currently holds the union of srcs
}

// Reset empties the source set, keeping the accumulated storage.
func (v *View) Reset() {
	v.srcs = v.srcs[:0]
	v.fresh = false
}

// Add records s as a union source. All sources must share the same K — a
// mismatch panics at materialization, like Union.
func (v *View) Add(s *Sketch) {
	v.srcs = append(v.srcs, s)
	v.fresh = false
}

// Len returns the number of recorded sources.
func (v *View) Len() int { return len(v.srcs) }

// Materialize returns the union of the recorded sources, computing it in one
// fused pass on first use and caching it until the next Add or Reset. The
// returned sketch is owned by the view (valid until the view changes). It
// returns nil when no sources were added.
func (v *View) Materialize() *Sketch {
	if v.fresh {
		return v.mat
	}
	if len(v.srcs) == 0 {
		return nil
	}
	if v.mat == nil || v.mat.k != v.srcs[0].k {
		v.mat = New(v.srcs[0].k)
	}
	UnionAllInto(v.mat, v.srcs...)
	v.fresh = true
	return v.mat
}

// Estimate returns the duplicate-insensitive count estimate of the union of
// the recorded sources (0 when empty), materializing lazily.
func (v *View) Estimate() float64 {
	m := v.Materialize()
	if m == nil {
		return 0
	}
	return m.Estimate()
}

// lowestZero returns the index of the lowest unset bit of bitmap m (the FM
// statistic R_m).
func (s *Sketch) lowestZero(m int) int {
	return bits.TrailingZeros32(^s.bitmap(m))
}

// Estimate returns the duplicate-insensitive count estimate: the PCSA
// estimator with the small-range correction term.
func (s *Sketch) Estimate() float64 {
	k := s.k
	sum := 0
	for m := 0; m < k; m++ {
		sum += s.lowestZero(m)
	}
	if sum == 0 {
		return 0
	}
	x := float64(sum) / float64(k)
	return float64(k) / phi * (math.Pow(2, x) - math.Pow(2, -kappa*x))
}

// RelativeError returns the expected relative standard error of Estimate for
// this sketch's K.
func (s *Sketch) RelativeError() float64 {
	return 0.78 / math.Sqrt(float64(s.k))
}

// Compact encoding.
//
// An FM bitmap is almost always of the form 1...1 0 (noise) 0...0: a solid
// run of low ones, then a short noisy fringe, then zeros. Following the
// ANF-style run-length trick the paper cites [17], EncodeCompact stores per
// bitmap the 5-bit run length R (the lowest unset bit index) and fringeBits
// bits of fringe above R. Bits above the fringe window are dropped — the
// encoding is slightly lossy in the direction of undercounting, matching the
// best-effort operator of [7] that the paper's evaluation uses. 40 bitmaps
// encode to 40*(5+4) = 360 bits = 45 bytes, inside the 48-byte TinyDB budget.
//
// The bit stream is MSB-first. The packers below move it through a 64-bit
// accumulator — whole fields in, whole bytes out — instead of the historical
// bit-at-a-time writer/reader loop; the emitted bytes are identical (pinned
// by the differential tests against the reference implementation).

// fringeBits is the number of fringe bits kept above the run by the compact
// encoding.
const fringeBits = 4

// runBits is the number of bits used to store the run length R (R < 32).
const runBits = 5

// EncodedBits returns the number of bits EncodeCompact will produce for a
// sketch with k bitmaps.
func EncodedBits(k int) int { return k * (runBits + fringeBits) }

// EncodedWords returns the number of 32-bit words the compact encoding of a
// k-bitmap sketch occupies — the unit of the paper's message accounting.
func EncodedWords(k int) int { return (EncodedBits(k) + 31) / 32 }

// EncodedBytes returns the byte length of the compact encoding of a k-bitmap
// sketch.
func EncodedBytes(k int) int { return (EncodedBits(k) + 7) / 8 }

// EncodeCompact serialises the sketch with the run+fringe scheme.
func (s *Sketch) EncodeCompact() []byte {
	return s.EncodeCompactInto(make([]byte, 0, EncodedBytes(s.k)))
}

// EncodeCompactInto appends the compact encoding to dst and returns the
// extended buffer — the allocation-free form for callers that own the
// buffer. Fields are packed through a 64-bit accumulator: one 9-bit
// (run, fringe) push per bitmap, one byte store per 8 stream bits.
//
//td:hotpath
func (s *Sketch) EncodeCompactInto(dst []byte) []byte {
	var acc uint64
	nbits := uint(0)
	for m := 0; m < s.k; m++ {
		bm := s.bitmap(m)
		r := bits.TrailingZeros32(^bm)
		if r > (1<<runBits)-1 {
			r = (1 << runBits) - 1
		}
		var fringe uint32
		if r < BitmapBits {
			fringe = (bm >> uint(r+1)) & ((1 << fringeBits) - 1)
		}
		acc = acc<<(runBits+fringeBits) | uint64(r)<<fringeBits | uint64(fringe)
		nbits += runBits + fringeBits
		for nbits >= 8 {
			nbits -= 8
			dst = append(dst, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc<<(8-nbits)))
	}
	return dst
}

// DecodeCompact reconstructs a sketch from the compact encoding. Bits beyond
// the fringe window are lost; everything else round-trips exactly.
func DecodeCompact(data []byte, k int) (*Sketch, error) {
	if k <= 0 {
		return nil, errors.New("sketch: decode with non-positive k")
	}
	s := New(k)
	if err := s.DecodeCompactInto(data); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeCompactInto overwrites s from the compact encoding — the
// allocation-free form for callers recycling sketches. The data must hold at
// least EncodedBytes(s.K()) bytes; trailing bytes are ignored, mirroring the
// historical reader.
func (s *Sketch) DecodeCompactInto(data []byte) error {
	if len(data) < EncodedBytes(s.k) {
		return errors.New("sketch: compact encoding truncated")
	}
	var acc uint64
	nbits := uint(0)
	pos := 0
	for m := 0; m < s.k; m++ {
		for nbits < runBits+fringeBits {
			acc <<= 8
			if pos < len(data) {
				//lint:ignore wiresafe hand-rolled bit unpacker: length-guarded at entry, pos < len(data) here, and differential+fuzz-pinned against the bit-at-a-time reference decoder
				acc |= uint64(data[pos])
				pos++
			}
			nbits += 8
		}
		nbits -= runBits + fringeBits
		field := uint32(acc>>nbits) & ((1 << (runBits + fringeBits)) - 1)
		run := int(field >> fringeBits)
		fringe := field & ((1 << fringeBits) - 1)
		var bm uint32
		if run >= BitmapBits {
			bm = ^uint32(0)
		} else {
			bm = (1 << uint(run)) - 1 // the solid run of ones; bit `run` stays 0
			bm |= fringe << uint(run+1)
		}
		if m&1 == 0 {
			// The even bitmap overwrites the whole word (clearing any stale
			// high half, including the unused one of an odd-k sketch) ...
			s.words[m>>1] = uint64(bm)
		} else {
			// ... and the odd bitmap lands in the high half.
			s.words[m>>1] |= uint64(bm) << BitmapBits
		}
	}
	return nil
}
